// swf_gen — deterministic SWF trace generator for the replay bench.
//
// Draws a Zipf-skewed multi-user workload from batch::generate_arrivals,
// stretches the heaviest user's jobs (heavy users submit long jobs — the
// shape fairshare exists to correct), and writes the stream as an SWF
// trace that batch::parse_swf reads back.  The committed 10k-job excerpt
// under data/traces/ was produced by this tool with its defaults; CI can
// regenerate and diff it, and the swf_replay bench scales the same
// generator to millions of jobs without committing them.
//
//   ./swf_gen --out trace.swf [--jobs N] [--seed S] [--users U]
//       [--zipf Z] [--heavy-stretch F] [--max-nodes W]
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "batch/job.h"
#include "batch/workload.h"
#include "util/cli.h"
#include "util/json.h"
#include "util/time.h"

int main(int argc, char** argv) {
  using namespace hpcs;

  util::CliParser cli;
  cli.flag("out", "output trace path (empty = stdout)", "")
      .flag("jobs", "jobs to draw", "10000")
      .flag("seed", "generator seed", "42")
      .flag("users", "submitting users (Zipf-ranked)", "16")
      .flag("zipf", "user ownership skew exponent", "1.2")
      .flag("heavy-stretch",
            "runtime multiplier for the heaviest user's jobs", "4")
      .flag("max-nodes", "widest job drawn", "64")
      .flag("mean-interarrival-s", "mean seconds between submits", "30")
      .flag("runtime-typical-s", "typical runtime in seconds", "600");
  if (!cli.parse(argc, argv)) return 2;

  try {
    batch::ArrivalConfig arrivals;
    arrivals.jobs = static_cast<int>(cli.get_int("jobs", 10000));
    arrivals.mean_interarrival = static_cast<SimDuration>(
        cli.get_double("mean-interarrival-s", 30.0) * kSecond);
    arrivals.max_nodes = static_cast<int>(cli.get_int("max-nodes", 64));
    arrivals.nodes_log_mean = 1.2;
    arrivals.nodes_log_sigma = 1.0;
    arrivals.runtime_typical = static_cast<SimDuration>(
        cli.get_double("runtime-typical-s", 600.0) * kSecond);
    arrivals.runtime_log_sigma = 1.0;
    arrivals.grain = 10 * kSecond;
    arrivals.users = static_cast<int>(cli.get_int("users", 16));
    arrivals.user_zipf = cli.get_double("zipf", 1.2);
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));

    std::vector<batch::JobSpec> jobs = batch::generate_arrivals(arrivals, seed);
    const int stretch = static_cast<int>(cli.get_int("heavy-stretch", 4));
    for (batch::JobSpec& job : jobs) {
      if (job.user == 1 && stretch > 1) {
        job.iterations *= stretch;
        job.estimate *= static_cast<SimDuration>(stretch);
      }
    }

    const std::string text = batch::format_swf(jobs);
    const std::string out = cli.get("out", "");
    if (out.empty()) {
      std::fputs(text.c_str(), stdout);
    } else {
      util::write_file(out, text);
      std::fprintf(stderr, "swf_gen: wrote %zu jobs to %s\n", jobs.size(),
                   out.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "swf_gen: %s\n", e.what());
    return 2;
  }
}
