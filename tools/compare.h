// Noise-aware comparison of two BENCH_*.json telemetry documents.
//
// The policy (the CI perf-regression gate): a metric only *fails* when it
// moved in its bad direction by more than the statistical noise of the
// baseline — `factor` times the baseline's 95% CI half-width, plus a
// relative floor `min_rel` that keeps single-sample baselines (CI = 0) from
// failing on every harmless wiggle.  Neutral metrics warn instead of
// failing; improvements are reported but never gate.
#pragma once

#include <string>
#include <vector>

#include "util/json.h"

namespace hpcs::tools {

struct CompareOptions {
  /// Allowed drift = factor * baseline ci95 + min_rel * |baseline mean|.
  double factor = 2.0;
  /// Relative noise floor (0.02 = 2% of the baseline mean).
  double min_rel = 0.02;
};

enum class MetricStatus {
  kOk,        // within the noise envelope
  kImproved,  // moved beyond the envelope in the good direction
  kWarn,      // neutral metric moved beyond the envelope
  kRegressed, // moved beyond the envelope in the bad direction
  kMissing,   // in the baseline, absent from the current run
  kNew,       // in the current run, absent from the baseline
};

const char* metric_status_name(MetricStatus status);

struct MetricDelta {
  std::string name;
  std::string unit;
  double baseline_mean = 0.0;
  double current_mean = 0.0;
  double delta = 0.0;          // current - baseline
  double allowed = 0.0;        // noise envelope, same unit as the metric
  MetricStatus status = MetricStatus::kOk;
};

struct CompareReport {
  std::string baseline_bench;
  std::string current_bench;
  std::vector<MetricDelta> rows;
  int regressions = 0;
  int warnings = 0;
  int improvements = 0;

  bool failed() const { return regressions > 0; }
  /// Per-metric table plus a one-line verdict.
  std::string render() const;
};

/// Compares two parsed telemetry documents.  Throws std::runtime_error when
/// either document does not look like a BENCH_*.json (missing schema fields
/// or an unsupported schema_version).
CompareReport compare(const util::Json& baseline, const util::Json& current,
                      const CompareOptions& options);

}  // namespace hpcs::tools
