#include "compare.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/stats.h"
#include "util/table.h"

namespace hpcs::tools {
namespace {

struct MetricRow {
  std::string unit;
  std::string direction;
  std::size_t count = 0;
  double mean = 0.0;
  double ci95 = 0.0;
};

/// Validates the document shape and indexes metrics by name (insertion
/// order preserved through the vector of names).
void load_metrics(const util::Json& doc, std::vector<std::string>& names_out,
                  std::vector<MetricRow>& rows, std::string& bench) {
  if (!doc.is_object() || !doc.contains("schema_version") ||
      !doc.contains("metrics")) {
    throw std::runtime_error("not a BENCH_*.json telemetry document");
  }
  const auto version = doc.at("schema_version").as_int();
  if (version != 1) {
    throw std::runtime_error("unsupported schema_version " +
                             std::to_string(version));
  }
  bench = doc.contains("bench") ? doc.at("bench").as_string() : "?";
  for (const auto& m : doc.at("metrics").elements()) {
    MetricRow row;
    const std::string name = m.at("name").as_string();
    row.unit = m.contains("unit") ? m.at("unit").as_string() : "";
    row.direction =
        m.contains("direction") ? m.at("direction").as_string() : "neutral";
    row.count = m.contains("count")
                    ? static_cast<std::size_t>(m.at("count").as_int())
                    : 0;
    if (row.count == 0) continue;  // no observations: nothing to compare
    row.mean = m.at("mean").as_double();
    row.ci95 = m.contains("ci95") ? m.at("ci95").as_double() : 0.0;
    rows.push_back(row);
    names_out.push_back(name);
  }
}

const MetricRow* find_row(const std::vector<std::string>& names,
                          const std::vector<MetricRow>& rows,
                          const std::string& name) {
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return &rows[i];
  }
  return nullptr;
}

std::string format_delta_pct(double baseline, double delta) {
  if (baseline == 0.0) return "n/a";
  return util::format_fixed(delta / std::fabs(baseline) * 100.0, 2) + "%";
}

/// Metric names are dotted grid coordinates ("cfs.x4.cooperative.makespan"):
/// summarise the grid that was actually compared by listing the distinct
/// labels seen at each dot position, in first-seen order.
std::string describe_grid(const std::vector<MetricDelta>& rows) {
  std::vector<std::vector<std::string>> axes;
  for (const auto& row : rows) {
    std::size_t pos = 0, axis = 0;
    while (pos <= row.name.size()) {
      const std::size_t dot = row.name.find('.', pos);
      const std::string label =
          row.name.substr(pos, dot == std::string::npos ? dot : dot - pos);
      if (axes.size() <= axis) axes.emplace_back();
      auto& labels = axes[axis];
      if (std::find(labels.begin(), labels.end(), label) == labels.end()) {
        labels.push_back(label);
      }
      if (dot == std::string::npos) break;
      pos = dot + 1;
      ++axis;
    }
  }
  std::string out = "compared grid:";
  constexpr std::size_t kMaxListed = 8;
  for (std::size_t axis = 0; axis < axes.size(); ++axis) {
    out += axis == 0 ? " {" : " x {";
    for (std::size_t i = 0; i < axes[axis].size() && i < kMaxListed; ++i) {
      if (i > 0) out += ", ";
      out += axes[axis][i];
    }
    if (axes[axis].size() > kMaxListed) {
      out += ", +" + std::to_string(axes[axis].size() - kMaxListed) + " more";
    }
    out += "}";
  }
  return out;
}

}  // namespace

const char* metric_status_name(MetricStatus status) {
  switch (status) {
    case MetricStatus::kOk: return "ok";
    case MetricStatus::kImproved: return "improved";
    case MetricStatus::kWarn: return "WARN";
    case MetricStatus::kRegressed: return "REGRESSED";
    case MetricStatus::kMissing: return "MISSING";
    case MetricStatus::kNew: return "new";
  }
  return "?";
}

CompareReport compare(const util::Json& baseline, const util::Json& current,
                      const CompareOptions& options) {
  std::vector<std::string> base_names, cur_names;
  std::vector<MetricRow> base_rows, cur_rows;
  CompareReport report;
  load_metrics(baseline, base_names, base_rows, report.baseline_bench);
  load_metrics(current, cur_names, cur_rows, report.current_bench);

  for (std::size_t i = 0; i < base_names.size(); ++i) {
    const MetricRow& base = base_rows[i];
    MetricDelta delta;
    delta.name = base_names[i];
    delta.unit = base.unit;
    delta.baseline_mean = base.mean;

    const MetricRow* cur = find_row(cur_names, cur_rows, base_names[i]);
    if (cur == nullptr) {
      delta.status = MetricStatus::kMissing;
      ++report.warnings;
      report.rows.push_back(delta);
      continue;
    }
    delta.current_mean = cur->mean;
    delta.delta = cur->mean - base.mean;
    delta.allowed = options.factor * base.ci95 +
                    options.min_rel * std::fabs(base.mean);

    // A drift inside the noise envelope is ok no matter the direction.
    if (std::fabs(delta.delta) <= delta.allowed) {
      delta.status = MetricStatus::kOk;
    } else if (base.direction == "neutral") {
      delta.status = MetricStatus::kWarn;
      ++report.warnings;
    } else {
      const bool regressed = base.direction == "lower" ? delta.delta > 0
                                                       : delta.delta < 0;
      if (regressed) {
        delta.status = MetricStatus::kRegressed;
        ++report.regressions;
      } else {
        delta.status = MetricStatus::kImproved;
        ++report.improvements;
      }
    }
    report.rows.push_back(delta);
  }

  for (std::size_t i = 0; i < cur_names.size(); ++i) {
    if (find_row(base_names, base_rows, cur_names[i]) != nullptr) continue;
    MetricDelta delta;
    delta.name = cur_names[i];
    delta.unit = cur_rows[i].unit;
    delta.current_mean = cur_rows[i].mean;
    delta.status = MetricStatus::kNew;
    // An ungated metric is schema drift too: warn until the baseline is
    // regenerated, so new-bench onboarding is never silent.
    ++report.warnings;
    report.rows.push_back(delta);
  }
  return report;
}

std::string CompareReport::render() const {
  util::Table table(
      {"Metric", "Unit", "Baseline", "Current", "Delta", "Allowed", "Status"});
  for (const auto& row : rows) {
    const bool has_both = row.status != MetricStatus::kMissing &&
                          row.status != MetricStatus::kNew;
    table.add_row(
        {row.name, row.unit,
         row.status == MetricStatus::kNew
             ? "-"
             : util::format_fixed(row.baseline_mean, 4),
         row.status == MetricStatus::kMissing
             ? "-"
             : util::format_fixed(row.current_mean, 4),
         has_both ? format_delta_pct(row.baseline_mean, row.delta) : "-",
         has_both ? format_delta_pct(row.baseline_mean, row.allowed) : "-",
         metric_status_name(row.status)});
  }
  std::string out = table.render();
  std::size_t ungated = 0;
  for (const auto& row : rows) {
    if (row.status != MetricStatus::kNew) continue;
    if (ungated == 0) {
      out += "\nWARN: metrics missing from the baseline (not gated):\n";
    }
    ++ungated;
    out += "  - " + row.name + (row.unit.empty() ? "" : " [" + row.unit + "]") +
           " = " + util::format_fixed(row.current_mean, 4) + "\n";
  }
  if (ungated > 0) {
    out += "  Regenerate the committed BENCH_*.json baseline to gate " +
           std::to_string(ungated) + " metric(s).\n";
  }
  if (!rows.empty()) out += "\n" + describe_grid(rows) + "\n";
  out += "\n";
  out += failed() ? "VERDICT: FAIL" : "VERDICT: PASS";
  out += " (" + std::to_string(regressions) + " regressed, " +
         std::to_string(warnings) + " warnings, " +
         std::to_string(improvements) + " improved, " +
         std::to_string(rows.size()) + " metrics)\n";
  return out;
}

}  // namespace hpcs::tools
