// bench_compare — diff two BENCH_*.json telemetry files with noise-aware
// thresholds.  The CI perf-regression gate runs this against the committed
// bench/baselines/ snapshot; developers run it by hand to prove a hot-path
// change is a speedup, not noise.
//
//   ./bench_compare <baseline.json> <current.json> [--factor F]
//       [--min-rel R] [--warn-only]
//
// Exit codes: 0 = pass (or --warn-only), 1 = at least one metric regressed
// beyond the noise envelope, 2 = bad usage / unreadable input.
#include <cstdio>
#include <exception>
#include <string>

#include "compare.h"
#include "util/cli.h"
#include "util/json.h"

int main(int argc, char** argv) {
  using namespace hpcs;

  util::CliParser cli;
  cli.positional("baseline", "baseline BENCH_*.json (the committed snapshot)")
      .positional("current", "freshly produced BENCH_*.json to judge")
      .flag("factor", "allowed drift in multiples of the baseline 95% CI",
            "2.0")
      .flag("min-rel", "relative noise floor added to the envelope", "0.02")
      .flag("warn-only",
            "advisory mode: print regressions but exit 0 (CI bootstrap)");
  if (!cli.parse(argc, argv)) return 2;

  tools::CompareOptions options;
  options.factor = cli.get_double("factor", 2.0);
  options.min_rel = cli.get_double("min-rel", 0.02);
  const bool warn_only = cli.get_bool("warn-only", false);

  try {
    const util::Json baseline =
        util::Json::parse(util::read_file(cli.positionals()[0]));
    const util::Json current =
        util::Json::parse(util::read_file(cli.positionals()[1]));
    const tools::CompareReport report =
        tools::compare(baseline, current, options);

    std::printf("bench_compare: %s (baseline %s) vs %s\n\n",
                report.baseline_bench.c_str(), cli.positionals()[0].c_str(),
                cli.positionals()[1].c_str());
    std::printf("%s", report.render().c_str());
    if (report.failed() && warn_only) {
      std::printf("(--warn-only: regressions reported, exit 0)\n");
    }
    return report.failed() && !warn_only ? 1 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_compare: %s\n", e.what());
    return 2;
  }
}
