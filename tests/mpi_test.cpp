// Tests for the simulated MPI runtime: program builder, rendezvous
// semantics, mpiexec lifecycle, launch chain, determinism.
#include <gtest/gtest.h>

#include "core/hpl.h"
#include "kernel/behaviors.h"
#include "kernel/kernel.h"
#include "mpi/launch.h"
#include "mpi/program.h"
#include "mpi/world.h"
#include "sim/engine.h"

namespace hpcs::mpi {
namespace {

using kernel::Kernel;
using kernel::KernelConfig;
using kernel::Policy;
using kernel::TaskState;
using kernel::Tid;

// --- program builder ---------------------------------------------------------

TEST(ProgramTest, BuilderProducesOps) {
  Program p;
  p.compute(100).barrier().loop(3).compute(10).allreduce(8).end_loop();
  EXPECT_EQ(p.ops().size(), 6u);
  p.validate();
}

TEST(ProgramTest, ValidateCatchesUnbalancedLoops) {
  Program open;
  open.loop(2).compute(1);
  EXPECT_THROW(open.validate(), std::invalid_argument);
  Program stray;
  stray.compute(1).end_loop();
  EXPECT_THROW(stray.validate(), std::invalid_argument);
}

TEST(ProgramTest, RejectsBadArguments) {
  Program p;
  EXPECT_THROW(p.loop(0), std::invalid_argument);
  EXPECT_THROW(p.exchange(0, 10), std::invalid_argument);
}

TEST(ProgramTest, TotalWorkExpandsLoops) {
  Program p;
  p.compute(100).loop(5).compute(10).loop(2).compute(3).end_loop().end_loop();
  // 100 + 5*10 + 5*2*3 = 180
  EXPECT_EQ(p.total_work(), 180u);
}

TEST(ProgramTest, SyncPointsExpandLoops) {
  Program p;
  p.barrier().loop(4).allreduce(8).exchange(1, 10).end_loop().alltoall(100);
  EXPECT_EQ(p.sync_points(), 1u + 4u * 2u + 1u);
}

// --- world / rendezvous ------------------------------------------------------

class MpiWorldTest : public ::testing::Test {
 protected:
  MpiWorldTest() : kernel_(engine_, KernelConfig{}) { kernel_.boot(); }

  sim::Engine engine_;
  Kernel kernel_;
};

TEST_F(MpiWorldTest, MpiexecSpawnsRanksAndFinishes) {
  Program p;
  p.barrier().compute(milliseconds(1)).barrier();
  MpiConfig config;
  config.nranks = 4;
  MpiWorld world(kernel_, config, p);
  world.launch_mpiexec(Policy::kNormal, 0, kernel::kInvalidTid);
  engine_.run_until(milliseconds(100));
  EXPECT_TRUE(world.finished());
  EXPECT_EQ(world.rank_tids().size(), 4u);
  for (Tid tid : world.rank_tids()) {
    EXPECT_EQ(kernel_.task(tid).state, TaskState::kExited);
  }
  EXPECT_EQ(kernel_.task(world.mpiexec_tid()).state, TaskState::kExited);
  EXPECT_GT(world.finish_time(), world.start_time());
}

TEST_F(MpiWorldTest, BarrierSynchronisesRanks) {
  // Rank imbalance before a barrier: every rank must leave the barrier at
  // (almost) the same time, i.e. total runtime is gated by the slowest.
  Program p;
  p.compute(milliseconds(5), 0.5).barrier().compute(microseconds(10));
  MpiConfig config;
  config.nranks = 8;
  config.compute_jitter = 0.0;
  MpiWorld world(kernel_, config, p);
  world.launch_mpiexec(Policy::kNormal, 0, kernel::kInvalidTid);
  engine_.run_until(seconds(1));
  ASSERT_TRUE(world.finished());
  // All ranks exited within a tight window after the last barrier release.
  SimTime first_exit = ~0ull, last_exit = 0;
  for (Tid tid : world.rank_tids()) {
    const SimTime t = kernel_.task(tid).acct.exited_at;
    first_exit = std::min(first_exit, t);
    last_exit = std::max(last_exit, t);
  }
  EXPECT_LT(last_exit - first_exit, milliseconds(2));
}

TEST_F(MpiWorldTest, ExchangePairsPartnerRanks) {
  Program p;
  p.loop(5).compute(microseconds(100)).exchange(1, 1000).end_loop();
  MpiConfig config;
  config.nranks = 4;
  MpiWorld world(kernel_, config, p);
  world.launch_mpiexec(Policy::kNormal, 0, kernel::kInvalidTid);
  engine_.run_until(seconds(1));
  EXPECT_TRUE(world.finished());
}

TEST_F(MpiWorldTest, OddRankWithoutPartnerStillCompletes) {
  Program p;
  // peer_xor = 4 has no partner for ranks 0..2 in a 3-rank world.
  p.compute(microseconds(50)).exchange(4, 100).compute(microseconds(50));
  MpiConfig config;
  config.nranks = 3;
  MpiWorld world(kernel_, config, p);
  world.launch_mpiexec(Policy::kNormal, 0, kernel::kInvalidTid);
  engine_.run_until(seconds(1));
  EXPECT_TRUE(world.finished());
}

TEST_F(MpiWorldTest, DoneCondFires) {
  Program p;
  p.compute(microseconds(100));
  MpiConfig config;
  config.nranks = 2;
  MpiWorld world(kernel_, config, p);
  world.launch_mpiexec(Policy::kNormal, 0, kernel::kInvalidTid);
  EXPECT_FALSE(kernel_.cond_fired(world.done_cond()));
  engine_.run_until(milliseconds(50));
  EXPECT_TRUE(kernel_.cond_fired(world.done_cond()));
}

TEST_F(MpiWorldTest, RanksInheritHpcPolicy) {
  sim::Engine engine;
  Kernel kernel(engine, KernelConfig{});
  hpl::install(kernel);
  kernel.boot();
  Program p;
  p.barrier().compute(milliseconds(1));
  MpiConfig config;
  config.nranks = 4;
  MpiWorld world(kernel, config, p);
  world.launch_mpiexec(Policy::kHpc, 0, kernel::kInvalidTid);
  engine.run_until(milliseconds(5));
  for (Tid tid : world.rank_tids()) {
    EXPECT_EQ(kernel.task(tid).policy, Policy::kHpc);
  }
  EXPECT_EQ(kernel.task(world.mpiexec_tid()).policy, Policy::kHpc);
}

TEST_F(MpiWorldTest, PinRanksSetsAffinity) {
  Program p;
  p.compute(milliseconds(1));
  MpiConfig config;
  config.nranks = 4;
  config.pin_ranks = true;
  MpiWorld world(kernel_, config, p);
  world.launch_mpiexec(Policy::kNormal, 0, kernel::kInvalidTid);
  engine_.run_until(milliseconds(2));
  for (std::size_t r = 0; r < world.rank_tids().size(); ++r) {
    EXPECT_EQ(kernel_.task(world.rank_tids()[r]).affinity,
              kernel::cpu_mask_of(static_cast<int>(r)));
  }
}

TEST_F(MpiWorldTest, RankNiceApplied) {
  Program p;
  p.compute(milliseconds(1));
  MpiConfig config;
  config.nranks = 2;
  config.rank_nice = -20;
  MpiWorld world(kernel_, config, p);
  world.launch_mpiexec(Policy::kNormal, 0, kernel::kInvalidTid);
  engine_.run_until(milliseconds(1));
  for (Tid tid : world.rank_tids()) {
    EXPECT_EQ(kernel_.task(tid).nice, -20);
  }
}

TEST_F(MpiWorldTest, BlockingBarrierBlocksInsteadOfSpinning) {
  Program p;
  // Ranks arrive at the barrier spread out (50% jitter); blocking waiters
  // must not burn CPU while they wait for the slowest.
  p.compute(milliseconds(1), 0.5).barrier_blocking().compute(microseconds(10));
  MpiConfig config;
  config.nranks = 8;
  config.spin_before_block = 20 * kMillisecond;
  MpiWorld world(kernel_, config, p);
  world.launch_mpiexec(Policy::kNormal, 0, kernel::kInvalidTid);
  engine_.run_until(seconds(1));
  ASSERT_TRUE(world.finished());
  // With a spinning barrier every early rank would burn CPU until the
  // slowest arrives, so all runtimes would cluster at the maximum.  With a
  // blocking barrier the fastest rank's runtime stays near its own demand.
  SimDuration min_rt = ~0ull, max_rt = 0;
  for (Tid tid : world.rank_tids()) {
    min_rt = std::min(min_rt, kernel_.task(tid).acct.runtime);
    max_rt = std::max(max_rt, kernel_.task(tid).acct.runtime);
  }
  EXPECT_LT(min_rt, milliseconds(2));
  EXPECT_GT(max_rt, min_rt);
}

TEST_F(MpiWorldTest, SpinBudgetConsumedBeforeBlocking) {
  Program p;
  p.compute(milliseconds(1), 0.9).barrier().compute(microseconds(10));
  MpiConfig config;
  config.nranks = 2;
  config.spin_before_block = 2 * kMillisecond;
  config.seed = 3;
  MpiWorld world(kernel_, config, p);
  world.launch_mpiexec(Policy::kNormal, 0, kernel::kInvalidTid);
  engine_.run_until(seconds(1));
  ASSERT_TRUE(world.finished());
}

// --- launcher ----------------------------------------------------------------

TEST_F(MpiWorldTest, LauncherChainRunsPerfChrtMpiexec) {
  Program p;
  p.barrier().compute(milliseconds(2)).barrier();
  MpiConfig config;
  config.nranks = 4;
  MpiWorld world(kernel_, config, p);
  Launcher launcher(kernel_, world);
  const Tid perf = launcher.start({});
  engine_.run_until(seconds(1));
  EXPECT_TRUE(launcher.done());
  EXPECT_TRUE(world.finished());
  EXPECT_EQ(kernel_.task(perf).state, TaskState::kExited);
  EXPECT_GE(launcher.done_time(), world.finish_time());
  EXPECT_TRUE(kernel_.cond_fired(launcher.done_cond()));
}

TEST_F(MpiWorldTest, LauncherAppliesNice) {
  Program p;
  p.compute(milliseconds(1));
  MpiConfig config;
  config.nranks = 2;
  MpiWorld world(kernel_, config, p);
  Launcher launcher(kernel_, world);
  launcher.start({.app_policy = Policy::kNormal, .app_nice = -10});
  engine_.run_until(milliseconds(20));
  EXPECT_EQ(kernel_.task(world.mpiexec_tid()).nice, -10);
}

TEST_F(MpiWorldTest, ExitCondHelper) {
  kernel::SpawnSpec spec;
  spec.name = "short";
  spec.behavior = std::make_unique<kernel::ScriptBehavior>(
      std::vector<kernel::Action>{kernel::Action::compute(microseconds(50))});
  const Tid tid = kernel_.spawn(std::move(spec));
  const kernel::CondId cond = exit_cond_for(kernel_, tid);
  EXPECT_FALSE(kernel_.cond_fired(cond));
  engine_.run_until(milliseconds(5));
  EXPECT_TRUE(kernel_.cond_fired(cond));
}

// --- determinism -------------------------------------------------------------

TEST(MpiDeterminism, SameSeedSameTimeline) {
  auto run = [](std::uint64_t seed) {
    sim::Engine engine;
    Kernel kernel(engine, KernelConfig{});
    kernel.boot();
    Program p;
    p.barrier().loop(3).compute(milliseconds(1), 0.05).allreduce(64).end_loop();
    MpiConfig config;
    config.nranks = 8;
    config.seed = seed;
    MpiWorld world(kernel, config, p);
    world.launch_mpiexec(Policy::kNormal, 0, kernel::kInvalidTid);
    engine.run_until(seconds(2));
    return std::make_tuple(world.finish_time(),
                           kernel.counters().context_switches,
                           kernel.counters().cpu_migrations,
                           engine.dispatched());
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(std::get<0>(run(5)), std::get<0>(run(6)));
}

}  // namespace
}  // namespace hpcs::mpi
