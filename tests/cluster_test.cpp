// Tests for the multi-node cluster substrate: node isolation, cross-node
// rendezvous with network latency, job lifecycle, determinism, HPL per node.
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "kernel/behaviors.h"
#include "mpi/program.h"
#include "sim/engine.h"

namespace hpcs::cluster {
namespace {

using kernel::Policy;

ClusterConfig quiet_config(int nodes) {
  ClusterConfig config;
  config.nodes = nodes;
  config.spawn_daemons = false;  // silent nodes for deterministic unit tests
  return config;
}

TEST(ClusterTest, ConstructsAndBootsNodes) {
  sim::Engine engine;
  Cluster cluster(engine, quiet_config(4));
  EXPECT_EQ(cluster.num_nodes(), 4);
  for (int n = 0; n < 4; ++n) {
    EXPECT_EQ(cluster.node(n).topology().num_cpus(), 8);
  }
  EXPECT_THROW(Cluster(engine, quiet_config(0)), std::invalid_argument);
}

TEST(ClusterTest, NodesAreIndependentKernels) {
  sim::Engine engine;
  Cluster cluster(engine, quiet_config(2));
  // A task spawned on node 0 does not appear on node 1.
  kernel::SpawnSpec spec;
  spec.name = "only-node0";
  spec.behavior = std::make_unique<kernel::ScriptBehavior>(
      std::vector<kernel::Action>{kernel::Action::compute(milliseconds(1))});
  const kernel::Tid tid = cluster.node(0).spawn(std::move(spec));
  engine.run_until(milliseconds(5));
  EXPECT_NE(cluster.node(0).find_task(tid), nullptr);
  // Node 1's task table only holds its own boot kthreads (tids overlap
  // numerically across kernels, so compare by name).
  const kernel::Task* other = cluster.node(1).find_task(tid);
  if (other != nullptr) {
    EXPECT_NE(other->name, "only-node0");
  }
}

TEST(ClusterTest, JobRunsAcrossNodes) {
  sim::Engine engine;
  Cluster cluster(engine, quiet_config(4));
  mpi::Program p;
  p.barrier().compute(milliseconds(2), 0.01).barrier();
  mpi::MpiConfig mc;
  mc.nranks = 16;  // 4 per node
  ClusterJob job(cluster, mc, p);
  EXPECT_EQ(job.total_ranks(), 16);
  EXPECT_EQ(job.node_of_rank(0), 0);
  EXPECT_EQ(job.node_of_rank(5), 1);
  EXPECT_EQ(job.node_of_rank(15), 3);
  job.launch(Policy::kNormal);
  engine.run_until(seconds(5));
  EXPECT_TRUE(job.finished());
  EXPECT_GT(job.finish_time(), job.start_time());
}

TEST(ClusterTest, RanksMustDivideAcrossNodes) {
  sim::Engine engine;
  Cluster cluster(engine, quiet_config(3));
  mpi::Program p;
  p.barrier();
  mpi::MpiConfig mc;
  mc.nranks = 8;  // not divisible by 3
  EXPECT_THROW(ClusterJob(cluster, mc, p), std::invalid_argument);
}

TEST(ClusterTest, CrossNodeBarrierSynchronises) {
  // One rank per node with strongly jittered compute: the barrier forces
  // all exits within (net latency + epsilon) of each other.
  sim::Engine engine;
  Cluster cluster(engine, quiet_config(4));
  mpi::Program p;
  p.compute(milliseconds(3), 0.5).barrier().compute(microseconds(10));
  mpi::MpiConfig mc;
  mc.nranks = 4;
  mc.run_speed_sigma = 0.0;
  ClusterJob job(cluster, mc, p);
  job.launch(Policy::kNormal);
  engine.run_until(seconds(5));
  ASSERT_TRUE(job.finished());
  // Finish == last exit; with one barrier near the end all ranks finish
  // within a millisecond of each other, so job wall time tracks the max
  // compute plus overheads.
  EXPECT_LT(to_seconds(job.finish_time() - job.start_time()), 0.05);
}

TEST(ClusterTest, NetworkLatencyDelaysRemoteRelease) {
  auto finish_with_latency = [](SimDuration latency) {
    sim::Engine engine;
    ClusterConfig config = quiet_config(2);
    config.net_latency = latency;
    Cluster cluster(engine, config);
    mpi::Program p;
    p.loop(50).compute(microseconds(100), 0.0).barrier().end_loop();
    mpi::MpiConfig mc;
    mc.nranks = 2;
    mc.run_speed_sigma = 0.0;
    ClusterJob job(cluster, mc, p);
    job.launch(Policy::kNormal);
    engine.run_until(seconds(10));
    EXPECT_TRUE(job.finished());
    return job.finish_time() - job.start_time();
  };
  const SimDuration fast = finish_with_latency(1 * kMicrosecond);
  const SimDuration slow = finish_with_latency(500 * kMicrosecond);
  // 50 barriers, each paying ~the extra latency at least once.
  EXPECT_GT(slow, fast + 50 * 400 * kMicrosecond / 2);
}

TEST(ClusterTest, HplInstalledOnEveryNode) {
  sim::Engine engine;
  ClusterConfig config = quiet_config(2);
  config.install_hpl = true;
  Cluster cluster(engine, config);
  mpi::Program p;
  p.barrier().compute(milliseconds(1)).barrier();
  mpi::MpiConfig mc;
  mc.nranks = 4;
  ClusterJob job(cluster, mc, p);
  job.launch(Policy::kHpc);  // would throw in class_of without the HPC class
  engine.run_until(seconds(2));
  EXPECT_TRUE(job.finished());
}

TEST(ClusterTest, DeterministicAcrossRuns) {
  auto run = [] {
    sim::Engine engine;
    ClusterConfig config;
    config.nodes = 2;
    config.seed = 9;
    Cluster cluster(engine, config);  // with daemons
    mpi::Program p;
    p.barrier().loop(5).compute(milliseconds(1), 0.05).allreduce(8).end_loop();
    mpi::MpiConfig mc;
    mc.nranks = 16;
    mc.seed = 5;
    ClusterJob job(cluster, mc, p);
    job.launch(Policy::kNormal);
    engine.run_until(seconds(10));
    return job.finish_time();
  };
  EXPECT_EQ(run(), run());
}

TEST(ClusterTest, PerNodeDaemonStreamsDiffer) {
  sim::Engine engine;
  ClusterConfig config;
  config.nodes = 2;
  Cluster cluster(engine, config);
  engine.run_until(seconds(2));
  // Both nodes ran daemons, but with different phases: the context-switch
  // counts diverge.
  const auto a = cluster.node(0).counters().context_switches;
  const auto b = cluster.node(1).counters().context_switches;
  EXPECT_GT(a, 0u);
  EXPECT_GT(b, 0u);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace hpcs::cluster
