// End-to-end integration and property tests: the paper's headline claims
// must hold on miniature workloads that run in milliseconds of wall time.
#include <gtest/gtest.h>

#include "core/hpl.h"
#include "exp/runner.h"
#include "kernel/behaviors.h"
#include "kernel/kernel.h"
#include "mpi/launch.h"
#include "sim/engine.h"
#include "util/stats.h"
#include "workloads/daemons.h"
#include "workloads/nas.h"

namespace hpcs {
namespace {

exp::RunConfig is_a_config(exp::Setup setup) {
  // is.A.8 is the shortest paper workload (~0.35 s): ideal for integration
  // tests that still exercise the full launch chain and daemon population.
  exp::RunConfig config;
  config.setup = setup;
  const workloads::NasInstance inst{workloads::NasBenchmark::kIS,
                                    workloads::NasClass::kA, 8};
  config.program = workloads::build_nas_program(inst);
  config.mpi.nranks = 8;
  return config;
}

TEST(IntegrationTest, IsAHplMigrationFloor) {
  // Table Ib: HPL performs ~10-13 migrations regardless of workload:
  // 8 rank fork placements + mpiexec + chrt/perf cleanup.
  const exp::Series series =
      exp::run_series(is_a_config(exp::Setup::kHpl), 5, 1);
  EXPECT_EQ(series.failures, 0);
  EXPECT_GE(series.migrations().min(), 8.0);
  EXPECT_LE(series.migrations().max(), 20.0);
}

TEST(IntegrationTest, HplBeatsStandardOnNoise) {
  // ft.A runs ~2 simulated seconds — long enough for the daemon population
  // to interfere; HPL must shrug off what makes standard Linux churn.
  auto noisy = [](exp::Setup setup) {
    exp::RunConfig config;
    config.setup = setup;
    const workloads::NasInstance inst{workloads::NasBenchmark::kFT,
                                      workloads::NasClass::kA, 8};
    config.program = workloads::build_nas_program(inst);
    config.mpi.nranks = 8;
    config.noise.intensity = 4.0;
    config.noise.frequency = 0.25;  // 4x more frequent wakeups
    return config;
  };
  const exp::Series std_series =
      exp::run_series(noisy(exp::Setup::kStandardLinux), 8, 10);
  const exp::Series hpl_series =
      exp::run_series(noisy(exp::Setup::kHpl), 8, 10);
  EXPECT_EQ(std_series.failures, 0);
  EXPECT_EQ(hpl_series.failures, 0);
  EXPECT_LT(hpl_series.migrations().mean(), std_series.migrations().mean());
  EXPECT_LT(hpl_series.switches().mean(), std_series.switches().mean());
  EXPECT_LE(hpl_series.seconds().range_variation_pct(),
            std_series.seconds().range_variation_pct() + 1.0);
}

TEST(IntegrationTest, HplRuntimeVariationIsSmall) {
  const exp::Series series =
      exp::run_series(is_a_config(exp::Setup::kHpl), 8, 3);
  EXPECT_EQ(series.failures, 0);
  // The paper reports <= ~3% for is.A under HPL.
  EXPECT_LT(series.seconds().range_variation_pct(), 5.0);
}

TEST(IntegrationTest, HpcClassPriorityInvariantUnderRandomChurn) {
  // Property: with HPL installed, whenever a CFS task is switched in, the
  // HPC class on that CPU must be empty — across a randomized fork/exit
  // churn of daemons and HPC tasks.
  sim::Engine engine;
  kernel::Kernel kernel(engine, kernel::KernelConfig{});
  hpl::HpcClass& hpc = hpl::install(kernel);
  kernel.boot();

  bool violated = false;
  kernel.add_trace_hook([&](const sim::TraceRecord& rec) {
    if (rec.point != sim::TracePoint::kSchedSwitch) return;
    const kernel::Task* next = kernel.find_task(rec.tid);
    if (next == nullptr) return;
    if (next->policy == kernel::Policy::kNormal &&
        hpc.nr_runnable(rec.cpu) > 0) {
      violated = true;
    }
  });

  util::Rng rng(99);
  for (int i = 0; i < 40; ++i) {
    kernel::SpawnSpec spec;
    const bool is_hpc = rng.chance(0.5);
    spec.name = (is_hpc ? "hpc" : "cfs") + std::to_string(i);
    spec.policy = is_hpc ? kernel::Policy::kHpc : kernel::Policy::kNormal;
    std::vector<kernel::Action> actions;
    for (int a = 0; a < 3; ++a) {
      actions.push_back(kernel::Action::compute(
          microseconds(rng.uniform_u64(50, 3000))));
      actions.push_back(
          kernel::Action::sleep(microseconds(rng.uniform_u64(50, 2000))));
    }
    spec.behavior =
        std::make_unique<kernel::ScriptBehavior>(std::move(actions));
    kernel.spawn(std::move(spec));
    engine.run_until(engine.now() + microseconds(rng.uniform_u64(100, 1000)));
  }
  engine.run_until(engine.now() + milliseconds(100));
  EXPECT_FALSE(violated);
}

TEST(IntegrationTest, StandardLinuxPreemptsHpcRanksHplDoesNot) {
  // Count preemptions of rank tasks by CFS daemons in both setups.
  auto rank_preemptions = [](exp::Setup setup) {
    exp::RunConfig config = is_a_config(setup);
    config.noise.intensity = 3.0;  // make daemons bite
    sim::Engine engine;
    kernel::KernelConfig kc = config.kernel;
    kernel::Kernel kernel(engine, kc);
    if (exp::setup_uses_hpl(setup)) hpl::install(kernel);
    kernel.boot();
    workloads::spawn_standard_node_daemons(kernel, config.noise);
    mpi::MpiConfig mc = config.mpi;
    mc.seed = 5;
    mpi::MpiWorld world(kernel, mc, config.program);
    mpi::Launcher launcher(kernel, world);
    engine.run_until(milliseconds(50));
    mpi::LaunchOptions lo;
    lo.app_policy = exp::setup_uses_hpl(setup) ? kernel::Policy::kHpc
                                               : kernel::Policy::kNormal;
    launcher.start(lo);
    while (!launcher.done() && engine.now() < seconds(30)) {
      engine.run_until(engine.now() + milliseconds(100));
    }
    std::uint64_t preempted = 0;
    for (kernel::Tid tid : world.rank_tids()) {
      preempted += kernel.task(tid).acct.preemptions;
    }
    return preempted;
  };
  const auto std_preempted = rank_preemptions(exp::Setup::kStandardLinux);
  const auto hpl_preempted = rank_preemptions(exp::Setup::kHpl);
  EXPECT_LT(hpl_preempted, std_preempted);
}

TEST(IntegrationTest, NettickReducesTicks) {
  auto ticks_for = [](bool nettick) {
    exp::RunConfig config = is_a_config(nettick ? exp::Setup::kHplNettick
                                                : exp::Setup::kHpl);
    sim::Engine engine;
    kernel::KernelConfig kc = config.kernel;
    if (nettick) kc.tickless_single = true;
    kernel::Kernel kernel(engine, kc);
    hpl::install(kernel);
    kernel.boot();
    mpi::MpiConfig mc = config.mpi;
    mc.seed = 2;
    mpi::MpiWorld world(kernel, mc, config.program);
    world.launch_mpiexec(kernel::Policy::kHpc, 0, kernel::kInvalidTid);
    engine.run_until(seconds(5));
    return kernel.counters().ticks;
  };
  EXPECT_LT(ticks_for(true), ticks_for(false) / 2);
}

TEST(IntegrationTest, PinnedRanksNeverMigrateAfterPlacement) {
  exp::RunConfig config = is_a_config(exp::Setup::kPinned);
  sim::Engine engine;
  kernel::Kernel kernel(engine, config.kernel);
  kernel.boot();
  workloads::NoiseConfig noise;
  noise.seed = 11;
  workloads::spawn_standard_node_daemons(kernel, noise);
  mpi::MpiConfig mc = config.mpi;
  mc.pin_ranks = true;
  mc.seed = 11;
  mpi::MpiWorld world(kernel, mc, config.program);
  mpi::Launcher launcher(kernel, world);
  engine.run_until(milliseconds(50));
  launcher.start({});
  while (!launcher.done() && engine.now() < seconds(30)) {
    engine.run_until(engine.now() + milliseconds(100));
  }
  ASSERT_TRUE(world.finished());
  for (kernel::Tid tid : world.rank_tids()) {
    // One fork placement, zero balancing migrations afterwards.
    EXPECT_LE(kernel.task(tid).acct.migrations, 1u);
  }
}

TEST(IntegrationTest, RunToRunDistributionsDiffer) {
  // Different seeds produce different (but individually deterministic)
  // timings under standard Linux.
  const exp::Series series =
      exp::run_series(is_a_config(exp::Setup::kStandardLinux), 6, 50);
  EXPECT_EQ(series.failures, 0);
  EXPECT_GT(series.seconds().max(), series.seconds().min());
}

}  // namespace
}  // namespace hpcs
