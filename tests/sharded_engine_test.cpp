// Unit tests for the conservative parallel engine (sim::ShardedEngine):
// construction contracts, cross-shard delivery determinism at every thread
// count, the lookahead guard, and stop/resume semantics.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/engine.h"
#include "sim/sharded.h"

namespace hpcs::sim {
namespace {

TEST(ShardedEngine, ConstructionContracts) {
  EXPECT_THROW(ShardedEngine(0, 10), std::invalid_argument);
  EXPECT_THROW(ShardedEngine(-3, 10), std::invalid_argument);
  EXPECT_THROW(ShardedEngine(4, 0), std::invalid_argument);
  ShardedEngine engine(4, 25);
  EXPECT_EQ(engine.num_shards(), 4);
  EXPECT_EQ(engine.lookahead(), 25u);
  EXPECT_TRUE(engine.drained());
  EXPECT_THROW(engine.shard(4), std::out_of_range);
  EXPECT_THROW(engine.send(0, 7, 100, [] {}), std::out_of_range);
}

TEST(ShardedEngine, SingleShardMatchesSerialEngine) {
  std::vector<int> serial_order;
  Engine reference;
  reference.schedule_at(30, [&] { serial_order.push_back(3); });
  reference.schedule_at(10, [&] { serial_order.push_back(1); });
  reference.schedule_at(20, [&] { serial_order.push_back(2); });
  reference.run();

  std::vector<int> sharded_order;
  ShardedEngine engine(1, 5);
  engine.shard(0).schedule_at(30, [&] { sharded_order.push_back(3); });
  engine.shard(0).schedule_at(10, [&] { sharded_order.push_back(1); });
  engine.shard(0).schedule_at(20, [&] { sharded_order.push_back(2); });
  EXPECT_EQ(engine.run(1), 3u);
  EXPECT_EQ(sharded_order, serial_order);
  EXPECT_TRUE(engine.drained());
  // run_until() catches the clock up to each window limit, so the shard
  // ends at the last window's edge (30 + lookahead - 1), past the last
  // event — the same catch-up a serial run_until(limit) performs.
  EXPECT_EQ(engine.shard(0).now(), 34u);
}

TEST(ShardedEngine, SameShardSendIsLocalAndIgnoresLookahead) {
  ShardedEngine engine(2, 100);
  SimTime seen = kNoEvent;
  // when < lookahead would be rejected cross-shard; same-shard it is just a
  // local event.
  engine.send(0, 0, 7, [&] { seen = engine.shard(0).now(); });
  engine.run(1);
  EXPECT_EQ(seen, 7u);
}

TEST(ShardedEngine, CrossShardSendBeforeRunDelivers) {
  ShardedEngine engine(2, 10);
  SimTime seen = kNoEvent;
  engine.send(0, 1, 10, [&] { seen = engine.shard(1).now(); });
  EXPECT_FALSE(engine.drained());  // the pending send counts as work
  engine.run(1);
  EXPECT_EQ(seen, 10u);
  EXPECT_TRUE(engine.drained());
  EXPECT_EQ(engine.stats().messages, 1u);
}

TEST(ShardedEngine, LookaheadViolationThrowsOutOfRun) {
  for (int threads : {1, 2}) {
    ShardedEngine engine(2, 10);
    engine.shard(0).schedule_at(50, [&] {
      // now() == 50; the earliest legal cross-shard time is 60.
      engine.send(0, 1, 59, [] {});
    });
    EXPECT_THROW(engine.run(threads), std::logic_error);
  }
}

/// Per-shard event log: callbacks only append to their own shard's vector,
/// so recording is race-free by construction (same ownership rule as any
/// sharded scenario state).
struct ShardLogs {
  explicit ShardLogs(int shards) : logs(static_cast<std::size_t>(shards)) {}
  std::vector<std::vector<std::string>> logs;
  void note(int shard, SimTime at, const std::string& tag) {
    logs[static_cast<std::size_t>(shard)].push_back(
        std::to_string(at) + ":" + tag);
  }
};

/// A 4-shard scenario mixing local chains with cross-shard messages whose
/// timestamps are disjoint per source (when % shards == src), so the
/// dispatch sequence has a single valid order and any scheduling
/// nondeterminism would show up as a log difference.
void seed_ring_scenario(ShardedEngine& engine, ShardLogs& logs, int hops) {
  const int shards = engine.num_shards();
  for (int s = 0; s < shards; ++s) {
    // Local chain: period differs per shard so windows interleave.
    auto chain = std::make_shared<std::function<void(int)>>();
    *chain = [&engine, &logs, s, chain](int remaining) {
      logs.note(s, engine.shard(s).now(), "local");
      if (remaining > 0) {
        engine.shard(s).schedule_after(
            static_cast<SimDuration>(3 + s),
            [chain, remaining] { (*chain)(remaining - 1); });
      }
    };
    engine.shard(s).schedule_at(static_cast<SimTime>(1 + s),
                                [chain, hops] { (*chain)(hops); });
  }
  // Token passed around the ring; arrival instants are aligned to
  // when % shards == src so no two sources ever share a timestamp.
  auto token = std::make_shared<std::function<void(int, int)>>();
  *token = [&engine, &logs, token](int at_shard, int remaining) {
    logs.note(at_shard, engine.shard(at_shard).now(), "token");
    if (remaining <= 0) return;
    const int ring = engine.num_shards();
    const int next = (at_shard + 1) % ring;
    const SimTime base = engine.shard(at_shard).now() + engine.lookahead();
    const SimTime aligned =
        (base / static_cast<SimTime>(ring) + 1) * static_cast<SimTime>(ring) +
        static_cast<SimTime>(at_shard);
    engine.send(at_shard, next, aligned, [token, next, remaining] {
      (*token)(next, remaining - 1);
    });
  };
  engine.shard(0).schedule_at(2, [token] { (*token)(0, 40); });
}

TEST(ShardedEngine, DeterministicAcrossThreadCounts) {
  ShardLogs reference(4);
  std::uint64_t reference_dispatched = 0;
  {
    ShardedEngine engine(4, 10);
    seed_ring_scenario(engine, reference, 25);
    reference_dispatched = engine.run(1);
    EXPECT_TRUE(engine.drained());
    EXPECT_GT(engine.stats().messages, 0u);
    EXPECT_GT(engine.stats().rounds, 0u);
    EXPECT_EQ(engine.stats().dispatched, reference_dispatched);
  }
  for (int threads : {2, 4, 8}) {
    ShardLogs logs(4);
    ShardedEngine engine(4, 10);
    seed_ring_scenario(engine, logs, 25);
    EXPECT_EQ(engine.run(threads), reference_dispatched) << threads;
    EXPECT_TRUE(engine.drained());
    EXPECT_EQ(logs.logs, reference.logs) << "threads=" << threads;
  }
}

TEST(ShardedEngine, StopFromCallbackEndsRoundAndResumes) {
  // Reference: the same scenario run to completion without interruption.
  ShardLogs reference(4);
  {
    ShardedEngine engine(4, 10);
    seed_ring_scenario(engine, reference, 25);
    engine.run(1);
  }
  for (int threads : {1, 4}) {
    ShardLogs logs(4);
    ShardedEngine engine(4, 10);
    seed_ring_scenario(engine, logs, 25);
    // Interrupt shard 2 partway through its local chain (the stop event
    // itself logs nothing, so the reference log still applies).
    engine.shard(2).schedule_at(30, [&engine] { engine.stop(2); });
    engine.run(threads);
    EXPECT_TRUE(engine.stopped());
    EXPECT_FALSE(engine.drained());
    // Resume: picks up exactly where the conservative round left off.
    engine.run(threads);
    EXPECT_TRUE(engine.drained());
    EXPECT_EQ(logs.logs, reference.logs) << "threads=" << threads;
  }
}

TEST(ShardedEngine, RequestStopTakesEffectAtNextBarrier) {
  ShardedEngine engine(2, 10);
  bool late_ran = false;
  engine.shard(0).schedule_at(5, [&engine] { engine.request_stop(); });
  engine.shard(1).schedule_at(500, [&late_ran] { late_ran = true; });
  engine.run(1);
  EXPECT_TRUE(engine.stopped());
  EXPECT_FALSE(engine.drained());
  // 500 lies beyond the first conservative window (5 + lookahead - 1), so
  // the stop landed before it ran.
  EXPECT_FALSE(late_ran);
  engine.run(1);  // resume clears the stop request and finishes the work
  EXPECT_TRUE(engine.drained());
  EXPECT_TRUE(late_ran);
}

TEST(ShardedEngine, CallbackExceptionPropagatesAfterQuiesce) {
  for (int threads : {1, 2}) {
    ShardedEngine engine(2, 10);
    engine.shard(0).schedule_at(5, [] {
      throw std::runtime_error("scenario failure");
    });
    engine.shard(1).schedule_at(5, [] {});
    EXPECT_THROW(engine.run(threads), std::runtime_error);
  }
}

TEST(ShardedEngine, LaggingShardNeverReceivesPastEvents) {
  // Shard 1 idles (clock lags at 0) while shard 0 runs far ahead, then
  // starts messaging it: deliveries must land in shard 1's future even
  // though its clock is long behind shard 0's.
  ShardedEngine engine(2, 10);
  std::vector<SimTime> arrivals;
  auto ping = std::make_shared<std::function<void(int)>>();
  *ping = [&engine, &arrivals, ping](int remaining) {
    arrivals.push_back(engine.shard(1).now());
    static_cast<void>(remaining);
  };
  engine.shard(0).schedule_at(1000, [&engine, ping] {
    engine.send(0, 1, 1010, [ping] { (*ping)(0); });
  });
  engine.run(2);
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(arrivals[0], 1010u);
  EXPECT_TRUE(engine.drained());
}

TEST(ShardedEngine, RunIsNotReentrant) {
  ShardedEngine engine(2, 10);
  engine.shard(0).schedule_at(1, [&engine] {
    EXPECT_THROW(engine.run(1), std::logic_error);
  });
  engine.run(1);
}

TEST(ShardedEngine, StatsAccumulateAcrossRuns) {
  ShardedEngine engine(2, 10);
  SimTime unused = 0;
  engine.send(0, 1, 10, [&] { unused = 1; });
  engine.run(1);
  const std::uint64_t first_rounds = engine.stats().rounds;
  // Between runs the destination's clock may be ahead of the source's
  // (shard 0 idled through the first run), so a follow-up send must aim
  // past the receiver, not just past source now() + lookahead.
  engine.send(0, 1, engine.shard(1).now() + engine.lookahead(),
              [&] { unused = 2; });
  engine.run(1);
  EXPECT_EQ(engine.stats().messages, 2u);
  EXPECT_GT(engine.stats().rounds, first_rounds);
  EXPECT_EQ(engine.stats().dispatched, 2u);
  EXPECT_GE(engine.stats().exchange_high_water, 1u);
}

}  // namespace
}  // namespace hpcs::sim
