// Unit tests for the discrete-event engine and the trace sink.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.h"
#include "sim/trace.h"

namespace hpcs::sim {
namespace {

TEST(EngineTest, DispatchesInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(30, [&] { order.push_back(3); });
  engine.schedule_at(10, [&] { order.push_back(1); });
  engine.schedule_at(20, [&] { order.push_back(2); });
  EXPECT_EQ(engine.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now(), 30u);
}

TEST(EngineTest, TiesDispatchFifo) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    engine.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  engine.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EngineTest, ScheduleAfterUsesNow) {
  Engine engine;
  SimTime seen = 0;
  engine.schedule_at(100, [&] {
    engine.schedule_after(50, [&] { seen = engine.now(); });
  });
  engine.run();
  EXPECT_EQ(seen, 150u);
}

TEST(EngineTest, CancelPreventsDispatch) {
  Engine engine;
  bool fired = false;
  const EventId id = engine.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(engine.cancel(id));
  EXPECT_FALSE(engine.cancel(id));  // second cancel fails
  engine.run();
  EXPECT_FALSE(fired);
}

TEST(EngineTest, CancelAfterFireReturnsFalse) {
  Engine engine;
  const EventId id = engine.schedule_at(1, [] {});
  engine.run();
  EXPECT_FALSE(engine.cancel(id));
}

TEST(EngineTest, RunUntilStopsAtLimit) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(10, [&] { ++fired; });
  engine.schedule_at(20, [&] { ++fired; });
  engine.schedule_at(30, [&] { ++fired; });
  EXPECT_EQ(engine.run_until(20), 2u);  // events at the limit are included
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(engine.now(), 20u);
  EXPECT_EQ(engine.run_until(100), 1u);
  EXPECT_EQ(engine.now(), 100u);  // advances to the limit even when drained
}

TEST(EngineTest, PendingCountExcludesCancelled) {
  Engine engine;
  const EventId a = engine.schedule_at(5, [] {});
  engine.schedule_at(6, [] {});
  EXPECT_EQ(engine.pending(), 2u);
  engine.cancel(a);
  EXPECT_EQ(engine.pending(), 1u);
}

TEST(EngineTest, StopInterruptsRun) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(1, [&] {
    ++fired;
    engine.stop();
  });
  engine.schedule_at(2, [&] { ++fired; });
  engine.run();
  EXPECT_EQ(fired, 1);
  engine.run();  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(EngineTest, SchedulingInPastThrows) {
  Engine engine;
  engine.schedule_at(10, [] {});
  engine.run();
  EXPECT_THROW(engine.schedule_at(5, [] {}), std::logic_error);
}

TEST(EngineTest, EventsCanScheduleEvents) {
  Engine engine;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) engine.schedule_after(1, chain);
  };
  engine.schedule_at(0, chain);
  engine.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(engine.now(), 99u);
  EXPECT_EQ(engine.dispatched(), 100u);
}

TEST(EngineTest, ZeroDelayLivelockDetected) {
  Engine engine;
  std::function<void()> spin = [&] { engine.schedule_after(0, spin); };
  engine.schedule_at(0, spin);
  EXPECT_THROW(engine.run_until(1), std::logic_error);
}

TEST(EngineTest, RunDetectsZeroDelayLivelockToo) {
  // run() must share run_until()'s same-instant guard: a zero-delay
  // re-arming cycle used to hang it forever.
  Engine engine;
  std::function<void()> spin = [&] { engine.schedule_after(0, spin); };
  engine.schedule_at(0, spin);
  EXPECT_THROW(engine.run(), std::logic_error);
}

TEST(EngineTest, SameInstantGuardResetsWhenTimeAdvances) {
  // Bursts of same-instant events separated by real time must never trip
  // the livelock guard, however long the run is.
  Engine engine;
  int bursts = 0;
  std::function<void()> burst = [&] {
    engine.schedule_after(0, [] {});
    engine.schedule_after(0, [] {});
    if (++bursts < 1000) engine.schedule_after(1, burst);
  };
  engine.schedule_at(0, burst);
  EXPECT_NO_THROW(engine.run());
  EXPECT_EQ(engine.now(), 999u);
}

TEST(EngineTest, ResumingAcrossLimitsDoesNotInheritStaleBurst) {
  // Regression: run_until() used to catch the clock up to the limit without
  // resetting the same-instant counter, and no run reset it at entry either.
  // A driver that repeatedly ran an engine to a limit and then scheduled
  // work exactly at that limit (the sharded driver's steady state, once per
  // conservative window) accumulated one phantom same-instant tick per
  // resume — and eventually tripped the livelock guard with no livelock.
  Engine engine;
  engine.set_same_instant_limit(4);
  int fired = 0;
  for (int i = 1; i <= 100; ++i) {
    const SimTime limit = static_cast<SimTime>(i) * 10;
    engine.run_until(limit);  // empty: clock catches up to the limit
    engine.schedule_at(limit, [&fired] { ++fired; });
    // The dispatch lands at when == now(); under the old carry-over this
    // incremented an ever-growing burst count and threw at iteration 5.
    EXPECT_NO_THROW(engine.run_until(limit)) << "iteration " << i;
  }
  EXPECT_EQ(fired, 100);
  // The burst never accumulated across resumes: only the final at-limit
  // dispatch is on the books.
  EXPECT_EQ(engine.same_instant_burst(), 1u);
  engine.run_until(2000);  // the catch-up clock advance resets the burst
  EXPECT_EQ(engine.same_instant_burst(), 0u);
}

TEST(EngineTest, GenuineLivelockStillTripsLoweredGuard) {
  // The entry reset must not weaken the guard within one run: a re-arming
  // cycle still accumulates and throws.
  Engine engine;
  engine.set_same_instant_limit(100);
  std::function<void()> spin = [&] { engine.schedule_after(0, spin); };
  engine.schedule_at(5, spin);
  EXPECT_THROW(engine.run(), std::logic_error);
  EXPECT_GE(engine.same_instant_burst(), 100u);
}

TEST(EngineTest, SameInstantLimitClampsToOne) {
  Engine engine;
  engine.set_same_instant_limit(0);  // clamped to 1
  engine.schedule_at(5, [&] {
    engine.schedule_after(0, [&] { engine.schedule_after(0, [] {}); });
  });
  // Three events at t=5: the third dispatch is the second same-instant tick
  // and exceeds the clamped limit of one.
  EXPECT_THROW(engine.run(), std::logic_error);
}

TEST(EngineTest, StopInRunUntilKeepsClockAtStopPoint) {
  Engine engine;
  SimTime resumed_at = 0;
  engine.schedule_at(10, [&] { engine.stop(); });
  engine.schedule_at(20, [&] { resumed_at = engine.now(); });
  EXPECT_EQ(engine.run_until(100), 1u);
  // The clock must stay at the stop point rather than jump to the limit —
  // a resumed run would otherwise silently skip simulated time (the event
  // at t=20 would appear to fire "in the past").
  EXPECT_EQ(engine.now(), 10u);
  EXPECT_EQ(engine.run_until(100), 1u);
  EXPECT_EQ(resumed_at, 20u);
  EXPECT_EQ(engine.now(), 100u);
}

TEST(EngineTest, CancelRemovesEntryInPlace) {
  Engine engine;
  const EventId a = engine.schedule_at(10, [] {});
  engine.schedule_at(20, [] {});
  EXPECT_EQ(engine.pending(), 2u);
  EXPECT_TRUE(engine.cancel(a));
  EXPECT_EQ(engine.pending(), 1u);  // removed eagerly, no tombstone
  EXPECT_EQ(engine.stats().cancelled, 1u);
  EXPECT_EQ(engine.run(), 1u);
}

TEST(EngineTest, StaleIdCannotCancelRecycledSlot) {
  Engine engine;
  const EventId a = engine.schedule_at(10, [] {});
  ASSERT_TRUE(engine.cancel(a));
  bool fired = false;
  const EventId b = engine.schedule_at(12, [&] { fired = true; });
  EXPECT_NE(a, b);
  EXPECT_FALSE(engine.cancel(a));  // stale id must not hit b's recycled slot
  engine.run();
  EXPECT_TRUE(fired);
}

TEST(EngineTest, CancellationHeavyRunKeepsHeapBounded) {
  // The re-arming-timer pattern of long sweeps: every step cancels and
  // re-schedules a set of far-future timers.  The heap high-water mark must
  // stay O(live timers); with lazy deletion it grew O(steps) tombstones.
  Engine engine;
  constexpr int kTimers = 8;
  constexpr int kSteps = 20'000;
  EventId timers[kTimers] = {};
  int step = 0;
  std::function<void()> drive = [&] {
    for (EventId& id : timers) {
      if (id != kInvalidEventId) {
        ASSERT_TRUE(engine.cancel(id));
      }
      id = engine.schedule_after(kMillisecond, [] {});
    }
    if (++step < kSteps) engine.schedule_after(100, drive);
  };
  engine.schedule_at(0, drive);
  engine.run();
  EXPECT_LE(engine.stats().heap_high_water,
            static_cast<std::size_t>(kTimers) + 2);
  EXPECT_EQ(engine.stats().cancelled,
            static_cast<std::uint64_t>(kSteps - 1) * kTimers);
  EXPECT_EQ(engine.pending(), 0u);
}

TEST(EngineTest, StatsCountSchedulingTraffic) {
  Engine engine;
  const EventId a = engine.schedule_at(5, [] {});
  engine.schedule_at(7, [] {});
  engine.cancel(a);
  engine.run();
  const EngineStats& stats = engine.stats();
  EXPECT_EQ(stats.scheduled, 2u);
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.dispatched, 1u);
  EXPECT_EQ(stats.heap_high_water, 2u);
  EXPECT_GT(engine.dispatch_rate(), 0.0);
}

// --- trace -------------------------------------------------------------------

TEST(TraceTest, DisabledByDefault) {
  Trace trace;
  trace.record({.time = 1, .point = TracePoint::kSchedSwitch});
  EXPECT_EQ(trace.records().size(), 0u);
}

TEST(TraceTest, RecordsWhenEnabled) {
  Trace trace;
  trace.set_enabled(true);
  trace.record({.time = 1, .point = TracePoint::kSchedSwitch, .cpu = 2});
  trace.record({.time = 2, .point = TracePoint::kSchedMigrate});
  trace.record({.time = 3, .point = TracePoint::kSchedSwitch});
  EXPECT_EQ(trace.records().size(), 3u);
  EXPECT_EQ(trace.count(TracePoint::kSchedSwitch), 2u);
  EXPECT_EQ(trace.count(TracePoint::kSchedMigrate), 1u);
  trace.clear();
  EXPECT_EQ(trace.records().size(), 0u);
}

TEST(TraceTest, ChromeJsonContainsEvents) {
  Trace trace;
  trace.set_enabled(true);
  trace.record({.time = 1000, .point = TracePoint::kSchedWakeup, .cpu = 1,
                .tid = 42});
  const std::string json = trace.to_chrome_json();
  EXPECT_NE(json.find("sched_wakeup"), std::string::npos);
  EXPECT_NE(json.find("\"task\": 42"), std::string::npos);
  EXPECT_EQ(json.front(), '[');
}

TEST(TraceTest, PointNames) {
  EXPECT_STREQ(trace_point_name(TracePoint::kSchedSwitch), "sched_switch");
  EXPECT_STREQ(trace_point_name(TracePoint::kSchedMigrate),
               "sched_migrate_task");
  EXPECT_STREQ(trace_point_name(TracePoint::kTick), "tick");
}

}  // namespace
}  // namespace hpcs::sim
