// Tests for runtime co-scheduling (src/rtc): the coordinator broker, hybrid
// ranks' fork/join regions, packed-node scheduling, and the shared-node
// batch mode it motivates.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "batch/allocator.h"
#include "batch/scale.h"
#include "core/hpl.h"
#include "kernel/kernel.h"
#include "mpi/program.h"
#include "mpi/world.h"
#include "rtc/coordinator.h"
#include "rtc/region.h"
#include "sim/engine.h"

namespace hpcs {
namespace {

using batch::NodeAllocator;
using batch::NodeState;
using kernel::Kernel;
using kernel::KernelConfig;
using kernel::Policy;
using kernel::Tid;
using rtc::CoordConfig;
using rtc::Coordinator;
using rtc::CoordMode;

// --- coordinator -------------------------------------------------------------

class RtcCoordinatorTest : public ::testing::Test {
 protected:
  RtcCoordinatorTest() : kernel_(engine_, KernelConfig{}) { kernel_.boot(); }

  Coordinator make(CoordMode mode, int min_lease = 1) {
    return Coordinator(kernel_, CoordConfig{mode, min_lease});
  }

  sim::Engine engine_;
  Kernel kernel_;  // power6_js22 default: 8 hardware threads
};

TEST_F(RtcCoordinatorTest, UncoordinatedModesGrantWhatIsWanted) {
  for (const CoordMode mode :
       {CoordMode::kKernelOnly, CoordMode::kCooperativeYield}) {
    Coordinator coord = make(mode);
    const int id = coord.register_runtime();
    EXPECT_EQ(coord.acquire(id, 32), 32);
    EXPECT_EQ(coord.outstanding(), 32);
    coord.release(id, 32);
    EXPECT_EQ(coord.outstanding(), 0);
    EXPECT_EQ(coord.stats().workers_trimmed, 0u);
  }
}

TEST_F(RtcCoordinatorTest, TokenModeTrimsToFairShare) {
  Coordinator coord = make(CoordMode::kTokenNegotiated);
  std::vector<int> ids;
  for (int i = 0; i < 4; ++i) ids.push_back(coord.register_runtime());
  EXPECT_EQ(coord.registered(), 4);
  // 8 online CPUs / 4 runtimes = 2 cores each, however many are wanted.
  for (const int id : ids) EXPECT_EQ(coord.acquire(id, 8), 2);
  EXPECT_EQ(coord.outstanding(), 8);  // total tracks the hardware
  EXPECT_EQ(coord.stats().workers_trimmed, 4u * 6u);
  for (const int id : ids) coord.release(id, 2);
  EXPECT_EQ(coord.outstanding(), 0);
  EXPECT_EQ(coord.stats().leases_granted, coord.stats().leases_released);
}

TEST_F(RtcCoordinatorTest, TokenModeNeverGrantsMoreThanWanted) {
  Coordinator coord = make(CoordMode::kTokenNegotiated);
  const int id = coord.register_runtime();
  // Fair share would be 8, but the region only wants 3 workers.
  EXPECT_EQ(coord.acquire(id, 3), 3);
  coord.release(id, 3);
}

TEST_F(RtcCoordinatorTest, MinLeaseGuaranteesForwardProgress) {
  Coordinator coord = make(CoordMode::kTokenNegotiated);
  std::vector<int> ids;
  for (int i = 0; i < 16; ++i) ids.push_back(coord.register_runtime());
  // 8 CPUs / 16 runtimes rounds to 0; min_lease keeps every pool alive.
  for (const int id : ids) EXPECT_EQ(coord.acquire(id, 4), 1);
  for (const int id : ids) coord.release(id, 1);
}

TEST_F(RtcCoordinatorTest, UnregisterRebalancesTheShare) {
  Coordinator coord = make(CoordMode::kTokenNegotiated);
  const int a = coord.register_runtime();
  const int b = coord.register_runtime();
  EXPECT_EQ(coord.acquire(a, 8), 4);
  coord.release(a, 4);
  coord.unregister_runtime(b);
  EXPECT_EQ(coord.acquire(a, 8), 8);  // alone again: the whole node
  coord.release(a, 8);
}

TEST_F(RtcCoordinatorTest, MisuseThrows) {
  Coordinator coord = make(CoordMode::kTokenNegotiated);
  const int id = coord.register_runtime();
  EXPECT_THROW(coord.acquire(id, 0), std::invalid_argument);
  const int granted = coord.acquire(id, 2);
  coord.release(id, granted);
  EXPECT_THROW(coord.release(id, 1), std::logic_error);  // over-release
  coord.unregister_runtime(id);
  EXPECT_THROW(coord.unregister_runtime(id), std::logic_error);
  EXPECT_THROW(Coordinator(kernel_, CoordConfig{CoordMode::kKernelOnly, 0}),
               std::invalid_argument);
}

// --- hybrid ranks / regions --------------------------------------------------

class RtcRegionTest : public ::testing::Test {
 protected:
  RtcRegionTest() : kernel_(engine_, KernelConfig{}) { kernel_.boot(); }

  sim::Engine engine_;
  Kernel kernel_;
};

mpi::Program hybrid_program(int workers) {
  mpi::Program p;
  p.compute(microseconds(100))
      .parallel(milliseconds(4), workers)
      .barrier()
      .parallel(milliseconds(2), workers, /*chunks=*/8)
      .compute(microseconds(100));
  return p;
}

TEST_F(RtcRegionTest, ParallelRegionRunsWideAndJoins) {
  mpi::MpiConfig config;
  config.nranks = 1;
  config.run_speed_sigma = 0.0;
  mpi::Program p;
  p.parallel(milliseconds(40), /*workers=*/4, /*chunks=*/64);
  mpi::MpiWorld world(kernel_, config, p);
  world.launch_mpiexec(Policy::kNormal, 0, kernel::kInvalidTid);
  engine_.run_until(seconds(1));
  ASSERT_TRUE(world.finished());
  // 40 ms of region work over 4 workers: once the balancer spreads the
  // pool (they fork onto the master's CPU), the region must clearly beat
  // serial execution — but can never beat perfect 4x speedup.
  const SimDuration span = world.finish_time() - world.start_time();
  EXPECT_LT(span, milliseconds(24));
  EXPECT_GT(span, milliseconds(10));
}

TEST_F(RtcRegionTest, RegionsAreDeterministic) {
  SimTime finish[2];
  for (int run = 0; run < 2; ++run) {
    sim::Engine engine;
    Kernel kernel(engine, KernelConfig{});
    kernel.boot();
    mpi::MpiConfig config;
    config.nranks = 2;
    mpi::MpiWorld world(kernel, config, hybrid_program(3));
    world.launch_mpiexec(Policy::kNormal, 0, kernel::kInvalidTid);
    engine.run_until(seconds(1));
    EXPECT_TRUE(world.finished());
    finish[run] = world.finish_time();
  }
  EXPECT_EQ(finish[0], finish[1]);
}

TEST_F(RtcRegionTest, WorkersInheritTheRankSchedulingClass) {
  sim::Engine engine;
  Kernel kernel(engine, KernelConfig{});
  hpl::install(kernel);  // must precede boot
  kernel.boot();
  std::vector<std::pair<std::string, Policy>> exited;
  kernel.add_exit_listener([&exited](kernel::Task& t) {
    exited.emplace_back(t.name, t.policy);
  });
  mpi::MpiConfig config;
  config.nranks = 2;
  mpi::MpiWorld world(kernel, config, hybrid_program(2));
  world.launch_mpiexec(Policy::kHpc, 0, kernel::kInvalidTid);
  engine.run_until(seconds(1));
  ASSERT_TRUE(world.finished());
  int workers_seen = 0;
  for (const auto& [name, policy] : exited) {
    if (name.find(".w") == std::string::npos) continue;
    ++workers_seen;
    EXPECT_EQ(policy, Policy::kHpc) << name;
  }
  // 2 ranks x 2 regions x 2 workers.
  EXPECT_EQ(workers_seen, 8);
}

TEST_F(RtcRegionTest, CoordinatedModesLeaseAndRelease) {
  Coordinator coord(kernel_, CoordConfig{CoordMode::kTokenNegotiated});
  mpi::MpiConfig config;
  config.nranks = 1;
  mpi::MpiWorld world(kernel_, config, hybrid_program(16));
  world.attach_coordinator(coord);
  world.launch_mpiexec(Policy::kNormal, 0, kernel::kInvalidTid);
  engine_.run_until(seconds(1));
  ASSERT_TRUE(world.finished());
  EXPECT_EQ(coord.stats().regions, 2u);
  // Lone runtime on 8 CPUs: 16-wide requests trimmed to 8.
  EXPECT_EQ(coord.stats().workers_trimmed, 2u * 8u);
  EXPECT_EQ(coord.outstanding(), 0);  // every lease handed back at the join
  EXPECT_EQ(coord.stats().leases_granted, coord.stats().leases_released);
}

TEST_F(RtcRegionTest, RegionConfigValidation) {
  mpi::Program p;
  EXPECT_THROW(p.parallel(1000, 0), std::invalid_argument);
  EXPECT_THROW(p.parallel(1000, 2, -1), std::invalid_argument);
  EXPECT_THROW(
      rtc::RegionState(rtc::RegionConfig{.work = 1, .chunks = 0}, util::Rng(1)),
      std::invalid_argument);
}

// --- packed nodes: co-located CFS + HPL jobs ---------------------------------

TEST(RtcPackedNodeTest, HplSuppressesBalancingOnPackedNode) {
  // One node, two co-located jobs: an HPL (HPC-class) hybrid job and a CFS
  // hybrid job oversubscribing the same 8 hardware threads.  Section V's
  // rule must hold on the packed node: while HPC work is runnable, NO class
  // balances — so at the instant the last HPC task exits, zero balance
  // moves have happened (after that, CFS balances normally again).
  sim::Engine engine;
  Kernel kernel(engine, KernelConfig{});
  hpl::install(kernel);
  kernel.boot();
  kernel.set_invariant_checks(true);
  std::uint64_t moves_while_hpc = ~0ull;
  kernel.add_exit_listener([&kernel, &moves_while_hpc](kernel::Task& t) {
    if (t.policy == Policy::kHpc) {
      moves_while_hpc = kernel.counters().balance_moves;
    }
  });

  mpi::MpiConfig hpc_config;
  hpc_config.nranks = 2;
  hpc_config.run_speed_sigma = 0.0;
  mpi::MpiWorld hpc_job(kernel, hpc_config, hybrid_program(4));

  mpi::MpiConfig cfs_config;
  cfs_config.nranks = 2;
  cfs_config.run_speed_sigma = 0.0;
  mpi::Program cfs_prog;
  cfs_prog.parallel(milliseconds(1), 4).barrier();
  mpi::MpiWorld cfs_job(kernel, cfs_config, cfs_prog);

  hpc_job.launch_mpiexec(Policy::kHpc, 0, kernel::kInvalidTid);
  cfs_job.launch_mpiexec(Policy::kNormal, 0, kernel::kInvalidTid);
  engine.run_until(seconds(1));
  ASSERT_TRUE(hpc_job.finished());
  ASSERT_TRUE(cfs_job.finished());
  EXPECT_EQ(moves_while_hpc, 0u);
  kernel.check_invariants();
}

TEST(RtcPackedNodeTest, CfsBalancesThePackedNodeWithoutHpl) {
  // Same packed workload on a stock kernel: the CFS balancer is free to act
  // and the migration counters are deterministic run to run.
  std::uint64_t moves[2], migrations[2];
  for (int run = 0; run < 2; ++run) {
    sim::Engine engine;
    Kernel kernel(engine, KernelConfig{});
    kernel.boot();
    mpi::MpiConfig config;
    config.nranks = 2;
    config.run_speed_sigma = 0.0;
    mpi::MpiWorld a(kernel, config, hybrid_program(4));
    mpi::MpiWorld b(kernel, config, hybrid_program(4));
    a.launch_mpiexec(Policy::kNormal, 0, kernel::kInvalidTid);
    b.launch_mpiexec(Policy::kNormal, 0, kernel::kInvalidTid);
    engine.run_until(seconds(1));
    ASSERT_TRUE(a.finished());
    ASSERT_TRUE(b.finished());
    moves[run] = kernel.counters().balance_moves;
    migrations[run] = kernel.counters().cpu_migrations;
    kernel.check_invariants();
  }
  EXPECT_EQ(moves[0], moves[1]);
  EXPECT_EQ(migrations[0], migrations[1]);
}

// --- allocator slots ---------------------------------------------------------

TEST(RtcAllocatorTest, SlotModePacksPartialNodesFirst) {
  NodeAllocator alloc(4, 4, batch::AllocPolicy::kBestFit,
                      /*slots_per_node=*/2);
  EXPECT_EQ(alloc.free_slots(), 8);
  const auto first = alloc.allocate_slots(3);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, (std::vector<int>{0, 0, 1}));
  EXPECT_EQ(alloc.busy_slots(0), 2);
  EXPECT_EQ(alloc.busy_slots(1), 1);
  // The next job tops up node 1 before claiming a fresh node.
  const auto second = alloc.allocate_slots(2);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, (std::vector<int>{1, 2}));
  EXPECT_EQ(alloc.free_slots(), 3);
  alloc.check_conservation();
}

TEST(RtcAllocatorTest, SlotReleaseFreesNodeOnLastSlot) {
  NodeAllocator alloc(2, 2, batch::AllocPolicy::kBestFit, 2);
  const auto a = alloc.allocate_slots(1);
  const auto b = alloc.allocate_slots(1);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(alloc.state(0), NodeState::kBusy);
  alloc.release_slots(*a);
  EXPECT_EQ(alloc.state(0), NodeState::kBusy);  // b still resident
  alloc.release_slots(*b);
  EXPECT_EQ(alloc.state(0), NodeState::kFree);
  EXPECT_EQ(alloc.free_slots(), 4);
  alloc.check_conservation();
  EXPECT_THROW(alloc.release_slots(std::vector<int>{0}), std::logic_error);
}

TEST(RtcAllocatorTest, OfflineSharedNodeKeepsEveryOccupantOnRecord) {
  NodeAllocator alloc(2, 2, batch::AllocPolicy::kBestFit, 2);
  const auto a = alloc.allocate_slots(1);
  const auto b = alloc.allocate_slots(1);
  ASSERT_TRUE(a && b);
  ASSERT_EQ((*a)[0], 0);
  ASSERT_EQ((*b)[0], 0);
  // Fault: both co-located jobs must be findable through the occupancy.
  EXPECT_EQ(alloc.set_offline(0), NodeState::kBusy);
  EXPECT_EQ(alloc.busy_slots(0), 2);  // the victims, still on record
  EXPECT_EQ(alloc.free_slots(), 2);   // only node 1's slots remain
  alloc.check_conservation();
  // Victims release as they are torn down; the node stays out of the pool.
  alloc.release_slots(*a);
  alloc.release_slots(*b);
  EXPECT_EQ(alloc.state(0), NodeState::kOffline);
  alloc.check_conservation();
  alloc.set_online(0);
  EXPECT_EQ(alloc.busy_slots(0), 0);
  EXPECT_EQ(alloc.free_slots(), 4);
  alloc.check_conservation();
}

TEST(RtcAllocatorTest, SingleSlotModeIsExactlyTheLegacyAllocator) {
  NodeAllocator legacy(8, 4);
  NodeAllocator slots(8, 4, batch::AllocPolicy::kBestFit, 1);
  const auto a = legacy.allocate(3);
  const auto b = slots.allocate_slots(3);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(*a, *b);
  legacy.release(*a);
  slots.release_slots(*b);
  EXPECT_EQ(legacy.free_count(), slots.free_count());
  EXPECT_THROW(NodeAllocator(4, 4, batch::AllocPolicy::kBestFit, 0),
               std::invalid_argument);
}

// --- shared-node scale scenario ----------------------------------------------

batch::ScaleConfig packed_scale_config() {
  batch::ScaleConfig config;
  config.nodes = 64;
  config.shards = 4;
  config.fabric.nodes_per_switch = 16;
  config.arrivals.jobs = 600;
  config.arrivals.mean_interarrival = 10 * kMillisecond;
  config.arrivals.max_nodes = 12;
  config.arrivals.nodes_log_mean = 1.2;
  config.arrivals.runtime_typical = 400 * kMillisecond;
  config.share.enabled = true;
  config.share.slots_per_node = 4;
  config.share.contention = 0.2;
  config.seed = 77;
  return config;
}

// Golden checksum of packed_scale_config(): pins the shared-node schedule
// bit-for-bit across refactors (the exclusive-node goldens live in
// cluster_scale_test.cpp and are untouched by shared mode).
constexpr std::uint64_t kPackedGolden = 0xd922af6b9db5e51aULL;

TEST(RtcScaleTest, PackedNodesSerialMatchesShardedAtAnyThreadCount) {
  const batch::ScaleConfig config = packed_scale_config();
  const batch::ScaleResult serial = batch::run_scale_serial(config);
  const std::uint64_t golden = serial.checksum();
  EXPECT_EQ(golden, kPackedGolden);
  for (const int threads : {1, 2, 4}) {
    const batch::ScaleResult sharded = batch::run_scale_sharded(config,
                                                                threads);
    EXPECT_EQ(sharded.checksum(), golden) << threads << " threads";
  }
  // Packing really happened: with 4 slots per node the schedule admits far
  // more concurrent work than 64 exclusive nodes could.
  EXPECT_GT(serial.utilization, 0.0);
  EXPECT_LE(serial.utilization, 1.0);
}

TEST(RtcScaleTest, SharingShortensTheScheduleAndPaysContention) {
  batch::ScaleConfig exclusive = packed_scale_config();
  exclusive.share.enabled = false;
  const batch::ScaleResult packed =
      batch::run_scale_serial(packed_scale_config());
  const batch::ScaleResult alone = batch::run_scale_serial(exclusive);
  // 4x the slots: queues drain much faster even though co-located jobs run
  // up to 1 + 0.2 x 3 = 1.6x slower individually.
  EXPECT_LT(packed.mean_wait_s, alone.mean_wait_s);
  EXPECT_LE(packed.makespan, alone.makespan);
}

TEST(RtcScaleTest, SharedNodeFailureChargesEveryCoLocatedJob) {
  batch::ScaleConfig config = packed_scale_config();
  config.arrivals.jobs = 300;
  config.arrivals.runtime_typical = 2 * kSecond;
  config.campaign.node_mtbf = 300 * kSecond;  // ~13 failures expected
  config.campaign.horizon = 60 * kSecond;
  config.ckpt.downtime = 1 * kSecond;
  const batch::ScaleResult serial = batch::run_scale_serial(config);
  // Failures land on packed nodes under heavy load, so knockback must flow
  // through the occupant records (every co-located job, not a single
  // owner) — and identically so in the sharded run.
  EXPECT_GT(serial.ckpt.failures_hit + serial.ckpt.failures_idle, 0u);
  const batch::ScaleResult sharded = batch::run_scale_sharded(config, 2);
  EXPECT_EQ(sharded.checksum(), serial.checksum());
  EXPECT_EQ(sharded.ckpt.failures_hit, serial.ckpt.failures_hit);
  EXPECT_EQ(sharded.ckpt.lost_work_ns, serial.ckpt.lost_work_ns);
}

}  // namespace
}  // namespace hpcs
