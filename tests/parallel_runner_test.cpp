// The parallel sweep executor: bit-identical results at any thread count,
// slot ordering, failure accounting, and the per-run host_seconds contract.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>

#include "exp/runner.h"
#include "mpi/program.h"

namespace hpcs::exp {
namespace {

RunConfig small_config() {
  mpi::Program p;
  p.loop(3).compute(kMillisecond).barrier().end_loop();
  RunConfig config;
  config.program = p;
  config.mpi.nranks = 4;
  return config;
}

/// Everything except host_seconds (wall clock, exempt by contract).
void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_DOUBLE_EQ(a.app_seconds, b.app_seconds);
  EXPECT_DOUBLE_EQ(a.perf_window_seconds, b.perf_window_seconds);
  EXPECT_EQ(a.context_switches, b.context_switches);
  EXPECT_EQ(a.cpu_migrations, b.cpu_migrations);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.wakeups, b.wakeups);
  EXPECT_DOUBLE_EQ(a.energy_joules, b.energy_joules);
  EXPECT_DOUBLE_EQ(a.spin_seconds, b.spin_seconds);
  EXPECT_DOUBLE_EQ(a.average_watts, b.average_watts);
  EXPECT_EQ(a.error, b.error);
}

TEST(ParallelRunner, BitIdenticalAcrossThreadCounts) {
  const RunConfig config = small_config();
  constexpr int kRuns = 12;
  const Series serial = run_series(config, kRuns, 7, SweepOptions{1});
  const Series parallel = run_series(config, kRuns, 7, SweepOptions{8});
  ASSERT_EQ(serial.runs.size(), parallel.runs.size());
  ASSERT_EQ(serial.runs.size(), static_cast<std::size_t>(kRuns));
  for (std::size_t i = 0; i < serial.runs.size(); ++i) {
    SCOPED_TRACE(i);
    expect_identical(serial.runs[i], parallel.runs[i]);
  }
  EXPECT_EQ(serial.failures, parallel.failures);
}

TEST(ParallelRunner, RunsOrderedBySeedSlot) {
  const Series series = run_series(small_config(), 6, 100, SweepOptions{4});
  ASSERT_EQ(series.runs.size(), 6u);
  for (std::size_t i = 0; i < series.runs.size(); ++i) {
    EXPECT_EQ(series.runs[i].seed, 100u + i);
  }
}

TEST(ParallelRunner, HostSecondsIsPerRunAndPositive) {
  const Series series = run_series(small_config(), 4, 1, SweepOptions{2});
  for (const RunResult& r : series.runs) {
    EXPECT_GT(r.host_seconds, 0.0);
  }
}

TEST(ParallelRunner, SerialOverloadMatchesExplicitOptions) {
  const RunConfig config = small_config();
  const Series a = run_series(config, 4, 3);
  const Series b = run_series(config, 4, 3, SweepOptions{1});
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    SCOPED_TRACE(i);
    expect_identical(a.runs[i], b.runs[i]);
  }
}

TEST(SweepOptions, ResolvedThreads) {
  EXPECT_EQ(SweepOptions{1}.resolved_threads(10), 1);
  EXPECT_EQ(SweepOptions{4}.resolved_threads(10), 4);
  // Never more workers than runs.
  EXPECT_EQ(SweepOptions{8}.resolved_threads(3), 3);
  // 0 (and anything non-positive) means hardware concurrency, >= 1.
  EXPECT_GE(SweepOptions{0}.resolved_threads(1000), 1);
  EXPECT_GE(SweepOptions{-5}.resolved_threads(10), 1);
  EXPECT_LE(SweepOptions{-5}.resolved_threads(10), 10);
}

TEST(Series, SlowestSeedPicksLargestHostSeconds) {
  Series series;
  for (int i = 0; i < 4; ++i) {
    RunResult r;
    r.seed = static_cast<std::uint64_t>(10 + i);
    r.host_seconds = (i == 2) ? 9.5 : 0.1 * (i + 1);
    series.runs.push_back(r);
  }
  EXPECT_EQ(series.slowest_seed(), 12u);
  EXPECT_EQ(Series{}.slowest_seed(), 0u);
}

TEST(Series, ErrorsCollectsFailedRuns) {
  Series series;
  RunResult ok;
  ok.completed = true;
  RunResult bad;
  bad.error = "boom";
  series.runs.push_back(ok);
  series.runs.push_back(bad);
  const auto errors = series.errors();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0], "boom");
}

}  // namespace
}  // namespace hpcs::exp
