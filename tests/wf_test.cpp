// Tests for the workflow layer: the hpcsched-style control-file parser, the
// WorkflowDag model (cycles, ready set, bottom levels), the seeded DAG
// generator, the BatchScheduler dependency machinery (held jobs, EASY-CP
// ordering, mid-DAG faults), and the sharded scale scenario's workflow
// mode (golden-pinned serial-vs-sharded checksums).
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "batch/scale.h"
#include "batch/scheduler.h"
#include "batch/workflow.h"
#include "cluster/cluster.h"
#include "exp/workflow.h"
#include "sim/engine.h"
#include "wf/control.h"
#include "wf/dag.h"
#include "wf/generator.h"

namespace hpcs {
namespace {

using batch::BatchConfig;
using batch::BatchPolicy;
using batch::BatchScheduler;
using batch::JobSpec;
using batch::JobState;

cluster::ClusterConfig quiet_cluster(int nodes) {
  cluster::ClusterConfig config;
  config.nodes = nodes;
  config.spawn_daemons = false;
  config.fabric = net::FabricConfig{};
  return config;
}

BatchConfig deterministic_config(BatchPolicy policy) {
  BatchConfig config;
  config.policy = policy;
  config.mpi.run_speed_sigma = 0.0;
  config.mpi.compute_jitter = 0.0;
  return config;
}

/// A deterministic workflow task: `nodes` wide, iterations x grain of work,
/// conservative 2x estimate, explicit dependencies.
wf::TaskSpec task(int id, int nodes, int iterations,
                  std::vector<int> deps = {}) {
  wf::TaskSpec t;
  t.id = id;
  t.nodes = nodes;
  t.ranks_per_node = 2;
  t.iterations = iterations;
  t.grain = 2 * kMillisecond;
  t.estimate = 2 * wf::task_ideal_runtime(t);
  t.deps = std::move(deps);
  return t;
}

// The README's example campaign: prep feeds two solvers, reduce joins them.
const char* const kControlExample =
    "# stage campaign: prep feeds two solvers, reduce joins them\n"
    "prep.dat :\n"
    "\tgen --out prep.dat nodes=1 iters=4 grain=2ms\n"
    "solve_a.dat : prep.dat\n"
    "\tsolver --in prep.dat nodes=2 iters=12 grain=2ms est=3x\n"
    "solve_b.dat : prep.dat\n"
    "\tsolver --in prep.dat nodes=2 iters=6 grain=2ms\n"
    "report.txt : solve_a.dat solve_b.dat\n"
    "\treduce --out report.txt nodes=1 iters=2 grain=2ms\n";

// --- control-file parsing ----------------------------------------------------

TEST(ControlFileTest, ParsesRulesCommandsAndComments) {
  const wf::ControlFile file = wf::parse_control(kControlExample);
  ASSERT_EQ(file.rules.size(), 4u);
  EXPECT_EQ(file.rules[0].results, std::vector<std::string>{"prep.dat"});
  EXPECT_TRUE(file.rules[0].deps.empty());
  ASSERT_EQ(file.rules[0].commands.size(), 1u);
  EXPECT_EQ(file.rules[0].commands[0],
            "gen --out prep.dat nodes=1 iters=4 grain=2ms");
  EXPECT_EQ(file.rules[3].deps,
            (std::vector<std::string>{"solve_a.dat", "solve_b.dat"}));
  EXPECT_EQ(file.rules[1].line, 4);  // 1-based, comments/blank lines count
}

TEST(ControlFileTest, ErrorsCarryLineNumbers) {
  try {
    wf::parse_control("\tcmd before any rule\n");
    FAIL() << "command before a rule must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos)
        << e.what();
  }
  try {
    wf::parse_control("a :\n\tcmd\n\n: missing results\n\tcmd\n");
    FAIL() << "a rule without results must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(wf::parse_control("a :\n# no commands follow\n"),
               std::invalid_argument);
}

TEST(ControlFileTest, AnnotationsMapToTaskSpecs) {
  const auto tasks = wf::parse_control_tasks(kControlExample);
  ASSERT_EQ(tasks.size(), 4u);
  // Rule order is job-id order; deps resolve result name -> producing job.
  EXPECT_EQ(tasks[0].name, "prep.dat");
  EXPECT_EQ(tasks[0].nodes, 1);
  EXPECT_EQ(tasks[0].iterations, 4);
  EXPECT_EQ(tasks[0].grain, 2 * kMillisecond);
  EXPECT_EQ(tasks[1].deps, std::vector<int>{1});
  EXPECT_EQ(tasks[3].deps, (std::vector<int>{2, 3}));
  // est=3x scales the ideal runtime; the default factor is 2x.
  EXPECT_EQ(tasks[1].estimate, 3 * wf::task_ideal_runtime(tasks[1]));
  EXPECT_EQ(tasks[2].estimate, 2 * wf::task_ideal_runtime(tasks[2]));
}

TEST(ControlFileTest, AnnotationsAggregateAcrossCommandLines) {
  const auto tasks = wf::parse_control_tasks(
      "out :\n"
      "\tstep1 nodes=2 iters=5 grain=3ms\n"
      "\tstep2 nodes=4 iters=7\n"
      "\tstep3\n");
  ASSERT_EQ(tasks.size(), 1u);
  EXPECT_EQ(tasks[0].nodes, 4);  // width = max over lines
  // iterations sum over lines; an unannotated line contributes the default.
  wf::ControlDefaults defaults;
  EXPECT_EQ(tasks[0].iterations, 5 + 7 + defaults.iterations);
  EXPECT_EQ(tasks[0].grain, 3 * kMillisecond);  // first line that sets it
}

TEST(ControlFileTest, RejectsBadGraphs) {
  // A dependency no rule produces.
  EXPECT_THROW(wf::parse_control_tasks("a : ghost\n\tcmd\n"),
               std::invalid_argument);
  // Two rules producing the same result.
  EXPECT_THROW(wf::parse_control_tasks("a :\n\tcmd\nb a :\n\tcmd\n"),
               std::invalid_argument);
  // A cycle through forward references (forward deps alone are legal).
  EXPECT_THROW(wf::parse_control_tasks("a : b\n\tcmd\nb : a\n\tcmd\n"),
               std::invalid_argument);
  const auto forward =
      wf::parse_control_tasks("a : b\n\tcmd\nb :\n\tcmd\n");
  EXPECT_EQ(forward[0].deps, std::vector<int>{2});
}

TEST(ControlFileTest, ParseDurationSuffixes) {
  EXPECT_EQ(wf::parse_duration("5ms"), 5 * kMillisecond);
  EXPECT_EQ(wf::parse_duration("2s"), 2 * kSecond);
  EXPECT_EQ(wf::parse_duration("750us"), 750 * kMicrosecond);
  EXPECT_EQ(wf::parse_duration("40ns"), SimDuration{40});
  EXPECT_EQ(wf::parse_duration("123"), SimDuration{123});
  EXPECT_THROW(wf::parse_duration("5parsecs"), std::invalid_argument);
  EXPECT_THROW(wf::parse_duration(""), std::invalid_argument);
}

// --- WorkflowDag -------------------------------------------------------------

TEST(WorkflowDagTest, BottomLevelsAndIncrementalReadySet) {
  // Diamond: 1 -> {2 heavy, 3 light} -> 4.
  wf::WorkflowDag dag;
  dag.add_task(1, 10 * kMillisecond, {});
  dag.add_task(2, 40 * kMillisecond, {1});
  dag.add_task(3, 5 * kMillisecond, {1});
  dag.add_task(4, 20 * kMillisecond, {2, 3});
  dag.finalize();
  EXPECT_EQ(dag.size(), 4u);
  EXPECT_EQ(dag.edge_count(), 4u);
  EXPECT_EQ(dag.bottom_level(4), 20 * kMillisecond);
  EXPECT_EQ(dag.bottom_level(2), 60 * kMillisecond);
  EXPECT_EQ(dag.bottom_level(3), 25 * kMillisecond);
  EXPECT_EQ(dag.bottom_level(1), 70 * kMillisecond);
  EXPECT_EQ(dag.critical_path(), 70 * kMillisecond);  // 1 -> 2 -> 4
  EXPECT_EQ(dag.remaining_critical_path(), 70 * kMillisecond);
  EXPECT_EQ(dag.ready(), std::vector<int>{1});
  EXPECT_FALSE(dag.is_ready(2));

  EXPECT_EQ(dag.mark_finished(1), (std::vector<int>{2, 3}));
  EXPECT_EQ(dag.remaining_critical_path(), 60 * kMillisecond);
  EXPECT_TRUE(dag.mark_finished(3).empty());  // 4 still waits on 2
  EXPECT_EQ(dag.mark_finished(2), std::vector<int>{4});
  EXPECT_EQ(dag.remaining_critical_path(), 20 * kMillisecond);
  EXPECT_TRUE(dag.mark_finished(4).empty());
  EXPECT_EQ(dag.finished_count(), 4u);
  EXPECT_EQ(dag.remaining_critical_path(), SimDuration{0});
}

TEST(WorkflowDagTest, DescendantsAndValidation) {
  wf::WorkflowDag dag;
  dag.add_task(1, kMillisecond, {});
  dag.add_task(2, kMillisecond, {1});
  dag.add_task(3, kMillisecond, {2});
  dag.add_task(4, kMillisecond, {1});
  dag.finalize();
  EXPECT_EQ(dag.descendants(1), (std::vector<int>{2, 3, 4}));
  EXPECT_EQ(dag.descendants(2), std::vector<int>{3});
  EXPECT_TRUE(dag.descendants(3).empty());
  EXPECT_EQ(dag.dependents(1), (std::vector<int>{2, 4}));

  // Completions must respect the graph.
  EXPECT_THROW(dag.mark_finished(2), std::logic_error);
  dag.mark_finished(1);
  EXPECT_THROW(dag.mark_finished(1), std::logic_error);

  wf::WorkflowDag dup;
  dup.add_task(1, kMillisecond, {});
  EXPECT_THROW(dup.add_task(1, kMillisecond, {}), std::invalid_argument);
  EXPECT_THROW(dup.add_task(2, kMillisecond, {2}), std::invalid_argument);

  wf::WorkflowDag cyclic;
  cyclic.add_task(1, kMillisecond, {2});
  cyclic.add_task(2, kMillisecond, {1});
  EXPECT_THROW(cyclic.finalize(), std::invalid_argument);

  wf::WorkflowDag unknown;
  unknown.add_task(1, kMillisecond, {99});
  EXPECT_THROW(unknown.finalize(), std::invalid_argument);
}

// --- generator ---------------------------------------------------------------

TEST(DagGeneratorTest, BitIdenticalPerSeedAndShaped) {
  wf::DagGenConfig config;
  config.shape = wf::DagShape::kDiamond;
  config.branches = 3;
  config.depth = 2;
  const auto a = wf::generate_dag(config, 11);
  const auto b = wf::generate_dag(config, 11);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), 1u + 3u * 2u + 1u);  // source + chains + sink
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].nodes, b[i].nodes);
    EXPECT_EQ(a[i].iterations, b[i].iterations);
    EXPECT_EQ(a[i].deps, b[i].deps);
    EXPECT_GE(a[i].nodes, 1);
    EXPECT_LE(a[i].nodes, config.max_nodes);
    EXPECT_GE(a[i].iterations, 1);
    EXPECT_GE(a[i].estimate, wf::task_ideal_runtime(a[i]));
  }
  const auto c = wf::generate_dag(config, 12);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_diff |= a[i].nodes != c[i].nodes || a[i].iterations != c[i].iterations;
  }
  EXPECT_TRUE(any_diff) << "different seeds must give different DAGs";

  // Source has no deps, the sink joins every chain tail, and the whole
  // task list forms a valid acyclic graph.
  EXPECT_TRUE(a.front().deps.empty());
  EXPECT_EQ(a.back().deps.size(), 3u);
  const wf::WorkflowDag dag = wf::dag_from_tasks(a);
  EXPECT_EQ(dag.ready(), std::vector<int>{a.front().id});
  EXPECT_GE(dag.critical_path(),
            wf::task_ideal_runtime(a.front()) +
                wf::task_ideal_runtime(a.back()));
}

TEST(DagGeneratorTest, ShapesAndFirstId) {
  wf::DagGenConfig chain;
  chain.shape = wf::DagShape::kChain;
  chain.depth = 4;
  chain.first_id = 100;
  const auto tasks = wf::generate_dag(chain, 3);
  ASSERT_EQ(tasks.size(), 4u);
  EXPECT_EQ(tasks[0].id, 100);
  EXPECT_TRUE(tasks[0].deps.empty());
  for (std::size_t i = 1; i < tasks.size(); ++i) {
    EXPECT_EQ(tasks[i].deps, std::vector<int>{tasks[i - 1].id});
  }

  wf::DagGenConfig fan;
  fan.shape = wf::DagShape::kFanOutIn;
  fan.branches = 5;
  const auto leaves = wf::generate_dag(fan, 3);
  ASSERT_EQ(leaves.size(), 7u);  // source + 5 leaves + sink
  for (std::size_t i = 1; i + 1 < leaves.size(); ++i) {
    EXPECT_EQ(leaves[i].deps, std::vector<int>{leaves[0].id});
  }
  EXPECT_EQ(leaves.back().deps.size(), 5u);

  wf::DagGenConfig bad;
  bad.branches = 0;
  EXPECT_THROW(wf::generate_dag(bad, 1), std::invalid_argument);
}

// --- scheduler: dependency machinery ----------------------------------------

TEST(WorkflowSchedulerTest, HeldJobsEnterQueueOnlyWhenReady) {
  sim::Engine engine;
  cluster::Cluster cluster(engine, quiet_cluster(4));
  BatchScheduler sched(cluster, deterministic_config(BatchPolicy::kEasy));
  // Chain 1 -> 2 -> 3, submitted as a unit at t = 0.
  sched.submit_all(batch::jobs_from_tasks(
      {task(1, 2, 10), task(2, 2, 5, {1}), task(3, 2, 5, {2})}));
  engine.run_until(kMillisecond);
  EXPECT_EQ(sched.held_count(), 2);  // 2 and 3 wait on dependencies
  EXPECT_TRUE(sched.workflow_mode());
  engine.run_until(10 * kSecond);
  ASSERT_TRUE(sched.all_done());
  const auto& records = sched.records();
  ASSERT_EQ(records.size(), 3u);
  for (const auto& r : records) EXPECT_EQ(r.state, JobState::kFinished);
  // A job becomes ready the instant its last dependency finishes, and its
  // dependency stall is exactly that gap.
  EXPECT_EQ(records[0].ready, records[0].spec.arrival);
  EXPECT_EQ(records[1].ready, records[0].finish);
  EXPECT_EQ(records[2].ready, records[1].finish);
  EXPECT_GE(records[1].start, records[1].ready);
  EXPECT_EQ(records[1].dep_stall(), records[0].finish);
  EXPECT_EQ(records[1].wait(), records[1].dep_stall() +
                                   records[1].queue_wait());

  const batch::BatchMetrics m = sched.metrics();
  EXPECT_EQ(m.finished, 3);
  EXPECT_GT(m.workflow_makespan_s, 0.0);
  EXPECT_GT(m.critical_path_s, 0.0);
  EXPECT_GE(m.cp_stretch, 1.0);
  EXPECT_GT(m.mean_dep_stall_s, 0.0);
  EXPECT_GE(m.max_dep_stall_s, m.mean_dep_stall_s);
}

TEST(WorkflowSchedulerTest, EasyCpRunsHeaviestBranchFirst) {
  // Diamond on a 2-node cluster: after the source, exactly one 2-node
  // branch fits at a time.  Ids are ordered light -> heavy, so plain EASY
  // (arrival then id) would run the light branch first; EASY-CP must pick
  // the branch gating the heaviest remaining path.
  const std::vector<wf::TaskSpec> tasks = {
      task(1, 1, 2),           // source
      task(2, 2, 5, {1}),      // light branch
      task(3, 2, 25, {1}),     // medium branch
      task(4, 2, 50, {1}),     // heavy branch
      task(5, 1, 2, {2, 3, 4})  // sink
  };
  sim::Engine engine;
  cluster::Cluster cluster(engine, quiet_cluster(2));
  BatchScheduler sched(cluster, deterministic_config(BatchPolicy::kEasyCp));
  sched.submit_all(batch::jobs_from_tasks(tasks));
  engine.run_until(10 * kSecond);
  ASSERT_TRUE(sched.all_done());
  const auto& records = sched.records();
  // Golden ordering: heavy (id 4) before medium (id 3) before light (id 2).
  EXPECT_LT(records[3].start, records[2].start);
  EXPECT_LT(records[2].start, records[1].start);

  // The dag the scheduler built agrees with the standalone model.
  EXPECT_EQ(sched.dag().critical_path(),
            wf::task_ideal_runtime(tasks[0]) +
                wf::task_ideal_runtime(tasks[3]) +
                wf::task_ideal_runtime(tasks[4]));

  // Plain EASY on the same workload runs them in id order instead.
  sim::Engine engine2;
  cluster::Cluster cluster2(engine2, quiet_cluster(2));
  BatchScheduler easy(cluster2, deterministic_config(BatchPolicy::kEasy));
  easy.submit_all(batch::jobs_from_tasks(tasks));
  engine2.run_until(10 * kSecond);
  ASSERT_TRUE(easy.all_done());
  EXPECT_LT(easy.records()[1].start, easy.records()[2].start);
  EXPECT_LT(easy.records()[2].start, easy.records()[3].start);
}

TEST(WorkflowSchedulerTest, SjfTieBreaksByEstimateArrivalId) {
  // Same estimate + same arrival: SJF must fall back to id order no matter
  // the submission order (the regression the comparator chain pins).
  sim::Engine engine;
  cluster::Cluster cluster(engine, quiet_cluster(2));
  BatchScheduler sched(cluster, deterministic_config(BatchPolicy::kSjf));
  std::vector<JobSpec> jobs;
  for (const int id : {3, 1, 2}) {
    JobSpec spec;
    spec.id = id;
    spec.arrival = 0;
    spec.nodes = 2;
    spec.ranks_per_node = 2;
    spec.iterations = 5;
    spec.grain = 2 * kMillisecond;
    spec.estimate = 100 * kMillisecond;  // identical estimates
    jobs.push_back(spec);
  }
  // A genuinely shorter job must still jump ahead of every tied one.
  JobSpec shorter = jobs[0];
  shorter.id = 4;
  shorter.estimate = 50 * kMillisecond;
  jobs.push_back(shorter);
  sched.submit_all(jobs);
  engine.run_until(10 * kSecond);
  ASSERT_TRUE(sched.all_done());
  const auto& records = sched.records();  // submit order: 3, 1, 2, 4
  const auto start_of = [&](int id) {
    for (const auto& r : records) {
      if (r.spec.id == id) return r.start;
    }
    ADD_FAILURE() << "job " << id << " not found";
    return batch::kNoPromise;
  };
  EXPECT_LT(start_of(4), start_of(1));
  EXPECT_LT(start_of(1), start_of(2));
  EXPECT_LT(start_of(2), start_of(3));
}

TEST(WorkflowSchedulerTest, FailedDependencyCancelsDescendants) {
  sim::Engine engine;
  cluster::Cluster cluster(engine, quiet_cluster(2));
  BatchConfig config = deterministic_config(BatchPolicy::kEasy);
  config.resubmit_failed = false;
  // Node 0 dies under the source and never comes back; the chain behind it
  // can never run.
  config.node_faults.push_back({5 * kMillisecond, 0, false});
  BatchScheduler sched(cluster, config);
  sched.submit_all(batch::jobs_from_tasks(
      {task(1, 2, 50), task(2, 1, 5, {1}), task(3, 1, 5, {2})}));
  engine.run_until(10 * kSecond);
  ASSERT_TRUE(sched.all_done());
  const auto& records = sched.records();
  EXPECT_EQ(records[0].state, JobState::kFailed);
  EXPECT_EQ(records[1].state, JobState::kCanceled);
  EXPECT_EQ(records[2].state, JobState::kCanceled);
  EXPECT_EQ(sched.held_count(), 0);
  EXPECT_EQ(sched.metrics().canceled, 2);
  EXPECT_EQ(sched.metrics().failed, 1);
}

TEST(WorkflowSchedulerTest, MidDagFaultRerunsJobAndKeepsDownstreamHeld) {
  sim::Engine engine;
  cluster::Cluster cluster(engine, quiet_cluster(2));
  BatchConfig config = deterministic_config(BatchPolicy::kEasy);
  // The source loses a node mid-run and is resubmitted; its dependent must
  // stay held through the whole rerun.
  config.node_faults.push_back({10 * kMillisecond, 1, false});
  config.node_faults.push_back({30 * kMillisecond, 1, true});
  BatchScheduler sched(cluster, config);
  sched.submit_all(
      batch::jobs_from_tasks({task(1, 2, 10), task(2, 2, 5, {1})}));
  engine.run_until(20 * kMillisecond);
  EXPECT_EQ(sched.held_count(), 1) << "dependent held across the rerun";
  engine.run_until(10 * kSecond);
  ASSERT_TRUE(sched.all_done());
  const auto& records = sched.records();
  EXPECT_EQ(records[0].state, JobState::kFinished);
  EXPECT_EQ(records[0].resubmits, 1);
  EXPECT_EQ(records[1].state, JobState::kFinished);
  // The dependent became ready exactly when the *successful* rerun
  // finished — after the repair, with the whole outage inside its stall.
  EXPECT_EQ(records[1].ready, records[0].finish);
  EXPECT_GE(records[1].ready, 30 * kMillisecond);
  EXPECT_EQ(records[1].dep_stall(), records[0].finish);
  EXPECT_EQ(sched.node_failures(), 1u);
  EXPECT_EQ(sched.metrics().canceled, 0);
}

TEST(WorkflowSchedulerTest, CampaignDrivenRunIsSeedDeterministic) {
  // A seeded fault campaign with repairs over a fan-out workflow: the run
  // must drain, and replaying the same seed must reproduce every record
  // bit-for-bit (start, finish, ready, resubmits).
  const auto run = [](std::uint64_t seed) {
    sim::Engine engine;
    cluster::Cluster cluster(engine, quiet_cluster(4));
    BatchConfig config = deterministic_config(BatchPolicy::kEasyCp);
    config.campaign.nodes = 4;
    config.campaign.node_mtbf = 2 * kSecond;
    config.campaign.horizon = 4 * kSecond;
    config.campaign_repair = 50 * kMillisecond;
    config.seed = seed;
    BatchScheduler sched(cluster, config);
    wf::DagGenConfig gen;
    gen.shape = wf::DagShape::kFanOutIn;
    gen.branches = 6;
    gen.nodes_typical = 2;
    gen.max_nodes = 3;
    gen.iters_typical = 40;
    sched.submit_all(batch::jobs_from_generated(gen, seed));
    engine.run_until(60 * kSecond);
    EXPECT_TRUE(sched.all_done());
    return std::make_pair(sched.records(), sched.metrics());
  };
  const auto [a, ma] = run(9);
  const auto [b, mb] = run(9);
  ASSERT_EQ(a.size(), b.size());
  int reruns = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].state, b[i].state) << "job " << a[i].spec.id;
    EXPECT_EQ(a[i].start, b[i].start) << "job " << a[i].spec.id;
    EXPECT_EQ(a[i].finish, b[i].finish) << "job " << a[i].spec.id;
    EXPECT_EQ(a[i].ready, b[i].ready) << "job " << a[i].spec.id;
    EXPECT_EQ(a[i].resubmits, b[i].resubmits) << "job " << a[i].spec.id;
    reruns += a[i].resubmits;
  }
  EXPECT_DOUBLE_EQ(ma.workflow_makespan_s, mb.workflow_makespan_s);
  EXPECT_DOUBLE_EQ(ma.cp_stretch, mb.cp_stretch);
  // The campaign is dense enough to actually exercise the rerun path.
  EXPECT_GT(reruns + ma.failed + ma.canceled, 0)
      << "campaign never hit the workflow; tighten node_mtbf";
}

// --- exp runner --------------------------------------------------------------

TEST(WorkflowRunnerTest, RunsControlFileCampaign) {
  exp::WorkflowRunConfig config;
  config.nodes = 4;
  config.batch = deterministic_config(BatchPolicy::kEasyCp);
  config.control = kControlExample;
  const exp::RunResult r = exp::run_workflow_once(config, 3);
  EXPECT_TRUE(r.completed) << r.error;
  EXPECT_GT(r.workflow_makespan_seconds, 0.0);
  EXPECT_GE(r.workflow_cp_stretch, 1.0);
  // Same seed, same schedule.
  const exp::RunResult again = exp::run_workflow_once(config, 3);
  EXPECT_DOUBLE_EQ(r.workflow_makespan_seconds,
                   again.workflow_makespan_seconds);
  EXPECT_DOUBLE_EQ(r.workflow_cp_stretch, again.workflow_cp_stretch);
}

// --- sharded scale scenario --------------------------------------------------

batch::ScaleConfig scale_workflow_config() {
  batch::ScaleConfig config;
  config.nodes = 64;
  config.shards = 4;
  config.fabric.nodes_per_switch = 16;
  config.seed = 5;
  config.wf.enabled = true;
  config.wf.dag.shape = wf::DagShape::kDiamond;
  config.wf.dag.branches = 4;
  config.wf.dag.depth = 2;
  config.wf.dag.nodes_typical = 3;
  config.wf.dag.max_nodes = 8;
  config.wf.instances = 4;
  config.wf.spacing = 100 * kMillisecond;
  return config;
}

TEST(ClusterScaleWorkflowTest, SerialMatchesShardedAtEveryThreadCount) {
  const batch::ScaleConfig config = scale_workflow_config();
  const batch::ScaleResult serial = batch::run_scale_serial(config);
  ASSERT_EQ(serial.jobs.size(), 4u * (1u + 4u * 2u + 1u));
  EXPECT_GT(serial.dep_releases, 0u);
  EXPECT_GT(serial.wf_makespan_s, 0.0);
  EXPECT_GE(serial.wf_cp_stretch, 1.0);
  EXPECT_GT(serial.wf_dep_stall_s, 0.0);
  for (const int threads : {1, 2, 4}) {
    const batch::ScaleResult sharded =
        batch::run_scale_sharded(config, threads);
    EXPECT_EQ(sharded.checksum(), serial.checksum())
        << "sharded schedule diverged at " << threads << " threads";
    EXPECT_EQ(sharded.dep_releases, serial.dep_releases);
    EXPECT_DOUBLE_EQ(sharded.wf_makespan_s, serial.wf_makespan_s);
  }
  // Golden checksum: pins the workflow schedule bit-for-bit across builds.
  // Regenerate by printing serial.checksum() if the scenario is *meant* to
  // change.
  EXPECT_EQ(serial.checksum(), 0x56bb590fe475eddaull);
}

TEST(ClusterScaleWorkflowTest, LegacyArrivalPathIsUntouched) {
  // The workflow fields must stay inert when wf.enabled is false: same
  // scenario as the committed cluster-scale goldens, zero workflow output.
  batch::ScaleConfig config;
  config.nodes = 64;
  config.shards = 4;
  config.fabric.nodes_per_switch = 16;
  config.arrivals.jobs = 200;
  config.seed = 5;
  const batch::ScaleResult serial = batch::run_scale_serial(config);
  EXPECT_EQ(serial.dep_releases, 0u);
  EXPECT_EQ(serial.wf_makespan_s, 0.0);
  EXPECT_EQ(serial.wf_cp_stretch, 0.0);
  const batch::ScaleResult sharded = batch::run_scale_sharded(config, 2);
  EXPECT_EQ(sharded.checksum(), serial.checksum());
}

}  // namespace
}  // namespace hpcs
