// The bench telemetry pipeline: the JSON value type, the harness schema,
// and the noise-aware comparison policy behind the CI perf-regression gate.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "bench/harness.h"
#include "tools/compare.h"
#include "util/json.h"
#include "util/stats.h"

namespace hpcs {
namespace {

using util::Json;

// ---------------------------------------------------------------------------
// Json

TEST(Json, RoundTripsScalarsAndContainers) {
  const std::string text =
      R"({"name":"x","count":3,"mean":1.5,"ok":true,"none":null,)"
      R"("tags":["a","b"],"nested":{"k":-7}})";
  const Json j = Json::parse(text);
  EXPECT_EQ(j.at("name").as_string(), "x");
  EXPECT_EQ(j.at("count").as_int(), 3);
  EXPECT_DOUBLE_EQ(j.at("mean").as_double(), 1.5);
  EXPECT_TRUE(j.at("ok").as_bool());
  EXPECT_TRUE(j.at("none").is_null());
  ASSERT_EQ(j.at("tags").size(), 2u);
  EXPECT_EQ(j.at("tags").at(1).as_string(), "b");
  EXPECT_EQ(j.at("nested").at("k").as_int(), -7);
  // Dump -> parse -> dump is a fixed point.
  const std::string dumped = j.dump();
  EXPECT_EQ(Json::parse(dumped).dump(), dumped);
}

TEST(Json, PreservesObjectInsertionOrder) {
  Json j = Json::object();
  j.set("zeta", 1);
  j.set("alpha", 2);
  j.set("mid", 3);
  EXPECT_EQ(j.dump(), R"({"zeta":1,"alpha":2,"mid":3})");
}

TEST(Json, IntsAndDoublesStayDistinct) {
  const Json j = Json::parse(R"({"i":42,"d":42.0})");
  EXPECT_EQ(j.at("i").type(), Json::Type::kInt);
  EXPECT_EQ(j.at("d").type(), Json::Type::kDouble);
  // A dumped double stays parseable as a double (the ".0" marker).
  EXPECT_EQ(j.dump(), R"({"i":42,"d":42.0})");
}

TEST(Json, EscapesRoundTrip) {
  Json j = Json::object();
  j.set("s", std::string("a\"b\\c\n\t\x01 d"));
  const Json back = Json::parse(j.dump());
  EXPECT_EQ(back.at("s").as_string(), "a\"b\\c\n\t\x01 d");
  // \uXXXX escapes decode to UTF-8 (U+00E9 = C3 A9).
  EXPECT_EQ(Json::parse("\"\\u00e9A\"").as_string(),
            "\xc3\xa9"
            "A");
}

TEST(Json, ParseErrors) {
  EXPECT_THROW(Json::parse(""), std::runtime_error);
  EXPECT_THROW(Json::parse("{"), std::runtime_error);
  EXPECT_THROW(Json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(Json::parse("{} trailing"), std::runtime_error);
  EXPECT_THROW(Json::parse("nul"), std::runtime_error);
  EXPECT_THROW(Json::parse(R"({"a":1)"), std::runtime_error);
}

TEST(Json, TypedAccessorsThrowOnMismatch) {
  const Json j = Json::parse(R"({"s":"x"})");
  EXPECT_THROW(j.at("s").as_int(), std::runtime_error);
  EXPECT_THROW(j.at("missing"), std::runtime_error);
  EXPECT_EQ(j.find("missing"), nullptr);
}

// ---------------------------------------------------------------------------
// ci95_half_width

TEST(Stats, Ci95HalfWidth) {
  EXPECT_DOUBLE_EQ(util::ci95_half_width(0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(util::ci95_half_width(1, 1.0), 0.0);
  // n=2, df=1: t = 12.706; half-width = t * s / sqrt(n).
  EXPECT_NEAR(util::ci95_half_width(2, 1.0), 12.706 / std::sqrt(2.0), 1e-3);
  // Large n approaches the normal 1.96.
  EXPECT_NEAR(util::ci95_half_width(10000, 1.0), 1.96 / 100.0, 1e-4);
}

// ---------------------------------------------------------------------------
// compare

Json metric(const std::string& name, const std::string& direction,
            double mean, double ci95, int count = 5) {
  Json m = Json::object();
  m.set("name", name);
  m.set("unit", "s");
  m.set("direction", direction);
  m.set("count", count);
  m.set("mean", mean);
  m.set("stddev", 0.0);
  m.set("ci95", ci95);
  m.set("min", mean);
  m.set("max", mean);
  return m;
}

Json doc(std::vector<Json> metrics) {
  Json d = Json::object();
  d.set("schema_version", bench::kBenchSchemaVersion);
  d.set("bench", "t");
  Json arr = Json::array();
  for (auto& m : metrics) arr.push_back(std::move(m));
  d.set("metrics", std::move(arr));
  return d;
}

TEST(Compare, WithinEnvelopeIsOk) {
  // allowed = 2 * 0.05 + 0.02 * 10 = 0.3; delta 0.25 stays ok.
  const auto report =
      tools::compare(doc({metric("m", "lower", 10.0, 0.05)}),
                     doc({metric("m", "lower", 10.25, 0.0)}), {});
  ASSERT_EQ(report.rows.size(), 1u);
  EXPECT_EQ(report.rows[0].status, tools::MetricStatus::kOk);
  EXPECT_FALSE(report.failed());
}

TEST(Compare, BeyondEnvelopeBadDirectionRegresses) {
  const auto report =
      tools::compare(doc({metric("m", "lower", 10.0, 0.05)}),
                     doc({metric("m", "lower", 10.35, 0.0)}), {});
  ASSERT_EQ(report.rows.size(), 1u);
  EXPECT_EQ(report.rows[0].status, tools::MetricStatus::kRegressed);
  EXPECT_TRUE(report.failed());
  // Higher-is-better regresses downward instead.
  const auto report2 =
      tools::compare(doc({metric("m", "higher", 10.0, 0.05)}),
                     doc({metric("m", "higher", 9.65, 0.0)}), {});
  EXPECT_EQ(report2.rows[0].status, tools::MetricStatus::kRegressed);
}

TEST(Compare, BeyondEnvelopeGoodDirectionImproves) {
  const auto report =
      tools::compare(doc({metric("m", "lower", 10.0, 0.05)}),
                     doc({metric("m", "lower", 9.0, 0.0)}), {});
  EXPECT_EQ(report.rows[0].status, tools::MetricStatus::kImproved);
  EXPECT_FALSE(report.failed());
  EXPECT_EQ(report.improvements, 1);
}

TEST(Compare, NeutralMetricWarnsInsteadOfFailing) {
  const auto report =
      tools::compare(doc({metric("m", "neutral", 10.0, 0.05)}),
                     doc({metric("m", "neutral", 20.0, 0.0)}), {});
  EXPECT_EQ(report.rows[0].status, tools::MetricStatus::kWarn);
  EXPECT_FALSE(report.failed());
  EXPECT_EQ(report.warnings, 1);
}

TEST(Compare, MinRelFloorAbsorbsWiggleOnZeroCiBaseline) {
  // Single-sample baseline: ci95 == 0, so only the relative floor guards.
  const auto ok =
      tools::compare(doc({metric("m", "lower", 100.0, 0.0, 1)}),
                     doc({metric("m", "lower", 101.9, 0.0, 1)}), {});
  EXPECT_EQ(ok.rows[0].status, tools::MetricStatus::kOk);
  const auto bad =
      tools::compare(doc({metric("m", "lower", 100.0, 0.0, 1)}),
                     doc({metric("m", "lower", 102.1, 0.0, 1)}), {});
  EXPECT_EQ(bad.rows[0].status, tools::MetricStatus::kRegressed);
}

TEST(Compare, FactorScalesTheCiTerm) {
  tools::CompareOptions wide;
  wide.factor = 10.0;
  wide.min_rel = 0.0;
  // allowed = 10 * 0.1 = 1.0: delta 0.9 passes, 1.1 fails.
  EXPECT_EQ(tools::compare(doc({metric("m", "lower", 10.0, 0.1)}),
                           doc({metric("m", "lower", 10.9, 0.0)}), wide)
                .rows[0]
                .status,
            tools::MetricStatus::kOk);
  EXPECT_EQ(tools::compare(doc({metric("m", "lower", 10.0, 0.1)}),
                           doc({metric("m", "lower", 11.1, 0.0)}), wide)
                .rows[0]
                .status,
            tools::MetricStatus::kRegressed);
}

TEST(Compare, MissingAndNewMetrics) {
  const auto report = tools::compare(
      doc({metric("gone", "lower", 1.0, 0.0)}),
      doc({metric("added", "lower", 1.0, 0.0)}), {});
  ASSERT_EQ(report.rows.size(), 2u);
  EXPECT_EQ(report.rows[0].status, tools::MetricStatus::kMissing);
  EXPECT_EQ(report.rows[1].status, tools::MetricStatus::kNew);
  EXPECT_FALSE(report.failed());  // schema drift warns, never gates
  EXPECT_EQ(report.warnings, 2);  // one per drifted metric, both directions
  // Metrics absent from the baseline get an explicit WARN block with a
  // regenerate hint — new-bench onboarding must not be silent.
  const std::string rendered = report.render();
  EXPECT_NE(rendered.find("WARN: metrics missing from the baseline"),
            std::string::npos);
  EXPECT_NE(rendered.find("added"), std::string::npos);
  EXPECT_NE(rendered.find("Regenerate"), std::string::npos);
}

TEST(Compare, RenderSummarisesTheComparedGrid) {
  // Dotted metric names are grid coordinates; the render lists the distinct
  // labels per axis so a CI log shows what was actually compared.
  const auto report = tools::compare(
      doc({metric("cfs.x4.coop.makespan", "lower", 1.0, 0.0),
           metric("cfs.x8.token.makespan", "lower", 1.0, 0.0),
           metric("hpl.x4.coop.makespan", "lower", 1.0, 0.0)}),
      doc({metric("cfs.x4.coop.makespan", "lower", 1.0, 0.0),
           metric("cfs.x8.token.makespan", "lower", 1.0, 0.0),
           metric("hpl.x4.coop.makespan", "lower", 1.0, 0.0)}),
      {});
  const std::string rendered = report.render();
  EXPECT_NE(rendered.find("compared grid:"), std::string::npos);
  EXPECT_NE(rendered.find("{cfs, hpl}"), std::string::npos);
  EXPECT_NE(rendered.find("{x4, x8}"), std::string::npos);
  EXPECT_NE(rendered.find("{coop, token}"), std::string::npos);
  EXPECT_NE(rendered.find("{makespan}"), std::string::npos);
}

TEST(Compare, RejectsNonTelemetryDocuments) {
  EXPECT_THROW(tools::compare(Json::parse("{}"), doc({}), {}),
               std::runtime_error);
  Json wrong = doc({});
  wrong.set("schema_version", 999);
  EXPECT_THROW(tools::compare(wrong, doc({}), {}), std::runtime_error);
}

TEST(Compare, RenderMentionsVerdict) {
  const auto pass = tools::compare(doc({metric("m", "lower", 1.0, 0.0)}),
                                   doc({metric("m", "lower", 1.0, 0.0)}), {});
  EXPECT_NE(pass.render().find("VERDICT: PASS"), std::string::npos);
  const auto fail = tools::compare(doc({metric("m", "lower", 1.0, 0.0)}),
                                   doc({metric("m", "lower", 9.0, 0.0)}), {});
  EXPECT_NE(fail.render().find("VERDICT: FAIL"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Harness telemetry schema

TEST(Harness, ToJsonMatchesSchemaV1) {
  bench::Harness h("schema_probe", "probe");
  h.with_runs(3).with_seed(9).with_threads(2);
  const char* argv[] = {"schema_probe", "--runs", "4"};
  ASSERT_TRUE(h.parse(3, argv));
  EXPECT_EQ(h.runs(), 4);
  EXPECT_EQ(h.seed(), 9u);
  EXPECT_EQ(h.threads(), 2);

  h.record("a.time", "s", bench::Direction::kLowerIsBetter, 1.0);
  h.record("a.time", "s", bench::Direction::kLowerIsBetter, 3.0);
  h.record("b.rate", "1/s", bench::Direction::kHigherIsBetter, 7.0);

  const Json j = h.to_json();
  EXPECT_EQ(j.at("schema_version").as_int(), bench::kBenchSchemaVersion);
  EXPECT_EQ(j.at("bench").as_string(), "schema_probe");
  EXPECT_TRUE(j.contains("git_sha"));
  EXPECT_TRUE(j.contains("timestamp"));
  EXPECT_TRUE(j.at("host").contains("hostname"));
  EXPECT_TRUE(j.at("host").contains("cpus"));
  EXPECT_EQ(j.at("config").at("runs").as_string(), "4");
  EXPECT_EQ(j.at("config").at("seed").as_string(), "9");

  const Json& metrics = j.at("metrics");
  ASSERT_EQ(metrics.size(), 2u);
  const Json& a = metrics.at(0);
  EXPECT_EQ(a.at("name").as_string(), "a.time");
  EXPECT_EQ(a.at("unit").as_string(), "s");
  EXPECT_EQ(a.at("direction").as_string(), "lower");
  EXPECT_EQ(a.at("count").as_int(), 2);
  EXPECT_DOUBLE_EQ(a.at("mean").as_double(), 2.0);
  EXPECT_GT(a.at("ci95").as_double(), 0.0);
  EXPECT_DOUBLE_EQ(a.at("min").as_double(), 1.0);
  EXPECT_DOUBLE_EQ(a.at("max").as_double(), 3.0);
  EXPECT_EQ(metrics.at(1).at("direction").as_string(), "higher");
}

TEST(Harness, FinishWritesBenchJson) {
  const std::string dir = ::testing::TempDir();
  bench::Harness h("finish_probe", "probe");
  const std::string out_flag = "--json-out=" + dir;
  const char* argv[] = {"finish_probe", out_flag.c_str()};
  ASSERT_TRUE(h.parse(2, argv));
  h.record("m", "s", bench::Direction::kLowerIsBetter, 1.25);
  EXPECT_EQ(h.finish(), 0);

  const std::string path = dir + "/BENCH_finish_probe.json";
  const Json j = Json::parse(util::read_file(path));
  EXPECT_EQ(j.at("bench").as_string(), "finish_probe");
  EXPECT_DOUBLE_EQ(j.at("metrics").at(0).at("mean").as_double(), 1.25);
  std::remove(path.c_str());
}

TEST(Harness, NoJsonSuppressesTheFile) {
  const std::string dir = ::testing::TempDir();
  bench::Harness h("suppressed_probe", "probe");
  const std::string out_flag = "--json-out=" + dir;
  const char* argv[] = {"suppressed_probe", out_flag.c_str(), "--no-json"};
  ASSERT_TRUE(h.parse(3, argv));
  EXPECT_EQ(h.finish(), 0);
  EXPECT_THROW(util::read_file(dir + "/BENCH_suppressed_probe.json"),
               std::runtime_error);
}

}  // namespace
}  // namespace hpcs
