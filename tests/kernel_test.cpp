// Tests for the scheduler core: task lifecycle, actions, conditions, ticks,
// accounting, syscalls, and the context-switch machinery.
#include <gtest/gtest.h>

#include <memory>

#include "kernel/behaviors.h"
#include "kernel/kernel.h"
#include "sim/engine.h"

namespace hpcs::kernel {
namespace {

class KernelTest : public ::testing::Test {
 protected:
  KernelTest() : kernel_(engine_, KernelConfig{}) { kernel_.boot(); }

  Tid spawn_script(std::string name, std::vector<Action> actions,
                   Policy policy = Policy::kNormal, int rt_prio = 0,
                   CpuMask affinity = cpu_mask_all()) {
    SpawnSpec spec;
    spec.name = std::move(name);
    spec.policy = policy;
    spec.rt_prio = rt_prio;
    spec.affinity = affinity;
    spec.behavior = std::make_unique<ScriptBehavior>(std::move(actions));
    return kernel_.spawn(std::move(spec));
  }

  sim::Engine engine_;
  Kernel kernel_;
};

TEST_F(KernelTest, BootCreatesIdleAndMigrationThreads) {
  // 8 migration/N kthreads exist; idle tasks are per-CPU.
  engine_.run_until(milliseconds(1));
  int migration_threads = 0;
  for (Tid tid = 1; tid <= 16; ++tid) {
    if (const Task* t = kernel_.find_task(tid)) {
      if (t->name.rfind("migration/", 0) == 0) {
        ++migration_threads;
        EXPECT_EQ(t->policy, Policy::kFifo);
        EXPECT_EQ(t->rt_prio, kMaxRtPrio);
        EXPECT_EQ(t->state, TaskState::kBlocked);  // parked on its condition
      }
    }
  }
  EXPECT_EQ(migration_threads, 8);
  for (hw::CpuId cpu = 0; cpu < 8; ++cpu) EXPECT_TRUE(kernel_.cpu_idle(cpu));
}

TEST_F(KernelTest, BootTwiceThrows) {
  EXPECT_THROW(kernel_.boot(), std::logic_error);
}

TEST_F(KernelTest, ComputeTaskRunsAndExits) {
  const Tid tid = spawn_script("worker", {Action::compute(milliseconds(5))});
  engine_.run_until(milliseconds(20));
  const Task& t = kernel_.task(tid);
  EXPECT_EQ(t.state, TaskState::kExited);
  // 5ms of work at cold-cache/cold-TLB warm-up speeds takes roughly twice
  // as long in wall time.
  EXPECT_GE(t.acct.runtime, milliseconds(5));
  EXPECT_LT(t.acct.runtime, milliseconds(11));
}

TEST_F(KernelTest, SleepWakesOnTime) {
  const Tid tid = spawn_script(
      "sleeper",
      {Action::compute(microseconds(10)), Action::sleep(milliseconds(10)),
       Action::compute(microseconds(10))});
  engine_.run_until(milliseconds(5));
  EXPECT_EQ(kernel_.task(tid).state, TaskState::kSleeping);
  engine_.run_until(milliseconds(30));
  EXPECT_EQ(kernel_.task(tid).state, TaskState::kExited);
  EXPECT_GE(kernel_.task(tid).acct.exited_at, milliseconds(10));
}

TEST_F(KernelTest, CondBlockAndSignal) {
  const CondId cond = kernel_.cond_create();
  const Tid tid = spawn_script("waiter", {Action::wait(cond, 0),
                                          Action::compute(microseconds(5))});
  engine_.run_until(milliseconds(2));
  EXPECT_EQ(kernel_.task(tid).state, TaskState::kBlocked);
  kernel_.cond_signal(cond);
  engine_.run_until(milliseconds(4));
  EXPECT_EQ(kernel_.task(tid).state, TaskState::kExited);
}

TEST_F(KernelTest, CondSpinThenBlock) {
  const CondId cond = kernel_.cond_create();
  const Tid tid =
      spawn_script("spinner", {Action::wait(cond, milliseconds(3)),
                               Action::compute(microseconds(5))});
  engine_.run_until(milliseconds(2));
  // Still inside the spin budget: consuming CPU, state running.
  EXPECT_EQ(kernel_.task(tid).state, TaskState::kRunning);
  engine_.run_until(milliseconds(6));
  // Budget exhausted: blocked.
  EXPECT_EQ(kernel_.task(tid).state, TaskState::kBlocked);
  EXPECT_GE(kernel_.task(tid).acct.runtime, milliseconds(3));
  kernel_.cond_signal(cond);
  engine_.run_until(milliseconds(8));
  EXPECT_EQ(kernel_.task(tid).state, TaskState::kExited);
}

TEST_F(KernelTest, SignalDuringSpinProceedsImmediately) {
  const CondId cond = kernel_.cond_create();
  const Tid tid =
      spawn_script("spinner", {Action::wait(cond, milliseconds(50)),
                               Action::compute(microseconds(5))});
  engine_.run_until(milliseconds(1));
  EXPECT_EQ(kernel_.task(tid).state, TaskState::kRunning);
  kernel_.cond_signal(cond);
  engine_.run_until(milliseconds(2));
  EXPECT_EQ(kernel_.task(tid).state, TaskState::kExited);
  // It never slept: total runtime ~1ms of spin + 5us of work.
  EXPECT_LT(kernel_.task(tid).acct.runtime, milliseconds(2));
}

TEST_F(KernelTest, WaitOnFiredCondProceedsWithoutBlocking) {
  const CondId cond = kernel_.cond_create();
  kernel_.cond_signal(cond);
  const Tid tid = spawn_script("late", {Action::wait(cond, 0),
                                        Action::compute(microseconds(5))});
  engine_.run_until(milliseconds(2));
  EXPECT_EQ(kernel_.task(tid).state, TaskState::kExited);
}

TEST_F(KernelTest, CondFiredQueries) {
  const CondId cond = kernel_.cond_create();
  EXPECT_FALSE(kernel_.cond_fired(cond));
  kernel_.cond_signal(cond);
  EXPECT_TRUE(kernel_.cond_fired(cond));
  EXPECT_TRUE(kernel_.cond_fired(999999));  // unknown conds read as fired
}

TEST_F(KernelTest, ExitListenerFires) {
  Tid exited = kInvalidTid;
  kernel_.add_exit_listener([&](Task& t) { exited = t.tid; });
  const Tid tid = spawn_script("short", {Action::compute(microseconds(100))});
  engine_.run_until(milliseconds(5));
  EXPECT_EQ(exited, tid);
}

TEST_F(KernelTest, ForkPlacementCountsAsMigration) {
  // The paper: one CPU migration per task created (fork placement).
  const auto before = kernel_.counters().cpu_migrations;
  spawn_script("a", {Action::compute(milliseconds(1))});
  const auto after = kernel_.counters().cpu_migrations;
  EXPECT_GE(after, before);  // counted iff placed off the parent's CPU
  EXPECT_LE(after, before + 1);
}

TEST_F(KernelTest, TwoTasksShareOneCpuFairly) {
  const CpuMask mask = cpu_mask_of(0);
  const Tid a = spawn_script("a", {Action::compute(milliseconds(50))},
                             Policy::kNormal, 0, mask);
  const Tid b = spawn_script("b", {Action::compute(milliseconds(50))},
                             Policy::kNormal, 0, mask);
  engine_.run_until(milliseconds(60));
  const SimDuration ra = kernel_.task(a).acct.runtime;
  const SimDuration rb = kernel_.task(b).acct.runtime;
  EXPECT_GT(ra, milliseconds(20));
  EXPECT_GT(rb, milliseconds(20));
  const double ratio = static_cast<double>(ra) / static_cast<double>(rb);
  EXPECT_NEAR(ratio, 1.0, 0.35);
  EXPECT_GT(kernel_.counters().context_switches, 2u);
}

TEST_F(KernelTest, NrRunningTracksTasks) {
  const CpuMask mask = cpu_mask_of(2);
  spawn_script("a", {Action::compute(milliseconds(30))}, Policy::kNormal, 0,
               mask);
  spawn_script("b", {Action::compute(milliseconds(30))}, Policy::kNormal, 0,
               mask);
  engine_.run_until(milliseconds(1));
  EXPECT_EQ(kernel_.nr_running(2), 2);
  EXPECT_FALSE(kernel_.cpu_idle(2));
  engine_.run_until(milliseconds(200));
  EXPECT_EQ(kernel_.nr_running(2), 0);
  EXPECT_TRUE(kernel_.cpu_idle(2));
}

TEST_F(KernelTest, YieldRotatesEqualTasks) {
  const CpuMask mask = cpu_mask_of(1);
  std::vector<Action> yieldy;
  for (int i = 0; i < 5; ++i) {
    yieldy.push_back(Action::compute(microseconds(100)));
    yieldy.push_back(Action::yield());
  }
  const Tid a = spawn_script("a", yieldy, Policy::kNormal, 0, mask);
  const Tid b = spawn_script("b", {Action::compute(milliseconds(2))},
                             Policy::kNormal, 0, mask);
  engine_.run_until(milliseconds(30));
  EXPECT_EQ(kernel_.task(a).state, TaskState::kExited);
  EXPECT_EQ(kernel_.task(b).state, TaskState::kExited);
}

TEST_F(KernelTest, AffinityRestrictsPlacement) {
  const Tid tid = spawn_script("pinned", {Action::compute(milliseconds(20))},
                               Policy::kNormal, 0, cpu_mask_of(5));
  engine_.run_until(milliseconds(5));
  EXPECT_EQ(kernel_.task(tid).cpu, 5);
  EXPECT_EQ(kernel_.current_on(5), &kernel_.task(tid));
}

TEST_F(KernelTest, SetAffinityMovesRunningTask) {
  const Tid tid = spawn_script("mover", {Action::compute(milliseconds(50))},
                               Policy::kNormal, 0, cpu_mask_of(3));
  engine_.run_until(milliseconds(2));
  EXPECT_EQ(kernel_.task(tid).cpu, 3);
  EXPECT_TRUE(kernel_.sys_setaffinity(tid, cpu_mask_of(6)));
  engine_.run_until(milliseconds(4));
  EXPECT_EQ(kernel_.task(tid).cpu, 6);
  EXPECT_EQ(kernel_.task(tid).state, TaskState::kRunning);
}

TEST_F(KernelTest, SetAffinityRejectsEmptyMask) {
  const Tid tid = spawn_script("t", {Action::compute(milliseconds(5))});
  EXPECT_FALSE(kernel_.sys_setaffinity(tid, 0));
}

TEST_F(KernelTest, SetSchedulerValidation) {
  const Tid tid = spawn_script("t", {Action::compute(milliseconds(5))});
  EXPECT_FALSE(kernel_.sys_setscheduler(tid, Policy::kFifo, 0));    // bad prio
  EXPECT_FALSE(kernel_.sys_setscheduler(tid, Policy::kFifo, 100));  // bad prio
  EXPECT_FALSE(kernel_.sys_setscheduler(tid, Policy::kNormal, 3));  // bad prio
  EXPECT_FALSE(kernel_.sys_setscheduler(tid, Policy::kIdle, 0));    // reserved
  EXPECT_FALSE(kernel_.sys_setscheduler(9999, Policy::kFifo, 1));   // no task
  EXPECT_TRUE(kernel_.sys_setscheduler(tid, Policy::kFifo, 10));
}

TEST_F(KernelTest, SetSchedulerOnRunningTaskAppliesAtReschedule) {
  const Tid tid = spawn_script("t", {Action::compute(milliseconds(30))});
  engine_.run_until(milliseconds(2));
  EXPECT_EQ(kernel_.task(tid).state, TaskState::kRunning);
  EXPECT_TRUE(kernel_.sys_setscheduler(tid, Policy::kFifo, 42));
  engine_.run_until(milliseconds(4));
  EXPECT_EQ(kernel_.task(tid).policy, Policy::kFifo);
  EXPECT_EQ(kernel_.task(tid).rt_prio, 42);
  EXPECT_EQ(kernel_.task(tid).state, TaskState::kRunning);
}

TEST_F(KernelTest, SetNiceChangesWeight) {
  const Tid tid = spawn_script("t", {Action::compute(milliseconds(30))});
  engine_.run_until(milliseconds(1));
  EXPECT_TRUE(kernel_.sys_setnice(tid, 10));
  engine_.run_until(milliseconds(3));
  EXPECT_EQ(kernel_.task(tid).nice, 10);
  EXPECT_EQ(kernel_.task(tid).weight, nice_to_weight(10));
  EXPECT_FALSE(kernel_.sys_setnice(tid, 99));
}

TEST_F(KernelTest, ContextSwitchesCounted) {
  const auto before = kernel_.counters().context_switches;
  spawn_script("t", {Action::compute(milliseconds(1))});
  engine_.run_until(milliseconds(10));
  // At least switch-in and switch-to-idle.
  EXPECT_GE(kernel_.counters().context_switches, before + 2);
}

TEST_F(KernelTest, NohzStopsTicksWhenIdle) {
  // Machine fully idle: no periodic events should accumulate.
  engine_.run_until(milliseconds(100));
  const auto ticks_idle = kernel_.counters().ticks;
  spawn_script("t", {Action::compute(milliseconds(50))});
  engine_.run_until(milliseconds(200));
  const auto ticks_busy = kernel_.counters().ticks;
  // Roughly one tick per ms while the task ran; far fewer while idle.
  EXPECT_GT(ticks_busy - ticks_idle, 40u);
  EXPECT_LT(ticks_idle, 20u);  // only boot transients and the ilb
}

TEST_F(KernelTest, IdleTimeAccounted) {
  spawn_script("t", {Action::compute(milliseconds(10))}, Policy::kNormal, 0,
               cpu_mask_of(0));
  engine_.run_until(milliseconds(100));
  const SimDuration idle = kernel_.idle_time(0);
  EXPECT_GT(idle, milliseconds(80));
  EXPECT_LT(idle, milliseconds(100));
}

TEST_F(KernelTest, TracepointHooksObserveSwitches) {
  int switches = 0;
  kernel_.add_trace_hook([&](const sim::TraceRecord& rec) {
    if (rec.point == sim::TracePoint::kSchedSwitch) ++switches;
  });
  spawn_script("t", {Action::compute(milliseconds(1))});
  engine_.run_until(milliseconds(5));
  EXPECT_GE(switches, 2);
}

TEST_F(KernelTest, PreemptionAccounting) {
  // A CFS task preempted by an RT task records an involuntary switch.
  const CpuMask mask = cpu_mask_of(4);
  const Tid victim = spawn_script(
      "victim", {Action::compute(milliseconds(20))}, Policy::kNormal, 0, mask);
  engine_.run_until(milliseconds(2));
  spawn_script("rt-intruder", {Action::compute(milliseconds(2))},
               Policy::kFifo, 50, mask);
  engine_.run_until(milliseconds(3));
  EXPECT_EQ(kernel_.task(victim).state, TaskState::kRunnable);
  EXPECT_GE(kernel_.task(victim).acct.preemptions, 1u);
  EXPECT_GE(kernel_.counters().preemptions, 1u);
}

TEST_F(KernelTest, EffectivePrioReflectsClasses) {
  engine_.run_until(milliseconds(1));
  EXPECT_EQ(kernel_.effective_prio_on(0), -1);  // idle
  spawn_script("cfs", {Action::compute(milliseconds(10))}, Policy::kNormal, 0,
               cpu_mask_of(0));
  spawn_script("rt", {Action::compute(milliseconds(10))}, Policy::kFifo, 7,
               cpu_mask_of(1));
  engine_.run_until(milliseconds(2));
  EXPECT_EQ(kernel_.effective_prio_on(0), 0);
  EXPECT_EQ(kernel_.effective_prio_on(1), 107);
}

TEST_F(KernelTest, DeterministicRunsProduceIdenticalCounters) {
  auto run = [](std::uint64_t) {
    sim::Engine engine;
    Kernel kernel(engine, KernelConfig{});
    kernel.boot();
    for (int i = 0; i < 6; ++i) {
      SpawnSpec spec;
      spec.name = "t" + std::to_string(i);
      spec.behavior = std::make_unique<ScriptBehavior>(std::vector<Action>{
          Action::compute(milliseconds(3)), Action::sleep(milliseconds(2)),
          Action::compute(milliseconds(3))});
      kernel.spawn(std::move(spec));
    }
    engine.run_until(milliseconds(50));
    return std::make_tuple(kernel.counters().context_switches,
                           kernel.counters().cpu_migrations,
                           kernel.counters().ticks, engine.dispatched());
  };
  EXPECT_EQ(run(1), run(1));
}

TEST_F(KernelTest, SpawnBeforeBootThrows) {
  sim::Engine engine;
  Kernel kernel(engine, KernelConfig{});
  SpawnSpec spec;
  spec.name = "early";
  EXPECT_THROW(kernel.spawn(std::move(spec)), std::logic_error);
}

TEST_F(KernelTest, WorkConservation) {
  // Total task runtime across an interval equals busy CPU time.
  const Tid tid = spawn_script("t", {Action::compute(milliseconds(10))},
                               Policy::kNormal, 0, cpu_mask_of(0));
  engine_.run_until(milliseconds(100));
  const SimDuration busy = milliseconds(100) - kernel_.idle_time(0);
  const Task& t = kernel_.task(tid);
  // Busy time = task runtime + switch/tick overheads (small).
  EXPECT_GE(busy, t.acct.runtime);
  EXPECT_LT(busy - t.acct.runtime, milliseconds(1));
}

}  // namespace
}  // namespace hpcs::kernel
