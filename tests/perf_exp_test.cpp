// Tests for the perf monitor and the experiment harness / report builders.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "exp/report.h"
#include "exp/runner.h"
#include "kernel/behaviors.h"
#include "perf/perf_monitor.h"
#include "sim/engine.h"
#include "workloads/nas.h"

namespace hpcs {
namespace {

using kernel::Action;
using kernel::Kernel;
using kernel::KernelConfig;
using kernel::ScriptBehavior;
using kernel::SpawnSpec;

// --- perf monitor ------------------------------------------------------------

class PerfTest : public ::testing::Test {
 protected:
  PerfTest() : kernel_(engine_, KernelConfig{}), monitor_(kernel_) {
    kernel_.boot();
  }

  void spawn_short(std::string name) {
    SpawnSpec spec;
    spec.name = std::move(name);
    spec.behavior = std::make_unique<ScriptBehavior>(
        std::vector<Action>{Action::compute(milliseconds(1))});
    kernel_.spawn(std::move(spec));
  }

  sim::Engine engine_;
  Kernel kernel_;
  perf::PerfMonitor monitor_;
};

TEST_F(PerfTest, CountsOnlyWhileRunning) {
  spawn_short("before");
  engine_.run_until(milliseconds(10));
  EXPECT_EQ(monitor_.counts().context_switches, 0u);

  monitor_.start();
  spawn_short("during");
  engine_.run_until(milliseconds(20));
  monitor_.stop();
  const auto counted = monitor_.counts().context_switches;
  EXPECT_GE(counted, 2u);

  spawn_short("after");
  engine_.run_until(milliseconds(30));
  EXPECT_EQ(monitor_.counts().context_switches, counted);
}

TEST_F(PerfTest, WindowMeasuresElapsed) {
  monitor_.start();
  engine_.run_until(milliseconds(10));
  monitor_.stop();
  engine_.run_until(milliseconds(30));
  monitor_.start();
  engine_.run_until(milliseconds(35));
  monitor_.stop();
  EXPECT_EQ(monitor_.window(), milliseconds(15));
}

TEST_F(PerfTest, ResetClearsCounts) {
  monitor_.start();
  spawn_short("t");
  engine_.run_until(milliseconds(10));
  monitor_.stop();
  monitor_.reset();
  EXPECT_EQ(monitor_.counts().context_switches, 0u);
  EXPECT_EQ(monitor_.counts().cpu_migrations, 0u);
}

TEST_F(PerfTest, TracksAllEventKinds) {
  monitor_.start();
  SpawnSpec spec;
  spec.name = "napper";
  spec.behavior = std::make_unique<ScriptBehavior>(std::vector<Action>{
      Action::compute(microseconds(100)), Action::sleep(milliseconds(1)),
      Action::compute(microseconds(100))});
  kernel_.spawn(std::move(spec));
  engine_.run_until(milliseconds(20));
  monitor_.stop();
  const auto& c = monitor_.counts();
  EXPECT_GE(c.forks, 1u);
  EXPECT_GE(c.exits, 1u);
  EXPECT_GE(c.wakeups, 1u);
  EXPECT_GE(c.context_switches, 2u);
}

TEST_F(PerfTest, ReportMentionsEvents) {
  monitor_.start();
  spawn_short("t");
  engine_.run_until(milliseconds(5));
  monitor_.stop();
  const std::string report = monitor_.report();
  EXPECT_NE(report.find("context-switches"), std::string::npos);
  EXPECT_NE(report.find("cpu-migrations"), std::string::npos);
  EXPECT_NE(report.find("seconds time elapsed"), std::string::npos);
}

// --- experiment runner -------------------------------------------------------

exp::RunConfig tiny_config(exp::Setup setup) {
  exp::RunConfig config;
  config.setup = setup;
  mpi::Program p;
  p.barrier().loop(3).compute(milliseconds(2), 0.01).allreduce(8).end_loop();
  config.program = p;
  config.mpi.nranks = 8;
  return config;
}

TEST(RunnerTest, RunOnceCompletes) {
  const exp::RunResult r =
      exp::run_once(tiny_config(exp::Setup::kStandardLinux), 1);
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.app_seconds, 0.0);
  EXPECT_GT(r.context_switches, 0u);
  EXPECT_GT(r.perf_window_seconds, r.app_seconds);
}

TEST(RunnerTest, Deterministic) {
  const auto config = tiny_config(exp::Setup::kHpl);
  const exp::RunResult a = exp::run_once(config, 7);
  const exp::RunResult b = exp::run_once(config, 7);
  EXPECT_EQ(a.app_seconds, b.app_seconds);
  EXPECT_EQ(a.context_switches, b.context_switches);
  EXPECT_EQ(a.cpu_migrations, b.cpu_migrations);
}

TEST(RunnerTest, AllSetupsComplete) {
  for (exp::Setup setup :
       {exp::Setup::kStandardLinux, exp::Setup::kRealTime, exp::Setup::kNice,
        exp::Setup::kPinned, exp::Setup::kHpl, exp::Setup::kHplNettick,
        exp::Setup::kHplNaive, exp::Setup::kHplNoIdleBalance}) {
    const exp::RunResult r = exp::run_once(tiny_config(setup), 3);
    EXPECT_TRUE(r.completed) << exp::setup_name(setup);
  }
}

TEST(RunnerTest, SeriesCollectsRuns) {
  const exp::Series series =
      exp::run_series(tiny_config(exp::Setup::kHpl), 4, 100);
  EXPECT_EQ(series.runs.size(), 4u);
  EXPECT_EQ(series.failures, 0);
  EXPECT_EQ(series.seconds().count(), 4u);
  EXPECT_GT(series.migrations().mean(), 0.0);
}

TEST(RunnerTest, SeriesRecordsSeedAndHostCostPerRun) {
  const exp::Series series =
      exp::run_series(tiny_config(exp::Setup::kStandardLinux), 3, 500);
  ASSERT_EQ(series.runs.size(), 3u);
  for (std::size_t i = 0; i < series.runs.size(); ++i) {
    // Each run carries the seed that produced it, so any outlier in a sweep
    // can be replayed in isolation with run_once(config, seed).
    EXPECT_EQ(series.runs[i].seed, 500u + i);
    EXPECT_GT(series.runs[i].host_seconds, 0.0);
  }
  // slowest_seed picks the run with the largest host wall-clock.
  const std::uint64_t slow = series.slowest_seed();
  const auto it =
      std::find_if(series.runs.begin(), series.runs.end(),
                   [&](const exp::RunResult& r) { return r.seed == slow; });
  ASSERT_NE(it, series.runs.end());
  for (const exp::RunResult& r : series.runs) {
    EXPECT_LE(r.host_seconds, it->host_seconds);
  }
}

TEST(RunnerTest, SetupNamesDistinct) {
  std::set<std::string> names;
  for (exp::Setup setup :
       {exp::Setup::kStandardLinux, exp::Setup::kRealTime, exp::Setup::kNice,
        exp::Setup::kPinned, exp::Setup::kHpl, exp::Setup::kHplNettick,
        exp::Setup::kHplNaive, exp::Setup::kHplNoIdleBalance}) {
    names.insert(exp::setup_name(setup));
  }
  EXPECT_EQ(names.size(), 8u);
}

TEST(RunnerTest, HplNeverUsesMoreMigrationsThanStd) {
  // On this tiny workload both setups may bottom out at the placement
  // floor; HPL must never exceed standard Linux.
  const exp::Series std_series =
      exp::run_series(tiny_config(exp::Setup::kStandardLinux), 3, 42);
  const exp::Series hpl_series =
      exp::run_series(tiny_config(exp::Setup::kHpl), 3, 42);
  EXPECT_LE(hpl_series.migrations().mean(), std_series.migrations().mean());
}

// --- report builders ---------------------------------------------------------

TEST(ReportTest, NoiseTableShape) {
  std::vector<exp::NasSeries> rows;
  exp::NasSeries row;
  row.instance = {workloads::NasBenchmark::kEP, workloads::NasClass::kA, 8};
  exp::RunResult r;
  r.completed = true;
  r.app_seconds = 8.6;
  r.cpu_migrations = 12;
  r.context_switches = 350;
  row.series.runs = {r, r};
  rows.push_back(row);
  const util::Table table = exp::scheduler_noise_table(rows);
  const std::string out = table.render();
  EXPECT_NE(out.find("ep.A.8"), std::string::npos);
  EXPECT_NE(out.find("12"), std::string::npos);
  EXPECT_NE(out.find("350"), std::string::npos);
}

TEST(ReportTest, ExecutionTableShape) {
  exp::NasSeries row;
  row.instance = {workloads::NasBenchmark::kEP, workloads::NasClass::kA, 8};
  exp::RunResult slow, fast;
  slow.completed = fast.completed = true;
  slow.app_seconds = 14.59;
  fast.app_seconds = 8.54;
  row.series.runs = {fast, slow};
  exp::NasSeries hpl_row = row;
  exp::RunResult tight = fast;
  hpl_row.series.runs = {tight, tight};
  const util::Table table = exp::execution_time_table({row}, {hpl_row});
  const std::string out = table.render();
  EXPECT_NE(out.find("8.54"), std::string::npos);
  EXPECT_NE(out.find("14.59"), std::string::npos);
  EXPECT_THROW(exp::execution_time_table({row}, {}), std::invalid_argument);
}

TEST(ReportTest, MeanVariation) {
  exp::NasSeries row;
  row.instance = {workloads::NasBenchmark::kEP, workloads::NasClass::kA, 8};
  exp::RunResult a, b;
  a.completed = b.completed = true;
  a.app_seconds = 10.0;
  b.app_seconds = 11.0;
  row.series.runs = {a, b};
  EXPECT_NEAR(exp::mean_variation_pct({row, row}), 10.0, 1e-9);
  EXPECT_EQ(exp::mean_variation_pct({}), 0.0);
}

}  // namespace
}  // namespace hpcs
