// RT class tests: priority ordering, FIFO/RR semantics, push/pull balancing,
// and bandwidth throttling (the sched_rt_runtime_us mechanism behind the
// residual noise in the paper's Fig. 4 experiment).
#include <gtest/gtest.h>

#include <memory>

#include "kernel/behaviors.h"
#include "kernel/kernel.h"
#include "kernel/rt.h"
#include "sim/engine.h"

namespace hpcs::kernel {
namespace {

class RtTest : public ::testing::Test {
 protected:
  explicit RtTest(KernelConfig config = {})
      : kernel_(engine_, config) {
    kernel_.boot();
  }

  Tid spawn_rt(std::string name, SimDuration work, int prio,
               Policy policy = Policy::kFifo,
               CpuMask affinity = cpu_mask_all()) {
    SpawnSpec spec;
    spec.name = std::move(name);
    spec.policy = policy;
    spec.rt_prio = prio;
    spec.affinity = affinity;
    spec.behavior = std::make_unique<ScriptBehavior>(
        std::vector<Action>{Action::compute(work)});
    return kernel_.spawn(std::move(spec));
  }

  sim::Engine engine_;
  Kernel kernel_;
};

TEST_F(RtTest, RtPreemptsCfsImmediately) {
  const CpuMask mask = cpu_mask_of(0);
  SpawnSpec cfs;
  cfs.name = "cfs";
  cfs.affinity = mask;
  cfs.behavior = std::make_unique<ScriptBehavior>(
      std::vector<Action>{Action::compute(milliseconds(20))});
  const Tid cfs_tid = kernel_.spawn(std::move(cfs));
  engine_.run_until(milliseconds(1));
  EXPECT_EQ(kernel_.current_on(0), &kernel_.task(cfs_tid));
  const Tid rt = spawn_rt("rt", milliseconds(2), 10, Policy::kFifo, mask);
  engine_.run_until(milliseconds(1) + microseconds(100));
  EXPECT_EQ(kernel_.current_on(0), &kernel_.task(rt));
  EXPECT_EQ(kernel_.task(cfs_tid).state, TaskState::kRunnable);
}

TEST_F(RtTest, HigherPrioPreemptsLower) {
  const CpuMask mask = cpu_mask_of(0);
  const Tid low = spawn_rt("low", milliseconds(20), 10, Policy::kFifo, mask);
  engine_.run_until(milliseconds(1));
  const Tid high = spawn_rt("high", milliseconds(2), 60, Policy::kFifo, mask);
  engine_.run_until(milliseconds(1) + microseconds(200));
  EXPECT_EQ(kernel_.current_on(0), &kernel_.task(high));
  engine_.run_until(milliseconds(10));
  // Low resumes after high exits (FIFO head position preserved).
  EXPECT_EQ(kernel_.current_on(0), &kernel_.task(low));
}

TEST_F(RtTest, EqualPrioFifoDoesNotRotate) {
  const CpuMask mask = cpu_mask_of(0);
  const Tid first =
      spawn_rt("first", milliseconds(10), 30, Policy::kFifo, mask);
  const Tid second =
      spawn_rt("second", milliseconds(10), 30, Policy::kFifo, mask);
  engine_.run_until(milliseconds(8));
  // FIFO: the first runs to completion before the second starts.
  EXPECT_GT(kernel_.task(first).acct.runtime, milliseconds(6));
  EXPECT_EQ(kernel_.task(second).acct.runtime, 0u);
}

TEST_F(RtTest, EqualPrioRoundRobinRotates) {
  KernelConfig config;
  config.rt.rr_timeslice = 5 * kMillisecond;
  sim::Engine engine;
  Kernel kernel(engine, config);
  kernel.boot();
  auto spawn_rr = [&](std::string name) {
    SpawnSpec spec;
    spec.name = std::move(name);
    spec.policy = Policy::kRR;
    spec.rt_prio = 30;
    spec.affinity = cpu_mask_of(0);
    spec.behavior = std::make_unique<ScriptBehavior>(
        std::vector<Action>{Action::compute(milliseconds(40))});
    return kernel.spawn(std::move(spec));
  };
  const Tid a = spawn_rr("a");
  const Tid b = spawn_rr("b");
  engine.run_until(milliseconds(30));
  // Both made progress thanks to RR rotation.
  EXPECT_GT(kernel.task(a).acct.runtime, milliseconds(8));
  EXPECT_GT(kernel.task(b).acct.runtime, milliseconds(8));
}

TEST_F(RtTest, WakePlacementAvoidsBusyRtCpus) {
  // With every CPU running rank-prio RT work except one, a waking RT task
  // lands on the free CPU.
  for (hw::CpuId cpu = 0; cpu < 7; ++cpu) {
    spawn_rt("busy" + std::to_string(cpu), milliseconds(50), 50,
             Policy::kFifo, cpu_mask_of(cpu));
  }
  engine_.run_until(milliseconds(1));
  const Tid extra = spawn_rt("extra", milliseconds(5), 50);
  engine_.run_until(milliseconds(2));
  EXPECT_EQ(kernel_.task(extra).cpu, 7);
  EXPECT_EQ(kernel_.task(extra).state, TaskState::kRunning);
}

TEST_F(RtTest, PushMovesQueuedTaskToLowerPrioCpu) {
  // Two RT tasks on CPU 0 while CPU 1 runs nothing: the queued one is
  // pushed over within a tick.
  const Tid a = spawn_rt("a", milliseconds(30), 50, Policy::kFifo,
                         cpu_mask_of(0));
  engine_.run_until(milliseconds(1));
  // b starts pinned behind a on CPU 0; widening its mask lets the periodic
  // push balancer move it to the idle CPU 1.
  const Tid b = spawn_rt("b", milliseconds(30), 50, Policy::kFifo,
                         cpu_mask_of(0));
  engine_.run_until(milliseconds(2));
  EXPECT_EQ(kernel_.task(b).state, TaskState::kRunnable);
  ASSERT_TRUE(kernel_.sys_setaffinity(b, cpu_mask_of(0) | cpu_mask_of(1)));
  engine_.run_until(milliseconds(8));
  EXPECT_EQ(kernel_.task(a).cpu, 0);
  EXPECT_EQ(kernel_.task(b).cpu, 1);
  EXPECT_EQ(kernel_.task(b).state, TaskState::kRunning);
}

TEST_F(RtTest, ThrottlingCapsRtBandwidth) {
  KernelConfig config;
  config.rt.rt_period = 100 * kMillisecond;
  config.rt.rt_runtime = 50 * kMillisecond;  // 50% cap for a fast test
  sim::Engine engine;
  Kernel kernel(engine, config);
  kernel.boot();
  SpawnSpec spec;
  spec.name = "spinner";
  spec.policy = Policy::kFifo;
  spec.rt_prio = 50;
  spec.affinity = cpu_mask_of(0);
  spec.behavior = std::make_unique<ScriptBehavior>(
      std::vector<Action>{Action::compute(seconds(1))});
  const Tid tid = kernel.spawn(std::move(spec));
  engine.run_until(seconds(1));
  const double runtime = to_seconds(kernel.task(tid).acct.runtime);
  EXPECT_NEAR(runtime, 0.5, 0.08);  // ~50% of wall time
}

TEST_F(RtTest, ThrottledWindowRunsCfs) {
  KernelConfig config;
  config.rt.rt_period = 100 * kMillisecond;
  config.rt.rt_runtime = 50 * kMillisecond;
  sim::Engine engine;
  Kernel kernel(engine, config);
  kernel.boot();
  auto spawn = [&](std::string name, Policy policy, int prio) {
    SpawnSpec spec;
    spec.name = std::move(name);
    spec.policy = policy;
    spec.rt_prio = prio;
    spec.affinity = cpu_mask_of(0);
    spec.behavior = std::make_unique<ScriptBehavior>(
        std::vector<Action>{Action::compute(seconds(1))});
    return kernel.spawn(std::move(spec));
  };
  const Tid rt = spawn("rt", Policy::kFifo, 50);
  const Tid cfs = spawn("cfs", Policy::kNormal, 0);
  engine.run_until(seconds(1));
  // The daemon got the throttle windows: ~50% each.
  EXPECT_GT(kernel.task(cfs).acct.runtime, milliseconds(300));
  EXPECT_GT(kernel.task(rt).acct.runtime, milliseconds(400));
}

TEST_F(RtTest, ThrottlingDisabledWhenRuntimeEqualsPeriod) {
  KernelConfig config;
  config.rt.rt_period = 100 * kMillisecond;
  config.rt.rt_runtime = 100 * kMillisecond;
  sim::Engine engine;
  Kernel kernel(engine, config);
  kernel.boot();
  SpawnSpec spec;
  spec.name = "spinner";
  spec.policy = Policy::kFifo;
  spec.rt_prio = 50;
  spec.affinity = cpu_mask_of(0);
  spec.behavior = std::make_unique<ScriptBehavior>(
      std::vector<Action>{Action::compute(milliseconds(900))});
  const Tid tid = kernel.spawn(std::move(spec));
  engine.run_until(seconds(1));
  EXPECT_EQ(kernel.task(tid).state, TaskState::kExited);
  EXPECT_FALSE(kernel.rt().throttled(0));
}

TEST_F(RtTest, DefaultBandwidthMatchesLinux) {
  EXPECT_EQ(KernelConfig{}.rt.rt_period, 1000 * kMillisecond);
  EXPECT_EQ(KernelConfig{}.rt.rt_runtime, 950 * kMillisecond);
}

TEST_F(RtTest, MigrationThreadBeatsRankPrio) {
  // migration/N runs at prio 99, above any user RT task.
  engine_.run_until(milliseconds(1));
  const Task* migration = nullptr;
  for (Tid tid = 1; tid <= 16; ++tid) {
    if (const Task* t = kernel_.find_task(tid)) {
      if (t->name == "migration/0") migration = t;
    }
  }
  ASSERT_NE(migration, nullptr);
  EXPECT_EQ(migration->rt_prio, kMaxRtPrio);
}

TEST_F(RtTest, NewidlePullsFromOverloadedCpu) {
  // CPU 0 runs prio-50 work with a prio-40 task queued behind it; CPU 1 is
  // busy with prio-60 work so nothing can be pushed there.  When CPU 1's
  // task exits, its newidle transition pulls the queued task over.
  spawn_rt("a", milliseconds(60), 50, Policy::kFifo, cpu_mask_of(0));
  spawn_rt("blocker", milliseconds(3), 60, Policy::kFifo, cpu_mask_of(1));
  engine_.run_until(milliseconds(1));
  const Tid pullable = spawn_rt("pullable", milliseconds(30), 40,
                                Policy::kFifo, cpu_mask_of(0) | cpu_mask_of(1));
  engine_.run_until(milliseconds(2));
  EXPECT_EQ(kernel_.task(pullable).cpu, 0);
  EXPECT_EQ(kernel_.task(pullable).state, TaskState::kRunnable);
  engine_.run_until(milliseconds(25));  // blocker exits (~7 ms, cold cache)
  EXPECT_EQ(kernel_.task(pullable).cpu, 1);
  EXPECT_EQ(kernel_.task(pullable).state, TaskState::kRunning);
}

}  // namespace
}  // namespace hpcs::kernel
