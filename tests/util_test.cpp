// Unit tests for the utility layer: RNG, statistics, histograms, tables,
// CLI parsing, and time conversions.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <vector>

#include "util/cli.h"
#include "util/histogram.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/time.h"

namespace hpcs {
namespace {

using util::CliParser;
using util::Histogram;
using util::OnlineStats;
using util::Rng;
using util::Samples;
using util::SplitMix64;
using util::Table;

// --- time --------------------------------------------------------------------

TEST(TimeTest, UnitConversions) {
  EXPECT_EQ(microseconds(1), 1000u);
  EXPECT_EQ(milliseconds(1), 1000u * 1000u);
  EXPECT_EQ(seconds(1), 1000u * 1000u * 1000u);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(3)), 3.0);
  EXPECT_DOUBLE_EQ(to_milliseconds(milliseconds(7)), 7.0);
  EXPECT_EQ(from_seconds(2.5), 2'500'000'000ull);
}

// --- rng ---------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 3);
}

TEST(RngTest, SubstreamsAreIndependentAndDeterministic) {
  Rng root(7);
  Rng s1 = root.substream(1);
  Rng s2 = root.substream(2);
  Rng s1again = Rng(7).substream(1);
  EXPECT_EQ(s1.next(), s1again.next());
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += s1.next() == s2.next();
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformU64Bounds) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.uniform_u64(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(RngTest, ExponentialMean) {
  Rng rng(5);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(10.0);
  EXPECT_NEAR(sum / n, 10.0, 0.2);
}

TEST(RngTest, NormalMoments) {
  Rng rng(6);
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(std::sqrt(sq / n - mean * mean), 2.0, 0.05);
}

TEST(RngTest, ChanceProbability) {
  Rng rng(8);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.25);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(RngTest, SplitMixAvalanche) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

// --- stats -------------------------------------------------------------------

TEST(OnlineStatsTest, KnownValues) {
  OnlineStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
}

TEST(OnlineStatsTest, EmptyIsNan) {
  OnlineStats s;
  EXPECT_TRUE(std::isnan(s.mean()));
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStatsTest, MergeMatchesSequential) {
  OnlineStats a, b, all;
  util::Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    const double v = rng.normal(10, 3);
    (i % 2 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStatsTest, RangeVariationMatchesPaperDefinition) {
  // The paper: Var.% = (max - min) / min * 100.
  OnlineStats s;
  s.add(8.54);
  s.add(14.59);
  EXPECT_NEAR(s.range_variation_pct(), (14.59 - 8.54) / 8.54 * 100.0, 1e-9);
}

TEST(SamplesTest, PercentileInterpolation) {
  Samples s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 4.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.5);
  EXPECT_DOUBLE_EQ(s.percentile(25), 1.75);
}

TEST(SamplesTest, SingleValue) {
  Samples s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(StatsTest, PearsonCorrelation) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{2, 4, 6, 8, 10};
  auto r = util::pearson_correlation(x, y);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(*r, 1.0, 1e-12);

  std::vector<double> yneg{10, 8, 6, 4, 2};
  EXPECT_NEAR(*util::pearson_correlation(x, yneg), -1.0, 1e-12);

  std::vector<double> konst{3, 3, 3, 3, 3};
  EXPECT_FALSE(util::pearson_correlation(x, konst).has_value());
  std::vector<double> small{1};
  EXPECT_FALSE(util::pearson_correlation(small, small).has_value());
}

TEST(StatsTest, LinearFit) {
  std::vector<double> x{0, 1, 2, 3};
  std::vector<double> y{1, 3, 5, 7};  // y = 1 + 2x
  auto fit = util::linear_fit(x, y);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit->slope, 2.0, 1e-12);
}

TEST(StatsTest, FormatFixed) {
  EXPECT_EQ(util::format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(util::format_fixed(2.0, 0), "2");
}

TEST(StatsTest, BoundedSlowdown) {
  // (wait + run) / run when run dominates tau...
  EXPECT_DOUBLE_EQ(util::bounded_slowdown(10.0, 10.0, 1.0), 2.0);
  // ...the denominator is clamped to tau for tiny jobs...
  EXPECT_DOUBLE_EQ(util::bounded_slowdown(9.9, 0.1, 1.0), 10.0);
  // ...and the result never drops below 1 (a job can't beat ideal).
  EXPECT_DOUBLE_EQ(util::bounded_slowdown(0.0, 0.5, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(util::bounded_slowdown(0.0, 20.0, 10.0), 1.0);
  // Degenerate inputs stay on the floor instead of going NaN/inf: a
  // zero-runtime job with tau = 0 (0/0) and with positive wait (x/0).
  EXPECT_DOUBLE_EQ(util::bounded_slowdown(0.0, 0.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(util::bounded_slowdown(5.0, 0.0, 0.0), 1.0);
}

TEST(StatsTest, JainsFairnessIndex) {
  const std::vector<double> equal{3.0, 3.0, 3.0, 3.0};
  EXPECT_NEAR(util::jains_fairness_index(equal), 1.0, 1e-12);
  // One user hogging everything: index collapses to 1/n.
  const std::vector<double> hog{1.0, 0.0, 0.0, 0.0};
  EXPECT_NEAR(util::jains_fairness_index(hog), 0.25, 1e-12);
  // Known hand-computed case: (1+2+3)^2 / (3 * (1+4+9)) = 36/42.
  const std::vector<double> mixed{1.0, 2.0, 3.0};
  EXPECT_NEAR(util::jains_fairness_index(mixed), 36.0 / 42.0, 1e-12);
  // Degenerate series are trivially fair, never NaN: an all-zero series
  // (zero-sum) and the empty series both report 1.
  EXPECT_DOUBLE_EQ(util::jains_fairness_index(std::vector<double>{0.0, 0.0}),
                   1.0);
  EXPECT_DOUBLE_EQ(util::jains_fairness_index(std::vector<double>{}), 1.0);
}

TEST(StatsTest, Ci95QuantileIsContinuousAndMonotone) {
  // stddev = sqrt(count) makes ci95_half_width return the t quantile
  // itself, so the quantile curve can be probed directly.
  auto t975 = [](std::size_t count) {
    return util::ci95_half_width(count,
                                 std::sqrt(static_cast<double>(count)));
  };
  // Pinned against published two-sided 97.5% Student-t tables.
  EXPECT_NEAR(t975(31), 2.042, 1e-3);   // df = 30, the last table entry
  EXPECT_NEAR(t975(41), 2.021, 1e-3);   // df = 40
  EXPECT_NEAR(t975(61), 2.000, 1e-3);   // df = 60
  EXPECT_NEAR(t975(121), 1.980, 1e-3);  // df = 120
  // Regression: the quantile used to jump 2.042 -> 1.96 between counts 31
  // and 32 (table edge to hard normal limit), so intervals from 31..~100
  // samples were understated.  The curve must now decrease monotonically
  // from the table through the expansion to the normal limit.
  double prev = t975(2);
  for (std::size_t count = 3; count <= 5000; ++count) {
    const double t = t975(count);
    EXPECT_LE(t, prev + 1e-12) << "upward jump at count " << count;
    EXPECT_GT(t, 1.959963) << "below the normal limit at count " << count;
    prev = t;
  }
  EXPECT_LT(t975(5000), 1.9605);  // converges to the normal 1.959964
}

// --- histogram ---------------------------------------------------------------

TEST(HistogramTest, BinningAndCounts) {
  Histogram h(0.0, 10.0, 10);
  for (double v : {0.5, 1.5, 1.6, 9.99}) h.add(v);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 2u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.mode_bin(), 1u);
}

TEST(HistogramTest, UnderOverflow) {
  Histogram h(0.0, 1.0, 4);
  h.add(-0.1);
  h.add(1.0);  // hi is exclusive
  h.add(2.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(HistogramTest, FromSamplesCoversRange) {
  std::vector<double> values{8.54, 9.0, 14.59, 8.7};
  Histogram h = Histogram::from_samples(values, 20);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_LE(h.lo(), 8.54);
  EXPECT_GT(h.hi(), 14.59);
}

TEST(HistogramTest, FromConstantSamples) {
  std::vector<double> values{5.0, 5.0, 5.0};
  Histogram h = Histogram::from_samples(values, 5);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.underflow() + h.overflow(), 0u);
}

TEST(HistogramTest, AsciiAndCsvRender) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string ascii = h.render_ascii(10);
  EXPECT_NE(ascii.find('#'), std::string::npos);
  const std::string csv = h.to_csv();
  EXPECT_NE(csv.find("bin_low,bin_high,count"), std::string::npos);
  EXPECT_NE(csv.find(",2\n"), std::string::npos);
}

TEST(HistogramTest, DegenerateRangesAreRepaired) {
  Histogram zero_bins(0.0, 10.0, 0);  // bins == 0 becomes one bin
  EXPECT_EQ(zero_bins.bin_count(), 1u);
  zero_bins.add(5.0);
  EXPECT_EQ(zero_bins.count(0), 1u);

  Histogram empty_range(5.0, 5.0, 4);  // hi == lo widens to [5, 6)
  EXPECT_DOUBLE_EQ(empty_range.lo(), 5.0);
  EXPECT_DOUBLE_EQ(empty_range.hi(), 6.0);
  empty_range.add(5.5);
  EXPECT_EQ(empty_range.underflow() + empty_range.overflow(), 0u);
  EXPECT_EQ(empty_range.total(), 1u);

  Histogram inverted(10.0, 2.0, 4);  // hi < lo widens above lo
  EXPECT_DOUBLE_EQ(inverted.lo(), 10.0);
  EXPECT_DOUBLE_EQ(inverted.hi(), 11.0);

  const double nan = std::numeric_limits<double>::quiet_NaN();
  Histogram nan_bounds(nan, nan, 8);  // non-finite collapses to [0, 1)
  EXPECT_DOUBLE_EQ(nan_bounds.lo(), 0.0);
  EXPECT_DOUBLE_EQ(nan_bounds.hi(), 1.0);
  Histogram inf_bounds(0.0, std::numeric_limits<double>::infinity(), 8);
  EXPECT_DOUBLE_EQ(inf_bounds.hi(), 1.0);
}

TEST(HistogramTest, NanSamplesAreCountedNotBinned) {
  // NaN compares false against both range bounds, so it used to fall
  // through to the float-to-index cast — undefined behaviour.  Now it lands
  // in a dedicated counter.
  Histogram h(0.0, 10.0, 5);
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(3.0);
  h.add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.nan_count(), 2u);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
}

// --- table -------------------------------------------------------------------

TEST(TableTest, RenderAlignsColumns) {
  Table t({"Bench", "Min"});
  t.add_row({"ep.A.8", "8.54"});
  t.add_row({"cg", "0.69"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Bench"), std::string::npos);
  EXPECT_NE(out.find("ep.A.8"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TableTest, RowArityChecked) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TableTest, CsvEscaping) {
  Table t({"name", "value"});
  t.add_row({"with,comma", "with\"quote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

// --- cli ---------------------------------------------------------------------

TEST(CliTest, ParsesAllForms) {
  CliParser cli;
  cli.flag("runs", "n runs").flag("csv", "emit csv").flag("seed", "seed");
  const char* argv[] = {"prog", "--runs", "50", "--csv", "--seed=9"};
  ASSERT_TRUE(cli.parse(5, argv));
  EXPECT_EQ(cli.get_int("runs", 0), 50);
  EXPECT_TRUE(cli.get_bool("csv", false));
  EXPECT_EQ(cli.get_int("seed", 0), 9);
  EXPECT_EQ(cli.get_int("missing", 7), 7);
}

TEST(CliTest, RejectsUnknownFlag) {
  CliParser cli;
  cli.flag("runs", "n runs");
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_FALSE(cli.parse(3, argv));
}

TEST(CliTest, IgnoresGbenchFlags) {
  CliParser cli;
  cli.flag("runs", "n runs");
  const char* argv[] = {"prog", "--benchmark_filter=all", "--runs", "3"};
  ASSERT_TRUE(cli.parse(4, argv));
  EXPECT_EQ(cli.get_int("runs", 0), 3);
}

TEST(CliTest, DoubleValues) {
  CliParser cli;
  cli.flag("intensity", "noise scale");
  const char* argv[] = {"prog", "--intensity", "2.5"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_DOUBLE_EQ(cli.get_double("intensity", 0.0), 2.5);
}

}  // namespace
}  // namespace hpcs
