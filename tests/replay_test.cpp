// Golden serial-vs-sharded equivalence for the SWF replay engine, plus the
// policy behaviours the swf_replay bench gates on: fairshare evening out a
// skewed-user trace, preemption trading low-priority progress for
// high-priority responsiveness without losing jobs, and checkpoint-banked
// suspensions costing less than naive kill-and-restart.
//
// The checksum below pins the whole replay schedule of one contended
// multi-queue scenario; every sharded thread count must reproduce it
// bit-for-bit.  If a refactor changes a constant deliberately, re-derive it
// by printing result.checksum() from a serial run.
#include <gtest/gtest.h>

#include <stdexcept>

#include "batch/replay.h"
#include "batch/workload.h"
#include "net/fabric.h"
#include "util/time.h"

namespace hpcs::batch {
namespace {

/// The full express_replay() x small_trace() schedule, folded.  Re-derive
/// with: print run_replay_serial(express_replay(), small_trace()).checksum().
constexpr std::uint64_t kGoldenChecksum = 412301723478720697ULL;

/// A contended 64-node, 4-shard replay: 6 users with Zipf-skewed ownership,
/// jobs up to half a shard wide, runtimes around 80ms on a 1ms grid.
ReplayConfig small_replay() {
  ReplayConfig config;
  config.nodes = 64;
  config.shards = 4;
  config.fabric.nodes_per_switch = 16;
  config.cycle = 1 * kMillisecond;
  config.tau = 10 * kMillisecond;
  config.seed = 7;
  return config;
}

std::vector<JobSpec> small_trace(int jobs = 240) {
  ArrivalConfig arrivals;
  arrivals.jobs = jobs;
  arrivals.mean_interarrival = 2 * kMillisecond;
  arrivals.max_nodes = 8;
  arrivals.runtime_typical = 120 * kMillisecond;
  arrivals.grain = 5 * kMillisecond;
  arrivals.users = 6;
  arrivals.user_zipf = 1.5;
  return generate_arrivals(arrivals, 11);
}

/// The shape fairshare exists for: the Zipf-heaviest user (id 1) also
/// submits 4x-longer jobs, so under FCFS the light users' short jobs drown
/// behind them while the heavy user's own slowdowns stay low.
std::vector<JobSpec> skewed_trace(int jobs = 240) {
  std::vector<JobSpec> trace = small_trace(jobs);
  for (JobSpec& spec : trace) {
    if (spec.user == 1) {
      spec.iterations *= 4;
      spec.estimate *= 4;
    }
  }
  return trace;
}

/// Two-queue config: a small high-priority express lane (jobs <= 4 nodes,
/// <= 60ms) that may preempt, over a catch-all workq.
ReplayConfig express_replay() {
  ReplayConfig config = small_replay();
  QueueConfig express;
  express.name = "express";
  express.priority = 10;
  express.max_nodes = 4;
  express.max_walltime = 60 * kMillisecond;
  QueueConfig workq;
  workq.name = "workq";
  config.queues = {express, workq};
  config.ckpt.interval = 10 * kMillisecond;
  config.ckpt.bytes_per_node = 1 << 20;
  return config;
}

TEST(ReplayTest, SerialReplayDrainsAndReportsUtilization) {
  const ReplayResult result = run_replay_serial(small_replay(), small_trace());
  EXPECT_EQ(result.jobs.size(), 240u);
  EXPECT_EQ(result.rejected, 0);
  EXPECT_GT(result.utilization, 0.05);
  EXPECT_LE(result.utilization, 1.0);
  EXPECT_GT(result.mean_slowdown, 0.99);
  for (const ReplayJobOutcome& job : result.jobs) {
    EXPECT_GE(job.start, job.arrival);
    EXPECT_GT(job.finish, job.start);
  }
}

TEST(ReplayTest, ReplayIsDeterministicPerConfig) {
  const ReplayResult a = run_replay_serial(small_replay(), small_trace());
  const ReplayResult b = run_replay_serial(small_replay(), small_trace());
  EXPECT_EQ(a.checksum(), b.checksum());
  EXPECT_EQ(a.events, b.events);
}

TEST(ReplayTest, ShardedMatchesSerialAt124Threads) {
  const ReplayConfig config = express_replay();
  const std::vector<JobSpec> trace = small_trace();
  const ReplayResult serial = run_replay_serial(config, trace);
  EXPECT_GT(serial.forwards, 0u);
  for (const int threads : {1, 2, 4}) {
    const ReplayResult sharded = run_replay_sharded(config, trace, threads);
    EXPECT_EQ(sharded.checksum(), serial.checksum()) << threads;
    EXPECT_EQ(sharded.preemptions, serial.preemptions) << threads;
    EXPECT_EQ(sharded.forwards, serial.forwards) << threads;
  }
}

TEST(ReplayTest, GoldenChecksumPinsTheSchedule) {
  const ReplayResult result =
      run_replay_serial(express_replay(), small_trace());
  EXPECT_EQ(result.checksum(), kGoldenChecksum);
}

TEST(ReplayTest, FairshareImprovesJainOnSkewedTrace) {
  const ReplayConfig fcfs = small_replay();
  ReplayConfig fair = small_replay();
  fair.fairshare.enabled = true;
  fair.fairshare.halflife = 1 * kSecond;
  const std::vector<JobSpec> trace = skewed_trace();
  const ReplayResult base = run_replay_serial(fcfs, trace);
  const ReplayResult shared = run_replay_serial(fair, trace);
  EXPECT_GT(shared.user_fairness, base.user_fairness);
}

TEST(ReplayTest, PreemptionHelpsExpressWithoutLosingJobs) {
  ReplayConfig off = express_replay();
  ReplayConfig on = express_replay();
  on.preempt.enabled = true;
  const std::vector<JobSpec> trace = small_trace();
  const ReplayResult without = run_replay_serial(off, trace);
  const ReplayResult with = run_replay_serial(on, trace);
  EXPECT_GT(with.preemptions, 0u);
  EXPECT_GT(with.preempt_lost_s, 0.0);
  // collect() throws if any job never finishes, so reaching here already
  // proves no livelock; the express lane must also get faster.
  ASSERT_EQ(with.queues[0].name, "express");
  EXPECT_LT(with.queues[0].mean_slowdown, without.queues[0].mean_slowdown);
  EXPECT_EQ(with.jobs.size(), trace.size());
}

TEST(ReplayTest, CheckpointBankingReducesPreemptionLoss) {
  ReplayConfig banked = express_replay();
  banked.preempt.enabled = true;
  ReplayConfig naive = banked;
  naive.ckpt.interval = 0;  // suspension discards everything
  const std::vector<JobSpec> trace = small_trace();
  const ReplayResult with = run_replay_serial(banked, trace);
  const ReplayResult without = run_replay_serial(naive, trace);
  ASSERT_GT(with.preemptions, 0u);
  ASSERT_GT(without.preemptions, 0u);
  const double with_rate =
      with.preempt_lost_s / static_cast<double>(with.preemptions);
  const double without_rate =
      without.preempt_lost_s / static_cast<double>(without.preemptions);
  EXPECT_LT(with_rate, without_rate);
}

TEST(ReplayTest, TooWideJobsAreRejectedUpFront) {
  ReplayConfig config = small_replay();
  QueueConfig narrow;
  narrow.name = "narrow";
  narrow.max_nodes = 8;  // generator max: every other job is admitted
  config.queues = {narrow};
  std::vector<JobSpec> trace = small_trace(40);
  trace[5].nodes = 12;  // wider than any queue admits
  const ReplayResult result = run_replay_serial(config, trace);
  EXPECT_EQ(result.rejected, 1);
  EXPECT_EQ(result.jobs[5].queue, -1);
  EXPECT_EQ(result.jobs[5].finish, 0u);
}

TEST(ReplayTest, RejectsDegenerateConfigs) {
  ReplayConfig config = small_replay();
  config.cycle = 1;
  EXPECT_THROW(run_replay_serial(config, small_trace(4)),
               std::invalid_argument);
  ReplayConfig noise = small_replay();
  noise.node_noise = -0.5;
  EXPECT_THROW(run_replay_serial(noise, small_trace(4)),
               std::invalid_argument);
}

}  // namespace
}  // namespace hpcs::batch
