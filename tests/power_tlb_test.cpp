// Tests for the two future-work extensions: the power model and the
// TLB/HugeTLB model.
#include <gtest/gtest.h>

#include <memory>

#include "exp/runner.h"
#include "hw/machine.h"
#include "hw/power_model.h"
#include "kernel/behaviors.h"
#include "kernel/kernel.h"
#include "sim/engine.h"
#include "workloads/nas.h"

namespace hpcs {
namespace {

// --- power model -------------------------------------------------------------

TEST(PowerModelTest, IdleMachineDrawsIdlePower) {
  hw::EnergyInputs inputs;
  inputs.idle_ns = 8 * seconds(1);  // 8 threads for 1 s
  const hw::PowerParams params;
  const auto report = hw::compute_energy(inputs, params, seconds(1));
  EXPECT_DOUBLE_EQ(report.busy_joules, 0.0);
  EXPECT_DOUBLE_EQ(report.idle_joules, 8.0 * params.idle_watts);
  EXPECT_NEAR(report.average_watts(), 8.0 * params.idle_watts, 1e-9);
}

TEST(PowerModelTest, BusyEnergyScalesWithTime) {
  hw::EnergyInputs inputs;
  inputs.busy_ns = seconds(2);
  const hw::PowerParams params;
  const auto report = hw::compute_energy(inputs, params, seconds(2));
  EXPECT_DOUBLE_EQ(report.busy_joules, 2.0 * params.busy_watts);
}

TEST(PowerModelTest, SmtPairingReducesMarginalPower) {
  // Two threads busy for 1 s each, fully paired, must cost less than two
  // independent busy threads.
  hw::EnergyInputs paired;
  paired.busy_ns = 2 * seconds(1);
  paired.smt_paired_ns = 2 * seconds(1);
  paired.smt_extra_ns = seconds(1);  // each thread: 1 s beyond its t/2 share
  hw::EnergyInputs solo;
  solo.busy_ns = 2 * seconds(1);
  const hw::PowerParams params;
  EXPECT_LT(hw::compute_energy(paired, params, seconds(1)).busy_joules,
            hw::compute_energy(solo, params, seconds(1)).busy_joules);
}

TEST(PowerModelTest, EventCostsCount) {
  hw::EnergyInputs inputs;
  inputs.context_switches = 1000;
  inputs.migrations = 100;
  inputs.ticks = 10000;
  const hw::PowerParams params;
  const auto report = hw::compute_energy(inputs, params, seconds(1));
  const double expect = (1000 * params.context_switch_uj +
                         100 * params.migration_uj + 10000 * params.tick_uj) *
                        1e-6;
  EXPECT_NEAR(report.event_joules, expect, 1e-12);
  EXPECT_NEAR(report.total_joules(), expect, 1e-12);
}

TEST(PowerModelTest, KernelProvidesInputs) {
  sim::Engine engine;
  kernel::Kernel kernel(engine, kernel::KernelConfig{});
  kernel.boot();
  kernel::SpawnSpec spec;
  spec.name = "worker";
  spec.affinity = kernel::cpu_mask_of(0);
  spec.behavior = std::make_unique<kernel::ScriptBehavior>(
      std::vector<kernel::Action>{kernel::Action::compute(milliseconds(10))});
  kernel.spawn(std::move(spec));
  engine.run_until(milliseconds(100));
  const hw::EnergyInputs inputs = kernel.energy_inputs();
  EXPECT_GE(inputs.busy_ns, milliseconds(10));
  EXPECT_GT(inputs.idle_ns, milliseconds(700));  // 8 threads, mostly idle
  EXPECT_GT(inputs.context_switches, 0u);
  EXPECT_GT(inputs.ticks, 0u);
}

TEST(PowerModelTest, SpinTimeTracked) {
  sim::Engine engine;
  kernel::Kernel kernel(engine, kernel::KernelConfig{});
  kernel.boot();
  const kernel::CondId cond = kernel.cond_create();
  kernel::SpawnSpec spec;
  spec.name = "spinner";
  spec.behavior = std::make_unique<kernel::ScriptBehavior>(
      std::vector<kernel::Action>{kernel::Action::wait(cond, milliseconds(5))});
  const kernel::Tid tid = kernel.spawn(std::move(spec));
  engine.run_until(milliseconds(20));
  EXPECT_GE(kernel.energy_inputs().spin_ns, milliseconds(4));
  EXPECT_GE(kernel.task(tid).acct.spin_time, milliseconds(4));
}

TEST(PowerModelTest, RunnerReportsEnergy) {
  exp::RunConfig config;
  config.setup = exp::Setup::kHpl;
  const workloads::NasInstance inst{workloads::NasBenchmark::kIS,
                                    workloads::NasClass::kA, 8};
  config.program = workloads::build_nas_program(inst);
  config.mpi.nranks = 8;
  const exp::RunResult r = exp::run_once(config, 1);
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.energy_joules, 0.0);
  EXPECT_GT(r.average_watts, 8.0 * hw::PowerParams{}.idle_watts);
  EXPECT_LT(r.average_watts,
            8.0 * hw::PowerParams{}.busy_watts + 50.0);
  EXPECT_GE(r.spin_seconds, 0.0);
}

// --- tlb model ---------------------------------------------------------------

TEST(TlbModelTest, WarmthCapsBelowOneWith4kPages) {
  const hw::MachineConfig config = hw::MachineConfig::power6_js22();
  hw::Machine machine(config);
  machine.tlb().on_task_created(1);
  machine.tlb().note_placed(1, 0);
  machine.tlb().note_ran(1, 0, seconds(1));
  EXPECT_LE(machine.tlb().warmth(1, 0), config.tlb.max_warmth + 1e-9);
  EXPECT_GT(machine.tlb().warmth(1, 0), config.tlb.max_warmth - 0.01);
  // The permanent miss tax: speed below 1 even fully warm.
  EXPECT_LT(machine.tlb().speed_factor(1, 0), 0.999);
}

TEST(TlbModelTest, HugePagesRemoveTheTax) {
  hw::MachineConfig config = hw::MachineConfig::power6_js22();
  config.hugetlb = true;
  hw::Machine machine(config);
  machine.tlb().on_task_created(1);
  machine.tlb().note_placed(1, 0);
  machine.tlb().note_ran(1, 0, seconds(1));
  EXPECT_GT(machine.tlb().speed_factor(1, 0), 0.999);
}

TEST(TlbModelTest, HugetlbImprovesRuntime) {
  auto runtime = [](bool huge) {
    exp::RunConfig config;
    config.setup = exp::Setup::kHpl;
    config.kernel.machine.hugetlb = huge;
    const workloads::NasInstance inst{workloads::NasBenchmark::kIS,
                                      workloads::NasClass::kA, 8};
    config.program = workloads::build_nas_program(inst);
    config.mpi.nranks = 8;
    return exp::run_once(config, 3).app_seconds;
  };
  const double base = runtime(false);
  const double huge = runtime(true);
  EXPECT_LT(huge, base);
  EXPECT_GT(huge, base * 0.95);  // improvement is ~the 1.5% tax, not magic
}

TEST(TlbModelTest, MaxWarmthRespectedAfterDecay) {
  hw::CacheParams params;
  params.max_warmth = 0.8;
  params.warm_tau = kMillisecond;
  const hw::Topology topo = hw::Topology::power6_js22();
  hw::CacheModel model(topo, params);
  model.on_task_created(1);
  model.on_task_created(2);
  model.note_placed(1, 0);
  model.note_ran(1, 0, 100 * kMillisecond);
  EXPECT_NEAR(model.warmth(1, 0), 0.8, 1e-6);
  // Pollution decays it below the cap; re-running returns to the cap.
  model.note_placed(2, 0);
  model.note_ran(2, 0, 5 * kMillisecond);
  EXPECT_LT(model.warmth(1, 0), 0.8);
  model.note_placed(1, 0);
  model.note_ran(1, 0, 100 * kMillisecond);
  EXPECT_NEAR(model.warmth(1, 0), 0.8, 1e-6);
}

}  // namespace
}  // namespace hpcs
