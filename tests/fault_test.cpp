// Tests for the fault-injection subsystem: CPU hotplug (drain, migrate,
// re-balance), rank failure detection / restart / abort in the MPI runtime,
// the FaultPlan / FaultInjector pair, the kernel invariant checker, and the
// experiment runner's fault plumbing.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "exp/runner.h"
#include "fault/campaign.h"
#include "fault/fault.h"
#include "fault/fault_plan.h"
#include "fault/injector.h"
#include "kernel/behaviors.h"
#include "kernel/kernel.h"
#include "mpi/launch.h"
#include "mpi/program.h"
#include "mpi/world.h"
#include "sim/engine.h"
#include "util/log.h"

namespace hpcs {
namespace {

using kernel::Action;
using kernel::Kernel;
using kernel::KernelConfig;
using kernel::Policy;
using kernel::ScriptBehavior;
using kernel::SpawnSpec;
using kernel::TaskState;
using kernel::Tid;

// A task that computes for `total`, yielding the CPU to the scheduler's
// normal preemption machinery the whole time.
SpawnSpec spinner(const std::string& name, SimDuration total,
                  kernel::CpuMask affinity = kernel::cpu_mask_all()) {
  SpawnSpec spec;
  spec.name = name;
  spec.affinity = affinity;
  spec.behavior = std::make_unique<ScriptBehavior>(
      std::vector<Action>{Action::compute(total)});
  return spec;
}

class HotplugTest : public ::testing::Test {
 protected:
  HotplugTest() : kernel_(engine_, KernelConfig{}) {
    kernel_.boot();
    util::reset_log_rate_limits();
  }

  int num_cpus() const { return kernel_.topology().num_cpus(); }

  sim::Engine engine_;
  Kernel kernel_;
};

TEST_F(HotplugTest, OfflineMigratesQueuedAndRunningTasks) {
  std::vector<Tid> tids;
  for (int i = 0; i < 2 * num_cpus(); ++i) {
    tids.push_back(kernel_.spawn(spinner("spin" + std::to_string(i),
                                         50 * kMillisecond)));
  }
  engine_.run_until(5 * kMillisecond);

  kernel_.cpu_offline(1);
  EXPECT_FALSE(kernel_.cpu_is_online(1));
  EXPECT_EQ(kernel_.num_online_cpus(), num_cpus() - 1);
  EXPECT_EQ(kernel_.counters().cpu_offlines, 1u);
  EXPECT_EQ(kernel_.nr_running(1), 0);
  for (Tid tid : tids) {
    const kernel::Task& t = kernel_.task(tid);
    if (t.state != TaskState::kExited) {
      EXPECT_NE(t.cpu, 1);
    }
  }
  EXPECT_NO_THROW(kernel_.check_invariants());

  // The node keeps running (and finishing work) on the remaining CPUs.
  engine_.run_until(2 * kSecond);
  for (Tid tid : tids) {
    EXPECT_EQ(kernel_.task(tid).state, TaskState::kExited);
  }
  EXPECT_NO_THROW(kernel_.check_invariants());
}

TEST_F(HotplugTest, PinnedTaskBreaksAffinityWhenItsCpuDies) {
  // Linux's select_fallback_rq: when affinity ∩ online is empty the task is
  // allowed to run anywhere rather than being stranded.
  const Tid tid = kernel_.spawn(
      spinner("pinned", 20 * kMillisecond, kernel::cpu_mask_of(2)));
  engine_.run_until(2 * kMillisecond);
  ASSERT_EQ(kernel_.task(tid).cpu, 2);

  kernel_.cpu_offline(2);
  const kernel::Task& t = kernel_.task(tid);
  EXPECT_NE(t.state, TaskState::kExited);
  EXPECT_NE(t.cpu, 2);
  EXPECT_EQ(t.affinity, kernel::cpu_mask_all());
  EXPECT_NO_THROW(kernel_.check_invariants());

  engine_.run_until(100 * kMillisecond);
  EXPECT_EQ(kernel_.task(tid).state, TaskState::kExited);
}

TEST_F(HotplugTest, SpawnAndWakeAvoidOfflineCpus) {
  kernel_.cpu_offline(3);
  std::vector<Tid> tids;
  for (int i = 0; i < 3 * num_cpus(); ++i) {
    tids.push_back(kernel_.spawn(spinner("post" + std::to_string(i),
                                         1 * kMillisecond)));
  }
  engine_.run_until(1 * kMillisecond);
  for (Tid tid : tids) {
    const kernel::Task& t = kernel_.task(tid);
    if (t.state != TaskState::kExited) {
      EXPECT_NE(t.cpu, 3);
    }
  }
  EXPECT_EQ(kernel_.nr_running(3), 0);
  EXPECT_NO_THROW(kernel_.check_invariants());
}

TEST_F(HotplugTest, SetaffinityRejectsAllOfflineMask) {
  const Tid tid = kernel_.spawn(spinner("t", 5 * kMillisecond));
  engine_.run_until(1 * kMillisecond);
  kernel_.cpu_offline(1);
  EXPECT_FALSE(kernel_.sys_setaffinity(tid, kernel::cpu_mask_of(1)));
  EXPECT_TRUE(kernel_.sys_setaffinity(tid, kernel::cpu_mask_of(0)));
}

TEST_F(HotplugTest, OnlineRejoinsAndPicksUpWork) {
  kernel_.cpu_offline(1);
  engine_.run_until(2 * kMillisecond);
  kernel_.cpu_online(1);
  EXPECT_TRUE(kernel_.cpu_is_online(1));
  EXPECT_EQ(kernel_.counters().cpu_onlines, 1u);

  // Oversubscribe: with more runnable tasks than CPUs, placement and the
  // load balancer must start using CPU 1 again.
  for (int i = 0; i < 2 * num_cpus(); ++i) {
    kernel_.spawn(spinner("w" + std::to_string(i), 30 * kMillisecond));
  }
  bool cpu1_used = false;
  for (int step = 0; step < 50 && !cpu1_used; ++step) {
    engine_.run_until(engine_.now() + 1 * kMillisecond);
    const kernel::Task* cur = kernel_.current_on(1);
    cpu1_used =
        kernel_.nr_running(1) > 0 || (cur != nullptr && !cur->is_idle_task());
  }
  EXPECT_TRUE(cpu1_used);
  EXPECT_NO_THROW(kernel_.check_invariants());
}

TEST_F(HotplugTest, LastOnlineCpuCannotGoOffline) {
  for (int cpu = 1; cpu < num_cpus(); ++cpu) kernel_.cpu_offline(cpu);
  EXPECT_EQ(kernel_.num_online_cpus(), 1);
  EXPECT_THROW(kernel_.cpu_offline(0), std::logic_error);
  EXPECT_NO_THROW(kernel_.check_invariants());
}

TEST_F(HotplugTest, OfflineOnlineCycleKeepsAccountingBalanced) {
  for (int i = 0; i < 3 * num_cpus(); ++i) {
    kernel_.spawn(spinner("c" + std::to_string(i), 100 * kMillisecond));
  }
  kernel_.set_invariant_checks(true);  // audit after every event from here on
  fault::FaultPlan plan;
  plan.cpu_offline_at(5 * kMillisecond, 1)
      .cpu_offline_at(8 * kMillisecond, 2)
      .cpu_online_at(15 * kMillisecond, 1)
      .cpu_online_at(20 * kMillisecond, 2)
      .cpu_offline_at(25 * kMillisecond, 1)
      .cpu_online_at(30 * kMillisecond, 1);
  fault::FaultInjector injector(kernel_, plan);
  injector.arm();
  engine_.run_until(40 * kMillisecond);

  EXPECT_EQ(kernel_.counters().cpu_offlines, 3u);
  EXPECT_EQ(kernel_.counters().cpu_onlines, 3u);
  EXPECT_GT(kernel_.counters().hotplug_migrations, 0u);
  EXPECT_EQ(kernel_.num_online_cpus(), num_cpus());
  EXPECT_EQ(injector.report().count(fault::FaultKind::kSkipped), 0);
  // Σ per-CPU runnable equals the runnable task population (the checker
  // would have thrown on any mismatch after any of the 6 hotplug events).
  EXPECT_NO_THROW(kernel_.check_invariants());
}

TEST_F(HotplugTest, ArmRejectsStructurallyBadPlans) {
  {
    // A CPU the machine does not have: rejected at arm(), nothing fires.
    fault::FaultPlan plan;
    plan.cpu_offline_at(2 * kMillisecond, 99);
    fault::FaultInjector injector(kernel_, plan);
    EXPECT_THROW(injector.arm(), std::invalid_argument);
  }
  {
    // Onlining a CPU that was never offlined (it boots online).
    fault::FaultPlan plan;
    plan.cpu_online_at(1 * kMillisecond, 2);
    fault::FaultInjector injector(kernel_, plan);
    EXPECT_THROW(injector.arm(), std::invalid_argument);
  }
  {
    // Overlapping offline windows for the same CPU.
    fault::FaultPlan plan;
    plan.cpu_offline_at(1 * kMillisecond, 3)
        .cpu_offline_at(2 * kMillisecond, 3)
        .cpu_online_at(3 * kMillisecond, 3);
    fault::FaultInjector injector(kernel_, plan);
    EXPECT_THROW(injector.arm(), std::invalid_argument);
  }
  EXPECT_EQ(kernel_.counters().cpu_offlines, 0u);
}

TEST_F(HotplugTest, InjectorSkipsDynamicallyImpossibleActions) {
  // Structurally valid plan whose actions become impossible at fire time:
  // offline every CPU in turn (the last one must survive), and kill a rank
  // with no MPI world attached.  Both are skipped, not errors — a random
  // plan is allowed to race the workload.
  fault::FaultPlan plan;
  for (int cpu = 1; cpu < num_cpus(); ++cpu) {
    plan.cpu_offline_at(cpu * kMillisecond, cpu);
  }
  plan.cpu_offline_at(num_cpus() * kMillisecond, 0);  // last online by then
  plan.kill_rank_at(1 * kMillisecond, 0);             // no world attached
  fault::FaultInjector injector(kernel_, plan);
  injector.arm();
  engine_.run_until((num_cpus() + 2) * kMillisecond);
  EXPECT_EQ(injector.report().count(fault::FaultKind::kSkipped), 2);
  EXPECT_EQ(injector.report().count(fault::FaultKind::kCpuOffline),
            num_cpus() - 1);
  EXPECT_EQ(kernel_.num_online_cpus(), 1);
  EXPECT_TRUE(kernel_.cpu_is_online(0));
  EXPECT_NO_THROW(kernel_.check_invariants());
}

TEST_F(HotplugTest, KillTaskReapsEveryState) {
  const Tid running = kernel_.spawn(spinner("running", 50 * kMillisecond));
  const Tid queued0 = kernel_.spawn(
      spinner("queued0", 50 * kMillisecond, kernel::cpu_mask_of(0)));
  const Tid queued1 = kernel_.spawn(
      spinner("queued1", 50 * kMillisecond, kernel::cpu_mask_of(0)));
  SpawnSpec sleeper_spec;
  sleeper_spec.name = "sleeper";
  sleeper_spec.behavior = std::make_unique<ScriptBehavior>(std::vector<Action>{
      Action::compute(100 * kMicrosecond), Action::sleep(1 * kSecond)});
  const Tid sleeper = kernel_.spawn(std::move(sleeper_spec));
  engine_.run_until(5 * kMillisecond);
  ASSERT_EQ(kernel_.task(sleeper).state, TaskState::kSleeping);

  for (Tid tid : {running, queued0, queued1, sleeper}) {
    EXPECT_TRUE(kernel_.kill_task(tid));
  }
  EXPECT_FALSE(kernel_.kill_task(sleeper));  // already dead
  engine_.run_until(10 * kMillisecond);
  for (Tid tid : {running, queued0, queued1, sleeper}) {
    EXPECT_EQ(kernel_.task(tid).state, TaskState::kExited);
    EXPECT_TRUE(kernel_.task(tid).killed);
  }
  EXPECT_EQ(kernel_.counters().task_kills, 4u);
  EXPECT_NO_THROW(kernel_.check_invariants());
}

// --- invariant checker ----------------------------------------------------

TEST_F(HotplugTest, InvariantCheckerDetectsSeededCorruption) {
  SpawnSpec spec;
  spec.name = "victim";
  spec.behavior = std::make_unique<ScriptBehavior>(std::vector<Action>{
      Action::compute(100 * kMicrosecond), Action::sleep(1 * kSecond)});
  const Tid tid = kernel_.spawn(std::move(spec));
  engine_.run_until(5 * kMillisecond);
  ASSERT_EQ(kernel_.task(tid).state, TaskState::kSleeping);
  EXPECT_NO_THROW(kernel_.check_invariants());

  // Seed a corruption: a sleeping task that claims to be on a runqueue.
  kernel_.task(tid).cfs_queued = true;
  EXPECT_THROW(kernel_.check_invariants(), std::logic_error);
  kernel_.task(tid).cfs_queued = false;
  EXPECT_NO_THROW(kernel_.check_invariants());

  // A second flavour: a runnable task that claims to be queued twice.
  std::vector<Tid> busy;
  for (int i = 0; i < 3; ++i) {
    busy.push_back(kernel_.spawn(spinner("busy" + std::to_string(i),
                                         50 * kMillisecond,
                                         kernel::cpu_mask_of(0))));
  }
  engine_.run_until(6 * kMillisecond);
  kernel::Task* queued = nullptr;
  for (Tid t : busy) {
    kernel::Task* cand = kernel_.find_task(t);
    if (cand != nullptr && cand->cfs_queued) queued = cand;
  }
  ASSERT_NE(queued, nullptr);
  queued->rt_queued = true;
  EXPECT_THROW(kernel_.check_invariants(), std::logic_error);
  queued->rt_queued = false;
  EXPECT_NO_THROW(kernel_.check_invariants());
}

// --- MPI rank failure -----------------------------------------------------

mpi::Program loopy_program(int iters) {
  mpi::Program p;
  p.barrier().loop(iters).compute(500 * kMicrosecond).allreduce(64).end_loop();
  return p;
}

class MpiFaultTest : public ::testing::Test {
 protected:
  MpiFaultTest() : kernel_(engine_, KernelConfig{}) {
    kernel_.boot();
    util::reset_log_rate_limits();
  }

  sim::Engine engine_;
  Kernel kernel_;
};

TEST_F(MpiFaultTest, RankDeathAbortsJobInsteadOfHanging) {
  mpi::MpiConfig config;
  config.nranks = 4;  // no restart: default is abort-on-death
  mpi::MpiWorld world(kernel_, config, loopy_program(100));
  world.launch_mpiexec(Policy::kNormal, 0, kernel::kInvalidTid);
  engine_.run_until(5 * kMillisecond);
  ASSERT_FALSE(world.finished());

  ASSERT_TRUE(world.inject_rank_failure(2));
  // Without death detection the three survivors would spin at the next
  // allreduce forever; with it the job must wind down promptly.
  engine_.run_until(engine_.now() + 100 * kMillisecond);
  EXPECT_TRUE(world.finished());
  EXPECT_TRUE(world.failed());
  EXPECT_TRUE(kernel_.cond_fired(world.done_cond()));

  const fault::FaultReport& report = world.fault_report();
  EXPECT_TRUE(report.job_aborted);
  EXPECT_EQ(report.count(fault::FaultKind::kRankDeathDetected), 1);
  EXPECT_EQ(report.count(fault::FaultKind::kJobAbort), 1);
  for (Tid tid : world.rank_tids()) {
    EXPECT_EQ(kernel_.task(tid).state, TaskState::kExited);
  }
  EXPECT_NO_THROW(kernel_.check_invariants());
}

TEST_F(MpiFaultTest, RankRestartReplaysCheckpointAndFinishes) {
  mpi::MpiConfig config;
  config.nranks = 4;
  config.restart_failed_ranks = true;
  mpi::MpiWorld world(kernel_, config, loopy_program(40));
  world.launch_mpiexec(Policy::kNormal, 0, kernel::kInvalidTid);
  engine_.run_until(5 * kMillisecond);
  ASSERT_FALSE(world.finished());
  const std::uint64_t synced_before = world.rank_sync_count(1);
  EXPECT_GT(synced_before, 0u);

  ASSERT_TRUE(world.inject_rank_failure(1));
  engine_.run_until(engine_.now() + 2 * kSecond);
  EXPECT_TRUE(world.finished());
  EXPECT_FALSE(world.failed());

  const fault::FaultReport& report = world.fault_report();
  EXPECT_FALSE(report.job_aborted);
  EXPECT_EQ(report.restarts, 1);
  EXPECT_EQ(report.count(fault::FaultKind::kRankDeathDetected), 1);
  EXPECT_EQ(report.count(fault::FaultKind::kRankRestart), 1);
  // The replacement replayed every sync point: its final count matches the
  // survivors' (program has 1 barrier + 40 allreduces per rank).
  EXPECT_EQ(world.rank_sync_count(1), world.rank_sync_count(0));
  EXPECT_EQ(world.rank_sync_count(1), 41u);
  EXPECT_NO_THROW(kernel_.check_invariants());
}

TEST_F(MpiFaultTest, InjectRankFailureRejectsBadRanks) {
  mpi::MpiConfig config;
  config.nranks = 2;
  mpi::MpiWorld world(kernel_, config, loopy_program(5));
  world.launch_mpiexec(Policy::kNormal, 0, kernel::kInvalidTid);
  EXPECT_FALSE(world.inject_rank_failure(-1));
  EXPECT_FALSE(world.inject_rank_failure(2));
  engine_.run_until(2 * kSecond);
  ASSERT_TRUE(world.finished());
  EXPECT_FALSE(world.inject_rank_failure(0));  // already finished
  EXPECT_TRUE(world.fault_report().empty());
}

TEST(MpiCommitTest, DeathWhilePayingCollectiveCostEarnsNoCredit) {
  // The commit protocol: a flat match point fires when the last rank
  // arrives, but no rank's restart checkpoint advances until it finishes
  // paying the collective cost.  A rank killed inside that window must redo
  // the traversal (the respawn note says "+redo"), the aborted traversal
  // counts as lost work, and the final sync counts still converge.
  //
  // A huge collective_alpha makes the payment window ~20ms wide; scan kill
  // times until one lands inside it (each attempt is a fresh deterministic
  // run, so the scan itself is reproducible).
  mpi::Program program;
  program.barrier().loop(3).compute(1 * kMillisecond).allreduce(64).end_loop();
  constexpr std::uint64_t kTotalSyncs = 4;  // 1 barrier + 3 allreduces

  bool found_redo = false;
  for (SimTime kill_at = 22 * kMillisecond;
       kill_at < 120 * kMillisecond && !found_redo;
       kill_at += 2 * kMillisecond) {
    sim::Engine engine;
    Kernel kernel(engine, KernelConfig{});
    kernel.boot();
    util::reset_log_rate_limits();
    mpi::MpiConfig config;
    config.nranks = 4;
    config.restart_failed_ranks = true;
    config.collective_alpha = 20 * kMillisecond;
    mpi::MpiWorld world(kernel, config, program);
    world.launch_mpiexec(Policy::kNormal, 0, kernel::kInvalidTid);
    engine.run_until(kill_at);
    if (world.finished() || !world.inject_rank_failure(1)) break;
    engine.run_until(engine.now() + 10 * kSecond);
    ASSERT_TRUE(world.finished());
    ASSERT_FALSE(world.failed());
    // Replay converges no matter where the kill landed.
    EXPECT_EQ(world.rank_sync_count(1), kTotalSyncs);
    EXPECT_EQ(world.rank_sync_count(0), kTotalSyncs);
    for (const auto& e : world.fault_report().events) {
      if (e.kind == fault::FaultKind::kRankRestart &&
          e.note.find("+redo") != std::string::npos) {
        found_redo = true;
        // The fired-but-unpaid sync was not checkpointed: the replacement
        // fast-forwarded strictly fewer than kTotalSyncs points.
        EXPECT_EQ(e.note.find("ff=" + std::to_string(kTotalSyncs)),
                  std::string::npos);
        // Everything since the last commit — including the aborted
        // traversal itself — is lost work.
        EXPECT_GT(world.fault_report().lost_work_ns, 0);
        EXPECT_GT(world.fault_report().restart_overhead_ns, 0);
      }
    }
  }
  // With a 20ms payment window and a 2ms scan step, some kill must have
  // landed mid-payment; if none did, the commit protocol is not deferring.
  EXPECT_TRUE(found_redo);
}

TEST(RunnerFaultTest, FaultCampaignSoak) {
  // The long-MTBF robustness soak: a seeded campaign folded onto the ranks
  // of one node-level job, replayed through the full kernel detect/respawn
  // machinery with the invariant checker auditing after every event.
  // The job launches at settle (50ms) and computes for ~150ms: draw the
  // campaign over that live window, with the MTBF compressed so the
  // expected kill count is ~7 (P(zero kills) is negligible).
  fault::CampaignConfig campaign;
  campaign.nodes = 8;
  campaign.node_mtbf = 150 * kMillisecond;
  campaign.start = 60 * kMillisecond;
  campaign.horizon = 200 * kMillisecond;
  exp::RunConfig config;
  config.program = loopy_program(300);
  config.mpi.nranks = 8;
  config.mpi.restart_failed_ranks = true;
  config.mpi.max_restarts = 64;
  config.faults = fault::campaign_rank_plan(campaign, config.mpi.nranks, 5);
  config.check_invariants = true;
  ASSERT_GT(config.faults.actions().size(), 0u);

  const exp::RunResult result = exp::run_once(config, 13);
  EXPECT_TRUE(result.completed) << result.error;
  EXPECT_FALSE(result.faults.job_aborted);
  EXPECT_GT(result.faults.restarts, 0);
  EXPECT_EQ(result.faults.count(fault::FaultKind::kRankDeathDetected),
            result.faults.restarts);
  EXPECT_GT(result.lost_work_seconds, 0.0);
  EXPECT_GT(result.restart_overhead_seconds, 0.0);
  // Deterministic like every other run: same seed, same campaign, same run.
  const exp::RunResult again = exp::run_once(config, 13);
  EXPECT_EQ(result.faults.summary(), again.faults.summary());
  EXPECT_EQ(result.app_seconds, again.app_seconds);
}

// --- FaultPlan ------------------------------------------------------------

TEST(FaultPlanTest, BuildersKeepActionsSortedByTime) {
  fault::FaultPlan plan;
  plan.kill_rank_at(30 * kMillisecond, 1)
      .cpu_offline_at(10 * kMillisecond, 2)
      .cpu_online_at(20 * kMillisecond, 2);
  ASSERT_EQ(plan.actions().size(), 3u);
  EXPECT_EQ(plan.actions()[0].kind, fault::FaultActionKind::kCpuOffline);
  EXPECT_EQ(plan.actions()[1].kind, fault::FaultActionKind::kCpuOnline);
  EXPECT_EQ(plan.actions()[2].kind, fault::FaultActionKind::kRankKill);
  EXPECT_TRUE(std::is_sorted(
      plan.actions().begin(), plan.actions().end(),
      [](const auto& a, const auto& b) { return a.at < b.at; }));
}

TEST(FaultPlanTest, BuildersRejectNegativeIds) {
  fault::FaultPlan plan;
  EXPECT_THROW(plan.cpu_offline_at(1, -1), std::invalid_argument);
  EXPECT_THROW(plan.cpu_online_at(1, -2), std::invalid_argument);
  EXPECT_THROW(plan.kill_rank_at(1, -1), std::invalid_argument);
  EXPECT_THROW(plan.degrade_nic_at(1, -1, 2.0), std::invalid_argument);
  EXPECT_THROW(plan.fail_uplink_at(1, -1), std::invalid_argument);
  EXPECT_TRUE(plan.empty());  // nothing was half-added
}

TEST(FaultPlanTest, ValidateRejectsOverlappingHotplugWindows) {
  fault::FaultPlan ok;
  ok.cpu_offline_at(10, 1).cpu_online_at(20, 1).cpu_offline_at(30, 1);
  EXPECT_NO_THROW(ok.validate());

  fault::FaultPlan duplicate;
  duplicate.cpu_offline_at(10, 1).cpu_offline_at(20, 1);
  EXPECT_THROW(duplicate.validate(), std::invalid_argument);

  fault::FaultPlan orphan_online;
  orphan_online.cpu_online_at(10, 1);
  EXPECT_THROW(orphan_online.validate(), std::invalid_argument);

  // Independent CPUs may overlap freely.
  fault::FaultPlan two_cpus;
  two_cpus.cpu_offline_at(10, 1).cpu_offline_at(15, 2)
      .cpu_online_at(20, 1).cpu_online_at(25, 2);
  EXPECT_NO_THROW(two_cpus.validate());
}

TEST(FaultPlanTest, ValidateChecksTargetBoundsWhenKnown) {
  fault::FaultPlan plan;
  plan.cpu_offline_at(10, 4)
      .kill_rank_at(20, 7)
      .degrade_nic_at(30, 15, 2.0)
      .fail_uplink_at(40, 3);
  // Unknown targets (-1 fields): every bound check is skipped.
  EXPECT_NO_THROW(plan.validate());
  fault::FaultTargets fits;
  fits.cpus = 8;
  fits.ranks = 8;
  fits.nodes = 16;
  fits.blocks = 4;
  EXPECT_NO_THROW(plan.validate(fits));
  // Each target too small to contain its action, in turn.
  fault::FaultTargets t = fits;
  t.cpus = 4;
  EXPECT_THROW(plan.validate(t), std::invalid_argument);
  t = fits;
  t.ranks = 7;
  EXPECT_THROW(plan.validate(t), std::invalid_argument);
  t = fits;
  t.nodes = 15;
  EXPECT_THROW(plan.validate(t), std::invalid_argument);
  t = fits;
  t.blocks = 3;
  EXPECT_THROW(plan.validate(t), std::invalid_argument);
}

TEST(FaultPlanTest, RandomPlansAlwaysValidate) {
  fault::FaultPlan::RandomConfig config;
  config.cpu_offlines = 4;
  config.rank_kills = 3;
  config.reonline_after = 50 * kMillisecond;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const fault::FaultPlan plan = fault::FaultPlan::random(config, seed);
    fault::FaultTargets targets;
    targets.cpus = config.num_cpus;
    targets.ranks = config.num_ranks;
    EXPECT_NO_THROW(plan.validate(targets)) << "seed " << seed;
  }
}

TEST(FaultPlanTest, RandomPlanIsDeterministicPerSeed) {
  fault::FaultPlan::RandomConfig config;
  config.cpu_offlines = 2;
  config.rank_kills = 2;
  const fault::FaultPlan a = fault::FaultPlan::random(config, 42);
  const fault::FaultPlan b = fault::FaultPlan::random(config, 42);
  const fault::FaultPlan c = fault::FaultPlan::random(config, 43);
  EXPECT_EQ(a.describe(), b.describe());
  EXPECT_NE(a.describe(), c.describe());
  // 2 offlines (+ their re-onlines) + 2 kills.
  EXPECT_EQ(a.actions().size(), 6u);
  for (const auto& action : a.actions()) {
    if (action.kind != fault::FaultActionKind::kRankKill) {
      EXPECT_NE(action.cpu, 0);  // never unplugs the boot CPU
    }
  }
}

// --- experiment runner ----------------------------------------------------

exp::RunConfig faulted_config() {
  exp::RunConfig config;
  config.program = loopy_program(60);
  config.mpi.nranks = 8;
  config.mpi.restart_failed_ranks = true;
  config.faults.cpu_offline_at(70 * kMillisecond, 1)
      .kill_rank_at(90 * kMillisecond, 3)
      .cpu_online_at(150 * kMillisecond, 1);
  return config;
}

TEST(RunnerFaultTest, FaultedRunIsBitIdenticalPerSeed) {
  const exp::RunConfig config = faulted_config();
  const exp::RunResult a = exp::run_once(config, 7);
  const exp::RunResult b = exp::run_once(config, 7);
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  EXPECT_EQ(a.app_seconds, b.app_seconds);
  EXPECT_EQ(a.context_switches, b.context_switches);
  EXPECT_EQ(a.cpu_migrations, b.cpu_migrations);
  EXPECT_EQ(a.faults.summary(), b.faults.summary());
}

TEST(RunnerFaultTest, DemoOfflinePlusRankKillUnderInvariantChecks) {
  // The acceptance demo: one CPU offline and one rank kill mid-run, with the
  // invariant checker auditing after every event; the run completes, the
  // report is populated, nothing hangs, nothing trips the checker.
  exp::RunConfig config = faulted_config();
  config.setup = exp::Setup::kHpl;
  config.check_invariants = true;
  const exp::RunResult result = exp::run_once(config, 11);
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(result.error.empty());
  EXPECT_EQ(result.faults.count(fault::FaultKind::kCpuOffline), 1);
  EXPECT_EQ(result.faults.count(fault::FaultKind::kCpuOnline), 1);
  EXPECT_EQ(result.faults.count(fault::FaultKind::kRankKill), 1);
  EXPECT_EQ(result.faults.count(fault::FaultKind::kRankDeathDetected), 1);
  EXPECT_EQ(result.faults.restarts, 1);
  EXPECT_FALSE(result.faults.job_aborted);
}

TEST(RunnerFaultTest, SeriesSurvivesARunThatThrows) {
  exp::RunConfig config;
  mpi::Program broken;
  broken.loop(2).compute(1 * kMillisecond);  // unbalanced loop: ctor throws
  config.program = broken;
  config.mpi.nranks = 2;
  const exp::Series series = exp::run_series(config, 3, 1);
  EXPECT_EQ(series.runs.size(), 3u);
  EXPECT_EQ(series.failures, 3);
  ASSERT_EQ(series.errors().size(), 3u);
  EXPECT_FALSE(series.errors()[0].empty());
}

}  // namespace
}  // namespace hpcs
