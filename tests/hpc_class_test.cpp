// Tests for the paper's HPC scheduling class: class ordering, topology-aware
// fork placement, no-balancing policy, round-robin queue, and the balance
// inhibitor installed by hpl::install().
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <stdexcept>

#include "core/hpc_class.h"
#include "core/hpl.h"
#include "kernel/behaviors.h"
#include "kernel/kernel.h"
#include "sim/engine.h"

namespace hpcs::hpl {
namespace {

using kernel::Action;
using kernel::cpu_mask_all;
using kernel::cpu_mask_of;
using kernel::CpuMask;
using kernel::Kernel;
using kernel::KernelConfig;
using kernel::Policy;
using kernel::ScriptBehavior;
using kernel::SpawnSpec;
using kernel::TaskState;
using kernel::Tid;

class HpcClassTest : public ::testing::Test {
 protected:
  HpcClassTest() : kernel_(engine_, KernelConfig{}), hpc_(&install(kernel_)) {
    kernel_.boot();
  }

  Tid spawn(std::string name, Policy policy, SimDuration work,
            CpuMask affinity = cpu_mask_all(),
            Tid parent = kernel::kInvalidTid) {
    SpawnSpec spec;
    spec.name = std::move(name);
    spec.policy = policy;
    if (is_rt_policy(policy)) spec.rt_prio = 50;
    spec.affinity = affinity;
    spec.parent = parent;
    spec.behavior = std::make_unique<ScriptBehavior>(
        std::vector<Action>{Action::compute(work)});
    return kernel_.spawn(std::move(spec));
  }

  sim::Engine engine_;
  Kernel kernel_;
  HpcClass* hpc_;
};

TEST_F(HpcClassTest, HpcPreemptsCfs) {
  const Tid cfs =
      spawn("cfs", Policy::kNormal, milliseconds(20), cpu_mask_of(0));
  engine_.run_until(milliseconds(1));
  ASSERT_EQ(kernel_.current_on(0), &kernel_.task(cfs));
  const Tid hpc = spawn("hpc", Policy::kHpc, milliseconds(5), cpu_mask_of(0));
  engine_.run_until(milliseconds(1) + microseconds(100));
  EXPECT_EQ(kernel_.current_on(0), &kernel_.task(hpc));
  EXPECT_EQ(kernel_.task(cfs).state, TaskState::kRunnable);
}

TEST_F(HpcClassTest, RtPreemptsHpc) {
  const Tid hpc = spawn("hpc", Policy::kHpc, milliseconds(20), cpu_mask_of(0));
  engine_.run_until(milliseconds(1));
  ASSERT_EQ(kernel_.current_on(0), &kernel_.task(hpc));
  const Tid rt = spawn("rt", Policy::kFifo, milliseconds(2), cpu_mask_of(0));
  engine_.run_until(milliseconds(1) + microseconds(100));
  EXPECT_EQ(kernel_.current_on(0), &kernel_.task(rt));
}

TEST_F(HpcClassTest, CfsNeverRunsWhileHpcRunnable) {
  // The paper's core guarantee: no CFS task is selected while an HPC task
  // is runnable on that CPU.
  bool violated = false;
  kernel_.add_trace_hook([&](const sim::TraceRecord& rec) {
    if (rec.point != sim::TracePoint::kSchedSwitch) return;
    const kernel::Task* next = kernel_.find_task(rec.tid);
    if (next == nullptr || next->policy != Policy::kNormal) return;
    if (hpc_->nr_runnable(rec.cpu) > 0) violated = true;
  });
  for (int i = 0; i < 10; ++i) {  // more HPC tasks than CPUs
    spawn("hpc" + std::to_string(i), Policy::kHpc, milliseconds(20));
  }
  for (int i = 0; i < 5; ++i) {
    spawn("daemon" + std::to_string(i), Policy::kNormal, milliseconds(5));
  }
  engine_.run_until(milliseconds(100));
  EXPECT_FALSE(violated);
}

TEST_F(HpcClassTest, TopologyPlacementUsesDistinctCores) {
  // Four HPC tasks on the 4-core machine: one per core, chips balanced.
  std::vector<Tid> tids;
  for (int i = 0; i < 4; ++i) {
    tids.push_back(
        spawn("r" + std::to_string(i), Policy::kHpc, milliseconds(50)));
  }
  engine_.run_until(milliseconds(2));
  std::set<int> cores;
  std::vector<int> per_chip(2, 0);
  for (Tid tid : tids) {
    const auto cpu = kernel_.task(tid).cpu;
    cores.insert(kernel_.topology().core_of(cpu));
    per_chip[static_cast<std::size_t>(kernel_.topology().chip_of(cpu))]++;
  }
  EXPECT_EQ(cores.size(), 4u);
  EXPECT_EQ(per_chip[0], 2);
  EXPECT_EQ(per_chip[1], 2);
}

TEST_F(HpcClassTest, ChipsBalancedBeforeCores) {
  // Two tasks: one per chip (not two cores of one chip).
  const Tid a = spawn("a", Policy::kHpc, milliseconds(50));
  const Tid b = spawn("b", Policy::kHpc, milliseconds(50));
  engine_.run_until(milliseconds(1));
  EXPECT_NE(kernel_.topology().chip_of(kernel_.task(a).cpu),
            kernel_.topology().chip_of(kernel_.task(b).cpu));
}

TEST_F(HpcClassTest, SmtThreadsUsedOnlyWhenCoresFull) {
  // Eight tasks: all eight hardware threads, exactly two per core.
  std::vector<Tid> tids;
  for (int i = 0; i < 8; ++i) {
    tids.push_back(
        spawn("r" + std::to_string(i), Policy::kHpc, milliseconds(50)));
  }
  engine_.run_until(milliseconds(2));
  std::vector<int> per_core(4, 0);
  for (Tid tid : tids) {
    per_core[static_cast<std::size_t>(
        kernel_.topology().core_of(kernel_.task(tid).cpu))]++;
  }
  for (int n : per_core) EXPECT_EQ(n, 2);
}

TEST_F(HpcClassTest, PlacementRespectsAffinity) {
  const CpuMask chip1 = cpu_mask_of(4) | cpu_mask_of(5) | cpu_mask_of(6) |
                        cpu_mask_of(7);
  const Tid tid = spawn("pinned", Policy::kHpc, milliseconds(10), chip1);
  engine_.run_until(milliseconds(1));
  EXPECT_EQ(kernel_.topology().chip_of(kernel_.task(tid).cpu), 1);
}

TEST_F(HpcClassTest, NoRuntimeBalancingOfHpcTasks) {
  // Two HPC tasks forced onto one CPU stay there: the class never balances
  // after fork.
  const Tid a = spawn("a", Policy::kHpc, milliseconds(40), cpu_mask_of(2));
  const Tid b = spawn("b", Policy::kHpc, milliseconds(40), cpu_mask_of(2));
  engine_.run_until(milliseconds(1));
  ASSERT_TRUE(kernel_.sys_setaffinity(a, cpu_mask_all()));
  ASSERT_TRUE(kernel_.sys_setaffinity(b, cpu_mask_all()));
  engine_.run_until(milliseconds(60));
  EXPECT_EQ(kernel_.task(a).cpu, 2);
  EXPECT_EQ(kernel_.task(b).cpu, 2);
}

TEST_F(HpcClassTest, RoundRobinSharesCpuBetweenColocatedTasks) {
  const Tid a = spawn("a", Policy::kHpc, milliseconds(30), cpu_mask_of(0));
  const Tid b = spawn("b", Policy::kHpc, milliseconds(30), cpu_mask_of(0));
  engine_.run_until(milliseconds(40));
  // Both progressed (RR quantum rotates them), roughly evenly.
  EXPECT_GT(kernel_.task(a).acct.runtime, milliseconds(10));
  EXPECT_GT(kernel_.task(b).acct.runtime, milliseconds(10));
}

TEST_F(HpcClassTest, CfsBalancingSuppressedWhileHpcRunnable) {
  // Pile two CFS tasks on CPU 0 and keep an HPC task runnable elsewhere:
  // the inhibitor must freeze CFS balancing (Table Ib's design point).
  spawn("hpc", Policy::kHpc, milliseconds(200), cpu_mask_of(7));
  const Tid a = spawn("a", Policy::kNormal, milliseconds(100), cpu_mask_of(0));
  const Tid b = spawn("b", Policy::kNormal, milliseconds(100), cpu_mask_of(0));
  engine_.run_until(milliseconds(1));
  ASSERT_TRUE(kernel_.sys_setaffinity(a, cpu_mask_all()));
  ASSERT_TRUE(kernel_.sys_setaffinity(b, cpu_mask_all()));
  engine_.run_until(milliseconds(100));
  EXPECT_EQ(kernel_.task(a).cpu, 0);
  EXPECT_EQ(kernel_.task(b).cpu, 0);
}

TEST_F(HpcClassTest, CfsBalancingResumesWhenHpcDone) {
  const Tid hpc = spawn("hpc", Policy::kHpc, milliseconds(10), cpu_mask_of(7));
  const Tid a = spawn("a", Policy::kNormal, milliseconds(300), cpu_mask_of(0));
  const Tid b = spawn("b", Policy::kNormal, milliseconds(300), cpu_mask_of(0));
  engine_.run_until(milliseconds(1));
  ASSERT_TRUE(kernel_.sys_setaffinity(a, cpu_mask_all()));
  ASSERT_TRUE(kernel_.sys_setaffinity(b, cpu_mask_all()));
  engine_.run_until(milliseconds(200));
  EXPECT_EQ(kernel_.task(hpc).state, TaskState::kExited);
  // With no HPC work left, standard balancing spread the CFS tasks.
  EXPECT_NE(kernel_.task(a).cpu, kernel_.task(b).cpu);
}

TEST_F(HpcClassTest, WakeupStaysOnPrevCpu) {
  SpawnSpec spec;
  spec.name = "napper";
  spec.policy = Policy::kHpc;
  spec.behavior = std::make_unique<ScriptBehavior>(std::vector<Action>{
      Action::compute(milliseconds(5)), Action::sleep(milliseconds(5)),
      Action::compute(milliseconds(5))});
  const Tid tid = kernel_.spawn(std::move(spec));
  engine_.run_until(milliseconds(3));
  const auto before = kernel_.task(tid).cpu;
  engine_.run_until(milliseconds(60));
  EXPECT_EQ(kernel_.task(tid).cpu, before);
  EXPECT_EQ(kernel_.task(tid).state, TaskState::kExited);
}

TEST_F(HpcClassTest, DoubleDequeueRejected) {
  const Tid tid = spawn("hpc", Policy::kHpc, milliseconds(5), cpu_mask_of(0));
  engine_.run_until(milliseconds(1));
  kernel::Task& t = kernel_.task(tid);
  ASSERT_EQ(t.state, TaskState::kRunning);
  // Legal: dequeuing the running task, as the kernel does when it sleeps.
  hpc_->dequeue(0, t, /*sleeping=*/true);
  hpc_->clear_curr(0, t);
  EXPECT_EQ(hpc_->nr_runnable(0), 0);
  // A second dequeue must be rejected loudly instead of silently
  // corrupting the round-robin queue's nr/total accounting.
  EXPECT_THROW(hpc_->dequeue(0, t, /*sleeping=*/false), std::logic_error);
  EXPECT_EQ(hpc_->nr_runnable(0), 0);
  EXPECT_EQ(hpc_->total_runnable(), 0);
}

TEST_F(HpcClassTest, PlaceForkExposedAlgorithm) {
  // Direct unit test of the placement function with synthetic occupancy.
  kernel::Task probe;
  probe.policy = Policy::kHpc;
  probe.affinity = cpu_mask_all();
  probe.cpu = 0;
  const hw::CpuId first = hpc_->place_fork(probe);
  EXPECT_EQ(first, 0);  // empty machine: first CPU of first core of chip 0
}

TEST(HpcPlacementOptions, TopologyPlacementPortsToModernMachine) {
  // The paper's claim: the algorithm only consumes portable topology facts.
  // On a 2x16x2 machine, 32 HPC tasks must land one per core, 16 per chip.
  sim::Engine engine;
  kernel::KernelConfig kc;
  kc.machine = hw::MachineConfig::modern_dual_socket();
  Kernel kernel(engine, kc);
  install(kernel);
  kernel.boot();
  std::vector<Tid> tids;
  for (int i = 0; i < 32; ++i) {
    SpawnSpec spec;
    spec.name = "r" + std::to_string(i);
    spec.policy = Policy::kHpc;
    spec.behavior = std::make_unique<ScriptBehavior>(
        std::vector<Action>{Action::compute(milliseconds(20))});
    tids.push_back(kernel.spawn(std::move(spec)));
  }
  engine.run_until(milliseconds(2));
  std::set<int> cores;
  std::vector<int> per_chip(2, 0);
  for (Tid tid : tids) {
    const auto cpu = kernel.task(tid).cpu;
    cores.insert(kernel.topology().core_of(cpu));
    per_chip[static_cast<std::size_t>(kernel.topology().chip_of(cpu))]++;
  }
  EXPECT_EQ(cores.size(), 32u);  // one task per core, no SMT doubling
  EXPECT_EQ(per_chip[0], 16);
  EXPECT_EQ(per_chip[1], 16);
}

TEST(HpcPlacementOptions, LinearPlacementPacksById) {
  sim::Engine engine;
  Kernel kernel(engine, KernelConfig{});
  HplOptions options;
  options.hpc.placement = Placement::kLinear;
  install(kernel, options);
  kernel.boot();
  std::vector<Tid> tids;
  for (int i = 0; i < 4; ++i) {
    SpawnSpec spec;
    spec.name = "r" + std::to_string(i);
    spec.policy = Policy::kHpc;
    spec.behavior = std::make_unique<ScriptBehavior>(
        std::vector<Action>{Action::compute(milliseconds(20))});
    tids.push_back(kernel.spawn(std::move(spec)));
  }
  engine.run_until(milliseconds(1));
  // Linear placement fills CPUs 0..3: two cores loaded, chip 1 idle.
  std::set<int> chips;
  for (Tid tid : tids) {
    chips.insert(kernel.topology().chip_of(kernel.task(tid).cpu));
  }
  EXPECT_EQ(chips.size(), 1u);
}

TEST(HpcInstall, RegisterAfterBootThrows) {
  sim::Engine engine;
  Kernel kernel(engine, KernelConfig{});
  kernel.boot();
  EXPECT_THROW(install(kernel), std::logic_error);
}

}  // namespace
}  // namespace hpcs::hpl
