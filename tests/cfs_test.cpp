// CFS behaviour tests: fairness, nice weighting, wakeup preemption, vruntime
// bookkeeping, placement.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "kernel/behaviors.h"
#include "kernel/cfs.h"
#include "kernel/kernel.h"
#include "sim/engine.h"

namespace hpcs::kernel {
namespace {

class CfsTest : public ::testing::Test {
 protected:
  CfsTest() : kernel_(engine_, KernelConfig{}) { kernel_.boot(); }

  Tid spawn_compute(std::string name, SimDuration work, int nice = 0,
                    CpuMask affinity = cpu_mask_all()) {
    SpawnSpec spec;
    spec.name = std::move(name);
    spec.nice = nice;
    spec.affinity = affinity;
    spec.behavior = std::make_unique<ScriptBehavior>(
        std::vector<Action>{Action::compute(work)});
    return kernel_.spawn(std::move(spec));
  }

  sim::Engine engine_;
  Kernel kernel_;
};

TEST_F(CfsTest, EqualNiceTasksShareFairly) {
  const CpuMask mask = cpu_mask_of(0);
  std::vector<Tid> tids;
  for (int i = 0; i < 4; ++i) {
    tids.push_back(spawn_compute("t" + std::to_string(i), seconds(1), 0, mask));
  }
  engine_.run_until(milliseconds(400));
  SimDuration lo = ~0ull, hi = 0;
  for (Tid tid : tids) {
    const SimDuration r = kernel_.task(tid).acct.runtime;
    lo = std::min(lo, r);
    hi = std::max(hi, r);
  }
  EXPECT_GT(lo, milliseconds(60));
  // Fairness: spread bounded by roughly one scheduling period.
  EXPECT_LT(hi - lo, kernel_.config().cfs.sched_latency * 2);
}

TEST_F(CfsTest, VruntimeSpreadBounded) {
  const CpuMask mask = cpu_mask_of(0);
  for (int i = 0; i < 3; ++i) {
    spawn_compute("t" + std::to_string(i), seconds(1), 0, mask);
  }
  engine_.run_until(milliseconds(300));
  kernel_.account_current(0);
  EXPECT_LT(kernel_.cfs().vruntime_spread(0),
            2 * kernel_.config().cfs.sched_latency);
}

TEST_F(CfsTest, DoubleDequeueRejected) {
  const Tid tid = spawn_compute("t", milliseconds(5), 0, cpu_mask_of(0));
  engine_.run_until(milliseconds(1));
  Task& t = kernel_.task(tid);
  ASSERT_EQ(t.state, TaskState::kRunning);
  // Legal: dequeuing the running task, as the kernel does when it sleeps.
  kernel_.cfs().dequeue(0, t, /*sleeping=*/true);
  kernel_.cfs().clear_curr(0, t);
  EXPECT_EQ(kernel_.cfs().nr_runnable(0), 0);
  // A second dequeue must be rejected loudly instead of silently
  // underflowing nr/load/total_runnable and poisoning load balancing.
  EXPECT_THROW(kernel_.cfs().dequeue(0, t, /*sleeping=*/false),
               std::logic_error);
  EXPECT_EQ(kernel_.cfs().nr_runnable(0), 0);
  EXPECT_EQ(kernel_.cfs().total_runnable(), 0);
}

struct NicePair {
  int fast_nice;
  int slow_nice;
};

class CfsNiceSweep : public ::testing::TestWithParam<NicePair> {};

// Property: runtime share follows the Linux weight table.
TEST_P(CfsNiceSweep, RuntimeFollowsWeights) {
  const NicePair p = GetParam();
  sim::Engine engine;
  Kernel kernel(engine, KernelConfig{});
  kernel.boot();
  auto spawn = [&](int nice) {
    SpawnSpec spec;
    spec.name = "n" + std::to_string(nice);
    spec.nice = nice;
    spec.affinity = cpu_mask_of(0);
    spec.behavior = std::make_unique<ScriptBehavior>(
        std::vector<Action>{Action::compute(seconds(5))});
    return kernel.spawn(std::move(spec));
  };
  const Tid fast = spawn(p.fast_nice);
  const Tid slow = spawn(p.slow_nice);
  engine.run_until(seconds(2));
  const double ra = static_cast<double>(kernel.task(fast).acct.runtime);
  const double rb = static_cast<double>(kernel.task(slow).acct.runtime);
  const double expected = static_cast<double>(nice_to_weight(p.fast_nice)) /
                          static_cast<double>(nice_to_weight(p.slow_nice));
  EXPECT_NEAR(ra / rb, expected, expected * 0.25);
}

INSTANTIATE_TEST_SUITE_P(NicePairs, CfsNiceSweep,
                         ::testing::Values(NicePair{0, 5}, NicePair{-5, 0},
                                           NicePair{0, 10}, NicePair{-10, -5},
                                           NicePair{0, 19}));

TEST_F(CfsTest, SleeperPreemptsLongRunner) {
  const CpuMask mask = cpu_mask_of(0);
  // The interactive task starts on the idle CPU and goes to sleep at once.
  SpawnSpec spec;
  spec.name = "interactive";
  spec.affinity = mask;
  spec.behavior = std::make_unique<ScriptBehavior>(std::vector<Action>{
      Action::sleep(milliseconds(50)), Action::compute(microseconds(100))});
  const Tid interactive = kernel_.spawn(std::move(spec));
  engine_.run_until(milliseconds(1));
  EXPECT_EQ(kernel_.task(interactive).state, TaskState::kSleeping);
  const Tid hog = spawn_compute("hog", seconds(2), 0, mask);
  engine_.run_until(milliseconds(49));
  EXPECT_EQ(kernel_.current_on(0), &kernel_.task(hog));
  // On wakeup the sleeper credit lets it preempt the hog within ~1 ms.
  engine_.run_until(milliseconds(53));
  EXPECT_EQ(kernel_.task(interactive).state, TaskState::kExited);
}

TEST_F(CfsTest, BatchTasksDoNotWakeupPreempt) {
  const CpuMask mask = cpu_mask_of(0);
  const Tid hog = spawn_compute("hog", seconds(2), 0, mask);
  SpawnSpec spec;
  spec.name = "batch";
  spec.policy = Policy::kBatch;
  spec.affinity = mask;
  spec.behavior = std::make_unique<ScriptBehavior>(std::vector<Action>{
      Action::sleep(milliseconds(10)), Action::compute(milliseconds(1))});
  kernel_.spawn(std::move(spec));
  engine_.run_until(milliseconds(11));
  // Hog still running right after the batch task woke.
  EXPECT_EQ(kernel_.current_on(0), &kernel_.task(hog));
}

TEST_F(CfsTest, ForkPlacementPrefersIdleCpus) {
  std::vector<Tid> tids;
  for (int i = 0; i < 8; ++i) {
    tids.push_back(spawn_compute("t" + std::to_string(i), milliseconds(100)));
  }
  engine_.run_until(milliseconds(2));
  std::vector<int> per_cpu(8, 0);
  for (Tid tid : tids) {
    ++per_cpu[static_cast<std::size_t>(kernel_.task(tid).cpu)];
  }
  for (int n : per_cpu) EXPECT_EQ(n, 1);  // spread one per CPU
}

TEST_F(CfsTest, WakeupPrefersPrevCpuWhenIdle) {
  SpawnSpec spec;
  spec.name = "napper";
  spec.behavior = std::make_unique<ScriptBehavior>(std::vector<Action>{
      Action::compute(milliseconds(2)), Action::sleep(milliseconds(5)),
      Action::compute(milliseconds(2))});
  const Tid tid = kernel_.spawn(std::move(spec));
  engine_.run_until(milliseconds(1));
  const hw::CpuId before = kernel_.task(tid).cpu;
  engine_.run_until(milliseconds(12));
  EXPECT_EQ(kernel_.task(tid).cpu, before);
  // Warm wakeups on the same CPU are not migrations.
  EXPECT_LE(kernel_.task(tid).acct.migrations, 1u);
}

TEST_F(CfsTest, MinVruntimeMonotonic) {
  const CpuMask mask = cpu_mask_of(3);
  spawn_compute("a", milliseconds(30), 0, mask);
  spawn_compute("b", milliseconds(30), 0, mask);
  std::uint64_t last = 0;
  for (int step = 1; step <= 10; ++step) {
    engine_.run_until(milliseconds(static_cast<std::uint64_t>(step) * 5));
    kernel_.account_current(3);
    const std::uint64_t v = kernel_.cfs().min_vruntime(3);
    EXPECT_GE(v, last);
    last = v;
  }
  EXPECT_GT(last, 0u);
}

TEST_F(CfsTest, SchedSliceScalesWithLoad) {
  const CpuMask mask = cpu_mask_of(0);
  const Tid a = spawn_compute("a", seconds(1), 0, mask);
  engine_.run_until(milliseconds(1));
  const SimDuration solo = kernel_.cfs().sched_slice(0, kernel_.task(a));
  spawn_compute("b", seconds(1), 0, mask);
  spawn_compute("c", seconds(1), 0, mask);
  engine_.run_until(milliseconds(2));
  const SimDuration shared = kernel_.cfs().sched_slice(0, kernel_.task(a));
  EXPECT_GT(solo, shared);
  EXPECT_GE(shared, kernel_.config().cfs.min_granularity);
}

TEST_F(CfsTest, TaskHotWindow) {
  const CpuMask mask = cpu_mask_of(0);
  const Tid a = spawn_compute("a", milliseconds(3), 0, mask);
  const Tid b = spawn_compute("b", milliseconds(30), 0, mask);
  engine_.run_until(milliseconds(40));
  // Task a exited long ago; a queued task that just stopped running is hot.
  EXPECT_EQ(kernel_.task(a).state, TaskState::kExited);
  (void)b;
}

TEST_F(CfsTest, NrQueuedAndLoadTrackTasks) {
  const CpuMask mask = cpu_mask_of(0);
  spawn_compute("a", seconds(1), 0, mask);
  spawn_compute("b", seconds(1), 0, mask);
  spawn_compute("c", seconds(1), 5, mask);
  engine_.run_until(milliseconds(5));
  EXPECT_EQ(kernel_.cfs().nr_runnable(0), 3);
  EXPECT_EQ(kernel_.cfs().nr_queued(0), 2);  // one is running
  const std::uint64_t expected_load =
      2ull * nice_to_weight(0) + nice_to_weight(5);
  EXPECT_EQ(kernel_.cfs().cpu_load(0), expected_load);
}

}  // namespace
}  // namespace hpcs::kernel
