// Property tests for the intrusive red-black tree against std::multiset as a
// reference model, plus structural invariant checks after every mutation.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "kernel/rbtree.h"
#include "util/rng.h"

namespace hpcs::kernel {
namespace {

struct Item {
  explicit Item(std::uint64_t k, int id_) : key(k), id(id_) {
    node.owner = this;
  }
  std::uint64_t key;
  int id;
  RbNode node;
};

bool item_less(const RbNode& a, const RbNode& b, const void*) {
  const Item& ia = *static_cast<const Item*>(a.owner);
  const Item& ib = *static_cast<const Item*>(b.owner);
  if (ia.key != ib.key) return ia.key < ib.key;
  return ia.id < ib.id;
}

std::vector<std::pair<std::uint64_t, int>> in_order(const RbTree& tree) {
  std::vector<std::pair<std::uint64_t, int>> out;
  for (RbNode* n = tree.first(); n != nullptr; n = RbTree::next(n)) {
    const Item& item = *static_cast<const Item*>(n->owner);
    out.emplace_back(item.key, item.id);
  }
  return out;
}

TEST(RbTreeTest, EmptyTree) {
  RbTree tree(&item_less);
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.leftmost(), nullptr);
  EXPECT_EQ(tree.validate(), 0);
}

TEST(RbTreeTest, SingleInsertErase) {
  RbTree tree(&item_less);
  Item a(5, 1);
  tree.insert(a.node);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_TRUE(a.node.linked);
  EXPECT_EQ(tree.leftmost(), &a.node);
  EXPECT_GT(tree.validate(), 0);
  tree.erase(a.node);
  EXPECT_TRUE(tree.empty());
  EXPECT_FALSE(a.node.linked);
}

TEST(RbTreeTest, DoubleInsertThrows) {
  RbTree tree(&item_less);
  Item a(1, 1);
  tree.insert(a.node);
  EXPECT_THROW(tree.insert(a.node), std::logic_error);
}

TEST(RbTreeTest, EraseUnlinkedThrows) {
  RbTree tree(&item_less);
  Item a(1, 1);
  EXPECT_THROW(tree.erase(a.node), std::logic_error);
}

TEST(RbTreeTest, LeftmostTracksMinimum) {
  RbTree tree(&item_less);
  Item a(10, 1), b(5, 2), c(20, 3), d(1, 4);
  tree.insert(a.node);
  EXPECT_EQ(tree.leftmost(), &a.node);
  tree.insert(b.node);
  EXPECT_EQ(tree.leftmost(), &b.node);
  tree.insert(c.node);
  EXPECT_EQ(tree.leftmost(), &b.node);
  tree.insert(d.node);
  EXPECT_EQ(tree.leftmost(), &d.node);
  tree.erase(d.node);
  EXPECT_EQ(tree.leftmost(), &b.node);
  tree.erase(b.node);
  EXPECT_EQ(tree.leftmost(), &a.node);
}

TEST(RbTreeTest, RightmostTracksMaximum) {
  RbTree tree(&item_less);
  EXPECT_EQ(tree.rightmost(), nullptr);
  Item a(10, 1), b(5, 2), c(20, 3), d(30, 4);
  tree.insert(a.node);
  EXPECT_EQ(tree.rightmost(), &a.node);
  tree.insert(b.node);
  EXPECT_EQ(tree.rightmost(), &a.node);
  tree.insert(c.node);
  EXPECT_EQ(tree.rightmost(), &c.node);
  tree.insert(d.node);
  EXPECT_EQ(tree.rightmost(), &d.node);
  tree.erase(d.node);
  EXPECT_EQ(tree.rightmost(), &c.node);
  tree.erase(c.node);
  EXPECT_EQ(tree.rightmost(), &a.node);
  tree.clear();
  EXPECT_EQ(tree.rightmost(), nullptr);
}

TEST(RbTreeTest, PrevWalksReverseOrder) {
  RbTree tree(&item_less);
  std::vector<std::unique_ptr<Item>> items;
  util::Rng rng(23);
  for (int i = 0; i < 200; ++i) {
    items.push_back(std::make_unique<Item>(rng.uniform_u64(0, 50), i));
    tree.insert(items.back()->node);
  }
  auto forward = in_order(tree);
  std::vector<std::pair<std::uint64_t, int>> backward;
  for (RbNode* n = tree.last(); n != nullptr; n = RbTree::prev(n)) {
    const Item& item = *static_cast<const Item*>(n->owner);
    backward.emplace_back(item.key, item.id);
  }
  std::reverse(backward.begin(), backward.end());
  EXPECT_EQ(forward, backward);
}

TEST(RbTreeTest, InOrderIsSorted) {
  RbTree tree(&item_less);
  std::vector<std::unique_ptr<Item>> items;
  util::Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    items.push_back(std::make_unique<Item>(rng.uniform_u64(0, 50), i));
    tree.insert(items.back()->node);
  }
  auto seq = in_order(tree);
  EXPECT_TRUE(std::is_sorted(seq.begin(), seq.end()));
  EXPECT_EQ(seq.size(), 200u);
  EXPECT_GT(tree.validate(), 0);
}

TEST(RbTreeTest, ClearUnlinksAll) {
  RbTree tree(&item_less);
  Item a(1, 1), b(2, 2), c(3, 3);
  tree.insert(a.node);
  tree.insert(b.node);
  tree.insert(c.node);
  tree.clear();
  EXPECT_TRUE(tree.empty());
  EXPECT_FALSE(a.node.linked);
  EXPECT_FALSE(b.node.linked);
  EXPECT_FALSE(c.node.linked);
  // Nodes are reusable after clear.
  tree.insert(b.node);
  EXPECT_EQ(tree.size(), 1u);
}

struct SweepParam {
  std::uint64_t seed;
  int ops;
  std::uint64_t key_range;
};

class RbTreeSweep : public ::testing::TestWithParam<SweepParam> {};

// Randomised differential test: every mutation is mirrored in a reference
// std::multiset; after each step the RB invariants must hold and the
// in-order traversal must match the reference exactly.
TEST_P(RbTreeSweep, MatchesReferenceModel) {
  const SweepParam param = GetParam();
  util::Rng rng(param.seed);
  RbTree tree(&item_less);
  std::vector<std::unique_ptr<Item>> pool;
  std::vector<Item*> linked;
  std::multiset<std::pair<std::uint64_t, int>> reference;

  for (int op = 0; op < param.ops; ++op) {
    const bool insert = linked.empty() || rng.chance(0.6);
    if (insert) {
      pool.push_back(std::make_unique<Item>(
          rng.uniform_u64(0, param.key_range), static_cast<int>(pool.size())));
      Item* item = pool.back().get();
      tree.insert(item->node);
      linked.push_back(item);
      reference.emplace(item->key, item->id);
    } else {
      const auto pick =
          static_cast<std::size_t>(rng.uniform_u64(0, linked.size() - 1));
      Item* item = linked[pick];
      tree.erase(item->node);
      reference.erase(reference.find({item->key, item->id}));
      linked.erase(linked.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    ASSERT_GT(tree.validate(), -1) << "RB invariant violated at op " << op;
    ASSERT_EQ(tree.size(), reference.size());
  }
  const auto seq = in_order(tree);
  std::vector<std::pair<std::uint64_t, int>> expect(reference.begin(),
                                                    reference.end());
  EXPECT_EQ(seq, expect);
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, RbTreeSweep,
    ::testing::Values(SweepParam{1, 50, 8}, SweepParam{2, 500, 4},
                      SweepParam{3, 500, 1000000}, SweepParam{4, 2000, 64},
                      SweepParam{5, 2000, 2}, SweepParam{6, 5000, 100},
                      SweepParam{7, 1000, 1}, SweepParam{8, 3000, 1000}));

// Ascending/descending insertion are the classic degenerate cases.
TEST(RbTreeTest, AscendingInsertionStaysBalanced) {
  RbTree tree(&item_less);
  std::vector<std::unique_ptr<Item>> items;
  for (int i = 0; i < 1024; ++i) {
    items.push_back(std::make_unique<Item>(static_cast<std::uint64_t>(i), i));
    tree.insert(items.back()->node);
  }
  const int height = tree.validate();
  ASSERT_GT(height, 0);
  // Black-height of a 1024-node RB tree is at most ~log2(n)+1.
  EXPECT_LE(height, 11);
}

TEST(RbTreeTest, DescendingInsertionStaysBalanced) {
  RbTree tree(&item_less);
  std::vector<std::unique_ptr<Item>> items;
  for (int i = 1024; i > 0; --i) {
    items.push_back(std::make_unique<Item>(static_cast<std::uint64_t>(i), i));
    tree.insert(items.back()->node);
    ASSERT_GT(tree.validate(), 0);
  }
}

TEST(RbTreeTest, DuplicateKeysOrderedById) {
  RbTree tree(&item_less);
  Item a(5, 2), b(5, 1), c(5, 3);
  tree.insert(a.node);
  tree.insert(b.node);
  tree.insert(c.node);
  const auto seq = in_order(tree);
  EXPECT_EQ(seq[0].second, 1);
  EXPECT_EQ(seq[1].second, 2);
  EXPECT_EQ(seq[2].second, 3);
}

}  // namespace
}  // namespace hpcs::kernel
