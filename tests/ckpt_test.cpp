// Tests for the checkpoint/resilience building blocks: the Young/Daly
// closed forms, the PFS busy-horizon model, and the seeded fault-campaign
// generator they feed.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "ckpt/pfs.h"
#include "ckpt/young_daly.h"
#include "fault/campaign.h"

namespace hpcs {
namespace {

// --- Young/Daly closed forms ----------------------------------------------

TEST(YoungDalyTest, JobMtbfScalesInverselyWithWidth) {
  EXPECT_DOUBLE_EQ(ckpt::job_mtbf_s(3600.0, 1), 3600.0);
  EXPECT_DOUBLE_EQ(ckpt::job_mtbf_s(3600.0, 100), 36.0);
  EXPECT_THROW(ckpt::job_mtbf_s(0.0, 4), std::invalid_argument);
  EXPECT_THROW(ckpt::job_mtbf_s(3600.0, 0), std::invalid_argument);
}

TEST(YoungDalyTest, YoungMatchesTheClosedForm) {
  // T = sqrt(2 C M): C = 50s, M = 10000s -> T = 1000s.
  EXPECT_DOUBLE_EQ(ckpt::young_interval_s(50.0, 10000.0), 1000.0);
  EXPECT_THROW(ckpt::young_interval_s(0.0, 10.0), std::invalid_argument);
  EXPECT_THROW(ckpt::young_interval_s(10.0, 0.0), std::invalid_argument);
}

TEST(YoungDalyTest, DalyRefinesYoungAndFallsBackAtHighC) {
  const double c = 50.0;
  const double m = 10000.0;
  const double young = ckpt::young_interval_s(c, m);
  const double daly = ckpt::daly_interval_s(c, m);
  // Daly 2006 eq. (20) at x = C/2M = 0.0025:
  //   sqrt(2CM) (1 + sqrt(x)/3 + x/9) - C.
  const double x = c / (2.0 * m);
  const double expected =
      young * (1.0 + std::sqrt(x) / 3.0 + x / 9.0) - c;
  EXPECT_NEAR(daly, expected, 1e-9);
  // In the C << M regime the two optima agree to a few percent.
  EXPECT_NEAR(daly / young, 1.0, 0.05);
  // Degenerate regime: checkpointing cannot keep up, recommend M itself.
  EXPECT_DOUBLE_EQ(ckpt::daly_interval_s(300.0, 100.0), 100.0);
}

TEST(YoungDalyTest, PickDispatchesOnPolicy) {
  EXPECT_DOUBLE_EQ(
      ckpt::pick_interval_s(ckpt::IntervalPolicy::kYoung, 50.0, 10000.0, 7.0),
      ckpt::young_interval_s(50.0, 10000.0));
  EXPECT_DOUBLE_EQ(
      ckpt::pick_interval_s(ckpt::IntervalPolicy::kDaly, 50.0, 10000.0, 7.0),
      ckpt::daly_interval_s(50.0, 10000.0));
  EXPECT_DOUBLE_EQ(
      ckpt::pick_interval_s(ckpt::IntervalPolicy::kFixed, 50.0, 10000.0, 7.0),
      7.0);
}

TEST(YoungDalyTest, WasteIsMinimisedNearTheYoungOptimum) {
  const double c = 20.0;
  const double m = 8000.0;
  const double r = 30.0;
  const double t_opt = ckpt::young_interval_s(c, m);
  const double at_opt = ckpt::expected_waste_fraction(t_opt, c, m, r);
  // The closed-form waste curve is convex with its minimum at sqrt(2CM)
  // (to first order): both a much shorter and a much longer interval must
  // waste strictly more.
  EXPECT_LT(at_opt, ckpt::expected_waste_fraction(t_opt / 4.0, c, m, r));
  EXPECT_LT(at_opt, ckpt::expected_waste_fraction(t_opt * 4.0, c, m, r));
  EXPECT_GT(at_opt, 0.0);
  EXPECT_LT(at_opt, 1.0);
  // Clamped: absurd inputs saturate at 1 instead of exceeding it.
  EXPECT_DOUBLE_EQ(ckpt::expected_waste_fraction(1.0, 500.0, 1.0, 500.0),
                   1.0);
  EXPECT_THROW(ckpt::expected_waste_fraction(0.0, c, m, r),
               std::invalid_argument);
}

TEST(YoungDalyTest, PolicyNamesAreStable) {
  EXPECT_STREQ(ckpt::interval_policy_name(ckpt::IntervalPolicy::kYoung),
               "young");
  EXPECT_STREQ(ckpt::interval_policy_name(ckpt::IntervalPolicy::kDaly),
               "daly");
  EXPECT_STREQ(ckpt::interval_policy_name(ckpt::IntervalPolicy::kFixed),
               "fixed");
  EXPECT_STREQ(ckpt::coord_policy_name(ckpt::CoordPolicy::kSelfish),
               "selfish");
  EXPECT_STREQ(ckpt::coord_policy_name(ckpt::CoordPolicy::kCooperative),
               "cooperative");
}

// --- PfsModel --------------------------------------------------------------

ckpt::PfsConfig pfs_config() {
  ckpt::PfsConfig config;
  config.ns_per_byte = 1.0;  // 1 byte/ns keeps the arithmetic exact
  config.op_latency = 100;
  return config;
}

TEST(PfsModelTest, TransferTimeIsLatencyPlusSerialisation) {
  ckpt::PfsModel pfs(pfs_config());
  EXPECT_EQ(pfs.transfer_time(0), 100);
  EXPECT_EQ(pfs.transfer_time(1000), 1100);
}

TEST(PfsModelTest, ConcurrentWritesSerialiseFifo) {
  ckpt::PfsModel pfs(pfs_config());
  const ckpt::PfsGrant a = pfs.write(1000, 0);
  EXPECT_EQ(a.start, 0);
  EXPECT_EQ(a.end, 1100);
  EXPECT_EQ(a.queued, 0);
  // Same instant: the second writer queues behind the first.
  const ckpt::PfsGrant b = pfs.write(500, 0);
  EXPECT_EQ(b.start, 1100);
  EXPECT_EQ(b.end, 1700);
  EXPECT_EQ(b.queued, 1100);
  // After the horizon drains, a later writer starts immediately.
  const ckpt::PfsGrant c = pfs.write(100, 5000);
  EXPECT_EQ(c.start, 5000);
  EXPECT_EQ(c.queued, 0);
  EXPECT_EQ(pfs.stats().writes, 3u);
  EXPECT_EQ(pfs.stats().bytes_written, 1600u);
  EXPECT_EQ(pfs.stats().queued_ns, 1100);
  EXPECT_EQ(pfs.stats().max_queue_ns, 1100);
}

TEST(PfsModelTest, ReservationsStaggerAndHonourEarliest) {
  ckpt::PfsModel pfs(pfs_config());
  // Three jobs book their next window "one interval out" at the same time:
  // the coordinator hands out consecutive, non-overlapping slots.
  const ckpt::PfsGrant a = pfs.reserve(1000, 0, 10000);
  const ckpt::PfsGrant b = pfs.reserve(1000, 0, 10000);
  const ckpt::PfsGrant c = pfs.reserve(1000, 0, 10000);
  EXPECT_EQ(a.start, 10000);
  EXPECT_EQ(b.start, a.end);
  EXPECT_EQ(c.start, b.end);
  // queued measures slip past the wanted time, not past `now`.
  EXPECT_EQ(a.queued, 0);
  EXPECT_EQ(b.queued, a.end - 10000);
  EXPECT_EQ(pfs.stats().reservations, 3u);
  // Reservations share the checkpoint lane with writes.
  const ckpt::PfsGrant w = pfs.write(100, 0);
  EXPECT_EQ(w.start, c.end);
  EXPECT_EQ(pfs.ckpt_backlog(0), w.end);
}

TEST(PfsModelTest, RestartReadsBypassTheCheckpointLane) {
  ckpt::PfsModel pfs(pfs_config());
  // Book the checkpoint lane far into the future...
  pfs.reserve(1'000'000, 0, 50'000);
  // ...a node restarting *now* must not wait behind that booking.
  const ckpt::PfsGrant r = pfs.read(2000, 100);
  EXPECT_EQ(r.start, 100);
  EXPECT_EQ(r.end, 2200);
  // Reads do queue behind other reads.
  const ckpt::PfsGrant r2 = pfs.read(2000, 100);
  EXPECT_EQ(r2.start, 2200);
  EXPECT_EQ(pfs.stats().reads, 2u);
  EXPECT_EQ(pfs.stats().bytes_read, 4000u);
}

// --- fault campaigns --------------------------------------------------------

fault::CampaignConfig campaign_config() {
  fault::CampaignConfig config;
  config.nodes = 200;
  config.node_mtbf = 2 * 3600 * kSecond;  // 2h per node
  config.horizon = 4 * 3600 * kSecond;    // 4h of uptime
  return config;
}

TEST(CampaignTest, DeterministicPerSeedAndSorted) {
  const fault::CampaignConfig config = campaign_config();
  const auto a = fault::generate_campaign(config, 42);
  const auto b = fault::generate_campaign(config, 42);
  const auto c = fault::generate_campaign(config, 43);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].node, b[i].node);
  }
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end(),
                             [](const auto& x, const auto& y) {
                               if (x.at != y.at) return x.at < y.at;
                               return x.node < y.node;
                             }));
  // A different seed reshuffles the stream.
  bool differs = a.size() != c.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a[i].at != c[i].at || a[i].node != c[i].node;
  }
  EXPECT_TRUE(differs);
}

TEST(CampaignTest, CountTracksTheExpectedPoissonMean) {
  // 200 nodes x 4h / 2h MTBF = 400 expected failures; a Poisson(400) draw
  // lands within 5 sigma (+-100) essentially always.
  const fault::CampaignConfig config = campaign_config();
  const double expected = fault::expected_failures(config);
  EXPECT_DOUBLE_EQ(expected, 400.0);
  const auto failures = fault::generate_campaign(config, 7);
  EXPECT_GT(failures.size(), 300u);
  EXPECT_LT(failures.size(), 500u);
  for (const auto& f : failures) {
    EXPECT_GE(f.at, config.start);
    EXPECT_LT(f.at, config.horizon);
    EXPECT_GE(f.node, 0);
    EXPECT_LT(f.node, config.nodes);
  }
}

TEST(CampaignTest, NodeStreamsAreIndependentOfClusterSize) {
  // Node k's failures are drawn from its own substream: growing the cluster
  // must not perturb the failures of the nodes already there.
  fault::CampaignConfig small = campaign_config();
  small.nodes = 8;
  fault::CampaignConfig big = campaign_config();
  big.nodes = 64;
  const auto a = fault::generate_campaign(small, 11);
  const auto b = fault::generate_campaign(big, 11);
  std::vector<fault::NodeFailure> b_low;
  for (const auto& f : b) {
    if (f.node < small.nodes) b_low.push_back(f);
  }
  ASSERT_EQ(a.size(), b_low.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b_low[i].at);
    EXPECT_EQ(a[i].node, b_low[i].node);
  }
}

TEST(CampaignTest, RejectsNonsenseAndDisablesCleanly) {
  fault::CampaignConfig config = campaign_config();
  config.nodes = 0;
  EXPECT_THROW(fault::generate_campaign(config, 1), std::invalid_argument);
  config = campaign_config();
  config.start = 100 * kSecond;
  config.horizon = 50 * kSecond;  // precedes start
  EXPECT_THROW(fault::generate_campaign(config, 1), std::invalid_argument);
  config = campaign_config();
  config.node_mtbf = 0;  // disabled
  EXPECT_FALSE(config.enabled());
  EXPECT_TRUE(fault::generate_campaign(config, 1).empty());
  EXPECT_DOUBLE_EQ(fault::expected_failures(config), 0.0);
}

TEST(CampaignTest, RankPlanFoldsNodesOntoRanksAndValidates) {
  fault::CampaignConfig config = campaign_config();
  config.nodes = 40;
  const int nranks = 8;
  const fault::FaultPlan plan =
      fault::campaign_rank_plan(config, nranks, 3);
  const auto failures = fault::generate_campaign(config, 3);
  ASSERT_EQ(plan.actions().size(), failures.size());
  for (std::size_t i = 0; i < failures.size(); ++i) {
    EXPECT_EQ(plan.actions()[i].kind, fault::FaultActionKind::kRankKill);
    EXPECT_EQ(plan.actions()[i].rank, failures[i].node % nranks);
  }
  fault::FaultTargets targets;
  targets.ranks = nranks;
  EXPECT_NO_THROW(plan.validate(targets));
  EXPECT_THROW(fault::campaign_rank_plan(config, 0, 3),
               std::invalid_argument);
}

}  // namespace
}  // namespace hpcs
