// CFS load-balancer tests: newidle pulls, sibling spreading (prefer-sibling
// rule + active balancing via migration/N), weighted imbalance, inhibition.
#include <gtest/gtest.h>

#include <memory>

#include "kernel/behaviors.h"
#include "kernel/cfs.h"
#include "kernel/kernel.h"
#include "kernel/load_balancer.h"
#include "sim/engine.h"

namespace hpcs::kernel {
namespace {

class BalancerTest : public ::testing::Test {
 protected:
  BalancerTest() : kernel_(engine_, KernelConfig{}) { kernel_.boot(); }

  Tid spawn_compute(std::string name, SimDuration work,
                    CpuMask affinity = cpu_mask_all()) {
    SpawnSpec spec;
    spec.name = std::move(name);
    spec.affinity = affinity;
    spec.behavior = std::make_unique<ScriptBehavior>(
        std::vector<Action>{Action::compute(work)});
    return kernel_.spawn(std::move(spec));
  }

  sim::Engine engine_;
  Kernel kernel_;
};

TEST_F(BalancerTest, NewidlePullBalancesQueuedWork) {
  // Two long tasks forced onto CPU 0; when another CPU's work drains it
  // pulls the queued one.
  const Tid a = spawn_compute("a", milliseconds(100), cpu_mask_of(0));
  const Tid b = spawn_compute("b", milliseconds(100), cpu_mask_of(0));
  engine_.run_until(milliseconds(1));
  ASSERT_EQ(kernel_.nr_running(0), 2);
  // Free the affinity: the next newidle or periodic balance spreads them.
  ASSERT_TRUE(kernel_.sys_setaffinity(a, cpu_mask_all()));
  ASSERT_TRUE(kernel_.sys_setaffinity(b, cpu_mask_all()));
  // A brief task elsewhere whose exit triggers a newidle pull.
  spawn_compute("brief", microseconds(200), cpu_mask_of(1));
  engine_.run_until(milliseconds(30));
  EXPECT_NE(kernel_.task(a).cpu, kernel_.task(b).cpu);
}

TEST_F(BalancerTest, SiblingSpreadSeparatesCoResidentTasks) {
  // Two spinners stuck on one core's two hardware threads (CPUs 0 and 1)
  // while the rest of the machine idles; the prefer-sibling rule plus
  // active balancing must spread them to different cores.
  const Tid a = spawn_compute("a", seconds(2), cpu_mask_of(0));
  const Tid b = spawn_compute("b", seconds(2), cpu_mask_of(1));
  engine_.run_until(milliseconds(1));
  ASSERT_EQ(kernel_.topology().core_of(kernel_.task(a).cpu),
            kernel_.topology().core_of(kernel_.task(b).cpu));
  ASSERT_TRUE(kernel_.sys_setaffinity(a, cpu_mask_all()));
  ASSERT_TRUE(kernel_.sys_setaffinity(b, cpu_mask_all()));
  engine_.run_until(milliseconds(400));
  EXPECT_NE(kernel_.topology().core_of(kernel_.task(a).cpu),
            kernel_.topology().core_of(kernel_.task(b).cpu));
  // Separation of two *running* tasks requires the migration kthread.
  EXPECT_GE(kernel_.counters().active_balances, 1u);
}

TEST_F(BalancerTest, BalancedLoadStaysPut) {
  // One spinner per CPU: perfectly balanced, so no migrations beyond the
  // initial fork placements.
  std::vector<Tid> tids;
  for (int i = 0; i < 8; ++i) {
    tids.push_back(spawn_compute("t" + std::to_string(i), milliseconds(300)));
  }
  engine_.run_until(milliseconds(5));
  const auto placement_migrations = kernel_.counters().cpu_migrations;
  engine_.run_until(milliseconds(250));
  EXPECT_EQ(kernel_.counters().cpu_migrations, placement_migrations);
}

TEST_F(BalancerTest, InhibitorSuppressesBalancing) {
  kernel_.set_balance_inhibitor([] { return true; });
  const Tid a = spawn_compute("a", milliseconds(100), cpu_mask_of(0));
  const Tid b = spawn_compute("b", milliseconds(100), cpu_mask_of(0));
  engine_.run_until(milliseconds(1));
  ASSERT_TRUE(kernel_.sys_setaffinity(a, cpu_mask_all()));
  ASSERT_TRUE(kernel_.sys_setaffinity(b, cpu_mask_all()));
  engine_.run_until(milliseconds(100));
  // Both still share CPU 0: nothing pulled them apart.
  EXPECT_EQ(kernel_.task(a).cpu, 0);
  EXPECT_EQ(kernel_.task(b).cpu, 0);
}

TEST_F(BalancerTest, AffinityBlocksPull) {
  spawn_compute("a", milliseconds(100), cpu_mask_of(0));
  spawn_compute("b", milliseconds(100), cpu_mask_of(0));  // stays pinned
  spawn_compute("brief", microseconds(200), cpu_mask_of(1));
  engine_.run_until(milliseconds(50));
  // Pinned tasks never moved despite the imbalance.
  EXPECT_EQ(kernel_.nr_running(0), 2);
}

TEST_F(BalancerTest, IlbBalancesForSleepingIdleCpus) {
  // With NOHZ on, a fully idle CPU stops ticking; the elected idle balancer
  // must still notice an overloaded core and fix it.  Here: three runnable
  // tasks end up sharing core 0 while core 1+ sleeps.
  const Tid a = spawn_compute("a", milliseconds(500), cpu_mask_of(0));
  const Tid b = spawn_compute("b", milliseconds(500), cpu_mask_of(0));
  const Tid c = spawn_compute("c", milliseconds(500), cpu_mask_of(1));
  engine_.run_until(milliseconds(1));
  for (Tid t : {a, b, c}) {
    ASSERT_TRUE(kernel_.sys_setaffinity(t, cpu_mask_all()));
  }
  engine_.run_until(milliseconds(300));
  // The three tasks occupy three different cores now.
  const int core_a = kernel_.topology().core_of(kernel_.task(a).cpu);
  const int core_b = kernel_.topology().core_of(kernel_.task(b).cpu);
  const int core_c = kernel_.topology().core_of(kernel_.task(c).cpu);
  EXPECT_NE(core_a, core_b);
  EXPECT_NE(core_a, core_c);
  EXPECT_NE(core_b, core_c);
}

TEST_F(BalancerTest, QuietDomainBackoffReachesMaxInterval) {
  // A single pinned spinner leaves every domain level balanced, so the
  // per-level balance interval must double each quiet pass all the way to
  // the level's max_interval (it used to stall at 2x base_interval).
  spawn_compute("solo", seconds(2), cpu_mask_of(0));
  engine_.run_until(seconds(1));
  const LoadBalancer& lb = kernel_.cfs().balancer();
  for (int lvl = 0; lvl < kernel_.domains().num_levels(); ++lvl) {
    const DomainLevel& dl = kernel_.domains().level(lvl);
    EXPECT_EQ(lb.current_interval(0, lvl), dl.max_interval)
        << "level " << lvl << " backoff stalled below max_interval";
    EXPECT_GT(dl.max_interval, 2 * dl.base_interval)
        << "level " << lvl
        << " max_interval too small for the test to be meaningful";
  }
}

TEST_F(BalancerTest, MigrationsAreCountedPerMove) {
  const Tid a = spawn_compute("a", milliseconds(50), cpu_mask_of(0));
  engine_.run_until(milliseconds(1));
  const auto before = kernel_.counters().cpu_migrations;
  const auto task_before = kernel_.task(a).acct.migrations;
  ASSERT_TRUE(kernel_.sys_setaffinity(a, cpu_mask_of(5)));
  engine_.run_until(milliseconds(3));
  EXPECT_EQ(kernel_.counters().cpu_migrations, before + 1);
  EXPECT_EQ(kernel_.task(a).acct.migrations, task_before + 1);
}

}  // namespace
}  // namespace hpcs::kernel
