// Tests for the hardware model: topology, cache warmth, NUMA homing, SMT.
#include <gtest/gtest.h>

#include <cmath>

#include "hw/cache_model.h"
#include "hw/machine.h"
#include "hw/numa_model.h"
#include "hw/topology.h"

namespace hpcs::hw {
namespace {

// --- topology ----------------------------------------------------------------

TEST(TopologyTest, Power6Js22Shape) {
  const Topology topo = Topology::power6_js22();
  EXPECT_EQ(topo.num_cpus(), 8);
  EXPECT_EQ(topo.num_cores(), 4);
  EXPECT_EQ(topo.num_chips(), 2);
  EXPECT_EQ(topo.threads_per_core(), 2);
  EXPECT_FALSE(topo.config().chip_shared_cache);
}

TEST(TopologyTest, IndexMapping) {
  const Topology topo = Topology::power6_js22();
  // CPUs 0..7: chip = cpu/4, core = cpu/2, thread = cpu%2.
  for (CpuId cpu = 0; cpu < 8; ++cpu) {
    EXPECT_EQ(topo.chip_of(cpu), cpu / 4);
    EXPECT_EQ(topo.core_of(cpu), cpu / 2);
    EXPECT_EQ(topo.thread_of(cpu), cpu % 2);
  }
}

TEST(TopologyTest, Siblings) {
  const Topology topo = Topology::power6_js22();
  EXPECT_EQ(topo.smt_siblings(0), std::vector<CpuId>{1});
  EXPECT_EQ(topo.smt_siblings(5), std::vector<CpuId>{4});
  EXPECT_EQ(topo.cpus_of_core(1), (std::vector<CpuId>{2, 3}));
  EXPECT_EQ(topo.cpus_of_chip(1), (std::vector<CpuId>{4, 5, 6, 7}));
}

TEST(TopologyTest, ShareLevels) {
  const Topology topo = Topology::power6_js22();
  EXPECT_EQ(topo.share_level(3, 3), ShareLevel::kSameCpu);
  EXPECT_EQ(topo.share_level(2, 3), ShareLevel::kCore);
  EXPECT_EQ(topo.share_level(0, 3), ShareLevel::kChip);
  EXPECT_EQ(topo.share_level(0, 7), ShareLevel::kSystem);
}

TEST(TopologyTest, CacheSharingOnJs22) {
  const Topology topo = Topology::power6_js22();
  EXPECT_TRUE(topo.caches_shared(0, 0));
  EXPECT_TRUE(topo.caches_shared(0, 1));   // SMT siblings share L1/L2
  EXPECT_FALSE(topo.caches_shared(0, 2));  // same chip, no shared cache
  EXPECT_FALSE(topo.caches_shared(0, 4));  // cross chip
}

TEST(TopologyTest, ChipSharedCacheOption) {
  Topology topo(TopologyConfig{.chips = 2,
                               .cores_per_chip = 2,
                               .threads_per_core = 2,
                               .chip_shared_cache = true});
  EXPECT_TRUE(topo.caches_shared(0, 2));   // same chip now shares L3
  EXPECT_FALSE(topo.caches_shared(0, 4));  // cross chip still does not
}

TEST(TopologyTest, RejectsBadConfig) {
  EXPECT_THROW(Topology(TopologyConfig{.chips = 0}), std::invalid_argument);
  EXPECT_THROW(Topology(TopologyConfig{.chips = 1, .cores_per_chip = -1}),
               std::invalid_argument);
}

TEST(TopologyTest, OutOfRangeCpuThrows) {
  const Topology topo = Topology::power6_js22();
  EXPECT_THROW(topo.chip_of(8), std::out_of_range);
  EXPECT_THROW(topo.core_of(-1), std::out_of_range);
}

struct TopoParam {
  int chips, cores, threads;
};

class TopologySweep : public ::testing::TestWithParam<TopoParam> {};

TEST_P(TopologySweep, PartitionInvariants) {
  const auto p = GetParam();
  Topology topo(TopologyConfig{p.chips, p.cores, p.threads, false});
  EXPECT_EQ(topo.num_cpus(), p.chips * p.cores * p.threads);
  // Every CPU appears exactly once in its core and chip lists.
  int seen = 0;
  for (int core = 0; core < topo.num_cores(); ++core) {
    for (CpuId cpu : topo.cpus_of_core(core)) {
      EXPECT_EQ(topo.core_of(cpu), core);
      ++seen;
    }
  }
  EXPECT_EQ(seen, topo.num_cpus());
  for (int chip = 0; chip < topo.num_chips(); ++chip) {
    EXPECT_EQ(static_cast<int>(topo.cpus_of_chip(chip).size()),
              p.cores * p.threads);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, TopologySweep,
                         ::testing::Values(TopoParam{1, 1, 1},
                                           TopoParam{1, 4, 1},
                                           TopoParam{2, 2, 2},
                                           TopoParam{4, 4, 2},
                                           TopoParam{2, 8, 4},
                                           TopoParam{1, 2, 8}));

// --- cache model -------------------------------------------------------------

class CacheModelTest : public ::testing::Test {
 protected:
  Topology topo_ = Topology::power6_js22();
  CacheParams params_;
};

TEST_F(CacheModelTest, WarmsWhileRunning) {
  CacheModel cache(topo_, params_);
  cache.on_task_created(1);
  cache.note_placed(1, 0);
  const double w0 = cache.warmth(1, 0);
  cache.note_ran(1, 0, params_.warm_tau);
  const double w1 = cache.warmth(1, 0);
  cache.note_ran(1, 0, 10 * params_.warm_tau);
  const double w2 = cache.warmth(1, 0);
  EXPECT_LT(w0, w1);
  EXPECT_LT(w1, w2);
  EXPECT_GT(w2, 0.99);
  EXPECT_LE(w2, 1.0);
}

TEST_F(CacheModelTest, SpeedFactorBounds) {
  CacheModel cache(topo_, params_);
  cache.on_task_created(1);
  cache.note_placed(1, 0);
  const double cold = cache.speed_factor(1, 0);
  EXPECT_NEAR(cold, 1.0 / (1.0 + params_.miss_penalty *
                                     (1.0 - params_.initial_warmth)),
              1e-12);
  cache.note_ran(1, 0, 20 * params_.warm_tau);
  EXPECT_GT(cache.speed_factor(1, 0), 0.99);
  EXPECT_LE(cache.speed_factor(1, 0), 1.0);
}

TEST_F(CacheModelTest, CoRunnerEvictsWhileDescheduled) {
  CacheModel cache(topo_, params_);
  cache.on_task_created(1);
  cache.on_task_created(2);
  cache.note_placed(1, 0);
  cache.note_ran(1, 0, 20 * params_.warm_tau);  // task 1 fully warm
  const double warm = cache.warmth(1, 0);
  // Task 2 runs on the same hardware thread (task 1 preempted).
  cache.note_placed(2, 0);
  cache.note_ran(2, 0, params_.evict_tau);
  const double after = cache.warmth(1, 0);
  EXPECT_LT(after, warm);
  EXPECT_NEAR(after, warm * std::exp(-1.0), 0.02);
}

TEST_F(CacheModelTest, SiblingThreadDoesNotEvict) {
  // Concurrent SMT execution is covered by the SMT throughput factor, not
  // by warmth decay.
  CacheModel cache(topo_, params_);
  cache.on_task_created(1);
  cache.on_task_created(2);
  cache.note_placed(1, 0);
  cache.note_ran(1, 0, 20 * params_.warm_tau);
  const double warm = cache.warmth(1, 0);
  cache.note_placed(2, 1);  // SMT sibling of cpu 0
  cache.note_ran(2, 1, 10 * params_.evict_tau);
  EXPECT_DOUBLE_EQ(cache.warmth(1, 0), warm);
}

TEST_F(CacheModelTest, SmtMigrationKeepsWarmth) {
  CacheModel cache(topo_, params_);
  cache.on_task_created(1);
  cache.note_placed(1, 0);
  cache.note_ran(1, 0, 20 * params_.warm_tau);
  const double warm = cache.warmth(1, 0);
  cache.note_placed(1, 1);  // to the SMT sibling: shared L1/L2
  EXPECT_NEAR(cache.warmth(1, 1), warm, 1e-12);
}

TEST_F(CacheModelTest, CrossCoreMigrationGoesCold) {
  CacheModel cache(topo_, params_);
  cache.on_task_created(1);
  cache.note_placed(1, 0);
  cache.note_ran(1, 0, 20 * params_.warm_tau);
  cache.note_placed(1, 2);  // other core, no shared cache on js22
  EXPECT_DOUBLE_EQ(cache.warmth(1, 2), params_.cold_warmth);
}

TEST_F(CacheModelTest, UnknownTaskThrows) {
  CacheModel cache(topo_, params_);
  EXPECT_THROW(cache.note_placed(99, 0), std::logic_error);
  EXPECT_THROW(cache.warmth(99, 0), std::logic_error);
}

TEST_F(CacheModelTest, ExitRemovesTask) {
  CacheModel cache(topo_, params_);
  cache.on_task_created(1);
  cache.on_task_exit(1);
  EXPECT_THROW(cache.note_placed(1, 0), std::logic_error);
}

// --- numa model --------------------------------------------------------------

class NumaModelTest : public ::testing::Test {
 protected:
  Topology topo_ = Topology::power6_js22();
  NumaParams params_;
};

TEST_F(NumaModelTest, HomeUnsetUntilFirstTouchWindow) {
  NumaModel numa(topo_, params_);
  numa.on_task_created(1);
  EXPECT_EQ(numa.home_chip(1), -1);
  EXPECT_DOUBLE_EQ(numa.speed_factor(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(numa.speed_factor(1, 7), 1.0);
  numa.note_ran(1, 0, params_.first_touch_window / 2);
  EXPECT_EQ(numa.home_chip(1), -1);
}

TEST_F(NumaModelTest, HomesOnDominantChip) {
  NumaModel numa(topo_, params_);
  numa.on_task_created(1);
  numa.note_ran(1, 0, params_.first_touch_window / 4);      // chip 0
  numa.note_ran(1, 5, params_.first_touch_window);          // chip 1 dominates
  EXPECT_EQ(numa.home_chip(1), 1);
}

TEST_F(NumaModelTest, RemotePenaltyApplied) {
  NumaModel numa(topo_, params_);
  numa.on_task_created(1);
  numa.note_ran(1, 0, 2 * params_.first_touch_window);
  EXPECT_EQ(numa.home_chip(1), 0);
  EXPECT_DOUBLE_EQ(numa.speed_factor(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(numa.speed_factor(1, 3), 1.0);  // same chip
  EXPECT_DOUBLE_EQ(numa.speed_factor(1, 4), 1.0 - params_.remote_penalty);
  EXPECT_DOUBLE_EQ(numa.speed_factor(1, 7), 1.0 - params_.remote_penalty);
}

TEST_F(NumaModelTest, HomeIsSticky) {
  NumaModel numa(topo_, params_);
  numa.on_task_created(1);
  numa.note_ran(1, 0, 2 * params_.first_touch_window);
  numa.note_ran(1, 7, 100 * params_.first_touch_window);  // long remote stint
  EXPECT_EQ(numa.home_chip(1), 0);  // pages do not follow the task
}

TEST_F(NumaModelTest, ExitRemovesTask) {
  NumaModel numa(topo_, params_);
  numa.on_task_created(1);
  numa.on_task_exit(1);
  EXPECT_THROW(numa.note_ran(1, 0, 1), std::logic_error);
  EXPECT_EQ(numa.home_chip(1), -1);  // queries degrade gracefully
}

// --- machine -----------------------------------------------------------------

TEST(MachineTest, SmtFactor) {
  Machine machine(MachineConfig::power6_js22());
  EXPECT_DOUBLE_EQ(machine.smt_factor(0), 1.0);
  EXPECT_DOUBLE_EQ(machine.smt_factor(1), 1.0);
  EXPECT_DOUBLE_EQ(machine.smt_factor(2), machine.config().smt_slowdown);
}

TEST(MachineTest, SmtFactorBeyondTwoContexts) {
  // Regression: >2 busy contexts per core used to clamp to the 2-way value.
  // The geometric model applies the per-thread slowdown once per doubling.
  Machine machine(MachineConfig::power6_js22());
  const double s = machine.config().smt_slowdown;
  EXPECT_DOUBLE_EQ(machine.smt_factor(4), s * s);
  EXPECT_DOUBLE_EQ(machine.smt_factor(8), s * s * s);
  // Strictly monotone in the contention, never below zero.
  EXPECT_LT(machine.smt_factor(3), machine.smt_factor(2));
  EXPECT_LT(machine.smt_factor(4), machine.smt_factor(3));
  EXPECT_GT(machine.smt_factor(8), 0.0);
}

TEST(MachineTest, ModernPresetShape) {
  const MachineConfig config = MachineConfig::modern_dual_socket();
  const Topology topo(config.topology);
  EXPECT_EQ(topo.num_cpus(), 64);
  EXPECT_EQ(topo.num_cores(), 32);
  EXPECT_TRUE(config.topology.chip_shared_cache);
  // Same-chip migrations keep cache contents on this machine.
  EXPECT_TRUE(topo.caches_shared(0, 30));
  EXPECT_FALSE(topo.caches_shared(0, 33));
}

TEST(MachineTest, Power6Defaults) {
  const MachineConfig config = MachineConfig::power6_js22();
  EXPECT_EQ(config.topology.chips, 2);
  EXPECT_EQ(config.topology.cores_per_chip, 2);
  EXPECT_EQ(config.topology.threads_per_core, 2);
  EXPECT_FALSE(config.topology.chip_shared_cache);
  EXPECT_EQ(config.tick_period, kMillisecond);
}

}  // namespace
}  // namespace hpcs::hw
