// Tests for the workload layer: daemons, NAS models, noise injection.
#include <gtest/gtest.h>

#include "kernel/kernel.h"
#include "sim/engine.h"
#include <algorithm>

#include "workloads/daemons.h"
#include "workloads/ftq.h"
#include "workloads/nas.h"
#include "workloads/noise_injection.h"

namespace hpcs::workloads {
namespace {

using kernel::Kernel;
using kernel::KernelConfig;
using kernel::TaskState;
using kernel::Tid;

class WorkloadsTest : public ::testing::Test {
 protected:
  WorkloadsTest() : kernel_(engine_, KernelConfig{}) { kernel_.boot(); }

  sim::Engine engine_;
  Kernel kernel_;
};

// --- daemons -----------------------------------------------------------------

TEST_F(WorkloadsTest, StandardPopulationSpawns) {
  const NoiseConfig config;
  const auto specs = standard_node_daemon_specs(kernel_, config);
  const auto tids = spawn_standard_node_daemons(kernel_, config);
  EXPECT_EQ(specs.size(), tids.size());
  // Per-CPU kthreads: 2 per CPU = 16, plus the floating daemons.
  EXPECT_GE(tids.size(), 16u + 5u);
}

TEST_F(WorkloadsTest, PopulationTogglesWork) {
  NoiseConfig no_kthreads;
  no_kthreads.per_cpu_kthreads = false;
  NoiseConfig no_long;
  no_long.long_daemons = false;
  const auto all = standard_node_daemon_specs(kernel_, NoiseConfig{});
  const auto without_kthreads =
      standard_node_daemon_specs(kernel_, no_kthreads);
  const auto without_long = standard_node_daemon_specs(kernel_, no_long);
  EXPECT_LT(without_kthreads.size(), all.size());
  EXPECT_LT(without_long.size(), all.size());
}

TEST_F(WorkloadsTest, IntensityScalesBursts) {
  NoiseConfig loud;
  loud.intensity = 10.0;
  const auto base = standard_node_daemon_specs(kernel_, NoiseConfig{});
  const auto scaled = standard_node_daemon_specs(kernel_, loud);
  ASSERT_EQ(base.size(), scaled.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(scaled[i].busy_typical, base[i].busy_typical * 10);
    EXPECT_EQ(scaled[i].period_mean, base[i].period_mean);
  }
}

TEST_F(WorkloadsTest, DaemonAlternatesSleepAndBurst) {
  DaemonSpec spec;
  spec.name = "test-daemon";
  spec.period_mean = milliseconds(5);
  spec.busy_typical = microseconds(500);
  spec.busy_sigma = 0.1;
  spec.random_phase = false;
  const Tid tid = spawn_daemon(kernel_, spec, util::Rng(1));
  engine_.run_until(milliseconds(100));
  const kernel::Task& t = kernel_.task(tid);
  // Over 100 ms with ~5 ms periods the daemon burst ~20 times for ~0.5 ms.
  EXPECT_GT(t.acct.runtime, milliseconds(2));
  EXPECT_LT(t.acct.runtime, milliseconds(40));
  EXPECT_NE(t.state, TaskState::kExited);  // daemons run forever
}

TEST_F(WorkloadsTest, PinnedDaemonStaysOnCpu) {
  DaemonSpec spec;
  spec.name = "pinned";
  spec.period_mean = milliseconds(2);
  spec.busy_typical = microseconds(100);
  spec.pinned_cpu = 3;
  const Tid tid = spawn_daemon(kernel_, spec, util::Rng(2));
  engine_.run_until(milliseconds(50));
  EXPECT_EQ(kernel_.task(tid).cpu, 3);
  EXPECT_EQ(kernel_.task(tid).affinity, kernel::cpu_mask_of(3));
}

// --- nas ---------------------------------------------------------------------

TEST(NasTest, InstanceNames) {
  EXPECT_EQ(nas_instance_name({NasBenchmark::kEP, NasClass::kA, 8}), "ep.A.8");
  EXPECT_EQ(nas_instance_name({NasBenchmark::kLU, NasClass::kB, 4}), "lu.B.4");
}

TEST(NasTest, PaperSuiteHasTwelveConfigs) {
  const auto suite = nas_paper_suite();
  EXPECT_EQ(suite.size(), 12u);
  for (const auto& inst : suite) EXPECT_EQ(inst.nranks, 8);
}

TEST(NasTest, ReferenceSecondsMatchTableII) {
  EXPECT_DOUBLE_EQ(nas_reference_seconds(NasBenchmark::kEP, NasClass::kA),
                   8.54);
  EXPECT_DOUBLE_EQ(nas_reference_seconds(NasBenchmark::kLU, NasClass::kB),
                   71.81);
  EXPECT_DOUBLE_EQ(nas_reference_seconds(NasBenchmark::kMG, NasClass::kA),
                   0.96);
}

TEST(NasTest, ClassBHasMoreWorkThanClassA) {
  for (NasBenchmark bench :
       {NasBenchmark::kCG, NasBenchmark::kEP, NasBenchmark::kFT,
        NasBenchmark::kIS, NasBenchmark::kLU, NasBenchmark::kMG}) {
    const auto a = build_nas_program({bench, NasClass::kA, 8});
    const auto b = build_nas_program({bench, NasClass::kB, 8});
    EXPECT_GT(b.total_work(), a.total_work());
  }
}

TEST(NasTest, ProgramsValidate) {
  for (const auto& inst : nas_paper_suite()) {
    EXPECT_NO_THROW(build_nas_program(inst).validate());
  }
}

TEST(NasTest, EpHasFewestSyncPoints) {
  const auto ep = build_nas_program({NasBenchmark::kEP, NasClass::kA, 8});
  for (NasBenchmark bench : {NasBenchmark::kCG, NasBenchmark::kLU}) {
    const auto other = build_nas_program({bench, NasClass::kA, 8});
    EXPECT_LT(ep.sync_points(), other.sync_points());
  }
}

TEST(NasTest, WorkScalesInverselyWithRankCount) {
  const auto r8 = build_nas_program({NasBenchmark::kEP, NasClass::kA, 8});
  const auto r4 = build_nas_program({NasBenchmark::kEP, NasClass::kA, 4});
  EXPECT_GT(r4.total_work(), r8.total_work());
  EXPECT_NEAR(static_cast<double>(r4.total_work()) /
                  static_cast<double>(r8.total_work()),
              2.0, 0.1);
}

TEST(NasTest, CalibrationArithmetic) {
  // Work per rank roughly equals target * SMT speed (collectives deducted).
  const auto p = build_nas_program({NasBenchmark::kEP, NasClass::kA, 8});
  const double expect = 8.54e9 * kCalibrationSmtSpeed;
  EXPECT_NEAR(static_cast<double>(p.total_work()), expect, expect * 0.02);
}

TEST(NasTest, RejectsNonPositiveRanks) {
  EXPECT_THROW(build_nas_program({NasBenchmark::kEP, NasClass::kA, 0}),
               std::invalid_argument);
}

// --- noise injection ---------------------------------------------------------

TEST(InjectionTest, BudgetArithmetic) {
  InjectionConfig config;
  config.frequency_hz = 100.0;
  config.duration = 100 * kMicrosecond;
  EXPECT_NEAR(injection_budget(config), 0.01, 1e-12);
}

TEST_F(WorkloadsTest, InjectorsSpawnPerCpu) {
  InjectionConfig config;
  const auto tids = inject_noise(kernel_, config);
  EXPECT_EQ(tids.size(), 8u);
  for (std::size_t i = 0; i < tids.size(); ++i) {
    EXPECT_EQ(kernel_.task(tids[i]).policy, kernel::Policy::kFifo);
    EXPECT_EQ(kernel_.task(tids[i]).rt_prio, 98);
  }
}

TEST_F(WorkloadsTest, SingleCpuInjection) {
  InjectionConfig config;
  config.all_cpus = false;
  config.cpu = 5;
  const auto tids = inject_noise(kernel_, config);
  ASSERT_EQ(tids.size(), 1u);
  EXPECT_EQ(kernel_.task(tids[0]).affinity, kernel::cpu_mask_of(5));
}

TEST_F(WorkloadsTest, InjectionConsumesConfiguredBudget) {
  InjectionConfig config;
  config.frequency_hz = 1000.0;
  config.duration = 50 * kMicrosecond;  // 5% budget
  config.all_cpus = false;
  config.cpu = 0;
  const auto tids = inject_noise(kernel_, config);
  engine_.run_until(seconds(2));
  const double runtime = to_seconds(kernel_.task(tids[0]).acct.runtime);
  EXPECT_NEAR(runtime / 2.0, injection_budget(config), 0.01);
}

// --- ftq ---------------------------------------------------------------------

TEST_F(WorkloadsTest, FtqSamplesCleanCpu) {
  FtqConfig config;
  config.duration = 500 * kMillisecond;
  config.cpu = 4;
  FtqSampler sampler(kernel_, config);
  engine_.run_until(seconds(2));
  EXPECT_TRUE(sampler.done());
  const FtqProfile p = sampler.profile();
  EXPECT_GT(p.total_quanta, 400);
  EXPECT_GT(p.max_units, 50.0);  // ~97 units of 10us fit a 1ms quantum
  // A silent machine: almost no disturbance beyond binning jitter.
  EXPECT_LT(p.noise_pct, 2.5);
  EXPECT_LT(p.worst_gap_pct, 10.0);
}

TEST_F(WorkloadsTest, FtqSeesInjectedNoise) {
  InjectionConfig inj;
  inj.frequency_hz = 50.0;
  inj.duration = 200 * kMicrosecond;  // 1% budget, chunky events
  inj.all_cpus = false;
  inj.cpu = 4;
  inject_noise(kernel_, inj);
  FtqConfig config;
  config.duration = 500 * kMillisecond;
  config.cpu = 4;
  FtqSampler sampler(kernel_, config);
  engine_.run_until(seconds(2));
  ASSERT_TRUE(sampler.done());
  const FtqProfile p = sampler.profile();
  // 50 events/s over 0.5 s = ~25 disturbed quanta (one per event).
  EXPECT_GT(p.disturbed_quanta, 10);
  EXPECT_GT(p.worst_gap_pct, 10.0);
}

TEST_F(WorkloadsTest, FtqSparklineMatchesProfile) {
  FtqConfig config;
  config.duration = 200 * kMillisecond;
  config.cpu = 6;
  FtqSampler sampler(kernel_, config);
  engine_.run_until(seconds(1));
  const std::string strip = sampler.sparkline();
  EXPECT_FALSE(strip.empty());
  // A clean CPU yields an (almost) all-clean strip.
  const auto clean = static_cast<double>(
      std::count(strip.begin(), strip.end(), '#'));
  EXPECT_GT(clean / static_cast<double>(strip.size()), 0.9);
}

}  // namespace
}  // namespace hpcs::workloads
