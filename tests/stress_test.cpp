// Randomised stress/property tests: the engine against a reference model,
// and the kernel's global accounting invariants under random task soups.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <queue>
#include <vector>

#include "core/hpl.h"
#include "kernel/behaviors.h"
#include "kernel/kernel.h"
#include "sim/engine.h"
#include "util/rng.h"

namespace hpcs {
namespace {

// --- engine vs reference model -----------------------------------------------

struct EngineSweepParam {
  std::uint64_t seed;
  int ops;
};

class EngineStress : public ::testing::TestWithParam<EngineSweepParam> {};

// Schedule/cancel random events and verify dispatch order and completeness
// against a simple reference list.
TEST_P(EngineStress, MatchesReferenceDispatchOrder) {
  const auto param = GetParam();
  util::Rng rng(param.seed);
  sim::Engine engine;

  struct Ref {
    SimTime when;
    int token;
    bool cancelled = false;
    sim::EventId id = sim::kInvalidEventId;
  };
  std::vector<Ref> refs;
  std::vector<int> dispatched;

  for (int i = 0; i < param.ops; ++i) {
    const SimTime when = rng.uniform_u64(0, 10000);
    refs.push_back({when, i});
    Ref& ref = refs.back();
    ref.id = engine.schedule_at(when, [&dispatched, token = i] {
      dispatched.push_back(token);
    });
    // Occasionally cancel a random earlier event.
    if (rng.chance(0.25) && !refs.empty()) {
      auto& victim =
          refs[static_cast<std::size_t>(rng.uniform_u64(0, refs.size() - 1))];
      if (!victim.cancelled) {
        victim.cancelled = engine.cancel(victim.id);
      }
    }
  }
  engine.run();

  // Expected order: by (when, insertion order), cancelled excluded.
  std::vector<int> expected;
  std::vector<const Ref*> live;
  for (const Ref& r : refs) {
    if (!r.cancelled) live.push_back(&r);
  }
  std::stable_sort(live.begin(), live.end(), [](const Ref* a, const Ref* b) {
    if (a->when != b->when) return a->when < b->when;
    return a->token < b->token;
  });
  for (const Ref* r : live) expected.push_back(r->token);
  EXPECT_EQ(dispatched, expected);
}

INSTANTIATE_TEST_SUITE_P(Sweeps, EngineStress,
                         ::testing::Values(EngineSweepParam{1, 50},
                                           EngineSweepParam{2, 500},
                                           EngineSweepParam{3, 2000},
                                           EngineSweepParam{4, 200},
                                           EngineSweepParam{5, 1000}));

// --- kernel soup invariants --------------------------------------------------

struct SoupParam {
  std::uint64_t seed;
  int tasks;
  bool use_hpl;
};

class KernelSoup : public ::testing::TestWithParam<SoupParam> {};

// Spawn a random mix of policies/behaviours, run to completion, and check
// the global invariants: everything exits, runtime is conserved against
// busy time, and the class-priority rule held throughout.
TEST_P(KernelSoup, GlobalInvariantsHold) {
  const auto param = GetParam();
  util::Rng rng(param.seed);
  sim::Engine engine;
  kernel::Kernel kernel(engine, kernel::KernelConfig{});
  hpl::HpcClass* hpc = nullptr;
  if (param.use_hpl) hpc = &hpl::install(kernel);
  kernel.boot();

  bool priority_violated = false;
  kernel.add_trace_hook([&](const sim::TraceRecord& rec) {
    if (rec.point != sim::TracePoint::kSchedSwitch || hpc == nullptr) return;
    const kernel::Task* next = kernel.find_task(rec.tid);
    if (next != nullptr && next->policy == kernel::Policy::kNormal &&
        hpc->nr_runnable(rec.cpu) > 0) {
      priority_violated = true;
    }
  });

  std::vector<kernel::Tid> tids;
  for (int i = 0; i < param.tasks; ++i) {
    kernel::SpawnSpec spec;
    const double dice = rng.uniform();
    if (dice < 0.15) {
      spec.policy = kernel::Policy::kFifo;
      spec.rt_prio = static_cast<int>(rng.uniform_u64(1, 80));
    } else if (dice < 0.30 && param.use_hpl) {
      spec.policy = kernel::Policy::kHpc;
    } else if (dice < 0.40) {
      spec.policy = kernel::Policy::kBatch;
    } else {
      spec.policy = kernel::Policy::kNormal;
      spec.nice = static_cast<int>(rng.uniform_u64(0, 10)) - 5;
    }
    spec.name = "soup" + std::to_string(i);
    if (rng.chance(0.3)) {
      spec.affinity = kernel::cpu_mask_of(
          static_cast<int>(rng.uniform_u64(0, 7)));
    }
    std::vector<kernel::Action> actions;
    const int phases = static_cast<int>(rng.uniform_u64(1, 4));
    for (int ph = 0; ph < phases; ++ph) {
      actions.push_back(kernel::Action::compute(
          microseconds(rng.uniform_u64(100, 5000))));
      if (rng.chance(0.5)) {
        actions.push_back(
            kernel::Action::sleep(microseconds(rng.uniform_u64(100, 3000))));
      }
      if (rng.chance(0.2)) actions.push_back(kernel::Action::yield());
    }
    spec.behavior =
        std::make_unique<kernel::ScriptBehavior>(std::move(actions));
    tids.push_back(kernel.spawn(std::move(spec)));
    engine.run_until(engine.now() + microseconds(rng.uniform_u64(10, 500)));
  }
  engine.run_until(engine.now() + seconds(2));

  SimDuration total_runtime = 0;
  for (kernel::Tid tid : tids) {
    const kernel::Task& t = kernel.task(tid);
    EXPECT_EQ(t.state, kernel::TaskState::kExited) << t.name;
    total_runtime += t.acct.runtime;
  }
  // Conservation: task runtime can never exceed total busy CPU time.
  SimDuration busy = 0;
  for (hw::CpuId cpu = 0; cpu < 8; ++cpu) {
    busy += engine.now() - kernel.idle_time(cpu);
  }
  EXPECT_LE(total_runtime, busy);
  EXPECT_FALSE(priority_violated);
  // All CPUs drained back to idle.
  for (hw::CpuId cpu = 0; cpu < 8; ++cpu) {
    EXPECT_EQ(kernel.nr_running(cpu), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Soups, KernelSoup,
                         ::testing::Values(SoupParam{11, 10, false},
                                           SoupParam{12, 30, false},
                                           SoupParam{13, 60, false},
                                           SoupParam{14, 10, true},
                                           SoupParam{15, 30, true},
                                           SoupParam{16, 60, true},
                                           SoupParam{17, 100, true},
                                           SoupParam{18, 100, false}));

// Determinism property over the same soup.
TEST(KernelSoupDeterminism, IdenticalSeedIdenticalOutcome) {
  auto run = [](std::uint64_t seed) {
    util::Rng rng(seed);
    sim::Engine engine;
    kernel::Kernel kernel(engine, kernel::KernelConfig{});
    kernel.boot();
    for (int i = 0; i < 20; ++i) {
      kernel::SpawnSpec spec;
      spec.name = "d" + std::to_string(i);
      spec.behavior = std::make_unique<kernel::ScriptBehavior>(
          std::vector<kernel::Action>{
              kernel::Action::compute(microseconds(rng.uniform_u64(100, 3000))),
              kernel::Action::sleep(microseconds(rng.uniform_u64(100, 1000))),
              kernel::Action::compute(
                  microseconds(rng.uniform_u64(100, 3000)))});
      kernel.spawn(std::move(spec));
      engine.run_until(engine.now() + microseconds(rng.uniform_u64(10, 200)));
    }
    engine.run_until(engine.now() + seconds(1));
    return std::make_pair(kernel.counters().context_switches,
                          engine.dispatched());
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

}  // namespace
}  // namespace hpcs
