// Tests for the scheduling-domain hierarchy and the priority tables.
#include <gtest/gtest.h>

#include <algorithm>

#include "kernel/behaviors.h"
#include "kernel/kernel.h"
#include "kernel/prio.h"
#include "kernel/sched_domains.h"
#include "sim/engine.h"

namespace hpcs::kernel {
namespace {

TEST(SchedDomainsTest, Power6HasThreeLevels) {
  const hw::Topology topo = hw::Topology::power6_js22();
  const SchedDomains domains(topo);
  ASSERT_EQ(domains.num_levels(), 3);
  EXPECT_EQ(domains.level(0).kind, DomainKind::kSmt);
  EXPECT_EQ(domains.level(1).kind, DomainKind::kMc);
  EXPECT_EQ(domains.level(2).kind, DomainKind::kSystem);
}

TEST(SchedDomainsTest, IntervalsGrowUpTheHierarchy) {
  const hw::Topology topo = hw::Topology::power6_js22();
  const SchedDomains domains(topo);
  for (int lvl = 1; lvl < domains.num_levels(); ++lvl) {
    EXPECT_GT(domains.level(lvl).base_interval,
              domains.level(lvl - 1).base_interval);
    EXPECT_GE(domains.level(lvl).max_interval,
              domains.level(lvl).base_interval);
  }
}

TEST(SchedDomainsTest, SmtSpanIsTheCore) {
  const hw::Topology topo = hw::Topology::power6_js22();
  const SchedDomains domains(topo);
  for (hw::CpuId cpu = 0; cpu < topo.num_cpus(); ++cpu) {
    const auto span = domains.span(0, cpu);
    ASSERT_EQ(span.size(), 2u);
    EXPECT_EQ(topo.core_of(span[0]), topo.core_of(cpu));
    EXPECT_EQ(topo.core_of(span[1]), topo.core_of(cpu));
  }
}

TEST(SchedDomainsTest, McSpanIsTheChipWithCoreGroups) {
  const hw::Topology topo = hw::Topology::power6_js22();
  const SchedDomains domains(topo);
  const auto span = domains.span(1, 5);
  ASSERT_EQ(span.size(), 4u);
  for (hw::CpuId cpu : span) EXPECT_EQ(topo.chip_of(cpu), 1);
  const auto groups = domains.groups(1, 5);
  ASSERT_EQ(groups.size(), 2u);  // two cores per chip
  for (const auto& g : groups) EXPECT_EQ(g.size(), 2u);
}

TEST(SchedDomainsTest, SystemSpanCoversAllWithChipGroups) {
  const hw::Topology topo = hw::Topology::power6_js22();
  const SchedDomains domains(topo);
  EXPECT_EQ(domains.span(2, 0).size(), 8u);
  const auto groups = domains.groups(2, 7);
  ASSERT_EQ(groups.size(), 2u);  // two chips
  EXPECT_EQ(groups[0].size(), 4u);
}

TEST(SchedDomainsTest, SingleCoreMachineHasOnlySmt) {
  const hw::Topology topo(hw::TopologyConfig{
      .chips = 1, .cores_per_chip = 1, .threads_per_core = 2});
  const SchedDomains domains(topo);
  ASSERT_EQ(domains.num_levels(), 1);
  EXPECT_EQ(domains.level(0).kind, DomainKind::kSmt);
}

TEST(SchedDomainsTest, NoSmtNoSmtLevel) {
  const hw::Topology topo(hw::TopologyConfig{
      .chips = 2, .cores_per_chip = 4, .threads_per_core = 1});
  const SchedDomains domains(topo);
  ASSERT_EQ(domains.num_levels(), 2);
  EXPECT_EQ(domains.level(0).kind, DomainKind::kMc);
  EXPECT_EQ(domains.level(1).kind, DomainKind::kSystem);
}

TEST(SchedDomainsTest, DescribeMentionsLevels) {
  const SchedDomains domains(hw::Topology::power6_js22());
  const std::string text = domains.describe();
  EXPECT_NE(text.find("SMT"), std::string::npos);
  EXPECT_NE(text.find("MC"), std::string::npos);
  EXPECT_NE(text.find("SYS"), std::string::npos);
}

TEST(SchedDomainsTest, KindNames) {
  EXPECT_STREQ(domain_kind_name(DomainKind::kSmt), "SMT");
  EXPECT_STREQ(domain_kind_name(DomainKind::kMc), "MC");
  EXPECT_STREQ(domain_kind_name(DomainKind::kSystem), "SYS");
}

// --- priority tables ---------------------------------------------------------

TEST(PrioTest, WeightTableEndpoints) {
  EXPECT_EQ(nice_to_weight(0), kNice0Load);
  EXPECT_EQ(nice_to_weight(-20), 88761u);
  EXPECT_EQ(nice_to_weight(19), 15u);
}

TEST(PrioTest, WeightsMonotonicallyDecrease) {
  for (int nice = kMinNice; nice < kMaxNice; ++nice) {
    EXPECT_GT(nice_to_weight(nice), nice_to_weight(nice + 1));
  }
}

TEST(PrioTest, EachNiceStepIsAboutTenPercentCpu) {
  // Linux's design: one nice level ~ 1.25x weight ratio.
  for (int nice = kMinNice; nice < kMaxNice; ++nice) {
    const double ratio = static_cast<double>(nice_to_weight(nice)) /
                         static_cast<double>(nice_to_weight(nice + 1));
    EXPECT_GT(ratio, 1.1);
    EXPECT_LT(ratio, 1.4);
  }
}

TEST(PrioTest, OutOfRangeThrows) {
  EXPECT_THROW(nice_to_weight(-21), std::out_of_range);
  EXPECT_THROW(nice_to_weight(20), std::out_of_range);
}

TEST(PrioTest, PolicyNames) {
  EXPECT_STREQ(policy_name(Policy::kFifo), "SCHED_FIFO");
  EXPECT_STREQ(policy_name(Policy::kHpc), "SCHED_HPC");
  EXPECT_STREQ(policy_name(Policy::kNormal), "SCHED_NORMAL");
}

TEST(PrioTest, RtPolicyPredicate) {
  EXPECT_TRUE(is_rt_policy(Policy::kFifo));
  EXPECT_TRUE(is_rt_policy(Policy::kRR));
  EXPECT_FALSE(is_rt_policy(Policy::kHpc));
  EXPECT_FALSE(is_rt_policy(Policy::kNormal));
}

// --- behaviour helpers -------------------------------------------------------

TEST(BehaviorsTest, ScriptBehaviorPlaysThenExits) {
  ScriptBehavior script({Action::compute(10), Action::sleep(20)});
  sim::Engine engine;
  // Not booted: next() needs no kernel state.
  Kernel kernel(engine, KernelConfig{});
  Task task;
  EXPECT_EQ(script.next(kernel, task).kind, ActionKind::kCompute);
  EXPECT_EQ(script.next(kernel, task).kind, ActionKind::kSleep);
  EXPECT_EQ(script.next(kernel, task).kind, ActionKind::kExit);
  EXPECT_EQ(script.next(kernel, task).kind, ActionKind::kExit);
}

TEST(BehaviorsTest, FuncBehaviorDelegates) {
  int calls = 0;
  FuncBehavior fn([&calls](Kernel&, Task&) {
    ++calls;
    return Action::yield();
  });
  sim::Engine engine;
  Kernel kernel(engine, KernelConfig{});
  Task task;
  EXPECT_EQ(fn.next(kernel, task).kind, ActionKind::kYield);
  EXPECT_EQ(fn.next(kernel, task).kind, ActionKind::kYield);
  EXPECT_EQ(calls, 2);
}

TEST(BehaviorsTest, ActionFactories) {
  EXPECT_EQ(Action::compute(5).work, 5u);
  EXPECT_EQ(Action::sleep(7).duration, 7u);
  const Action w = Action::wait(3, 9);
  EXPECT_EQ(w.cond, 3u);
  EXPECT_EQ(w.spin, 9u);
  EXPECT_EQ(Action::exit_task().kind, ActionKind::kExit);
}

TEST(BehaviorsTest, CpuMaskHelpers) {
  EXPECT_TRUE(mask_has(cpu_mask_all(), 63));
  EXPECT_TRUE(mask_has(cpu_mask_of(5), 5));
  EXPECT_FALSE(mask_has(cpu_mask_of(5), 4));
  EXPECT_EQ(cpu_mask_of(0) | cpu_mask_of(1), 3ull);
}

}  // namespace
}  // namespace hpcs::kernel
