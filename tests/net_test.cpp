// Tests for the interconnect subsystem: collective step schedules, the
// LogGP fabric cost model and its contention/fault behaviour, the legacy
// uniform-latency compatibility path (bit-for-bit golden values), cluster
// jobs running algorithmic collectives, rank restart through the mailbox,
// and the batch/fault/perf integration points.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "batch/allocator.h"
#include "cluster/cluster.h"
#include "fault/fault_plan.h"
#include "fault/injector.h"
#include "kernel/kernel.h"
#include "mpi/program.h"
#include "mpi/world.h"
#include "net/collective.h"
#include "net/fabric.h"
#include "perf/netstat.h"
#include "sim/engine.h"

namespace hpcs::net {
namespace {

using kernel::Policy;

// ---------------------------------------------------------------------------
// Collective step schedules
// ---------------------------------------------------------------------------

/// Execute every rank's schedule against FIFO channels without a simulator:
/// sends are eager, a receive blocks until the matching send was posted.
/// Returns false on deadlock (a full pass over all ranks makes no progress).
bool schedules_terminate(const std::vector<std::vector<Step>>& schedules) {
  const int n = static_cast<int>(schedules.size());
  std::vector<std::size_t> pos(schedules.size(), 0);
  std::vector<std::size_t> posted(schedules.size(), 0);
  std::map<std::pair<int, int>, std::uint32_t> sent;
  bool progress = true;
  while (progress) {
    progress = false;
    for (int r = 0; r < n; ++r) {
      while (pos[r] < schedules[r].size()) {
        const Step& s = schedules[r][pos[r]];
        if (posted[r] == pos[r]) {
          // First visit: the send goes out whether or not the receive is
          // ready (that is what the mailbox does).
          if (s.send_to >= 0) sent[{r, s.send_to}] += 1;
          posted[r] += 1;
          progress = true;
        }
        if (s.recv_from >= 0 && sent[{s.recv_from, r}] <= s.recv_seq) break;
        pos[r] += 1;
        progress = true;
      }
    }
  }
  for (int r = 0; r < n; ++r) {
    if (pos[r] < schedules[r].size()) return false;
  }
  return true;
}

std::vector<std::vector<Step>> all_schedules(Collective collective,
                                             Algorithm algorithm, int n,
                                             std::uint64_t bytes) {
  std::vector<std::vector<Step>> schedules;
  schedules.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    schedules.push_back(collective_steps(collective, algorithm, r, n, bytes,
                                         0.0005));
  }
  return schedules;
}

TEST(CollectiveTest, SchedulesMatchAndTerminate) {
  for (const Algorithm algorithm :
       {Algorithm::kBinomialTree, Algorithm::kRecursiveDoubling,
        Algorithm::kRing}) {
    for (const Collective collective :
         {Collective::kBarrier, Collective::kAllreduce,
          Collective::kAlltoall}) {
      for (const int n : {2, 3, 4, 6, 8, 12, 16}) {
        const auto schedules = all_schedules(collective, algorithm, n, 4096);
        EXPECT_TRUE(schedules_terminate(schedules))
            << algorithm_name(algorithm) << " n=" << n << " collective "
            << static_cast<int>(collective) << " deadlocks";
        // Conservation: every send is consumed by exactly one receive.
        std::map<std::pair<int, int>, int> sends, recvs;
        for (int r = 0; r < n; ++r) {
          for (const Step& s : schedules[static_cast<std::size_t>(r)]) {
            if (s.send_to >= 0) sends[{r, s.send_to}] += 1;
            if (s.recv_from >= 0) recvs[{s.recv_from, r}] += 1;
          }
        }
        EXPECT_EQ(sends, recvs)
            << algorithm_name(algorithm) << " n=" << n << " orphan messages";
      }
    }
  }
}

TEST(CollectiveTest, FlatAndDegenerateSchedulesAreEmpty) {
  EXPECT_TRUE(collective_steps(Collective::kAllreduce, Algorithm::kFlat, 0, 8,
                               1024, 0.0)
                  .empty());
  EXPECT_TRUE(collective_steps(Collective::kAllreduce, Algorithm::kRing, 0, 1,
                               1024, 0.0)
                  .empty());
  EXPECT_THROW(collective_steps(Collective::kAllreduce, Algorithm::kRing, 9, 8,
                                1024, 0.0),
               std::out_of_range);
}

TEST(CollectiveTest, RingMovesChunksInTwoPhases) {
  // Ring allreduce is n-1 reduce-scatter rounds plus n-1 allgather rounds,
  // each moving a 1/n chunk to the right neighbour.
  const int n = 4;
  const auto steps =
      collective_steps(Collective::kAllreduce, Algorithm::kRing, 1, n, 4000,
                       0.01);
  ASSERT_EQ(steps.size(), static_cast<std::size_t>(2 * (n - 1)));
  for (const Step& s : steps) {
    EXPECT_EQ(s.send_to, 2);
    EXPECT_EQ(s.recv_from, 0);
    EXPECT_EQ(s.send_bytes, 1000u);
  }
  // Reduce-scatter rounds pay combine work; allgather rounds do not.
  EXPECT_GT(steps[0].cpu, 0);
  EXPECT_EQ(steps[2 * (n - 1) - 1].cpu, 0);
}

TEST(CollectiveTest, TreeRootReceivesThenBroadcasts) {
  const auto root =
      collective_steps(Collective::kAllreduce, Algorithm::kBinomialTree, 0, 8,
                       1024, 0.0005);
  // Rank 0 of 8: three receives (reduce), then three sends (bcast).
  ASSERT_EQ(root.size(), 6u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_GE(root[static_cast<std::size_t>(i)].recv_from, 0);
  }
  for (int i = 3; i < 6; ++i) {
    EXPECT_GE(root[static_cast<std::size_t>(i)].send_to, 0);
  }
}

TEST(CollectiveTest, ParseAlgorithmRoundTrips) {
  for (const Algorithm algorithm :
       {Algorithm::kFlat, Algorithm::kBinomialTree,
        Algorithm::kRecursiveDoubling, Algorithm::kRing}) {
    EXPECT_EQ(parse_algorithm(algorithm_name(algorithm)), algorithm);
  }
  EXPECT_THROW(parse_algorithm("bogus"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Fabric cost model
// ---------------------------------------------------------------------------

FabricConfig test_fabric_config() {
  FabricConfig config;
  config.nodes = 8;
  config.nodes_per_switch = 4;
  config.local = {200, 0.00005};
  config.nic = {1000, 0.8};
  config.uplink = {2000, 1.6};
  return config;
}

TEST(FabricTest, RouteCostsFollowTopology) {
  Fabric fabric(test_fabric_config());
  // Intra-node: one local link.  1000 B * 0.00005 ns/B rounds to 0.
  EXPECT_EQ(fabric.deliver(0, 0, 1000, 0), 200);
  // Same leaf block: nic-up + nic-down, serialising 800 ns on each.
  Fabric fresh1(test_fabric_config());
  EXPECT_EQ(fresh1.deliver(0, 1, 1000, 0), 2 * (800 + 1000));
  // Cross block: nic-up, uplink, downlink, nic-down.
  Fabric fresh2(test_fabric_config());
  EXPECT_EQ(fresh2.deliver(0, 4, 1000, 0),
            2 * (800 + 1000) + 2 * (1600 + 2000));
}

TEST(FabricTest, SharedLinksQueueFifo) {
  Fabric fabric(test_fabric_config());
  const SimTime first = fabric.deliver(0, 1, 1000, 0);
  // Same instant, same source NIC: the second message queues behind the
  // first on nic-up/0 AND behind it again on nic-down/1.
  const SimTime second = fabric.deliver(0, 1, 1000, 0);
  EXPECT_GT(second, first);
  EXPECT_EQ(second - first, 800);  // drains one serialisation later
  bool queued = false;
  for (std::size_t i = 0; i < fabric.num_links(); ++i) {
    if (fabric.link(i).queued_ns > 0) queued = true;
  }
  EXPECT_TRUE(queued);
  EXPECT_EQ(fabric.stats().messages, 2u);
}

TEST(FabricTest, UniformModeIsConstantLatency) {
  Fabric fabric(FabricConfig::uniform(4, 25 * kMicrosecond));
  EXPECT_EQ(fabric.deliver(0, 0, 1 << 20, 1000), 1000);
  EXPECT_EQ(fabric.deliver(0, 3, 1 << 20, 1000), 1000 + 25 * kMicrosecond);
  // No serialisation, no queueing: repeating the send costs the same.
  EXPECT_EQ(fabric.deliver(0, 3, 1 << 20, 1000), 1000 + 25 * kMicrosecond);
}

TEST(FabricTest, NicDegradeSlowsAndRestoreHeals) {
  Fabric fabric(test_fabric_config());
  const SimTime healthy = fabric.deliver(0, 1, 1000, 0);
  Fabric degraded(test_fabric_config());
  degraded.degrade_nic(0, 4.0, 500);
  const SimTime slow = degraded.deliver(0, 1, 1000, 0);
  EXPECT_GT(slow, healthy);
  degraded.restore_nic(0);
  // After restore a fresh message pays only the queue left behind, not the
  // degraded serialisation cost.
  Fabric healed(test_fabric_config());
  healed.degrade_nic(0, 4.0, 500);
  healed.restore_nic(0);
  EXPECT_EQ(healed.deliver(0, 1, 1000, 0), healthy);
}

TEST(FabricTest, UplinkFailureReroutesUntilRepair) {
  Fabric fabric(test_fabric_config());
  const SimTime healthy = fabric.deliver(0, 4, 1000, 0);
  Fabric broken(test_fabric_config());
  broken.fail_uplink(0);
  EXPECT_TRUE(broken.uplink_failed(0));
  EXPECT_FALSE(broken.uplink_failed(1));
  const SimTime rerouted = broken.deliver(0, 4, 1000, 0);
  // The backup path pays the bandwidth penalty and the extra latency.
  EXPECT_GE(rerouted, healthy + broken.config().backup_extra_latency);
  broken.repair_uplink(0);
  EXPECT_FALSE(broken.uplink_failed(0));
  Fabric repaired(test_fabric_config());
  repaired.fail_uplink(0);
  repaired.repair_uplink(0);
  EXPECT_EQ(repaired.deliver(0, 4, 1000, 0), healthy);
}

TEST(FabricTest, ValidatesIndices) {
  Fabric fabric(test_fabric_config());
  EXPECT_THROW(fabric.deliver(-1, 0, 0, 0), std::out_of_range);
  EXPECT_THROW(fabric.deliver(0, 8, 0, 0), std::out_of_range);
  EXPECT_THROW(fabric.degrade_nic(9, 2.0), std::out_of_range);
  EXPECT_THROW(fabric.fail_uplink(2), std::out_of_range);
  FabricConfig bad;
  bad.nodes = 0;
  EXPECT_THROW(Fabric{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace hpcs::net

namespace hpcs::cluster {
namespace {

using kernel::Policy;

// ---------------------------------------------------------------------------
// Legacy compatibility: golden values captured against the pre-fabric tree
// ---------------------------------------------------------------------------

SimTime run_quiet_legacy(std::optional<net::FabricConfig> fabric) {
  sim::Engine engine;
  ClusterConfig config;
  config.nodes = 4;
  config.spawn_daemons = false;
  config.net_latency = 25 * kMicrosecond;
  config.fabric = fabric;
  Cluster cl(engine, config);
  mpi::Program p;
  p.barrier();
  p.loop(20).compute(500 * kMicrosecond, 0.01).allreduce(4096).end_loop();
  p.barrier();
  mpi::MpiConfig mc;
  mc.nranks = 16;
  mc.seed = 42;
  ClusterJob job(cl, mc, p);
  job.launch(Policy::kNormal);
  engine.run_until(60 * kSecond);
  EXPECT_TRUE(job.finished());
  return job.finish_time();
}

TEST(GoldenTest, QuietClusterBitForBit) {
  // Captured from the pre-fabric implementation (constant net_latency,
  // flat collectives).  The deprecated-alias path must reproduce it
  // EXACTLY: any drift means the uniform fabric is not a faithful stand-in.
  EXPECT_EQ(run_quiet_legacy(std::nullopt), 17794868u);
}

TEST(GoldenTest, ExplicitUniformFabricMatchesAlias) {
  EXPECT_EQ(run_quiet_legacy(net::FabricConfig::uniform(4, 25 * kMicrosecond)),
            17794868u);
}

TEST(GoldenTest, NoisyHplClusterBitForBit) {
  // Daemons + HPL + exchange ops: exercises cross-node pair releases and
  // per-node noise streams through the fabric's legacy mode.
  sim::Engine engine;
  ClusterConfig config;
  config.nodes = 2;
  config.seed = 7;
  config.install_hpl = true;
  config.net_latency = 10 * kMicrosecond;
  Cluster cl(engine, config);
  mpi::Program p;
  p.barrier();
  p.loop(10)
      .compute(1 * kMillisecond, 0.02)
      .exchange(1, 8192)
      .allreduce(64)
      .end_loop();
  mpi::MpiConfig mc;
  mc.nranks = 8;
  mc.seed = 3;
  ClusterJob job(cl, mc, p);
  job.launch(Policy::kHpc);
  engine.run_until(60 * kSecond);
  ASSERT_TRUE(job.finished());
  EXPECT_EQ(job.finish_time(), 17510392u);
}

// ---------------------------------------------------------------------------
// Algorithmic collectives on a cluster
// ---------------------------------------------------------------------------

ClusterConfig contended_config(int nodes) {
  ClusterConfig config;
  config.nodes = nodes;
  config.spawn_daemons = false;
  net::FabricConfig fabric;
  fabric.nodes_per_switch = 4;
  config.fabric = fabric;
  return config;
}

SimTime run_algorithm(net::Algorithm algorithm, std::uint64_t seed = 11) {
  sim::Engine engine;
  Cluster cl(engine, contended_config(4));
  mpi::Program p;
  p.barrier();
  p.loop(10).compute(200 * kMicrosecond, 0.01).allreduce(1 << 16).end_loop();
  p.barrier();
  mpi::MpiConfig mc;
  mc.nranks = 8;
  mc.seed = seed;
  mc.collective_algorithm = algorithm;
  ClusterJob job(cl, mc, p);
  job.launch(Policy::kNormal);
  engine.run_until(120 * kSecond);
  EXPECT_TRUE(job.finished());
  EXPECT_FALSE(job.failed());
  EXPECT_EQ(job.open_collectives(), 0u) << "mailbox leaked collective state";
  return job.finish_time();
}

TEST(ClusterCollectivesTest, AlgorithmsRunDeterministicallyAndDiffer) {
  const SimTime flat = run_algorithm(net::Algorithm::kFlat);
  const SimTime tree = run_algorithm(net::Algorithm::kBinomialTree);
  const SimTime rd = run_algorithm(net::Algorithm::kRecursiveDoubling);
  const SimTime ring = run_algorithm(net::Algorithm::kRing);
  // Same seed, same algorithm: bit-identical.
  EXPECT_EQ(tree, run_algorithm(net::Algorithm::kBinomialTree));
  EXPECT_EQ(ring, run_algorithm(net::Algorithm::kRing));
  // Different message schedules cost different amounts of simulated time.
  const std::set<SimTime> distinct{flat, tree, rd, ring};
  EXPECT_EQ(distinct.size(), 4u) << "flat=" << flat << " tree=" << tree
                                 << " rd=" << rd << " ring=" << ring;
}

TEST(ClusterCollectivesTest, AlltoallRunsUnderEveryAlgorithm) {
  for (const net::Algorithm algorithm :
       {net::Algorithm::kBinomialTree, net::Algorithm::kRing}) {
    sim::Engine engine;
    Cluster cl(engine, contended_config(4));
    mpi::Program p;
    p.barrier().alltoall(4096).barrier();
    mpi::MpiConfig mc;
    mc.nranks = 8;
    mc.collective_algorithm = algorithm;
    ClusterJob job(cl, mc, p);
    job.launch(Policy::kNormal);
    engine.run_until(60 * kSecond);
    EXPECT_TRUE(job.finished());
    EXPECT_EQ(job.open_collectives(), 0u);
  }
}

TEST(ClusterCollectivesTest, DeterministicUnderDaemonNoise) {
  auto run = [] {
    sim::Engine engine;
    ClusterConfig config = contended_config(4);
    config.spawn_daemons = true;
    config.seed = 21;
    Cluster cl(engine, config);
    mpi::Program p;
    p.barrier();
    p.loop(8).compute(300 * kMicrosecond, 0.02).allreduce(8192).end_loop();
    mpi::MpiConfig mc;
    mc.nranks = 8;
    mc.seed = 13;
    mc.collective_algorithm = net::Algorithm::kBinomialTree;
    ClusterJob job(cl, mc, p);
    job.launch(Policy::kNormal);
    engine.run_until(120 * kSecond);
    EXPECT_TRUE(job.finished());
    return job.finish_time();
  };
  EXPECT_EQ(run(), run());
}

TEST(ClusterCollectivesTest, ContiguousPlacementBeatsScattered) {
  // A bandwidth-heavy ring allreduce on 4 of 8 nodes: nodes {0,1,2,3} share
  // one leaf switch, nodes {0,2,4,6} drag every ring hop across the
  // oversubscribed spine.
  auto run_on = [](std::vector<int> nodes) {
    sim::Engine engine;
    Cluster cl(engine, contended_config(8));
    mpi::Program p;
    p.barrier();
    p.loop(10).compute(100 * kMicrosecond).allreduce(1 << 20).end_loop();
    mpi::MpiConfig mc;
    mc.nranks = 4;
    mc.seed = 5;
    mc.collective_algorithm = net::Algorithm::kRing;
    ClusterJob job(cl, mc, p, std::move(nodes));
    job.launch(Policy::kNormal);
    engine.run_until(600 * kSecond);
    EXPECT_TRUE(job.finished());
    return job.finish_time() - job.start_time();
  };
  const SimTime contiguous = run_on({0, 1, 2, 3});
  const SimTime scattered = run_on({0, 2, 4, 6});
  EXPECT_LT(contiguous, scattered);
}

// ---------------------------------------------------------------------------
// Rank restart through the fabric
// ---------------------------------------------------------------------------

struct RestartResult {
  SimTime finish = 0;
  bool finished = false;
  bool failed = false;
  int restarts = 0;
  std::size_t open_collectives = 0;
};

RestartResult run_with_rank_failure(net::Algorithm algorithm,
                                    bool restart_failed_ranks) {
  sim::Engine engine;
  Cluster cl(engine, contended_config(2));
  mpi::Program p;
  p.barrier();
  p.loop(12).compute(400 * kMicrosecond, 0.01).allreduce(4096).end_loop();
  p.barrier();
  mpi::MpiConfig mc;
  mc.nranks = 4;
  mc.seed = 17;
  mc.collective_algorithm = algorithm;
  mc.restart_failed_ranks = restart_failed_ranks;
  ClusterJob job(cl, mc, p);
  job.launch(Policy::kNormal);
  // Kill rank 3 (a remote-node rank) mid-run at a pinned engine time.
  engine.schedule_at(2 * kMillisecond, [&job] {
    EXPECT_TRUE(job.inject_rank_failure(3));
  });
  engine.run_until(120 * kSecond);
  RestartResult result;
  result.finish = job.finish_time();
  result.finished = job.finished();
  result.failed = job.failed();
  result.restarts = job.fault_report().restarts;
  result.open_collectives = job.open_collectives();
  return result;
}

TEST(ClusterRestartTest, FlatJobSurvivesRankRestartDeterministically) {
  const RestartResult a =
      run_with_rank_failure(net::Algorithm::kFlat, true);
  EXPECT_TRUE(a.finished);
  EXPECT_FALSE(a.failed);
  EXPECT_EQ(a.restarts, 1);
  const RestartResult b =
      run_with_rank_failure(net::Algorithm::kFlat, true);
  EXPECT_EQ(a.finish, b.finish);  // same seed, same fault: bit-identical
}

TEST(ClusterRestartTest, RingCollectiveSurvivesRankRestart) {
  const RestartResult a =
      run_with_rank_failure(net::Algorithm::kRing, true);
  EXPECT_TRUE(a.finished);
  EXPECT_FALSE(a.failed);
  EXPECT_EQ(a.restarts, 1);
  EXPECT_EQ(a.open_collectives, 0u) << "restart leaked mailbox state";
  const RestartResult b =
      run_with_rank_failure(net::Algorithm::kRing, true);
  EXPECT_EQ(a.finish, b.finish);
}

TEST(ClusterRestartTest, WithoutRestartTheJobAborts) {
  const RestartResult result =
      run_with_rank_failure(net::Algorithm::kRing, false);
  EXPECT_TRUE(result.finished);
  EXPECT_TRUE(result.failed);
  EXPECT_EQ(result.restarts, 0);
}

TEST(ClusterRestartTest, RestartsAreCheckpointed) {
  // The respawned rank fast-forwards its completed sync points; the fault
  // report records them.
  sim::Engine engine;
  Cluster cl(engine, contended_config(2));
  mpi::Program p;
  p.barrier();
  p.loop(12).compute(400 * kMicrosecond, 0.01).allreduce(4096).end_loop();
  p.barrier();
  mpi::MpiConfig mc;
  mc.nranks = 4;
  mc.seed = 17;
  mc.collective_algorithm = net::Algorithm::kRing;
  mc.restart_failed_ranks = true;
  ClusterJob job(cl, mc, p);
  job.launch(Policy::kNormal);
  engine.schedule_at(4 * kMillisecond,
                     [&job] { job.inject_rank_failure(2); });
  engine.run_until(120 * kSecond);
  ASSERT_TRUE(job.finished());
  EXPECT_GT(job.rank_sync_count(2), 0u);
  EXPECT_EQ(job.fault_report().count(fault::FaultKind::kRankDeathDetected), 1);
  EXPECT_EQ(job.fault_report().count(fault::FaultKind::kRankRestart), 1);
}

// ---------------------------------------------------------------------------
// Fault injector link actions against the cluster fabric
// ---------------------------------------------------------------------------

TEST(LinkFaultTest, InjectorDrivesFabricLinkState) {
  sim::Engine engine;
  Cluster cl(engine, contended_config(8));
  fault::FaultPlan plan;
  plan.degrade_nic_at(1 * kMillisecond, 2, 8.0, 50 * kMicrosecond)
      .restore_nic_at(5 * kMillisecond, 2)
      .fail_uplink_at(2 * kMillisecond, 0)
      .repair_uplink_at(6 * kMillisecond, 0);
  fault::FaultInjector injector(cl.node(0), plan);
  injector.arm(nullptr, &cl.fabric());
  engine.schedule_at(3 * kMillisecond, [&cl] {
    EXPECT_TRUE(cl.fabric().uplink_failed(0));
    EXPECT_GT(cl.fabric().link(cl.config().nodes + 2).degrade_factor, 1.0);
  });
  engine.run_until(10 * kMillisecond);
  EXPECT_FALSE(cl.fabric().uplink_failed(0));
  EXPECT_EQ(injector.report().count(fault::FaultKind::kLinkDegrade), 1);
  EXPECT_EQ(injector.report().count(fault::FaultKind::kLinkRestore), 1);
  EXPECT_EQ(injector.report().count(fault::FaultKind::kUplinkFail), 1);
  EXPECT_EQ(injector.report().count(fault::FaultKind::kUplinkRepair), 1);
}

TEST(LinkFaultTest, LinkActionsWithoutFabricAreSkipped) {
  sim::Engine engine;
  kernel::Kernel kernel(engine, kernel::KernelConfig{});
  kernel.boot();
  fault::FaultPlan plan;
  plan.degrade_nic_at(1 * kMillisecond, 0, 2.0);
  fault::FaultInjector injector(kernel, plan);
  injector.arm();
  engine.run_until(5 * kMillisecond);
  EXPECT_EQ(injector.report().count(fault::FaultKind::kSkipped), 1);
}

TEST(LinkFaultTest, UplinkFailureSlowsARunningJob) {
  auto run = [](bool with_fault) {
    sim::Engine engine;
    Cluster cl(engine, contended_config(8));
    mpi::Program p;
    p.barrier();
    p.loop(10).compute(100 * kMicrosecond).allreduce(1 << 18).end_loop();
    mpi::MpiConfig mc;
    mc.nranks = 8;
    mc.seed = 23;
    mc.collective_algorithm = net::Algorithm::kRing;
    ClusterJob job(cl, mc, p);
    job.launch(Policy::kNormal);
    std::unique_ptr<fault::FaultInjector> injector;
    if (with_fault) {
      fault::FaultPlan plan;
      plan.fail_uplink_at(1 * kMillisecond, 0);
      injector = std::make_unique<fault::FaultInjector>(cl.node(0), plan);
      injector->arm(nullptr, &cl.fabric());
    }
    engine.run_until(600 * kSecond);
    EXPECT_TRUE(job.finished());
    return job.finish_time();
  };
  EXPECT_GT(run(true), run(false));
}

// ---------------------------------------------------------------------------
// Netstat rendering
// ---------------------------------------------------------------------------

TEST(NetstatTest, RendersTrafficAndHistogram) {
  sim::Engine engine;
  Cluster cl(engine, contended_config(4));
  mpi::Program p;
  p.barrier().allreduce(1 << 16).barrier();
  mpi::MpiConfig mc;
  mc.nranks = 8;
  mc.collective_algorithm = net::Algorithm::kRing;
  ClusterJob job(cl, mc, p);
  job.launch(Policy::kNormal);
  engine.run_until(60 * kSecond);
  ASSERT_TRUE(job.finished());
  const auto stats = perf::link_stats(cl.fabric(), engine.now());
  EXPECT_EQ(stats.size(), cl.fabric().num_links());
  std::uint64_t messages = 0;
  for (const auto& s : stats) messages += s.messages;
  EXPECT_GT(messages, 0u);
  const std::string text = perf::render_netstat(cl.fabric(), engine.now());
  EXPECT_NE(text.find("nic-up"), std::string::npos);
  EXPECT_NE(text.find("latency histogram"), std::string::npos);
}

}  // namespace
}  // namespace hpcs::cluster

namespace hpcs::mpi {
namespace {

// ---------------------------------------------------------------------------
// Single-node MpiWorld with an attached fabric
// ---------------------------------------------------------------------------

TEST(MpiWorldFabricTest, StepwiseCollectivesRunOnOneNode) {
  auto run = [](net::Algorithm algorithm) {
    sim::Engine engine;
    kernel::Kernel kernel(engine, kernel::KernelConfig{});
    kernel.boot();
    net::FabricConfig fc;
    fc.nodes = 1;
    net::Fabric fabric(fc);
    Program p;
    p.barrier();
    p.loop(5).compute(100 * kMicrosecond, 0.01).allreduce(8192).end_loop();
    MpiConfig mc;
    mc.nranks = 8;
    mc.collective_algorithm = algorithm;
    MpiWorld world(kernel, mc, p);
    world.attach_fabric(fabric);
    world.launch_mpiexec(kernel::Policy::kNormal, 0, kernel::kInvalidTid);
    engine.run_until(60 * kSecond);
    EXPECT_TRUE(world.finished());
    EXPECT_FALSE(world.failed());
    return world.finish_time();
  };
  const SimTime flat = run(net::Algorithm::kFlat);
  const SimTime tree = run(net::Algorithm::kBinomialTree);
  EXPECT_NE(flat, tree);
  EXPECT_EQ(tree, run(net::Algorithm::kBinomialTree));  // deterministic
}

TEST(MpiWorldFabricTest, WithoutFabricAlgorithmFallsBackToFlat) {
  auto run = [](net::Algorithm algorithm) {
    sim::Engine engine;
    kernel::Kernel kernel(engine, kernel::KernelConfig{});
    kernel.boot();
    Program p;
    p.barrier().allreduce(4096).barrier();
    MpiConfig mc;
    mc.nranks = 4;
    mc.collective_algorithm = algorithm;
    MpiWorld world(kernel, mc, p);  // no attach_fabric
    world.launch_mpiexec(kernel::Policy::kNormal, 0, kernel::kInvalidTid);
    engine.run_until(60 * kSecond);
    EXPECT_TRUE(world.finished());
    return world.finish_time();
  };
  EXPECT_EQ(run(net::Algorithm::kRing), run(net::Algorithm::kFlat));
}

}  // namespace
}  // namespace hpcs::mpi

namespace hpcs::batch {
namespace {

// ---------------------------------------------------------------------------
// Allocator scatter policy
// ---------------------------------------------------------------------------

TEST(AllocPolicyTest, ScatterStripesAcrossBlocks) {
  NodeAllocator scatter(16, 4, AllocPolicy::kScatter);
  const auto nodes = scatter.allocate(4);
  ASSERT_TRUE(nodes.has_value());
  EXPECT_EQ(*nodes, (std::vector<int>{0, 4, 8, 12}));
  EXPECT_FALSE(scatter.last_allocation_contiguous());
  scatter.check_conservation();

  NodeAllocator best_fit(16, 4, AllocPolicy::kBestFit);
  const auto contiguous = best_fit.allocate(4);
  ASSERT_TRUE(contiguous.has_value());
  EXPECT_EQ(*contiguous, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_TRUE(best_fit.last_allocation_contiguous());
}

TEST(AllocPolicyTest, ScatterFillsBlocksAfterStriping) {
  NodeAllocator scatter(8, 4, AllocPolicy::kScatter);
  const auto first = scatter.allocate(2);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, (std::vector<int>{0, 4}));
  const auto second = scatter.allocate(4);
  ASSERT_TRUE(second.has_value());
  // Striping continues over the remaining free nodes of each block.
  EXPECT_EQ(*second, (std::vector<int>{1, 2, 5, 6}));
  scatter.check_conservation();
  EXPECT_EQ(scatter.free_count(), 2);
}

TEST(AllocPolicyTest, PolicyNames) {
  EXPECT_STREQ(alloc_policy_name(AllocPolicy::kBestFit), "best-fit");
  EXPECT_STREQ(alloc_policy_name(AllocPolicy::kScatter), "scatter");
}

}  // namespace
}  // namespace hpcs::batch
