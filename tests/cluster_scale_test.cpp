// Golden serial-vs-sharded equivalence for the cluster-scale scenario, plus
// the shard partitioning underneath it.
//
// The checksums below pin the *entire schedule* (every job's arrival, start,
// finish, shard, and forward count folded through FNV-1a) of two full
// scenarios — one light, one heavily contended with cross-shard forwarding —
// and every sharded thread count must reproduce them bit-for-bit.  If a
// refactor changes a constant deliberately, re-derive it by printing
// result.checksum() from a serial run.
#include <gtest/gtest.h>

#include <stdexcept>

#include "batch/scale.h"
#include "ckpt/pfs.h"
#include "ckpt/young_daly.h"
#include "cluster/partition.h"
#include "fault/campaign.h"
#include "net/fabric.h"
#include "util/time.h"

namespace hpcs {
namespace {

using batch::ScaleConfig;
using batch::ScaleResult;
using cluster::ShardPartition;

// --- partitioning ------------------------------------------------------------

net::FabricConfig leaf16_fabric(int nodes) {
  net::FabricConfig fabric;
  fabric.nodes = nodes;
  fabric.nodes_per_switch = 16;
  return fabric;
}

TEST(ShardPartition, EvenLeafAlignedSplit) {
  const ShardPartition part(leaf16_fabric(256), 4);
  EXPECT_EQ(part.num_shards(), 4);
  EXPECT_EQ(part.num_nodes(), 256);
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(part.node_count(s), 64) << s;
    EXPECT_EQ(part.first_node(s), 64 * s) << s;
    EXPECT_EQ(part.first_node(s) % 16, 0) << "leaf-aligned " << s;
  }
  EXPECT_EQ(part.min_shard_nodes(), 64);
  EXPECT_EQ(part.shard_of_node(0), 0);
  EXPECT_EQ(part.shard_of_node(63), 0);
  EXPECT_EQ(part.shard_of_node(64), 1);
  EXPECT_EQ(part.shard_of_node(255), 3);
  EXPECT_THROW(part.shard_of_node(256), std::out_of_range);
  EXPECT_THROW(part.shard_of_node(-1), std::out_of_range);
}

TEST(ShardPartition, UnevenBlockCountsDealExtrasToLowShards) {
  // 10 blocks of 16 over 4 shards: 3,3,2,2 blocks = 48,48,32,32 nodes.
  const ShardPartition part(leaf16_fabric(160), 4);
  EXPECT_EQ(part.node_count(0), 48);
  EXPECT_EQ(part.node_count(1), 48);
  EXPECT_EQ(part.node_count(2), 32);
  EXPECT_EQ(part.node_count(3), 32);
  EXPECT_EQ(part.min_shard_nodes(), 32);
}

TEST(ShardPartition, PartialLastBlockIsClamped) {
  // 100 nodes = 6 full blocks + one 4-node block; the last shard absorbs
  // the partial block.
  const ShardPartition part(leaf16_fabric(100), 7);
  EXPECT_EQ(part.num_nodes(), 100);
  EXPECT_EQ(part.node_count(6), 4);
  EXPECT_EQ(part.shard_of_node(99), 6);
}

TEST(ShardPartition, InvalidShardCountsThrow) {
  EXPECT_THROW(ShardPartition(leaf16_fabric(256), 0), std::invalid_argument);
  // 16 blocks cannot feed 17 shards one block each.
  EXPECT_THROW(ShardPartition(leaf16_fabric(256), 17), std::invalid_argument);
}

TEST(ShardPartition, LookaheadIsFabricCrossLeafLatency) {
  net::FabricConfig fabric = leaf16_fabric(256);
  fabric.nic = {300, 0.5};
  fabric.uplink = {450, 0.25};
  const ShardPartition part(fabric, 4);
  // node -> leaf -> spine -> leaf -> node, latency terms only.
  EXPECT_EQ(part.lookahead(), 300u + 450u + 450u + 300u);
  EXPECT_EQ(part.lookahead(), fabric.min_cross_block_latency());

  // A legacy uniform-latency fabric uses the constant itself.
  net::FabricConfig uniform = net::FabricConfig::uniform(64, 750);
  uniform.nodes_per_switch = 16;
  EXPECT_EQ(ShardPartition(uniform, 2).lookahead(), 750u);

  // Zero-latency fabrics still yield a usable (>= 1ns) lookahead.
  EXPECT_GE(ShardPartition(leaf16_fabric(64), 2).lookahead(), 1u);
}

// --- serial vs sharded golden equivalence ------------------------------------

/// Light load: almost no queueing, no forwarding pressure.
ScaleConfig light_config() {
  ScaleConfig cfg;
  cfg.nodes = 256;
  cfg.shards = 4;
  cfg.fabric.nodes_per_switch = 16;
  cfg.arrivals.jobs = 2000;
  cfg.arrivals.mean_interarrival = 20 * kMillisecond;
  cfg.arrivals.max_nodes = 32;
  cfg.seed = 7;
  return cfg;
}

/// Heavy load: ~88% utilization, long queues, and constant cross-shard
/// forwarding + gossip — the regime where serial/sharded divergence would
/// actually show.
ScaleConfig contended_config() {
  ScaleConfig cfg;
  cfg.nodes = 256;
  cfg.shards = 4;
  cfg.fabric.nodes_per_switch = 16;
  cfg.arrivals.jobs = 1500;
  cfg.arrivals.mean_interarrival = 8 * kMillisecond;
  cfg.arrivals.max_nodes = 48;
  cfg.arrivals.nodes_log_mean = 1.8;
  cfg.arrivals.runtime_typical = 900 * kMillisecond;
  cfg.seed = 11;
  return cfg;
}

constexpr std::uint64_t kLightGolden = 0x16fb6077caa197caULL;
constexpr std::uint64_t kContendedGolden = 0x7fca62f5822bfad7ULL;

void expect_identical(const ScaleResult& a, const ScaleResult& b) {
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].arrival, b.jobs[i].arrival) << "job " << i + 1;
    EXPECT_EQ(a.jobs[i].start, b.jobs[i].start) << "job " << i + 1;
    EXPECT_EQ(a.jobs[i].finish, b.jobs[i].finish) << "job " << i + 1;
    EXPECT_EQ(a.jobs[i].home_shard, b.jobs[i].home_shard) << "job " << i + 1;
    EXPECT_EQ(a.jobs[i].ran_shard, b.jobs[i].ran_shard) << "job " << i + 1;
    EXPECT_EQ(a.jobs[i].forwards, b.jobs[i].forwards) << "job " << i + 1;
  }
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.forwards, b.forwards);
  EXPECT_EQ(a.gossip_messages, b.gossip_messages);
  EXPECT_EQ(a.checksum(), b.checksum());
}

TEST(ClusterScale, LightScenarioGoldenPin) {
  const ScaleResult serial = batch::run_scale_serial(light_config());
  EXPECT_EQ(serial.checksum(), kLightGolden);
  EXPECT_EQ(serial.jobs.size(), 2000u);
  EXPECT_EQ(serial.rounds, 0u);
  EXPECT_GT(serial.gossip_messages, 0u);
}

TEST(ClusterScale, LightScenarioShardedMatchesSerial) {
  const ScaleResult serial = batch::run_scale_serial(light_config());
  for (int threads : {1, 2, 4}) {
    const ScaleResult sharded =
        batch::run_scale_sharded(light_config(), threads);
    expect_identical(serial, sharded);
    EXPECT_EQ(sharded.checksum(), kLightGolden) << threads;
    EXPECT_EQ(sharded.events, serial.events) << threads;
    EXPECT_GT(sharded.rounds, 0u) << threads;
  }
}

TEST(ClusterScale, ContendedScenarioGoldenPin) {
  const ScaleResult serial = batch::run_scale_serial(contended_config());
  EXPECT_EQ(serial.checksum(), kContendedGolden);
  // The load-sharing machinery is genuinely exercised here.
  EXPECT_GT(serial.forwards, 1000u);
  EXPECT_GT(serial.gossip_messages, 1000u);
  EXPECT_GT(serial.utilization, 0.8);
  EXPECT_GT(serial.mean_wait_s, 1.0);
  EXPECT_GE(serial.mean_slowdown, 1.0);
  EXPECT_EQ(serial.wait_hist.total(), serial.jobs.size());
  EXPECT_EQ(serial.wait_hist.nan_count(), 0u);
}

TEST(ClusterScale, ContendedScenarioShardedMatchesSerial) {
  const ScaleResult serial = batch::run_scale_serial(contended_config());
  for (int threads : {1, 2, 4}) {
    const ScaleResult sharded =
        batch::run_scale_sharded(contended_config(), threads);
    expect_identical(serial, sharded);
    EXPECT_EQ(sharded.checksum(), kContendedGolden) << threads;
  }
}

TEST(ClusterScale, ForwardedJobsRunAwayFromHome) {
  const ScaleResult result = batch::run_scale_serial(contended_config());
  std::size_t migrated = 0;
  for (const auto& job : result.jobs) {
    if (job.ran_shard != job.home_shard) {
      ++migrated;
      EXPECT_GT(job.forwards, 0) << "migration without a forward hop";
    }
    EXPECT_GE(job.start, job.arrival);
    EXPECT_GT(job.finish, job.start);
  }
  EXPECT_GT(migrated, 0u);
}

TEST(ClusterScale, LookaheadMatchesPartition) {
  const ScaleConfig cfg = contended_config();
  net::FabricConfig fabric = cfg.fabric;
  fabric.nodes = cfg.nodes;
  EXPECT_EQ(batch::scale_lookahead(cfg),
            ShardPartition(fabric, cfg.shards).lookahead());
}

TEST(ClusterScale, ConfigValidation) {
  ScaleConfig cfg = light_config();
  cfg.cycle = 1;
  EXPECT_THROW(batch::run_scale_serial(cfg), std::invalid_argument);
  cfg = light_config();
  cfg.node_noise = -0.5;
  EXPECT_THROW(batch::run_scale_serial(cfg), std::invalid_argument);
  cfg = light_config();
  cfg.shards = 4096;  // more shards than leaf blocks
  EXPECT_THROW(batch::run_scale_serial(cfg), std::invalid_argument);
}

// --- checkpoint/fault campaigns at scale -------------------------------------
// (Named ClusterScaleCkpt* so the CI sanitizer matrix's tsan row picks these
// up alongside the legacy ClusterScale goldens.)

/// 10k nodes, a multi-hour-MTBF fault campaign, and Young/Daly-interval
/// checkpointing to the shared PFS — the PR's flagship robustness scenario.
ScaleConfig ckpt_campaign_config() {
  ScaleConfig cfg;
  cfg.nodes = 10240;
  cfg.shards = 8;
  cfg.fabric.nodes_per_switch = 16;
  cfg.arrivals.jobs = 1500;
  cfg.arrivals.mean_interarrival = 30 * kMillisecond;
  cfg.arrivals.max_nodes = 64;
  cfg.arrivals.nodes_log_mean = 1.8;
  cfg.arrivals.runtime_typical = 20 * kSecond;
  cfg.seed = 17;
  cfg.ckpt.enabled = true;
  cfg.ckpt.bytes_per_node = 128ULL << 20;
  cfg.campaign.node_mtbf = 4 * 3600 * kSecond;  // 4h per node
  cfg.campaign.horizon = 10 * 60 * kSecond;
  return cfg;
}

constexpr std::uint64_t kCkptCampaignGolden = 0x013f5a860451cbb4ULL;

TEST(ClusterScaleCkpt, CampaignScenarioGoldenPin) {
  const ScaleResult serial = batch::run_scale_serial(ckpt_campaign_config());
  EXPECT_EQ(serial.checksum(), kCkptCampaignGolden);
  EXPECT_EQ(serial.jobs.size(), 1500u);
  // The campaign and checkpoint machinery genuinely ran.
  EXPECT_GT(serial.ckpt.checkpoints, 1000u);
  EXPECT_GT(serial.ckpt.failures_hit, 0u);
  EXPECT_GT(serial.ckpt.failures_idle, 0u);
  // One restart per knock-down; a failure landing on an already-down job
  // counts as a hit but folds into the same recovery.
  EXPECT_GT(serial.ckpt.restarts, 0u);
  EXPECT_LE(serial.ckpt.restarts, serial.ckpt.failures_hit);
  EXPECT_GT(serial.ckpt.lost_work_ns, 0);
  EXPECT_GT(serial.ckpt.restart_stall_ns, 0);
  EXPECT_GT(serial.ckpt.mean_interval_s, 0.0);
  EXPECT_GT(serial.ckpt.waste_frac, 0.0);
  EXPECT_LT(serial.ckpt.waste_frac, 0.5);
  EXPECT_EQ(serial.ckpt.pfs.writes, serial.ckpt.checkpoints);  // selfish
}

TEST(ClusterScaleCkpt, CampaignShardedMatchesSerialAt124Threads) {
  const ScaleConfig cfg = ckpt_campaign_config();
  const ScaleResult serial = batch::run_scale_serial(cfg);
  for (int threads : {1, 2, 4}) {
    const ScaleResult sharded = batch::run_scale_sharded(cfg, threads);
    expect_identical(serial, sharded);
    EXPECT_EQ(sharded.checksum(), kCkptCampaignGolden) << threads;
    // Every checkpoint/fault counter is part of the determinism contract.
    EXPECT_EQ(sharded.ckpt.checkpoints, serial.ckpt.checkpoints) << threads;
    EXPECT_EQ(sharded.ckpt.aborted_writes, serial.ckpt.aborted_writes);
    EXPECT_EQ(sharded.ckpt.failures_hit, serial.ckpt.failures_hit);
    EXPECT_EQ(sharded.ckpt.failures_idle, serial.ckpt.failures_idle);
    EXPECT_EQ(sharded.ckpt.restarts, serial.ckpt.restarts);
    EXPECT_EQ(sharded.ckpt.interval_stretches, serial.ckpt.interval_stretches);
    EXPECT_EQ(sharded.ckpt.ckpt_write_ns, serial.ckpt.ckpt_write_ns);
    EXPECT_EQ(sharded.ckpt.ckpt_stall_ns, serial.ckpt.ckpt_stall_ns);
    EXPECT_EQ(sharded.ckpt.lost_work_ns, serial.ckpt.lost_work_ns);
    EXPECT_EQ(sharded.ckpt.restart_stall_ns, serial.ckpt.restart_stall_ns);
    EXPECT_EQ(sharded.ckpt.pfs.writes, serial.ckpt.pfs.writes);
    EXPECT_EQ(sharded.ckpt.pfs.queued_ns, serial.ckpt.pfs.queued_ns);
  }
}

TEST(ClusterScaleCkpt, EveryCampaignFailureIsAccountedExactlyOnce) {
  const ScaleConfig cfg = ckpt_campaign_config();
  fault::CampaignConfig campaign = cfg.campaign;
  campaign.nodes = cfg.nodes;  // the scenario overrides this the same way
  const auto failures = fault::generate_campaign(campaign, cfg.seed);
  const ScaleResult result = batch::run_scale_serial(cfg);
  EXPECT_EQ(result.ckpt.failures_hit + result.ckpt.failures_idle,
            failures.size());
}

/// Saturated PFS: enough concurrent checkpoint traffic that write slots
/// queue for a large fraction of the interval.
ScaleConfig pfs_contended_config(ckpt::CoordPolicy coordinator) {
  ScaleConfig cfg;
  cfg.nodes = 1024;
  cfg.shards = 4;
  cfg.fabric.nodes_per_switch = 16;
  cfg.arrivals.jobs = 400;
  cfg.arrivals.mean_interarrival = 20 * kMillisecond;
  cfg.arrivals.max_nodes = 32;
  cfg.arrivals.nodes_log_mean = 1.8;
  cfg.arrivals.runtime_typical = 60 * kSecond;
  cfg.seed = 23;
  cfg.ckpt.enabled = true;
  cfg.ckpt.coordinator = coordinator;
  cfg.ckpt.bytes_per_node = 1ULL << 30;
  cfg.ckpt.pfs.ns_per_byte = 0.05;  // 20 GB/s aggregate: easily saturated
  cfg.campaign.node_mtbf = 2 * 3600 * kSecond;
  cfg.campaign.horizon = 300 * kSecond;
  return cfg;
}

TEST(ClusterScaleCkpt, CooperativeBeatsSelfishOnAContendedPfs) {
  const ScaleResult selfish = batch::run_scale_serial(
      pfs_contended_config(ckpt::CoordPolicy::kSelfish));
  const ScaleResult coop = batch::run_scale_serial(
      pfs_contended_config(ckpt::CoordPolicy::kCooperative));
  // The PFS really is contended in the selfish baseline...
  EXPECT_GT(selfish.ckpt.pfs.queued_ns, 0);
  EXPECT_GT(selfish.ckpt.ckpt_stall_ns, 0);
  // ...cooperative staggering turns stall time back into compute: less
  // total waste, and strictly less time stalled waiting on the PFS.
  EXPECT_LT(coop.ckpt.waste_frac, selfish.ckpt.waste_frac);
  EXPECT_LT(coop.ckpt.ckpt_stall_ns, selfish.ckpt.ckpt_stall_ns);
  // Graceful degradation engaged: saturated jobs stretched their intervals
  // instead of stalling the schedule.
  EXPECT_GT(coop.ckpt.interval_stretches, 0u);
  EXPECT_GT(coop.ckpt.pfs.reservations, 0u);
  EXPECT_EQ(coop.ckpt.pfs.writes, 0u);  // all cooperative traffic reserves
}

TEST(ClusterScaleCkpt, CampaignWithoutCheckpointsRestartsFromScratch) {
  // The "no checkpointing" ablation: failures throw away the whole run so
  // far (done stays 0 and recovery re-executes from the start).
  ScaleConfig cfg = ckpt_campaign_config();
  cfg.ckpt.enabled = false;
  const ScaleResult result = batch::run_scale_serial(cfg);
  EXPECT_EQ(result.ckpt.checkpoints, 0u);
  EXPECT_EQ(result.ckpt.mean_interval_s, 0.0);
  EXPECT_GT(result.ckpt.failures_hit, 0u);
  EXPECT_GT(result.ckpt.restarts, 0u);
  EXPECT_LE(result.ckpt.restarts, result.ckpt.failures_hit);
  EXPECT_GT(result.ckpt.lost_work_ns, 0);
  EXPECT_EQ(result.ckpt.pfs.writes + result.ckpt.pfs.reads +
                result.ckpt.pfs.reservations,
            0u);
  // Sharded equivalence holds for the campaign-only path too.
  const ScaleResult sharded = batch::run_scale_sharded(cfg, 4);
  expect_identical(result, sharded);
  EXPECT_EQ(sharded.ckpt.lost_work_ns, result.ckpt.lost_work_ns);
}

TEST(ClusterScaleCkpt, ChosenIntervalsMatchTheClosedForms) {
  // Width-1 jobs make the per-job interval a single closed-form value the
  // test can predict exactly.
  ScaleConfig cfg;
  cfg.nodes = 64;
  cfg.shards = 2;
  cfg.fabric.nodes_per_switch = 16;
  cfg.arrivals.jobs = 40;
  cfg.arrivals.max_nodes = 1;
  cfg.seed = 5;
  cfg.ckpt.enabled = true;
  cfg.ckpt.node_mtbf = 3600 * kSecond;  // no campaign: interval choice only
  ckpt::PfsModel pfs(cfg.ckpt.pfs);
  const double write_s = to_seconds(pfs.transfer_time(cfg.ckpt.bytes_per_node));
  const double mtbf_s = to_seconds(cfg.ckpt.node_mtbf);

  cfg.ckpt.interval_policy = ckpt::IntervalPolicy::kDaly;
  ScaleResult result = batch::run_scale_serial(cfg);
  EXPECT_NEAR(result.ckpt.mean_interval_s,
              ckpt::daly_interval_s(write_s, mtbf_s), 1e-6);

  cfg.ckpt.interval_policy = ckpt::IntervalPolicy::kYoung;
  result = batch::run_scale_serial(cfg);
  EXPECT_NEAR(result.ckpt.mean_interval_s,
              ckpt::young_interval_s(write_s, mtbf_s), 1e-6);

  cfg.ckpt.interval_policy = ckpt::IntervalPolicy::kYoung;
  cfg.ckpt.interval_scale = 2.0;
  result = batch::run_scale_serial(cfg);
  EXPECT_NEAR(result.ckpt.mean_interval_s,
              2.0 * ckpt::young_interval_s(write_s, mtbf_s), 1e-6);

  cfg.ckpt.interval_scale = 1.0;
  cfg.ckpt.interval_policy = ckpt::IntervalPolicy::kFixed;
  cfg.ckpt.fixed_interval = 30 * kSecond;
  result = batch::run_scale_serial(cfg);
  EXPECT_NEAR(result.ckpt.mean_interval_s, 30.0, 1e-9);
}

TEST(ClusterScaleCkpt, RejectsSubCycleDowntime) {
  ScaleConfig cfg = ckpt_campaign_config();
  cfg.ckpt.downtime = cfg.cycle - 1;
  EXPECT_THROW(batch::run_scale_serial(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace hpcs
