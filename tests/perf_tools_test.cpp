// Tests for the schedstat renderer and the trace-analysis tooling.
#include <gtest/gtest.h>

#include <memory>

#include "kernel/behaviors.h"
#include "kernel/kernel.h"
#include "perf/schedstat.h"
#include "perf/trace_analysis.h"
#include "sim/engine.h"

namespace hpcs::perf {
namespace {

using kernel::Action;
using kernel::Kernel;
using kernel::KernelConfig;
using kernel::Tid;

class PerfToolsTest : public ::testing::Test {
 protected:
  PerfToolsTest() : kernel_(engine_, KernelConfig{}) {
    kernel_.trace().set_enabled(true);
    kernel_.boot();
  }

  Tid spawn_compute(std::string name, SimDuration work,
                    kernel::CpuMask affinity = kernel::cpu_mask_all()) {
    kernel::SpawnSpec spec;
    spec.name = std::move(name);
    spec.affinity = affinity;
    spec.behavior = std::make_unique<kernel::ScriptBehavior>(
        std::vector<Action>{Action::compute(work)});
    return kernel_.spawn(std::move(spec));
  }

  sim::Engine engine_;
  Kernel kernel_;
};

// --- schedstat ---------------------------------------------------------------

TEST_F(PerfToolsTest, CpuStatsAccountUtilization) {
  spawn_compute("busy", milliseconds(40), kernel::cpu_mask_of(0));
  engine_.run_until(milliseconds(100));
  const auto stats = cpu_stats(kernel_);
  ASSERT_EQ(stats.size(), 8u);
  EXPECT_GT(stats[0].utilization_pct, 30.0);
  EXPECT_LT(stats[3].utilization_pct, 5.0);
  for (const auto& s : stats) {
    EXPECT_NEAR(s.busy_seconds + s.idle_seconds, 0.1, 1e-6);
  }
}

TEST_F(PerfToolsTest, MachineUtilizationAveragesCpus) {
  EXPECT_DOUBLE_EQ(machine_utilization(kernel_), 0.0);  // nothing ran yet
  // One CPU pinned busy for 40 of 100ms, seven idle: ~5% of the machine.
  spawn_compute("busy", milliseconds(40), kernel::cpu_mask_of(0));
  engine_.run_until(milliseconds(100));
  const double util = machine_utilization(kernel_);
  EXPECT_GT(util, 0.04);
  EXPECT_LT(util, 0.10);
  // Consistent with the per-CPU view it aggregates.
  double sum = 0.0;
  for (const auto& s : cpu_stats(kernel_)) sum += s.utilization_pct / 100.0;
  EXPECT_NEAR(util, sum / 8.0, 1e-9);
}

TEST_F(PerfToolsTest, TaskStatsReflectAccounting) {
  const Tid tid = spawn_compute("worker", milliseconds(10));
  engine_.run_until(milliseconds(50));
  const auto stats = task_stats(kernel_, {tid, 99999});
  ASSERT_EQ(stats.size(), 1u);  // unknown tid skipped
  EXPECT_EQ(stats[0].name, "worker");
  EXPECT_GT(stats[0].runtime_seconds, 0.009);
  EXPECT_EQ(stats[0].policy, std::string("SCHED_NORMAL"));
  EXPECT_EQ(stats[0].state, std::string("exited"));
}

TEST_F(PerfToolsTest, SchedstatRenderMentionsCountersAndCpus) {
  spawn_compute("t", milliseconds(5));
  engine_.run_until(milliseconds(20));
  const std::string text = render_schedstat(kernel_);
  EXPECT_NE(text.find("cpu0"), std::string::npos);
  EXPECT_NE(text.find("cpu7"), std::string::npos);
  EXPECT_NE(text.find("sched_switches"), std::string::npos);
  EXPECT_NE(text.find("sched_migrations"), std::string::npos);
  // Always-on engine counters ride along in the same report.
  EXPECT_NE(text.find("engine_events"), std::string::npos);
  EXPECT_NE(text.find("engine_cancels"), std::string::npos);
  EXPECT_NE(text.find("engine_heap_hwm"), std::string::npos);
  EXPECT_NE(text.find("engine_dispatch_rate"), std::string::npos);
}

TEST_F(PerfToolsTest, TaskSchedRender) {
  const Tid tid = spawn_compute("proc", milliseconds(5));
  engine_.run_until(milliseconds(20));
  const std::string text = render_task_sched(kernel_, tid);
  EXPECT_NE(text.find("proc"), std::string::npos);
  EXPECT_NE(text.find("se.sum_exec_runtime"), std::string::npos);
  EXPECT_NE(text.find("nr_switches"), std::string::npos);
  EXPECT_NE(render_task_sched(kernel_, 424242).find("unknown"),
            std::string::npos);
}

// --- trace analysis ----------------------------------------------------------

TEST_F(PerfToolsTest, SegmentsReconstructRuntime) {
  const Tid tid =
      spawn_compute("seg", milliseconds(10), kernel::cpu_mask_of(2));
  engine_.run_until(milliseconds(100));
  const TraceAnalysis analysis(kernel_.trace());
  EXPECT_GT(analysis.switch_count(), 0u);
  const auto runtime = analysis.runtime_by_task();
  const auto it = runtime.find(tid);
  ASSERT_NE(it, runtime.end());
  // Segment-reconstructed runtime matches the kernel's accounting within
  // the switch overheads.
  const double expect = to_seconds(kernel_.task(tid).acct.runtime);
  EXPECT_NEAR(to_seconds(it->second), expect, 0.002);
}

TEST_F(PerfToolsTest, InterruptionsDetected) {
  const kernel::CpuMask mask = kernel::cpu_mask_of(4);
  const Tid victim = spawn_compute("victim", milliseconds(30), mask);
  engine_.run_until(milliseconds(5));
  // An RT intruder carves a hole in the victim's execution.
  kernel::SpawnSpec spec;
  spec.name = "intruder";
  spec.policy = kernel::Policy::kFifo;
  spec.rt_prio = 50;
  spec.affinity = mask;
  spec.behavior = std::make_unique<kernel::ScriptBehavior>(
      std::vector<Action>{Action::compute(milliseconds(2))});
  const Tid intruder = kernel_.spawn(std::move(spec));
  engine_.run_until(milliseconds(100));

  const TraceAnalysis analysis(kernel_.trace());
  const auto events = analysis.interruptions_of(victim);
  ASSERT_GE(events.size(), 1u);
  EXPECT_EQ(events[0].intruder, intruder);
  EXPECT_GT(events[0].length, milliseconds(1));
}

TEST_F(PerfToolsTest, MigrationMatrixCountsMoves) {
  const Tid tid =
      spawn_compute("mover", milliseconds(30), kernel::cpu_mask_of(1));
  engine_.run_until(milliseconds(5));
  ASSERT_TRUE(kernel_.sys_setaffinity(tid, kernel::cpu_mask_of(6)));
  engine_.run_until(milliseconds(50));
  const TraceAnalysis analysis(kernel_.trace());
  const auto matrix = analysis.migration_matrix(8);
  EXPECT_GE(matrix[1][6], 1);
}

TEST_F(PerfToolsTest, LongestSegmentGrowsWithoutNoise) {
  const Tid tid =
      spawn_compute("solo", milliseconds(50), kernel::cpu_mask_of(3));
  engine_.run_until(milliseconds(200));
  const TraceAnalysis analysis(kernel_.trace());
  const auto longest = analysis.longest_segment_by_task();
  const auto it = longest.find(tid);
  ASSERT_NE(it, longest.end());
  // Alone on its CPU the task runs its full demand in one stretch.
  EXPECT_GT(it->second, milliseconds(40));
}

}  // namespace
}  // namespace hpcs::perf
