// Tests for the batch workload manager: reproducible arrival streams, SWF
// round trips, topology-aware allocation, FCFS/SJF/EASY policies, the EASY
// no-delay guarantee, node conservation under faults, and recovery of jobs
// caught by a node loss.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "batch/allocator.h"
#include "batch/job.h"
#include "batch/scheduler.h"
#include "batch/workload.h"
#include "cluster/cluster.h"
#include "sim/engine.h"

namespace hpcs::batch {
namespace {

cluster::ClusterConfig quiet_cluster(int nodes) {
  cluster::ClusterConfig config;
  config.nodes = nodes;
  config.spawn_daemons = false;
  return config;
}

/// A small job: `nodes` nodes, ~iterations x grain of work, conservative
/// estimate (2x), deterministic (no jitter, no run-speed variation).
JobSpec small_job(int id, SimTime arrival, int nodes, int iterations = 5,
                  SimDuration grain = 2 * kMillisecond) {
  JobSpec spec;
  spec.id = id;
  spec.arrival = arrival;
  spec.nodes = nodes;
  spec.ranks_per_node = 2;
  spec.iterations = iterations;
  spec.grain = grain;
  spec.estimate = 2 * ideal_runtime(spec);
  return spec;
}

BatchConfig deterministic_config(BatchPolicy policy) {
  BatchConfig config;
  config.policy = policy;
  config.mpi.run_speed_sigma = 0.0;
  config.mpi.compute_jitter = 0.0;
  return config;
}

// --- workload generation -----------------------------------------------------

TEST(BatchWorkloadTest, ArrivalStreamIsBitIdenticalPerSeed) {
  ArrivalConfig config;
  config.jobs = 50;
  const auto a = generate_arrivals(config, 42);
  const auto b = generate_arrivals(config, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].nodes, b[i].nodes);
    EXPECT_EQ(a[i].iterations, b[i].iterations);
    EXPECT_EQ(a[i].estimate, b[i].estimate);
  }
  const auto c = generate_arrivals(config, 43);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_diff |= a[i].arrival != c[i].arrival || a[i].nodes != c[i].nodes ||
                a[i].iterations != c[i].iterations;
  }
  EXPECT_TRUE(any_diff) << "different seeds must give different traces";
}

TEST(BatchWorkloadTest, GeneratorRespectsBounds) {
  ArrivalConfig config;
  config.jobs = 200;
  config.max_nodes = 3;
  const auto jobs = generate_arrivals(config, 7);
  ASSERT_EQ(jobs.size(), 200u);
  SimTime last = 0;
  for (const auto& j : jobs) {
    EXPECT_GE(j.nodes, 1);
    EXPECT_LE(j.nodes, 3);
    EXPECT_GE(j.iterations, 1);
    EXPECT_GE(j.arrival, last) << "arrivals must be non-decreasing";
    EXPECT_GE(j.estimate, ideal_runtime(j)) << "estimates are conservative";
    last = j.arrival;
  }
}

TEST(BatchWorkloadTest, SwfRoundTrip) {
  ArrivalConfig config;
  config.jobs = 12;
  const auto jobs = generate_arrivals(config, 5);
  SwfDefaults defaults;
  defaults.ranks_per_node = config.ranks_per_node;
  defaults.grain = config.grain;
  const auto parsed = parse_swf(format_swf(jobs), defaults);
  ASSERT_EQ(parsed.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(parsed[i].id, jobs[i].id);
    EXPECT_EQ(parsed[i].nodes, jobs[i].nodes);
    EXPECT_EQ(parsed[i].iterations, jobs[i].iterations);
    // Times survive to SWF's microsecond precision.
    EXPECT_NEAR(to_seconds(parsed[i].arrival), to_seconds(jobs[i].arrival),
                1e-6);
    EXPECT_NEAR(to_seconds(parsed[i].estimate), to_seconds(jobs[i].estimate),
                1e-6);
  }
  // A second round trip is exact: formatting is idempotent.
  EXPECT_EQ(format_swf(parsed), format_swf(parse_swf(format_swf(parsed))));
}

TEST(BatchWorkloadTest, SwfParsesCommentsAndRejectsGarbage) {
  const auto jobs = parse_swf(
      "; header comment\n"
      "\n"
      "1 0.5 -1 2.0 4 -1 -1 4 3.0 -1 1 ; trailing comment\n"
      "2 1.0 -1 1.0 -1 -1 -1 2 -1\n");
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].nodes, 4);
  EXPECT_EQ(jobs[0].arrival, 500 * kMillisecond);
  EXPECT_EQ(jobs[0].estimate, 3 * kSecond);
  EXPECT_EQ(jobs[1].nodes, 2);
  EXPECT_EQ(jobs[1].estimate, ideal_runtime(jobs[1]));  // falls back to runtime
  EXPECT_THROW(parse_swf("1 2 3\n"), std::invalid_argument);
  EXPECT_THROW(parse_swf("1 0.0 -1 bogus 4\n"), std::invalid_argument);
}

TEST(BatchWorkloadTest, SwfCommentOnlyTraceIsEmpty) {
  SwfParseStats stats;
  const auto jobs =
      parse_swf("; header\n;\n\n   \n; nothing but comments\n", {}, &stats);
  EXPECT_TRUE(jobs.empty());
  EXPECT_EQ(stats.jobs, 0);
  EXPECT_EQ(stats.dropped_lines, 0);
  EXPECT_TRUE(stats.warnings.empty());
}

TEST(BatchWorkloadTest, SwfMissingOptionalColumnsFallBack) {
  // Five columns is a legal line: nodes fall back to allocated processors
  // (column 5), the walltime estimate to the runtime, the user to 0.
  const auto jobs = parse_swf("7 0.5 -1 2.0 3\n");
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].id, 7);
  EXPECT_EQ(jobs[0].nodes, 3);
  EXPECT_EQ(jobs[0].user, 0);
  EXPECT_EQ(jobs[0].estimate, ideal_runtime(jobs[0]));
}

TEST(BatchWorkloadTest, SwfZeroNodeJobsThrowOrDropWithLineNumber) {
  const std::string trace =
      "1 0.0 -1 2.0 4\n"
      "2 1.0 -1 2.0 0 -1 -1 0\n"  // 0 procs in both columns 5 and 8
      "3 2.0 -1 2.0 4\n";
  try {
    parse_swf(trace);
    FAIL() << "strict parse accepted a 0-node job";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
  SwfDefaults lenient;
  lenient.lenient = true;
  SwfParseStats stats;
  const auto jobs = parse_swf(trace, lenient, &stats);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].id, 1);
  EXPECT_EQ(jobs[1].id, 3);
  EXPECT_EQ(stats.dropped_lines, 1);
  ASSERT_EQ(stats.warnings.size(), 1u);
  EXPECT_EQ(stats.warnings[0].first, 2);
}

TEST(BatchWorkloadTest, SwfNonMonotonicSubmitThrowsOrClampsCounted) {
  const std::string trace =
      "1 5.0 -1 2.0 2\n"
      "2 3.0 -1 2.0 2\n"  // submit runs backwards
      "3 4.0 -1 2.0 2\n";
  try {
    parse_swf(trace);
    FAIL() << "strict parse accepted a non-monotonic submit";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
  SwfDefaults lenient;
  lenient.lenient = true;
  SwfParseStats stats;
  const auto jobs = parse_swf(trace, lenient, &stats);
  ASSERT_EQ(jobs.size(), 3u);
  // Both defective submits clamp to the running maximum, 5.0s.
  EXPECT_EQ(jobs[1].arrival, jobs[0].arrival);
  EXPECT_EQ(jobs[2].arrival, jobs[0].arrival);
  EXPECT_EQ(stats.clamped_submits, 2);
  ASSERT_EQ(stats.warnings.size(), 2u);
  EXPECT_EQ(stats.warnings[0].first, 2);
  EXPECT_EQ(stats.warnings[1].first, 3);
}

TEST(BatchWorkloadTest, SwfNegativeRuntimeDroppedLeniently) {
  SwfDefaults lenient;
  lenient.lenient = true;
  SwfParseStats stats;
  const auto jobs =
      parse_swf("1 0.0 -1 -1 4\n2 1.0 -1 2.0 4\n", lenient, &stats);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].id, 2);
  EXPECT_EQ(stats.dropped_lines, 1);
}

// --- allocator ---------------------------------------------------------------

TEST(NodeAllocatorTest, PrefersContiguousBlockAlignedRuns) {
  NodeAllocator alloc(8, 4);
  const auto a = alloc.allocate(4);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_TRUE(alloc.last_allocation_contiguous());
  const auto b = alloc.allocate(2);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*b, (std::vector<int>{4, 5}));
  alloc.release(*a);
  // Best fit: a 2-node request should take the 2-node tail run, not carve
  // the freed 4-node block.
  const auto c = alloc.allocate(2);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(*c, (std::vector<int>{6, 7}));
  EXPECT_TRUE(alloc.last_allocation_contiguous());
}

TEST(NodeAllocatorTest, FallsBackToFragmentsOnlyWhenNeeded) {
  NodeAllocator alloc(8, 4);
  const auto a = alloc.allocate(3);  // 0-2
  const auto b = alloc.allocate(3);  // 3-5 (best-fit contiguous)
  ASSERT_TRUE(a && b);
  alloc.release(*a);  // free: 0-2, 6-7
  const auto c = alloc.allocate(5);  // must span both fragments
  ASSERT_TRUE(c.has_value());
  EXPECT_FALSE(alloc.last_allocation_contiguous());
  EXPECT_EQ(c->size(), 5u);
  EXPECT_EQ(alloc.free_count(), 0);
  EXPECT_EQ(alloc.stats().fragmented, 1u);
  EXPECT_FALSE(alloc.allocate(1).has_value());
}

TEST(NodeAllocatorTest, OfflineNodesLeaveThePool) {
  NodeAllocator alloc(4, 4);
  EXPECT_EQ(alloc.set_offline(0), NodeState::kFree);
  EXPECT_FALSE(alloc.allocate(4).has_value());
  const auto a = alloc.allocate(3);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, (std::vector<int>{1, 2, 3}));
  // Node 2 fails under the job: release frees the survivors only.
  EXPECT_EQ(alloc.set_offline(2), NodeState::kBusy);
  alloc.release(*a);
  EXPECT_EQ(alloc.free_count(), 2);
  EXPECT_EQ(alloc.offline_count(), 2);
  EXPECT_EQ(alloc.busy_count(), 0);
  alloc.check_conservation();
  alloc.set_online(0);
  alloc.set_online(2);
  EXPECT_EQ(alloc.free_count(), 4);
  EXPECT_TRUE(alloc.allocate(4).has_value());
  alloc.check_conservation();
}

TEST(NodeAllocatorTest, ReleasingAFreeNodeThrows) {
  NodeAllocator alloc(2, 2);
  EXPECT_THROW(alloc.release({0}), std::logic_error);
  EXPECT_THROW(alloc.allocate(0), std::invalid_argument);
  EXPECT_THROW(NodeAllocator(0), std::invalid_argument);
}

// --- scheduler: basic lifecycle ---------------------------------------------

TEST(BatchSchedulerTest, FcfsRunsEveryJobInArrivalOrder) {
  sim::Engine engine;
  cluster::Cluster cluster(engine, quiet_cluster(4));
  BatchScheduler sched(cluster, deterministic_config(BatchPolicy::kFcfs));
  sched.submit(small_job(1, 0, 2));
  sched.submit(small_job(2, 1 * kMillisecond, 2));
  sched.submit(small_job(3, 2 * kMillisecond, 4));
  sched.submit(small_job(4, 3 * kMillisecond, 1));
  engine.run_until(5 * kSecond);
  ASSERT_TRUE(sched.all_done());
  const auto& records = sched.records();
  ASSERT_EQ(records.size(), 4u);
  for (const auto& rec : records) {
    EXPECT_EQ(rec.state, JobState::kFinished);
    EXPECT_GT(rec.finish, rec.start);
    EXPECT_GE(rec.start, rec.spec.arrival);
  }
  // 1 and 2 run side by side; 3 needs the whole cluster; 4 arrived last and
  // under FCFS never overtakes 3.
  EXPECT_LT(records[1].start, records[2].start);
  EXPECT_GE(records[3].start, records[2].start);
  EXPECT_EQ(sched.backfills(), 0u);
  EXPECT_EQ(sched.allocator().busy_count(), 0);
  EXPECT_EQ(sched.allocator().free_count(), 4);
  const BatchMetrics m = sched.metrics();
  EXPECT_EQ(m.finished, 4);
  EXPECT_GT(m.makespan_s, 0.0);
  EXPECT_GT(m.utilization, 0.0);
  EXPECT_LE(m.utilization, 1.0);
  EXPECT_GE(m.mean_slowdown, 1.0);
  EXPECT_GT(m.jain_fairness, 0.0);
  EXPECT_LE(m.jain_fairness, 1.0 + 1e-12);
  EXPECT_GT(sched.measured_node_utilization(), 0.0);
}

TEST(BatchSchedulerTest, SjfReordersByEstimate) {
  sim::Engine engine;
  cluster::Cluster cluster(engine, quiet_cluster(2));
  BatchScheduler sched(cluster, deterministic_config(BatchPolicy::kSjf));
  // A long job holds the cluster while a long and a short job queue up; SJF
  // runs the short one first.
  sched.submit(small_job(1, 0, 2, 40));
  sched.submit(small_job(2, 1 * kMillisecond, 2, 40));
  sched.submit(small_job(3, 2 * kMillisecond, 2, 5));
  engine.run_until(5 * kSecond);
  ASSERT_TRUE(sched.all_done());
  const auto& records = sched.records();
  EXPECT_LT(records[2].start, records[1].start);
}

TEST(BatchSchedulerTest, RunIsDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    sim::Engine engine;
    cluster::ClusterConfig cc;  // with daemons: full noise stack
    cc.nodes = 2;
    cc.seed = seed;
    cluster::Cluster cluster(engine, cc);
    BatchConfig config;
    config.policy = BatchPolicy::kEasy;
    config.seed = seed;
    BatchScheduler sched(cluster, config);
    ArrivalConfig ac;
    ac.jobs = 8;
    ac.max_nodes = 2;
    ac.ranks_per_node = 4;
    ac.mean_interarrival = 20 * kMillisecond;
    sched.submit_all(generate_arrivals(ac, seed));
    engine.run_until(20 * kSecond);
    EXPECT_TRUE(sched.all_done());
    std::vector<std::pair<SimTime, SimTime>> times;
    for (const auto& rec : sched.records()) {
      times.emplace_back(rec.start, rec.finish);
    }
    return times;
  };
  EXPECT_EQ(run(11), run(11));
  EXPECT_NE(run(11), run(12));
}

// --- EASY backfill -----------------------------------------------------------

TEST(BatchSchedulerTest, EasyBackfillsAroundABlockedHead) {
  // J1 takes 3 of 4 nodes for a while; J2 (needs 4) blocks at the head; J3
  // (1 node, short) fits beside/before the reservation and jumps the queue.
  auto run = [](BatchPolicy policy) {
    sim::Engine engine;
    cluster::Cluster cluster(engine, quiet_cluster(4));
    BatchScheduler sched(cluster, deterministic_config(policy));
    sched.submit(small_job(1, 0, 3, 20));
    sched.submit(small_job(2, 1 * kMillisecond, 4, 5));
    sched.submit(small_job(3, 2 * kMillisecond, 1, 2));
    engine.run_until(5 * kSecond);
    EXPECT_TRUE(sched.all_done());
    return std::make_tuple(sched.records()[1].start, sched.records()[2].start,
                           sched.backfills(), sched.reservation_violations(),
                           sched.metrics());
  };
  const auto [fcfs_j2, fcfs_j3, fcfs_bf, fcfs_viol, fcfs_m] =
      run(BatchPolicy::kFcfs);
  const auto [easy_j2, easy_j3, easy_bf, easy_viol, easy_m] =
      run(BatchPolicy::kEasy);
  // FCFS: J3 waits behind the blocked J2.  EASY: J3 overtakes it.
  EXPECT_GE(fcfs_j3, fcfs_j2);
  EXPECT_EQ(fcfs_bf, 0u);
  EXPECT_LT(easy_j3, easy_j2);
  EXPECT_GE(easy_bf, 1u);
  // The no-delay guarantee: backfilling never pushed the head back, and the
  // head starts no later than under FCFS.
  EXPECT_EQ(easy_viol, 0u);
  EXPECT_LE(easy_j2, fcfs_j2);
  // Backfill squeezes more work into the same window.
  EXPECT_GE(easy_m.utilization, fcfs_m.utilization);
  EXPECT_LE(easy_m.makespan_s, fcfs_m.makespan_s + 1e-9);
}

TEST(BatchSchedulerTest, EasyNeverDelaysReservedHeadAcrossATrace) {
  // A whole seeded trace with conservative estimates: every promised
  // reservation is honoured (start <= promise) and no violation is counted.
  sim::Engine engine;
  cluster::Cluster cluster(engine, quiet_cluster(4));
  BatchConfig config = deterministic_config(BatchPolicy::kEasy);
  BatchScheduler sched(cluster, config);
  ArrivalConfig ac;
  ac.jobs = 25;
  ac.max_nodes = 4;
  ac.ranks_per_node = 2;
  ac.mean_interarrival = 10 * kMillisecond;
  ac.runtime_typical = 30 * kMillisecond;
  ac.grain = 2 * kMillisecond;
  ac.estimate_factor = 3.0;  // generous upper bound
  sched.submit_all(generate_arrivals(ac, 3));
  engine.run_until(60 * kSecond);
  ASSERT_TRUE(sched.all_done());
  EXPECT_EQ(sched.reservation_violations(), 0u);
  EXPECT_GE(sched.backfills(), 1u);
  for (const auto& rec : sched.records()) {
    ASSERT_EQ(rec.state, JobState::kFinished);
    if (rec.promised_start != kNoPromise) {
      EXPECT_LE(rec.start, rec.promised_start)
          << "job " << rec.spec.id << " started after its reservation";
    }
  }
}

// --- conservation & faults ---------------------------------------------------

TEST(BatchSchedulerTest, NodeCountsConservedAcrossDispatchCompleteFault) {
  sim::Engine engine;
  cluster::Cluster cluster(engine, quiet_cluster(4));
  BatchConfig config = deterministic_config(BatchPolicy::kEasy);
  config.node_faults.push_back({40 * kMillisecond, 1, false});
  config.node_faults.push_back({120 * kMillisecond, 1, true});
  config.node_faults.push_back({60 * kMillisecond, 3, false});
  config.node_faults.push_back({200 * kMillisecond, 3, true});
  BatchScheduler sched(cluster, config);
  ArrivalConfig ac;
  ac.jobs = 12;
  ac.max_nodes = 2;  // always fits the shrunken pool
  ac.ranks_per_node = 2;
  ac.mean_interarrival = 15 * kMillisecond;
  ac.runtime_typical = 25 * kMillisecond;
  ac.grain = 2 * kMillisecond;
  sched.submit_all(generate_arrivals(ac, 9));
  for (int step = 0; step < 3000 && !sched.all_done(); ++step) {
    engine.run_until(engine.now() + 10 * kMillisecond);
    // The invariant the issue pins: free + busy + offline == total, the
    // cached counts match a recount, and every busy node belongs to
    // exactly one running job.
    sched.allocator().check_conservation();
    std::vector<int> held;
    for (const auto& rec : sched.records()) {
      if (rec.state != JobState::kRunning) continue;
      held.insert(held.end(), rec.nodes.begin(), rec.nodes.end());
    }
    std::sort(held.begin(), held.end());
    EXPECT_TRUE(std::adjacent_find(held.begin(), held.end()) == held.end())
        << "a node is allocated to two running jobs";
    int busy_by_state = 0;
    for (int n = 0; n < sched.allocator().total(); ++n) {
      busy_by_state +=
          sched.allocator().state(n) == NodeState::kBusy ? 1 : 0;
    }
    // Nodes that failed under a still-draining job are Offline yet still in
    // the job's allocation, so held >= busy_by_state.
    EXPECT_GE(held.size(), static_cast<std::size_t>(busy_by_state));
  }
  ASSERT_TRUE(sched.all_done());
  EXPECT_EQ(sched.allocator().busy_count(), 0);
  EXPECT_EQ(sched.allocator().offline_count(), 0);
  EXPECT_EQ(sched.allocator().free_count(), 4);
  EXPECT_EQ(sched.node_failures(), 2u);
  for (const auto& rec : sched.records()) {
    EXPECT_EQ(rec.state, JobState::kFinished) << "job " << rec.spec.id;
  }
}

TEST(BatchSchedulerTest, JobQueuedDuringNodeOutageEventuallyRuns) {
  sim::Engine engine;
  cluster::Cluster cluster(engine, quiet_cluster(2));
  BatchConfig config = deterministic_config(BatchPolicy::kFcfs);
  // Node 1 dies under the first job and comes back 100ms later.
  config.node_faults.push_back({10 * kMillisecond, 1, false});
  config.node_faults.push_back({110 * kMillisecond, 1, true});
  BatchScheduler sched(cluster, config);
  sched.submit(small_job(1, 0, 2, 20));               // running at the fault
  sched.submit(small_job(2, 5 * kMillisecond, 2, 5));  // queued behind it
  engine.run_until(2 * kSecond);
  ASSERT_TRUE(sched.all_done());
  const auto& records = sched.records();
  // Job 1 was aborted by the node loss, resubmitted, and finished on the
  // repaired cluster; job 2 just waited the outage out.
  EXPECT_EQ(records[0].state, JobState::kFinished);
  EXPECT_EQ(records[0].resubmits, 1);
  EXPECT_EQ(records[1].state, JobState::kFinished);
  EXPECT_GE(records[1].start, 110 * kMillisecond);
  EXPECT_EQ(sched.node_failures(), 1u);
  EXPECT_GT(sched.metrics().finished, 0);
}

TEST(BatchSchedulerTest, FailedJobWithoutResubmitIsRecorded) {
  sim::Engine engine;
  cluster::Cluster cluster(engine, quiet_cluster(2));
  BatchConfig config = deterministic_config(BatchPolicy::kFcfs);
  config.resubmit_failed = false;
  config.node_faults.push_back({10 * kMillisecond, 0, false});
  BatchScheduler sched(cluster, config);
  sched.submit(small_job(1, 0, 2, 50));
  sched.submit(small_job(2, 5 * kMillisecond, 1, 3));
  engine.run_until(2 * kSecond);
  ASSERT_TRUE(sched.all_done());
  EXPECT_EQ(sched.records()[0].state, JobState::kFailed);
  EXPECT_EQ(sched.records()[1].state, JobState::kFinished);
  EXPECT_EQ(sched.metrics().failed, 1);
}

TEST(BatchSchedulerTest, RejectsImpossibleJobs) {
  sim::Engine engine;
  cluster::Cluster cluster(engine, quiet_cluster(2));
  BatchScheduler sched(cluster, deterministic_config(BatchPolicy::kFcfs));
  EXPECT_THROW(sched.submit(small_job(1, 0, 3)), std::invalid_argument);
  JobSpec bad = small_job(2, 0, 1);
  bad.ranks_per_node = 0;
  EXPECT_THROW(sched.submit(bad), std::invalid_argument);
}

// --- multi-queue / fairshare / preemption / reservations ---------------------

TEST(BatchSchedulerTest, MultiQueueRoutesByShapeAndRejectsMisfits) {
  sim::Engine engine;
  cluster::Cluster cluster(engine, quiet_cluster(4));
  BatchConfig config = deterministic_config(BatchPolicy::kEasy);
  QueueConfig express;
  express.name = "express";
  express.priority = 10;
  express.max_nodes = 1;
  QueueConfig workq;
  workq.name = "workq";
  workq.max_nodes = 2;
  config.queues = {express, workq};
  BatchScheduler sched(cluster, config);
  sched.submit(small_job(1, 0, 1));  // routes to express (first admitting)
  sched.submit(small_job(2, 0, 2));  // too wide for express -> workq
  sched.submit(small_job(3, 0, 4));  // no queue admits 4 nodes
  engine.run_until(2 * kSecond);
  ASSERT_TRUE(sched.all_done());
  const auto& records = sched.records();
  EXPECT_EQ(records[0].queue, 0);
  EXPECT_EQ(records[0].state, JobState::kFinished);
  EXPECT_EQ(records[1].queue, 1);
  EXPECT_EQ(records[1].state, JobState::kFinished);
  EXPECT_EQ(records[2].state, JobState::kRejected);
  const BatchMetrics m = sched.metrics();
  EXPECT_EQ(m.rejected, 1);
  ASSERT_EQ(m.queues.size(), 2u);
  EXPECT_EQ(m.queues[0].name, "express");
  EXPECT_EQ(m.queues[0].finished, 1);
  EXPECT_EQ(m.queues[1].name, "workq");
  EXPECT_EQ(m.queues[1].finished, 1);
}

TEST(BatchSchedulerTest, QueueNodeLimitCapsConcurrencyWithoutBlockingOthers) {
  sim::Engine engine;
  cluster::Cluster cluster(engine, quiet_cluster(4));
  BatchConfig config = deterministic_config(BatchPolicy::kEasy);
  QueueConfig capped;
  capped.name = "capped";
  capped.node_limit = 1;  // at most one node running at once
  capped.max_nodes = 1;
  QueueConfig open;
  open.name = "open";
  config.queues = {capped, open};
  BatchScheduler sched(cluster, config);
  sched.submit(small_job(1, 0, 1, 20));
  sched.submit(small_job(2, 0, 1, 20));  // capped: must wait for job 1
  JobSpec wide = small_job(3, 0, 2, 5);
  wide.nodes = 2;
  sched.submit(wide);  // open queue: must not wait for the capped backlog
  engine.run_until(2 * kSecond);
  ASSERT_TRUE(sched.all_done());
  const auto& records = sched.records();
  // The capped queue serialised its two jobs...
  EXPECT_GE(records[1].start, records[0].finish);
  // ...while the open queue's job ran immediately beside them.
  EXPECT_LT(records[2].start, records[0].finish);
}

TEST(BatchSchedulerTest, FairshareFavoursTheLightUser) {
  sim::Engine engine;
  cluster::Cluster cluster(engine, quiet_cluster(2));
  BatchConfig config = deterministic_config(BatchPolicy::kEasy);
  config.fairshare.enabled = true;
  config.fairshare.halflife = 60 * kSecond;  // no meaningful decay in-test
  BatchScheduler sched(cluster, config);
  JobSpec blocker = small_job(1, 0, 2, 30);
  blocker.user = 1;
  sched.submit(blocker);  // charges user 1 when it finishes
  JobSpec heavy = small_job(2, 1 * kMillisecond, 2, 5);
  heavy.user = 1;
  sched.submit(heavy);
  JobSpec light = small_job(3, 2 * kMillisecond, 2, 5);
  light.user = 2;
  sched.submit(light);
  engine.run_until(2 * kSecond);
  ASSERT_TRUE(sched.all_done());
  const auto& records = sched.records();
  // Despite arriving later, user 2's job overtakes user 1's second job:
  // user 1 already burned node-seconds on the blocker.
  EXPECT_LT(records[2].start, records[1].start);
  EXPECT_GT(sched.metrics().user_fairness, 0.0);
}

TEST(BatchSchedulerTest, PreemptionSuspendsResumesAndBanksIterations) {
  sim::Engine engine;
  cluster::Cluster cluster(engine, quiet_cluster(2));
  BatchConfig config = deterministic_config(BatchPolicy::kEasy);
  QueueConfig express;
  express.name = "express";
  express.priority = 10;
  express.max_nodes = 2;
  express.max_walltime = 50 * kMillisecond;  // keeps the long victim out
  QueueConfig workq;
  workq.name = "workq";
  workq.priority = 0;
  workq.max_nodes = 2;
  config.queues = {express, workq};
  config.preempt.enabled = true;
  BatchScheduler sched(cluster, config);
  JobSpec victim = small_job(1, 0, 2, 40);  // ~80ms of work
  victim.estimate = 4 * ideal_runtime(victim);
  sched.submit(victim);
  // Routed to express (priority 10) while the victim holds every node.
  JobSpec urgent = small_job(2, 30 * kMillisecond, 2, 5);
  sched.submit(urgent);
  engine.run_until(5 * kSecond);
  ASSERT_TRUE(sched.all_done());
  const auto& records = sched.records();
  EXPECT_EQ(records[0].state, JobState::kFinished);
  EXPECT_EQ(records[0].preempts, 1);
  // The suspension kept the sync points the ranks had all passed...
  EXPECT_GT(records[0].committed_iters, 0);
  EXPECT_LT(records[0].committed_iters, victim.iterations);
  // ...and the express job ran during the victim's suspension.
  EXPECT_EQ(records[1].state, JobState::kFinished);
  EXPECT_LT(records[1].start, records[0].finish);
  EXPECT_EQ(sched.preemptions(), 1u);
  const BatchMetrics m = sched.metrics();
  EXPECT_EQ(m.preemptions, 1);
  EXPECT_GT(m.preempt_lost_s, 0.0);
}

TEST(BatchSchedulerTest, ReservationWindowBlocksOverlappingJobs) {
  sim::Engine engine;
  cluster::Cluster cluster(engine, quiet_cluster(2));
  BatchConfig config = deterministic_config(BatchPolicy::kEasy);
  Reservation maint;
  maint.name = "maint";
  maint.start = 40 * kMillisecond;
  maint.end = 100 * kMillisecond;
  maint.nodes = 2;
  config.reservations = {maint};
  BatchScheduler sched(cluster, config);
  // Fits before the window (estimate 20ms < 40ms) - runs immediately.
  sched.submit(small_job(1, 0, 2, 5));
  // Estimate 80ms would cross into the window - held until it closes.
  sched.submit(small_job(2, 1 * kMillisecond, 2, 20));
  engine.run_until(2 * kSecond);
  ASSERT_TRUE(sched.all_done());
  const auto& records = sched.records();
  EXPECT_LT(records[0].start, 40 * kMillisecond);
  EXPECT_GE(records[1].start, 100 * kMillisecond);
  EXPECT_EQ(sched.reservation_shortfalls(), 0u);
  EXPECT_EQ(sched.allocator().free_count(), 2);  // holds released
}

TEST(BatchSchedulerTest, PolicyStackIsDeterministicUnderFaultCampaign) {
  auto run = [](std::uint64_t seed) {
    sim::Engine engine;
    cluster::Cluster cluster(engine, quiet_cluster(4));
    BatchConfig config = deterministic_config(BatchPolicy::kEasy);
    QueueConfig express;
    express.name = "express";
    express.priority = 5;
    express.max_nodes = 1;
    QueueConfig workq;
    workq.name = "workq";
    config.queues = {express, workq};
    config.fairshare.enabled = true;
    config.preempt.enabled = true;
    config.campaign.nodes = 4;
    config.campaign.node_mtbf = 400 * kMillisecond;
    config.campaign.start = 10 * kMillisecond;
    config.campaign.horizon = 300 * kMillisecond;
    config.campaign_repair = 50 * kMillisecond;
    config.seed = seed;
    BatchScheduler sched(cluster, config);
    ArrivalConfig ac;
    ac.jobs = 16;
    ac.max_nodes = 2;
    ac.ranks_per_node = 2;
    ac.mean_interarrival = 10 * kMillisecond;
    ac.runtime_typical = 30 * kMillisecond;
    ac.grain = 2 * kMillisecond;
    ac.users = 3;
    ac.user_zipf = 1.0;
    sched.submit_all(generate_arrivals(ac, seed));
    engine.run_until(30 * kSecond);
    EXPECT_TRUE(sched.all_done());
    std::vector<std::tuple<SimTime, SimTime, int, int>> fingerprint;
    for (const auto& rec : sched.records()) {
      fingerprint.emplace_back(rec.start, rec.finish, rec.preempts,
                               rec.committed_iters);
    }
    return fingerprint;
  };
  EXPECT_EQ(run(21), run(21));
  EXPECT_NE(run(21), run(22));
}

// --- cluster integration -----------------------------------------------------

TEST(BatchClusterJobTest, SubsetJobRunsOnExactlyItsNodes) {
  sim::Engine engine;
  cluster::Cluster cluster(engine, quiet_cluster(4));
  mpi::MpiConfig mc;
  mc.nranks = 4;
  mc.run_speed_sigma = 0.0;
  mpi::Program p;
  p.barrier().compute(milliseconds(1)).barrier();
  cluster::ClusterJob job(cluster, mc, p, {1, 3});
  EXPECT_EQ(job.node_of_rank(0), 1);
  EXPECT_EQ(job.node_of_rank(1), 1);
  EXPECT_EQ(job.node_of_rank(2), 3);
  EXPECT_EQ(job.node_of_rank(3), 3);
  // Nodes 0 and 2 never see an orted or a rank: their task tables stay at
  // the boot population.
  const std::size_t idle0 = cluster.node(0).task_count();
  const std::size_t idle2 = cluster.node(2).task_count();
  job.launch(kernel::Policy::kNormal);
  engine.run_until(seconds(1));
  ASSERT_TRUE(job.finished());
  EXPECT_FALSE(job.failed());
  EXPECT_EQ(cluster.node(0).task_count(), idle0);
  EXPECT_EQ(cluster.node(2).task_count(), idle2);
  EXPECT_GT(cluster.node(1).task_count(), cluster.node(0).task_count());
}

TEST(BatchClusterJobTest, DisjointJobsOverlapInTime) {
  sim::Engine engine;
  cluster::Cluster cluster(engine, quiet_cluster(4));
  mpi::MpiConfig mc;
  mc.nranks = 4;
  mc.run_speed_sigma = 0.0;
  mpi::Program p;
  p.barrier().compute(milliseconds(5)).barrier();
  cluster::ClusterJob a(cluster, mc, p, {0, 1});
  cluster::ClusterJob b(cluster, mc, p, {2, 3});
  a.launch(kernel::Policy::kNormal);
  b.launch(kernel::Policy::kNormal);
  engine.run_until(seconds(1));
  ASSERT_TRUE(a.finished());
  ASSERT_TRUE(b.finished());
  // They ran concurrently, not serialised.
  EXPECT_LT(a.start_time(), b.finish_time());
  EXPECT_LT(b.start_time(), a.finish_time());
}

TEST(BatchClusterJobTest, AbortKillsAllRanksAndFiresFinish) {
  sim::Engine engine;
  cluster::Cluster cluster(engine, quiet_cluster(2));
  mpi::MpiConfig mc;
  mc.nranks = 4;
  mc.run_speed_sigma = 0.0;
  mpi::Program p;
  p.barrier().compute(seconds(10)).barrier();  // would run far too long
  cluster::ClusterJob job(cluster, mc, p, {0, 1});
  bool finish_fired = false;
  job.set_on_finish([&] { finish_fired = true; });
  job.launch(kernel::Policy::kNormal);
  engine.run_until(5 * kMillisecond);
  EXPECT_FALSE(job.finished());
  job.abort();
  engine.run_until(50 * kMillisecond);
  EXPECT_TRUE(job.finished());
  EXPECT_TRUE(job.failed());
  EXPECT_TRUE(finish_fired);
}

TEST(BatchClusterJobTest, AbortDuringLaunchWindowStillFinishes) {
  // Abort before the orteds have forked any rank: the never-born ranks are
  // drained and the job still reaches finished().
  sim::Engine engine;
  cluster::Cluster cluster(engine, quiet_cluster(2));
  mpi::MpiConfig mc;
  mc.nranks = 4;
  mc.run_speed_sigma = 0.0;
  mpi::Program p;
  p.barrier().compute(seconds(1)).barrier();
  cluster::ClusterJob job(cluster, mc, p, {0, 1});
  job.launch(kernel::Policy::kNormal);
  job.abort();  // orteds are still in their setup compute
  engine.run_until(seconds(1));
  EXPECT_TRUE(job.finished());
  EXPECT_TRUE(job.failed());
}

TEST(BatchClusterJobTest, RejectsBadNodeSets) {
  sim::Engine engine;
  cluster::Cluster cluster(engine, quiet_cluster(2));
  mpi::MpiConfig mc;
  mc.nranks = 4;
  mpi::Program p;
  p.barrier();
  EXPECT_THROW(cluster::ClusterJob(cluster, mc, p, {}),
               std::invalid_argument);
  EXPECT_THROW(cluster::ClusterJob(cluster, mc, p, {0, 0}),
               std::invalid_argument);
  EXPECT_THROW(cluster::ClusterJob(cluster, mc, p, {0, 2}),
               std::invalid_argument);
  EXPECT_THROW(cluster::ClusterJob(cluster, mc, p, {0, 1, -1}),
               std::invalid_argument);
  mc.nranks = 3;
  EXPECT_THROW(cluster::ClusterJob(cluster, mc, p, {0, 1}),
               std::invalid_argument);
}

// --- the two-level claim -----------------------------------------------------

TEST(BatchTwoLevelTest, HplReducesSlowdownAndMakespanUnderNoise) {
  // The same arrival trace on the same noisy 4-node cluster: the HPC class
  // shortens every job's service time, which compounds through the queue
  // into lower mean bounded slowdown and a shorter makespan.
  auto run = [](bool hpl) {
    sim::Engine engine;
    cluster::ClusterConfig cc;
    cc.nodes = 4;
    cc.install_hpl = hpl;
    cc.noise.intensity = 2.0;
    cc.noise.frequency = 0.2;  // a busy production node
    cc.seed = 21;
    cluster::Cluster cluster(engine, cc);
    BatchConfig config;
    config.policy = BatchPolicy::kEasy;
    config.rank_policy = hpl ? kernel::Policy::kHpc : kernel::Policy::kNormal;
    config.mpi.run_speed_sigma = 0.0;
    config.seed = 21;
    BatchScheduler sched(cluster, config);
    ArrivalConfig ac;
    ac.jobs = 10;
    ac.max_nodes = 4;
    ac.ranks_per_node = 8;  // fully load each node so daemons must intrude
    ac.mean_interarrival = 30 * kMillisecond;
    ac.runtime_typical = 60 * kMillisecond;
    ac.grain = 5 * kMillisecond;
    sched.submit_all(generate_arrivals(ac, 21));
    engine.run_until(120 * kSecond);
    EXPECT_TRUE(sched.all_done());
    return sched.metrics();
  };
  const BatchMetrics cfs = run(false);
  const BatchMetrics hpl = run(true);
  ASSERT_EQ(cfs.finished, 10);
  ASSERT_EQ(hpl.finished, 10);
  EXPECT_LT(hpl.mean_slowdown, cfs.mean_slowdown);
  EXPECT_LT(hpl.makespan_s, cfs.makespan_s);
}

}  // namespace
}  // namespace hpcs::batch
