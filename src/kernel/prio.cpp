#include "kernel/prio.h"

#include <stdexcept>

namespace hpcs::kernel {

const char* policy_name(Policy policy) {
  switch (policy) {
    case Policy::kFifo: return "SCHED_FIFO";
    case Policy::kRR: return "SCHED_RR";
    case Policy::kHpc: return "SCHED_HPC";
    case Policy::kNormal: return "SCHED_NORMAL";
    case Policy::kBatch: return "SCHED_BATCH";
    case Policy::kIdle: return "SCHED_IDLE";
  }
  return "?";
}

std::uint32_t nice_to_weight(int nice) {
  // Linux kernel/sched.c prio_to_weight[] (2.6.34).
  static constexpr std::array<std::uint32_t, 40> kTable = {
      /* -20 */ 88761, 71755, 56483, 46273, 36291,
      /* -15 */ 29154, 23254, 18705, 14949, 11916,
      /* -10 */ 9548, 7620, 6100, 4904, 3906,
      /*  -5 */ 3121, 2501, 1991, 1586, 1277,
      /*   0 */ 1024, 820, 655, 526, 423,
      /*   5 */ 335, 272, 215, 172, 137,
      /*  10 */ 110, 87, 70, 56, 45,
      /*  15 */ 36, 29, 23, 18, 15,
  };
  if (nice < kMinNice || nice > kMaxNice) {
    throw std::out_of_range("nice value out of [-20, 19]");
  }
  return kTable[static_cast<std::size_t>(nice - kMinNice)];
}

}  // namespace hpcs::kernel
