#include "kernel/cfs.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "kernel/kernel.h"
#include "kernel/load_balancer.h"

namespace hpcs::kernel {
namespace {

Task& task_of(RbNode& node) { return *static_cast<Task*>(node.owner); }
const Task& task_of(const RbNode& node) {
  return *static_cast<const Task*>(node.owner);
}

// Timeline order: (vruntime, tid).  The tid tie-break keeps runs
// deterministic regardless of insertion history.
bool vruntime_less(const RbNode& a, const RbNode& b, const void*) {
  const Task& ta = task_of(a);
  const Task& tb = task_of(b);
  if (ta.vruntime != tb.vruntime) return ta.vruntime < tb.vruntime;
  return ta.tid < tb.tid;
}

}  // namespace

struct CfsClass::CpuQ {
  CpuQ() : tree(&vruntime_less) {}
  RbTree tree;
  std::uint64_t min_vruntime = 0;
  std::uint64_t load = 0;  // weighted load of runnable tasks (queued + curr)
  int nr = 0;              // runnable tasks (queued + curr)
  Task* curr = nullptr;
};

CfsClass::CfsClass(Kernel& kernel) : SchedClass(kernel) {
  const int ncpu = kernel.topology().num_cpus();
  queues_.reserve(static_cast<std::size_t>(ncpu));
  for (int i = 0; i < ncpu; ++i) queues_.push_back(std::make_unique<CpuQ>());
  balancer_ = std::make_unique<LoadBalancer>(kernel, *this);
}

CfsClass::~CfsClass() = default;

CfsClass::CpuQ& CfsClass::q(hw::CpuId cpu) {
  return *queues_[static_cast<std::size_t>(cpu)];
}
const CfsClass::CpuQ& CfsClass::q(hw::CpuId cpu) const {
  return *queues_[static_cast<std::size_t>(cpu)];
}

void CfsClass::place_entity(CpuQ& cq, Task& t, bool initial) {
  if (initial) {
    // START_DEBIT: a forked child starts one granularity behind the fair
    // front so it cannot immediately preempt everyone.
    t.vruntime =
        std::max(t.vruntime,
                 cq.min_vruntime + kernel_.config().cfs.min_granularity);
  } else {
    // Bounded sleeper credit: a waking task is placed at most half a
    // latency period before the fair front.
    const std::uint64_t thresh = kernel_.config().cfs.sched_latency / 2;
    const std::uint64_t floor_v =
        cq.min_vruntime > thresh ? cq.min_vruntime - thresh : 0;
    t.vruntime = std::max(t.vruntime, floor_v);
  }
}

void CfsClass::update_min_vruntime(CpuQ& cq) {
  std::uint64_t candidate = cq.min_vruntime;
  bool have = false;
  if (cq.curr != nullptr) {
    candidate = cq.curr->vruntime;
    have = true;
  }
  if (RbNode* left = cq.tree.leftmost()) {
    const std::uint64_t lv = task_of(*left).vruntime;
    candidate = have ? std::min(candidate, lv) : lv;
    have = true;
  }
  if (have) cq.min_vruntime = std::max(cq.min_vruntime, candidate);
}

void CfsClass::enqueue(hw::CpuId cpu, Task& t, bool wakeup) {
  CpuQ& cq = q(cpu);
  assert(!t.cfs_queued);
  t.cfs_node.owner = &t;
  if (wakeup) {
    place_entity(cq, t, /*initial=*/false);
  } else if (t.state == TaskState::kNew) {
    place_entity(cq, t, /*initial=*/true);
  } else if (t.vruntime < cq.min_vruntime) {
    // Migrated in from a queue with a smaller clock: renormalise so the
    // newcomer does not monopolise the CPU.
    t.vruntime = cq.min_vruntime;
  }
  cq.tree.insert(t.cfs_node);
  t.cfs_queued = true;
  t.slice_exec = 0;
  cq.nr += 1;
  cq.load += t.weight;
  total_runnable_ += 1;
}

void CfsClass::dequeue(hw::CpuId cpu, Task& t, bool sleeping) {
  CpuQ& cq = q(cpu);
  if (t.cfs_queued) {
    cq.tree.erase(t.cfs_node);
    t.cfs_queued = false;
  } else if (cq.curr != &t) {
    // Neither queued nor running here: a double dequeue.  Proceeding would
    // silently underflow nr/load/total_runnable_ and poison load balancing.
    throw std::logic_error("CfsClass::dequeue: task neither queued nor curr");
  }
  // else: the task is cq.curr (running) and owns no tree node.
  cq.nr -= 1;
  cq.load -= t.weight;
  total_runnable_ -= 1;
  if (sleeping) t.last_dequeue_time = kernel_.now();
  update_min_vruntime(cq);
}

Task* CfsClass::pick_next(hw::CpuId cpu) {
  CpuQ& cq = q(cpu);
  RbNode* left = cq.tree.leftmost();
  if (left == nullptr) return nullptr;
  Task& t = task_of(*left);
  cq.tree.erase(*left);
  t.cfs_queued = false;
  return &t;
}

void CfsClass::put_prev(hw::CpuId cpu, Task& t) {
  CpuQ& cq = q(cpu);
  assert(!t.cfs_queued);
  t.cfs_node.owner = &t;
  cq.tree.insert(t.cfs_node);
  t.cfs_queued = true;
  t.last_dequeue_time = kernel_.now();
}

void CfsClass::set_curr(hw::CpuId cpu, Task& t) {
  q(cpu).curr = &t;
  t.slice_exec = 0;
}

void CfsClass::clear_curr(hw::CpuId cpu, Task& t) {
  CpuQ& cq = q(cpu);
  if (cq.curr == &t) cq.curr = nullptr;
  update_min_vruntime(cq);
}

void CfsClass::update_curr(hw::CpuId cpu, Task& t, SimDuration delta) {
  t.vruntime += delta * kNice0Load / t.weight;
  t.slice_exec += delta;
  update_min_vruntime(q(cpu));
}

SimDuration CfsClass::sched_slice(hw::CpuId cpu, const Task& t) const {
  const CpuQ& cq = q(cpu);
  const auto& p = kernel_.config().cfs;
  const int nr = std::max(cq.nr, 1);
  const SimDuration period =
      std::max(p.sched_latency,
               static_cast<SimDuration>(nr) * p.min_granularity);
  const std::uint64_t load = std::max<std::uint64_t>(cq.load, t.weight);
  const SimDuration slice = period * t.weight / load;
  return std::max(slice, p.min_granularity);
}

void CfsClass::task_tick(hw::CpuId cpu, Task& t) {
  CpuQ& cq = q(cpu);
  if (cq.tree.empty()) return;  // nothing to preempt for
  const SimDuration slice = sched_slice(cpu, t);
  if (t.slice_exec >= slice) {
    kernel_.resched_cpu(cpu);
    return;
  }
  // Also preempt when the leftmost waiter has fallen a full slice behind.
  const Task& left = task_of(*cq.tree.leftmost());
  if (t.vruntime > left.vruntime && t.vruntime - left.vruntime > slice) {
    kernel_.resched_cpu(cpu);
  }
}

void CfsClass::yield_task(hw::CpuId cpu, Task& t) {
  CpuQ& cq = q(cpu);
  // Push the yielder to the right edge of the timeline (O(1) via the
  // rightmost cache).
  if (RbNode* right = cq.tree.rightmost()) {
    t.vruntime = std::max(t.vruntime, task_of(*right).vruntime + 1);
  }
}

bool CfsClass::wakeup_preempt(hw::CpuId cpu, Task& curr, Task& waking) {
  (void)cpu;
  if (waking.policy == Policy::kBatch) return false;
  const auto& p = kernel_.config().cfs;
  // Scale the granularity by the waker's weight like wakeup_gran().
  const SimDuration gran = p.wakeup_granularity * kNice0Load / waking.weight;
  return curr.vruntime > waking.vruntime &&
         curr.vruntime - waking.vruntime > gran;
}

hw::CpuId CfsClass::select_cpu(Task& t, bool is_fork) {
  const auto& topo = kernel_.topology();
  const int ncpu = topo.num_cpus();
  const hw::CpuId prev = t.cpu;

  auto allowed = [&](hw::CpuId c) {
    return mask_has(t.affinity, c) && kernel_.cpu_is_online(c);
  };

  if (is_fork) {
    // SD_BALANCE_FORK: system-wide idlest CPU.  Like find_idlest_group,
    // group (core) occupancy is considered before per-CPU state so children
    // spread across cores before doubling up on SMT siblings.
    auto core_nr = [&](hw::CpuId c) {
      int nr = 0;
      for (hw::CpuId sib : topo.cpus_of_core(topo.core_of(c))) {
        nr += kernel_.nr_running(sib);
      }
      return nr;
    };
    hw::CpuId best = hw::kInvalidCpu;
    int best_core_nr = 0;
    int best_nr = 0;
    std::uint64_t best_load = 0;
    for (hw::CpuId c = 0; c < ncpu; ++c) {
      if (!allowed(c)) continue;
      const int cnr = core_nr(c);
      const int nr = kernel_.nr_running(c);
      const std::uint64_t load = cpu_load(c);
      if (best == hw::kInvalidCpu || cnr < best_core_nr ||
          (cnr == best_core_nr &&
           (nr < best_nr || (nr == best_nr && load < best_load)))) {
        best = c;
        best_core_nr = cnr;
        best_nr = nr;
        best_load = load;
      }
    }
    return best == hw::kInvalidCpu ? prev : best;
  }

  // Wakeup: stick to prev unless a strictly less busy CPU exists nearby.
  if (prev != hw::kInvalidCpu && allowed(prev) && kernel_.cpu_idle(prev)) {
    return prev;
  }
  hw::CpuId best = (prev != hw::kInvalidCpu && allowed(prev)) ? prev
                                                              : hw::kInvalidCpu;
  int best_nr = best == hw::kInvalidCpu ? 1 << 30 : kernel_.nr_running(best);
  std::uint64_t best_load = best == hw::kInvalidCpu ? ~0ULL : cpu_load(best);
  // Visit same-chip CPUs first so affine wakeups stay local on ties.
  std::vector<hw::CpuId> order;
  order.reserve(static_cast<std::size_t>(ncpu));
  if (prev != hw::kInvalidCpu) {
    for (hw::CpuId c : topo.cpus_of_chip(topo.chip_of(prev))) {
      order.push_back(c);
    }
    for (hw::CpuId c = 0; c < ncpu; ++c) {
      if (topo.chip_of(c) != topo.chip_of(prev)) order.push_back(c);
    }
  } else {
    for (hw::CpuId c = 0; c < ncpu; ++c) order.push_back(c);
  }
  for (hw::CpuId c : order) {
    if (!allowed(c)) continue;
    const int nr = kernel_.nr_running(c);
    const std::uint64_t load = cpu_load(c);
    if (nr < best_nr || (nr == best_nr && load < best_load)) {
      best = c;
      best_nr = nr;
      best_load = load;
    }
  }
  return best == hw::kInvalidCpu ? 0 : best;
}

void CfsClass::tick_balance(hw::CpuId cpu) { balancer_->tick_balance(cpu); }

bool CfsClass::newidle_balance(hw::CpuId cpu) {
  return balancer_->newidle(cpu);
}

int CfsClass::nr_runnable(hw::CpuId cpu) const { return q(cpu).nr; }

int CfsClass::total_runnable() const { return total_runnable_; }

std::uint64_t CfsClass::cpu_load(hw::CpuId cpu) const { return q(cpu).load; }

int CfsClass::nr_queued(hw::CpuId cpu) const {
  const CpuQ& cq = q(cpu);
  return static_cast<int>(cq.tree.size());
}

Task* CfsClass::running_task(hw::CpuId cpu) const { return q(cpu).curr; }

std::uint64_t CfsClass::min_vruntime(hw::CpuId cpu) const {
  return q(cpu).min_vruntime;
}

std::uint64_t CfsClass::vruntime_spread(hw::CpuId cpu) const {
  const CpuQ& cq = q(cpu);
  std::uint64_t lo = ~0ULL, hi = 0;
  bool have = false;
  if (cq.curr != nullptr) {
    lo = hi = cq.curr->vruntime;
    have = true;
  }
  for (RbNode* n = cq.tree.leftmost(); n != nullptr; n = RbTree::next(n)) {
    const std::uint64_t v = task_of(*n).vruntime;
    lo = have ? std::min(lo, v) : v;
    hi = have ? std::max(hi, v) : v;
    have = true;
  }
  return have ? hi - lo : 0;
}

Task* CfsClass::first_queued(hw::CpuId cpu) const {
  RbNode* n = q(cpu).tree.leftmost();
  return n != nullptr ? &task_of(*n) : nullptr;
}

Task* CfsClass::next_queued(Task& t) {
  RbNode* n = RbTree::next(&t.cfs_node);
  return n != nullptr ? &task_of(*n) : nullptr;
}

const LoadBalancer& CfsClass::balancer() const { return *balancer_; }

bool CfsClass::task_hot(const Task& t) const {
  if (t.last_dequeue_time == 0) return false;
  const SimTime now = kernel_.now();
  return now - t.last_dequeue_time < kernel_.config().cfs.hot_time;
}

void CfsClass::on_topology_change() { balancer_->on_domains_rebuilt(); }

void CfsClass::audit_cpu(hw::CpuId cpu, const Task* rq_current,
                         std::vector<std::string>& errors) const {
  const CpuQ& cq = q(cpu);
  auto fail = [&](const std::string& msg) {
    errors.push_back("cfs cpu" + std::to_string(cpu) + ": " + msg);
  };
  if (cq.tree.validate() < 0) fail("rbtree violates red-black properties");
  int count = 0;
  std::uint64_t load = 0;
  const RbNode* last = nullptr;
  for (RbNode* n = cq.tree.leftmost(); n != nullptr; n = RbTree::next(n)) {
    const Task& t = task_of(*n);
    ++count;
    load += t.weight;
    if (!t.cfs_queued) fail("queued task " + t.name + " has cfs_queued=false");
    if (t.state != TaskState::kRunnable) {
      fail("queued task " + t.name + " in state " +
           task_state_name(t.state));
    }
    if (t.cpu != cpu) {
      fail("queued task " + t.name + " claims cpu " + std::to_string(t.cpu));
    }
    last = n;
  }
  if (static_cast<std::size_t>(count) != cq.tree.size()) {
    fail("leftmost-chain walk found " + std::to_string(count) +
         " nodes, tree.size()=" + std::to_string(cq.tree.size()));
  }
  if (last != cq.tree.rightmost()) fail("rightmost cache is stale");
  int nr = count;
  if (cq.curr != nullptr) {
    nr += 1;
    load += cq.curr->weight;
    if (rq_current != cq.curr) {
      fail("class curr " + cq.curr->name + " is not the CPU's current task");
    }
  }
  if (nr != cq.nr) {
    fail("nr=" + std::to_string(cq.nr) + " but recount=" + std::to_string(nr));
  }
  if (load != cq.load) {
    fail("load=" + std::to_string(cq.load) +
         " but recount=" + std::to_string(load));
  }
}

}  // namespace hpcs::kernel
