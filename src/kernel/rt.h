// The real-time scheduling class: SCHED_FIFO and SCHED_RR.
//
// 99 priority levels with per-level FIFO lists, RR timeslice rotation, and
// the push/pull overload balancing of the Linux RT scheduler.  Section IV of
// the paper shows why running HPC ranks here is not enough: RT balancing is
// *more* eager than CFS balancing (any idle CPU immediately pulls queued RT
// tasks), and the migration/N kthreads themselves live at RT prio 99 and
// preempt SCHED_FIFO ranks.
#pragma once

#include <array>
#include <deque>
#include <memory>
#include <vector>

#include "kernel/sched_class.h"

namespace hpcs::kernel {

class RtClass : public SchedClass {
 public:
  explicit RtClass(Kernel& kernel);
  ~RtClass() override;

  const char* name() const override { return "rt"; }
  bool owns(Policy policy) const override { return is_rt_policy(policy); }

  void enqueue(hw::CpuId cpu, Task& t, bool wakeup) override;
  void dequeue(hw::CpuId cpu, Task& t, bool sleeping) override;
  Task* pick_next(hw::CpuId cpu) override;
  void put_prev(hw::CpuId cpu, Task& t) override;
  void set_curr(hw::CpuId cpu, Task& t) override;
  void clear_curr(hw::CpuId cpu, Task& t) override;
  void task_tick(hw::CpuId cpu, Task& t) override;
  void yield_task(hw::CpuId cpu, Task& t) override;
  bool wakeup_preempt(hw::CpuId cpu, Task& curr, Task& waking) override;
  hw::CpuId select_cpu(Task& t, bool is_fork) override;
  void tick_balance(hw::CpuId cpu) override;
  bool newidle_balance(hw::CpuId cpu) override;
  int nr_runnable(hw::CpuId cpu) const override;
  int total_runnable() const override;
  /// Hotplug drain must succeed even when the runqueue is throttled, which
  /// makes pick_next refuse queued tasks — so bypass the throttle here.
  Task* dequeue_any(hw::CpuId cpu) override;
  void audit_cpu(hw::CpuId cpu, const Task* rq_current,
                 std::vector<std::string>& errors) const override;

  /// Highest queued (not running) priority on `cpu`, or 0 when none.
  int highest_queued_prio(hw::CpuId cpu) const;
  Task* running_task(hw::CpuId cpu) const;

  /// RT bandwidth accounting (sched_rt_runtime_us / sched_rt_period_us):
  /// called by the kernel with every slice of RT execution.  Once the class
  /// exhausts its budget within a period the whole runqueue is throttled
  /// until the period rolls over — the mechanism that lets CFS daemons run
  /// even under SCHED_FIFO ranks, and a key reason the paper's RT
  /// experiment (Fig. 4) still shows noise.
  void charge_rt(hw::CpuId cpu, SimDuration ran);
  bool throttled(hw::CpuId cpu) const;

 private:
  struct CpuQ {
    // lists[prio] is the FIFO of queued tasks at that priority.
    std::array<std::deque<Task*>, kMaxRtPrio + 1> lists;
    int nr = 0;  // queued + running
    Task* curr = nullptr;
    // Bandwidth state.
    SimDuration rt_time = 0;  // RT execution in the current period
    bool throttled_flag = false;
    bool period_event_armed = false;
  };

  void on_period_rollover(hw::CpuId cpu);

  CpuQ& q(hw::CpuId cpu) { return *queues_[static_cast<std::size_t>(cpu)]; }
  const CpuQ& q(hw::CpuId cpu) const {
    return *queues_[static_cast<std::size_t>(cpu)];
  }

  /// Push queued tasks away from `cpu` to CPUs running lower priority work.
  void push_tasks(hw::CpuId cpu);

  std::vector<std::unique_ptr<CpuQ>> queues_;
  int total_runnable_ = 0;
};

}  // namespace hpcs::kernel
