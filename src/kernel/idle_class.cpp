// IdleClass is header-only; this translation unit anchors its vtable.
#include "kernel/idle_class.h"

namespace hpcs::kernel {}
