// The Completely Fair Scheduler class (Linux 2.6.34 semantics).
//
// Runnable entities sit on a per-CPU red-black tree ordered by virtual
// runtime; vruntime advances inversely proportional to the task's nice
// weight.  Wakers get bounded sleeper credit, ticks preempt when the fair
// slice is exhausted, and the domain-hierarchy load balancer (periodic,
// newidle, and active flavours) keeps weighted load even — including the
// behaviour the paper criticises: it balances daemons and HPC ranks alike.
#pragma once

#include <memory>
#include <vector>

#include "kernel/sched_class.h"

namespace hpcs::kernel {

class LoadBalancer;

class CfsClass : public SchedClass {
 public:
  explicit CfsClass(Kernel& kernel);
  ~CfsClass() override;

  const char* name() const override { return "fair"; }
  bool owns(Policy policy) const override {
    return policy == Policy::kNormal || policy == Policy::kBatch;
  }

  void enqueue(hw::CpuId cpu, Task& t, bool wakeup) override;
  void dequeue(hw::CpuId cpu, Task& t, bool sleeping) override;
  Task* pick_next(hw::CpuId cpu) override;
  void put_prev(hw::CpuId cpu, Task& t) override;
  void set_curr(hw::CpuId cpu, Task& t) override;
  void clear_curr(hw::CpuId cpu, Task& t) override;
  void task_tick(hw::CpuId cpu, Task& t) override;
  void yield_task(hw::CpuId cpu, Task& t) override;
  bool wakeup_preempt(hw::CpuId cpu, Task& curr, Task& waking) override;
  hw::CpuId select_cpu(Task& t, bool is_fork) override;
  void tick_balance(hw::CpuId cpu) override;
  bool newidle_balance(hw::CpuId cpu) override;
  int nr_runnable(hw::CpuId cpu) const override;
  int total_runnable() const override;
  void on_topology_change() override;
  void audit_cpu(hw::CpuId cpu, const Task* rq_current,
                 std::vector<std::string>& errors) const override;

  // --- queries used by the load balancer and tests ---------------------------
  /// Weighted load of runnable CFS tasks on `cpu` (queued + running).
  std::uint64_t cpu_load(hw::CpuId cpu) const;
  /// Queued (not running) CFS tasks on `cpu`.
  int nr_queued(hw::CpuId cpu) const;
  Task* running_task(hw::CpuId cpu) const;
  std::uint64_t min_vruntime(hw::CpuId cpu) const;
  /// Max - min vruntime across queued+running tasks (fairness metric).
  std::uint64_t vruntime_spread(hw::CpuId cpu) const;

  /// Called by Kernel::account_current: charge `delta` of execution.
  void update_curr(hw::CpuId cpu, Task& t, SimDuration delta);

  /// Iterate queued (not running) tasks in steal preference (vruntime)
  /// order without materialising a copy of the runqueue: start from
  /// first_queued and follow next_queued.  Callers may migrate the task
  /// they stop on, but must not keep iterating past a mutation.
  Task* first_queued(hw::CpuId cpu) const;
  static Task* next_queued(Task& t);

  /// Linux task_hot(): recently-ran tasks are cache hot and not migrated.
  bool task_hot(const Task& t) const;

  /// The CFS load balancer (interval back-off state and stats, read-only).
  const LoadBalancer& balancer() const;

  /// The fair timeslice for `t` given current queue contents.
  SimDuration sched_slice(hw::CpuId cpu, const Task& t) const;

 private:
  struct CpuQ;

  void place_entity(CpuQ& q, Task& t, bool initial);
  void update_min_vruntime(CpuQ& q);
  CpuQ& q(hw::CpuId cpu);
  const CpuQ& q(hw::CpuId cpu) const;

  std::vector<std::unique_ptr<CpuQ>> queues_;
  std::unique_ptr<LoadBalancer> balancer_;
  int total_runnable_ = 0;
};

}  // namespace hpcs::kernel
