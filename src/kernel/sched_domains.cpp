#include "kernel/sched_domains.h"

#include <sstream>

namespace hpcs::kernel {

const char* domain_kind_name(DomainKind kind) {
  switch (kind) {
    case DomainKind::kSmt: return "SMT";
    case DomainKind::kMc: return "MC";
    case DomainKind::kSystem: return "SYS";
  }
  return "?";
}

SchedDomains::SchedDomains(const hw::Topology& topo) {
  rebuild(topo, ~0ULL);
}

void SchedDomains::rebuild(const hw::Topology& topo,
                           std::uint64_t online_mask) {
  levels_.clear();
  data_.clear();
  const int ncpu = topo.num_cpus();
  auto online = [&](hw::CpuId cpu) {
    return ((online_mask >> cpu) & 1ULL) != 0;
  };

  auto add_level = [&](DomainLevel lvl, auto domain_index_of,
                       auto group_index_of) {
    LevelData data;
    data.level = lvl;
    // Offline CPUs belong to no domain at any level.
    data.domain_of.assign(static_cast<std::size_t>(ncpu), -1);
    // Discover domains over the online set only.
    int ndom = 0;
    for (hw::CpuId cpu = 0; cpu < ncpu; ++cpu) {
      if (online(cpu)) ndom = std::max(ndom, domain_index_of(cpu) + 1);
    }
    data.spans.resize(static_cast<std::size_t>(ndom));
    data.group_sets.resize(static_cast<std::size_t>(ndom));
    for (hw::CpuId cpu = 0; cpu < ncpu; ++cpu) {
      if (!online(cpu)) continue;
      const int dom = domain_index_of(cpu);
      data.domain_of[static_cast<std::size_t>(cpu)] = dom;
      data.spans[static_cast<std::size_t>(dom)].push_back(cpu);
    }
    // Groups: partition each span by group_index_of.
    for (int dom = 0; dom < ndom; ++dom) {
      auto& span = data.spans[static_cast<std::size_t>(dom)];
      auto& groups = data.group_sets[static_cast<std::size_t>(dom)];
      int last_group = -1;
      for (hw::CpuId cpu : span) {
        const int g = group_index_of(cpu);
        if (g != last_group) {
          groups.emplace_back();
          last_group = g;
        }
        groups.back().push_back(cpu);
      }
    }
    levels_.push_back(lvl);
    data_.push_back(std::move(data));
  };

  // Which levels still make sense is a property of the *online* structure:
  // offlining one thread of every core removes the SMT level entirely, just
  // as Linux degenerates domains during hotplug.
  std::vector<int> core_online(static_cast<std::size_t>(ncpu), 0);
  std::vector<int> core_chip(static_cast<std::size_t>(ncpu), -1);
  std::vector<int> chip_online(static_cast<std::size_t>(ncpu), 0);
  for (hw::CpuId cpu = 0; cpu < ncpu; ++cpu) {
    if (!online(cpu)) continue;
    const auto core = static_cast<std::size_t>(topo.core_of(cpu));
    core_online[core] += 1;
    core_chip[core] = topo.chip_of(cpu);
    chip_online[static_cast<std::size_t>(topo.chip_of(cpu))] += 1;
  }
  bool want_smt = false;
  std::vector<int> chip_cores(static_cast<std::size_t>(ncpu), 0);
  for (std::size_t core = 0; core < core_online.size(); ++core) {
    if (core_online[core] > 1) want_smt = true;
    if (core_online[core] > 0) {
      chip_cores[static_cast<std::size_t>(core_chip[core])] += 1;
    }
  }
  bool want_mc = false;
  int chips_populated = 0;
  for (std::size_t chip = 0; chip < chip_cores.size(); ++chip) {
    if (chip_cores[chip] > 1) want_mc = true;
    if (chip_online[chip] > 0) ++chips_populated;
  }

  // SMT level: domain = core, groups = individual hardware threads.
  if (topo.threads_per_core() > 1 && want_smt) {
    add_level(DomainLevel{DomainKind::kSmt, 2 * kMillisecond, 8 * kMillisecond},
              [&](hw::CpuId cpu) { return topo.core_of(cpu); },
              [&](hw::CpuId cpu) { return cpu; });
  }
  // MC level: domain = chip, groups = cores.
  if (topo.config().cores_per_chip > 1 && want_mc) {
    add_level(DomainLevel{DomainKind::kMc, 4 * kMillisecond, 16 * kMillisecond},
              [&](hw::CpuId cpu) { return topo.chip_of(cpu); },
              [&](hw::CpuId cpu) { return topo.core_of(cpu); });
  }
  // System level: one domain, groups = chips.
  if (topo.num_chips() > 1 && chips_populated > 1) {
    add_level(
        DomainLevel{DomainKind::kSystem, 8 * kMillisecond, 32 * kMillisecond},
        [&](hw::CpuId) { return 0; },
        [&](hw::CpuId cpu) { return topo.chip_of(cpu); });
  }
}

std::span<const hw::CpuId> SchedDomains::span(int lvl, hw::CpuId cpu) const {
  const auto& data = data_.at(static_cast<std::size_t>(lvl));
  const int dom = data.domain_of[static_cast<std::size_t>(cpu)];
  if (dom < 0) return {};  // offline CPU: no domain
  return data.spans[static_cast<std::size_t>(dom)];
}

std::span<const std::vector<hw::CpuId>> SchedDomains::groups(
    int lvl, hw::CpuId cpu) const {
  const auto& data = data_.at(static_cast<std::size_t>(lvl));
  const int dom = data.domain_of[static_cast<std::size_t>(cpu)];
  if (dom < 0) return {};  // offline CPU: no domain
  return data.group_sets[static_cast<std::size_t>(dom)];
}

std::string SchedDomains::describe() const {
  std::ostringstream out;
  for (std::size_t lvl = 0; lvl < data_.size(); ++lvl) {
    out << domain_kind_name(levels_[lvl].kind) << ": ";
    for (const auto& span : data_[lvl].spans) {
      out << "{";
      for (std::size_t i = 0; i < span.size(); ++i) {
        out << span[i] << (i + 1 == span.size() ? "" : ",");
      }
      out << "} ";
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace hpcs::kernel
