// The scheduling-class interface: the paper's "Scheduling Classes" of the
// Linux 2.6.23+ scheduler framework.
//
// The Scheduler Core (kernel::Kernel) keeps an ordered list of classes —
// real-time, (optionally HPC), CFS, idle — and walks it on every scheduling
// decision, exactly as described in Section IV of the paper: no class is
// consulted while a higher-priority class still has runnable tasks.
//
// Contract notes:
//  * A running task is NOT in its class's queue; pick_next() removes the
//    returned task and put_prev() re-inserts a still-runnable previous task.
//  * set_curr()/clear_curr() bracket the time a task of this class occupies
//    a CPU, so classes can track per-CPU load including the running task.
//  * select_cpu() implements wakeup/fork placement (Linux select_task_rq).
//  * tick_balance()/newidle_balance() are the two load-balancing entry
//    points; implementations must honour Kernel::balancing_inhibited().
#pragma once

#include "hw/topology.h"
#include "kernel/task.h"

namespace hpcs::kernel {

class Kernel;

enum class BalanceReason { kTick, kNewIdle, kFork, kWake, kActive };

class SchedClass {
 public:
  explicit SchedClass(Kernel& kernel) : kernel_(kernel) {}
  virtual ~SchedClass() = default;

  SchedClass(const SchedClass&) = delete;
  SchedClass& operator=(const SchedClass&) = delete;

  virtual const char* name() const = 0;
  /// Does this class schedule tasks of `policy`?
  virtual bool owns(Policy policy) const = 0;

  /// Add a runnable task to this CPU's queue.  `wakeup` is true when the
  /// task just woke (vs. requeue/migration), enabling sleeper credit.
  virtual void enqueue(hw::CpuId cpu, Task& t, bool wakeup) = 0;
  /// Remove a task that stops being runnable on this CPU (sleep/migrate).
  virtual void dequeue(hw::CpuId cpu, Task& t, bool sleeping) = 0;

  /// Pick (and remove from the queue) the best task, or nullptr.
  virtual Task* pick_next(hw::CpuId cpu) = 0;
  /// Re-insert the previously running, still-runnable task.
  virtual void put_prev(hw::CpuId cpu, Task& t) = 0;

  virtual void set_curr(hw::CpuId cpu, Task& t) = 0;
  virtual void clear_curr(hw::CpuId cpu, Task& t) = 0;

  /// Periodic tick while `t` (of this class) runs on `cpu`; may resched.
  virtual void task_tick(hw::CpuId cpu, Task& t) = 0;
  /// sched_yield() from the running task.
  virtual void yield_task(hw::CpuId cpu, Task& t) = 0;

  /// Should `waking` preempt `curr` (both of this class)?
  virtual bool wakeup_preempt(hw::CpuId cpu, Task& curr, Task& waking) = 0;

  /// Placement for a fork or wakeup; must respect t.affinity.
  virtual hw::CpuId select_cpu(Task& t, bool is_fork) = 0;

  /// Periodic balancing hook, called from the tick on `cpu`.
  virtual void tick_balance(hw::CpuId /*cpu*/) {}
  /// Called when `cpu` is about to go idle; return true if a task was
  /// pulled (the core scheduler re-picks).
  virtual bool newidle_balance(hw::CpuId /*cpu*/) { return false; }

  /// Runnable tasks of this class on `cpu`, including a running one.
  virtual int nr_runnable(hw::CpuId cpu) const = 0;
  /// Runnable tasks of this class across all CPUs.
  virtual int total_runnable() const = 0;

 protected:
  Kernel& kernel_;
};

}  // namespace hpcs::kernel
