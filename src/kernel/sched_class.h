// The scheduling-class interface: the paper's "Scheduling Classes" of the
// Linux 2.6.23+ scheduler framework.
//
// The Scheduler Core (kernel::Kernel) keeps an ordered list of classes —
// real-time, (optionally HPC), CFS, idle — and walks it on every scheduling
// decision, exactly as described in Section IV of the paper: no class is
// consulted while a higher-priority class still has runnable tasks.
//
// Contract notes:
//  * A running task is NOT in its class's queue; pick_next() removes the
//    returned task and put_prev() re-inserts a still-runnable previous task.
//  * set_curr()/clear_curr() bracket the time a task of this class occupies
//    a CPU, so classes can track per-CPU load including the running task.
//  * select_cpu() implements wakeup/fork placement (Linux select_task_rq).
//  * tick_balance()/newidle_balance() are the two load-balancing entry
//    points; implementations must honour Kernel::balancing_inhibited().
#pragma once

#include <string>
#include <vector>

#include "hw/topology.h"
#include "kernel/task.h"

namespace hpcs::kernel {

class Kernel;

enum class BalanceReason { kTick, kNewIdle, kFork, kWake, kActive };

class SchedClass {
 public:
  explicit SchedClass(Kernel& kernel) : kernel_(kernel) {}
  virtual ~SchedClass() = default;

  SchedClass(const SchedClass&) = delete;
  SchedClass& operator=(const SchedClass&) = delete;

  virtual const char* name() const = 0;
  /// Does this class schedule tasks of `policy`?
  virtual bool owns(Policy policy) const = 0;

  /// Add a runnable task to this CPU's queue.  `wakeup` is true when the
  /// task just woke (vs. requeue/migration), enabling sleeper credit.
  virtual void enqueue(hw::CpuId cpu, Task& t, bool wakeup) = 0;
  /// Remove a task that stops being runnable on this CPU (sleep/migrate).
  virtual void dequeue(hw::CpuId cpu, Task& t, bool sleeping) = 0;

  /// Pick (and remove from the queue) the best task, or nullptr.
  virtual Task* pick_next(hw::CpuId cpu) = 0;
  /// Re-insert the previously running, still-runnable task.
  virtual void put_prev(hw::CpuId cpu, Task& t) = 0;

  virtual void set_curr(hw::CpuId cpu, Task& t) = 0;
  virtual void clear_curr(hw::CpuId cpu, Task& t) = 0;

  /// Periodic tick while `t` (of this class) runs on `cpu`; may resched.
  virtual void task_tick(hw::CpuId cpu, Task& t) = 0;
  /// sched_yield() from the running task.
  virtual void yield_task(hw::CpuId cpu, Task& t) = 0;

  /// Should `waking` preempt `curr` (both of this class)?
  virtual bool wakeup_preempt(hw::CpuId cpu, Task& curr, Task& waking) = 0;

  /// Placement for a fork or wakeup; must respect t.affinity.
  virtual hw::CpuId select_cpu(Task& t, bool is_fork) = 0;

  /// Periodic balancing hook, called from the tick on `cpu`.
  virtual void tick_balance(hw::CpuId /*cpu*/) {}
  /// Called when `cpu` is about to go idle; return true if a task was
  /// pulled (the core scheduler re-picks).
  virtual bool newidle_balance(hw::CpuId /*cpu*/) { return false; }

  /// Runnable tasks of this class on `cpu`, including a running one.
  virtual int nr_runnable(hw::CpuId cpu) const = 0;
  /// Runnable tasks of this class across all CPUs.
  virtual int total_runnable() const = 0;

  /// Remove and return any queued task from `cpu` (nullptr when the queue is
  /// empty), with full dequeue accounting — used to drain a CPU going
  /// offline.  The default routes through pick_next/set_curr/dequeue/
  /// clear_curr, which every class supports; classes whose pick_next can
  /// refuse a queued task (RT throttling) override it.
  virtual Task* dequeue_any(hw::CpuId cpu) {
    Task* t = pick_next(cpu);
    if (t == nullptr) return nullptr;
    set_curr(cpu, *t);
    dequeue(cpu, *t, /*sleeping=*/false);
    clear_curr(cpu, *t);
    return t;
  }

  /// The online-CPU set changed (hotplug) and sched domains were rebuilt;
  /// classes drop or resize any per-domain balancing state here.
  virtual void on_topology_change() {}

  /// Invariant audit: recount this class's `cpu` queue from the actual data
  /// structure and append a description of every inconsistency to `errors`.
  /// `rq_current` is the CPU's current task (nullptr when idle).  Called at
  /// event boundaries only, so the class-curr bookkeeping must be consistent.
  virtual void audit_cpu(hw::CpuId /*cpu*/, const Task* /*rq_current*/,
                         std::vector<std::string>& /*errors*/) const {}

 protected:
  Kernel& kernel_;
};

}  // namespace hpcs::kernel
