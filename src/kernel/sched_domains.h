// Scheduling domains: the hierarchy load balancing walks.
//
// Mirrors Linux's domain tree for the paper's machine: an SMT domain (the
// hardware threads of one core), an MC domain (the cores of one chip), and
// a system domain (all chips).  Each level balances across its *groups* —
// the child domains — on its own interval, shortest at the bottom.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "hw/topology.h"
#include "util/time.h"

namespace hpcs::kernel {

enum class DomainKind { kSmt, kMc, kSystem };

const char* domain_kind_name(DomainKind kind);

struct DomainLevel {
  DomainKind kind;
  /// Base balancing interval (doubles while balanced, like Linux).
  SimDuration base_interval;
  SimDuration max_interval;
};

class SchedDomains {
 public:
  explicit SchedDomains(const hw::Topology& topo);

  /// Rebuild the whole hierarchy for a new online-CPU set (hotplug).
  /// Offline CPUs belong to no domain: span()/groups() for them are empty,
  /// and no online CPU's group contains them.  Levels that stop making sense
  /// (e.g. SMT when no core has two online threads) disappear, so
  /// num_levels() can change — balancer state sized per level must be
  /// rebuilt afterwards.
  void rebuild(const hw::Topology& topo, std::uint64_t online_mask);

  int num_levels() const { return static_cast<int>(levels_.size()); }
  const DomainLevel& level(int lvl) const {
    return levels_.at(static_cast<std::size_t>(lvl));
  }

  /// All CPUs of the domain that contains `cpu` at `lvl`.
  std::span<const hw::CpuId> span(int lvl, hw::CpuId cpu) const;

  /// The groups (child-domain CPU sets) of the domain containing `cpu`.
  /// At the SMT level every group is a single CPU.
  std::span<const std::vector<hw::CpuId>> groups(int lvl, hw::CpuId cpu) const;

  std::string describe() const;

 private:
  struct LevelData {
    DomainLevel level;
    // span_of[cpu] -> index into spans_ / group_sets_.
    std::vector<int> domain_of;
    std::vector<std::vector<hw::CpuId>> spans;
    std::vector<std::vector<std::vector<hw::CpuId>>> group_sets;
  };

  std::vector<DomainLevel> levels_;
  std::vector<LevelData> data_;
};

}  // namespace hpcs::kernel
