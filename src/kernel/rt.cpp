#include "kernel/rt.h"

#include <algorithm>
#include <cassert>

#include "kernel/kernel.h"

namespace hpcs::kernel {

RtClass::RtClass(Kernel& kernel) : SchedClass(kernel) {
  const int ncpu = kernel.topology().num_cpus();
  queues_.reserve(static_cast<std::size_t>(ncpu));
  for (int i = 0; i < ncpu; ++i) queues_.push_back(std::make_unique<CpuQ>());
}

RtClass::~RtClass() = default;

void RtClass::enqueue(hw::CpuId cpu, Task& t, bool wakeup) {
  (void)wakeup;
  CpuQ& cq = q(cpu);
  assert(!t.rt_queued);
  cq.lists[static_cast<std::size_t>(t.rt_prio)].push_back(&t);
  t.rt_queued = true;
  cq.nr += 1;
  total_runnable_ += 1;
  if (t.rr_left == 0) t.rr_left = kernel_.config().rt.rr_timeslice;
}

void RtClass::dequeue(hw::CpuId cpu, Task& t, bool sleeping) {
  (void)sleeping;
  CpuQ& cq = q(cpu);
  if (t.rt_queued) {
    auto& list = cq.lists[static_cast<std::size_t>(t.rt_prio)];
    list.erase(std::find(list.begin(), list.end(), &t));
    t.rt_queued = false;
  }
  cq.nr -= 1;
  total_runnable_ -= 1;
}

Task* RtClass::pick_next(hw::CpuId cpu) {
  CpuQ& cq = q(cpu);
  if (cq.throttled_flag) return nullptr;  // bandwidth exhausted this period
  for (int prio = kMaxRtPrio; prio >= kMinRtPrio; --prio) {
    auto& list = cq.lists[static_cast<std::size_t>(prio)];
    if (!list.empty()) {
      Task* t = list.front();
      list.pop_front();
      t->rt_queued = false;
      return t;
    }
  }
  return nullptr;
}

void RtClass::put_prev(hw::CpuId cpu, Task& t) {
  CpuQ& cq = q(cpu);
  assert(!t.rt_queued);
  auto& list = cq.lists[static_cast<std::size_t>(t.rt_prio)];
  // A preempted task resumes from the head of its list; a task whose RR
  // quantum expired (or that yielded) goes to the tail.
  if (t.requeue_at_tail) {
    list.push_back(&t);
    t.requeue_at_tail = false;
  } else {
    list.push_front(&t);
  }
  t.rt_queued = true;
}

void RtClass::set_curr(hw::CpuId cpu, Task& t) { q(cpu).curr = &t; }

void RtClass::clear_curr(hw::CpuId cpu, Task& t) {
  CpuQ& cq = q(cpu);
  if (cq.curr == &t) cq.curr = nullptr;
}

void RtClass::task_tick(hw::CpuId cpu, Task& t) {
  if (t.policy != Policy::kRR) return;
  const SimDuration tick = kernel_.config().machine.tick_period;
  t.rr_left = t.rr_left > tick ? t.rr_left - tick : 0;
  if (t.rr_left != 0) return;
  t.rr_left = kernel_.config().rt.rr_timeslice;
  // Rotate only when a same-priority peer is waiting.
  if (!q(cpu).lists[static_cast<std::size_t>(t.rt_prio)].empty()) {
    t.requeue_at_tail = true;
    kernel_.resched_cpu(cpu);
  }
}

void RtClass::yield_task(hw::CpuId cpu, Task& t) {
  (void)cpu;
  t.requeue_at_tail = true;
}

bool RtClass::wakeup_preempt(hw::CpuId cpu, Task& curr, Task& waking) {
  (void)cpu;
  return waking.rt_prio > curr.rt_prio;
}

hw::CpuId RtClass::select_cpu(Task& t, bool is_fork) {
  (void)is_fork;
  const int ncpu = kernel_.topology().num_cpus();
  const hw::CpuId prev = t.cpu;
  // Stay on prev when the task would run there immediately.
  if (prev != hw::kInvalidCpu && mask_has(t.affinity, prev) &&
      kernel_.cpu_is_online(prev) &&
      kernel_.effective_prio_on(prev) < 100 + t.rt_prio) {
    return prev;
  }
  // find_lowest_rq: the allowed CPU running the lowest-priority work,
  // preferring runqueues with bandwidth left this period.  An offline CPU
  // runs its idle task and would otherwise always win — skip it.
  hw::CpuId best = hw::kInvalidCpu;
  int best_prio = 1 << 30;
  for (hw::CpuId c = 0; c < ncpu; ++c) {
    if (!mask_has(t.affinity, c) || !kernel_.cpu_is_online(c)) continue;
    const int ep =
        kernel_.effective_prio_on(c) + (q(c).throttled_flag ? 1000 : 0);
    if (ep < best_prio) {
      best_prio = ep;
      best = c;
    }
  }
  if (best != hw::kInvalidCpu && best_prio < 100 + t.rt_prio) return best;
  return prev != hw::kInvalidCpu && mask_has(t.affinity, prev) &&
                 kernel_.cpu_is_online(prev)
             ? prev
             : (best != hw::kInvalidCpu ? best : 0);
}

void RtClass::tick_balance(hw::CpuId cpu) {
  if (kernel_.balancing_inhibited()) return;
  push_tasks(cpu);
}

void RtClass::push_tasks(hw::CpuId cpu) {
  CpuQ& cq = q(cpu);
  // A throttled runqueue holds its tasks until the period refills; tasks
  // queued behind the throttle are not "overload" to push away.
  if (cq.throttled_flag) return;
  int pushes = 0;
  // Push queued (overloaded) tasks to CPUs running lower-priority work.
  for (int prio = kMaxRtPrio; prio >= kMinRtPrio; --prio) {
    auto& list = cq.lists[static_cast<std::size_t>(prio)];
    if (pushes > 64) break;  // defensive bound per pass
    for (std::size_t i = 0; i < list.size();) {
      Task* t = list[i];
      hw::CpuId target = hw::kInvalidCpu;
      int target_prio = 100 + t->rt_prio;  // must be strictly lower
      for (hw::CpuId c = 0; c < kernel_.topology().num_cpus(); ++c) {
        if (c == cpu || !mask_has(t->affinity, c)) continue;
        if (!kernel_.cpu_is_online(c)) continue;
        if (q(c).throttled_flag) continue;  // could not run there either
        const int ep = kernel_.effective_prio_on(c);
        if (ep < target_prio) {
          target_prio = ep;
          target = c;
        }
      }
      if (target == hw::kInvalidCpu) {
        ++i;
        continue;
      }
      kernel_.migrate_queued_task(*t, target);
      ++pushes;
      if (pushes > 64) break;
      // list shrank; re-examine index i.
    }
  }
}

bool RtClass::newidle_balance(hw::CpuId cpu) {
  if (kernel_.balancing_inhibited()) return false;
  // A throttled runqueue cannot execute RT work this period; pulling would
  // just shuffle tasks between starved CPUs (and livelock the pull path).
  if (q(cpu).throttled_flag) return false;
  // pull_rt_task: grab the highest queued RT task from an overloaded CPU.
  const int ncpu = kernel_.topology().num_cpus();
  Task* best = nullptr;
  hw::CpuId best_src = hw::kInvalidCpu;
  for (hw::CpuId c = 0; c < ncpu; ++c) {
    if (c == cpu) continue;
    const CpuQ& cq = q(c);
    if (cq.nr < 2) continue;  // not overloaded
    for (int prio = kMaxRtPrio; prio >= kMinRtPrio; --prio) {
      const auto& list = cq.lists[static_cast<std::size_t>(prio)];
      for (Task* t : list) {
        if (!mask_has(t->affinity, cpu)) continue;
        if (best == nullptr || t->rt_prio > best->rt_prio) {
          best = t;
          best_src = c;
        }
        break;  // only the head of the highest list matters per CPU
      }
      if (best != nullptr && best_src == c) break;
    }
  }
  if (best == nullptr) return false;
  kernel_.migrate_queued_task(*best, cpu);
  return true;
}

void RtClass::charge_rt(hw::CpuId cpu, SimDuration ran) {
  const auto& params = kernel_.config().rt;
  if (params.rt_runtime >= params.rt_period) return;  // throttling disabled
  CpuQ& cq = q(cpu);
  if (!cq.period_event_armed) {
    // First RT execution of a fresh period: arm the rollover.
    cq.period_event_armed = true;
    kernel_.engine().schedule_after(params.rt_period,
                                    [this, cpu] { on_period_rollover(cpu); });
  }
  cq.rt_time += ran;
  if (!cq.throttled_flag && cq.rt_time >= params.rt_runtime) {
    cq.throttled_flag = true;
    kernel_.resched_cpu(cpu);
  }
}

void RtClass::on_period_rollover(hw::CpuId cpu) {
  CpuQ& cq = q(cpu);
  cq.rt_time = 0;
  cq.period_event_armed = false;
  if (cq.throttled_flag) {
    cq.throttled_flag = false;
    kernel_.resched_cpu(cpu);
  }
}

bool RtClass::throttled(hw::CpuId cpu) const { return q(cpu).throttled_flag; }

int RtClass::nr_runnable(hw::CpuId cpu) const { return q(cpu).nr; }

int RtClass::total_runnable() const { return total_runnable_; }

int RtClass::highest_queued_prio(hw::CpuId cpu) const {
  const CpuQ& cq = q(cpu);
  for (int prio = kMaxRtPrio; prio >= kMinRtPrio; --prio) {
    if (!cq.lists[static_cast<std::size_t>(prio)].empty()) return prio;
  }
  return 0;
}

Task* RtClass::running_task(hw::CpuId cpu) const { return q(cpu).curr; }

Task* RtClass::dequeue_any(hw::CpuId cpu) {
  CpuQ& cq = q(cpu);
  for (int prio = kMaxRtPrio; prio >= kMinRtPrio; --prio) {
    auto& list = cq.lists[static_cast<std::size_t>(prio)];
    if (list.empty()) continue;
    Task* t = list.front();
    list.pop_front();
    t->rt_queued = false;
    cq.nr -= 1;
    total_runnable_ -= 1;
    return t;
  }
  return nullptr;
}

void RtClass::audit_cpu(hw::CpuId cpu, const Task* rq_current,
                        std::vector<std::string>& errors) const {
  const CpuQ& cq = q(cpu);
  auto fail = [&](const std::string& msg) {
    errors.push_back("rt cpu" + std::to_string(cpu) + ": " + msg);
  };
  int count = 0;
  for (int prio = kMinRtPrio; prio <= kMaxRtPrio; ++prio) {
    for (const Task* t : cq.lists[static_cast<std::size_t>(prio)]) {
      ++count;
      if (!t->rt_queued) {
        fail("queued task " + t->name + " has rt_queued=false");
      }
      if (t->rt_prio != prio) {
        fail("task " + t->name + " on list " + std::to_string(prio) +
             " but rt_prio=" + std::to_string(t->rt_prio));
      }
      if (t->state != TaskState::kRunnable) {
        fail("queued task " + t->name + " in state " +
             task_state_name(t->state));
      }
      if (t->cpu != cpu) {
        fail("queued task " + t->name + " claims cpu " +
             std::to_string(t->cpu));
      }
    }
  }
  int nr = count;
  if (cq.curr != nullptr) {
    nr += 1;
    if (rq_current != cq.curr) {
      fail("class curr " + cq.curr->name + " is not the CPU's current task");
    }
  }
  if (nr != cq.nr) {
    fail("nr=" + std::to_string(cq.nr) + " but recount=" + std::to_string(nr));
  }
}

}  // namespace hpcs::kernel
