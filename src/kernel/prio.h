// Priorities, policies, and the Linux nice-to-weight table.
//
// Policies map to scheduling classes exactly as in Linux 2.6.34, with one
// addition: kHpc, the paper's HPC class, which slots between the real-time
// and CFS classes.
#pragma once

#include <array>
#include <cstdint>

namespace hpcs::kernel {

enum class Policy : std::uint8_t {
  kFifo,    // SCHED_FIFO   (RT class)
  kRR,      // SCHED_RR     (RT class)
  kHpc,     // SCHED_HPC    (the paper's HPL class)
  kNormal,  // SCHED_NORMAL (CFS)
  kBatch,   // SCHED_BATCH  (CFS, no wakeup preemption bonus)
  kIdle,    // per-CPU swapper tasks only
};

const char* policy_name(Policy policy);

/// True when the policy belongs to the real-time class.
constexpr bool is_rt_policy(Policy p) {
  return p == Policy::kFifo || p == Policy::kRR;
}

inline constexpr int kMinNice = -20;
inline constexpr int kMaxNice = 19;
inline constexpr int kMinRtPrio = 1;    // lowest RT priority
inline constexpr int kMaxRtPrio = 99;   // highest (migration threads live here)

/// The weight of a nice-0 task; all CFS load arithmetic is relative to it.
inline constexpr std::uint32_t kNice0Load = 1024;

/// Linux's prio_to_weight[]: each nice step changes CPU share by ~10%.
std::uint32_t nice_to_weight(int nice);

/// Inverse weights (2^32 / weight) are not needed here: the simulator can
/// afford a 64-bit division in vruntime accounting.

}  // namespace hpcs::kernel
