// The CFS load balancer over the scheduling-domain hierarchy.
//
// Reproduces the Linux behaviour the paper analyses:
//  * periodic balancing from the tick, per domain level, with intervals that
//    double while the domain stays balanced;
//  * newidle balancing when a CPU is about to go idle (pull one task);
//  * imbalance defined on weighted load with imbalance_pct hysteresis — so a
//    CPU holding an HPC rank plus a just-woken daemon (2048) looks busier
//    than its neighbours (1024) and the balancer will happily move the rank;
//  * cache-hot protection (task_hot) that is overridden after repeated
//    failures (cache_nice_tries), and escalation to *active balancing*: the
//    migration/N RT kthread preempts the victim CPU and pushes its running
//    task — the "migration kernel daemon [with] high RT priority" of §IV;
//  * SMT group capacity: at the MC/system levels a fully-busy core counts as
//    overloaded against an idle core, so two ranks co-resident on one core's
//    two hardware threads eventually get spread out (fixing the situation
//    costs an active balance + a cold cache, which is precisely the noise
//    the paper measures).
#pragma once

#include <cstdint>
#include <vector>

#include "hw/topology.h"
#include "util/time.h"

namespace hpcs::kernel {

class Kernel;
class CfsClass;
struct Task;

struct BalanceStats {
  std::uint64_t passes = 0;
  std::uint64_t moves = 0;
  std::uint64_t active_requests = 0;
  std::uint64_t newidle_pulls = 0;
};

class LoadBalancer {
 public:
  LoadBalancer(Kernel& kernel, CfsClass& cfs);

  /// Periodic entry point, called from the tick on `cpu`.
  void tick_balance(hw::CpuId cpu);

  /// `cpu` is about to go idle; try to pull one task.  Returns true if a
  /// task was pulled.
  bool newidle(hw::CpuId cpu);

  /// Sched domains were rebuilt (CPU hotplug): the level count may have
  /// changed, so drop all per-(cpu, level) interval/backoff state and start
  /// from each level's base interval again.
  void on_domains_rebuilt();

  const BalanceStats& stats() const { return stats_; }

  /// Current back-off interval for `cpu` at domain `level`: starts at the
  /// level's base_interval, doubles each balanced pass up to max_interval,
  /// and resets to base on imbalance (Linux's progressive back-off).
  SimDuration current_interval(hw::CpuId cpu, int level) const {
    return interval_[static_cast<std::size_t>(cpu)]
                    [static_cast<std::size_t>(level)];
  }

 private:
  struct GroupLoad {
    std::uint64_t load = 0;  // weighted CFS load
    int nr = 0;              // runnable CFS tasks
    int queued = 0;          // movable (not running) CFS tasks
    int cpus = 0;
    hw::CpuId busiest_cpu = hw::kInvalidCpu;
    std::uint64_t busiest_cpu_load = 0;
  };

  /// One balancing attempt at `level` for `cpu`; returns true if the domain
  /// was already balanced (used for interval back-off).
  bool balance_level(hw::CpuId cpu, int level);

  GroupLoad measure_group(const std::vector<hw::CpuId>& cpus) const;

  /// Try to move one queued task from `src` to `dst`; honours affinity and
  /// cache-hotness (`ignore_hot` overrides the latter).
  bool move_one_task(hw::CpuId src, hw::CpuId dst, bool ignore_hot);

  Kernel& kernel_;
  CfsClass& cfs_;
  // next_balance_[cpu][level], interval_[cpu][level], failed_[cpu][level]
  std::vector<std::vector<SimTime>> next_balance_;
  std::vector<std::vector<SimDuration>> interval_;
  std::vector<std::vector<int>> failed_;
  BalanceStats stats_;
};

}  // namespace hpcs::kernel
