#include "kernel/task.h"

namespace hpcs::kernel {

const char* task_state_name(TaskState state) {
  switch (state) {
    case TaskState::kNew: return "new";
    case TaskState::kRunnable: return "runnable";
    case TaskState::kRunning: return "running";
    case TaskState::kSleeping: return "sleeping";
    case TaskState::kBlocked: return "blocked";
    case TaskState::kExited: return "exited";
  }
  return "?";
}

}  // namespace hpcs::kernel
