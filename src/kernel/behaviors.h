// Small reusable Behavior implementations for tests, daemons, and launchers.
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "kernel/task.h"

namespace hpcs::kernel {

/// Wraps a callable: each next() call delegates to it.  The callable keeps
/// its own state via captures.
class FuncBehavior : public Behavior {
 public:
  using Fn = std::function<Action(Kernel&, Task&)>;
  explicit FuncBehavior(Fn fn) : fn_(std::move(fn)) {}
  Action next(Kernel& kernel, Task& self) override { return fn_(kernel, self); }

 private:
  Fn fn_;
};

/// Plays a fixed list of actions, then exits.
class ScriptBehavior : public Behavior {
 public:
  explicit ScriptBehavior(std::vector<Action> actions)
      : actions_(std::move(actions)) {}

  Action next(Kernel&, Task&) override {
    if (pos_ >= actions_.size()) return Action::exit_task();
    return actions_[pos_++];
  }

 private:
  std::vector<Action> actions_;
  std::size_t pos_ = 0;
};

}  // namespace hpcs::kernel
