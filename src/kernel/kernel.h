// The Scheduler Core: a userspace model of the Linux 2.6.34 scheduler
// framework running inside a discrete-event simulation.
//
// The Kernel owns the per-CPU runqueues, the ordered scheduling-class list
// (RT -> [HPC] -> CFS -> idle), the periodic tick, the per-CPU migration/N
// kernel threads used for active balancing, and all task lifecycle.  It
// charges the direct costs of scheduling (context switches, migrations,
// tick handlers) to the running task's timeline and drives the cache-warmth
// model for the indirect costs — the two overhead categories of Section III
// of the paper.
//
// Everything happens inside sim::Engine events, so a run is a deterministic
// function of (workload, seed, config).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "hw/machine.h"
#include "hw/power_model.h"
#include "kernel/sched_class.h"
#include "kernel/sched_domains.h"
#include "kernel/task.h"
#include "sim/engine.h"
#include "sim/trace.h"
#include "util/time.h"

namespace hpcs::kernel {

class CfsClass;
class RtClass;
class IdleClass;

/// CFS tunables.  Defaults match Linux 2.6.34 on an 8-CPU machine (the base
/// values scale by 1 + log2(ncpus) = 4).
struct CfsParams {
  SimDuration sched_latency = 24 * kMillisecond;
  SimDuration min_granularity = 3 * kMillisecond;
  SimDuration wakeup_granularity = 4 * kMillisecond;
  /// Busiest/local weighted-load ratio (percent) that defines imbalance.
  int imbalance_pct = 125;
  /// A task that ran within this window is "cache hot" and not migrated.
  SimDuration hot_time = 500 * kMicrosecond;
  /// Balance failures before cache-hotness is ignored.
  int cache_nice_tries = 2;
  /// Balance failures before active balancing (migration/N push) kicks in.
  int active_balance_after = 4;
};

struct RtParams {
  SimDuration rr_timeslice = 100 * kMillisecond;
  /// RT bandwidth: at most rt_runtime of RT execution per rt_period per CPU
  /// (Linux sched_rt_runtime_us = 950000 / sched_rt_period_us = 1000000).
  /// Set rt_runtime == rt_period to disable throttling.
  SimDuration rt_period = 1000 * kMillisecond;
  SimDuration rt_runtime = 950 * kMillisecond;
};

struct HpcParams {
  /// Round-robin quantum of the paper's HPC class (only matters when a CPU
  /// holds more than one HPC task, e.g. at launch).
  SimDuration rr_quantum = 10 * kMillisecond;
};

struct KernelConfig {
  hw::MachineConfig machine = hw::MachineConfig::power6_js22();
  CfsParams cfs;
  RtParams rt;
  HpcParams hpc;
  /// Dynticks-idle: no periodic tick on idle CPUs (2.6.34 NOHZ).
  bool nohz_idle = true;
  /// NETTICK-style extension: suppress the tick while a CPU runs a single
  /// task with nothing queued behind it (reduces micro-noise; §V).
  bool tickless_single = false;
};

struct SpawnSpec {
  std::string name;
  Policy policy = Policy::kNormal;
  int nice = 0;
  int rt_prio = 0;
  CpuMask affinity = cpu_mask_all();
  std::unique_ptr<Behavior> behavior;
  Tid parent = kInvalidTid;
};

/// System-wide counters matching perf's software events.
struct KernelCounters {
  std::uint64_t context_switches = 0;  // PERF_COUNT_SW_CONTEXT_SWITCHES
  std::uint64_t cpu_migrations = 0;    // PERF_COUNT_SW_CPU_MIGRATIONS
  std::uint64_t preemptions = 0;       // involuntary switch-outs
  std::uint64_t wakeups = 0;
  std::uint64_t ticks = 0;
  std::uint64_t balance_passes = 0;
  std::uint64_t balance_moves = 0;
  std::uint64_t active_balances = 0;
  std::uint64_t forks = 0;
  // Fault-injection / hotplug events.
  std::uint64_t cpu_offlines = 0;
  std::uint64_t cpu_onlines = 0;
  std::uint64_t hotplug_migrations = 0;  // tasks displaced by cpu_offline
  std::uint64_t task_kills = 0;
};

class Kernel {
 public:
  Kernel(sim::Engine& engine, KernelConfig config);
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  /// Create idle tasks and migration/N kthreads and start ticking.  Must be
  /// called exactly once before the engine runs.
  void boot();

  /// Insert a scheduling class between RT and CFS (the paper's HPC class).
  /// Must be called before boot().
  void register_class_after_rt(std::unique_ptr<SchedClass> cls);

  // --- task lifecycle -------------------------------------------------------
  Tid spawn(SpawnSpec spec);
  Task* find_task(Tid tid);
  const Task* find_task(Tid tid) const;
  Task& task(Tid tid);

  /// Kill a task outright (fault injection): a running victim is descheduled
  /// and reaped, a queued one is dequeued, a sleeping/blocked one never
  /// wakes.  Exit listeners fire as for a normal exit, but t.killed is set so
  /// runtimes can tell crash from completion.  Returns false for unknown or
  /// already-exited tids.
  bool kill_task(Tid tid);

  // --- CPU hotplug -----------------------------------------------------------
  /// Take `cpu` out of service: cancel its tick, park its migration/N
  /// kthread, evict the running task, drain every class's runqueue, rebuild
  /// the scheduling domains for the shrunken topology, and re-place the
  /// displaced tasks on surviving CPUs (tasks whose affinity mask has no
  /// online CPU left fall back to a full mask, as Linux's
  /// select_fallback_rq does).  Throws std::logic_error when `cpu` is
  /// already offline or is the last online CPU.
  void cpu_offline(hw::CpuId cpu);
  /// Bring `cpu` back: rebuild domains, unpark migration/N, restart the
  /// tick, and trigger a reschedule so newidle balancing can pull work over.
  void cpu_online(hw::CpuId cpu);
  bool cpu_is_online(hw::CpuId cpu) const {
    return rqs_.at(static_cast<std::size_t>(cpu)).online;
  }
  int num_online_cpus() const;
  CpuMask online_cpu_mask() const;

  // --- invariant checker -----------------------------------------------------
  /// Audit the whole scheduler state: every runnable task on exactly one
  /// runqueue, per-class nr/load sums matching a recount from the real data
  /// structures, curr pointers consistent, nothing on an offline CPU, CFS
  /// rbtree valid.  Throws std::logic_error (after a rate-limited error log)
  /// on the first violation set found.  No-op before boot().
  void check_invariants();
  /// Enable/disable the per-event audit: when on, check_invariants() runs
  /// after every engine event (builds with HPCS_CHECK_INVARIANTS default to
  /// on).  The engine's post-dispatch hook is a single slot, so with several
  /// kernels on one engine the last enabler wins.
  void set_invariant_checks(bool on);
  bool invariant_checks() const { return invariant_checks_; }

  // --- syscall layer (see syscalls.cpp) --------------------------------------
  bool sys_setscheduler(Tid tid, Policy policy, int prio);
  bool sys_setaffinity(Tid tid, CpuMask mask);
  bool sys_setnice(Tid tid, int nice);

  // --- conditions (wait queues) ----------------------------------------------
  CondId cond_create();
  /// Fire a condition: all current and future waiters proceed.
  void cond_signal(CondId cond);
  bool cond_fired(CondId cond) const;

  /// Invoked whenever any task exits (used by launchers/runtimes).
  void add_exit_listener(std::function<void(Task&)> fn);
  /// Tracepoint stream (perf attaches here).
  void add_trace_hook(std::function<void(const sim::TraceRecord&)> fn);

  // --- queries ---------------------------------------------------------------
  sim::Engine& engine() { return engine_; }
  SimTime now() const { return engine_.now(); }
  const KernelConfig& config() const { return config_; }
  hw::Machine& machine() { return machine_; }
  const hw::Topology& topology() const { return machine_.topology(); }
  const SchedDomains& domains() const { return domains_; }
  sim::Trace& trace() { return trace_; }
  const KernelCounters& counters() const { return counters_; }

  Task* current_on(hw::CpuId cpu);
  int nr_running(hw::CpuId cpu) const;  // runnable incl running, excl idle
  bool cpu_idle(hw::CpuId cpu) const;

  CfsClass& cfs() { return *cfs_; }
  RtClass& rt() { return *rt_; }

  /// While the inhibitor returns true no class performs load balancing
  /// (HPL installs one that checks for runnable HPC tasks).
  void set_balance_inhibitor(std::function<bool()> fn);
  bool balancing_inhibited() const;

  // --- hooks used by scheduling classes & the load balancer ------------------
  /// Ask `cpu` to re-run the scheduler (0-delay event, like an IPI).
  void resched_cpu(hw::CpuId cpu);
  /// Move a queued (not running) task to dst and enqueue it there.
  void migrate_queued_task(Task& t, hw::CpuId dst);
  /// Ask the migration/N kthread on `src` to push src's running/queued CFS
  /// task to `dst` (active load balancing).
  void request_active_balance(hw::CpuId src, hw::CpuId dst);
  /// Effective priority of whatever runs on `cpu` for RT placement:
  /// -1 idle, 0 CFS, 50 HPC, 100+prio RT.
  int effective_prio_on(hw::CpuId cpu);

  /// Force an immediate account of the running task on `cpu` (balancers call
  /// this before reading loads so vruntimes are current).
  void account_current(hw::CpuId cpu);

  // --- used by Behavior implementations --------------------------------------
  /// Wake a sleeping/blocked task (timer expiry and cond_signal use this).
  void wake_task(Task& t);

  /// Total exited + live tasks ever created (test helper).
  std::size_t task_count() const { return tasks_.size(); }

  /// CPU time the idle task accumulated on `cpu` (idle time).
  SimDuration idle_time(hw::CpuId cpu) const;

  /// Snapshot of the raw quantities the power model integrates (busy/spin/
  /// idle thread-time and event counts).  Subtract two snapshots to meter a
  /// window (see hw::compute_energy).
  hw::EnergyInputs energy_inputs() const;

 private:
  friend class MigrationBehavior;

  struct CpuRq {
    std::unique_ptr<Task> idle;
    Task* current = nullptr;
    int nr_running = 0;
    bool need_resched = false;
    bool resched_pending = false;  // 0-delay resched event outstanding
    SimTime work_start = 0;        // unaccounted execution begins here
    double current_speed = 1.0;
    sim::EventId completion = sim::kInvalidEventId;
    sim::EventId tick_event = sim::kInvalidEventId;
    bool tick_running = false;
    std::uint64_t nr_switches = 0;
    SimDuration idle_ns = 0;
    SimTime idle_since = 0;
    // Active balance request state.
    bool active_pending = false;
    hw::CpuId active_dst = hw::kInvalidCpu;
    Task* migration_thread = nullptr;
    CondId migration_cond = kInvalidCond;
    // Hotplug state.
    bool online = true;
    bool migration_parked = false;  // migration/N parked by cpu_offline
  };

  SchedClass* class_of(const Task& t);
  int class_rank(const SchedClass* cls) const;
  int class_rank_of(const Task& t);

  void __schedule(hw::CpuId cpu);
  void refresh_execution(hw::CpuId cpu);
  void advance_action(hw::CpuId cpu, Task& t);
  void handle_completion(hw::CpuId cpu);
  void tick(hw::CpuId cpu);
  void update_tick_state(hw::CpuId cpu);
  void enqueue_and_preempt(Task& t, hw::CpuId target, bool wakeup);
  void set_task_cpu(Task& t, hw::CpuId cpu);
  void do_exit(hw::CpuId cpu, Task& t);
  /// Machine-model cleanup + exit listeners, shared by __schedule's deferred
  /// reap and kill_task's immediate one.
  void finish_task_exit(Task& t);
  /// Clamp a class-chosen target to an online, affinity-allowed CPU; breaks
  /// the affinity mask (Linux select_fallback_rq) as a last resort.
  hw::CpuId sanitize_target(Task& t, hw::CpuId target);
  /// Take the dying CPU's running task off it synchronously (cpu_offline).
  void force_off_current(hw::CpuId cpu, std::vector<Task*>& displaced);
  void park_migration_thread(hw::CpuId cpu);
  void rebuild_domains();
  void deliver_trace(sim::TraceRecord rec);
  int busy_threads_in_core(int core) const;
  void refresh_core_siblings(int core, hw::CpuId except);
  /// Re-elect the NOHZ idle-balance owner after an idle<->busy transition.
  void update_ilb();
  bool any_cpu_busy() const;

  sim::Engine& engine_;
  KernelConfig config_;
  hw::Machine machine_;
  SchedDomains domains_;
  sim::Trace trace_;
  bool booted_ = false;
  bool invariant_checks_ = false;
  bool post_dispatch_installed_ = false;

  std::vector<std::unique_ptr<SchedClass>> classes_;  // priority order
  std::unique_ptr<SchedClass> idle_holder_;           // fallback, not searched
  CfsClass* cfs_ = nullptr;
  RtClass* rt_ = nullptr;
  IdleClass* idle_class_ = nullptr;

  std::vector<CpuRq> rqs_;
  std::unordered_map<Tid, std::unique_ptr<Task>> tasks_;
  Tid next_tid_ = 1;
  /// NOHZ idle load balancer: the one idle CPU that keeps ticking and
  /// balances on behalf of all sleeping idle CPUs (Linux 2.6.3x "ilb").
  hw::CpuId ilb_cpu_ = hw::kInvalidCpu;

  CondId next_cond_ = 1;
  std::unordered_map<CondId, std::vector<Tid>> cond_waiters_;
  std::unordered_map<CondId, bool> cond_state_;  // true = fired

  std::vector<std::function<void(Task&)>> exit_listeners_;
  std::vector<std::function<void(const sim::TraceRecord&)>> trace_hooks_;
  std::function<bool()> balance_inhibitor_;

  KernelCounters counters_;

  // Aggregates for the power model.
  SimDuration busy_ns_ = 0;
  SimDuration smt_paired_ns_ = 0;
  SimDuration smt_extra_ns_ = 0;
  SimDuration spin_ns_ = 0;
};

}  // namespace hpcs::kernel
