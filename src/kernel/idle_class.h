// The idle scheduling class: owns the per-CPU swapper tasks.
//
// As the paper notes, the idle class always has its idle task available, so
// the Scheduler Core's search never fails.  Idle tasks are never enqueued
// anywhere; the core falls back to them when every other class is empty.
#pragma once

#include "kernel/sched_class.h"

namespace hpcs::kernel {

class IdleClass : public SchedClass {
 public:
  explicit IdleClass(Kernel& kernel) : SchedClass(kernel) {}

  const char* name() const override { return "idle"; }
  bool owns(Policy policy) const override { return policy == Policy::kIdle; }

  void enqueue(hw::CpuId, Task&, bool) override {}
  void dequeue(hw::CpuId, Task&, bool) override {}
  Task* pick_next(hw::CpuId) override { return nullptr; }
  void put_prev(hw::CpuId, Task&) override {}
  void set_curr(hw::CpuId, Task&) override {}
  void clear_curr(hw::CpuId, Task&) override {}
  void task_tick(hw::CpuId, Task&) override {}
  void yield_task(hw::CpuId, Task&) override {}
  bool wakeup_preempt(hw::CpuId, Task&, Task&) override { return true; }
  hw::CpuId select_cpu(Task& t, bool) override { return t.cpu; }
  int nr_runnable(hw::CpuId) const override { return 0; }
  int total_runnable() const override { return 0; }
};

}  // namespace hpcs::kernel
