// Task control block and the behaviour (workload) abstraction.
//
// A Task is the simulated equivalent of a Linux task_struct.  Its behaviour
// is supplied by the workload layer as a small program: each time the
// previous action completes, the kernel asks the behaviour for the next one.
// Actions are deliberately low-level (compute / sleep / wait / yield / exit);
// MPI collectives, daemon duty cycles, and launcher logic are all composed
// from them by higher layers.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "hw/topology.h"
#include "kernel/prio.h"
#include "kernel/rbtree.h"
#include "util/time.h"

namespace hpcs::kernel {

class Kernel;
struct Task;

using Tid = int;
inline constexpr Tid kInvalidTid = 0;

/// Condition identifier for blocking waits (MPI barriers, waitpid, ...).
using CondId = std::uint64_t;
inline constexpr CondId kInvalidCond = 0;

/// Affinity is a CPU bitmask; the simulator supports up to 64 CPUs.
using CpuMask = std::uint64_t;

constexpr CpuMask cpu_mask_all() { return ~0ULL; }
constexpr CpuMask cpu_mask_of(hw::CpuId cpu) { return 1ULL << cpu; }
constexpr bool mask_has(CpuMask mask, hw::CpuId cpu) {
  return (mask >> cpu) & 1ULL;
}

enum class ActionKind : std::uint8_t {
  kCompute,   // execute `work` units (1 unit = 1 ns at full speed)
  kSleep,     // leave the CPU for `duration` of wall-clock (timer wakeup)
  kWaitCond,  // wait for a condition: spin for `spin` of CPU time, then block
  kYield,     // sched_yield()
  kExit,      // terminate
};

struct Action {
  ActionKind kind = ActionKind::kExit;
  Work work = 0;
  SimDuration duration = 0;
  CondId cond = kInvalidCond;
  SimDuration spin = 0;

  static Action compute(Work w) { return {ActionKind::kCompute, w, 0, 0, 0}; }
  static Action sleep(SimDuration d) {
    return {ActionKind::kSleep, 0, d, 0, 0};
  }
  /// Wait until `cond` fires; consume up to `spin` of CPU time busy-polling
  /// first (MPI-style spin-then-block; spin = 0 blocks immediately).
  static Action wait(CondId cond, SimDuration spin_budget) {
    return {ActionKind::kWaitCond, 0, 0, cond, spin_budget};
  }
  static Action yield() { return {ActionKind::kYield, 0, 0, 0, 0}; }
  static Action exit_task() { return {ActionKind::kExit, 0, 0, 0, 0}; }
};

/// Workload hook: produces the task's next action when the previous one is
/// done.  Behaviours may call back into the kernel (spawn tasks, signal
/// conditions) from next().
class Behavior {
 public:
  virtual ~Behavior() = default;
  virtual Action next(Kernel& kernel, Task& self) = 0;
};

enum class TaskState : std::uint8_t {
  kNew,       // created, not yet enqueued
  kRunnable,  // on a runqueue, not running
  kRunning,   // current on some CPU
  kSleeping,  // timed sleep
  kBlocked,   // waiting on a condition
  kExited,
};

const char* task_state_name(TaskState state);

/// Per-task accounting mirroring the fields perf reads.
struct TaskAccounting {
  SimDuration runtime = 0;        // CPU time actually consumed
  SimDuration spin_time = 0;      // subset of runtime: busy-waiting
  std::uint64_t switches_out = 0; // times this task was switched out
  std::uint64_t migrations = 0;   // se.nr_migrations equivalent
  std::uint64_t preemptions = 0;  // involuntary deschedules
  SimTime created_at = 0;
  SimTime exited_at = 0;
};

struct Task {
  // --- identity -----------------------------------------------------------
  Tid tid = kInvalidTid;
  std::string name;
  Tid parent = kInvalidTid;

  // --- scheduling parameters ----------------------------------------------
  Policy policy = Policy::kNormal;
  int nice = 0;          // CFS static priority
  int rt_prio = 0;       // 1..99, higher = more urgent (RT and HPC ordering)
  CpuMask affinity = cpu_mask_all();
  std::uint32_t weight = kNice0Load;  // derived from nice for CFS load math

  // --- state ---------------------------------------------------------------
  TaskState state = TaskState::kNew;
  hw::CpuId cpu = hw::kInvalidCpu;       // CPU currently assigned to
  hw::CpuId last_ran_cpu = hw::kInvalidCpu;
  bool killed = false;  // terminated by Kernel::kill_task, not a clean exit

  // --- current action -------------------------------------------------------
  Action action;
  Work remaining_work = 0;       // for kCompute
  SimDuration spin_left = 0;     // for kWaitCond spin phase
  bool has_action = false;

  // --- CFS entity -----------------------------------------------------------
  RbNode cfs_node;
  std::uint64_t vruntime = 0;
  SimDuration slice_exec = 0;     // CPU time since last (re)enqueue, for tick
  SimTime last_dequeue_time = 0;  // for task_hot()
  bool cfs_queued = false;

  // --- RT entity -------------------------------------------------------------
  SimDuration rr_left = 0;       // RR timeslice remaining
  bool rt_queued = false;
  bool requeue_at_tail = false;  // RR expiry/yield: go to tail, not head

  // --- HPC entity (paper's class keeps its own queue; the intrusive links
  // --- make enqueue/dequeue O(1) with no allocation) -------------------------
  Task* hpc_prev = nullptr;
  Task* hpc_next = nullptr;
  bool hpc_queued = false;

  // --- deferred scheduling-parameter change (sched_setscheduler/nice on a
  // --- running task is applied at the next reschedule, like the real thing)
  bool pending_sched_change = false;
  Policy pending_policy = Policy::kNormal;
  int pending_rt_prio = 0;
  int pending_nice = 0;

  // --- workload --------------------------------------------------------------
  std::unique_ptr<Behavior> behavior;

  TaskAccounting acct;

  bool is_idle_task() const { return policy == Policy::kIdle; }
  bool runnable() const {
    return state == TaskState::kRunnable || state == TaskState::kRunning;
  }

  /// Recompute weight after a nice change.
  void refresh_weight() { weight = nice_to_weight(nice); }
};

}  // namespace hpcs::kernel
