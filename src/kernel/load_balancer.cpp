#include "kernel/load_balancer.h"

#include <algorithm>

#include "kernel/cfs.h"
#include "kernel/kernel.h"
#include "util/log.h"

namespace hpcs::kernel {

LoadBalancer::LoadBalancer(Kernel& kernel, CfsClass& cfs)
    : kernel_(kernel), cfs_(cfs) {
  on_domains_rebuilt();
}

void LoadBalancer::on_domains_rebuilt() {
  const auto ncpu = static_cast<std::size_t>(kernel_.topology().num_cpus());
  const auto nlevels =
      static_cast<std::size_t>(kernel_.domains().num_levels());
  next_balance_.assign(ncpu, std::vector<SimTime>(nlevels, 0));
  interval_.assign(ncpu, std::vector<SimDuration>(nlevels, 0));
  for (std::size_t lvl = 0; lvl < nlevels; ++lvl) {
    const SimDuration base =
        kernel_.domains().level(static_cast<int>(lvl)).base_interval;
    for (std::size_t cpu = 0; cpu < ncpu; ++cpu) interval_[cpu][lvl] = base;
  }
  failed_.assign(ncpu, std::vector<int>(nlevels, 0));
}

LoadBalancer::GroupLoad LoadBalancer::measure_group(
    const std::vector<hw::CpuId>& cpus) const {
  GroupLoad g;
  g.cpus = static_cast<int>(cpus.size());
  for (hw::CpuId c : cpus) {
    const std::uint64_t load = cfs_.cpu_load(c);
    g.load += load;
    g.nr += cfs_.nr_runnable(c);
    g.queued += cfs_.nr_queued(c);
    if (g.busiest_cpu == hw::kInvalidCpu || load > g.busiest_cpu_load) {
      g.busiest_cpu = c;
      g.busiest_cpu_load = load;
    }
  }
  return g;
}

void LoadBalancer::tick_balance(hw::CpuId cpu) {
  if (kernel_.balancing_inhibited()) return;
  const SimTime now = kernel_.now();
  const int nlevels = kernel_.domains().num_levels();
  for (int lvl = 0; lvl < nlevels; ++lvl) {
    auto& next = next_balance_[static_cast<std::size_t>(cpu)]
                              [static_cast<std::size_t>(lvl)];
    if (now < next) continue;
    const auto& dl = kernel_.domains().level(lvl);
    const bool balanced = balance_level(cpu, lvl);
    // Linux progressively doubles the current interval while the domain
    // stays balanced, so quiet domains back off all the way to
    // max_interval; any imbalance snaps it back to base_interval.
    auto& interval = interval_[static_cast<std::size_t>(cpu)]
                              [static_cast<std::size_t>(lvl)];
    interval = balanced ? std::min(interval * 2, dl.max_interval)
                        : dl.base_interval;
    next = now + interval;
  }
}

bool LoadBalancer::balance_level(hw::CpuId cpu, int lvl) {
  ++stats_.passes;
  const auto& config = kernel_.config().cfs;
  const auto groups = kernel_.domains().groups(lvl, cpu);
  auto& fails =
      failed_[static_cast<std::size_t>(cpu)][static_cast<std::size_t>(lvl)];

  // Identify the local group (the one containing `cpu`).
  const std::vector<hw::CpuId>* local_cpus = nullptr;
  for (const auto& g : groups) {
    if (std::find(g.begin(), g.end(), cpu) != g.end()) {
      local_cpus = &g;
      break;
    }
  }
  if (local_cpus == nullptr) return true;

  const GroupLoad local = measure_group(*local_cpus);

  // Find the busiest non-local group.
  const std::vector<hw::CpuId>* busiest_cpus = nullptr;
  GroupLoad busiest;
  for (const auto& g : groups) {
    if (&g == local_cpus) continue;
    const GroupLoad gl = measure_group(g);
    if (busiest_cpus == nullptr || gl.load > busiest.load) {
      busiest_cpus = &g;
      busiest = gl;
    }
  }
  if (busiest_cpus == nullptr || busiest.nr == 0) return true;

  // Rule A — SD_PREFER_SIBLING spreading: an SMT core prefers to carry one
  // task, so a group running more tasks than it has cores is overloaded
  // against a group with spare core capacity.  This is what (eventually)
  // separates two ranks co-resident on one core's hardware threads.
  const int tpc = kernel_.topology().threads_per_core();
  auto spread_capacity = [&](const GroupLoad& g) {
    return std::max(1, g.cpus / tpc);
  };
  const bool sibling_spread = busiest.nr > spread_capacity(busiest) &&
                              local.nr < spread_capacity(local);

  // Rule B — weighted-load imbalance with imbalance_pct hysteresis, exactly
  // as eager as the stock kernel: a CPU holding a rank plus a woken daemon
  // (2048) is "busier" than its neighbours (1024), so the balancer will move
  // the waiting task — rank or daemon alike — and often just displaces the
  // pileup onto another CPU.  This musical-chairs churn during daemon bursts
  // is the migration noise of Table Ia.
  const bool weight_imbalance =
      busiest.nr > busiest.cpus &&
      busiest.load * 100 >
          local.load * static_cast<std::uint64_t>(config.imbalance_pct);

  if (!weight_imbalance && !sibling_spread) {
    fails = 0;
    return true;
  }

  kernel_.trace().record({.time = kernel_.now(),
                          .point = sim::TracePoint::kLoadBalance,
                          .cpu = cpu,
                          .tid = -1,
                          .other_tid = -1,
                          .arg = lvl});

  const hw::CpuId src = busiest.busiest_cpu;
  const bool ignore_hot = fails > config.cache_nice_tries;
  if (move_one_task(src, cpu, ignore_hot)) {
    ++stats_.moves;
    fails = 0;
    return false;
  }

  // Could not move anything (typically: the only candidate is running).
  ++fails;
  if (fails > config.active_balance_after) {
    // Escalate: ask the migration/N kthread on the busiest CPU to push its
    // running CFS task over here.
    if (cfs_.running_task(src) != nullptr) {
      ++stats_.active_requests;
      kernel_.request_active_balance(src, cpu);
    }
    fails = 0;
  }
  return false;
}

bool LoadBalancer::move_one_task(hw::CpuId src, hw::CpuId dst,
                                 bool ignore_hot) {
  if (src == dst || src == hw::kInvalidCpu) return false;
  // Walk the CFS timeline in place (steal preference order); every balance
  // pass used to copy the whole runqueue into a std::vector first.
  for (Task* t = cfs_.first_queued(src); t != nullptr;
       t = CfsClass::next_queued(*t)) {
    if (!mask_has(t->affinity, dst)) continue;
    if (!ignore_hot && cfs_.task_hot(*t)) continue;
    kernel_.migrate_queued_task(*t, dst);
    return true;
  }
  return false;
}

bool LoadBalancer::newidle(hw::CpuId cpu) {
  if (kernel_.balancing_inhibited()) return false;
  // Pull one task, searching nearest domains first (cache friendliness).
  const int nlevels = kernel_.domains().num_levels();
  for (int lvl = 0; lvl < nlevels; ++lvl) {
    for (hw::CpuId src : kernel_.domains().span(lvl, cpu)) {
      if (src == cpu) continue;
      if (cfs_.nr_queued(src) == 0) continue;
      if (move_one_task(src, cpu, /*ignore_hot=*/false)) {
        ++stats_.newidle_pulls;
        ++stats_.moves;
        return true;
      }
    }
  }
  return false;
}

}  // namespace hpcs::kernel
