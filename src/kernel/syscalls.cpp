// The syscall layer: sched_setscheduler / sched_setaffinity / nice.
//
// These are the knobs Section IV of the paper evaluates as alternatives to a
// new scheduling class (and finds insufficient).  Changes to a *running*
// task are deferred to its next reschedule, mirroring how the real syscalls
// take effect at the next scheduling decision.
#include "kernel/kernel.h"

#include "kernel/cfs.h"

namespace hpcs::kernel {
namespace {

bool valid_params(Policy policy, int prio) {
  if (is_rt_policy(policy)) return prio >= kMinRtPrio && prio <= kMaxRtPrio;
  if (policy == Policy::kHpc) {
    return prio == 0 || (prio >= kMinRtPrio && prio <= kMaxRtPrio);
  }
  if (policy == Policy::kIdle) return false;  // reserved for swapper tasks
  return prio == 0;
}

}  // namespace

bool Kernel::sys_setscheduler(Tid tid, Policy policy, int prio) {
  Task* t = find_task(tid);
  if (t == nullptr || t->state == TaskState::kExited) return false;
  if (!valid_params(policy, prio)) return false;

  if (t->state == TaskState::kRunning) {
    t->pending_sched_change = true;
    t->pending_policy = policy;
    t->pending_rt_prio = prio;
    t->pending_nice = t->nice;
    resched_cpu(t->cpu);
    return true;
  }

  SchedClass* old_cls = class_of(*t);
  const bool was_queued = t->state == TaskState::kRunnable;
  if (was_queued) old_cls->dequeue(t->cpu, *t, /*sleeping=*/false);
  t->policy = policy;
  t->rt_prio = prio;
  if (was_queued) {
    SchedClass* new_cls = class_of(*t);
    new_cls->enqueue(t->cpu, *t, /*wakeup=*/false);
    // The class change may make the task eligible to preempt.
    Task* cur = current_on(t->cpu);
    if (cur->is_idle_task() || class_rank(new_cls) < class_rank_of(*cur)) {
      resched_cpu(t->cpu);
    }
  }
  return true;
}

bool Kernel::sys_setaffinity(Tid tid, CpuMask mask) {
  Task* t = find_task(tid);
  if (t == nullptr || t->state == TaskState::kExited) return false;
  const int ncpu = machine_.topology().num_cpus();
  const CpuMask present = ncpu >= 64 ? cpu_mask_all() : ((1ULL << ncpu) - 1);
  mask &= present;
  if (mask == 0) return false;
  // Like the real syscall: a mask with no *online* CPU is rejected rather
  // than stranding the task (-EINVAL from cpuset_cpus_allowed intersection).
  if ((mask & online_cpu_mask()) == 0) return false;
  t->affinity = mask;

  if (t->state == TaskState::kRunnable && !mask_has(mask, t->cpu)) {
    // Move it off the now-forbidden CPU immediately.
    SchedClass* cls = class_of(*t);
    hw::CpuId target = hw::kInvalidCpu;
    for (hw::CpuId c = 0; c < ncpu; ++c) {
      if (mask_has(mask, c) && cpu_is_online(c) &&
          (target == hw::kInvalidCpu || nr_running(c) < nr_running(target))) {
        target = c;
      }
    }
    if (target != hw::kInvalidCpu) {
      cls->dequeue(t->cpu, *t, /*sleeping=*/false);
      rqs_[static_cast<std::size_t>(t->cpu)].nr_running -= 1;
      update_tick_state(t->cpu);
      set_task_cpu(*t, target);
      enqueue_and_preempt(*t, target, /*wakeup=*/false);
    }
  } else if (t->state == TaskState::kRunning && !mask_has(mask, t->cpu)) {
    resched_cpu(t->cpu);  // __schedule performs the forced move
  }
  return true;
}

bool Kernel::sys_setnice(Tid tid, int nice) {
  Task* t = find_task(tid);
  if (t == nullptr || t->state == TaskState::kExited) return false;
  if (nice < kMinNice || nice > kMaxNice) return false;

  if (t->state == TaskState::kRunning) {
    t->pending_sched_change = true;
    t->pending_policy = t->policy;
    t->pending_rt_prio = t->rt_prio;
    t->pending_nice = nice;
    resched_cpu(t->cpu);
    return true;
  }
  SchedClass* cls = class_of(*t);
  const bool was_queued = t->state == TaskState::kRunnable;
  // Weight feeds CFS load sums, so requeue around the change.
  if (was_queued) cls->dequeue(t->cpu, *t, /*sleeping=*/false);
  t->nice = nice;
  t->refresh_weight();
  if (was_queued) cls->enqueue(t->cpu, *t, /*wakeup=*/false);
  return true;
}

}  // namespace hpcs::kernel
