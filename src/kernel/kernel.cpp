#include "kernel/kernel.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "kernel/cfs.h"
#include "kernel/idle_class.h"
#include "kernel/rt.h"
#include "util/log.h"

namespace hpcs::kernel {

namespace {
/// Resample the running task's speed at least this often even without ticks
/// (keeps cache-warmth integration accurate under NOHZ/NETTICK).
constexpr SimDuration kSpeedResample = 4 * kMillisecond;
}  // namespace

/// Behaviour of the per-CPU migration/N kernel threads (RT prio 99): sleep
/// until the load balancer requests an active balance, then push one CFS
/// task from this CPU to the requested destination.  The preemption the
/// thread itself causes is exactly the "migration kernel daemon" noise the
/// paper describes.
class MigrationBehavior : public Behavior {
 public:
  explicit MigrationBehavior(hw::CpuId cpu) : cpu_(cpu) {}

  Action next(Kernel& k, Task& self) override {
    (void)self;
    auto& rq = k.rqs_[static_cast<std::size_t>(cpu_)];
    if (rq.active_pending) {
      rq.active_pending = false;
      const hw::CpuId dst = rq.active_dst;
      // The rank that was running here was preempted by this thread and now
      // sits queued; push the first pushable CFS task to the destination.
      // The destination can have gone offline since the request was queued.
      if (k.cpu_is_online(dst)) {
        for (Task* victim = k.cfs_->first_queued(cpu_); victim != nullptr;
             victim = CfsClass::next_queued(*victim)) {
          if (!mask_has(victim->affinity, dst)) continue;
          k.migrate_queued_task(*victim, dst);
          ++k.counters_.active_balances;
          break;
        }
      }
      return Action::compute(3 * kMicrosecond);  // push path cost
    }
    rq.migration_cond = k.cond_create();
    return Action::wait(rq.migration_cond, 0);
  }

 private:
  hw::CpuId cpu_;
};

Kernel::Kernel(sim::Engine& engine, KernelConfig config)
    : engine_(engine),
      config_(config),
      machine_(config.machine),
      domains_(machine_.topology()) {
  const int ncpu = machine_.topology().num_cpus();
  if (ncpu > 64) throw std::invalid_argument("Kernel: at most 64 CPUs");
  rqs_.resize(static_cast<std::size_t>(ncpu));

  auto rt = std::make_unique<RtClass>(*this);
  rt_ = rt.get();
  auto cfs = std::make_unique<CfsClass>(*this);
  cfs_ = cfs.get();
  auto idle = std::make_unique<IdleClass>(*this);
  idle_class_ = idle.get();
  classes_.push_back(std::move(rt));
  classes_.push_back(std::move(cfs));
  // The idle class is a fallback, never searched.
  idle_holder_ = std::move(idle);

#ifdef HPCS_CHECK_INVARIANTS
  invariant_checks_ = true;
#endif
}

Kernel::~Kernel() {
  // Our post-dispatch hook captures `this`; do not leave it dangling on an
  // engine that may outlive us.
  if (post_dispatch_installed_) engine_.set_post_dispatch(nullptr);
}

void Kernel::register_class_after_rt(std::unique_ptr<SchedClass> cls) {
  if (booted_) throw std::logic_error("register_class_after_rt after boot");
  classes_.insert(classes_.begin() + 1, std::move(cls));
}

void Kernel::boot() {
  if (booted_) throw std::logic_error("Kernel::boot called twice");
  booted_ = true;
  const int ncpu = machine_.topology().num_cpus();
  for (hw::CpuId cpu = 0; cpu < ncpu; ++cpu) {
    auto& rq = rqs_[static_cast<std::size_t>(cpu)];
    rq.idle = std::make_unique<Task>();
    rq.idle->tid = -(cpu + 1);
    rq.idle->name = "swapper/" + std::to_string(cpu);
    rq.idle->policy = Policy::kIdle;
    rq.idle->cpu = cpu;
    rq.idle->state = TaskState::kRunning;
    rq.current = rq.idle.get();
    rq.idle_since = engine_.now();
    if (!config_.nohz_idle) {
      // Ticks on idle CPUs, staggered like jiffies-aligned per-CPU timers.
      const SimDuration stagger =
          config_.machine.tick_period * static_cast<SimDuration>(cpu) /
          static_cast<SimDuration>(ncpu);
      rq.tick_event = engine_.schedule_after(
          config_.machine.tick_period + stagger, [this, cpu] { tick(cpu); });
    }
  }
  // migration/N kthreads (RT prio 99, hard-affine to their CPU).
  for (hw::CpuId cpu = 0; cpu < ncpu; ++cpu) {
    auto& rq = rqs_[static_cast<std::size_t>(cpu)];
    rq.migration_cond = cond_create();
    SpawnSpec spec;
    spec.name = "migration/" + std::to_string(cpu);
    spec.policy = Policy::kFifo;
    spec.rt_prio = kMaxRtPrio;
    spec.affinity = cpu_mask_of(cpu);
    spec.behavior = std::make_unique<MigrationBehavior>(cpu);
    const Tid tid = spawn(std::move(spec));
    rq.migration_thread = &task(tid);
  }
  if (invariant_checks_) set_invariant_checks(true);
}

void Kernel::set_invariant_checks(bool on) {
  invariant_checks_ = on;
  if (on && !post_dispatch_installed_) {
    post_dispatch_installed_ = true;
    engine_.set_post_dispatch([this] {
      if (invariant_checks_) check_invariants();
    });
  }
}

SchedClass* Kernel::class_of(const Task& t) {
  if (t.policy == Policy::kIdle) return idle_class_;
  for (auto& cls : classes_) {
    if (cls->owns(t.policy)) return cls.get();
  }
  throw std::logic_error("no scheduling class owns policy");
}

int Kernel::class_rank(const SchedClass* cls) const {
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    if (classes_[i].get() == cls) return static_cast<int>(i);
  }
  return static_cast<int>(classes_.size());  // idle
}

int Kernel::class_rank_of(const Task& t) { return class_rank(class_of(t)); }

Tid Kernel::spawn(SpawnSpec spec) {
  if (!booted_) throw std::logic_error("Kernel::spawn before boot");
  const Tid tid = next_tid_++;
  auto owned = std::make_unique<Task>();
  Task& t = *owned;
  t.tid = tid;
  t.name = std::move(spec.name);
  t.parent = spec.parent;
  t.policy = spec.policy;
  t.nice = spec.nice;
  t.rt_prio = spec.rt_prio;
  t.affinity = spec.affinity;
  t.behavior = std::move(spec.behavior);
  t.refresh_weight();
  t.acct.created_at = engine_.now();
  t.cfs_node.owner = &t;
  tasks_.emplace(tid, std::move(owned));
  machine_.cache().on_task_created(tid);
  machine_.tlb().on_task_created(tid);
  machine_.numa().on_task_created(tid);
  ++counters_.forks;

  // A child starts from its parent's CPU; the class's fork placement then
  // moves it, which counts as a migration (matching the paper's accounting
  // of one migration per MPI task created).
  hw::CpuId origin = 0;
  if (const Task* parent = find_task(spec.parent)) origin = parent->cpu;
  t.cpu = origin == hw::kInvalidCpu ? 0 : origin;

  deliver_trace({.time = engine_.now(),
                 .point = sim::TracePoint::kSchedFork,
                 .cpu = t.cpu,
                 .tid = tid,
                 .other_tid = spec.parent,
                 .arg = 0});

  SchedClass* cls = class_of(t);
  const hw::CpuId target =
      sanitize_target(t, cls->select_cpu(t, /*is_fork=*/true));
  set_task_cpu(t, target);
  enqueue_and_preempt(t, target, /*wakeup=*/false);
  return tid;
}

Task* Kernel::find_task(Tid tid) {
  auto it = tasks_.find(tid);
  return it == tasks_.end() ? nullptr : it->second.get();
}

const Task* Kernel::find_task(Tid tid) const {
  auto it = tasks_.find(tid);
  return it == tasks_.end() ? nullptr : it->second.get();
}

Task& Kernel::task(Tid tid) {
  Task* t = find_task(tid);
  if (t == nullptr) throw std::out_of_range("unknown tid");
  return *t;
}

Task* Kernel::current_on(hw::CpuId cpu) {
  return rqs_.at(static_cast<std::size_t>(cpu)).current;
}

int Kernel::nr_running(hw::CpuId cpu) const {
  return rqs_.at(static_cast<std::size_t>(cpu)).nr_running;
}

bool Kernel::cpu_idle(hw::CpuId cpu) const {
  const auto& rq = rqs_.at(static_cast<std::size_t>(cpu));
  return rq.current == rq.idle.get();
}

void Kernel::set_balance_inhibitor(std::function<bool()> fn) {
  balance_inhibitor_ = std::move(fn);
}

bool Kernel::balancing_inhibited() const {
  return balance_inhibitor_ && balance_inhibitor_();
}

int Kernel::effective_prio_on(hw::CpuId cpu) {
  Task* cur = current_on(cpu);
  if (cur->is_idle_task()) return -1;
  if (is_rt_policy(cur->policy)) return 100 + cur->rt_prio;
  if (cur->policy == Policy::kHpc) return 50;
  return 0;
}

hw::EnergyInputs Kernel::energy_inputs() const {
  hw::EnergyInputs inputs;
  inputs.busy_ns = busy_ns_;
  inputs.smt_paired_ns = smt_paired_ns_;
  inputs.smt_extra_ns = smt_extra_ns_;
  inputs.spin_ns = spin_ns_;
  for (hw::CpuId cpu = 0; cpu < machine_.topology().num_cpus(); ++cpu) {
    inputs.idle_ns += idle_time(cpu);
  }
  inputs.context_switches = counters_.context_switches;
  inputs.migrations = counters_.cpu_migrations;
  inputs.ticks = counters_.ticks;
  return inputs;
}

SimDuration Kernel::idle_time(hw::CpuId cpu) const {
  const auto& rq = rqs_.at(static_cast<std::size_t>(cpu));
  SimDuration total = rq.idle_ns;
  if (rq.current == rq.idle.get()) total += engine_.now() - rq.idle_since;
  return total;
}

void Kernel::deliver_trace(sim::TraceRecord rec) {
  trace_.record(rec);
  for (auto& hook : trace_hooks_) hook(rec);
}

void Kernel::add_exit_listener(std::function<void(Task&)> fn) {
  exit_listeners_.push_back(std::move(fn));
}

void Kernel::add_trace_hook(std::function<void(const sim::TraceRecord&)> fn) {
  trace_hooks_.push_back(std::move(fn));
}

// --- condition variables -----------------------------------------------------

CondId Kernel::cond_create() {
  const CondId id = next_cond_++;
  cond_state_[id] = false;
  return id;
}

bool Kernel::cond_fired(CondId cond) const {
  auto it = cond_state_.find(cond);
  // Unknown conditions are treated as already fired so late waiters proceed.
  return it == cond_state_.end() ? true : it->second;
}

void Kernel::cond_signal(CondId cond) {
  auto state = cond_state_.find(cond);
  if (state == cond_state_.end() || state->second) return;
  state->second = true;
  auto it = cond_waiters_.find(cond);
  if (it == cond_waiters_.end()) return;
  std::vector<Tid> waiters = std::move(it->second);
  cond_waiters_.erase(it);
  for (Tid tid : waiters) {
    Task* t = find_task(tid);
    if (t == nullptr || t->state == TaskState::kExited) continue;
    switch (t->state) {
      case TaskState::kBlocked:
      case TaskState::kSleeping:
        t->has_action = false;
        wake_task(*t);
        break;
      case TaskState::kRunnable:
        // Preempted mid-spin: the wait completes; next dispatch advances.
        t->has_action = false;
        break;
      case TaskState::kRunning: {
        // Spinning right now: the poll succeeds immediately.
        const hw::CpuId cpu = t->cpu;
        account_current(cpu);
        t->has_action = false;
        advance_action(cpu, *t);
        break;
      }
      default:
        break;
    }
  }
}

// --- wakeup / enqueue --------------------------------------------------------

void Kernel::wake_task(Task& t) {
  if (t.state == TaskState::kExited || t.runnable()) return;

  // The task blocked but its CPU has not rescheduled yet: revive in place.
  auto& prev_rq = rqs_[static_cast<std::size_t>(t.cpu)];
  if (prev_rq.current == &t) {
    t.state = TaskState::kRunning;
    if (!t.has_action) advance_action(t.cpu, t);
    return;
  }

  SchedClass* cls = class_of(t);
  const hw::CpuId target =
      sanitize_target(t, cls->select_cpu(t, /*is_fork=*/false));
  set_task_cpu(t, target);
  enqueue_and_preempt(t, target, /*wakeup=*/true);
}

hw::CpuId Kernel::sanitize_target(Task& t, hw::CpuId target) {
  if (target != hw::kInvalidCpu && cpu_is_online(target) &&
      mask_has(t.affinity, target)) {
    return target;
  }
  const int ncpu = machine_.topology().num_cpus();
  for (hw::CpuId c = 0; c < ncpu; ++c) {
    if (cpu_is_online(c) && mask_has(t.affinity, c)) return c;
  }
  // No online CPU left in the mask: break affinity like select_fallback_rq.
  t.affinity = cpu_mask_all();
  for (hw::CpuId c = 0; c < ncpu; ++c) {
    if (cpu_is_online(c)) return c;
  }
  throw std::logic_error("sanitize_target: no online CPU");
}

void Kernel::enqueue_and_preempt(Task& t, hw::CpuId target, bool wakeup) {
  auto& rq = rqs_[static_cast<std::size_t>(target)];
  if (!rq.online) {
    throw std::logic_error("enqueue_and_preempt: target CPU " +
                           std::to_string(target) + " is offline");
  }
  t.state = TaskState::kRunnable;
  t.cpu = target;
  SchedClass* cls = class_of(t);
  cls->enqueue(target, t, wakeup);
  rq.nr_running += 1;
  if (wakeup) {
    ++counters_.wakeups;
    deliver_trace({.time = engine_.now(),
                   .point = sim::TracePoint::kSchedWakeup,
                   .cpu = target,
                   .tid = t.tid,
                   .other_tid = -1,
                   .arg = 0});
  }
  update_tick_state(target);

  Task* cur = rq.current;
  if (cur->is_idle_task()) {
    resched_cpu(target);
    return;
  }
  const int rank_new = class_rank(cls);
  const int rank_cur = class_rank_of(*cur);
  if (rank_new < rank_cur) {
    resched_cpu(target);
  } else if (rank_new == rank_cur && cls->wakeup_preempt(target, *cur, t)) {
    resched_cpu(target);
  }
}

void Kernel::set_task_cpu(Task& t, hw::CpuId cpu) {
  if (t.cpu != hw::kInvalidCpu && t.cpu != cpu) {
    t.acct.migrations += 1;
    ++counters_.cpu_migrations;
    deliver_trace({.time = engine_.now(),
                   .point = sim::TracePoint::kSchedMigrate,
                   .cpu = cpu,
                   .tid = t.tid,
                   .other_tid = -1,
                   .arg = t.cpu});
  }
  t.cpu = cpu;
}

void Kernel::migrate_queued_task(Task& t, hw::CpuId dst) {
  if (t.state != TaskState::kRunnable) {
    throw std::logic_error("migrate_queued_task: task not queued");
  }
  const hw::CpuId src = t.cpu;
  if (src == dst) return;
  SchedClass* cls = class_of(t);
  cls->dequeue(src, t, /*sleeping=*/false);
  rqs_[static_cast<std::size_t>(src)].nr_running -= 1;
  update_tick_state(src);
  ++counters_.balance_moves;
  set_task_cpu(t, dst);
  enqueue_and_preempt(t, dst, /*wakeup=*/false);
}

void Kernel::request_active_balance(hw::CpuId src, hw::CpuId dst) {
  auto& rq = rqs_[static_cast<std::size_t>(src)];
  if (!rq.online || rq.migration_parked || !cpu_is_online(dst)) return;
  if (rq.active_pending) return;
  rq.active_pending = true;
  rq.active_dst = dst;
  cond_signal(rq.migration_cond);
}

void Kernel::resched_cpu(hw::CpuId cpu) {
  auto& rq = rqs_[static_cast<std::size_t>(cpu)];
  rq.need_resched = true;
  if (rq.resched_pending) return;
  rq.resched_pending = true;
  engine_.schedule_after(0, [this, cpu] {
    auto& r = rqs_[static_cast<std::size_t>(cpu)];
    r.resched_pending = false;
    if (r.need_resched) __schedule(cpu);
  });
}

// --- execution accounting ----------------------------------------------------

int Kernel::busy_threads_in_core(int core) const {
  int busy = 0;
  for (hw::CpuId cpu : machine_.topology().cpus_of_core(core)) {
    const auto& rq = rqs_[static_cast<std::size_t>(cpu)];
    if (rq.current != rq.idle.get()) ++busy;
  }
  return busy;
}

void Kernel::account_current(hw::CpuId cpu) {
  auto& rq = rqs_[static_cast<std::size_t>(cpu)];
  Task* cur = rq.current;
  const SimTime now = engine_.now();
  if (cur->is_idle_task()) return;  // idle time folded in at switch
  if (now <= rq.work_start) return;
  const SimDuration elapsed = now - rq.work_start;
  rq.work_start = now;
  cur->acct.runtime += elapsed;
  busy_ns_ += elapsed;
  const int busy = busy_threads_in_core(machine_.topology().core_of(cpu));
  if (busy > 1) {
    smt_paired_ns_ += elapsed;
    // Only elapsed/busy of this slice is the core's fair share for this
    // thread; the remainder is capacity the co-runners are also drawing.
    smt_extra_ns_ += elapsed - elapsed / busy;
  }
  machine_.cache().note_ran(cur->tid, cpu, elapsed);
  machine_.tlb().note_ran(cur->tid, cpu, elapsed);
  machine_.numa().note_ran(cur->tid, cpu, elapsed);
  SchedClass* cls = class_of(*cur);
  if (cls == cfs_) cfs_->update_curr(cpu, *cur, elapsed);
  if (cls == rt_) rt_->charge_rt(cpu, elapsed);
  if (cur->has_action && cur->action.kind == ActionKind::kWaitCond) {
    spin_ns_ += elapsed;
    cur->acct.spin_time += elapsed;
  }
  if (cur->has_action) {
    if (cur->action.kind == ActionKind::kCompute) {
      const auto done = static_cast<Work>(
          std::llround(static_cast<double>(elapsed) * rq.current_speed));
      cur->remaining_work = done >= cur->remaining_work
                                ? 0
                                : cur->remaining_work - done;
    } else if (cur->action.kind == ActionKind::kWaitCond) {
      cur->spin_left = elapsed >= cur->spin_left ? 0 : cur->spin_left - elapsed;
    }
  }
}

void Kernel::refresh_execution(hw::CpuId cpu) {
  auto& rq = rqs_[static_cast<std::size_t>(cpu)];
  if (rq.completion != sim::kInvalidEventId) {
    engine_.cancel(rq.completion);
    rq.completion = sim::kInvalidEventId;
  }
  Task* cur = rq.current;
  if (cur->is_idle_task()) return;
  const double cache_f = machine_.cache().speed_factor(cur->tid, cpu);
  const double tlb_f = machine_.tlb().speed_factor(cur->tid, cpu);
  const double numa_f = machine_.numa().speed_factor(cur->tid, cpu);
  const double smt_f = machine_.smt_factor(
      busy_threads_in_core(machine_.topology().core_of(cpu)));
  rq.current_speed = cache_f * tlb_f * numa_f * smt_f;
  if (!cur->has_action) return;
  const SimTime start = std::max(engine_.now(), rq.work_start);
  if (cur->action.kind == ActionKind::kCompute) {
    if (cur->remaining_work == 0) {
      // Rounding in a mid-segment account already finished the work.
      rq.completion =
          engine_.schedule_after(0, [this, cpu] { handle_completion(cpu); });
      return;
    }
    auto dt = static_cast<SimDuration>(
        std::ceil(static_cast<double>(cur->remaining_work) / rq.current_speed));
    // Resample speed periodically so cache re-warming shows up even without
    // ticks (NOHZ/NETTICK).
    dt = std::min<SimDuration>(dt, kSpeedResample);
    rq.completion = engine_.schedule_at(
        start + dt, [this, cpu] { handle_completion(cpu); });
  } else if (cur->action.kind == ActionKind::kWaitCond) {
    if (cur->spin_left == 0) {
      rq.completion =
          engine_.schedule_after(0, [this, cpu] { handle_completion(cpu); });
      return;
    }
    rq.completion = engine_.schedule_at(
        start + cur->spin_left, [this, cpu] { handle_completion(cpu); });
  }
}

void Kernel::handle_completion(hw::CpuId cpu) {
  auto& rq = rqs_[static_cast<std::size_t>(cpu)];
  rq.completion = sim::kInvalidEventId;
  Task* cur = rq.current;
  if (cur->is_idle_task()) return;
  account_current(cpu);
  if (!cur->has_action) {
    advance_action(cpu, *cur);
    return;
  }
  if (cur->action.kind == ActionKind::kCompute) {
    if (cur->remaining_work == 0) {
      cur->has_action = false;
      advance_action(cpu, *cur);
    } else {
      refresh_execution(cpu);  // resample speed, keep going
    }
  } else if (cur->action.kind == ActionKind::kWaitCond) {
    if (cur->spin_left == 0) {
      // Spin budget exhausted: block on the condition (already registered).
      cur->state = TaskState::kBlocked;
      resched_cpu(cpu);
    } else {
      refresh_execution(cpu);
    }
  }
}

void Kernel::advance_action(hw::CpuId cpu, Task& t) {
  auto& rq = rqs_[static_cast<std::size_t>(cpu)];
  assert(rq.current == &t);
  if (rq.completion != sim::kInvalidEventId) {
    engine_.cancel(rq.completion);
    rq.completion = sim::kInvalidEventId;
  }
  for (std::uint32_t guard = 0;; ++guard) {
    if (guard > 1'000'000) {
      throw std::logic_error("advance_action: behaviour livelock for task " +
                             t.name);
    }
    Action a = t.behavior ? t.behavior->next(*this, t) : Action::exit_task();
    // The behaviour callback may have blocked/advanced us reentrantly (e.g.
    // it signalled a condition we then waited on); bail out if the task is
    // no longer current here.
    if (rq.current != &t || t.state != TaskState::kRunning) return;
    t.action = a;
    t.has_action = true;
    switch (a.kind) {
      case ActionKind::kCompute:
        if (a.work == 0) {
          t.has_action = false;
          continue;
        }
        t.remaining_work = a.work;
        refresh_execution(cpu);
        return;
      case ActionKind::kSleep: {
        t.has_action = false;
        t.state = TaskState::kSleeping;
        const Tid tid = t.tid;
        engine_.schedule_after(a.duration, [this, tid] {
          if (Task* x = find_task(tid)) wake_task(*x);
        });
        resched_cpu(cpu);
        return;
      }
      case ActionKind::kWaitCond: {
        if (cond_fired(a.cond)) {
          t.has_action = false;
          continue;
        }
        cond_waiters_[a.cond].push_back(t.tid);
        if (a.spin > 0) {
          t.spin_left = a.spin;
          refresh_execution(cpu);
          return;
        }
        t.state = TaskState::kBlocked;
        resched_cpu(cpu);
        return;
      }
      case ActionKind::kYield:
        t.has_action = false;
        class_of(t)->yield_task(cpu, t);
        resched_cpu(cpu);
        return;
      case ActionKind::kExit:
        do_exit(cpu, t);
        resched_cpu(cpu);
        return;
    }
  }
}

void Kernel::do_exit(hw::CpuId cpu, Task& t) {
  (void)cpu;
  t.state = TaskState::kExited;
  t.has_action = false;
  t.acct.exited_at = engine_.now();
  deliver_trace({.time = engine_.now(),
                 .point = sim::TracePoint::kSchedExit,
                 .cpu = t.cpu,
                 .tid = t.tid,
                 .other_tid = -1,
                 .arg = 0});
}

// --- the scheduler core ------------------------------------------------------

void Kernel::__schedule(hw::CpuId cpu) {
  auto& rq = rqs_[static_cast<std::size_t>(cpu)];
  if (!rq.online) {
    // A resched raced with cpu_offline(); the offline path already drained
    // the runqueue and parked idle as current.
    rq.need_resched = false;
    return;
  }
  rq.need_resched = false;
  account_current(cpu);

  Task* prev = rq.current;
  const bool prev_idle = prev->is_idle_task();
  bool prev_exited = false;

  if (!prev_idle) {
    SchedClass* pcls = class_of(*prev);
    if (prev->pending_sched_change) {
      // Apply a deferred sched_setscheduler()/nice() now that the task is
      // coming off the CPU.
      pcls->dequeue(cpu, *prev, /*sleeping=*/false);
      pcls->clear_curr(cpu, *prev);
      prev->policy = prev->pending_policy;
      prev->rt_prio = prev->pending_rt_prio;
      prev->nice = prev->pending_nice;
      prev->refresh_weight();
      prev->pending_sched_change = false;
      if (prev->state == TaskState::kRunning) {
        prev->state = TaskState::kRunnable;
        class_of(*prev)->enqueue(cpu, *prev, /*wakeup=*/false);
      } else {
        rq.nr_running -= 1;
        if (prev->state == TaskState::kExited) prev_exited = true;
      }
    } else if (prev->state == TaskState::kRunning) {
      prev->state = TaskState::kRunnable;
      if (!mask_has(prev->affinity, cpu)) {
        // Affinity changed under us: move to an allowed CPU.  Dequeue before
        // clear_curr (like every other deschedule path) so the class can
        // tell this legitimate curr dequeue from a double dequeue.
        pcls->dequeue(cpu, *prev, /*sleeping=*/false);  // curr accounting
        pcls->clear_curr(cpu, *prev);
        rq.nr_running -= 1;
        const hw::CpuId target =
            sanitize_target(*prev, pcls->select_cpu(*prev, /*is_fork=*/false));
        set_task_cpu(*prev, target);
        enqueue_and_preempt(*prev, target, /*wakeup=*/false);
        pcls = nullptr;
      } else {
        pcls->put_prev(cpu, *prev);
        pcls->clear_curr(cpu, *prev);
      }
    } else {
      // Sleeping / blocked / exited: drop from the runnable set.
      pcls->dequeue(cpu, *prev, /*sleeping=*/true);
      pcls->clear_curr(cpu, *prev);
      rq.nr_running -= 1;
      if (prev->state == TaskState::kExited) prev_exited = true;
    }
  }

  // Pick the next task: walk the class list in priority order.
  Task* next = nullptr;
  for (auto& cls : classes_) {
    next = cls->pick_next(cpu);
    if (next != nullptr) break;
  }
  if (next == nullptr) {
    // About to go idle: newidle balancing may pull work over.
    for (auto& cls : classes_) {
      if (cls->newidle_balance(cpu)) {
        next = cls->pick_next(cpu);
        if (next != nullptr) break;
      }
    }
  }
  if (next == nullptr) next = rq.idle.get();
  const bool next_idle = next->is_idle_task();

  if (next == prev) {
    // No switch: restore the running state we optimistically cleared.
    if (!prev_idle) {
      prev->state = TaskState::kRunning;
      SchedClass* cls = class_of(*prev);
      // pick_next removed it from the queue again.
      cls->set_curr(cpu, *prev);
    }
    update_tick_state(cpu);
    refresh_execution(cpu);
    if (!next_idle && !next->has_action &&
        next->state == TaskState::kRunning) {
      advance_action(cpu, *next);
    }
    return;
  }

  // A real context switch.
  rq.nr_switches += 1;
  ++counters_.context_switches;
  if (!prev_idle) {
    prev->acct.switches_out += 1;
    if (prev->state == TaskState::kRunnable) {
      prev->acct.preemptions += 1;
      ++counters_.preemptions;
      deliver_trace({.time = engine_.now(),
                     .point = sim::TracePoint::kPreempt,
                     .cpu = cpu,
                     .tid = prev->tid,
                     .other_tid = next->tid,
                     .arg = 0});
    }
  }
  deliver_trace({.time = engine_.now(),
                 .point = sim::TracePoint::kSchedSwitch,
                 .cpu = cpu,
                 .tid = next->tid,
                 .other_tid = prev->tid,
                 .arg = 0});

  if (prev_idle) rq.idle_ns += engine_.now() - rq.idle_since;
  if (next_idle) rq.idle_since = engine_.now();

  rq.current = next;
  if (!next_idle) {
    next->state = TaskState::kRunning;
    SchedClass* ncls = class_of(*next);
    ncls->set_curr(cpu, *next);
    const bool migrated_in =
        next->last_ran_cpu != cpu && next->last_ran_cpu != hw::kInvalidCpu;
    machine_.cache().note_placed(next->tid, cpu);
    machine_.tlb().note_placed(next->tid, cpu);
    next->last_ran_cpu = cpu;
    const SimDuration overhead =
        config_.machine.context_switch_cost +
        (migrated_in ? config_.machine.migration_cost : 0);
    rq.work_start = engine_.now() + overhead;
  } else {
    rq.work_start = engine_.now();
  }

  if (prev_idle != next_idle) {
    refresh_core_siblings(machine_.topology().core_of(cpu), cpu);
    update_ilb();
  }
  update_tick_state(cpu);
  refresh_execution(cpu);

  if (prev_exited) finish_task_exit(*prev);

  if (!next_idle && !next->has_action && next->state == TaskState::kRunning) {
    advance_action(cpu, *next);
  }
}

void Kernel::refresh_core_siblings(int core, hw::CpuId except) {
  for (hw::CpuId sibling : machine_.topology().cpus_of_core(core)) {
    if (sibling == except) continue;
    account_current(sibling);
    refresh_execution(sibling);
  }
}

// --- the periodic tick -------------------------------------------------------

void Kernel::tick(hw::CpuId cpu) {
  auto& rq = rqs_[static_cast<std::size_t>(cpu)];
  rq.tick_event = sim::kInvalidEventId;
  if (!rq.online) return;  // tick raced with cpu_offline()
  ++counters_.ticks;
  account_current(cpu);
  Task* cur = rq.current;
  if (!cur->is_idle_task()) {
    // The tick handler itself steals time: the paper's micro-noise.
    rq.work_start = std::max(rq.work_start, engine_.now()) +
                    config_.machine.tick_cost;
    class_of(*cur)->task_tick(cpu, *cur);
  }
  if (cur->is_idle_task() && config_.nohz_idle) {
    // We are the NOHZ idle balancer: balance on behalf of every idle CPU
    // whose tick is stopped (including ourselves).
    for (hw::CpuId other = 0; other < machine_.topology().num_cpus(); ++other) {
      if (!cpu_is_online(other) || !cpu_idle(other)) continue;
      for (auto& cls : classes_) cls->tick_balance(other);
    }
  } else {
    for (auto& cls : classes_) cls->tick_balance(cpu);
  }
  ++counters_.balance_passes;
  refresh_execution(cpu);
  update_tick_state(cpu);
}

void Kernel::update_ilb() {
  if (!config_.nohz_idle) return;
  const hw::CpuId old = ilb_cpu_;
  ilb_cpu_ = hw::kInvalidCpu;
  if (any_cpu_busy()) {
    for (hw::CpuId c = 0; c < machine_.topology().num_cpus(); ++c) {
      if (cpu_is_online(c) && cpu_idle(c)) {
        ilb_cpu_ = c;
        break;
      }
    }
  }
  if (old != ilb_cpu_) {
    if (old != hw::kInvalidCpu) update_tick_state(old);
    if (ilb_cpu_ != hw::kInvalidCpu) update_tick_state(ilb_cpu_);
  }
}

bool Kernel::any_cpu_busy() const {
  for (const auto& rq : rqs_) {
    if (rq.current != rq.idle.get()) return true;
  }
  return false;
}

void Kernel::update_tick_state(hw::CpuId cpu) {
  auto& rq = rqs_[static_cast<std::size_t>(cpu)];
  if (!rq.online) {
    if (rq.tick_event != sim::kInvalidEventId) {
      engine_.cancel(rq.tick_event);
      rq.tick_event = sim::kInvalidEventId;
    }
    return;
  }
  bool want_tick = true;
  if (rq.current == rq.idle.get()) {
    // NOHZ: idle CPUs stop ticking, except the elected idle balancer.
    want_tick = !config_.nohz_idle || cpu == ilb_cpu_;
  } else if (config_.tickless_single && rq.nr_running <= 1) {
    want_tick = false;
  }
  if (want_tick && rq.tick_event == sim::kInvalidEventId) {
    rq.tick_event = engine_.schedule_after(config_.machine.tick_period,
                                           [this, cpu] { tick(cpu); });
  } else if (!want_tick && rq.tick_event != sim::kInvalidEventId) {
    engine_.cancel(rq.tick_event);
    rq.tick_event = sim::kInvalidEventId;
  }
}

// --- CPU hotplug and task termination ----------------------------------------

int Kernel::num_online_cpus() const {
  int n = 0;
  for (const auto& rq : rqs_) {
    if (rq.online) ++n;
  }
  return n;
}

CpuMask Kernel::online_cpu_mask() const {
  CpuMask mask = 0;
  for (std::size_t c = 0; c < rqs_.size(); ++c) {
    if (rqs_[c].online) mask |= cpu_mask_of(static_cast<hw::CpuId>(c));
  }
  return mask;
}

void Kernel::finish_task_exit(Task& t) {
  machine_.cache().on_task_exit(t.tid);
  machine_.tlb().on_task_exit(t.tid);
  machine_.numa().on_task_exit(t.tid);
  for (auto& fn : exit_listeners_) fn(t);
}

bool Kernel::kill_task(Tid tid) {
  Task* t = find_task(tid);
  if (t == nullptr || t->state == TaskState::kExited) return false;
  t->killed = true;
  ++counters_.task_kills;
  deliver_trace({.time = engine_.now(),
                 .point = sim::TracePoint::kTaskKill,
                 .cpu = t->cpu,
                 .tid = tid,
                 .other_tid = -1,
                 .arg = 0});
  const hw::CpuId cpu = t->cpu;
  auto& rq = rqs_[static_cast<std::size_t>(cpu)];
  if (rq.current == t) {
    // Running, or blocked/sleeping but still awaiting its deschedule: let
    // __schedule reap it so the context switch is accounted exactly once.
    if (t->state == TaskState::kRunning) {
      account_current(cpu);
      if (rq.completion != sim::kInvalidEventId) {
        engine_.cancel(rq.completion);
        rq.completion = sim::kInvalidEventId;
      }
    }
    do_exit(cpu, *t);
    resched_cpu(cpu);
    return true;
  }
  if (t->state == TaskState::kRunnable) {
    class_of(*t)->dequeue(cpu, *t, /*sleeping=*/true);
    rq.nr_running -= 1;
    update_tick_state(cpu);
    do_exit(cpu, *t);
    finish_task_exit(*t);
    return true;
  }
  // Sleeping or blocked off-CPU: pending wakeups see kExited and bail.
  do_exit(cpu, *t);
  finish_task_exit(*t);
  return true;
}

void Kernel::park_migration_thread(hw::CpuId cpu) {
  auto& rq = rqs_[static_cast<std::size_t>(cpu)];
  Task* mt = rq.migration_thread;
  if (mt == nullptr || mt->state == TaskState::kExited) return;
  if (mt->state == TaskState::kRunnable && rq.current != mt) {
    // Signalled and queued but not yet on the CPU: pull it back to sleep.
    class_of(*mt)->dequeue(cpu, *mt, /*sleeping=*/true);
    rq.nr_running -= 1;
    mt->state = TaskState::kBlocked;
    mt->has_action = false;
    rq.migration_parked = true;
  }
  // If it is current, force_off_current parks it.  If it is blocked on its
  // condition nothing is needed: request_active_balance never signals an
  // offline CPU, so it simply stays asleep until cpu_online.
}

void Kernel::force_off_current(hw::CpuId cpu, std::vector<Task*>& displaced) {
  auto& rq = rqs_[static_cast<std::size_t>(cpu)];
  if (rq.completion != sim::kInvalidEventId) {
    engine_.cancel(rq.completion);
    rq.completion = sim::kInvalidEventId;
  }
  Task* prev = rq.current;
  if (prev->is_idle_task()) return;

  SchedClass* pcls = class_of(*prev);
  const bool was_running = prev->state == TaskState::kRunning;
  pcls->dequeue(cpu, *prev, /*sleeping=*/!was_running);
  pcls->clear_curr(cpu, *prev);
  rq.nr_running -= 1;
  if (prev->pending_sched_change) {
    prev->policy = prev->pending_policy;
    prev->rt_prio = prev->pending_rt_prio;
    prev->nice = prev->pending_nice;
    prev->refresh_weight();
    prev->pending_sched_change = false;
  }

  // A forced eviction is a context switch (to idle) but not a preemption:
  // nothing outran the task, the CPU went away underneath it.
  rq.nr_switches += 1;
  ++counters_.context_switches;
  prev->acct.switches_out += 1;
  deliver_trace({.time = engine_.now(),
                 .point = sim::TracePoint::kSchedSwitch,
                 .cpu = cpu,
                 .tid = rq.idle->tid,
                 .other_tid = prev->tid,
                 .arg = 0});
  rq.current = rq.idle.get();
  rq.idle_since = engine_.now();
  rq.work_start = engine_.now();

  if (prev == rq.migration_thread) {
    prev->state = TaskState::kBlocked;
    prev->has_action = false;
    rq.migration_parked = true;
  } else if (was_running) {
    prev->state = TaskState::kRunnable;
    displaced.push_back(prev);
  } else if (prev->state == TaskState::kExited) {
    finish_task_exit(*prev);
  }
  // else: blocked/sleeping mid-deschedule — already off the runnable set.
}

void Kernel::rebuild_domains() {
  domains_.rebuild(machine_.topology(), online_cpu_mask());
  for (auto& cls : classes_) cls->on_topology_change();
}

void Kernel::cpu_offline(hw::CpuId cpu) {
  if (!booted_) throw std::logic_error("cpu_offline before boot");
  auto& rq = rqs_.at(static_cast<std::size_t>(cpu));
  if (!rq.online) return;
  if (num_online_cpus() <= 1) {
    throw std::logic_error("cpu_offline: cannot offline the last online CPU");
  }
  account_current(cpu);
  rq.online = false;
  ++counters_.cpu_offlines;
  deliver_trace({.time = engine_.now(),
                 .point = sim::TracePoint::kCpuOffline,
                 .cpu = cpu,
                 .tid = rq.current->tid,
                 .other_tid = -1,
                 .arg = 0});
  if (rq.tick_event != sim::kInvalidEventId) {
    engine_.cancel(rq.tick_event);
    rq.tick_event = sim::kInvalidEventId;
  }
  rq.need_resched = false;
  rq.active_pending = false;

  park_migration_thread(cpu);
  std::vector<Task*> displaced;
  force_off_current(cpu, displaced);
  for (auto& cls : classes_) {
    while (Task* t = cls->dequeue_any(cpu)) {
      rq.nr_running -= 1;
      displaced.push_back(t);
    }
  }
  assert(rq.nr_running == 0);

  rebuild_domains();
  refresh_core_siblings(machine_.topology().core_of(cpu), cpu);

  // Re-place every displaced task as if it were waking, with the fallback
  // rules of select_fallback_rq (break affinity rather than strand a task).
  for (Task* t : displaced) {
    SchedClass* cls = class_of(*t);
    const hw::CpuId target =
        sanitize_target(*t, cls->select_cpu(*t, /*is_fork=*/false));
    set_task_cpu(*t, target);
    enqueue_and_preempt(*t, target, /*wakeup=*/false);
    ++counters_.hotplug_migrations;
  }

  update_ilb();
  update_tick_state(cpu);
}

void Kernel::cpu_online(hw::CpuId cpu) {
  if (!booted_) throw std::logic_error("cpu_online before boot");
  auto& rq = rqs_.at(static_cast<std::size_t>(cpu));
  if (rq.online) return;
  rq.online = true;
  ++counters_.cpu_onlines;
  deliver_trace({.time = engine_.now(),
                 .point = sim::TracePoint::kCpuOnline,
                 .cpu = cpu,
                 .tid = rq.current->tid,
                 .other_tid = -1,
                 .arg = 0});
  rebuild_domains();
  if (rq.migration_parked) {
    rq.migration_parked = false;
    if (rq.migration_thread != nullptr &&
        rq.migration_thread->state != TaskState::kExited) {
      wake_task(*rq.migration_thread);
    }
  }
  update_ilb();
  update_tick_state(cpu);
  // Kick the scheduler so newidle balancing can pull work over right away.
  resched_cpu(cpu);
}

}  // namespace hpcs::kernel
