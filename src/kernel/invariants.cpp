// The always-on kernel invariant checker (HPCS_CHECK_INVARIANTS).
//
// Runs at event boundaries only (the engine's post-dispatch hook), where the
// scheduler is quiescent modulo one legal transient: a task that is still
// rq.current but no longer kRunning while its CPU has a reschedule pending
// (__schedule has been requested but the 0-delay event has not fired yet).
// Everything is recounted from the real data structures — the per-class
// audit_cpu hooks walk the actual rbtree/lists — so a stale counter, a
// double enqueue, or a task stranded on an offline CPU is caught at the
// event that corrupted it, not thousands of events later.
#include <stdexcept>
#include <string>
#include <vector>

#include "kernel/kernel.h"
#include "util/log.h"

namespace hpcs::kernel {

void Kernel::check_invariants() {
  if (!booted_) return;
  std::vector<std::string> errors;
  const int ncpu = machine_.topology().num_cpus();

  for (hw::CpuId cpu = 0; cpu < ncpu; ++cpu) {
    const auto& rq = rqs_[static_cast<std::size_t>(cpu)];
    auto fail = [&](const std::string& msg) {
      errors.push_back("cpu" + std::to_string(cpu) + ": " + msg);
    };
    if (rq.current == nullptr) {
      fail("current is null");
      continue;
    }
    const Task* cur = rq.current == rq.idle.get() ? nullptr : rq.current;
    int nr = 0;
    for (const auto& cls : classes_) nr += cls->nr_runnable(cpu);
    if (nr != rq.nr_running) {
      fail("class nr_runnable sum=" + std::to_string(nr) +
           " but rq.nr_running=" + std::to_string(rq.nr_running));
    }
    if (!rq.online) {
      if (cur != nullptr) fail("offline but running " + cur->name);
      if (rq.nr_running != 0) {
        fail("offline but nr_running=" + std::to_string(rq.nr_running));
      }
      if (rq.tick_event != sim::kInvalidEventId) fail("offline but tick armed");
      if (rq.completion != sim::kInvalidEventId) {
        fail("offline but completion event armed");
      }
      if (rq.active_pending) fail("offline but active balance pending");
    }
    for (const auto& cls : classes_) cls->audit_cpu(cpu, cur, errors);
  }

  for (const auto& cls : classes_) {
    int sum = 0;
    for (hw::CpuId cpu = 0; cpu < ncpu; ++cpu) sum += cls->nr_runnable(cpu);
    if (sum != cls->total_runnable()) {
      errors.push_back(std::string(cls->name()) + ": total_runnable=" +
                       std::to_string(cls->total_runnable()) +
                       " but per-cpu sum=" + std::to_string(sum));
    }
  }

  for (const auto& [tid, owned] : tasks_) {
    (void)tid;
    const Task& t = *owned;
    auto fail = [&](const std::string& msg) {
      errors.push_back("task " + t.name + ": " + msg);
    };
    const int queued = (t.cfs_queued ? 1 : 0) + (t.rt_queued ? 1 : 0) +
                       (t.hpc_queued ? 1 : 0);
    const bool valid_cpu =
        t.cpu != hw::kInvalidCpu && t.cpu >= 0 && t.cpu < ncpu;
    const CpuRq* rq =
        valid_cpu ? &rqs_[static_cast<std::size_t>(t.cpu)] : nullptr;
    const bool is_current = rq != nullptr && rq->current == &t;
    const bool resched_open =
        rq != nullptr && (rq->need_resched || rq->resched_pending);
    switch (t.state) {
      case TaskState::kRunning:
        if (queued != 0) fail("running but still on a runqueue");
        if (!is_current) {
          fail("running but not current on cpu " + std::to_string(t.cpu));
        }
        if (rq != nullptr && !rq->online) fail("running on an offline cpu");
        break;
      case TaskState::kRunnable:
        if (is_current) {
          // Legal only mid-deschedule (see header comment).
          if (!resched_open) fail("runnable and current with no resched open");
          if (queued != 0) fail("runnable current but also queued");
        } else {
          if (queued != 1) {
            fail("runnable but on " + std::to_string(queued) + " runqueues");
          }
          if (rq == nullptr || !rq->online) {
            fail("runnable on invalid/offline cpu " + std::to_string(t.cpu));
          }
        }
        break;
      default:  // kNew, kSleeping, kBlocked, kExited
        if (queued != 0) {
          fail(std::string(task_state_name(t.state)) + " but still queued");
        }
        if (is_current && !resched_open) {
          fail(std::string(task_state_name(t.state)) +
               " current with no resched open");
        }
        break;
    }
  }

  if (errors.empty()) return;
  std::string joined = errors.front();
  const std::size_t shown = errors.size() < 8 ? errors.size() : 8;
  for (std::size_t i = 1; i < shown; ++i) joined += "; " + errors[i];
  if (errors.size() > shown) {
    joined += "; ... (" + std::to_string(errors.size()) + " violations total)";
  }
  HPCS_ERROR_RL("kernel-invariants",
                "invariant violation at t=" << engine_.now() << ": " << joined);
  throw std::logic_error("kernel invariant violation: " + joined);
}

}  // namespace hpcs::kernel
