#include "kernel/rbtree.h"

#include <cassert>
#include <stdexcept>

namespace hpcs::kernel {

void RbTree::rotate_left(RbNode* x) {
  RbNode* y = x->right;
  x->right = y->left;
  if (y->left != nullptr) y->left->parent = x;
  y->parent = x->parent;
  if (x->parent == nullptr) {
    root_ = y;
  } else if (x == x->parent->left) {
    x->parent->left = y;
  } else {
    x->parent->right = y;
  }
  y->left = x;
  x->parent = y;
}

void RbTree::rotate_right(RbNode* x) {
  RbNode* y = x->left;
  x->left = y->right;
  if (y->right != nullptr) y->right->parent = x;
  y->parent = x->parent;
  if (x->parent == nullptr) {
    root_ = y;
  } else if (x == x->parent->right) {
    x->parent->right = y;
  } else {
    x->parent->left = y;
  }
  y->right = x;
  x->parent = y;
}

void RbTree::insert(RbNode& node) {
  if (node.linked) {
    throw std::logic_error("RbTree::insert: node already linked");
  }
  node.parent = node.left = node.right = nullptr;
  node.red = true;
  node.linked = true;

  RbNode* parent = nullptr;
  RbNode** link = &root_;
  bool is_leftmost = true;
  bool is_rightmost = true;
  while (*link != nullptr) {
    parent = *link;
    if (less_(node, *parent, ctx_)) {
      link = &parent->left;
      is_rightmost = false;
    } else {
      link = &parent->right;
      is_leftmost = false;
    }
  }
  node.parent = parent;
  *link = &node;
  if (is_leftmost) leftmost_ = &node;
  if (is_rightmost) rightmost_ = &node;
  ++size_;
  insert_fixup(&node);
}

void RbTree::insert_fixup(RbNode* z) {
  while (z->parent != nullptr && z->parent->red) {
    RbNode* parent = z->parent;
    RbNode* grand = parent->parent;
    assert(grand != nullptr);  // red parent cannot be the root
    if (parent == grand->left) {
      RbNode* uncle = grand->right;
      if (uncle != nullptr && uncle->red) {
        parent->red = false;
        uncle->red = false;
        grand->red = true;
        z = grand;
      } else {
        if (z == parent->right) {
          z = parent;
          rotate_left(z);
          parent = z->parent;
          grand = parent->parent;
        }
        parent->red = false;
        grand->red = true;
        rotate_right(grand);
      }
    } else {
      RbNode* uncle = grand->left;
      if (uncle != nullptr && uncle->red) {
        parent->red = false;
        uncle->red = false;
        grand->red = true;
        z = grand;
      } else {
        if (z == parent->left) {
          z = parent;
          rotate_right(z);
          parent = z->parent;
          grand = parent->parent;
        }
        parent->red = false;
        grand->red = true;
        rotate_left(grand);
      }
    }
  }
  root_->red = false;
}

void RbTree::transplant(RbNode* u, RbNode* v) {
  if (u->parent == nullptr) {
    root_ = v;
  } else if (u == u->parent->left) {
    u->parent->left = v;
  } else {
    u->parent->right = v;
  }
  if (v != nullptr) v->parent = u->parent;
}

RbNode* RbTree::minimum(RbNode* node) {
  while (node->left != nullptr) node = node->left;
  return node;
}

RbNode* RbTree::maximum(RbNode* node) {
  while (node->right != nullptr) node = node->right;
  return node;
}

void RbTree::erase(RbNode& node) {
  if (!node.linked) throw std::logic_error("RbTree::erase: node not linked");
  if (leftmost_ == &node) leftmost_ = next(&node);
  if (rightmost_ == &node) rightmost_ = prev(&node);

  RbNode* y = &node;
  bool y_was_red = y->red;
  RbNode* x = nullptr;        // child that replaces y
  RbNode* x_parent = nullptr; // x's parent after the splice

  if (node.left == nullptr) {
    x = node.right;
    x_parent = node.parent;
    transplant(&node, node.right);
  } else if (node.right == nullptr) {
    x = node.left;
    x_parent = node.parent;
    transplant(&node, node.left);
  } else {
    y = minimum(node.right);
    y_was_red = y->red;
    x = y->right;
    if (y->parent == &node) {
      x_parent = y;
    } else {
      x_parent = y->parent;
      transplant(y, y->right);
      y->right = node.right;
      y->right->parent = y;
    }
    transplant(&node, y);
    y->left = node.left;
    y->left->parent = y;
    y->red = node.red;
  }

  node.parent = node.left = node.right = nullptr;
  node.linked = false;
  --size_;

  if (!y_was_red) erase_fixup(x, x_parent);
}

void RbTree::erase_fixup(RbNode* x, RbNode* parent) {
  while (x != root_ && (x == nullptr || !x->red)) {
    if (parent == nullptr) break;
    if (x == parent->left) {
      RbNode* w = parent->right;
      assert(w != nullptr);  // black-height invariant guarantees a sibling
      if (w->red) {
        w->red = false;
        parent->red = true;
        rotate_left(parent);
        w = parent->right;
      }
      if ((w->left == nullptr || !w->left->red) &&
          (w->right == nullptr || !w->right->red)) {
        w->red = true;
        x = parent;
        parent = x->parent;
      } else {
        if (w->right == nullptr || !w->right->red) {
          if (w->left != nullptr) w->left->red = false;
          w->red = true;
          rotate_right(w);
          w = parent->right;
        }
        w->red = parent->red;
        parent->red = false;
        if (w->right != nullptr) w->right->red = false;
        rotate_left(parent);
        x = root_;
        break;
      }
    } else {
      RbNode* w = parent->left;
      assert(w != nullptr);
      if (w->red) {
        w->red = false;
        parent->red = true;
        rotate_right(parent);
        w = parent->left;
      }
      if ((w->left == nullptr || !w->left->red) &&
          (w->right == nullptr || !w->right->red)) {
        w->red = true;
        x = parent;
        parent = x->parent;
      } else {
        if (w->left == nullptr || !w->left->red) {
          if (w->right != nullptr) w->right->red = false;
          w->red = true;
          rotate_left(w);
          w = parent->left;
        }
        w->red = parent->red;
        parent->red = false;
        if (w->left != nullptr) w->left->red = false;
        rotate_right(parent);
        x = root_;
        break;
      }
    }
  }
  if (x != nullptr) x->red = false;
}

void RbTree::clear() {
  // Unlink lazily: walk and reset flags so nodes can be reused.
  RbNode* node = leftmost_;
  while (node != nullptr) {
    RbNode* nxt = next(node);
    node->parent = node->left = node->right = nullptr;
    node->linked = false;
    node->red = false;
    node = nxt;
  }
  root_ = nullptr;
  leftmost_ = nullptr;
  rightmost_ = nullptr;
  size_ = 0;
}

RbNode* RbTree::next(RbNode* node) {
  if (node->right != nullptr) return minimum(node->right);
  RbNode* parent = node->parent;
  while (parent != nullptr && node == parent->right) {
    node = parent;
    parent = parent->parent;
  }
  return parent;
}

RbNode* RbTree::prev(RbNode* node) {
  if (node->left != nullptr) return maximum(node->left);
  RbNode* parent = node->parent;
  while (parent != nullptr && node == parent->left) {
    node = parent;
    parent = parent->parent;
  }
  return parent;
}

int RbTree::validate_subtree(const RbNode* node, bool parent_red,
                             int* violations) const {
  if (node == nullptr) return 1;  // null leaves are black
  if (parent_red && node->red) ++*violations;  // red-red violation
  if (node->left != nullptr && node->left->parent != node) ++*violations;
  if (node->right != nullptr && node->right->parent != node) ++*violations;
  if (node->left != nullptr && less_(*node, *node->left, ctx_)) ++*violations;
  if (node->right != nullptr && less_(*node->right, *node, ctx_)) ++*violations;
  const int lh = validate_subtree(node->left, node->red, violations);
  const int rh = validate_subtree(node->right, node->red, violations);
  if (lh != rh) ++*violations;
  return lh + (node->red ? 0 : 1);
}

int RbTree::validate() const {
  if (root_ == nullptr) return 0;
  int violations = 0;
  if (root_->red) ++violations;
  if (root_->parent != nullptr) ++violations;
  // Leftmost/rightmost caches must match the actual extremes.
  if (leftmost_ != minimum(root_)) ++violations;
  if (rightmost_ != maximum(root_)) ++violations;
  const int height = validate_subtree(root_, false, &violations);
  return violations == 0 ? height : -1;
}

}  // namespace hpcs::kernel
