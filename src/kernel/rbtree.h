// Intrusive red-black tree, modelled on the Linux kernel's lib/rbtree.c.
//
// CFS keeps runnable entities in a timeline ordered by virtual runtime; the
// leftmost node is the next task to run.  Like Linux we cache the leftmost
// node so pick_next is O(1), and additionally the rightmost node so
// yield_task can find the tail of the timeline in O(1) instead of walking
// next() to the end.  Nodes are embedded in the owning object (kernel::Task
// embeds one), so insertion and removal never allocate.
//
// Keys are compared by the owner via a comparator at insertion time; the
// tree itself only maintains structure, exactly like the kernel's API
// (rb_link_node + rb_insert_color / rb_erase).
#pragma once

#include <cstdint>

namespace hpcs::kernel {

struct RbNode {
  RbNode* parent = nullptr;
  RbNode* left = nullptr;
  RbNode* right = nullptr;
  bool red = false;
  /// True while the node is linked in some tree; guards double insert/erase.
  bool linked = false;
  /// Back-pointer to the embedding object, set once by the owner (container_of
  /// without the UB).
  void* owner = nullptr;
};

/// Intrusive red-black tree ordered by a strict-weak comparator over nodes.
/// Less must be a pure function of the nodes' owners (e.g. vruntime, tid).
class RbTree {
 public:
  using Less = bool (*)(const RbNode&, const RbNode&, const void* ctx);

  explicit RbTree(Less less, const void* ctx = nullptr)
      : less_(less), ctx_(ctx) {}

  RbTree(const RbTree&) = delete;
  RbTree& operator=(const RbTree&) = delete;

  bool empty() const { return root_ == nullptr; }
  std::size_t size() const { return size_; }

  /// Leftmost (minimum) node or nullptr; O(1) via cache.
  RbNode* leftmost() const { return leftmost_; }

  /// Rightmost (maximum) node or nullptr; O(1) via cache.
  RbNode* rightmost() const { return rightmost_; }

  void insert(RbNode& node);
  void erase(RbNode& node);
  void clear();

  /// In-order successor / predecessor (for iteration in tests and balancing
  /// scans).
  static RbNode* next(RbNode* node);
  static RbNode* prev(RbNode* node);
  RbNode* first() const { return leftmost_; }
  RbNode* last() const { return rightmost_; }

  /// Validates the red-black invariants; returns black-height or -1 on
  /// violation.  Used by the property tests.
  int validate() const;

 private:
  void rotate_left(RbNode* x);
  void rotate_right(RbNode* x);
  void insert_fixup(RbNode* z);
  void erase_fixup(RbNode* x, RbNode* parent);
  void transplant(RbNode* u, RbNode* v);
  static RbNode* minimum(RbNode* node);
  static RbNode* maximum(RbNode* node);
  int validate_subtree(const RbNode* node, bool parent_red,
                       int* violations) const;

  Less less_;
  const void* ctx_;
  RbNode* root_ = nullptr;
  RbNode* leftmost_ = nullptr;
  RbNode* rightmost_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace hpcs::kernel
