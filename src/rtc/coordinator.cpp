#include "rtc/coordinator.h"

#include <algorithm>
#include <stdexcept>

namespace hpcs::rtc {

const char* coord_mode_name(CoordMode mode) {
  switch (mode) {
    case CoordMode::kKernelOnly: return "kernel-only";
    case CoordMode::kCooperativeYield: return "cooperative";
    case CoordMode::kTokenNegotiated: return "token";
  }
  return "?";
}

Coordinator::Coordinator(kernel::Kernel& kernel, CoordConfig config)
    : kernel_(kernel), config_(config) {
  if (config_.min_lease < 1) {
    throw std::invalid_argument("CoordConfig: min_lease must be >= 1");
  }
}

int Coordinator::register_runtime() {
  ++registered_;
  return next_id_++;
}

void Coordinator::unregister_runtime(int id) {
  (void)id;
  if (registered_ <= 0) {
    throw std::logic_error("Coordinator: unregister without register");
  }
  --registered_;
}

int Coordinator::acquire(int id, int want) {
  (void)id;
  if (want < 1) throw std::invalid_argument("Coordinator: want must be >= 1");
  ++stats_.regions;
  int grant = want;
  if (config_.mode == CoordMode::kTokenNegotiated) {
    // Fair share of the node: every registered runtime may field
    // online/registered workers, floored at min_lease so a crowded node
    // still makes progress.  The share tracks hotplug (online CPUs), not
    // the boot-time topology.
    const int online = kernel_.num_online_cpus();
    const int peers = std::max(registered_, 1);
    const int share = std::max(config_.min_lease, online / peers);
    grant = std::clamp(want, 1, std::max(share, 1));
    stats_.workers_trimmed += static_cast<std::uint64_t>(want - grant);
  }
  outstanding_ += grant;
  stats_.leases_granted += static_cast<std::uint64_t>(grant);
  return grant;
}

void Coordinator::release(int id, int granted) {
  (void)id;
  if (granted > outstanding_) {
    throw std::logic_error("Coordinator: releasing more workers than leased");
  }
  outstanding_ -= granted;
  stats_.leases_released += static_cast<std::uint64_t>(granted);
}

}  // namespace hpcs::rtc
