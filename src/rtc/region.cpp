#include "rtc/region.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace hpcs::rtc {

RegionState::RegionState(RegionConfig cfg, util::Rng r)
    : config(cfg), rng(r) {
  if (config.chunks < 1) {
    throw std::invalid_argument("RegionConfig: chunks must be >= 1");
  }
  chunk_work = std::max<Work>(config.work / config.chunks, 1);
}

kernel::Action WorkerBehavior::next(kernel::Kernel& kernel,
                                    kernel::Task& self) {
  (void)self;
  RegionState& st = *state_;
  if (yield_pending_) {
    yield_pending_ = false;
    return kernel::Action::yield();
  }
  if (st.next_chunk < st.config.chunks) {
    st.next_chunk += 1;
    double factor = 1.0;
    if (st.config.jitter != 0.0) {
      factor = std::max(0.1, st.rng.normal(1.0, st.config.jitter));
    }
    const auto work = std::max<Work>(
        static_cast<Work>(
            std::llround(static_cast<double>(st.chunk_work) * factor)),
        1);
    if (st.config.yield_between_chunks) yield_pending_ = true;
    return kernel::Action::compute(work);
  }
  // Queue drained: the last worker out completes the join.
  if (--st.live_workers == 0) {
    if (st.on_join) st.on_join();
    kernel.cond_signal(st.join);
  }
  return kernel::Action::exit_task();
}

kernel::CondId fork_region(kernel::Kernel& kernel, const kernel::Task& master,
                           RegionConfig config, int workers,
                           const std::string& name, util::Rng rng,
                           std::function<void()> on_join) {
  if (workers < 1) {
    throw std::invalid_argument("fork_region: workers must be >= 1");
  }
  auto state = std::make_shared<RegionState>(config, rng);
  state->live_workers = workers;
  state->join = kernel.cond_create();
  state->on_join = std::move(on_join);
  for (int w = 0; w < workers; ++w) {
    kernel::SpawnSpec spec;
    spec.name = name + ".w" + std::to_string(w);
    spec.policy = master.policy;
    spec.nice = master.nice;
    spec.rt_prio = master.rt_prio;
    spec.affinity = master.affinity;
    spec.parent = master.tid;
    spec.behavior = std::make_unique<WorkerBehavior>(state);
    kernel.spawn(std::move(spec));
  }
  return state->join;
}

}  // namespace hpcs::rtc
