// Fork/join parallel regions: the worker-pool half of a hybrid rank.
//
// A parallel region splits a block of compute work into chunks served from a
// shared queue (OpenMP dynamic scheduling).  fork() spawns the workers as
// real kernel tasks — they inherit the rank's scheduling class and contend
// for cores through CFS/RT/HPL like any other task, which is the whole
// point: oversubscription pressure is visible to the scheduler model, not
// abstracted into a speedup formula.  The last worker to drain the queue
// fires the join condition the master rank is waiting on and runs the
// on_join callback (lease release).
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "kernel/kernel.h"
#include "kernel/task.h"
#include "util/rng.h"
#include "util/time.h"

namespace hpcs::rtc {

struct RegionConfig {
  /// Total compute work of the region, split evenly across `chunks`.
  Work work = 0;
  /// Chunks in the shared queue; more chunks = finer-grained stealing.
  int chunks = 1;
  /// Relative stddev of per-chunk imbalance (normal factor, floored 0.1).
  double jitter = 0.0;
  /// Workers yield after every chunk (kCooperativeYield politeness).
  bool yield_between_chunks = false;
};

/// Shared state of one region instance; kept alive by the worker behaviours
/// via shared_ptr, so the master can fire-and-forget after fork().
struct RegionState {
  RegionConfig config;
  util::Rng rng;          // per-chunk jitter draws, in chunk-take order
  int next_chunk = 0;     // shared chunk queue cursor
  int live_workers = 0;
  kernel::CondId join = kernel::kInvalidCond;
  std::function<void()> on_join;
  Work chunk_work = 0;

  RegionState(RegionConfig cfg, util::Rng r);
};

/// Fork `workers` tasks named `<name>.w<i>`, parented to and scheduled like
/// `master` (policy/nice/rt_prio/affinity inherited, as OpenMP threads
/// inherit the process).  Returns the join condition the caller should wait
/// on; `on_join` (may be null) runs when the last worker finishes, before
/// the join fires.  `workers` and the region config must be >= 1 chunk.
kernel::CondId fork_region(kernel::Kernel& kernel, const kernel::Task& master,
                           RegionConfig config, int workers,
                           const std::string& name, util::Rng rng,
                           std::function<void()> on_join);

/// The worker task behaviour (exposed for tests): pulls chunks off the
/// shared queue until it is dry, computing each with its jitter factor.
class WorkerBehavior : public kernel::Behavior {
 public:
  explicit WorkerBehavior(std::shared_ptr<RegionState> state)
      : state_(std::move(state)) {}

  kernel::Action next(kernel::Kernel& kernel, kernel::Task& self) override;

 private:
  std::shared_ptr<RegionState> state_;
  bool yield_pending_ = false;
};

}  // namespace hpcs::rtc
