// Runtime co-scheduling: user-space coordination between parallel runtimes
// sharing one node (Roca's "Rethinking Thread Scheduling under
// Oversubscription").
//
// The paper's HPL class assumes ~1 rank per hardware thread.  When hybrid
// jobs (MPI ranks with OpenMP-style worker pools) pack several runtimes on
// one node, the kernel scheduler sees an undifferentiated pile of runnable
// contexts: masters busy-poll at join/match points while the workers they
// wait for queue behind them, and every extra context costs switches and
// cache pollution.  The Coordinator is the user-space alternative — a
// per-node broker the runtimes consult at region boundaries:
//
//   * kKernelOnly:       no coordination; the scheduler sorts it out.  The
//                        baseline every mode is measured against.
//   * kCooperativeYield: runtimes stay polite — masters block immediately at
//                        fork/join boundaries (no spin) and workers yield
//                        between chunks, handing the core to a co-located
//                        runtime instead of burning their slice.
//   * kTokenNegotiated:  additionally, worker-pool width is negotiated as a
//                        per-node core lease: each registered runtime gets a
//                        fair share of the online CPUs, so the total live
//                        context count tracks the hardware instead of the
//                        oversubscription factor.
#pragma once

#include <cstdint>

#include "kernel/kernel.h"

namespace hpcs::rtc {

enum class CoordMode : std::uint8_t {
  kKernelOnly,
  kCooperativeYield,
  kTokenNegotiated,
};

const char* coord_mode_name(CoordMode mode);

struct CoordConfig {
  CoordMode mode = CoordMode::kKernelOnly;
  /// A runtime may always run at least this many workers, however crowded
  /// the node (forward progress under extreme oversubscription).
  int min_lease = 1;
};

struct CoordStats {
  std::uint64_t regions = 0;          // acquire() calls
  std::uint64_t leases_granted = 0;   // workers handed out, summed
  std::uint64_t leases_released = 0;  // workers handed back, summed
  std::uint64_t workers_trimmed = 0;  // want - grant, summed (token mode)
};

/// One per simulated node.  Runtimes register once (per job per node) and
/// then negotiate every parallel region through acquire()/release().  All
/// calls happen inside engine events of the node's kernel, so the broker
/// needs no locking and its decisions are deterministic.
class Coordinator {
 public:
  Coordinator(kernel::Kernel& kernel, CoordConfig config);

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  CoordMode mode() const { return config_.mode; }
  const CoordConfig& config() const { return config_; }

  /// A runtime (one job's presence on this node) joins the negotiation.
  /// Returns its broker id.
  int register_runtime();
  void unregister_runtime(int id);
  int registered() const { return registered_; }

  /// Runtime `id` opens a parallel region wanting `want` workers.  Returns
  /// the grant: `want` in the uncoordinated modes; in kTokenNegotiated the
  /// fair share clamp(online_cpus / registered, min_lease, want).  Never
  /// less than min_lease (and at least 1).
  int acquire(int id, int want);
  /// The region joined; hand the lease back.
  void release(int id, int granted);

  /// Workers currently out on lease across all runtimes.
  int outstanding() const { return outstanding_; }
  const CoordStats& stats() const { return stats_; }

 private:
  kernel::Kernel& kernel_;
  CoordConfig config_;
  int next_id_ = 1;
  int registered_ = 0;
  int outstanding_ = 0;
  CoordStats stats_;
};

}  // namespace hpcs::rtc
