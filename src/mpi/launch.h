// The measurement launch chain of Section V:
//
//   perf stat -a  ->  chrt [--hpc|--fifo]  ->  mpiexec -np N  ->  ranks
//
// perf and chrt stay in the CFS class; mpiexec and the ranks run under the
// requested policy (chrt sets it at exec time, so fork inheritance puts the
// whole job in the right class).  The chain reproduces Table Ib's migration
// floor: one fork placement per rank, plus mpiexec, chrt and perf themselves,
// and whatever CFS balancing moves chrt/perf around once no HPC task is
// runnable any more.
#pragma once

#include "kernel/kernel.h"
#include "mpi/world.h"

namespace hpcs::mpi {

struct LaunchOptions {
  /// Scheduling class for mpiexec and the ranks.
  kernel::Policy app_policy = kernel::Policy::kNormal;
  int rt_prio = 0;   // for kFifo / kRR
  int app_nice = 0;  // for kNormal (the `nice` ablation)
};

/// Drives one measured run of an MpiWorld.  Create, then call start(); the
/// run is over when done() (perf exited).
class Launcher {
 public:
  Launcher(kernel::Kernel& kernel, MpiWorld& world);

  /// Spawn the perf -> chrt -> mpiexec chain now.  Returns perf's tid.
  kernel::Tid start(LaunchOptions options);

  bool done() const { return *done_flag_; }
  SimTime done_time() const { return *done_time_; }
  kernel::Tid perf_tid() const { return perf_tid_; }
  /// Fires when perf exits (the measurement window closes).
  kernel::CondId done_cond() const { return done_cond_; }

 private:
  kernel::Kernel& kernel_;
  MpiWorld& world_;
  kernel::Tid perf_tid_ = kernel::kInvalidTid;
  kernel::CondId done_cond_ = kernel::kInvalidCond;
  std::shared_ptr<bool> done_flag_;
  std::shared_ptr<SimTime> done_time_;
};

/// Create a condition that fires when `tid` exits.
kernel::CondId exit_cond_for(kernel::Kernel& kernel, kernel::Tid tid);

}  // namespace hpcs::mpi
