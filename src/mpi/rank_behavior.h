// RankBehavior: interprets a Program as one MPI rank.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "kernel/task.h"
#include "net/collective.h"
#include "util/rng.h"

namespace hpcs::mpi {

class RankRuntime;

class RankBehavior : public kernel::Behavior {
 public:
  /// `fast_forward_syncs` > 0 replays the program in checkpoint-restart
  /// mode: compute/sleep phases are skipped and the first
  /// `fast_forward_syncs` non-degenerate match points are stepped over
  /// (visit counters still advance) before normal interpretation resumes.
  /// This is how a respawned rank rejoins its peers at the sync point the
  /// original died before.
  ///
  /// `redo_fired_sync` replays the one match point that *fired* for the dead
  /// incarnation but whose collective cost was never fully paid (the commit
  /// never happened): the replacement re-pays the traversal without
  /// re-arriving — the peers already matched and moved on, so arriving again
  /// would rendezvous with nobody.
  RankBehavior(RankRuntime& world, int rank,
               std::uint64_t fast_forward_syncs = 0,
               bool redo_fired_sync = false);

  kernel::Action next(kernel::Kernel& kernel, kernel::Task& self) override;

  int rank() const { return rank_; }

 private:
  struct LoopFrame {
    std::size_t body_start;
    int remaining;
  };

  /// Cost of completing a matched collective (latency + payload movement).
  kernel::Action collective_cost(const struct Op& op) const;

  RankRuntime& world_;
  int rank_;
  double run_factor_ = 1.0;
  std::uint64_t fast_forward_ = 0;  // sync points left to replay silently
  bool redo_fired_ = false;    // fired-but-uncommitted point to re-pay
  bool commit_pending_ = false;  // collective cost paid; commit on re-entry
  std::size_t pc_ = 0;
  std::vector<LoopFrame> loops_;
  std::unordered_map<std::size_t, std::uint64_t> visits_;  // per-site counter
  util::Rng rng_;
  // Set when a wait was issued for the op at pc_; on the next call the wait
  // has completed and the post-cost is charged before advancing.
  bool resume_after_wait_ = false;
  // Set while waiting on a parallel region's join; cleared on re-entry.
  bool region_open_ = false;

  // Stepwise-collective machine (active while in_steps_): the schedule for
  // the collective at pc_, the step being executed, and its phase — 0 pays
  // the send overhead, 1 posts the send / waits on the receive, 2 pays the
  // receive overhead plus the combine work.
  bool in_steps_ = false;
  std::vector<net::Step> steps_;
  std::size_t step_idx_ = 0;
  int step_phase_ = 0;
  std::uint32_t cur_site_ = 0;
  std::uint64_t cur_visit_ = 0;
};

}  // namespace hpcs::mpi
