// RankBehavior: interprets a Program as one MPI rank.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "kernel/task.h"
#include "util/rng.h"

namespace hpcs::mpi {

class RankRuntime;

class RankBehavior : public kernel::Behavior {
 public:
  RankBehavior(RankRuntime& world, int rank);

  kernel::Action next(kernel::Kernel& kernel, kernel::Task& self) override;

  int rank() const { return rank_; }

 private:
  struct LoopFrame {
    std::size_t body_start;
    int remaining;
  };

  /// Cost of completing a matched collective (latency + payload movement).
  kernel::Action collective_cost(const struct Op& op) const;

  RankRuntime& world_;
  int rank_;
  double run_factor_ = 1.0;
  std::size_t pc_ = 0;
  std::vector<LoopFrame> loops_;
  std::unordered_map<std::size_t, std::uint64_t> visits_;  // per-site counter
  util::Rng rng_;
  // Set when a wait was issued for the op at pc_; on the next call the wait
  // has completed and the post-cost is charged before advancing.
  bool resume_after_wait_ = false;
};

}  // namespace hpcs::mpi
