#include "mpi/program.h"

#include <stdexcept>

namespace hpcs::mpi {

Program& Program::compute(Work work, double jitter) {
  ops_.push_back({.kind = OpKind::kCompute, .work = work, .jitter = jitter});
  return *this;
}

Program& Program::barrier() {
  ops_.push_back({.kind = OpKind::kBarrier});
  return *this;
}

Program& Program::barrier_blocking() {
  ops_.push_back({.kind = OpKind::kBarrier, .blocking = true});
  return *this;
}

Program& Program::allreduce(std::uint64_t bytes) {
  ops_.push_back({.kind = OpKind::kAllreduce, .bytes = bytes});
  return *this;
}

Program& Program::alltoall(std::uint64_t bytes) {
  ops_.push_back({.kind = OpKind::kAlltoall, .bytes = bytes});
  return *this;
}

Program& Program::exchange(int peer_xor, std::uint64_t bytes) {
  if (peer_xor <= 0) {
    throw std::invalid_argument("exchange: peer_xor must be > 0");
  }
  ops_.push_back(
      {.kind = OpKind::kExchange, .bytes = bytes, .peer_xor = peer_xor});
  return *this;
}

Program& Program::sleep(SimDuration duration) {
  ops_.push_back({.kind = OpKind::kSleep, .duration = duration});
  return *this;
}

Program& Program::loop(int count) {
  if (count <= 0) throw std::invalid_argument("loop: count must be positive");
  ops_.push_back({.kind = OpKind::kLoop, .count = count});
  return *this;
}

Program& Program::end_loop() {
  ops_.push_back({.kind = OpKind::kEndLoop});
  return *this;
}

Program& Program::parallel(Work work, int workers, int chunks, double jitter) {
  if (workers <= 0) {
    throw std::invalid_argument("parallel: workers must be positive");
  }
  if (chunks < 0) {
    throw std::invalid_argument("parallel: chunks must be >= 0");
  }
  ops_.push_back({.kind = OpKind::kParallel,
                  .work = work,
                  .jitter = jitter,
                  .count = chunks,
                  .workers = workers});
  return *this;
}

void Program::validate() const {
  int depth = 0;
  for (const Op& op : ops_) {
    if (op.kind == OpKind::kLoop) ++depth;
    if (op.kind == OpKind::kEndLoop) {
      --depth;
      if (depth < 0) throw std::invalid_argument("end_loop without loop");
    }
  }
  if (depth != 0) throw std::invalid_argument("unclosed loop");
}

namespace {

/// Walks the (validated) program once, calling visit(op, multiplier) with the
/// loop-expanded repeat count of each op.
template <typename Fn>
void walk(const std::vector<Op>& ops, Fn&& visit) {
  std::vector<std::uint64_t> mult_stack{1};
  std::vector<std::uint64_t> mults(ops.size(), 1);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].kind == OpKind::kLoop) {
      mult_stack.push_back(mult_stack.back() *
                           static_cast<std::uint64_t>(ops[i].count));
    }
    mults[i] = mult_stack.back();
    if (ops[i].kind == OpKind::kEndLoop) mult_stack.pop_back();
  }
  for (std::size_t i = 0; i < ops.size(); ++i) visit(ops[i], mults[i]);
}

}  // namespace

Work Program::total_work() const {
  validate();
  Work total = 0;
  walk(ops_, [&](const Op& op, std::uint64_t mult) {
    if (op.kind == OpKind::kCompute || op.kind == OpKind::kParallel) {
      total += op.work * mult;
    }
  });
  return total;
}

std::uint64_t Program::sync_points() const {
  validate();
  std::uint64_t total = 0;
  walk(ops_, [&](const Op& op, std::uint64_t mult) {
    switch (op.kind) {
      case OpKind::kBarrier:
      case OpKind::kAllreduce:
      case OpKind::kAlltoall:
      case OpKind::kExchange:
        total += mult;
        break;
      default:
        break;
    }
  });
  return total;
}

}  // namespace hpcs::mpi
