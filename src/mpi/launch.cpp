#include "mpi/launch.h"

#include <memory>

#include "kernel/behaviors.h"

namespace hpcs::mpi {

using kernel::Action;
using kernel::CondId;
using kernel::Policy;
using kernel::Task;
using kernel::Tid;

CondId exit_cond_for(kernel::Kernel& kernel, Tid tid) {
  const CondId cond = kernel.cond_create();
  kernel.add_exit_listener([&kernel, tid, cond](Task& t) {
    if (t.tid == tid) kernel.cond_signal(cond);
  });
  return cond;
}

namespace {

/// chrt: tiny setup, then exec the payload under the requested policy (we
/// model exec-with-policy as spawning mpiexec directly into that class) and
/// wait for it.
class ChrtBehavior : public kernel::Behavior {
 public:
  ChrtBehavior(MpiWorld& world, LaunchOptions options)
      : world_(world), options_(options) {}

  Action next(kernel::Kernel& kernel, Task& self) override {
    switch (step_++) {
      case 0:
        return Action::compute(50 * kMicrosecond);
      case 1: {
        const Tid mpiexec = world_.launch_mpiexec(options_.app_policy,
                                                  options_.rt_prio, self.tid);
        if (options_.app_policy == Policy::kNormal && options_.app_nice != 0) {
          kernel.sys_setnice(mpiexec, options_.app_nice);
        }
        return Action::wait(exit_cond_for(kernel, mpiexec), 0);
      }
      case 2:
        return Action::compute(30 * kMicrosecond);
      default:
        return Action::exit_task();
    }
  }

 private:
  MpiWorld& world_;
  LaunchOptions options_;
  int step_ = 0;
};

/// perf: opens system-wide counters, runs chrt, reads counters back.
class PerfBehavior : public kernel::Behavior {
 public:
  PerfBehavior(MpiWorld& world, LaunchOptions options,
               std::shared_ptr<bool> done_flag,
               std::shared_ptr<SimTime> done_time, CondId done_cond)
      : world_(world),
        options_(options),
        done_flag_(std::move(done_flag)),
        done_time_(std::move(done_time)),
        done_cond_(done_cond) {}

  Action next(kernel::Kernel& kernel, Task& self) override {
    switch (step_++) {
      case 0:
        return Action::compute(300 * kMicrosecond);  // counter setup
      case 1: {
        kernel::SpawnSpec spec;
        spec.name = "chrt";
        spec.policy = Policy::kNormal;
        spec.parent = self.tid;
        spec.behavior = std::make_unique<ChrtBehavior>(world_, options_);
        const Tid chrt = kernel.spawn(std::move(spec));
        return Action::wait(exit_cond_for(kernel, chrt), 0);
      }
      case 2:
        return Action::compute(500 * kMicrosecond);  // read + report counters
      default:
        *done_flag_ = true;
        *done_time_ = kernel.now();
        kernel.cond_signal(done_cond_);
        return Action::exit_task();
    }
  }

 private:
  MpiWorld& world_;
  LaunchOptions options_;
  std::shared_ptr<bool> done_flag_;
  std::shared_ptr<SimTime> done_time_;
  CondId done_cond_;
  int step_ = 0;
};

}  // namespace

Launcher::Launcher(kernel::Kernel& kernel, MpiWorld& world)
    : kernel_(kernel),
      world_(world),
      done_flag_(std::make_shared<bool>(false)),
      done_time_(std::make_shared<SimTime>(0)) {
  done_cond_ = kernel_.cond_create();
}

Tid Launcher::start(LaunchOptions options) {
  kernel::SpawnSpec spec;
  spec.name = "perf";
  spec.policy = Policy::kNormal;
  spec.behavior = std::make_unique<PerfBehavior>(world_, options, done_flag_,
                                                 done_time_, done_cond_);
  perf_tid_ = kernel_.spawn(std::move(spec));
  return perf_tid_;
}

}  // namespace hpcs::mpi
