#include "mpi/rank_behavior.h"

#include <algorithm>
#include <cmath>

#include "mpi/world.h"
#include "net/mailbox.h"
#include "rtc/coordinator.h"
#include "rtc/region.h"

namespace hpcs::mpi {

using kernel::Action;

namespace {

net::Collective to_collective(OpKind kind) {
  switch (kind) {
    case OpKind::kBarrier: return net::Collective::kBarrier;
    case OpKind::kAlltoall: return net::Collective::kAlltoall;
    default: return net::Collective::kAllreduce;
  }
}

}  // namespace

RankBehavior::RankBehavior(RankRuntime& world, int rank,
                           std::uint64_t fast_forward_syncs,
                           bool redo_fired_sync)
    : world_(world),
      rank_(rank),
      run_factor_(world.run_speed_factor()),
      fast_forward_(fast_forward_syncs),
      redo_fired_(redo_fired_sync),
      rng_(world.rank_rng(rank)) {}

Action RankBehavior::collective_cost(const Op& op) const {
  const auto& config = world_.config();
  const Work alpha = config.collective_alpha;
  const auto bytes_cost = static_cast<Work>(
      static_cast<double>(op.bytes) * config.per_byte_ns);
  const Work total = alpha + bytes_cost;
  return Action::compute(total == 0 ? 1 : total);
}

Action RankBehavior::next(kernel::Kernel& kernel, kernel::Task& self) {
  const auto& ops = world_.program().ops();
  const auto& config = world_.config();

  // The compute returned for a flat collective's cost has finished: the sync
  // point is only *now* checkpointable.  (Committing here, on re-entry,
  // means a rank killed while paying the cost never gets the credit.)
  if (commit_pending_) {
    commit_pending_ = false;
    world_.sync_commit(rank_);
  }

  for (;;) {
    if (in_steps_) {
      // Stepwise collective: execute the current step's three phases.  Send
      // overheads and combine work are *task* time — a preempted rank pays
      // them late, which is how noise enters the message schedule.
      if (step_idx_ >= steps_.size()) {
        in_steps_ = false;
        world_.collective_complete(cur_site_, cur_visit_, rank_);
        ++pc_;
        continue;
      }
      const net::Step& step = steps_[step_idx_];
      const net::FabricConfig& fc = *world_.fabric_config();
      if (step_phase_ == 0) {
        step_phase_ = 1;
        if (step.send_to >= 0 && fc.send_overhead > 0) {
          return Action::compute(fc.send_overhead);
        }
        continue;
      }
      if (step_phase_ == 1) {
        step_phase_ = 2;
        auto cond =
            world_.mailbox()->exchange(cur_site_, cur_visit_, rank_, step);
        if (cond.has_value()) {
          return Action::wait(*cond, ops[pc_].blocking
                                         ? 0
                                         : config.spin_before_block);
        }
        continue;
      }
      Work cost = step.cpu;
      if (step.recv_from >= 0) cost += fc.recv_overhead;
      ++step_idx_;
      step_phase_ = 0;
      if (cost > 0) return Action::compute(cost);
      continue;
    }
    if (region_open_) {
      // The parallel region's join fired (lease already released by the
      // last worker); the rank resumes its serial part.
      region_open_ = false;
      ++pc_;
      continue;
    }
    if (resume_after_wait_) {
      // The rendezvous at ops[pc_] completed; charge the collective cost
      // and move on.
      resume_after_wait_ = false;
      const Op& op = ops[pc_];
      ++pc_;
      commit_pending_ = true;
      return collective_cost(op);
    }
    if (pc_ >= ops.size()) return Action::exit_task();

    const Op& op = ops[pc_];
    switch (op.kind) {
      case OpKind::kCompute: {
        if (fast_forward_ > 0) {
          // Restart replay: the checkpointed state already holds this work.
          ++pc_;
          continue;
        }
        double factor = 1.0;
        const double jitter =
            op.jitter != 0.0 ? op.jitter : config.compute_jitter;
        if (jitter != 0.0) {
          factor = std::max(0.1, rng_.normal(1.0, jitter));
        }
        const auto work = static_cast<Work>(
            std::llround(static_cast<double>(op.work) * factor * run_factor_));
        ++pc_;
        if (work == 0) continue;
        return Action::compute(work);
      }
      case OpKind::kSleep: {
        ++pc_;
        if (op.duration == 0 || fast_forward_ > 0) continue;
        return Action::sleep(op.duration);
      }
      case OpKind::kBarrier:
      case OpKind::kAllreduce:
      case OpKind::kAlltoall:
      case OpKind::kExchange: {
        const auto site = static_cast<std::uint32_t>(pc_);
        const std::uint64_t visit = visits_[pc_]++;
        std::uint32_t pair_id = 0;
        int needed = config.nranks;
        if (op.kind == OpKind::kExchange) {
          const int peer = rank_ ^ op.peer_xor;
          if (peer >= config.nranks) {
            // No partner (e.g. odd rank counts): degenerate to a no-op.
            ++pc_;
            continue;
          }
          const int lo = std::min(rank_, peer);
          const int hi = std::max(rank_, peer);
          pair_id = static_cast<std::uint32_t>((lo << 16) | hi) + 1;
          needed = 2;
        } else if (config.collective_algorithm != net::Algorithm::kFlat &&
                   world_.mailbox() != nullptr && config.nranks > 1) {
          // Algorithmic collective: run the per-rank message schedule
          // instead of the global rendezvous.  (Exchange is already a
          // point-to-point pair; it stays on the match-point path.)
          if (fast_forward_ > 0) {
            --fast_forward_;
            ++pc_;
            continue;
          }
          steps_ = net::collective_steps(
              to_collective(op.kind), config.collective_algorithm, rank_,
              config.nranks, op.bytes, config.per_byte_ns);
          if (steps_.empty()) {
            ++pc_;
            continue;
          }
          in_steps_ = true;
          step_idx_ = 0;
          step_phase_ = 0;
          cur_site_ = site;
          cur_visit_ = visit;
          continue;
        }
        if (fast_forward_ > 0) {
          // This match point fired before the crash (it is inside the
          // checkpoint); the visit counter above still advanced so later
          // rendezvous keys line up with the peers'.
          --fast_forward_;
          ++pc_;
          continue;
        }
        if (redo_fired_) {
          // The dead incarnation matched here but died paying the cost.
          // Skip arrive() — the match record is gone, the peers moved on —
          // and redo the traversal; the commit lands on re-entry.
          redo_fired_ = false;
          const Op& done = ops[pc_];
          ++pc_;
          commit_pending_ = true;
          return collective_cost(done);
        }
        auto cond = world_.arrive(site, visit, pair_id, needed, rank_);
        if (!cond.has_value()) {
          // Last arrival: the point fired, pay the collective cost now.
          const Op& done = ops[pc_];
          ++pc_;
          commit_pending_ = true;
          return collective_cost(done);
        }
        resume_after_wait_ = true;
        return Action::wait(*cond, op.blocking ? 0 : config.spin_before_block);
      }
      case OpKind::kParallel: {
        const std::uint64_t visit = visits_[pc_]++;
        if (fast_forward_ > 0) {
          // Restart replay: the region's work is inside the checkpoint.
          ++pc_;
          continue;
        }
        rtc::Coordinator* coord = world_.coordinator(rank_);
        const bool coop = coord != nullptr &&
                          coord->mode() != rtc::CoordMode::kKernelOnly;
        int width = op.workers;
        if (coord != nullptr) {
          width = coord->acquire(world_.coordinator_id(rank_), op.workers);
        }
        rtc::RegionConfig rc;
        rc.work = static_cast<Work>(
            std::llround(static_cast<double>(op.work) * run_factor_));
        rc.chunks = op.count > 0 ? op.count : 4 * width;
        rc.jitter = op.jitter != 0.0 ? op.jitter : config.compute_jitter;
        rc.yield_between_chunks = coop;
        // One independent jitter stream per (site, visit) so the chunk
        // draws do not depend on how wide the pool was granted.
        util::Rng region_rng = rng_.substream(
            (static_cast<std::uint64_t>(pc_) << 32) | (visit + 1));
        std::function<void()> on_join;
        if (coord != nullptr) {
          const int id = world_.coordinator_id(rank_);
          on_join = [coord, id, width] { coord->release(id, width); };
        }
        kernel::CondId join =
            rtc::fork_region(kernel, self, rc, width, self.name, region_rng,
                             std::move(on_join));
        region_open_ = true;
        // Kernel-only masters busy-poll the join like real runtimes do at
        // implicit barriers; coordinated masters block immediately and hand
        // the core to their own (or a peer's) workers.
        return Action::wait(join, coop ? 0 : config.spin_before_block);
      }
      case OpKind::kLoop:
        loops_.push_back({pc_ + 1, op.count});
        ++pc_;
        continue;
      case OpKind::kEndLoop: {
        LoopFrame& frame = loops_.back();
        if (--frame.remaining > 0) {
          pc_ = frame.body_start;
        } else {
          loops_.pop_back();
          ++pc_;
        }
        continue;
      }
    }
  }
}

}  // namespace hpcs::mpi
