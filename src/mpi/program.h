// Rank programs: the SPMD op sequence every rank of a job executes.
//
// The op set covers what the paper's workloads need: compute phases (with
// per-rank imbalance jitter), barriers, allreduce/alltoall collectives,
// neighbour exchanges, and counted loops.  Programs are interpreted by
// RankBehavior; all ranks run the same program (SPMD), so rendezvous sites
// can be identified by (program counter, visit count).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.h"

namespace hpcs::mpi {

enum class OpKind : std::uint8_t {
  kCompute,    // `work` units, jittered per rank/iteration
  kBarrier,    // MPI_Barrier
  kAllreduce,  // MPI_Allreduce of `bytes`
  kAlltoall,   // MPI_Alltoall of `bytes` per rank pair
  kExchange,   // pairwise send/recv with rank ^ `peer_xor` (halo exchange)
  kSleep,      // off-CPU phase (I/O, think time)
  kLoop,       // repeat the ops up to the matching kEndLoop `count` times
  kEndLoop,
  kParallel,   // hybrid rank: fork/join worker pool over `work` (src/rtc)
};

struct Op {
  OpKind kind = OpKind::kBarrier;
  Work work = 0;          // kCompute
  double jitter = 0.0;    // relative stddev of per-rank compute imbalance
  std::uint64_t bytes = 0;  // collective payload
  int peer_xor = 1;       // kExchange partner: rank ^ peer_xor
  int count = 0;          // kLoop iterations; kParallel chunk count
  int workers = 0;        // kParallel pool width the rank asks for
  SimDuration duration = 0;  // kSleep
  /// Block immediately instead of busy-polling first (init/finalize
  /// handshakes use interruptible waits in real MPI runtimes).
  bool blocking = false;
};

/// Fluent builder for rank programs.
class Program {
 public:
  Program& compute(Work work, double jitter = 0.0);
  Program& barrier();
  /// A barrier whose waiters block instead of spinning (setup/teardown).
  Program& barrier_blocking();
  Program& allreduce(std::uint64_t bytes = 8);
  Program& alltoall(std::uint64_t bytes);
  Program& exchange(int peer_xor, std::uint64_t bytes);
  Program& sleep(SimDuration duration);
  Program& loop(int count);
  Program& end_loop();
  /// Hybrid rank: an OpenMP-style fork/join region of `work` total compute,
  /// executed by `workers` kernel tasks pulling `chunks` chunks off a shared
  /// queue (0 = 4 per worker).  The rank forks, waits on the join, and
  /// resumes; worker width may be renegotiated by an attached
  /// rtc::Coordinator.  Not a sync point — peers do not rendezvous here.
  Program& parallel(Work work, int workers, int chunks = 0,
                    double jitter = 0.0);

  const std::vector<Op>& ops() const { return ops_; }
  bool empty() const { return ops_.empty(); }

  /// Validates loop nesting; throws std::invalid_argument on mismatch.
  void validate() const;

  /// Total compute work one rank executes (loops expanded), for calibration.
  Work total_work() const;

  /// Number of synchronisation points one rank passes (loops expanded).
  std::uint64_t sync_points() const;

 private:
  std::vector<Op> ops_;
};

}  // namespace hpcs::mpi
