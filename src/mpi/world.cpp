#include "mpi/world.h"

#include <algorithm>

#include "mpi/rank_behavior.h"
#include "rtc/coordinator.h"

namespace hpcs::mpi {

using kernel::Action;
using kernel::Policy;
using kernel::Task;
using kernel::Tid;

/// mpiexec: a brief exec/setup phase, fork all ranks, block until every rank
/// exited, a brief teardown, exit.  It inherits the launcher's scheduling
/// class, so under HPL it occupies the HPC class exactly as the paper's
/// modified chrt arranges (and contributes its one CPU migration at fork).
class MpiexecBehavior : public kernel::Behavior {
 public:
  explicit MpiexecBehavior(MpiWorld& world) : world_(world) {}

  Action next(kernel::Kernel&, Task& self) override {
    switch (step_++) {
      case 0:
        return Action::compute(200 * kMicrosecond);  // exec + MPI_Init setup
      case 1:
        world_.spawn_ranks(self.policy, self.rt_prio, self.tid);
        // mpiexec only waits; it does not spin (it has nothing better to do
        // and the paper notes it introduces no run-time overhead).
        return Action::wait(world_.done_cond(), 0);
      case 2:
        return Action::compute(100 * kMicrosecond);  // collect exit codes
      default:
        return Action::exit_task();
    }
  }

 private:
  MpiWorld& world_;
  int step_ = 0;
};

MpiWorld::MpiWorld(kernel::Kernel& kernel, MpiConfig config, Program program)
    : kernel_(kernel), config_(config), program_(std::move(program)) {
  program_.validate();
  done_cond_ = kernel_.cond_create();
  kernel_.add_exit_listener([this](Task& t) { on_task_exit(t); });
}

Tid MpiWorld::launch_mpiexec(Policy policy, int rt_prio, Tid parent) {
  kernel::SpawnSpec spec;
  spec.name = "mpiexec";
  spec.policy = policy;
  spec.rt_prio = rt_prio;
  spec.parent = parent;
  spec.behavior = std::make_unique<MpiexecBehavior>(*this);
  start_time_ = kernel_.now();
  mpiexec_tid_ = kernel_.spawn(std::move(spec));
  return mpiexec_tid_;
}

void MpiWorld::spawn_ranks(Policy policy, int rt_prio, Tid parent) {
  rank_policy_ = policy;
  rank_rt_prio_ = rt_prio;
  rank_tids_.reserve(static_cast<std::size_t>(config_.nranks));
  rank_states_.resize(static_cast<std::size_t>(config_.nranks));
  for (int rank = 0; rank < config_.nranks; ++rank) {
    kernel::SpawnSpec spec;
    spec.name = "rank" + std::to_string(rank);
    spec.policy = policy;
    spec.rt_prio = rt_prio;
    spec.parent = parent;
    if (policy == Policy::kNormal) spec.nice = config_.rank_nice;
    if (config_.pin_ranks) {
      spec.affinity = kernel::cpu_mask_of(
          rank % kernel_.topology().num_cpus());
    }
    spec.behavior = std::make_unique<RankBehavior>(*this, rank);
    const Tid tid = kernel_.spawn(std::move(spec));
    rank_tids_.push_back(tid);
    RankState& rs = rank_states_[static_cast<std::size_t>(rank)];
    rs.tid = tid;
    rs.progress_anchor = kernel_.now();
    tid_to_rank_[tid] = rank;
  }
}

void MpiWorld::on_task_exit(Task& t) {
  auto it = tid_to_rank_.find(t.tid);
  if (it == tid_to_rank_.end()) return;
  const int rank = it->second;
  RankState& rs = rank_states_[static_cast<std::size_t>(rank)];
  if (rs.tid != t.tid) return;  // a previous incarnation, already handled
  if (t.killed) {
    if (aborting_) {
      // Our own abort kill: no detector round-trip needed.
      rs.dead = true;
      maybe_finish();
      return;
    }
    // The failure detector notices after the heartbeat timeout.
    rs.death_time = kernel_.now();
    const Tid tid = t.tid;
    kernel_.engine().schedule_after(
        config_.fault_detect_latency,
        [this, rank, tid] { handle_rank_death(rank, tid); });
    return;
  }
  rs.finished = true;
  maybe_finish();
}

bool MpiWorld::inject_rank_failure(int rank) {
  if (rank < 0 || rank >= static_cast<int>(rank_states_.size())) return false;
  RankState& rs = rank_states_[static_cast<std::size_t>(rank)];
  if (rs.dead || rs.finished) return false;
  return kernel_.kill_task(rs.tid);
}

std::uint64_t MpiWorld::rank_sync_count(int rank) const {
  if (rank < 0 || rank >= static_cast<int>(rank_states_.size())) return 0;
  return rank_states_[static_cast<std::size_t>(rank)].synced;
}

void MpiWorld::handle_rank_death(int rank, Tid tid) {
  RankState& rs = rank_states_[static_cast<std::size_t>(rank)];
  if (rs.tid != tid || rs.dead || rs.finished) return;  // stale detection
  rs.dead = true;
  fault_report_.add({kernel_.now(), fault::FaultKind::kRankDeathDetected, -1,
                     rank, ""});
  // Everything since the last committed sync point is gone, including a
  // collective traversal that fired but never committed.
  if (rs.death_time > rs.progress_anchor) {
    fault_report_.lost_work_ns += rs.death_time - rs.progress_anchor;
  }
  // Void the corpse's pending arrival so no match point fires (or waits)
  // on its behalf; surviving peers keep waiting for the replacement.
  if (rs.waiting) {
    rs.waiting = false;
    auto mit = matches_.find(rs.wait_key);
    if (mit != matches_.end()) {
      Match& m = mit->second;
      m.arrived -= 1;
      m.waiters.erase(std::find(m.waiters.begin(), m.waiters.end(), rank));
      if (m.arrived <= 0) matches_.erase(mit);
    }
  }
  if (!aborting_ && config_.restart_failed_ranks &&
      rs.restarts < config_.max_restarts) {
    // Detection latency already elapsed + the respawn delay still to come.
    fault_report_.restart_overhead_ns +=
        (kernel_.now() - rs.death_time) + config_.restart_delay;
    kernel_.engine().schedule_after(
        config_.restart_delay,
        [this, rank, tid] { respawn_rank(rank, tid); });
  } else {
    abort_job(rank);
  }
}

void MpiWorld::respawn_rank(int rank, Tid old_tid) {
  RankState& rs = rank_states_[static_cast<std::size_t>(rank)];
  if (aborting_ || rs.tid != old_tid || !rs.dead) return;
  rs.restarts += 1;
  rs.dead = false;
  kernel::SpawnSpec spec;
  spec.name =
      "rank" + std::to_string(rank) + ".r" + std::to_string(rs.restarts);
  spec.policy = rank_policy_;
  spec.rt_prio = rank_rt_prio_;
  spec.parent = mpiexec_tid_;
  if (rank_policy_ == Policy::kNormal) spec.nice = config_.rank_nice;
  if (config_.pin_ranks) {
    spec.affinity =
        kernel::cpu_mask_of(rank % kernel_.topology().num_cpus());
  }
  // Lightweight checkpoint restart: replay the program fast-forwarding past
  // the `synced` match points this rank already committed.  An un-committed
  // fire is NOT fast-forwarded past: the replacement redoes the traversal
  // (without re-arriving — the match record is gone) and commits then.
  spec.behavior =
      std::make_unique<RankBehavior>(*this, rank, rs.synced,
                                     rs.fired_uncommitted);
  rs.progress_anchor = kernel_.now();
  const Tid tid = kernel_.spawn(std::move(spec));
  rank_tids_[static_cast<std::size_t>(rank)] = tid;
  rs.tid = tid;
  tid_to_rank_[tid] = rank;
  fault_report_.add({kernel_.now(), fault::FaultKind::kRankRestart, -1, rank,
                     "ff=" + std::to_string(rs.synced) +
                         (rs.fired_uncommitted ? "+redo" : "")});
}

void MpiWorld::abort_job(int failed_rank) {
  if (aborting_) return;
  aborting_ = true;
  failed_ = true;
  fault_report_.add({kernel_.now(), fault::FaultKind::kJobAbort, -1,
                     failed_rank, "unrecoverable rank death"});
  for (int r = 0; r < static_cast<int>(rank_states_.size()); ++r) {
    RankState& rs = rank_states_[static_cast<std::size_t>(r)];
    if (rs.finished || rs.dead) continue;
    // kill_task re-enters on_task_exit, which marks the rank dead under
    // aborting_; running victims are reaped at their next __schedule.
    kernel_.kill_task(rs.tid);
  }
  maybe_finish();
}

void MpiWorld::maybe_finish() {
  if (finished_ || rank_states_.empty()) return;
  bool all_finished = true;
  bool all_finished_or_dead = true;
  for (const RankState& rs : rank_states_) {
    if (!rs.finished) {
      all_finished = false;
      if (!rs.dead) all_finished_or_dead = false;
    }
  }
  // While a restart is pending (dead rank, not aborting) the job is still
  // in flight: do not finish, do not hang — the respawn event is scheduled.
  if (all_finished || (aborting_ && all_finished_or_dead)) {
    finished_ = true;
    finish_time_ = kernel_.now();
    kernel_.cond_signal(done_cond_);
  }
}

void MpiWorld::attach_fabric(net::Fabric& fabric) {
  fabric_ = &fabric;
  mailbox_ = std::make_unique<net::Mailbox>(
      kernel_.engine(), fabric,
      [this](int) -> kernel::Kernel& { return kernel_; }, [](int) { return 0; },
      config_.nranks);
}

const net::FabricConfig* MpiWorld::fabric_config() const {
  return fabric_ != nullptr ? &fabric_->config() : nullptr;
}

void MpiWorld::attach_coordinator(rtc::Coordinator& coordinator) {
  coord_ = &coordinator;
  coord_id_ = coordinator.register_runtime();
}

rtc::Coordinator* MpiWorld::coordinator(int /*rank*/) { return coord_; }

int MpiWorld::coordinator_id(int /*rank*/) const { return coord_id_; }

void MpiWorld::collective_complete(std::uint32_t site, std::uint64_t visit,
                                   int rank) {
  if (mailbox_) mailbox_->complete(site, visit, rank);
  if (rank >= 0 && rank < static_cast<int>(rank_states_.size())) {
    RankState& rs = rank_states_[static_cast<std::size_t>(rank)];
    rs.synced += 1;
    rs.progress_anchor = kernel_.now();
  }
}

void MpiWorld::sync_commit(int rank) {
  if (rank < 0 || rank >= static_cast<int>(rank_states_.size())) return;
  RankState& rs = rank_states_[static_cast<std::size_t>(rank)];
  rs.synced += 1;
  rs.fired_uncommitted = false;
  rs.progress_anchor = kernel_.now();
}

std::optional<kernel::CondId> MpiWorld::arrive(std::uint32_t site,
                                               std::uint64_t visit,
                                               std::uint32_t pair_id,
                                               int needed, int rank) {
  const auto key = std::make_tuple(site, visit, pair_id);
  auto [it, inserted] = matches_.try_emplace(key);
  Match& m = it->second;
  if (inserted) m.cond = kernel_.cond_create();
  m.arrived += 1;
  if (m.arrived >= needed) {
    // Fired: every participant matched — but nobody's restart checkpoint
    // advances yet.  Each rank still has to pay the collective cost; the
    // credit lands in sync_commit() once that traversal completes, so a
    // rank killed mid-traversal redoes it instead of pocketing the sync.
    for (int w : m.waiters) {
      RankState& ws = rank_states_[static_cast<std::size_t>(w)];
      ws.fired_uncommitted = true;
      ws.waiting = false;
    }
    if (rank >= 0 && rank < static_cast<int>(rank_states_.size())) {
      rank_states_[static_cast<std::size_t>(rank)].fired_uncommitted = true;
    }
    const kernel::CondId cond = m.cond;
    matches_.erase(it);
    kernel_.cond_signal(cond);
    return std::nullopt;
  }
  m.waiters.push_back(rank);
  if (rank >= 0 && rank < static_cast<int>(rank_states_.size())) {
    RankState& rs = rank_states_[static_cast<std::size_t>(rank)];
    rs.waiting = true;
    rs.wait_key = key;
  }
  return m.cond;
}

util::Rng MpiWorld::rank_rng(int rank) const {
  return util::Rng(config_.seed).substream(0x5a5a5a5aULL +
                                           static_cast<std::uint64_t>(rank));
}

double MpiWorld::run_speed_factor() const {
  if (config_.run_speed_sigma == 0.0) return 1.0;
  util::Rng rng = util::Rng(config_.seed).substream(0xfaceULL);
  return rng.lognormal(0.0, config_.run_speed_sigma);
}

}  // namespace hpcs::mpi
