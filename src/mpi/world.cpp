#include "mpi/world.h"

#include <algorithm>

#include "mpi/rank_behavior.h"

namespace hpcs::mpi {

using kernel::Action;
using kernel::Policy;
using kernel::Task;
using kernel::Tid;

/// mpiexec: a brief exec/setup phase, fork all ranks, block until every rank
/// exited, a brief teardown, exit.  It inherits the launcher's scheduling
/// class, so under HPL it occupies the HPC class exactly as the paper's
/// modified chrt arranges (and contributes its one CPU migration at fork).
class MpiexecBehavior : public kernel::Behavior {
 public:
  explicit MpiexecBehavior(MpiWorld& world) : world_(world) {}

  Action next(kernel::Kernel&, Task& self) override {
    switch (step_++) {
      case 0:
        return Action::compute(200 * kMicrosecond);  // exec + MPI_Init setup
      case 1:
        world_.spawn_ranks(self.policy, self.rt_prio, self.tid);
        // mpiexec only waits; it does not spin (it has nothing better to do
        // and the paper notes it introduces no run-time overhead).
        return Action::wait(world_.done_cond(), 0);
      case 2:
        return Action::compute(100 * kMicrosecond);  // collect exit codes
      default:
        return Action::exit_task();
    }
  }

 private:
  MpiWorld& world_;
  int step_ = 0;
};

MpiWorld::MpiWorld(kernel::Kernel& kernel, MpiConfig config, Program program)
    : kernel_(kernel), config_(config), program_(std::move(program)) {
  program_.validate();
  done_cond_ = kernel_.cond_create();
  kernel_.add_exit_listener([this](Task& t) { on_task_exit(t); });
}

Tid MpiWorld::launch_mpiexec(Policy policy, int rt_prio, Tid parent) {
  kernel::SpawnSpec spec;
  spec.name = "mpiexec";
  spec.policy = policy;
  spec.rt_prio = rt_prio;
  spec.parent = parent;
  spec.behavior = std::make_unique<MpiexecBehavior>(*this);
  start_time_ = kernel_.now();
  mpiexec_tid_ = kernel_.spawn(std::move(spec));
  return mpiexec_tid_;
}

void MpiWorld::spawn_ranks(Policy policy, int rt_prio, Tid parent) {
  rank_tids_.reserve(static_cast<std::size_t>(config_.nranks));
  for (int rank = 0; rank < config_.nranks; ++rank) {
    kernel::SpawnSpec spec;
    spec.name = "rank" + std::to_string(rank);
    spec.policy = policy;
    spec.rt_prio = rt_prio;
    spec.parent = parent;
    if (policy == Policy::kNormal) spec.nice = config_.rank_nice;
    if (config_.pin_ranks) {
      spec.affinity = kernel::cpu_mask_of(
          rank % kernel_.topology().num_cpus());
    }
    spec.behavior = std::make_unique<RankBehavior>(*this, rank);
    rank_tids_.push_back(kernel_.spawn(std::move(spec)));
    ++ranks_alive_;
  }
}

void MpiWorld::on_task_exit(Task& t) {
  if (std::find(rank_tids_.begin(), rank_tids_.end(), t.tid) ==
      rank_tids_.end()) {
    return;
  }
  if (--ranks_alive_ == 0) {
    finished_ = true;
    finish_time_ = kernel_.now();
    kernel_.cond_signal(done_cond_);
  }
}

std::optional<kernel::CondId> MpiWorld::arrive(std::uint32_t site,
                                               std::uint64_t visit,
                                               std::uint32_t pair_id,
                                               int needed, int rank) {
  (void)rank;  // a single node needs no locality bookkeeping
  const auto key = std::make_tuple(site, visit, pair_id);
  auto [it, inserted] = matches_.try_emplace(key);
  Match& m = it->second;
  if (inserted) m.cond = kernel_.cond_create();
  m.arrived += 1;
  if (m.arrived >= needed) {
    const kernel::CondId cond = m.cond;
    matches_.erase(it);
    kernel_.cond_signal(cond);
    return std::nullopt;
  }
  return m.cond;
}

util::Rng MpiWorld::rank_rng(int rank) const {
  return util::Rng(config_.seed).substream(0x5a5a5a5aULL +
                                           static_cast<std::uint64_t>(rank));
}

double MpiWorld::run_speed_factor() const {
  if (config_.run_speed_sigma == 0.0) return 1.0;
  util::Rng rng = util::Rng(config_.seed).substream(0xfaceULL);
  return rng.lognormal(0.0, config_.run_speed_sigma);
}

}  // namespace hpcs::mpi
