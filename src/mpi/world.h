// MpiWorld: one simulated MPI job (mpiexec + N ranks) on the machine.
//
// Rendezvous semantics: every synchronising op is a *match point* identified
// by (program counter, visit count, pair id).  Ranks arriving early spin for
// a configurable budget (MPI libraries busy-poll), then block; the last
// arrival fires the point's condition and everyone proceeds.  This is what
// couples OS noise to job runtime: delay one rank and every peer spins or
// blocks at the match point until it catches up — Figure 1 of the paper.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "fault/fault.h"
#include "kernel/kernel.h"
#include "mpi/program.h"
#include "net/collective.h"
#include "net/fabric.h"
#include "net/mailbox.h"
#include "util/rng.h"

namespace hpcs::rtc {
class Coordinator;
}

namespace hpcs::mpi {

struct MpiConfig {
  int nranks = 8;
  /// CPU-time budget a rank busy-polls at a match point before blocking.
  SimDuration spin_before_block = 5 * kMillisecond;
  /// CPU cost of traversing a collective once matched (latency term).
  SimDuration collective_alpha = 3 * kMicrosecond;
  /// CPU cost per byte moved by a collective (bandwidth term, ns/byte).
  double per_byte_ns = 0.0005;
  /// Relative stddev applied to compute phases per rank per visit (inherent
  /// application imbalance, independent of OS noise).
  double compute_jitter = 0.0;
  /// Run-to-run multiplicative speed variation (thermal state, memory
  /// layout, ...): one lognormal factor per run applied to all compute
  /// phases of all ranks.  This is the irreducible variance HPL cannot
  /// remove (Table II shows 0.3-3% even under HPL).
  double run_speed_sigma = 0.003;
  /// How collectives execute.  kFlat keeps the legacy single match point
  /// with the alpha + per-byte CPU charge; the algorithmic variants
  /// decompose each barrier/allreduce into point-to-point messages routed
  /// through the attached net::Fabric (a fabric must be attached, or the
  /// config falls back to flat).
  net::Algorithm collective_algorithm = net::Algorithm::kFlat;
  /// Ablation: pin rank i to CPU i (static sched_setaffinity binding).
  bool pin_ranks = false;
  /// Ablation: nice value for the ranks (CFS only).
  int rank_nice = 0;
  std::uint64_t seed = 1;
  // --- fault tolerance -------------------------------------------------------
  /// How long after a rank dies the runtime's failure detector notices
  /// (models the heartbeat/timeout real MPI runtimes use instead of hanging
  /// in the collective forever).
  SimDuration fault_detect_latency = 2 * kMillisecond;
  /// On rank death: respawn the rank from its sync-point checkpoint instead
  /// of aborting the job.
  bool restart_failed_ranks = false;
  /// Delay between detection and the respawn (checkpoint load, re-exec).
  SimDuration restart_delay = 5 * kMillisecond;
  /// Give up and abort after this many restarts across the job.
  int max_restarts = 8;
};

/// The runtime surface RankBehavior programs against.  MpiWorld implements
/// it for a single node; cluster::ClusterJob implements it across nodes
/// (where releasing remote waiters pays network latency).
class RankRuntime {
 public:
  virtual ~RankRuntime() = default;
  virtual const MpiConfig& config() const = 0;
  virtual const Program& program() const = 0;
  /// Arrive at match point (site, visit, pair) as `rank`.  Returns the
  /// condition (valid on the caller's kernel) to wait on, or nullopt when
  /// the caller is the last arrival and the point fired.
  virtual std::optional<kernel::CondId> arrive(std::uint32_t site,
                                               std::uint64_t visit,
                                               std::uint32_t pair_id,
                                               int needed, int rank) = 0;
  /// Deterministic per-rank random stream for compute jitter.
  virtual util::Rng rank_rng(int rank) const = 0;
  /// This run's global speed factor (see MpiConfig::run_speed_sigma).
  virtual double run_speed_factor() const = 0;
  /// Transport for stepwise collectives; null means no fabric is attached
  /// and collectives stay on the flat match-point path.
  virtual net::Mailbox* mailbox() { return nullptr; }
  virtual const net::FabricConfig* fabric_config() const { return nullptr; }
  /// `rank` finished every step of stepwise collective (site, visit):
  /// reclaim mailbox state and credit the rank's restart checkpoint.
  virtual void collective_complete(std::uint32_t /*site*/,
                                   std::uint64_t /*visit*/, int /*rank*/) {}
  /// `rank` finished *paying* for a flat match point that fired earlier:
  /// only now does its restart checkpoint advance.  A rank killed between
  /// the fire and this commit gets no credit for the partial sync — the
  /// aborted traversal counts as lost work and is redone on restart.
  virtual void sync_commit(int /*rank*/) {}
  /// Per-node user-space co-scheduling broker for hybrid ranks' parallel
  /// regions (src/rtc).  Null = uncoordinated: the worker pool relies on
  /// the kernel scheduler alone.
  virtual rtc::Coordinator* coordinator(int /*rank*/) { return nullptr; }
  /// This runtime's registration id with coordinator(rank).
  virtual int coordinator_id(int /*rank*/) const { return 0; }
};

class MpiWorld : public RankRuntime {
 public:
  /// The world interprets `program` on `config.nranks` ranks.  Nothing is
  /// spawned until launch() / launch_mpiexec() is called.
  MpiWorld(kernel::Kernel& kernel, MpiConfig config, Program program);

  MpiWorld(const MpiWorld&) = delete;
  MpiWorld& operator=(const MpiWorld&) = delete;

  /// Spawn an mpiexec task under `policy` (ranks inherit it, like fork()),
  /// parented to `parent`.  mpiexec spawns the ranks, waits for them all to
  /// exit, then exits itself.  Returns mpiexec's tid.
  kernel::Tid launch_mpiexec(kernel::Policy policy, int rt_prio,
                             kernel::Tid parent);

  bool finished() const { return finished_; }
  /// True when the job ended by abort rather than every rank completing.
  bool failed() const { return failed_; }
  /// Time the last rank exited (valid once finished()).
  SimTime finish_time() const { return finish_time_; }
  SimTime start_time() const { return start_time_; }

  // --- fault tolerance -------------------------------------------------------
  /// Kill `rank` mid-run (the fault injector's entry point).  Returns false
  /// when the rank is not killable (not yet spawned, already dead/finished).
  /// The runtime notices after config().fault_detect_latency and either
  /// respawns the rank from its sync-point checkpoint
  /// (restart_failed_ranks) or aborts the whole job — either way the match
  /// points never hang on the corpse: its pending arrival is voided.
  bool inject_rank_failure(int rank);
  /// Detections, restarts, and aborts observed by the runtime this run.
  const fault::FaultReport& fault_report() const { return fault_report_; }
  /// Completed sync points for `rank` (its restart checkpoint).
  std::uint64_t rank_sync_count(int rank) const;

  const MpiConfig& config() const override { return config_; }
  const Program& program() const override { return program_; }
  const std::vector<kernel::Tid>& rank_tids() const { return rank_tids_; }
  kernel::Tid mpiexec_tid() const { return mpiexec_tid_; }

  /// Condition fired when every rank has exited.
  kernel::CondId done_cond() const { return done_cond_; }

  /// Route stepwise collectives (config.collective_algorithm != kFlat)
  /// through `fabric`, which must outlive this world.  All ranks of a
  /// single-node world live on fabric node 0, so only local links carry
  /// traffic.  Call before launch_mpiexec().
  void attach_fabric(net::Fabric& fabric);

  /// Register this job with the node's co-scheduling broker: hybrid ranks
  /// negotiate their parallel regions through it (mode, worker leases).
  /// Call before launch_mpiexec(); `coordinator` must outlive the job.
  void attach_coordinator(rtc::Coordinator& coordinator);

  // --- RankRuntime -----------------------------------------------------------
  std::optional<kernel::CondId> arrive(std::uint32_t site, std::uint64_t visit,
                                       std::uint32_t pair_id, int needed,
                                       int rank) override;
  util::Rng rank_rng(int rank) const override;
  double run_speed_factor() const override;
  net::Mailbox* mailbox() override { return mailbox_.get(); }
  const net::FabricConfig* fabric_config() const override;
  void collective_complete(std::uint32_t site, std::uint64_t visit,
                           int rank) override;
  void sync_commit(int rank) override;
  rtc::Coordinator* coordinator(int rank) override;
  int coordinator_id(int rank) const override;

  kernel::Kernel& kernel() { return kernel_; }

 private:
  friend class MpiexecBehavior;

  using MatchKey = std::tuple<std::uint32_t, std::uint64_t, std::uint32_t>;

  /// Per-rank runtime state across incarnations (a restart reuses the slot).
  struct RankState {
    kernel::Tid tid = kernel::kInvalidTid;  // current incarnation
    bool finished = false;                  // exited cleanly
    bool dead = false;                      // killed, death detected, no body
    int restarts = 0;
    std::uint64_t synced = 0;  // committed match points = restart checkpoint
    bool waiting = false;      // has an un-fired arrival registered
    MatchKey wait_key{};
    /// A flat match point fired for this rank but the rank has not finished
    /// paying the collective cost (the commit).  A death here means the
    /// replacement must redo the traversal without re-arriving (the match
    /// record is gone — peers already moved on).
    bool fired_uncommitted = false;
    /// Last committed progress instant; death loses everything after it.
    SimTime progress_anchor = 0;
    /// When the current incarnation was killed (for overhead accounting).
    SimTime death_time = 0;
  };

  void spawn_ranks(kernel::Policy policy, int rt_prio, kernel::Tid parent);
  void on_task_exit(kernel::Task& t);
  /// The failure detector fired for `rank` (tid guards stale detections).
  void handle_rank_death(int rank, kernel::Tid tid);
  void respawn_rank(int rank, kernel::Tid old_tid);
  void abort_job(int failed_rank);
  void maybe_finish();

  kernel::Kernel& kernel_;
  MpiConfig config_;
  Program program_;
  net::Fabric* fabric_ = nullptr;
  std::unique_ptr<net::Mailbox> mailbox_;
  rtc::Coordinator* coord_ = nullptr;
  int coord_id_ = 0;

  std::vector<kernel::Tid> rank_tids_;
  std::vector<RankState> rank_states_;
  std::map<kernel::Tid, int> tid_to_rank_;  // all incarnations ever spawned
  kernel::Policy rank_policy_ = kernel::Policy::kNormal;
  int rank_rt_prio_ = 0;
  kernel::Tid mpiexec_tid_ = kernel::kInvalidTid;
  kernel::CondId done_cond_ = kernel::kInvalidCond;
  bool finished_ = false;
  bool failed_ = false;
  bool aborting_ = false;
  SimTime start_time_ = 0;
  SimTime finish_time_ = 0;
  fault::FaultReport fault_report_;

  struct Match {
    kernel::CondId cond = kernel::kInvalidCond;
    int arrived = 0;
    std::vector<int> waiters;  // ranks whose arrival has not fired yet
  };
  std::map<MatchKey, Match> matches_;
};

}  // namespace hpcs::mpi
