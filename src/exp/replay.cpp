#include "exp/replay.h"

#include <utility>

#include "batch/queue.h"

namespace hpcs::exp {

std::vector<ReplayPolicyRun> compare_replay_policies(
    const batch::ReplayConfig& base,
    const std::vector<batch::JobSpec>& trace) {
  std::vector<ReplayPolicyRun> runs;
  runs.reserve(4);

  batch::ReplayConfig fcfs = base;
  fcfs.queues.clear();  // one catch-all queue admits everything
  fcfs.fairshare.enabled = false;
  fcfs.preempt.enabled = false;
  runs.push_back({"fcfs", batch::run_replay_serial(fcfs, trace)});

  batch::ReplayConfig fair = base;
  fair.fairshare.enabled = true;
  fair.preempt.enabled = false;
  runs.push_back({"fairshare", batch::run_replay_serial(fair, trace)});

  batch::ReplayConfig preempt = base;
  preempt.fairshare.enabled = false;
  preempt.preempt.enabled = true;
  runs.push_back({"preempt", batch::run_replay_serial(preempt, trace)});

  batch::ReplayConfig full = base;
  full.fairshare.enabled = true;
  full.preempt.enabled = true;
  runs.push_back({"full", batch::run_replay_serial(full, trace)});

  return runs;
}

}  // namespace hpcs::exp
