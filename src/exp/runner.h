// The experiment runner: one measured run = one freshly booted simulated
// node + daemons + a perf/chrt/mpiexec launch of the workload, repeated over
// seeds to build the distributions the paper reports.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "fault/fault_plan.h"
#include "kernel/kernel.h"
#include "mpi/launch.h"
#include "mpi/program.h"
#include "mpi/world.h"
#include "util/stats.h"
#include "workloads/daemons.h"

namespace hpcs::exp {

/// The scheduler configurations compared in the paper (plus ablations).
enum class Setup {
  kStandardLinux,   // CFS, stock balancing           (Table Ia, II left)
  kRealTime,        // SCHED_FIFO ranks               (Fig 4)
  kNice,            // CFS ranks at nice -20          (Section IV discussion)
  kPinned,          // CFS ranks + sched_setaffinity  (static binding)
  kHpl,             // the HPC class                  (Table Ib, II right)
  kHplNettick,      // HPL + NETTICK-style tick suppression
  kHplNaive,        // HPL with linear (non-topology-aware) fork placement
  kHplNoIdleBalance,  // HPL that suppresses balancing even with no HPC tasks
};

const char* setup_name(Setup setup);
bool setup_uses_hpl(Setup setup);

struct RunConfig {
  Setup setup = Setup::kStandardLinux;
  kernel::KernelConfig kernel;
  workloads::NoiseConfig noise;
  mpi::MpiConfig mpi;
  mpi::Program program;
  /// Simulated time the node runs before the job launches (daemons settle).
  SimDuration settle = 50 * kMillisecond;
  /// Abort threshold for one run.
  SimDuration timeout = 600 * kSecond;
  /// Faults injected into the run (empty = fault-free).  Times are relative
  /// to the same clock as `settle` (absolute simulated time).
  fault::FaultPlan faults;
  /// Run the kernel invariant checker after every event (slow; robustness
  /// experiments and HPCS_CHECK_INVARIANTS builds turn it on).
  bool check_invariants = false;
};

struct RunResult {
  bool completed = false;
  /// The seed that produced this run — lets a sweep replay any single
  /// outlier in isolation.
  std::uint64_t seed = 0;
  /// Host wall-clock the run cost (real time, not simulated): the triage
  /// handle for slow/pathological runs in big sweeps.
  double host_seconds = 0.0;
  double app_seconds = 0.0;  // mpiexec launch -> last rank exit
  double perf_window_seconds = 0.0;
  std::uint64_t context_switches = 0;
  std::uint64_t cpu_migrations = 0;
  std::uint64_t preemptions = 0;
  std::uint64_t wakeups = 0;
  // Power-model outputs over the measurement window (paper future work).
  double energy_joules = 0.0;
  double spin_seconds = 0.0;  // CPU time burnt busy-waiting at match points
  double average_watts = 0.0;
  // Robustness outputs.
  fault::FaultReport faults;  // injected actions + runtime reactions
  /// Simulated work discarded by rank deaths (since each victim's last
  /// committed sync point — an aborted checkpoint write earns no credit).
  double lost_work_seconds = 0.0;
  /// Detection latency + respawn delay summed over restarts.
  double restart_overhead_seconds = 0.0;
  // Workflow outputs (run_workflow_once; zero for node-level runs).
  double workflow_makespan_seconds = 0.0;
  double workflow_cp_stretch = 0.0;        // makespan / ideal critical path
  double workflow_dep_stall_seconds = 0.0;  // mean held-on-deps time per job
  std::string error;          // exception text when the run itself blew up
};

/// Execute one run; `seed` drives every random stream.
RunResult run_once(const RunConfig& config, std::uint64_t seed);

/// How a sweep is executed.  Results are bit-identical regardless of thread
/// count: every run owns a private Engine and derives all of its random
/// streams from its own seed, and the runs vector is ordered by seed slot,
/// not completion order.  (host_seconds is the one wall-clock field and is
/// exempt from that guarantee.)
struct SweepOptions {
  /// Worker threads; 1 = serial (the default), 0 = hardware concurrency.
  int threads = 1;

  int resolved_threads(int count) const;
};

struct Series {
  std::vector<RunResult> runs;
  int failures = 0;

  util::Samples seconds() const;
  util::Samples migrations() const;
  util::Samples switches() const;
  /// Seed of the run with the largest host wall-clock cost (0 when the
  /// series is empty): the first run to re-examine when a sweep is slow.
  std::uint64_t slowest_seed() const;
  /// Error messages of runs that threw (a sweep survives a crashing run:
  /// run_series records the exception and moves on to the next seed).
  std::vector<std::string> errors() const;
};

/// Execute `count` runs with seeds base_seed, base_seed+1, ...  A thread
/// pool of `options.threads` workers pulls run slots from a shared counter;
/// each worker executes whole runs, so the simulation itself stays
/// single-threaded per engine.
Series run_series(const RunConfig& config, int count, std::uint64_t base_seed,
                  const SweepOptions& options);

/// Serial convenience overload (SweepOptions{.threads = 1}).
Series run_series(const RunConfig& config, int count, std::uint64_t base_seed);

}  // namespace hpcs::exp
