// Trace-replay policy comparison: the same workload through the federated
// multi-queue scheduler (batch/replay.h) under a ladder of policy stacks —
// plain FCFS, fairshare, preemption, and both — so benches and experiments
// can gate on the *relative* claims (fairshare evens out per-user service,
// preemption buys high-priority responsiveness) instead of absolute
// numbers.  Every rung replays the identical job stream; only the policy
// block of the ReplayConfig differs.
#pragma once

#include <string>
#include <vector>

#include "batch/job.h"
#include "batch/replay.h"

namespace hpcs::exp {

struct ReplayPolicyRun {
  /// Rung name: "fcfs", "fairshare", "preempt", or "full".
  std::string name;
  batch::ReplayResult result;
};

/// Replay `trace` under the four policy rungs derived from `base`:
///   fcfs       single catch-all queue, no fairshare, no preemption
///   fairshare  base queues + fairshare enabled, no preemption
///   preempt    base queues + preemption enabled, no fairshare
///   full       base queues + fairshare + preemption
/// `base.queues` supplies the multi-queue layout for the non-fcfs rungs
/// (the fcfs rung replaces it with one unlimited queue so every job is
/// admitted).  All runs are serial — callers gating serial-vs-sharded
/// equivalence drive run_replay_sharded themselves.
std::vector<ReplayPolicyRun> compare_replay_policies(
    const batch::ReplayConfig& base, const std::vector<batch::JobSpec>& trace);

}  // namespace hpcs::exp
