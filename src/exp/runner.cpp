#include "exp/runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <thread>

#include "core/hpl.h"
#include "fault/injector.h"
#include "perf/perf_monitor.h"
#include "sim/engine.h"
#include "util/rng.h"

namespace hpcs::exp {

const char* setup_name(Setup setup) {
  switch (setup) {
    case Setup::kStandardLinux: return "std-linux";
    case Setup::kRealTime: return "rt";
    case Setup::kNice: return "nice-20";
    case Setup::kPinned: return "affinity-pinned";
    case Setup::kHpl: return "hpl";
    case Setup::kHplNettick: return "hpl+nettick";
    case Setup::kHplNaive: return "hpl-naive-placement";
    case Setup::kHplNoIdleBalance: return "hpl-never-balance";
  }
  return "?";
}

bool setup_uses_hpl(Setup setup) {
  switch (setup) {
    case Setup::kHpl:
    case Setup::kHplNettick:
    case Setup::kHplNaive:
    case Setup::kHplNoIdleBalance:
      return true;
    default:
      return false;
  }
}

RunResult run_once(const RunConfig& config, std::uint64_t seed) {
  const auto host_start = std::chrono::steady_clock::now();
  util::SplitMix64 seeder(seed);
  sim::Engine engine;

  kernel::KernelConfig kc = config.kernel;
  if (config.setup == Setup::kHplNettick) kc.tickless_single = true;
  kernel::Kernel kernel(engine, kc);

  if (setup_uses_hpl(config.setup)) {
    hpl::HplOptions options;
    if (config.setup == Setup::kHplNaive) {
      options.hpc.placement = hpl::Placement::kLinear;
    }
    if (config.setup == Setup::kHplNoIdleBalance) {
      options.allow_balancing_when_hpc_idle = false;
    }
    hpl::install(kernel, options);
  }
  if (config.check_invariants) kernel.set_invariant_checks(true);
  kernel.boot();

  workloads::NoiseConfig noise = config.noise;
  noise.seed = seeder.next();
  workloads::spawn_standard_node_daemons(kernel, noise);

  mpi::MpiConfig mc = config.mpi;
  mc.seed = seeder.next();
  if (config.setup == Setup::kPinned) mc.pin_ranks = true;
  if (config.setup == Setup::kNice) mc.rank_nice = kernel::kMinNice;
  mpi::MpiWorld world(kernel, mc, config.program);
  mpi::Launcher launcher(kernel, world);
  perf::PerfMonitor monitor(kernel);
  fault::FaultInjector injector(kernel, config.faults);
  injector.arm(&world);

  // Let the boot transients and daemon phases settle before measuring.
  engine.run_until(config.settle);

  mpi::LaunchOptions lo;
  switch (config.setup) {
    case Setup::kRealTime:
      lo.app_policy = kernel::Policy::kFifo;
      lo.rt_prio = 50;
      break;
    case Setup::kHpl:
    case Setup::kHplNettick:
    case Setup::kHplNaive:
    case Setup::kHplNoIdleBalance:
      lo.app_policy = kernel::Policy::kHpc;
      break;
    default:
      lo.app_policy = kernel::Policy::kNormal;
      break;
  }

  monitor.start();
  const hw::EnergyInputs energy_start = kernel.energy_inputs();
  const SimTime window_start = engine.now();
  hw::EnergyInputs energy_end;
  SimTime window_end = window_start;
  bool window_closed = false;
  const kernel::Tid perf_tid = launcher.start(lo);
  // Close the measurement window the instant perf exits, like the real tool.
  kernel.add_exit_listener([&, perf_tid](kernel::Task& t) {
    if (t.tid != perf_tid) return;
    monitor.stop();
    energy_end = kernel.energy_inputs();
    window_end = engine.now();
    window_closed = true;
  });

  const SimTime deadline = engine.now() + config.timeout;
  while (!launcher.done() && engine.now() < deadline && engine.pending() > 0) {
    engine.run_until(std::min<SimTime>(engine.now() + 100 * kMillisecond,
                                       deadline));
  }
  monitor.stop();

  RunResult result;
  result.seed = seed;
  result.completed = launcher.done() && world.finished() && !world.failed();
  result.faults = injector.report();
  result.faults.merge(world.fault_report());
  result.lost_work_seconds = to_seconds(result.faults.lost_work_ns);
  result.restart_overhead_seconds =
      to_seconds(result.faults.restart_overhead_ns);
  if (world.finished()) {
    result.app_seconds = to_seconds(world.finish_time() - world.start_time());
  }
  result.perf_window_seconds = to_seconds(monitor.window());
  const auto& counts = monitor.counts();
  result.context_switches = counts.context_switches;
  result.cpu_migrations = counts.cpu_migrations;
  result.preemptions = counts.preemptions;
  result.wakeups = counts.wakeups;

  // Energy over the measurement window (delta of the kernel's aggregates).
  if (!window_closed) {
    energy_end = kernel.energy_inputs();
    window_end = engine.now();
  }
  hw::EnergyInputs window;
  window.busy_ns = energy_end.busy_ns - energy_start.busy_ns;
  window.smt_paired_ns = energy_end.smt_paired_ns - energy_start.smt_paired_ns;
  window.smt_extra_ns = energy_end.smt_extra_ns - energy_start.smt_extra_ns;
  window.spin_ns = energy_end.spin_ns - energy_start.spin_ns;
  window.idle_ns = energy_end.idle_ns - energy_start.idle_ns;
  window.context_switches =
      energy_end.context_switches - energy_start.context_switches;
  window.migrations = energy_end.migrations - energy_start.migrations;
  window.ticks = energy_end.ticks - energy_start.ticks;
  const hw::EnergyReport energy =
      hw::compute_energy(window, hw::PowerParams{}, window_end - window_start);
  result.energy_joules = energy.total_joules();
  result.spin_seconds = to_seconds(window.spin_ns);
  result.average_watts = energy.average_watts();
  result.host_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    host_start)
          .count();
  return result;
}

util::Samples Series::seconds() const {
  util::Samples s;
  for (const auto& r : runs) {
    if (r.completed) s.add(r.app_seconds);
  }
  return s;
}

util::Samples Series::migrations() const {
  util::Samples s;
  for (const auto& r : runs) {
    if (r.completed) s.add(static_cast<double>(r.cpu_migrations));
  }
  return s;
}

util::Samples Series::switches() const {
  util::Samples s;
  for (const auto& r : runs) {
    if (r.completed) s.add(static_cast<double>(r.context_switches));
  }
  return s;
}

std::uint64_t Series::slowest_seed() const {
  std::uint64_t seed = 0;
  double worst = -1.0;
  for (const auto& r : runs) {
    if (r.host_seconds > worst) {
      worst = r.host_seconds;
      seed = r.seed;
    }
  }
  return seed;
}

std::vector<std::string> Series::errors() const {
  std::vector<std::string> out;
  for (const auto& r : runs) {
    if (!r.error.empty()) out.push_back(r.error);
  }
  return out;
}

int SweepOptions::resolved_threads(int count) const {
  int n = threads;
  if (n <= 0) n = static_cast<int>(std::thread::hardware_concurrency());
  if (n <= 0) n = 1;
  return std::clamp(n, 1, std::max(count, 1));
}

namespace {

/// One sweep slot: run_once wrapped so an exploding run (an invariant
/// violation, a workload bug) is recorded instead of taking the rest of the
/// sweep down with it.  host_seconds is measured here, per run and on the
/// monotonic clock, so it stays a per-run triage handle — never a slice of
/// some serial loop — and parallel execution cannot skew it.
RunResult guarded_run(const RunConfig& config, std::uint64_t seed) {
  const auto host_start = std::chrono::steady_clock::now();
  RunResult r;
  try {
    r = run_once(config, seed);
  } catch (const std::exception& e) {
    r = RunResult{};
    r.completed = false;
    r.error = e.what();
  }
  r.seed = seed;
  r.host_seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - host_start)
                       .count();
  return r;
}

}  // namespace

Series run_series(const RunConfig& config, int count, std::uint64_t base_seed,
                  const SweepOptions& options) {
  Series series;
  if (count <= 0) return series;
  series.runs.resize(static_cast<std::size_t>(count));
  const int workers = options.resolved_threads(count);
  if (workers <= 1) {
    for (int i = 0; i < count; ++i) {
      series.runs[static_cast<std::size_t>(i)] =
          guarded_run(config, base_seed + static_cast<std::uint64_t>(i));
    }
  } else {
    // Work-stealing by atomic counter: slot i always runs seed base_seed+i
    // and lands in runs[i], so the aggregate is independent of which worker
    // picked it up or in what order runs finished.
    std::atomic<int> next{0};
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        for (int i = next.fetch_add(1, std::memory_order_relaxed); i < count;
             i = next.fetch_add(1, std::memory_order_relaxed)) {
          series.runs[static_cast<std::size_t>(i)] =
              guarded_run(config, base_seed + static_cast<std::uint64_t>(i));
        }
      });
    }
    for (auto& t : pool) t.join();
  }
  for (const auto& r : series.runs) {
    if (!r.completed) ++series.failures;
  }
  return series;
}

Series run_series(const RunConfig& config, int count, std::uint64_t base_seed) {
  return run_series(config, count, base_seed, SweepOptions{});
}

}  // namespace hpcs::exp
