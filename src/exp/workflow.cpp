#include "exp/workflow.h"

#include <chrono>
#include <exception>

#include "batch/workflow.h"
#include "cluster/cluster.h"
#include "net/fabric.h"
#include "sim/engine.h"

namespace hpcs::exp {

RunResult run_workflow_once(const WorkflowRunConfig& config,
                            std::uint64_t seed) {
  RunResult result;
  result.seed = seed;
  const auto host_start = std::chrono::steady_clock::now();
  try {
    sim::Engine engine;
    cluster::ClusterConfig cc;
    cc.nodes = config.nodes;
    cc.spawn_daemons = false;  // the scheduler, not node noise, is on trial
    cc.fabric = net::FabricConfig{};
    cluster::Cluster cluster(engine, cc);

    batch::BatchConfig bc = config.batch;
    bc.seed = seed;
    batch::BatchScheduler sched(cluster, bc);
    if (!config.control.empty()) {
      sched.submit_all(batch::jobs_from_control(config.control));
    } else {
      wf::DagGenConfig gen = config.dag;
      int next_id = 1;
      for (int w = 0; w < config.instances; ++w) {
        gen.first_id = next_id;
        const auto jobs = batch::jobs_from_generated(
            gen, seed, static_cast<SimTime>(w) * config.spacing);
        next_id += static_cast<int>(jobs.size());
        sched.submit_all(jobs);
      }
    }
    engine.run_until(config.timeout);
    const batch::BatchMetrics metrics = sched.metrics();
    if (!sched.all_done()) {
      result.error = "workflow did not drain before the timeout";
    } else if (metrics.failed > 0 || metrics.canceled > 0) {
      result.error = std::to_string(metrics.failed) + " failed, " +
                     std::to_string(metrics.canceled) + " canceled job(s)";
    } else {
      result.completed = true;
    }
    result.app_seconds = metrics.makespan_s;
    result.workflow_makespan_seconds = metrics.workflow_makespan_s;
    result.workflow_cp_stretch = metrics.cp_stretch;
    result.workflow_dep_stall_seconds = metrics.mean_dep_stall_s;
  } catch (const std::exception& e) {
    result.error = e.what();
  }
  result.host_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    host_start)
          .count();
  return result;
}

}  // namespace hpcs::exp
