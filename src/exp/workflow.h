// Workflow experiments: one measured run = a quiet simulated cluster, a
// BatchScheduler under the policy being ablated, and one or more DAG
// workflow instances submitted as a unit.  The per-run outputs (workflow
// makespan, critical-path stretch, dependency stall) land in the same
// RunResult record the node-level experiments use, so the report/table
// machinery aggregates both kinds of run.
#pragma once

#include <cstdint>
#include <string>

#include "batch/scheduler.h"
#include "exp/runner.h"
#include "wf/generator.h"

namespace hpcs::exp {

struct WorkflowRunConfig {
  /// Cluster size (quiet nodes: no daemons, the scheduler is the subject).
  int nodes = 16;
  /// Scheduler under test; the seed is overridden per run.
  batch::BatchConfig batch;
  /// Generated workload shape (ignored when `control` is set).
  wf::DagGenConfig dag;
  int instances = 1;
  /// Arrival gap between instances.
  SimDuration spacing = 0;
  /// hpcsched-style control file text; when non-empty it replaces the
  /// generator (and `instances`/`spacing` are ignored — a control file is
  /// one campaign).
  std::string control;
  /// Abort threshold for one run.
  SimDuration timeout = 3600 * kSecond;
};

/// Execute one workflow run; `seed` drives the generator, the per-job MPI
/// streams, and any fault campaign.  On success, `completed` is true and
/// the workflow_* fields carry the run's BatchMetrics; a run that fails to
/// drain (timeout, canceled jobs) reports completed = false with `error`
/// set.
RunResult run_workflow_once(const WorkflowRunConfig& config,
                            std::uint64_t seed);

}  // namespace hpcs::exp
