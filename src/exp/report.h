// Paper-style table builders shared by the benchmark binaries and tests.
#pragma once

#include <string>
#include <vector>

#include "exp/runner.h"
#include "util/table.h"
#include "workloads/nas.h"

namespace hpcs::exp {

struct NasSeries {
  workloads::NasInstance instance;
  Series series;
};

/// Table I (a or b): per-benchmark CPU-migration and context-switch
/// min/avg/max for one scheduler setup.
util::Table scheduler_noise_table(const std::vector<NasSeries>& rows);

/// Table II: execution time min/avg/max/var% for two setups side by side.
util::Table execution_time_table(const std::vector<NasSeries>& std_rows,
                                 const std::vector<NasSeries>& hpl_rows);

/// Summary line: average of the per-benchmark Var.% values (the paper's
/// "2.11% on average").
double mean_variation_pct(const std::vector<NasSeries>& rows);

}  // namespace hpcs::exp
