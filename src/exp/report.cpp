#include "exp/report.h"

#include <stdexcept>

#include "util/stats.h"

namespace hpcs::exp {

using util::format_fixed;
using util::Samples;

util::Table scheduler_noise_table(const std::vector<NasSeries>& rows) {
  util::Table table({"Bench", "Migr.Min", "Migr.Avg", "Migr.Max", "CS.Min",
                     "CS.Avg", "CS.Max"});
  for (const auto& row : rows) {
    const Samples m = row.series.migrations();
    const Samples c = row.series.switches();
    table.add_row({workloads::nas_instance_name(row.instance),
                   format_fixed(m.min(), 0), format_fixed(m.mean(), 2),
                   format_fixed(m.max(), 0), format_fixed(c.min(), 0),
                   format_fixed(c.mean(), 2), format_fixed(c.max(), 0)});
  }
  return table;
}

util::Table execution_time_table(const std::vector<NasSeries>& std_rows,
                                 const std::vector<NasSeries>& hpl_rows) {
  if (std_rows.size() != hpl_rows.size()) {
    throw std::invalid_argument("execution_time_table: row count mismatch");
  }
  util::Table table({"Bench", "Std.Min", "Std.Avg", "Std.Max", "Std.Var%",
                     "HPL.Min", "HPL.Avg", "HPL.Max", "HPL.Var%"});
  for (std::size_t i = 0; i < std_rows.size(); ++i) {
    const Samples a = std_rows[i].series.seconds();
    const Samples b = hpl_rows[i].series.seconds();
    table.add_row({workloads::nas_instance_name(std_rows[i].instance),
                   format_fixed(a.min(), 2), format_fixed(a.mean(), 2),
                   format_fixed(a.max(), 2),
                   format_fixed(a.range_variation_pct(), 2),
                   format_fixed(b.min(), 2), format_fixed(b.mean(), 2),
                   format_fixed(b.max(), 2),
                   format_fixed(b.range_variation_pct(), 2)});
  }
  return table;
}

double mean_variation_pct(const std::vector<NasSeries>& rows) {
  if (rows.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& row : rows) {
    sum += row.series.seconds().range_variation_pct();
  }
  return sum / static_cast<double>(rows.size());
}

}  // namespace hpcs::exp
