#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/stats.h"

namespace hpcs::util {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins == 0 ? 1 : bins, 0) {
  // Repair degenerate ranges instead of carrying a zero/negative/NaN
  // bin_width_ into add() (where it would turn into out-of-range bin
  // indices).  Non-finite bounds collapse to the unit range; an empty or
  // inverted range widens to one unit above lo.
  if (!std::isfinite(lo_) || !std::isfinite(hi_)) {
    lo_ = 0.0;
    hi_ = 1.0;
  } else if (!(hi_ > lo_)) {
    hi_ = lo_ + 1.0;
  }
  bin_width_ = (hi_ - lo_) / static_cast<double>(counts_.size());
}

Histogram Histogram::from_samples(std::span<const double> values,
                                  std::size_t bins) {
  double lo = 0.0, hi = 1.0;
  if (!values.empty()) {
    lo = *std::min_element(values.begin(), values.end());
    hi = *std::max_element(values.begin(), values.end());
    if (lo == hi) {
      lo -= 0.5;
      hi += 0.5;
    } else {
      const double margin = (hi - lo) * 0.02;
      lo -= margin;
      hi += margin;
    }
  }
  Histogram h(lo, hi, bins);
  h.add_all(values);
  return h;
}

void Histogram::add(double value) {
  ++total_;
  if (std::isnan(value)) {
    // NaN compares false against both bounds; without this it would reach
    // the float->size_t cast below, which is undefined for NaN.
    ++nan_;
    return;
  }
  if (value < lo_) {
    ++underflow_;
    return;
  }
  if (value >= hi_) {
    ++overflow_;
    return;
  }
  auto bin = static_cast<std::size_t>((value - lo_) / bin_width_);
  bin = std::min(bin, counts_.size() - 1);
  ++counts_[bin];
}

void Histogram::add_all(std::span<const double> values) {
  for (double v : values) add(v);
}

double Histogram::bin_low(std::size_t bin) const {
  return lo_ + bin_width_ * static_cast<double>(bin);
}

double Histogram::bin_high(std::size_t bin) const {
  return lo_ + bin_width_ * static_cast<double>(bin + 1);
}

std::size_t Histogram::mode_bin() const {
  return static_cast<std::size_t>(
      std::max_element(counts_.begin(), counts_.end()) - counts_.begin());
}

std::string Histogram::render_ascii(int width, const std::string& unit) const {
  std::ostringstream out;
  const std::size_t peak = counts_.empty() ? 0 : counts_[mode_bin()];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const int bar =
        peak == 0
            ? 0
            : static_cast<int>(std::lround(static_cast<double>(counts_[i]) /
                                           static_cast<double>(peak) * width));
    out << "[" << format_fixed(bin_low(i), 2) << unit << ", "
        << format_fixed(bin_high(i), 2) << unit << ") " << counts_[i] << "\t"
        << std::string(static_cast<std::size_t>(bar), '#') << "\n";
  }
  if (underflow_ != 0) out << "underflow: " << underflow_ << "\n";
  if (overflow_ != 0) out << "overflow: " << overflow_ << "\n";
  return out.str();
}

std::string Histogram::to_csv() const {
  std::ostringstream out;
  out << "bin_low,bin_high,count\n";
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out << format_fixed(bin_low(i), 6) << "," << format_fixed(bin_high(i), 6)
        << "," << counts_[i] << "\n";
  }
  return out.str();
}

}  // namespace hpcs::util
