// A tiny command-line flag parser for the bench/example binaries.
//
// Supports "--name value", "--name=value", and boolean "--name".  Unknown
// flags are an error so typos in experiment sweeps fail loudly.  The bench
// binaries also tolerate (and ignore) google-benchmark style --benchmark_*
// flags so the whole bench/ directory can be run with one loop.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace hpcs::util {

class CliParser {
 public:
  /// Registers a flag with a help string and a default rendered in --help.
  CliParser& flag(const std::string& name, const std::string& help,
                  const std::string& default_value = "");

  /// Registers a required positional argument (consumed in declaration
  /// order).  Binaries that declare none reject positionals, as before.
  CliParser& positional(const std::string& name, const std::string& help);

  /// Parses argv.  Returns false (after printing usage) on error or --help.
  bool parse(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  /// get/get_* return the parsed value, falling back to the flag's
  /// registered default and only then to `fallback`.
  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Values of the declared positionals, in declaration order.
  const std::vector<std::string>& positionals() const { return positionals_; }

  /// Every registered flag with its effective value: the parsed value when
  /// given, the registered default otherwise.  The bench harness serializes
  /// this map into the telemetry JSON so a run's full configuration rides
  /// with its numbers.
  std::map<std::string, std::string> effective_values() const;

  std::string usage(const std::string& program) const;

 private:
  struct Spec {
    std::string help;
    std::string default_value;
  };
  const std::string* effective(const std::string& name) const;
  std::map<std::string, Spec> specs_;
  std::map<std::string, std::string> values_;
  std::vector<std::pair<std::string, std::string>> positional_specs_;
  std::vector<std::string> positionals_;
};

}  // namespace hpcs::util
