// A tiny command-line flag parser for the bench/example binaries.
//
// Supports "--name value", "--name=value", and boolean "--name".  Unknown
// flags are an error so typos in experiment sweeps fail loudly.  The bench
// binaries also tolerate (and ignore) google-benchmark style --benchmark_*
// flags so the whole bench/ directory can be run with one loop.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace hpcs::util {

class CliParser {
 public:
  /// Registers a flag with a help string and a default rendered in --help.
  CliParser& flag(const std::string& name, const std::string& help,
                  const std::string& default_value = "");

  /// Parses argv.  Returns false (after printing usage) on error or --help.
  bool parse(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  std::string usage(const std::string& program) const;

 private:
  struct Spec {
    std::string help;
    std::string default_value;
  };
  std::map<std::string, Spec> specs_;
  std::map<std::string, std::string> values_;
};

}  // namespace hpcs::util
