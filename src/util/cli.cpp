#include "util/cli.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace hpcs::util {

CliParser& CliParser::flag(const std::string& name, const std::string& help,
                           const std::string& default_value) {
  specs_[name] = Spec{help, default_value};
  return *this;
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage(argv[0]).c_str(), stdout);
      return false;
    }
    if (arg.rfind("--benchmark_", 0) == 0) continue;  // ignore gbench flags
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument: %s\n%s", arg.c_str(),
                   usage(argv[0]).c_str());
      return false;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    if (!specs_.contains(name)) {
      std::fprintf(stderr, "unknown flag: --%s\n%s", name.c_str(),
                   usage(argv[0]).c_str());
      return false;
    }
    if (!has_value) {
      // Consume the next token as a value unless it looks like another flag.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";  // boolean flag
      }
    }
    values_[name] = value;
  }
  return true;
}

bool CliParser::has(const std::string& name) const { return values_.contains(name); }

std::string CliParser::get(const std::string& name,
                           const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t CliParser::get_int(const std::string& name,
                                std::int64_t fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliParser::get_double(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool CliParser::get_bool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::string CliParser::usage(const std::string& program) const {
  std::ostringstream out;
  out << "usage: " << program << " [flags]\n";
  for (const auto& [name, spec] : specs_) {
    out << "  --" << name;
    if (!spec.default_value.empty()) out << " (default: " << spec.default_value << ")";
    out << "\n      " << spec.help << "\n";
  }
  return out.str();
}

}  // namespace hpcs::util
