#include "util/cli.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace hpcs::util {

CliParser& CliParser::flag(const std::string& name, const std::string& help,
                           const std::string& default_value) {
  specs_[name] = Spec{help, default_value};
  return *this;
}

CliParser& CliParser::positional(const std::string& name,
                                 const std::string& help) {
  positional_specs_.emplace_back(name, help);
  return *this;
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage(argv[0]).c_str(), stdout);
      return false;
    }
    if (arg.rfind("--benchmark_", 0) == 0) continue;  // ignore gbench flags
    if (arg.rfind("--", 0) != 0) {
      if (positionals_.size() < positional_specs_.size()) {
        positionals_.push_back(arg);
        continue;
      }
      std::fprintf(stderr, "unexpected positional argument: %s\n%s",
                   arg.c_str(), usage(argv[0]).c_str());
      return false;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    if (!specs_.contains(name)) {
      std::fprintf(stderr, "unknown flag: --%s\n%s", name.c_str(),
                   usage(argv[0]).c_str());
      return false;
    }
    if (!has_value) {
      // Consume the next token as a value unless it looks like another flag.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";  // boolean flag
      }
    }
    values_[name] = value;
  }
  if (positionals_.size() < positional_specs_.size()) {
    std::fprintf(stderr, "missing argument: %s\n%s",
                 positional_specs_[positionals_.size()].first.c_str(),
                 usage(argv[0]).c_str());
    return false;
  }
  return true;
}

bool CliParser::has(const std::string& name) const {
  return values_.contains(name);
}

const std::string* CliParser::effective(const std::string& name) const {
  // Parsed value first, then the registered default (when non-empty), so a
  // flag declared with a default behaves the same whether or not it was
  // passed; the caller's fallback covers unregistered flags.
  if (auto it = values_.find(name); it != values_.end()) return &it->second;
  if (auto it = specs_.find(name);
      it != specs_.end() && !it->second.default_value.empty()) {
    return &it->second.default_value;
  }
  return nullptr;
}

std::string CliParser::get(const std::string& name,
                           const std::string& fallback) const {
  const std::string* v = effective(name);
  return v == nullptr ? fallback : *v;
}

std::int64_t CliParser::get_int(const std::string& name,
                                std::int64_t fallback) const {
  const std::string* v = effective(name);
  if (v == nullptr) return fallback;
  return std::strtoll(v->c_str(), nullptr, 10);
}

double CliParser::get_double(const std::string& name, double fallback) const {
  const std::string* v = effective(name);
  if (v == nullptr) return fallback;
  return std::strtod(v->c_str(), nullptr);
}

bool CliParser::get_bool(const std::string& name, bool fallback) const {
  const std::string* v = effective(name);
  if (v == nullptr) return fallback;
  return *v == "true" || *v == "1" || *v == "yes";
}

std::map<std::string, std::string> CliParser::effective_values() const {
  std::map<std::string, std::string> out;
  for (const auto& [name, spec] : specs_) {
    const auto it = values_.find(name);
    out[name] = it == values_.end() ? spec.default_value : it->second;
  }
  return out;
}

std::string CliParser::usage(const std::string& program) const {
  std::ostringstream out;
  out << "usage: " << program << " [flags]";
  for (const auto& [name, help] : positional_specs_) out << " <" << name << ">";
  out << "\n";
  for (const auto& [name, help] : positional_specs_) {
    out << "  " << name << "\n      " << help << "\n";
  }
  for (const auto& [name, spec] : specs_) {
    out << "  --" << name;
    if (!spec.default_value.empty()) {
      out << " (default: " << spec.default_value << ")";
    }
    out << "\n      " << spec.help << "\n";
  }
  return out.str();
}

}  // namespace hpcs::util
