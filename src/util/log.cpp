#include "util/log.h"

#include <cstdio>

namespace hpcs::util {
namespace {

LogLevel g_level = LogLevel::kWarn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

LogLevel parse_log_level(const std::string& name) {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  return LogLevel::kOff;
}

namespace detail {

void emit(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace detail
}  // namespace hpcs::util
