#include "util/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <unordered_map>

namespace hpcs::util {
namespace {

// One engine is single-threaded, but the parallel experiment runner executes
// many engines at once, and they all share this logger — so the level is
// atomic and the rate-limit map and emission are mutex-guarded.
std::atomic<LogLevel> g_level{LogLevel::kWarn};

std::mutex& log_mutex() {
  static std::mutex m;
  return m;
}

std::unordered_map<std::string, int>& rate_counts() {
  static std::unordered_map<std::string, int> counts;
  return counts;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

bool log_rate_ok(const std::string& key, int limit) {
  const std::lock_guard<std::mutex> lock(log_mutex());
  int& n = rate_counts()[key];
  ++n;
  if (n <= limit) return true;
  if (n == limit + 1) {
    std::fprintf(stderr, "[ERROR] %s: further messages suppressed (%d shown)\n",
                 key.c_str(), limit);
  }
  return false;
}

void reset_log_rate_limits() {
  const std::lock_guard<std::mutex> lock(log_mutex());
  rate_counts().clear();
}

LogLevel parse_log_level(const std::string& name) {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  return LogLevel::kOff;
}

namespace detail {

void emit(LogLevel level, const std::string& message) {
  const std::lock_guard<std::mutex> lock(log_mutex());
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace detail
}  // namespace hpcs::util
