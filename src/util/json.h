// A minimal self-contained JSON value: parse + dump, no external deps.
//
// Exists for the bench telemetry pipeline: the bench harness serializes
// BENCH_<name>.json documents and tools/bench_compare parses them back.
// Objects preserve insertion order so dumped documents diff cleanly; numbers
// remember whether they were integers so seeds and counts round-trip exactly
// (doubles round-trip via shortest-form formatting).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hpcs::util {

class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  using Array = std::vector<Json>;
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}
  Json(bool value) : type_(Type::kBool), bool_(value) {}
  Json(int value) : type_(Type::kInt), int_(value) {}
  Json(std::int64_t value) : type_(Type::kInt), int_(value) {}
  Json(std::uint64_t value);  // also covers std::size_t
  Json(double value) : type_(Type::kDouble), double_(value) {}
  Json(std::string value) : type_(Type::kString), string_(std::move(value)) {}
  Json(const char* value) : type_(Type::kString), string_(value) {}

  static Json array() { Json j; j.type_ = Type::kArray; return j; }
  static Json object() { Json j; j.type_ = Type::kObject; return j; }

  /// Parses a complete JSON document; throws std::runtime_error (with byte
  /// offset) on malformed input or trailing garbage.
  static Json parse(std::string_view text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors throw std::runtime_error on a type mismatch (a number
  /// is accepted by both as_int and as_double).
  bool as_bool() const;
  std::int64_t as_int() const;
  double as_double() const;
  const std::string& as_string() const;

  // -- object access ---------------------------------------------------------
  /// Null when `key` is absent (or this is not an object).
  const Json* find(const std::string& key) const;
  bool contains(const std::string& key) const { return find(key) != nullptr; }
  /// Throws std::runtime_error when `key` is absent.
  const Json& at(const std::string& key) const;
  /// Inserts (or overwrites) `key`; converts a null value to an object.
  void set(const std::string& key, Json value);
  const Object& items() const;

  // -- array access ----------------------------------------------------------
  std::size_t size() const;
  const Json& at(std::size_t index) const;
  /// Appends; converts a null value to an array.
  void push_back(Json value);
  const Array& elements() const;

  /// Serialize.  indent < 0 renders compact one-line JSON; indent >= 0
  /// pretty-prints with that many spaces per level.
  std::string dump(int indent = -1) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Reads an entire file; throws std::runtime_error on I/O failure.
std::string read_file(const std::string& path);

/// Writes `content` to `path` atomically enough for our purposes (truncate +
/// write); throws std::runtime_error on I/O failure.
void write_file(const std::string& path, std::string_view content);

}  // namespace hpcs::util
