#include "util/rng.h"

#include <cmath>

namespace hpcs::util {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) : original_seed_(seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

Rng Rng::substream(std::uint64_t stream_index) const {
  // Mix the stream index through SplitMix64 so consecutive indices land far
  // apart in seed space.
  SplitMix64 sm(original_seed_ ^ (0xa0761d6478bd642fULL * (stream_index + 1)));
  return Rng(sm.next());
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_u64(std::uint64_t lo, std::uint64_t hi) {
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) return next();  // full 64-bit range
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (~span + 1) % span;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return lo + r % span;
  }
}

double Rng::exponential(double mean) {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

bool Rng::chance(double p) { return uniform() < p; }

double Rng::lognormal(double log_mean, double log_sigma) {
  return std::exp(normal(log_mean, log_sigma));
}

}  // namespace hpcs::util
