#include "util/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace hpcs::util {
namespace {

[[noreturn]] void fail(const char* what, std::size_t offset) {
  throw std::runtime_error("json: " + std::string(what) + " at offset " +
                           std::to_string(offset));
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage", pos_);
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input", pos_);
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character", pos_);
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Json parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep", pos_);
    skip_ws();
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal", pos_);
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal", pos_);
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal", pos_);
        return Json(nullptr);
      default: return parse_number();
    }
  }

  Json parse_object(int depth) {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') { ++pos_; return obj; }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(key, parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return obj;
      if (c != ',') fail("expected ',' or '}'", pos_ - 1);
    }
  }

  Json parse_array(int depth) {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') { ++pos_; return arr; }
    while (true) {
      arr.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return arr;
      if (c != ',') fail("expected ',' or ']'", pos_ - 1);
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("control char in string", pos_ - 1);
      }
      if (c != '\\') { out.push_back(c); continue; }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_utf8(out, parse_hex4()); break;
        default: fail("bad escape", pos_ - 1);
      }
    }
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos_;
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("bad \\u escape", pos_ - 1);
      }
    }
    return value;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    // Surrogate pairs are not recombined — the harness never emits them.
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') { ++pos_; continue; }
      if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
        continue;
      }
      break;
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") fail("bad number", start);
    if (!is_double) {
      std::int64_t value = 0;
      const auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec == std::errc() && ptr == token.data() + token.size()) {
        return Json(value);
      }
      // Integer overflow: fall through and keep it as a double.
    }
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc() || ptr != token.data() + token.size()) {
      fail("bad number", start);
    }
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_double(std::string& out, double value) {
  if (!std::isfinite(value)) {
    // JSON has no NaN/Inf; null is the conventional stand-in.
    out += "null";
    return;
  }
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  out.append(buf, ptr);
  // Keep a double marker so the value re-parses as a double.
  const std::string_view written(buf, static_cast<std::size_t>(ptr - buf));
  if (written.find('.') == std::string_view::npos &&
      written.find('e') == std::string_view::npos) {
    out += ".0";
  }
}

void append_newline_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

}  // namespace

Json::Json(std::uint64_t value) {
  if (value <= static_cast<std::uint64_t>(
                   std::numeric_limits<std::int64_t>::max())) {
    type_ = Type::kInt;
    int_ = static_cast<std::int64_t>(value);
  } else {
    type_ = Type::kDouble;
    double_ = static_cast<double>(value);
  }
}

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

bool Json::as_bool() const {
  if (type_ != Type::kBool) throw std::runtime_error("json: not a bool");
  return bool_;
}

std::int64_t Json::as_int() const {
  if (type_ == Type::kInt) return int_;
  if (type_ == Type::kDouble) return static_cast<std::int64_t>(double_);
  throw std::runtime_error("json: not a number");
}

double Json::as_double() const {
  if (type_ == Type::kDouble) return double_;
  if (type_ == Type::kInt) return static_cast<double>(int_);
  throw std::runtime_error("json: not a number");
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) throw std::runtime_error("json: not a string");
  return string_;
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  const Json* value = find(key);
  if (value == nullptr) {
    throw std::runtime_error("json: missing key '" + key + "'");
  }
  return *value;
}

void Json::set(const std::string& key, Json value) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) throw std::runtime_error("json: not an object");
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object_.emplace_back(key, std::move(value));
}

const Json::Object& Json::items() const {
  if (type_ != Type::kObject) throw std::runtime_error("json: not an object");
  return object_;
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  return 0;
}

const Json& Json::at(std::size_t index) const {
  if (type_ != Type::kArray) throw std::runtime_error("json: not an array");
  if (index >= array_.size()) {
    throw std::runtime_error("json: index out of range");
  }
  return array_[index];
}

void Json::push_back(Json value) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) throw std::runtime_error("json: not an array");
  array_.push_back(std::move(value));
}

const Json::Array& Json::elements() const {
  if (type_ != Type::kArray) throw std::runtime_error("json: not an array");
  return array_;
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  if (indent >= 0) out.push_back('\n');
  return out;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull: out += "null"; return;
    case Type::kBool: out += bool_ ? "true" : "false"; return;
    case Type::kInt: out += std::to_string(int_); return;
    case Type::kDouble: append_double(out, double_); return;
    case Type::kString: append_escaped(out, string_); return;
    case Type::kArray: {
      if (array_.empty()) { out += "[]"; return; }
      out.push_back('[');
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out.push_back(',');
        append_newline_indent(out, indent, depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out.push_back(']');
      return;
    }
    case Type::kObject: {
      if (object_.empty()) { out += "{}"; return; }
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out.push_back(',');
        first = false;
        append_newline_indent(out, indent, depth + 1);
        append_escaped(out, key);
        out.push_back(':');
        if (indent >= 0) out.push_back(' ');
        value.dump_to(out, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out.push_back('}');
      return;
    }
  }
}

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw std::runtime_error("cannot open " + path);
  std::string out;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) throw std::runtime_error("error reading " + path);
  return out;
}

void write_file(const std::string& path, std::string_view content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) throw std::runtime_error("cannot write " + path);
  const std::size_t n = std::fwrite(content.data(), 1, content.size(), f);
  const bool bad = n != content.size() || std::fclose(f) != 0;
  if (bad) throw std::runtime_error("error writing " + path);
}

}  // namespace hpcs::util
