// Virtual-time primitives for the discrete-event simulation.
//
// All simulated time is kept in integer nanoseconds so that event ordering is
// exact and runs are bit-for-bit reproducible across platforms.  Helpers below
// convert to/from human units; seconds() returns double and is only used for
// reporting, never for simulation decisions.
#pragma once

#include <cstdint>

namespace hpcs {

/// A point in simulated time, in nanoseconds since simulation start.
using SimTime = std::uint64_t;

/// A span of simulated time, in nanoseconds.
using SimDuration = std::uint64_t;

/// Abstract "work units" a task must complete.  One unit corresponds to one
/// nanosecond of execution at full (warm-cache, un-contended) speed.
using Work = std::uint64_t;

inline constexpr SimDuration kNanosecond = 1;
inline constexpr SimDuration kMicrosecond = 1000 * kNanosecond;
inline constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
inline constexpr SimDuration kSecond = 1000 * kMillisecond;

constexpr SimDuration nanoseconds(std::uint64_t n) { return n; }
constexpr SimDuration microseconds(std::uint64_t n) { return n * kMicrosecond; }
constexpr SimDuration milliseconds(std::uint64_t n) { return n * kMillisecond; }
constexpr SimDuration seconds(std::uint64_t n) { return n * kSecond; }

/// Convert a duration to (floating) seconds for reporting.
constexpr double to_seconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

/// Convert a duration to (floating) milliseconds for reporting.
constexpr double to_milliseconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

/// Convert (floating) seconds to a duration, used by workload calibration.
constexpr SimDuration from_seconds(double s) {
  return static_cast<SimDuration>(s * static_cast<double>(kSecond));
}

}  // namespace hpcs
