#include "util/table.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace hpcs::util {
namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument(
        "Table::add_row: expected " + std::to_string(headers_.size()) +
        " cells, got " + std::to_string(cells.size()));
  }
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c] << std::string(widths[c] - row[c].size(), ' ');
      out << (c + 1 == row.size() ? "\n" : "  ");
    }
  };
  emit_row(headers_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c + 1 == widths.size() ? 0 : 2);
  }
  out << std::string(rule, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << csv_escape(row[c]) << (c + 1 == row.size() ? "\n" : ",");
    }
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

}  // namespace hpcs::util
