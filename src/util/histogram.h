// Fixed-bin histogram plus an ASCII renderer, used to reproduce the paper's
// execution-time-distribution figures (Fig. 2 and Fig. 4) on a terminal.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace hpcs::util {

class Histogram {
 public:
  /// Bins [lo, hi) split into `bins` equal intervals.  Values outside the
  /// range are counted in underflow/overflow.  Degenerate arguments are
  /// repaired rather than trusted: bins == 0 becomes one bin, non-finite
  /// bounds collapse to [0, 1), and hi <= lo widens to [lo, lo + 1) — so
  /// bin_width_ is always finite and positive.
  Histogram(double lo, double hi, std::size_t bins);

  /// Convenience: derive the range from the data with a small margin.
  static Histogram from_samples(std::span<const double> values,
                                std::size_t bins);

  void add(double value);
  void add_all(std::span<const double> values);

  std::size_t bin_count() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  /// NaN samples: counted here (and in total()) instead of hitting the
  /// undefined float-to-index cast they used to reach.
  std::size_t nan_count() const { return nan_; }
  std::size_t total() const { return total_; }
  double bin_low(std::size_t bin) const;
  double bin_high(std::size_t bin) const;
  double lo() const { return lo_; }
  double hi() const { return hi_; }

  /// Index of the most populated bin (the mode).
  std::size_t mode_bin() const;

  /// Render as rows of "[lo, hi)  count  ####" bars, `width` chars max bar.
  /// `unit` is appended to the bounds (e.g. "s").
  std::string render_ascii(int width = 50, const std::string& unit = "") const;

  /// Dump "bin_low,bin_high,count" CSV rows (with header).
  std::string to_csv() const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t nan_ = 0;
  std::size_t total_ = 0;
};

}  // namespace hpcs::util
