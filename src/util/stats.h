// Statistics helpers used by the perf subsystem and the experiment harness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace hpcs::util {

/// Streaming min/max/mean/variance accumulator (Welford's algorithm).
/// Used wherever per-run samples are folded into summary rows.
class OnlineStats {
 public:
  void add(double x);
  void merge(const OnlineStats& other);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double min() const {
    return n_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  double max() const {
    return n_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }
  double mean() const {
    return n_ ? mean_ : std::numeric_limits<double>::quiet_NaN();
  }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  /// The paper's "Var. %": (max - min) / min * 100.
  double range_variation_pct() const;
  /// Coefficient of variation in percent: stddev / mean * 100.
  double cv_pct() const;
  /// Half-width of the 95% confidence interval of the mean; 0 for n < 2.
  double ci95_half_width() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Full-sample container when per-run values must be kept (distributions,
/// percentiles, correlations).
class Samples {
 public:
  void add(double x) { values_.push_back(x); }
  void reserve(std::size_t n) { values_.reserve(n); }

  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  std::span<const double> values() const { return values_; }

  double min() const;
  double max() const;
  double mean() const;
  double stddev() const;
  /// Linear-interpolated percentile, p in [0, 100].
  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  double range_variation_pct() const;

  OnlineStats summarize() const;

 private:
  std::vector<double> values_;
};

/// Half-width of the 95% confidence interval of a mean estimated from
/// `count` samples with sample standard deviation `stddev`:
/// t_{0.975, count-1} * stddev / sqrt(count).  Uses a Student-t table for
/// small n and the normal 1.96 beyond it.  Returns 0 for count < 2.
double ci95_half_width(std::size_t count, double stddev);

/// Bounded slowdown of one batch job (Feitelson): (wait + run) /
/// max(run, tau), floored at 1.  `tau` keeps near-zero-length jobs from
/// dominating the metric.  All arguments in the same unit (seconds).
/// Degenerate inputs (run and tau both zero — an instantaneous job with no
/// threshold) return the floor, 1, never NaN.
double bounded_slowdown(double wait, double run, double tau);

/// Jain's fairness index of a series: (sum x)^2 / (n * sum x^2), in
/// (0, 1]; 1 means all values equal, 1/n means one value dominates.
/// Degenerate series are trivially fair: empty and all-zero both return 1.
double jains_fairness_index(std::span<const double> values);

/// Pearson correlation coefficient of two equally sized series.
/// Returns nullopt when either series is constant or sizes differ.
std::optional<double> pearson_correlation(std::span<const double> x,
                                          std::span<const double> y);

/// Ordinary least squares fit y = a + b*x; returns {a, b}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
};
std::optional<LinearFit> linear_fit(std::span<const double> x,
                                    std::span<const double> y);

/// Format a double with fixed decimals (reporting helper).
std::string format_fixed(double value, int decimals);

}  // namespace hpcs::util
