// Plain-text table renderer used by the benchmark harnesses to print rows in
// the same layout as the paper's Tables I and II, plus a CSV emitter.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hpcs::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; it must have as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  std::size_t row_count() const { return rows_.size(); }

  /// Monospace rendering with column alignment and a header rule.
  std::string render() const;

  /// Same data as CSV (header + rows), cells quoted when they hold commas.
  std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hpcs::util
