// Deterministic pseudo-random number generation for the simulator.
//
// We use xoshiro256** seeded via SplitMix64: fast, high quality, and —
// unlike std::mt19937 with std::*_distribution — completely specified, so a
// given seed reproduces the same run on every standard library.  Distribution
// sampling below is hand-rolled for the same reason.
#pragma once

#include <array>
#include <cstdint>

namespace hpcs::util {

/// SplitMix64: used to expand a 64-bit seed into xoshiro state, and handy as
/// a tiny stateless hash for deriving per-entity substreams.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna).  All simulator randomness flows
/// through instances of this generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from SplitMix64(seed).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Derive an independent substream, e.g. one per task or per run.  The
  /// stream index is hashed into the seed so substreams do not overlap in
  /// practice.
  Rng substream(std::uint64_t stream_index) const;

  std::uint64_t next();
  result_type operator()() { return next(); }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive), via unbiased rejection.
  std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi);
  /// Exponential with the given mean (inter-arrival times of Poisson noise).
  double exponential(double mean);
  /// Normal via Box–Muller (no state caching, to stay reproducible).
  double normal(double mean, double stddev);
  /// Bernoulli trial.
  bool chance(double p);
  /// Log-normal parameterised by the mean/sigma of the underlying normal.
  double lognormal(double log_mean, double log_sigma);

  std::uint64_t original_seed() const { return original_seed_; }

 private:
  std::array<std::uint64_t, 4> s_{};
  std::uint64_t original_seed_ = 0;
};

}  // namespace hpcs::util
