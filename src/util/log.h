// Minimal leveled logger.  The simulator is silent by default; tests and the
// debug CLI flip the level up.  One engine is single-threaded (determinism is
// the whole point), but the parallel experiment runner executes many engines
// concurrently, so the level is atomic and emission/rate-limit state is
// mutex-guarded.
#pragma once

#include <sstream>
#include <string>

namespace hpcs::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log threshold; messages below it are discarded.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Parse "trace"/"debug"/"info"/"warn"/"error"/"off"; returns kOff on junk.
LogLevel parse_log_level(const std::string& name);

/// Per-key message budget for HPCS_ERROR_RL.  Returns true while `key` still
/// has budget; on the call that exhausts it a single "further messages
/// suppressed" notice is emitted, and every later call returns false.  Keeps
/// a fault storm (e.g. an invariant violated on every event) from flooding
/// test output while still surfacing the first occurrences.
bool log_rate_ok(const std::string& key, int limit = 10);

/// Forget all suppression state (tests use this between cases).
void reset_log_rate_limits();

namespace detail {
void emit(LogLevel level, const std::string& message);
}

}  // namespace hpcs::util

#define HPCS_LOG(level, expr)                                       \
  do {                                                              \
    if ((level) >= ::hpcs::util::log_level()) {                     \
      std::ostringstream hpcs_log_os_;                              \
      hpcs_log_os_ << expr;                                         \
      ::hpcs::util::detail::emit((level), hpcs_log_os_.str());      \
    }                                                               \
  } while (0)

#define HPCS_TRACE(expr) HPCS_LOG(::hpcs::util::LogLevel::kTrace, expr)
#define HPCS_DEBUG(expr) HPCS_LOG(::hpcs::util::LogLevel::kDebug, expr)
#define HPCS_INFO(expr) HPCS_LOG(::hpcs::util::LogLevel::kInfo, expr)
#define HPCS_WARN(expr) HPCS_LOG(::hpcs::util::LogLevel::kWarn, expr)
#define HPCS_ERROR(expr) HPCS_LOG(::hpcs::util::LogLevel::kError, expr)

/// Rate-limited error: at most `log_rate_ok`'s budget of messages per `key`
/// for the process lifetime.  Diagnostics that can repeat per-event (invariant
/// checker, fault injector) must use this instead of HPCS_ERROR.
#define HPCS_ERROR_RL(key, expr)                                    \
  do {                                                              \
    if (::hpcs::util::LogLevel::kError >= ::hpcs::util::log_level() && \
        ::hpcs::util::log_rate_ok((key))) {                         \
      std::ostringstream hpcs_log_os_;                              \
      hpcs_log_os_ << expr;                                         \
      ::hpcs::util::detail::emit(::hpcs::util::LogLevel::kError,    \
                                 hpcs_log_os_.str());               \
    }                                                               \
  } while (0)
