// Minimal leveled logger.  The simulator is silent by default; tests and the
// debug CLI flip the level up.  Not thread-safe by design — the simulation is
// single-threaded (determinism is the whole point).
#pragma once

#include <sstream>
#include <string>

namespace hpcs::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log threshold; messages below it are discarded.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Parse "trace"/"debug"/"info"/"warn"/"error"/"off"; returns kOff on junk.
LogLevel parse_log_level(const std::string& name);

namespace detail {
void emit(LogLevel level, const std::string& message);
}

}  // namespace hpcs::util

#define HPCS_LOG(level, expr)                                       \
  do {                                                              \
    if ((level) >= ::hpcs::util::log_level()) {                     \
      std::ostringstream hpcs_log_os_;                              \
      hpcs_log_os_ << expr;                                         \
      ::hpcs::util::detail::emit((level), hpcs_log_os_.str());      \
    }                                                               \
  } while (0)

#define HPCS_TRACE(expr) HPCS_LOG(::hpcs::util::LogLevel::kTrace, expr)
#define HPCS_DEBUG(expr) HPCS_LOG(::hpcs::util::LogLevel::kDebug, expr)
#define HPCS_INFO(expr) HPCS_LOG(::hpcs::util::LogLevel::kInfo, expr)
#define HPCS_WARN(expr) HPCS_LOG(::hpcs::util::LogLevel::kWarn, expr)
#define HPCS_ERROR(expr) HPCS_LOG(::hpcs::util::LogLevel::kError, expr)
