#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace hpcs::util {

void OnlineStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(n_ + other.n_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / total;
  mean_ += delta * static_cast<double>(other.n_) / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::range_variation_pct() const {
  if (n_ == 0 || min_ == 0.0) return 0.0;
  return (max_ - min_) / min_ * 100.0;
}

double OnlineStats::cv_pct() const {
  if (n_ == 0 || mean_ == 0.0) return 0.0;
  return stddev() / mean_ * 100.0;
}

double OnlineStats::ci95_half_width() const {
  return util::ci95_half_width(n_, stddev());
}

double Samples::min() const {
  return empty() ? std::numeric_limits<double>::quiet_NaN()
                 : *std::min_element(values_.begin(), values_.end());
}

double Samples::max() const {
  return empty() ? std::numeric_limits<double>::quiet_NaN()
                 : *std::max_element(values_.begin(), values_.end());
}

double Samples::mean() const {
  if (empty()) return std::numeric_limits<double>::quiet_NaN();
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double Samples::stddev() const { return summarize().stddev(); }

double Samples::percentile(double p) const {
  if (empty()) return std::numeric_limits<double>::quiet_NaN();
  std::vector<double> sorted(values_);
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double Samples::range_variation_pct() const {
  return summarize().range_variation_pct();
}

OnlineStats Samples::summarize() const {
  OnlineStats s;
  for (double v : values_) s.add(v);
  return s;
}

double ci95_half_width(std::size_t count, double stddev) {
  if (count < 2) return 0.0;
  // Two-sided 97.5% Student-t quantiles for df = 1..30 from the table; a
  // Cornish–Fisher expansion in 1/df beyond.  The expansion continues the
  // table smoothly (df=30: 2.0421 vs tabulated 2.042, df=40: 2.0210 vs
  // 2.021, df=120: 1.9799 vs 1.980) and decays monotonically to the normal
  // limit 1.960 — no jump at the table edge, unlike the old hard switch to
  // 1.96 which understated 31..~100-sample intervals by up to 4%.
  static constexpr double kT975[] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  const std::size_t df = count - 1;
  double t;
  if (df <= 30) {
    t = kT975[df - 1];
  } else {
    const double inv = 1.0 / static_cast<double>(df);
    t = 1.959964 + (2.3722 + 2.8224 * inv) * inv;
  }
  return t * stddev / std::sqrt(static_cast<double>(count));
}

double bounded_slowdown(double wait, double run, double tau) {
  const double denom = std::max(run, tau);
  if (!(denom > 0.0)) return 1.0;  // zero-runtime job, zero tau: the floor
  return std::max(1.0, (wait + run) / denom);
}

double jains_fairness_index(std::span<const double> values) {
  if (values.empty()) return 1.0;  // no jobs: nothing is unfair
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : values) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;  // all zero: trivially fair
  return sum * sum / (static_cast<double>(values.size()) * sum_sq);
}

std::optional<double> pearson_correlation(std::span<const double> x,
                                          std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 2) return std::nullopt;
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n, my = sy / n;
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx, dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return std::nullopt;
  return sxy / std::sqrt(sxx * syy);
}

std::optional<LinearFit> linear_fit(std::span<const double> x,
                                    std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 2) return std::nullopt;
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n, my = sy / n;
  double sxy = 0, sxx = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
  }
  if (sxx == 0.0) return std::nullopt;
  const double slope = sxy / sxx;
  return LinearFit{my - slope * mx, slope};
}

std::string format_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

}  // namespace hpcs::util
