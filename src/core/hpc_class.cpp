#include "core/hpc_class.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "kernel/kernel.h"

namespace hpcs::hpl {

using kernel::Task;

void HpcClass::CpuQ::push_back(Task& t) {
  t.hpc_prev = tail;
  t.hpc_next = nullptr;
  (tail != nullptr ? tail->hpc_next : head) = &t;
  tail = &t;
}

void HpcClass::CpuQ::push_front(Task& t) {
  t.hpc_prev = nullptr;
  t.hpc_next = head;
  (head != nullptr ? head->hpc_prev : tail) = &t;
  head = &t;
}

void HpcClass::CpuQ::unlink(Task& t) {
  (t.hpc_prev != nullptr ? t.hpc_prev->hpc_next : head) = t.hpc_next;
  (t.hpc_next != nullptr ? t.hpc_next->hpc_prev : tail) = t.hpc_prev;
  t.hpc_prev = t.hpc_next = nullptr;
}

HpcClass::HpcClass(kernel::Kernel& kernel, HpcClassOptions options)
    : SchedClass(kernel), options_(options) {
  const int ncpu = kernel.topology().num_cpus();
  queues_.reserve(static_cast<std::size_t>(ncpu));
  for (int i = 0; i < ncpu; ++i) queues_.push_back(std::make_unique<CpuQ>());
}

HpcClass::~HpcClass() = default;

void HpcClass::enqueue(hw::CpuId cpu, Task& t, bool wakeup) {
  (void)wakeup;
  CpuQ& cq = q(cpu);
  assert(!t.hpc_queued);
  cq.push_back(t);
  t.hpc_queued = true;
  cq.nr += 1;
  total_runnable_ += 1;
  if (t.rr_left == 0) t.rr_left = kernel_.config().hpc.rr_quantum;
}

void HpcClass::dequeue(hw::CpuId cpu, Task& t, bool sleeping) {
  (void)sleeping;
  CpuQ& cq = q(cpu);
  if (t.hpc_queued) {
    cq.unlink(t);
    t.hpc_queued = false;
  } else if (cq.curr != &t) {
    // Neither queued nor running here: a double dequeue would silently
    // underflow nr/total_runnable_ and poison fork placement.
    throw std::logic_error("HpcClass::dequeue: task neither queued nor curr");
  }
  cq.nr -= 1;
  total_runnable_ -= 1;
}

Task* HpcClass::pick_next(hw::CpuId cpu) {
  CpuQ& cq = q(cpu);
  Task* t = cq.head;
  if (t == nullptr) return nullptr;
  cq.unlink(*t);
  t->hpc_queued = false;
  return t;
}

void HpcClass::put_prev(hw::CpuId cpu, Task& t) {
  CpuQ& cq = q(cpu);
  assert(!t.hpc_queued);
  // Round-robin: a task whose quantum expired (or that yielded) goes to the
  // tail; a preempted task resumes from the head.
  if (t.requeue_at_tail) {
    cq.push_back(t);
    t.requeue_at_tail = false;
  } else {
    cq.push_front(t);
  }
  t.hpc_queued = true;
}

void HpcClass::set_curr(hw::CpuId cpu, Task& t) { q(cpu).curr = &t; }

void HpcClass::clear_curr(hw::CpuId cpu, Task& t) {
  CpuQ& cq = q(cpu);
  if (cq.curr == &t) cq.curr = nullptr;
}

void HpcClass::task_tick(hw::CpuId cpu, Task& t) {
  CpuQ& cq = q(cpu);
  if (cq.queue_empty()) return;  // alone on the CPU: quantum is moot
  const SimDuration tick = kernel_.config().machine.tick_period;
  t.rr_left = t.rr_left > tick ? t.rr_left - tick : 0;
  if (t.rr_left == 0) {
    t.rr_left = kernel_.config().hpc.rr_quantum;
    t.requeue_at_tail = true;
    kernel_.resched_cpu(cpu);
  }
}

void HpcClass::yield_task(hw::CpuId cpu, Task& t) {
  (void)cpu;
  t.requeue_at_tail = true;
}

bool HpcClass::wakeup_preempt(hw::CpuId cpu, Task& curr, Task& waking) {
  // HPC tasks never preempt each other on wakeup: with one task per
  // hardware thread this path only triggers around launch/teardown, where
  // FIFO order is fine and cheaper.
  (void)cpu;
  (void)curr;
  (void)waking;
  return false;
}

hw::CpuId HpcClass::place_fork(const Task& t) const {
  const auto& topo = kernel_.topology();
  auto allowed = [&](hw::CpuId c) {
    return kernel::mask_has(t.affinity, c) && kernel_.cpu_is_online(c);
  };

  switch (options_.placement) {
    case Placement::kParentCpu: {
      if (t.cpu != hw::kInvalidCpu && allowed(t.cpu)) return t.cpu;
      for (hw::CpuId c = 0; c < topo.num_cpus(); ++c) {
        if (allowed(c)) return c;
      }
      return 0;
    }
    case Placement::kLinear: {
      hw::CpuId best = hw::kInvalidCpu;
      for (hw::CpuId c = 0; c < topo.num_cpus(); ++c) {
        if (!allowed(c)) continue;
        if (best == hw::kInvalidCpu || q(c).nr < q(best).nr) best = c;
      }
      return best == hw::kInvalidCpu ? 0 : best;
    }
    case Placement::kTopologyAware:
      break;
  }

  // The HPL algorithm: balance between chips, then cores within the chosen
  // chip, then hardware threads within the chosen core.
  auto hpc_on_cpu = [&](hw::CpuId c) { return q(c).nr; };
  auto sum_over = [&](const std::vector<hw::CpuId>& cpus) {
    int n = 0;
    for (hw::CpuId c : cpus) n += hpc_on_cpu(c);
    return n;
  };
  auto any_allowed = [&](const std::vector<hw::CpuId>& cpus) {
    return std::any_of(cpus.begin(), cpus.end(), allowed);
  };

  int best_chip = -1, best_chip_n = 0;
  for (int chip = 0; chip < topo.num_chips(); ++chip) {
    if (!any_allowed(topo.cpus_of_chip(chip))) continue;
    const int n = sum_over(topo.cpus_of_chip(chip));
    if (best_chip < 0 || n < best_chip_n) {
      best_chip = chip;
      best_chip_n = n;
    }
  }
  if (best_chip < 0) return t.cpu == hw::kInvalidCpu ? 0 : t.cpu;

  int best_core = -1, best_core_n = 0;
  for (int core = 0; core < topo.num_cores(); ++core) {
    const auto& cpus = topo.cpus_of_core(core);
    if (topo.chip_of(cpus.front()) != best_chip || !any_allowed(cpus)) continue;
    const int n = sum_over(cpus);
    if (best_core < 0 || n < best_core_n) {
      best_core = core;
      best_core_n = n;
    }
  }

  hw::CpuId best = hw::kInvalidCpu;
  int best_n = 0;
  for (hw::CpuId c : topo.cpus_of_core(best_core)) {
    if (!allowed(c)) continue;
    if (best == hw::kInvalidCpu || hpc_on_cpu(c) < best_n) {
      best = c;
      best_n = hpc_on_cpu(c);
    }
  }
  return best == hw::kInvalidCpu ? 0 : best;
}

hw::CpuId HpcClass::select_cpu(Task& t, bool is_fork) {
  if (is_fork) return place_fork(t);
  // Wakeup: no balancing, stay where we are ("stay out of the way") — unless
  // our CPU went offline while we slept, in which case re-place as at fork.
  if (t.cpu != hw::kInvalidCpu && kernel::mask_has(t.affinity, t.cpu) &&
      kernel_.cpu_is_online(t.cpu)) {
    return t.cpu;
  }
  for (hw::CpuId c = 0; c < kernel_.topology().num_cpus(); ++c) {
    if (kernel::mask_has(t.affinity, c) && kernel_.cpu_is_online(c)) return c;
  }
  return 0;
}

int HpcClass::nr_runnable(hw::CpuId cpu) const { return q(cpu).nr; }

int HpcClass::total_runnable() const { return total_runnable_; }

void HpcClass::audit_cpu(hw::CpuId cpu, const Task* rq_current,
                         std::vector<std::string>& errors) const {
  const CpuQ& cq = q(cpu);
  auto fail = [&](const std::string& msg) {
    errors.push_back("hpc cpu" + std::to_string(cpu) + ": " + msg);
  };
  int count = 0;
  const Task* prev = nullptr;
  for (const Task* t = cq.head; t != nullptr; t = t->hpc_next) {
    ++count;
    if (t->hpc_prev != prev) {
      fail("task " + t->name + " has a broken hpc_prev back-link");
      break;  // list structure is unreliable past this point
    }
    if (!t->hpc_queued) {
      fail("queued task " + t->name + " has hpc_queued=false");
    }
    if (t->state != kernel::TaskState::kRunnable) {
      fail("queued task " + t->name + " in state " +
           kernel::task_state_name(t->state));
    }
    if (t->cpu != cpu) {
      fail("queued task " + t->name + " claims cpu " + std::to_string(t->cpu));
    }
    prev = t;
    if (count > total_runnable_ + 1) {
      fail("runqueue list does not terminate (cycle?)");
      break;
    }
  }
  if (prev != cq.tail && count <= total_runnable_ + 1) {
    fail("tail pointer does not match the last list node");
  }
  int nr = count;
  if (cq.curr != nullptr) {
    nr += 1;
    if (rq_current != cq.curr) {
      fail("class curr " + cq.curr->name + " is not the CPU's current task");
    }
  }
  if (nr != cq.nr) {
    fail("nr=" + std::to_string(cq.nr) + " but recount=" + std::to_string(nr));
  }
}

}  // namespace hpcs::hpl
