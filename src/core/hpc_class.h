// The paper's contribution: the HPC scheduling class of HPL.
//
// Slots between the real-time and CFS classes, so HPC tasks always beat
// user/kernel daemons but never critical RT kthreads.  Design decisions
// straight from Section IV:
//   * a plain round-robin runqueue — HPC systems run at most one task per
//     hardware thread, so nothing fancier is warranted;
//   * load balancing happens ONLY at fork(), and is topology aware: tasks
//     are spread across chips first, then cores, and hardware threads are
//     used only once every core already has a task (POWER6 cores share no
//     cache, so spreading maximises cache and pipeline capacity);
//   * once the application runs, the scheduler "stays out of the way": no
//     wakeup balancing, no periodic balancing, no idle pulls.
#pragma once

#include <memory>
#include <vector>

#include "kernel/sched_class.h"

namespace hpcs::hpl {

/// Fork-time placement policy (the topology-aware strategy is the paper's;
/// the others exist for the ablation benchmarks).
enum class Placement {
  kTopologyAware,  // chips -> cores -> SMT threads (the HPL algorithm)
  kLinear,         // first free CPU by id (naive)
  kParentCpu,      // no balancing at all: children stay with the parent
};

struct HpcClassOptions {
  Placement placement = Placement::kTopologyAware;
};

class HpcClass : public kernel::SchedClass {
 public:
  HpcClass(kernel::Kernel& kernel, HpcClassOptions options);
  ~HpcClass() override;

  const char* name() const override { return "hpc"; }
  bool owns(kernel::Policy policy) const override {
    return policy == kernel::Policy::kHpc;
  }

  void enqueue(hw::CpuId cpu, kernel::Task& t, bool wakeup) override;
  void dequeue(hw::CpuId cpu, kernel::Task& t, bool sleeping) override;
  kernel::Task* pick_next(hw::CpuId cpu) override;
  void put_prev(hw::CpuId cpu, kernel::Task& t) override;
  void set_curr(hw::CpuId cpu, kernel::Task& t) override;
  void clear_curr(hw::CpuId cpu, kernel::Task& t) override;
  void task_tick(hw::CpuId cpu, kernel::Task& t) override;
  void yield_task(hw::CpuId cpu, kernel::Task& t) override;
  bool wakeup_preempt(hw::CpuId cpu, kernel::Task& curr,
                      kernel::Task& waking) override;
  hw::CpuId select_cpu(kernel::Task& t, bool is_fork) override;
  // No tick_balance / newidle_balance overrides: the HPC class never
  // balances at run time, by design.
  int nr_runnable(hw::CpuId cpu) const override;
  int total_runnable() const override;
  void audit_cpu(hw::CpuId cpu, const kernel::Task* rq_current,
                 std::vector<std::string>& errors) const override;

  const HpcClassOptions& options() const { return options_; }

  /// The fork placement algorithm, exposed for tests: returns the CPU a new
  /// HPC task should start on given current per-CPU HPC occupancy.
  hw::CpuId place_fork(const kernel::Task& t) const;

 private:
  /// Round-robin runqueue as an intrusive doubly-linked list through the
  /// tasks' hpc_prev/hpc_next fields: push/pop/remove are O(1) and never
  /// allocate (dequeue used to std::find over a std::deque).
  struct CpuQ {
    kernel::Task* head = nullptr;
    kernel::Task* tail = nullptr;
    kernel::Task* curr = nullptr;
    int nr = 0;  // queued + running

    bool queue_empty() const { return head == nullptr; }
    void push_back(kernel::Task& t);
    void push_front(kernel::Task& t);
    void unlink(kernel::Task& t);
  };

  CpuQ& q(hw::CpuId cpu) { return *queues_[static_cast<std::size_t>(cpu)]; }
  const CpuQ& q(hw::CpuId cpu) const {
    return *queues_[static_cast<std::size_t>(cpu)];
  }

  HpcClassOptions options_;
  std::vector<std::unique_ptr<CpuQ>> queues_;
  int total_runnable_ = 0;
};

}  // namespace hpcs::hpl
