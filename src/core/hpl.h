// HPL installation: turns a stock kernel model into High Performance Linux.
//
// install() registers the HPC scheduling class between RT and CFS and sets
// the global balancing policy of Section V: while at least one HPC task is
// runnable anywhere, *no* scheduling class performs load balancing (not
// even for CFS daemons — the paper found even their balancing adds direct
// overhead).  When no HPC work is runnable (before launch / after exit) the
// standard balancers operate normally, which is why chrt/perf still pick up
// a few migrations in Table Ib.
#pragma once

#include "core/hpc_class.h"
#include "kernel/kernel.h"

namespace hpcs::hpl {

struct HplOptions {
  HpcClassOptions hpc;
  /// If false, balancing is suppressed permanently, not just while HPC
  /// tasks are runnable (ablation knob; the paper's HPL uses true).
  bool allow_balancing_when_hpc_idle = true;
};

/// Install HPL into `kernel`.  Must be called before Kernel::boot().
/// Returns the HPC class (owned by the kernel) for queries and tests.
HpcClass& install(kernel::Kernel& kernel, HplOptions options = {});

}  // namespace hpcs::hpl
