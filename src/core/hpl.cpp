#include "core/hpl.h"

#include <memory>

namespace hpcs::hpl {

HpcClass& install(kernel::Kernel& kernel, HplOptions options) {
  auto cls = std::make_unique<HpcClass>(kernel, options.hpc);
  HpcClass& ref = *cls;
  kernel.register_class_after_rt(std::move(cls));
  if (options.allow_balancing_when_hpc_idle) {
    kernel.set_balance_inhibitor([&ref] { return ref.total_runnable() > 0; });
  } else {
    kernel.set_balance_inhibitor([] { return true; });
  }
  return ref;
}

}  // namespace hpcs::hpl
