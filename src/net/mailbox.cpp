#include "net/mailbox.h"

namespace hpcs::net {

Mailbox::Mailbox(sim::Engine& engine, Fabric& fabric,
                 std::function<kernel::Kernel&(int)> kernel_of,
                 std::function<int(int)> node_of, int participants)
    : engine_(engine),
      fabric_(fabric),
      kernel_of_(std::move(kernel_of)),
      node_of_(std::move(node_of)),
      participants_(participants) {}

std::optional<kernel::CondId> Mailbox::exchange(std::uint32_t site,
                                                std::uint64_t visit, int rank,
                                                const Step& step) {
  const CollKey coll_key{site, visit};
  Coll& coll = colls_[coll_key];
  if (step.send_to >= 0) {
    const MsgKey msg_key{rank, step.send_to, step.send_seq};
    Msg& msg = coll.msgs[msg_key];
    if (!msg.sent) {  // a restarted rank replaying its schedule skips this
      msg.sent = true;
      const SimTime arrival =
          fabric_.deliver(node_of_(rank), node_of_(step.send_to),
                          step.send_bytes, engine_.now());
      engine_.schedule_at(arrival, [this, coll_key, msg_key] {
        on_delivered(coll_key, msg_key);
      });
    }
  }
  if (step.recv_from >= 0) {
    const MsgKey msg_key{step.recv_from, rank, step.recv_seq};
    Msg& msg = coll.msgs[msg_key];
    if (msg.delivered) return std::nullopt;
    if (msg.cond == kernel::kInvalidCond) {
      msg.waiter_node = node_of_(rank);
      msg.cond = kernel_of_(msg.waiter_node).cond_create();
    }
    return msg.cond;
  }
  return std::nullopt;
}

void Mailbox::on_delivered(CollKey coll_key, MsgKey msg_key) {
  auto it = colls_.find(coll_key);
  if (it == colls_.end()) return;  // collective already reclaimed
  Msg& msg = it->second.msgs[msg_key];
  msg.delivered = true;
  if (msg.cond != kernel::kInvalidCond) {
    kernel_of_(msg.waiter_node).cond_signal(msg.cond);
  }
}

void Mailbox::complete(std::uint32_t site, std::uint64_t visit, int rank) {
  auto it = colls_.find(CollKey{site, visit});
  if (it == colls_.end()) return;
  it->second.completed[rank] = true;
  if (static_cast<int>(it->second.completed.size()) >= participants_) {
    colls_.erase(it);
  }
}

}  // namespace hpcs::net
