// Algorithmic collectives: per-rank message schedules.
//
// A collective under a real MPI library is not one global rendezvous — it is
// a DAG of point-to-point messages whose shape (tree, ring, butterfly)
// determines how far one slow rank's delay propagates.  collective_steps()
// returns the ordered step list ONE rank executes for a given algorithm:
// each step optionally sends one message, optionally waits for one, and
// optionally does local combine work (the reduction op).  The MPI layer
// interprets the steps against live kernel tasks and the Fabric, so a
// preempted rank stalls every subtree waiting on its messages — the paper's
// noise-amplification mechanism, now network-mediated.
//
// Matching: the k-th message rank s sends to rank d within one collective
// matches the k-th receive rank d posts from s (FIFO channels, like MPI's
// non-overtaking rule).  The (send_seq, recv_seq) fields carry k, assigned
// statically so a restarted rank replays with identical keys.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.h"

namespace hpcs::net {

enum class Algorithm : std::uint8_t {
  kFlat,              // legacy single match point + constant CPU charge
  kBinomialTree,      // binomial reduce-to-root + binomial broadcast
  kRecursiveDoubling, // butterfly exchange (with the pow2 fold-in for odd N)
  kRing,              // reduce-scatter + allgather around a ring
};

const char* algorithm_name(Algorithm algorithm);
/// Parse "flat"/"tree"/"rd"/"ring" (bench CLI); throws on junk.
Algorithm parse_algorithm(const std::string& name);

enum class Collective : std::uint8_t { kBarrier, kAllreduce, kAlltoall };

/// One step of one rank's schedule.  send is non-blocking (eager); the step
/// completes when the receive (if any) has been delivered and `cpu` has been
/// charged to the rank's task.
struct Step {
  int send_to = -1;    // peer rank, -1 = no send this step
  int recv_from = -1;  // peer rank, -1 = no receive this step
  std::uint64_t send_bytes = 0;
  std::uint64_t recv_bytes = 0;
  std::uint32_t send_seq = 0;  // FIFO sequence number within (self, send_to)
  std::uint32_t recv_seq = 0;  // FIFO sequence number within (recv_from, self)
  Work cpu = 0;  // local combine work after the receive
};

/// The schedule rank `rank` of `nranks` executes for `collective` under
/// `algorithm` moving `bytes` per rank (empty when nranks <= 1).
/// `cpu_ns_per_byte` prices the local combine work of reductions (the
/// MPI layer passes MpiConfig::per_byte_ns).  kFlat is not a schedule
/// (callers keep the legacy match-point path) and returns empty.
std::vector<Step> collective_steps(Collective collective, Algorithm algorithm,
                                   int rank, int nranks, std::uint64_t bytes,
                                   double cpu_ns_per_byte);

}  // namespace hpcs::net
