#include "net/fabric.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace hpcs::net {

const char* link_kind_name(LinkKind kind) {
  switch (kind) {
    case LinkKind::kLocal: return "local";
    case LinkKind::kNicUp: return "nic-up";
    case LinkKind::kNicDown: return "nic-down";
    case LinkKind::kUplink: return "uplink";
    case LinkKind::kDownlink: return "downlink";
  }
  return "?";
}

FabricConfig FabricConfig::uniform(int nodes, SimDuration remote_latency) {
  FabricConfig config;
  config.nodes = nodes;
  config.nodes_per_switch = std::max(nodes, 1);
  config.local = {0, 0.0};
  config.nic = {0, 0.0};
  config.uplink = {0, 0.0};
  config.send_overhead = 0;
  config.recv_overhead = 0;
  config.uniform_latency = remote_latency;
  return config;
}

SimDuration FabricConfig::min_cross_block_latency() const {
  if (uniform_latency.has_value()) return *uniform_latency;
  // node -> leaf -> spine -> leaf -> node, latency terms only: every other
  // cost (serialisation, FIFO queueing, degradation, reroute penalties)
  // strictly delays delivery further.
  return nic.latency + uplink.latency + uplink.latency + nic.latency;
}

SimDuration FabricConfig::min_remote_latency() const {
  if (uniform_latency.has_value()) return *uniform_latency;
  return nic.latency + nic.latency;  // node -> leaf -> node
}

Fabric::Fabric(FabricConfig config)
    : config_(config),
      latency_hist_(0.0, static_cast<double>(std::max<SimDuration>(
                             config.hist_max, 1)),
                    40) {
  if (config_.nodes <= 0) {
    throw std::invalid_argument("Fabric: nodes must be positive");
  }
  config_.nodes_per_switch =
      std::clamp(config_.nodes_per_switch, 1, config_.nodes);
  const int n = config_.nodes;
  const int b = config_.blocks();
  links_.reserve(static_cast<std::size_t>(3 * n + 2 * b));
  auto add = [this](LinkKind kind, int index, LinkParams params) {
    Link l;
    l.name = std::string(link_kind_name(kind)) + "/" + std::to_string(index);
    l.kind = kind;
    l.index = index;
    l.params = params;
    links_.push_back(std::move(l));
  };
  for (int i = 0; i < n; ++i) add(LinkKind::kLocal, i, config_.local);
  for (int i = 0; i < n; ++i) add(LinkKind::kNicUp, i, config_.nic);
  for (int i = 0; i < n; ++i) add(LinkKind::kNicDown, i, config_.nic);
  for (int i = 0; i < b; ++i) add(LinkKind::kUplink, i, config_.uplink);
  for (int i = 0; i < b; ++i) add(LinkKind::kDownlink, i, config_.uplink);
}

std::size_t Fabric::local_ix(int node) const {
  return static_cast<std::size_t>(node);
}
std::size_t Fabric::nic_up_ix(int node) const {
  return static_cast<std::size_t>(config_.nodes + node);
}
std::size_t Fabric::nic_down_ix(int node) const {
  return static_cast<std::size_t>(2 * config_.nodes + node);
}
std::size_t Fabric::uplink_ix(int block) const {
  return static_cast<std::size_t>(3 * config_.nodes + block);
}
std::size_t Fabric::downlink_ix(int block) const {
  return static_cast<std::size_t>(3 * config_.nodes + config_.blocks() +
                                  block);
}

void Fabric::check_node(int node) const {
  if (node < 0 || node >= config_.nodes) {
    throw std::out_of_range("Fabric: node index out of range");
  }
}

void Fabric::check_block(int block) const {
  if (block < 0 || block >= config_.blocks()) {
    throw std::out_of_range("Fabric: block index out of range");
  }
}

SimTime Fabric::traverse(Link& link, std::uint64_t bytes, SimTime depart) {
  double ns_per_byte = link.params.ns_per_byte * link.degrade_factor;
  SimDuration latency = link.params.latency + link.extra_latency;
  if (link.failed) {
    ns_per_byte *= config_.backup_bw_penalty;
    latency += config_.backup_extra_latency;
  }
  const SimTime start = std::max(depart, link.busy_until);
  const auto ser = static_cast<SimDuration>(
      std::llround(static_cast<double>(bytes) * ns_per_byte));
  link.queued_ns += start - depart;
  link.busy_until = start + ser;
  link.busy_ns += ser;
  link.messages += 1;
  link.bytes += bytes;
  return start + ser + latency;
}

SimTime Fabric::deliver(int src, int dst, std::uint64_t bytes, SimTime now) {
  check_node(src);
  check_node(dst);
  SimTime t = now;
  if (config_.uniform_latency.has_value()) {
    // Legacy constant-latency network: no serialisation, no queueing.
    if (src != dst) t = now + *config_.uniform_latency;
  } else if (src == dst) {
    t = traverse(links_[local_ix(src)], bytes, t);
  } else {
    t = traverse(links_[nic_up_ix(src)], bytes, t);
    const int bs = config_.block_of(src);
    const int bd = config_.block_of(dst);
    if (bs != bd) {
      t = traverse(links_[uplink_ix(bs)], bytes, t);
      t = traverse(links_[downlink_ix(bd)], bytes, t);
    }
    t = traverse(links_[nic_down_ix(dst)], bytes, t);
  }
  stats_.messages += 1;
  stats_.bytes += bytes;
  const SimDuration delay = t - now;
  stats_.total_latency += delay;
  stats_.max_latency = std::max(stats_.max_latency, delay);
  latency_hist_.add(static_cast<double>(delay));
  return t;
}

void Fabric::degrade_nic(int node, double factor, SimDuration extra) {
  check_node(node);
  links_[nic_up_ix(node)].degrade_factor = factor;
  links_[nic_up_ix(node)].extra_latency = extra;
  links_[nic_down_ix(node)].degrade_factor = factor;
  links_[nic_down_ix(node)].extra_latency = extra;
}

void Fabric::restore_nic(int node) { degrade_nic(node, 1.0, 0); }

void Fabric::fail_uplink(int block) {
  check_block(block);
  links_[uplink_ix(block)].failed = true;
  links_[downlink_ix(block)].failed = true;
}

void Fabric::repair_uplink(int block) {
  check_block(block);
  links_[uplink_ix(block)].failed = false;
  links_[downlink_ix(block)].failed = false;
}

bool Fabric::uplink_failed(int block) const {
  check_block(block);
  return links_[uplink_ix(block)].failed;
}

double Fabric::link_utilization(std::size_t i, SimTime now) const {
  if (now == 0) return 0.0;
  return static_cast<double>(links_.at(i).busy_ns) / static_cast<double>(now);
}

std::string Fabric::describe() const {
  std::ostringstream os;
  os << "fabric: " << config_.nodes << " nodes, " << config_.blocks()
     << " leaf switches (radix " << config_.nodes_per_switch << "), "
     << links_.size() << " links";
  if (config_.uniform_latency.has_value()) {
    os << ", uniform latency " << *config_.uniform_latency << "ns (legacy)";
  }
  return os.str();
}

}  // namespace hpcs::net
