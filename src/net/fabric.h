// The simulated interconnect: a switch-tier topology graph with a
// LogGP-style point-to-point cost model and per-link FIFO contention.
//
// The paper's cluster-scale argument is that OS noise is amplified by global
// synchronisation *over a network*; a constant per-hop latency cannot show
// that, because neither congestion nor locality can feed back into job
// runtime.  The Fabric models the three levels a message crosses in a real
// machine — intra-node shared memory, the node's NIC into a leaf switch, and
// the leaf's uplink into a spine — as directed links, each with a latency
// (L), a serialisation cost per byte (1/bandwidth, the G of LogGP), and a
// busy-until horizon: messages that hit a busy link queue behind it FIFO, so
// congestion *emerges* from traffic instead of being a parameter.  The o
// (CPU overhead) term is charged to the sending/receiving rank's task by the
// MPI layer, which is what couples scheduling noise to message timing.
//
// Calls are made from inside engine events with a monotonic clock, so link
// state evolves deterministically and whole runs stay bit-reproducible
// (Mohammed et al. make the case that realistic HPC simulation needs exactly
// this kind of calibrated network-cost model).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/histogram.h"
#include "util/time.h"

namespace hpcs::net {

/// Per-link cost parameters: one-way traversal latency plus serialisation
/// time per byte (the reciprocal bandwidth; 0.001 ns/byte = 1 TB/s).
struct LinkParams {
  SimDuration latency = 0;
  double ns_per_byte = 0.0;
};

struct FabricConfig {
  int nodes = 1;
  /// Leaf-switch radix: nodes [k*r, (k+1)*r) share leaf switch k.  Matches
  /// the batch allocator's chassis block, so contiguous allocations stay
  /// under one leaf and scattered ones cross the spine.
  int nodes_per_switch = 4;
  /// Intra-node transport (shared memory): ~20 GB/s, sub-microsecond.
  LinkParams local{200 * kNanosecond, 0.00005};
  /// Node <-> leaf switch (the NIC): ~10 Gb/s.
  LinkParams nic{1 * kMicrosecond, 0.0008};
  /// Leaf <-> spine uplink, 2:1 oversubscribed relative to the NICs.
  LinkParams uplink{2 * kMicrosecond, 0.0016};
  /// CPU overhead (the o of LogGP) charged to the sender / receiver task per
  /// message by the MPI layer.  This is on purpose *task* time, not link
  /// time: a preempted rank cannot inject its message.
  SimDuration send_overhead = 500 * kNanosecond;
  SimDuration recv_overhead = 500 * kNanosecond;
  /// Reroute penalty while a block's uplink is failed: traffic crawls over a
  /// shared maintenance path with this much less bandwidth and extra hop
  /// latency (see Fabric::fail_uplink).
  double backup_bw_penalty = 4.0;
  SimDuration backup_extra_latency = 20 * kMicrosecond;
  /// Range of the message-latency histogram (overflow is still counted).
  SimDuration hist_max = 2 * kMillisecond;
  /// Legacy constant-latency mode: when set, every cross-node message
  /// arrives exactly this much later (intra-node instantly), links never
  /// saturate, and overheads are zero — bit-for-bit the behaviour of the
  /// deprecated ClusterConfig::net_latency scalar.
  std::optional<SimDuration> uniform_latency;

  /// The legacy network: one flat switch, fixed one-way latency, no
  /// contention (seeded from the deprecated ClusterConfig::net_latency).
  static FabricConfig uniform(int nodes, SimDuration remote_latency);

  int blocks() const {
    return (nodes + nodes_per_switch - 1) / nodes_per_switch;
  }
  int block_of(int node) const { return node / nodes_per_switch; }

  /// Lower bound on the delivery delay of any message between nodes under
  /// *different* leaf switches: the pure link latencies of the
  /// NIC-up/uplink/downlink/NIC-down route (serialisation, queueing, and
  /// fault penalties only ever add).  This is the conservative-parallel
  /// lookahead for shard partitions aligned to leaf blocks
  /// (sim::ShardedEngine): no cross-shard interaction can propagate faster.
  /// In uniform_latency mode the constant one-way latency is the bound.
  SimDuration min_cross_block_latency() const;

  /// Lower bound on any cross-node (same- or cross-leaf) delivery delay:
  /// the NIC-up + NIC-down latencies, or the uniform latency.
  SimDuration min_remote_latency() const;
};

enum class LinkKind : std::uint8_t {
  kLocal,     // intra-node shared memory
  kNicUp,     // node -> leaf switch
  kNicDown,   // leaf switch -> node
  kUplink,    // leaf -> spine
  kDownlink,  // spine -> leaf
};

const char* link_kind_name(LinkKind kind);

/// One directed link and its lifetime accounting.  busy_until is the FIFO
/// horizon: a message departing earlier queues until the link frees.
struct Link {
  std::string name;
  LinkKind kind = LinkKind::kLocal;
  int index = 0;  // node id (local/nic) or block id (uplink/downlink)
  LinkParams params;
  SimTime busy_until = 0;
  // Fault state (degradation multiplies ns_per_byte; failed uplinks reroute
  // over the backup path's penalty parameters).
  double degrade_factor = 1.0;
  SimDuration extra_latency = 0;
  bool failed = false;
  // Accounting.
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  SimDuration busy_ns = 0;    // serialisation time the link was occupied
  SimDuration queued_ns = 0;  // time messages waited for the link
};

/// Whole-fabric accounting.
struct FabricStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  SimDuration total_latency = 0;  // sum of per-message delivery times
  SimDuration max_latency = 0;
};

class Fabric {
 public:
  explicit Fabric(FabricConfig config);

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  const FabricConfig& config() const { return config_; }

  /// Inject a `bytes`-byte message from `src` to `dst` (node ids) at time
  /// `now`; returns the arrival time at `dst`.  Each link on the route
  /// serialises the payload after the link frees (FIFO), so concurrent
  /// messages on a shared link queue behind each other.  `now` must be
  /// monotonically non-decreasing across calls (engine-event time).
  SimTime deliver(int src, int dst, std::uint64_t bytes, SimTime now);

  // --- fault injection -------------------------------------------------------
  /// Degrade both directions of `node`'s NIC: serialisation cost multiplies
  /// by `factor`, every traversal pays `extra` more latency.
  void degrade_nic(int node, double factor, SimDuration extra = 0);
  void restore_nic(int node);
  /// Fail block `block`'s uplink: spine traffic reroutes over the backup
  /// path (config.backup_bw_penalty / backup_extra_latency) until repaired.
  void fail_uplink(int block);
  void repair_uplink(int block);
  bool uplink_failed(int block) const;

  // --- accounting ------------------------------------------------------------
  const FabricStats& stats() const { return stats_; }
  /// Delivery-time distribution (ns), fixed bins over [0, hist_max).
  const util::Histogram& latency_histogram() const { return latency_hist_; }
  std::size_t num_links() const { return links_.size(); }
  const Link& link(std::size_t i) const { return links_.at(i); }
  /// Fraction of [0, now] the link spent serialising (its utilisation).
  double link_utilization(std::size_t i, SimTime now) const;

  std::string describe() const;

 private:
  std::size_t local_ix(int node) const;
  std::size_t nic_up_ix(int node) const;
  std::size_t nic_down_ix(int node) const;
  std::size_t uplink_ix(int block) const;
  std::size_t downlink_ix(int block) const;
  void check_node(int node) const;
  void check_block(int block) const;
  /// Occupy `link` from `depart`; returns the time the tail of the message
  /// clears the far end of the link.
  SimTime traverse(Link& link, std::uint64_t bytes, SimTime depart);

  FabricConfig config_;
  std::vector<Link> links_;
  FabricStats stats_;
  util::Histogram latency_hist_;
};

}  // namespace hpcs::net
