#include "net/collective.h"

#include <cmath>
#include <map>
#include <stdexcept>

namespace hpcs::net {
namespace {

Work combine_cost(std::uint64_t bytes, double cpu_ns_per_byte) {
  return static_cast<Work>(
      std::llround(static_cast<double>(bytes) * cpu_ns_per_byte));
}

Step send_step(int to, std::uint64_t bytes) {
  Step s;
  s.send_to = to;
  s.send_bytes = bytes;
  return s;
}

Step recv_step(int from, std::uint64_t bytes, Work cpu) {
  Step s;
  s.recv_from = from;
  s.recv_bytes = bytes;
  s.cpu = cpu;
  return s;
}

Step sendrecv_step(int to, int from, std::uint64_t bytes, Work cpu) {
  Step s;
  s.send_to = to;
  s.send_bytes = bytes;
  s.recv_from = from;
  s.recv_bytes = bytes;
  s.cpu = cpu;
  return s;
}

/// Binomial reduce to rank 0: leaves send up, inner nodes gather children
/// low-mask-first then forward to their parent.
void binomial_reduce(std::vector<Step>& steps, int rank, int n,
                     std::uint64_t bytes, double cnpb) {
  for (int mask = 1; mask < n; mask <<= 1) {
    if (rank & mask) {
      steps.push_back(send_step(rank - mask, bytes));
      return;
    }
    if (rank + mask < n) {
      steps.push_back(
          recv_step(rank + mask, bytes, combine_cost(bytes, cnpb)));
    }
  }
}

/// Binomial broadcast from rank 0 (the mirror of the reduce).
void binomial_bcast(std::vector<Step>& steps, int rank, int n,
                    std::uint64_t bytes) {
  int mask = 1;
  while (mask < n) {
    if (rank & mask) {
      steps.push_back(recv_step(rank - mask, bytes, 0));
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if ((rank & mask) == 0 && rank + mask < n) {
      steps.push_back(send_step(rank + mask, bytes));
    }
    mask >>= 1;
  }
}

void tree_allreduce(std::vector<Step>& steps, int rank, int n,
                    std::uint64_t bytes, double cnpb) {
  binomial_reduce(steps, rank, n, bytes, cnpb);
  binomial_bcast(steps, rank, n, bytes);
}

/// Ring allreduce: n-1 reduce-scatter rounds then n-1 allgather rounds,
/// each moving one 1/n-sized chunk to the right neighbour.
void ring_allreduce(std::vector<Step>& steps, int rank, int n,
                    std::uint64_t bytes, double cnpb) {
  const int right = (rank + 1) % n;
  const int left = (rank + n - 1) % n;
  const std::uint64_t chunk =
      bytes == 0 ? 0 : (bytes + static_cast<std::uint64_t>(n) - 1) /
                           static_cast<std::uint64_t>(n);
  for (int i = 0; i < n - 1; ++i) {
    steps.push_back(
        sendrecv_step(right, left, chunk, combine_cost(chunk, cnpb)));
  }
  for (int i = 0; i < n - 1; ++i) {
    steps.push_back(sendrecv_step(right, left, chunk, 0));
  }
}

/// Recursive doubling with the MPICH-style fold: with n not a power of two,
/// the first 2*rem ranks pair up — evens lend their data to the odds, sit
/// out the butterfly, and receive the result at the end.
void rd_allreduce(std::vector<Step>& steps, int rank, int n,
                  std::uint64_t bytes, double cnpb) {
  int pof2 = 1;
  while (pof2 * 2 <= n) pof2 *= 2;
  const int rem = n - pof2;
  int newrank;
  if (rank < 2 * rem) {
    if (rank % 2 == 0) {
      steps.push_back(send_step(rank + 1, bytes));
      newrank = -1;
    } else {
      steps.push_back(
          recv_step(rank - 1, bytes, combine_cost(bytes, cnpb)));
      newrank = rank / 2;
    }
  } else {
    newrank = rank - rem;
  }
  if (newrank >= 0) {
    for (int mask = 1; mask < pof2; mask <<= 1) {
      const int newpeer = newrank ^ mask;
      const int peer = newpeer < rem ? newpeer * 2 + 1 : newpeer + rem;
      steps.push_back(
          sendrecv_step(peer, peer, bytes, combine_cost(bytes, cnpb)));
    }
  }
  if (rank < 2 * rem) {
    if (rank % 2 == 0) {
      steps.push_back(recv_step(rank + 1, bytes, 0));
    } else {
      steps.push_back(send_step(rank - 1, bytes));
    }
  }
}

/// Alltoall is pairwise shifts under every algorithm: round k sends to
/// rank+k and receives from rank-k (works for any n, one message per pair).
void pairwise_alltoall(std::vector<Step>& steps, int rank, int n,
                       std::uint64_t bytes) {
  for (int k = 1; k < n; ++k) {
    steps.push_back(sendrecv_step((rank + k) % n, (rank + n - k) % n, bytes,
                                  0));
  }
}

void assign_fifo_seqs(std::vector<Step>& steps) {
  std::map<int, std::uint32_t> sends, recvs;
  for (Step& s : steps) {
    if (s.send_to >= 0) s.send_seq = sends[s.send_to]++;
    if (s.recv_from >= 0) s.recv_seq = recvs[s.recv_from]++;
  }
}

}  // namespace

const char* algorithm_name(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kFlat: return "flat";
    case Algorithm::kBinomialTree: return "tree";
    case Algorithm::kRecursiveDoubling: return "rd";
    case Algorithm::kRing: return "ring";
  }
  return "?";
}

Algorithm parse_algorithm(const std::string& name) {
  if (name == "flat") return Algorithm::kFlat;
  if (name == "tree") return Algorithm::kBinomialTree;
  if (name == "rd") return Algorithm::kRecursiveDoubling;
  if (name == "ring") return Algorithm::kRing;
  throw std::invalid_argument("unknown collective algorithm: " + name);
}

std::vector<Step> collective_steps(Collective collective, Algorithm algorithm,
                                   int rank, int nranks, std::uint64_t bytes,
                                   double cpu_ns_per_byte) {
  std::vector<Step> steps;
  if (nranks <= 1 || algorithm == Algorithm::kFlat) return steps;
  if (rank < 0 || rank >= nranks) {
    throw std::out_of_range("collective_steps: rank out of range");
  }
  switch (collective) {
    case Collective::kBarrier:
      // A barrier is a 0-byte allreduce: the message pattern is what
      // synchronises, the payload is irrelevant.
      switch (algorithm) {
        case Algorithm::kBinomialTree:
          tree_allreduce(steps, rank, nranks, 0, 0.0);
          break;
        case Algorithm::kRecursiveDoubling:
          rd_allreduce(steps, rank, nranks, 0, 0.0);
          break;
        case Algorithm::kRing:
          ring_allreduce(steps, rank, nranks, 0, 0.0);
          break;
        case Algorithm::kFlat: break;
      }
      break;
    case Collective::kAllreduce:
      switch (algorithm) {
        case Algorithm::kBinomialTree:
          tree_allreduce(steps, rank, nranks, bytes, cpu_ns_per_byte);
          break;
        case Algorithm::kRecursiveDoubling:
          rd_allreduce(steps, rank, nranks, bytes, cpu_ns_per_byte);
          break;
        case Algorithm::kRing:
          ring_allreduce(steps, rank, nranks, bytes, cpu_ns_per_byte);
          break;
        case Algorithm::kFlat: break;
      }
      break;
    case Collective::kAlltoall:
      pairwise_alltoall(steps, rank, nranks, bytes);
      break;
  }
  assign_fifo_seqs(steps);
  return steps;
}

}  // namespace hpcs::net
