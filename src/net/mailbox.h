// Mailbox: point-to-point message matching for stepwise collectives.
//
// One Mailbox serves one job.  A rank executing a collective Step posts its
// send (the payload enters the Fabric *now*, so the injection time depends
// on when the rank's task actually ran) and polls its receive: if the
// matching message has not arrived yet the rank gets a condition to wait on,
// and the delivery event — scheduled at the Fabric-computed arrival time —
// fires it.  Messages are matched by (site, visit, src, dst, FIFO seq), the
// non-overtaking channel rule of MPI.
//
// Restart safety: sends are idempotent (the first posting wins; a respawned
// rank replaying its schedule re-posts without re-injecting traffic) and
// delivered messages are retained until *every* participant has completed
// the collective, at which point the whole collective's state is reclaimed.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <tuple>
#include <utility>

#include "kernel/kernel.h"
#include "net/collective.h"
#include "net/fabric.h"
#include "sim/engine.h"

namespace hpcs::net {

class Mailbox {
 public:
  /// `kernel_of(node)` must return the kernel whose tasks run on `node`
  /// (conds are created and signalled there); `node_of(rank)` maps ranks to
  /// fabric nodes.  `participants` is the number of ranks that must complete
  /// each collective before its state is reclaimed.  The Mailbox must
  /// outlive every pending delivery event (keep it alive until the engine
  /// stops running).
  Mailbox(sim::Engine& engine, Fabric& fabric,
          std::function<kernel::Kernel&(int)> kernel_of,
          std::function<int(int)> node_of, int participants);

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Execute the transfer part of `step` for `rank` in collective
  /// (site, visit): post the send (if any) and poll the receive (if any).
  /// Returns the condition to wait on when the receive is still in flight,
  /// nullopt when the rank can proceed immediately.
  std::optional<kernel::CondId> exchange(std::uint32_t site,
                                         std::uint64_t visit, int rank,
                                         const Step& step);

  /// `rank` finished every step of (site, visit); when all participants
  /// have, the collective's messages are garbage-collected.
  void complete(std::uint32_t site, std::uint64_t visit, int rank);

  /// Collectives with un-reclaimed state (0 once every rank completed —
  /// the leak check the tests pin).
  std::size_t open_collectives() const { return colls_.size(); }

 private:
  using CollKey = std::pair<std::uint32_t, std::uint64_t>;  // (site, visit)
  using MsgKey = std::tuple<int, int, std::uint32_t>;  // (src, dst, seq)

  struct Msg {
    bool sent = false;       // payload posted (in flight or delivered)
    bool delivered = false;  // arrival event fired
    kernel::CondId cond = kernel::kInvalidCond;  // waiter's condition
    int waiter_node = -1;
  };

  struct Coll {
    std::map<MsgKey, Msg> msgs;
    std::map<int, bool> completed;  // rank -> done (set semantics)
  };

  void on_delivered(CollKey coll_key, MsgKey msg_key);

  sim::Engine& engine_;
  Fabric& fabric_;
  std::function<kernel::Kernel&(int)> kernel_of_;
  std::function<int(int)> node_of_;
  int participants_;
  std::map<CollKey, Coll> colls_;
};

}  // namespace hpcs::net
