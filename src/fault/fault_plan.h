// FaultPlan: a deterministic script of faults to inject into one run.
//
// A plan is either built explicitly (tests pin exact times) or drawn from a
// seeded RNG (sweeps explore the fault space reproducibly: the same seed
// always yields the same plan, so a run with faults is as bit-repeatable as
// one without).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.h"

namespace hpcs::fault {

enum class FaultActionKind : std::uint8_t {
  kCpuOffline,
  kCpuOnline,
  kRankKill,
  kNicDegrade,    // multiply a node's NIC serialisation cost, add latency
  kNicRestore,
  kUplinkFail,    // fail a leaf switch's uplink; traffic reroutes
  kUplinkRepair,
};

struct FaultAction {
  SimTime at = 0;
  FaultActionKind kind = FaultActionKind::kRankKill;
  int cpu = -1;    // kCpuOffline / kCpuOnline
  int rank = -1;   // kRankKill
  int node = -1;   // kNicDegrade / kNicRestore (fabric node id)
  int block = -1;  // kUplinkFail / kUplinkRepair (leaf-switch block id)
  double factor = 1.0;      // kNicDegrade bandwidth-cost multiplier
  SimDuration extra = 0;    // kNicDegrade added per-traversal latency
};

/// What exists for a plan to target, for FaultPlan::validate().  A field
/// left at -1 means "unknown here" and its checks are skipped (e.g. no
/// fabric attached: node/block bounds cannot be checked until injection).
struct FaultTargets {
  int cpus = -1;
  int ranks = -1;
  int nodes = -1;
  int blocks = -1;
};

class FaultPlan {
 public:
  /// Parameters for FaultPlan::random().  Counts are exact, not maxima:
  /// sweeps pass the cell's (offlines, kills) pair directly.
  struct RandomConfig {
    int num_cpus = 8;
    int num_ranks = 8;
    int cpu_offlines = 1;
    int rank_kills = 1;
    /// Fault times are drawn uniformly in [window_start, window_end).
    SimTime window_start = 0;
    SimTime window_end = 1 * kSecond;
    /// When nonzero every offlined CPU comes back after this long.
    SimDuration reonline_after = 100 * kMillisecond;
  };

  FaultPlan() = default;

  FaultPlan& cpu_offline_at(SimTime at, int cpu);
  FaultPlan& cpu_online_at(SimTime at, int cpu);
  FaultPlan& kill_rank_at(SimTime at, int rank);
  FaultPlan& degrade_nic_at(SimTime at, int node, double factor,
                            SimDuration extra = 0);
  FaultPlan& restore_nic_at(SimTime at, int node);
  FaultPlan& fail_uplink_at(SimTime at, int block);
  FaultPlan& repair_uplink_at(SimTime at, int block);

  /// Draw a plan from `seed` (independent of every other simulator stream).
  static FaultPlan random(const RandomConfig& config, std::uint64_t seed);

  /// Reject ill-formed plans with std::invalid_argument before anything is
  /// injected: hotplug windows that overlap or duplicate (a CPU offlined
  /// while already offline, or onlined without a preceding offline) and
  /// actions whose target does not exist under `targets`.  The builders
  /// already reject negative ids; FaultInjector::arm() calls this with the
  /// targets it can see, so a bad plan fails loudly at plan time instead of
  /// silently misbehaving mid-run.
  void validate(const FaultTargets& targets = {}) const;

  /// Actions sorted by time (stable: insertion order breaks ties).
  const std::vector<FaultAction>& actions() const { return actions_; }
  bool empty() const { return actions_.empty(); }
  std::string describe() const;

 private:
  void add(FaultAction a);

  std::vector<FaultAction> actions_;
};

}  // namespace hpcs::fault
