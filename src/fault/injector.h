// FaultInjector: replays a FaultPlan against a live kernel (and optionally
// an MPI job) as ordinary engine events, so fault arrival interleaves
// deterministically with scheduling.
//
// Plans are validated at arm() time against every target the injector can
// see (CPU count, rank count, fabric nodes/blocks): structurally bad plans
// — overlapping hotplug windows, actions on nonexistent targets — throw
// std::invalid_argument before anything fires.  Actions that are only
// impossible *dynamically* (offlining what turns out to be the last online
// CPU, killing an already-dead rank) are skipped at fire time and recorded
// as FaultKind::kSkipped: a randomly drawn plan is allowed to race the
// workload.
#pragma once

#include "fault/fault.h"
#include "fault/fault_plan.h"
#include "kernel/kernel.h"

namespace hpcs::mpi {
class MpiWorld;
}
namespace hpcs::net {
class Fabric;
}

namespace hpcs::fault {

class FaultInjector {
 public:
  FaultInjector(kernel::Kernel& kernel, FaultPlan plan);

  /// Schedule every planned action on the kernel's engine.  Pass the job so
  /// kRankKill actions can resolve ranks to tids, and the fabric so link
  /// actions (NIC degrade, uplink fail) have a target; actions without
  /// their target attached are skipped.  Call at most once, before (or
  /// while) the engine runs; actions whose time is already in the past fire
  /// on the next event boundary.
  void arm(mpi::MpiWorld* world = nullptr, net::Fabric* fabric = nullptr);

  const FaultPlan& plan() const { return plan_; }
  /// What actually happened (injected / skipped); the MPI runtime's reactions
  /// (detection, restart, abort) live in MpiWorld::fault_report().
  const FaultReport& report() const { return report_; }

 private:
  void fire(const FaultAction& action);

  kernel::Kernel& kernel_;
  FaultPlan plan_;
  mpi::MpiWorld* world_ = nullptr;
  net::Fabric* fabric_ = nullptr;
  bool armed_ = false;
  FaultReport report_;
};

}  // namespace hpcs::fault
