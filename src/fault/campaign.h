// Fault campaigns: long, seeded streams of node failures drawn from a
// per-node MTBF spec.
//
// Each node's failures form an independent Poisson process (exponential
// inter-failure times, mean = node_mtbf) generated from its own RNG
// substream, so the campaign for node k is identical no matter how many
// nodes surround it or how the simulation is partitioned.  A campaign over
// thousands of nodes and hours of simulated uptime yields thousands of
// failures — the input both the scale scenario (batch::ScaleConfig) and
// the kernel-level soak tests replay deterministically.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault_plan.h"
#include "util/time.h"

namespace hpcs::fault {

struct CampaignConfig {
  /// Nodes drawing failures (ids 0..nodes-1).
  int nodes = 1;
  /// Mean time between failures of one node; 0 disables the campaign.
  SimDuration node_mtbf = 0;
  /// Failures are drawn in [start, horizon).
  SimTime start = 0;
  SimTime horizon = 0;

  bool enabled() const { return node_mtbf > 0 && horizon > start; }
};

struct NodeFailure {
  SimTime at = 0;
  int node = 0;
};

/// Draw the full campaign, sorted by (at, node).  Throws
/// std::invalid_argument on a nonsensical config (nodes <= 0, or a horizon
/// before start with a nonzero MTBF).  An MTBF of 0 returns no failures.
std::vector<NodeFailure> generate_campaign(const CampaignConfig& config,
                                           std::uint64_t seed);

/// Expected failure count for the config (nodes * window / MTBF) — handy
/// for sizing tests and benches; 0 when disabled.
double expected_failures(const CampaignConfig& config);

/// Bridge to the kernel-level injector: replay a campaign against an MPI
/// job by mapping node k to rank (k % nranks) and killing that rank at the
/// failure time.  Drives the full detect/restart/replay machinery in
/// mpi::MpiWorld — the fault-campaign soak test's workload.
FaultPlan campaign_rank_plan(const CampaignConfig& config, int nranks,
                             std::uint64_t seed);

inline constexpr SimTime kNoRepair = ~SimTime{0};

/// One node-level outage for a cluster scheduler: the node fails at `down`
/// and is repaired at `up` (kNoRepair when it stays down for good).
struct NodeOutage {
  SimTime down = 0;
  SimTime up = kNoRepair;
  int node = 0;
};

/// Campaign as outage windows, sorted by (down, node).  Each failure opens
/// an outage of length `repair_after` (0 = never repaired); failures of a
/// node that land inside one of its open outages are dropped — a node that
/// is already down cannot fail again.
std::vector<NodeOutage> campaign_outages(const CampaignConfig& config,
                                         std::uint64_t seed,
                                         SimDuration repair_after);

}  // namespace hpcs::fault
