// Fault model vocabulary shared by the injector, the MPI runtime, and the
// experiment runner.
//
// Header-only on purpose: mpi::MpiWorld reports rank deaths through a
// FaultReport while fault::FaultInjector drives MpiWorld, so a compiled
// fault library depending on hpcs_mpi (and vice versa) would be circular.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.h"

namespace hpcs::fault {

enum class FaultKind : std::uint8_t {
  kCpuOffline,         // a CPU was hot-unplugged
  kCpuOnline,          // a CPU came back
  kRankKill,           // an MPI rank was killed (the injected fault)
  kRankDeathDetected,  // the runtime's failure detector noticed the death
  kRankRestart,        // the rank was respawned from its sync checkpoint
  kJobAbort,           // unrecoverable: the runtime killed the job
  kLinkDegrade,        // a node's NIC lost bandwidth / gained latency
  kLinkRestore,        // the NIC recovered
  kUplinkFail,         // a leaf switch's uplink failed (traffic reroutes)
  kUplinkRepair,       // the uplink came back
  kSkipped,            // a planned action was impossible and was dropped
};

inline const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCpuOffline: return "cpu-offline";
    case FaultKind::kCpuOnline: return "cpu-online";
    case FaultKind::kRankKill: return "rank-kill";
    case FaultKind::kRankDeathDetected: return "rank-death-detected";
    case FaultKind::kRankRestart: return "rank-restart";
    case FaultKind::kJobAbort: return "job-abort";
    case FaultKind::kLinkDegrade: return "link-degrade";
    case FaultKind::kLinkRestore: return "link-restore";
    case FaultKind::kUplinkFail: return "uplink-fail";
    case FaultKind::kUplinkRepair: return "uplink-repair";
    case FaultKind::kSkipped: return "skipped";
  }
  return "?";
}

struct FaultEvent {
  SimTime time = 0;
  FaultKind kind = FaultKind::kSkipped;
  int cpu = -1;   // hotplug events
  int rank = -1;  // rank events
  std::string note;
};

/// Everything that went wrong (and was done about it) during one run.
struct FaultReport {
  std::vector<FaultEvent> events;
  bool job_aborted = false;
  int restarts = 0;
  /// Simulated work discarded by rank deaths: everything since the victim's
  /// last *committed* sync point, including a checkpoint write it was in
  /// the middle of (an aborted write earns no credit).
  SimDuration lost_work_ns = 0;
  /// Detection latency + respawn delay summed over restarts.
  SimDuration restart_overhead_ns = 0;

  void add(FaultEvent e) {
    if (e.kind == FaultKind::kJobAbort) job_aborted = true;
    if (e.kind == FaultKind::kRankRestart) restarts += 1;
    events.push_back(std::move(e));
  }

  int count(FaultKind kind) const {
    int n = 0;
    for (const auto& e : events) {
      if (e.kind == kind) ++n;
    }
    return n;
  }

  bool empty() const { return events.empty(); }

  /// Fold another report in (the runner merges the injector's view of what
  /// it did with the MPI runtime's view of how it reacted).
  void merge(const FaultReport& other) {
    job_aborted = job_aborted || other.job_aborted;
    restarts += other.restarts;
    lost_work_ns += other.lost_work_ns;
    restart_overhead_ns += other.restart_overhead_ns;
    events.insert(events.end(), other.events.begin(), other.events.end());
  }

  std::string summary() const {
    if (events.empty()) return "no faults";
    std::string out;
    for (const auto& e : events) {
      if (!out.empty()) out += ", ";
      out += std::to_string(e.time) + "ns " + fault_kind_name(e.kind);
      if (e.cpu >= 0) out += " cpu" + std::to_string(e.cpu);
      if (e.rank >= 0) out += " rank" + std::to_string(e.rank);
      if (!e.note.empty()) out += " (" + e.note + ")";
    }
    return out;
  }
};

}  // namespace hpcs::fault
