#include "fault/injector.h"

#include <stdexcept>

#include "mpi/world.h"
#include "net/fabric.h"
#include "util/log.h"

namespace hpcs::fault {

FaultInjector::FaultInjector(kernel::Kernel& kernel, FaultPlan plan)
    : kernel_(kernel), plan_(std::move(plan)) {}

void FaultInjector::arm(mpi::MpiWorld* world, net::Fabric* fabric) {
  if (armed_) throw std::logic_error("FaultInjector::arm called twice");
  armed_ = true;
  world_ = world;
  fabric_ = fabric;
  // Reject ill-formed plans before anything fires; targets we cannot see
  // (no world / no fabric attached) stay unchecked and fall back to the
  // per-action skip below.
  FaultTargets targets;
  targets.cpus = kernel_.topology().num_cpus();
  if (world != nullptr) targets.ranks = world->config().nranks;
  if (fabric != nullptr) {
    targets.nodes = fabric->config().nodes;
    targets.blocks = fabric->config().blocks();
  }
  plan_.validate(targets);
  for (const FaultAction& action : plan_.actions()) {
    const SimTime at =
        action.at > kernel_.now() ? action.at : kernel_.now();
    kernel_.engine().schedule_at(at, [this, action] { fire(action); });
  }
}

void FaultInjector::fire(const FaultAction& action) {
  auto skip = [&](int cpu, int rank, const char* why) {
    HPCS_ERROR_RL("fault-injector",
                  "fault injector skipping action at t=" << kernel_.now()
                                                         << ": " << why);
    report_.add({kernel_.now(), FaultKind::kSkipped, cpu, rank, why});
  };
  switch (action.kind) {
    case FaultActionKind::kCpuOffline: {
      const auto cpu = static_cast<hw::CpuId>(action.cpu);
      if (action.cpu < 0 || action.cpu >= kernel_.topology().num_cpus()) {
        skip(action.cpu, -1, "no such cpu");
        return;
      }
      if (!kernel_.cpu_is_online(cpu)) {
        skip(action.cpu, -1, "cpu already offline");
        return;
      }
      if (kernel_.num_online_cpus() <= 1) {
        skip(action.cpu, -1, "last online cpu");
        return;
      }
      kernel_.cpu_offline(cpu);
      report_.add({kernel_.now(), FaultKind::kCpuOffline, action.cpu, -1, ""});
      return;
    }
    case FaultActionKind::kCpuOnline: {
      const auto cpu = static_cast<hw::CpuId>(action.cpu);
      if (action.cpu < 0 || action.cpu >= kernel_.topology().num_cpus()) {
        skip(action.cpu, -1, "no such cpu");
        return;
      }
      if (kernel_.cpu_is_online(cpu)) {
        skip(action.cpu, -1, "cpu already online");
        return;
      }
      kernel_.cpu_online(cpu);
      report_.add({kernel_.now(), FaultKind::kCpuOnline, action.cpu, -1, ""});
      return;
    }
    case FaultActionKind::kRankKill: {
      if (world_ == nullptr) {
        skip(-1, action.rank, "no MPI world attached");
        return;
      }
      if (!world_->inject_rank_failure(action.rank)) {
        skip(-1, action.rank, "rank not killable (unspawned/dead/exited)");
        return;
      }
      report_.add({kernel_.now(), FaultKind::kRankKill, -1, action.rank, ""});
      return;
    }
    case FaultActionKind::kNicDegrade:
    case FaultActionKind::kNicRestore: {
      if (fabric_ == nullptr) {
        skip(-1, -1, "no fabric attached");
        return;
      }
      if (action.node < 0 || action.node >= fabric_->config().nodes) {
        skip(-1, -1, "no such fabric node");
        return;
      }
      if (action.kind == FaultActionKind::kNicDegrade) {
        fabric_->degrade_nic(action.node, action.factor, action.extra);
        report_.add({kernel_.now(), FaultKind::kLinkDegrade, -1, -1,
                     "node" + std::to_string(action.node) + " x" +
                         std::to_string(action.factor)});
      } else {
        fabric_->restore_nic(action.node);
        report_.add({kernel_.now(), FaultKind::kLinkRestore, -1, -1,
                     "node" + std::to_string(action.node)});
      }
      return;
    }
    case FaultActionKind::kUplinkFail:
    case FaultActionKind::kUplinkRepair: {
      if (fabric_ == nullptr) {
        skip(-1, -1, "no fabric attached");
        return;
      }
      if (action.block < 0 || action.block >= fabric_->config().blocks()) {
        skip(-1, -1, "no such fabric block");
        return;
      }
      if (action.kind == FaultActionKind::kUplinkFail) {
        fabric_->fail_uplink(action.block);
        report_.add({kernel_.now(), FaultKind::kUplinkFail, -1, -1,
                     "block" + std::to_string(action.block)});
      } else {
        fabric_->repair_uplink(action.block);
        report_.add({kernel_.now(), FaultKind::kUplinkRepair, -1, -1,
                     "block" + std::to_string(action.block)});
      }
      return;
    }
  }
}

}  // namespace hpcs::fault
