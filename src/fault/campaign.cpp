#include "fault/campaign.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace hpcs::fault {

std::vector<NodeFailure> generate_campaign(const CampaignConfig& config,
                                           std::uint64_t seed) {
  if (config.nodes <= 0) {
    throw std::invalid_argument("CampaignConfig: nodes must be positive");
  }
  if (config.node_mtbf > 0 && config.horizon < config.start) {
    throw std::invalid_argument(
        "CampaignConfig: horizon must not precede start");
  }
  std::vector<NodeFailure> failures;
  if (!config.enabled()) return failures;
  const double mtbf = static_cast<double>(config.node_mtbf);
  const util::Rng base = util::Rng(seed).substream(0xca39a160ULL);
  for (int node = 0; node < config.nodes; ++node) {
    util::Rng rng = base.substream(static_cast<std::uint64_t>(node));
    double t = static_cast<double>(config.start);
    for (;;) {
      t += rng.exponential(mtbf);
      if (t >= static_cast<double>(config.horizon)) break;
      failures.push_back({static_cast<SimTime>(t), node});
    }
  }
  std::sort(failures.begin(), failures.end(),
            [](const NodeFailure& a, const NodeFailure& b) {
              if (a.at != b.at) return a.at < b.at;
              return a.node < b.node;
            });
  return failures;
}

double expected_failures(const CampaignConfig& config) {
  if (!config.enabled()) return 0.0;
  return static_cast<double>(config.nodes) *
         static_cast<double>(config.horizon - config.start) /
         static_cast<double>(config.node_mtbf);
}

std::vector<NodeOutage> campaign_outages(const CampaignConfig& config,
                                         std::uint64_t seed,
                                         SimDuration repair_after) {
  std::vector<NodeOutage> outages;
  // Per-node end of the outage currently in progress (kNoRepair = forever).
  std::vector<SimTime> down_until(static_cast<std::size_t>(config.nodes), 0);
  for (const NodeFailure& f : generate_campaign(config, seed)) {
    SimTime& until = down_until[static_cast<std::size_t>(f.node)];
    if (f.at < until) continue;  // node is already down
    NodeOutage outage;
    outage.down = f.at;
    outage.up = repair_after > 0 ? f.at + repair_after : kNoRepair;
    outage.node = f.node;
    until = outage.up;
    outages.push_back(outage);
  }
  // generate_campaign sorts by (at, node) already; dropping entries keeps
  // that order.
  return outages;
}

FaultPlan campaign_rank_plan(const CampaignConfig& config, int nranks,
                             std::uint64_t seed) {
  if (nranks <= 0) {
    throw std::invalid_argument("campaign_rank_plan: nranks must be positive");
  }
  FaultPlan plan;
  for (const NodeFailure& f : generate_campaign(config, seed)) {
    plan.kill_rank_at(f.at, f.node % nranks);
  }
  return plan;
}

}  // namespace hpcs::fault
