#include "fault/fault_plan.h"

#include <algorithm>
#include <limits>
#include <map>
#include <stdexcept>
#include <utility>
#include <vector>

#include "util/rng.h"

namespace hpcs::fault {

namespace {

void require_id(int id, const char* what) {
  if (id < 0) {
    throw std::invalid_argument(std::string("FaultPlan: negative ") + what +
                                " id " + std::to_string(id));
  }
}

void check_bound(int id, int limit, const char* what, SimTime at) {
  if (limit >= 0 && id >= limit) {
    throw std::invalid_argument(
        std::string("FaultPlan: action at t=") + std::to_string(at) +
        "ns targets nonexistent " + what + " " + std::to_string(id) +
        " (only " + std::to_string(limit) + " exist)");
  }
}

}  // namespace

void FaultPlan::add(FaultAction a) {
  // Keep actions_ sorted by time; stable insert preserves the order same-time
  // actions were added in (a test scripting offline-then-kill at t relies on
  // it).
  auto it = std::upper_bound(
      actions_.begin(), actions_.end(), a,
      [](const FaultAction& x, const FaultAction& y) { return x.at < y.at; });
  actions_.insert(it, a);
}

FaultPlan& FaultPlan::cpu_offline_at(SimTime at, int cpu) {
  require_id(cpu, "cpu");
  add({at, FaultActionKind::kCpuOffline, cpu, -1});
  return *this;
}

FaultPlan& FaultPlan::cpu_online_at(SimTime at, int cpu) {
  require_id(cpu, "cpu");
  add({at, FaultActionKind::kCpuOnline, cpu, -1});
  return *this;
}

FaultPlan& FaultPlan::kill_rank_at(SimTime at, int rank) {
  require_id(rank, "rank");
  add({at, FaultActionKind::kRankKill, -1, rank});
  return *this;
}

FaultPlan& FaultPlan::degrade_nic_at(SimTime at, int node, double factor,
                                     SimDuration extra) {
  require_id(node, "node");
  FaultAction a;
  a.at = at;
  a.kind = FaultActionKind::kNicDegrade;
  a.node = node;
  a.factor = factor;
  a.extra = extra;
  add(a);
  return *this;
}

FaultPlan& FaultPlan::restore_nic_at(SimTime at, int node) {
  require_id(node, "node");
  FaultAction a;
  a.at = at;
  a.kind = FaultActionKind::kNicRestore;
  a.node = node;
  add(a);
  return *this;
}

FaultPlan& FaultPlan::fail_uplink_at(SimTime at, int block) {
  require_id(block, "block");
  FaultAction a;
  a.at = at;
  a.kind = FaultActionKind::kUplinkFail;
  a.block = block;
  add(a);
  return *this;
}

FaultPlan& FaultPlan::repair_uplink_at(SimTime at, int block) {
  require_id(block, "block");
  FaultAction a;
  a.at = at;
  a.kind = FaultActionKind::kUplinkRepair;
  a.block = block;
  add(a);
  return *this;
}

FaultPlan FaultPlan::random(const RandomConfig& config, std::uint64_t seed) {
  FaultPlan plan;
  util::Rng rng = util::Rng(seed).substream(0xfa017ULL);
  const auto span = config.window_end > config.window_start
                        ? static_cast<std::uint64_t>(config.window_end -
                                                     config.window_start)
                        : 1ULL;
  auto draw_time = [&] {
    return config.window_start +
           static_cast<SimTime>(rng.uniform_u64(0, span - 1));
  };
  // Per-CPU offline windows already drawn, so a redraw can keep the plan
  // valid (validate() rejects overlapping windows).
  std::map<int, std::vector<std::pair<SimTime, SimTime>>> windows;
  constexpr SimTime kOpenEnd = std::numeric_limits<SimTime>::max();
  for (int i = 0; i < config.cpu_offlines && config.num_cpus > 1; ++i) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      // Never target CPU 0 so a plan cannot strand the machine by offlining
      // every CPU (the injector also refuses to kill the last one).
      const int cpu = static_cast<int>(rng.uniform_u64(
          1, static_cast<std::uint64_t>(config.num_cpus - 1)));
      const SimTime at = draw_time();
      const SimTime end =
          config.reonline_after > 0 ? at + config.reonline_after : kOpenEnd;
      auto& cpu_windows = windows[cpu];
      const bool clashes = std::any_of(
          cpu_windows.begin(), cpu_windows.end(), [&](const auto& w) {
            return at < w.second && w.first < end;
          });
      if (clashes) continue;
      cpu_windows.emplace_back(at, end);
      plan.cpu_offline_at(at, cpu);
      if (config.reonline_after > 0) {
        plan.cpu_online_at(at + config.reonline_after, cpu);
      }
      break;
    }
  }
  for (int i = 0; i < config.rank_kills && config.num_ranks > 0; ++i) {
    const int rank = static_cast<int>(
        rng.uniform_u64(0, static_cast<std::uint64_t>(config.num_ranks - 1)));
    plan.kill_rank_at(draw_time(), rank);
  }
  return plan;
}

void FaultPlan::validate(const FaultTargets& targets) const {
  // Walk in time order tracking each CPU's hotplug state: a plan may only
  // offline an online CPU and online an offlined one, or the injected
  // windows overlap and the run's hotplug accounting silently skews.
  std::map<int, bool> offlined;
  for (const FaultAction& a : actions_) {
    switch (a.kind) {
      case FaultActionKind::kCpuOffline: {
        check_bound(a.cpu, targets.cpus, "cpu", a.at);
        bool& off = offlined[a.cpu];
        if (off) {
          throw std::invalid_argument(
              "FaultPlan: overlapping offline windows for cpu " +
              std::to_string(a.cpu) + " (second offline at t=" +
              std::to_string(a.at) + "ns before it came back online)");
        }
        off = true;
        break;
      }
      case FaultActionKind::kCpuOnline: {
        check_bound(a.cpu, targets.cpus, "cpu", a.at);
        bool& off = offlined[a.cpu];
        if (!off) {
          throw std::invalid_argument(
              "FaultPlan: cpu " + std::to_string(a.cpu) + " onlined at t=" +
              std::to_string(a.at) + "ns without a preceding offline");
        }
        off = false;
        break;
      }
      case FaultActionKind::kRankKill:
        check_bound(a.rank, targets.ranks, "rank", a.at);
        break;
      case FaultActionKind::kNicDegrade:
      case FaultActionKind::kNicRestore:
        check_bound(a.node, targets.nodes, "node", a.at);
        break;
      case FaultActionKind::kUplinkFail:
      case FaultActionKind::kUplinkRepair:
        check_bound(a.block, targets.blocks, "block", a.at);
        break;
    }
  }
}

std::string FaultPlan::describe() const {
  if (actions_.empty()) return "no faults";
  std::string out;
  for (const auto& a : actions_) {
    if (!out.empty()) out += ", ";
    out += std::to_string(a.at) + "ns ";
    switch (a.kind) {
      case FaultActionKind::kCpuOffline:
        out += "offline cpu" + std::to_string(a.cpu);
        break;
      case FaultActionKind::kCpuOnline:
        out += "online cpu" + std::to_string(a.cpu);
        break;
      case FaultActionKind::kRankKill:
        out += "kill rank" + std::to_string(a.rank);
        break;
      case FaultActionKind::kNicDegrade:
        out += "degrade nic" + std::to_string(a.node) + " x" +
               std::to_string(a.factor);
        break;
      case FaultActionKind::kNicRestore:
        out += "restore nic" + std::to_string(a.node);
        break;
      case FaultActionKind::kUplinkFail:
        out += "fail uplink" + std::to_string(a.block);
        break;
      case FaultActionKind::kUplinkRepair:
        out += "repair uplink" + std::to_string(a.block);
        break;
    }
  }
  return out;
}

}  // namespace hpcs::fault
