#include "hw/topology.h"

#include <sstream>
#include <stdexcept>

namespace hpcs::hw {

Topology::Topology(TopologyConfig config) : config_(config) {
  if (config_.chips <= 0 || config_.cores_per_chip <= 0 ||
      config_.threads_per_core <= 0) {
    throw std::invalid_argument("Topology: all dimensions must be positive");
  }
  num_cpus_ = config_.chips * config_.cores_per_chip * config_.threads_per_core;
  core_cpus_.resize(static_cast<std::size_t>(num_cores()));
  chip_cpus_.resize(static_cast<std::size_t>(config_.chips));
  for (CpuId cpu = 0; cpu < num_cpus_; ++cpu) {
    core_cpus_[static_cast<std::size_t>(core_of(cpu))].push_back(cpu);
    chip_cpus_[static_cast<std::size_t>(chip_of(cpu))].push_back(cpu);
  }
}

Topology Topology::power6_js22() {
  return Topology(TopologyConfig{.chips = 2,
                                 .cores_per_chip = 2,
                                 .threads_per_core = 2,
                                 .chip_shared_cache = false});
}

int Topology::chip_of(CpuId cpu) const {
  check_cpu(cpu);
  return cpu / (config_.cores_per_chip * config_.threads_per_core);
}

int Topology::core_of(CpuId cpu) const {
  check_cpu(cpu);
  return cpu / config_.threads_per_core;
}

int Topology::thread_of(CpuId cpu) const {
  check_cpu(cpu);
  return cpu % config_.threads_per_core;
}

const std::vector<CpuId>& Topology::cpus_of_core(int core) const {
  return core_cpus_.at(static_cast<std::size_t>(core));
}

const std::vector<CpuId>& Topology::cpus_of_chip(int chip) const {
  return chip_cpus_.at(static_cast<std::size_t>(chip));
}

std::vector<CpuId> Topology::smt_siblings(CpuId cpu) const {
  std::vector<CpuId> out;
  for (CpuId sibling : cpus_of_core(core_of(cpu))) {
    if (sibling != cpu) out.push_back(sibling);
  }
  return out;
}

ShareLevel Topology::share_level(CpuId a, CpuId b) const {
  check_cpu(a);
  check_cpu(b);
  if (a == b) return ShareLevel::kSameCpu;
  if (core_of(a) == core_of(b)) return ShareLevel::kCore;
  if (chip_of(a) == chip_of(b)) return ShareLevel::kChip;
  return ShareLevel::kSystem;
}

bool Topology::caches_shared(CpuId from, CpuId to) const {
  switch (share_level(from, to)) {
    case ShareLevel::kSameCpu:
    case ShareLevel::kCore:
      return true;
    case ShareLevel::kChip:
      return config_.chip_shared_cache;
    case ShareLevel::kSystem:
      return false;
  }
  return false;
}

std::string Topology::describe() const {
  std::ostringstream out;
  out << config_.chips << " chip(s) x " << config_.cores_per_chip
      << " core(s) x " << config_.threads_per_core << " thread(s) = "
      << num_cpus_ << " CPUs"
      << (config_.chip_shared_cache ? " (chip-level shared cache)"
                                    : " (per-core caches only)");
  return out.str();
}

void Topology::check_cpu(CpuId cpu) const {
  if (cpu < 0 || cpu >= num_cpus_) {
    throw std::out_of_range("Topology: bad cpu id " + std::to_string(cpu));
  }
}

}  // namespace hpcs::hw
