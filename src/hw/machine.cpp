#include "hw/machine.h"

namespace hpcs::hw {

MachineConfig MachineConfig::power6_js22() {
  MachineConfig config;
  config.topology = TopologyConfig{.chips = 2,
                                   .cores_per_chip = 2,
                                   .threads_per_core = 2,
                                   .chip_shared_cache = false};
  return config;
}

MachineConfig MachineConfig::modern_dual_socket() {
  MachineConfig config;
  config.topology = TopologyConfig{.chips = 2,
                                   .cores_per_chip = 16,
                                   .threads_per_core = 2,
                                   .chip_shared_cache = true};
  // A chip-wide L3 softens migration cold-misses within a socket, and
  // modern SMT costs less per thread than POWER6's SMT2.
  config.cache.cold_warmth = 0.05;
  config.smt_slowdown = 0.75;
  config.numa.remote_penalty = 0.30;  // cross-socket DRAM is pricier today
  return config;
}

namespace {

CacheParams tlb_params(const MachineConfig& config) {
  if (!config.hugetlb) return config.tlb;
  // Huge pages: full reach, near-free refill, eviction barely matters.
  CacheParams huge = config.tlb;
  huge.max_warmth = 1.0;
  huge.miss_penalty = 0.04;
  huge.warm_tau = 200 * kMicrosecond;
  huge.cold_warmth = 0.5;
  huge.initial_warmth = 0.5;
  return huge;
}

}  // namespace

Machine::Machine(MachineConfig config)
    : config_(config),
      topo_(config.topology),
      cache_(topo_, config.cache),
      tlb_(topo_, tlb_params(config)),
      numa_(topo_, config.numa) {}

double Machine::smt_factor(int busy_threads_in_core) const {
  // One busy thread owns the core; any additional busy sibling degrades all
  // of them to the configured per-thread SMT throughput.
  return busy_threads_in_core <= 1 ? 1.0 : config_.smt_slowdown;
}

}  // namespace hpcs::hw
