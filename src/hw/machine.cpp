#include "hw/machine.h"

#include <cmath>

namespace hpcs::hw {

MachineConfig MachineConfig::power6_js22() {
  MachineConfig config;
  config.topology = TopologyConfig{.chips = 2,
                                   .cores_per_chip = 2,
                                   .threads_per_core = 2,
                                   .chip_shared_cache = false};
  return config;
}

MachineConfig MachineConfig::modern_dual_socket() {
  MachineConfig config;
  config.topology = TopologyConfig{.chips = 2,
                                   .cores_per_chip = 16,
                                   .threads_per_core = 2,
                                   .chip_shared_cache = true};
  // A chip-wide L3 softens migration cold-misses within a socket, and
  // modern SMT costs less per thread than POWER6's SMT2.
  config.cache.cold_warmth = 0.05;
  config.smt_slowdown = 0.75;
  config.numa.remote_penalty = 0.30;  // cross-socket DRAM is pricier today
  return config;
}

namespace {

CacheParams tlb_params(const MachineConfig& config) {
  if (!config.hugetlb) return config.tlb;
  // Huge pages: full reach, near-free refill, eviction barely matters.
  CacheParams huge = config.tlb;
  huge.max_warmth = 1.0;
  huge.miss_penalty = 0.04;
  huge.warm_tau = 200 * kMicrosecond;
  huge.cold_warmth = 0.5;
  huge.initial_warmth = 0.5;
  return huge;
}

}  // namespace

Machine::Machine(MachineConfig config)
    : config_(config),
      topo_(config.topology),
      cache_(topo_, config.cache),
      tlb_(topo_, tlb_params(config)),
      numa_(topo_, config.numa) {}

double Machine::smt_factor(int busy_threads_in_core) const {
  // One busy thread owns the core; each *doubling* of busy contexts applies
  // the per-thread SMT degradation again: 2-way is the configured slowdown
  // exactly, 4-way (SMT4, or 2 jobs time-sharing an SMT2 core) is its
  // square, and intermediate counts interpolate geometrically.  The old
  // code clamped everything above 1 to the 2-way value, which made a core
  // shared by 4+ contexts look as fast per-thread as a 2-way pair.
  if (busy_threads_in_core <= 1) return 1.0;
  return std::pow(config_.smt_slowdown,
                  std::log2(static_cast<double>(busy_threads_in_core)));
}

}  // namespace hpcs::hw
