// Cache-warmth model: the *indirect* cost of preemption and migration.
//
// The paper attributes two indirect overheads to scheduler noise: (1) a
// preempting task evicts the HPC task's cache lines, and (2) a migrated task
// loses its cache contents entirely unless source and destination share a
// cache level (POWER6: only SMT siblings do).  We model this with a scalar
// per-task "warmth" in [0, 1]:
//
//   - while a task runs, warmth approaches 1 exponentially (time constant
//     warm_tau — the cache re-warms as the working set is re-fetched);
//   - while a task is off-CPU, its warmth decays exponentially with the
//     CPU time *other* tasks consume on the hardware thread it last used
//     (evict_tau);
//   - a migration across a cache boundary resets warmth to cold_warmth;
//     migration between SMT siblings of one core keeps it (shared L1/L2).
//
// Concurrent execution on the sibling hardware thread does NOT count as
// pollution: steady-state SMT interference (including cache sharing) is
// already captured by the empirical per-thread SMT throughput factor.
//
// Execution speed is then  1 / (1 + miss_penalty * (1 - warmth)) — fully
// cold tasks run at 1/(1+miss_penalty) of peak.  Speed is sampled at every
// scheduling event and held constant in between; the kernel re-samples at
// least every few milliseconds, bounding the integration error.
#pragma once

#include <unordered_map>
#include <vector>

#include "hw/topology.h"
#include "util/time.h"

namespace hpcs::hw {

struct CacheParams {
  /// Max fractional slowdown when fully cold (speed = 1/(1+penalty)).
  double miss_penalty = 1.00;
  /// Run-time constant for re-warming the cache (a multi-MB working set
  /// refills the 4 MB per-core L2 over several milliseconds of misses).
  SimDuration warm_tau = 15 * kMillisecond;
  /// Foreign execution time on our thread that decays warmth by 1/e.
  SimDuration evict_tau = 20 * kMillisecond;
  /// Warmth right after a cross-cache migration.
  double cold_warmth = 0.02;
  /// Warmth newly created tasks start with.
  double initial_warmth = 0.02;
  /// Steady-state ceiling: < 1.0 models a structure that cannot cover the
  /// working set even when fully warm (e.g. a 4K-page TLB whose reach is
  /// smaller than a NAS array — the permanent miss tax Shmueli et al.
  /// identified).
  double max_warmth = 1.0;
};

class CacheModel {
 public:
  CacheModel(const Topology& topo, CacheParams params);

  void on_task_created(int tid);
  void on_task_exit(int tid);

  /// Called when `tid` is switched in on `cpu`.  Applies migration cold-miss
  /// and pollution decay so that a subsequent speed_factor() is current.
  void note_placed(int tid, CpuId cpu);

  /// Charge `ran` nanoseconds of execution by `tid` on `cpu`: warms the
  /// task's cache and advances the thread's pollution clock for everyone
  /// else who last ran there.
  void note_ran(int tid, CpuId cpu, SimDuration ran);

  /// Cache component of the task's execution speed on `cpu`, in (0, 1].
  double speed_factor(int tid, CpuId cpu) const;

  /// Current warmth the task would have if placed on `cpu` now.
  double warmth(int tid, CpuId cpu) const;

  const CacheParams& params() const { return params_; }

 private:
  struct TaskState {
    CpuId cpu = kInvalidCpu;        // hardware thread of last execution
    double warmth = 0.0;            // warmth at snapshot time
    SimDuration clock_snapshot = 0; // thread run clock at last update
  };

  /// Warmth of `state` as of now, given pollution accumulated on its thread.
  double decayed_warmth(const TaskState& state) const;

  const Topology& topo_;
  CacheParams params_;
  std::unordered_map<int, TaskState> tasks_;
  std::vector<SimDuration> thread_run_clock_;  // execution time per HW thread
};

}  // namespace hpcs::hw
