#include "hw/numa_model.h"

#include <algorithm>
#include <stdexcept>

namespace hpcs::hw {

NumaModel::NumaModel(const Topology& topo, NumaParams params)
    : topo_(topo), params_(params) {}

void NumaModel::on_task_created(int tid) {
  tasks_[tid] = TaskState{
      .home = -1,
      .accrued = 0,
      .per_chip = std::vector<SimDuration>(
          static_cast<std::size_t>(topo_.num_chips()), 0)};
}

void NumaModel::on_task_exit(int tid) { tasks_.erase(tid); }

void NumaModel::note_ran(int tid, CpuId cpu, SimDuration ran) {
  auto it = tasks_.find(tid);
  if (it == tasks_.end()) throw std::logic_error("NumaModel: unknown task");
  TaskState& state = it->second;
  if (state.home >= 0) return;
  state.per_chip[static_cast<std::size_t>(topo_.chip_of(cpu))] += ran;
  state.accrued += ran;
  if (state.accrued >= params_.first_touch_window) {
    state.home = static_cast<int>(
        std::max_element(state.per_chip.begin(), state.per_chip.end()) -
        state.per_chip.begin());
  }
}

double NumaModel::speed_factor(int tid, CpuId cpu) const {
  auto it = tasks_.find(tid);
  if (it == tasks_.end()) throw std::logic_error("NumaModel: unknown task");
  const TaskState& state = it->second;
  if (state.home < 0 || state.home == topo_.chip_of(cpu)) return 1.0;
  return 1.0 - params_.remote_penalty;
}

int NumaModel::home_chip(int tid) const {
  auto it = tasks_.find(tid);
  if (it == tasks_.end()) return -1;
  return it->second.home;
}

}  // namespace hpcs::hw
