// First-touch NUMA memory model.
//
// The js22 blade has one memory controller per POWER6 chip.  A task's pages
// land on the chip where it first does real work (first-touch allocation);
// if the scheduler later strands the task on the other chip, every memory
// access goes over the inter-chip fabric and the task runs persistently
// slower — unlike the cache penalty, this does not heal with time.  This is
// the dominant term behind the paper's observation that CPU migrations
// correlate with multi-second execution-time degradation (Fig. 3a): one
// cross-chip migration can tax a rank for the rest of the run.
#pragma once

#include <unordered_map>
#include <vector>

#include "hw/topology.h"
#include "util/time.h"

namespace hpcs::hw {

struct NumaParams {
  /// Fractional slowdown while running off the home chip.
  double remote_penalty = 0.25;
  /// Cumulative runtime after which the home chip is fixed (first touch:
  /// initialisation allocates the working set).
  SimDuration first_touch_window = 8 * kMillisecond;
};

class NumaModel {
 public:
  NumaModel(const Topology& topo, NumaParams params);

  void on_task_created(int tid);
  void on_task_exit(int tid);

  /// Charge execution: before the first-touch window closes this accrues
  /// residency and then pins the task's memory home.
  void note_ran(int tid, CpuId cpu, SimDuration ran);

  /// Speed multiplier for `tid` executing on `cpu` (1.0 when local or not
  /// yet homed).
  double speed_factor(int tid, CpuId cpu) const;

  /// Home chip, or -1 while unhomed.
  int home_chip(int tid) const;

  const NumaParams& params() const { return params_; }

 private:
  struct TaskState {
    int home = -1;
    SimDuration accrued = 0;
    std::vector<SimDuration> per_chip;
  };

  const Topology& topo_;
  NumaParams params_;
  std::unordered_map<int, TaskState> tasks_;
};

}  // namespace hpcs::hw
