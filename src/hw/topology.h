// Processor topology model.
//
// A "CPU" is a hardware thread, exactly as Linux numbers them.  The topology
// is a three-level tree (chip -> core -> SMT thread) mirroring the paper's
// IBM POWER6 js22 blade: 2 chips x 2 cores x 2 threads = 8 CPUs, with L1/L2
// private per core and no shared L3 on that blade.  The scheduler's
// balancing domains (SMT / MC / "system") are derived from this tree.
#pragma once

#include <string>
#include <vector>

namespace hpcs::hw {

using CpuId = int;
inline constexpr CpuId kInvalidCpu = -1;

struct TopologyConfig {
  int chips = 2;
  int cores_per_chip = 2;
  int threads_per_core = 2;
  /// True when all cores on a chip share a last-level cache (e.g. a POWER6
  /// blade with the optional external L3, or most modern x86 parts).  The
  /// paper's js22 blade does NOT have this.
  bool chip_shared_cache = false;
};

/// Which cache level two CPUs share; migrations within a shared level keep
/// the task's cache contents warm.
enum class ShareLevel {
  kSameCpu,   // identical hardware thread
  kCore,      // SMT siblings: share L1/L2
  kChip,      // same chip: share cache only if chip_shared_cache
  kSystem,    // different chips: share nothing but memory
};

class Topology {
 public:
  explicit Topology(TopologyConfig config);

  /// The paper's evaluation machine: dual-socket IBM POWER6 js22.
  static Topology power6_js22();

  const TopologyConfig& config() const { return config_; }

  int num_cpus() const { return num_cpus_; }
  int num_cores() const { return config_.chips * config_.cores_per_chip; }
  int num_chips() const { return config_.chips; }
  int threads_per_core() const { return config_.threads_per_core; }

  /// Global chip index of a CPU.
  int chip_of(CpuId cpu) const;
  /// Global core index of a CPU (0 .. num_cores-1).
  int core_of(CpuId cpu) const;
  /// SMT thread index within the core (0 .. threads_per_core-1).
  int thread_of(CpuId cpu) const;

  /// All CPUs belonging to a global core index.
  const std::vector<CpuId>& cpus_of_core(int core) const;
  /// All CPUs belonging to a chip.
  const std::vector<CpuId>& cpus_of_chip(int chip) const;

  /// The other hardware threads on this CPU's core.
  std::vector<CpuId> smt_siblings(CpuId cpu) const;

  ShareLevel share_level(CpuId a, CpuId b) const;

  /// True when a migration from `from` to `to` preserves cache contents.
  bool caches_shared(CpuId from, CpuId to) const;

  std::string describe() const;

 private:
  void check_cpu(CpuId cpu) const;

  TopologyConfig config_;
  int num_cpus_;
  std::vector<std::vector<CpuId>> core_cpus_;
  std::vector<std::vector<CpuId>> chip_cpus_;
};

}  // namespace hpcs::hw
