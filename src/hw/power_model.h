// Node power model — the paper's first declared piece of future work
// ("we will extend HPL taking into account the power dimension").
//
// Energy is integrated post-hoc from the kernel's accounting: per-thread
// busy/idle time at configurable power draws, plus per-event costs for
// context switches, migrations (IPI + cache refill traffic), and timer
// interrupts.  Busy-waiting at MPI match points burns busy-power without
// doing useful work, so the model also separates *spin* energy — the
// scheduler-visible waste HPL's stability reduces (ranks spend less time
// waiting for noise-delayed peers).
#pragma once

#include "util/time.h"

namespace hpcs::hw {

struct PowerParams {
  /// Power draw of a hardware thread executing (POWER6 blades ran ~100 W
  /// per chip across 4 threads; per-thread shares below).
  double busy_watts = 18.0;
  /// Extra draw when both SMT threads of a core are busy (the second
  /// thread adds less than a full core's worth).
  double smt_second_thread_watts = 8.0;
  /// Idle (clock-gated) hardware-thread draw.
  double idle_watts = 5.0;
  /// Per-event energy costs.
  double context_switch_uj = 30.0;   // microjoules
  double migration_uj = 120.0;       // IPI + cache/TLB refill traffic
  double tick_uj = 4.0;
};

/// One measured window of node energy.
struct EnergyReport {
  double busy_joules = 0.0;      // useful + spin execution
  double spin_joules = 0.0;      // subset of busy: busy-wait at match points
  double idle_joules = 0.0;
  double event_joules = 0.0;     // switches + migrations + ticks
  double window_seconds = 0.0;

  double total_joules() const {
    return busy_joules + idle_joules + event_joules;
  }
  double average_watts() const {
    return window_seconds > 0.0 ? total_joules() / window_seconds : 0.0;
  }
};

/// Accumulates the raw quantities the report is computed from.  The kernel
/// is the producer (via account_current and the counters); keeping the
/// meter separate lets experiments measure arbitrary windows.
struct EnergyInputs {
  SimDuration busy_ns = 0;        // thread-seconds of execution
  SimDuration smt_paired_ns = 0;  // execution while an SMT sibling was busy
  /// Execution time beyond the core's fair share: a thread running for t on
  /// a core with k busy contexts contributes t - t/k.  With k == 2 this is
  /// exactly smt_paired_ns / 2; with k > 2 it keeps growing, which is what
  /// the energy deduction below needs to stay correct beyond pairs.
  SimDuration smt_extra_ns = 0;
  SimDuration spin_ns = 0;        // execution spent spinning on waits
  SimDuration idle_ns = 0;        // thread-seconds idle
  std::uint64_t context_switches = 0;
  std::uint64_t migrations = 0;
  std::uint64_t ticks = 0;
};

EnergyReport compute_energy(const EnergyInputs& inputs,
                            const PowerParams& params,
                            SimDuration window);

}  // namespace hpcs::hw
