#include "hw/power_model.h"

namespace hpcs::hw {

EnergyReport compute_energy(const EnergyInputs& inputs,
                            const PowerParams& params, SimDuration window) {
  EnergyReport report;
  report.window_seconds = to_seconds(window);
  const double busy_s = to_seconds(inputs.busy_ns);
  const double extra_s = to_seconds(inputs.smt_extra_ns);
  const double spin_s = to_seconds(inputs.spin_ns);
  // A busy thread draws busy_watts; co-runners on the same core add only
  // the reduced second-thread increment for the share of their time beyond
  // the core's first context (smt_extra_ns), not a full busy share each.
  // For a fully paired 2-way core smt_extra_ns is half of smt_paired_ns,
  // so the deduction matches the old pairwise formula bit for bit; with
  // 3+ contexts it keeps scaling instead of capping at the 2-way value.
  report.busy_joules = busy_s * params.busy_watts -
                       extra_s * (params.busy_watts -
                                  params.smt_second_thread_watts);
  report.spin_joules = spin_s * params.busy_watts;
  report.idle_joules = to_seconds(inputs.idle_ns) * params.idle_watts;
  report.event_joules =
      (static_cast<double>(inputs.context_switches) * params.context_switch_uj +
       static_cast<double>(inputs.migrations) * params.migration_uj +
       static_cast<double>(inputs.ticks) * params.tick_uj) *
      1e-6;
  return report;
}

}  // namespace hpcs::hw
