#include "hw/power_model.h"

namespace hpcs::hw {

EnergyReport compute_energy(const EnergyInputs& inputs,
                            const PowerParams& params, SimDuration window) {
  EnergyReport report;
  report.window_seconds = to_seconds(window);
  const double busy_s = to_seconds(inputs.busy_ns);
  const double paired_s = to_seconds(inputs.smt_paired_ns);
  const double spin_s = to_seconds(inputs.spin_ns);
  // A busy thread draws busy_watts; while its sibling is also busy the
  // *pair* draws busy + second-thread watts, i.e. each paired-busy second
  // adds the reduced increment instead of a second full share.
  report.busy_joules = busy_s * params.busy_watts -
                       paired_s * (params.busy_watts -
                                   params.smt_second_thread_watts) / 2.0;
  report.spin_joules = spin_s * params.busy_watts;
  report.idle_joules = to_seconds(inputs.idle_ns) * params.idle_watts;
  report.event_joules =
      (static_cast<double>(inputs.context_switches) * params.context_switch_uj +
       static_cast<double>(inputs.migrations) * params.migration_uj +
       static_cast<double>(inputs.ticks) * params.tick_uj) *
      1e-6;
  return report;
}

}  // namespace hpcs::hw
