#include "hw/cache_model.h"

#include <cmath>
#include <stdexcept>

namespace hpcs::hw {

CacheModel::CacheModel(const Topology& topo, CacheParams params)
    : topo_(topo), params_(params),
      thread_run_clock_(static_cast<std::size_t>(topo.num_cpus()), 0) {}

void CacheModel::on_task_created(int tid) {
  tasks_[tid] = TaskState{.cpu = kInvalidCpu,
                          .warmth = params_.initial_warmth,
                          .clock_snapshot = 0};
}

void CacheModel::on_task_exit(int tid) { tasks_.erase(tid); }

double CacheModel::decayed_warmth(const TaskState& state) const {
  if (state.cpu == kInvalidCpu) return state.warmth;
  const SimDuration clock =
      thread_run_clock_[static_cast<std::size_t>(state.cpu)];
  // Everything that executed on our thread since the snapshot is pollution;
  // our own runtime advances the snapshot in note_ran, so it never counts.
  const SimDuration pollution = clock - state.clock_snapshot;
  if (pollution == 0) return state.warmth;
  const double decay = std::exp(-static_cast<double>(pollution) /
                                static_cast<double>(params_.evict_tau));
  return state.warmth * decay;
}

void CacheModel::note_placed(int tid, CpuId cpu) {
  auto it = tasks_.find(tid);
  if (it == tasks_.end()) throw std::logic_error("CacheModel: unknown task");
  TaskState& state = it->second;
  if (state.cpu == cpu || state.cpu == kInvalidCpu ||
      topo_.caches_shared(state.cpu, cpu)) {
    // Same thread, first placement, or a shared-cache move: keep the
    // (decayed) warmth.
    state.warmth = decayed_warmth(state);
  } else {
    // Cross-cache migration: contents lost.
    state.warmth = params_.cold_warmth;
  }
  state.cpu = cpu;
  state.clock_snapshot = thread_run_clock_[static_cast<std::size_t>(cpu)];
}

void CacheModel::note_ran(int tid, CpuId cpu, SimDuration ran) {
  auto it = tasks_.find(tid);
  if (it == tasks_.end()) throw std::logic_error("CacheModel: unknown task");
  TaskState& state = it->second;
  if (state.cpu != cpu) note_placed(tid, cpu);  // defensive
  auto& clock = thread_run_clock_[static_cast<std::size_t>(cpu)];
  // Warm up towards the ceiling: w' = W - (W - w) * exp(-ran / warm_tau).
  const double ceiling = params_.max_warmth;
  const double keep = std::exp(-static_cast<double>(ran) /
                               static_cast<double>(params_.warm_tau));
  const double current = std::min(decayed_warmth(state), ceiling);
  state.warmth = ceiling - (ceiling - current) * keep;
  clock += ran;
  state.clock_snapshot = clock;
}

double CacheModel::speed_factor(int tid, CpuId cpu) const {
  return 1.0 / (1.0 + params_.miss_penalty * (1.0 - warmth(tid, cpu)));
}

double CacheModel::warmth(int tid, CpuId cpu) const {
  auto it = tasks_.find(tid);
  if (it == tasks_.end()) throw std::logic_error("CacheModel: unknown task");
  const TaskState& state = it->second;
  if (state.cpu == cpu) return decayed_warmth(state);
  if (state.cpu != kInvalidCpu && topo_.caches_shared(state.cpu, cpu)) {
    return decayed_warmth(state);
  }
  return state.cpu == kInvalidCpu ? state.warmth : params_.cold_warmth;
}

}  // namespace hpcs::hw
