// Machine description: topology + cache behaviour + direct kernel costs.
//
// Direct costs model the paper's *direct* scheduler overheads: the cycles a
// context switch, a cross-CPU migration (IPI + runqueue handoff), and the
// periodic timer-interrupt handler steal from the running task.
#pragma once

#include "hw/cache_model.h"
#include "hw/numa_model.h"
#include "hw/topology.h"
#include "util/time.h"

namespace hpcs::hw {

struct MachineConfig {
  TopologyConfig topology;
  CacheParams cache;
  NumaParams numa;
  /// The TLB reuses the cache-warmth machinery (same sharing topology on
  /// POWER6: per-core, shared between SMT siblings) with its own constants.
  /// With 4K pages the reach is below a NAS working set, so even a fully
  /// warm TLB pays a small permanent miss tax (max_warmth < 1).
  CacheParams tlb{.miss_penalty = 0.15,
                  .warm_tau = 1 * kMillisecond,
                  .evict_tau = 3 * kMillisecond,
                  .cold_warmth = 0.05,
                  .initial_warmth = 0.05,
                  .max_warmth = 0.90};
  /// HugeTLB (the paper's future-work item after Shmueli et al.): 16 MB
  /// pages make the reach effectively unlimited and refills near-free.
  bool hugetlb = false;
  /// Per-thread throughput multiplier when the SMT sibling is busy.  POWER6
  /// SMT2 delivers roughly 1.3x core throughput, i.e. ~0.65x per thread.
  double smt_slowdown = 0.65;
  /// Direct CPU cost charged on every context switch.
  SimDuration context_switch_cost = 2 * kMicrosecond;
  /// Extra direct cost when the incoming task migrated from another CPU.
  SimDuration migration_cost = 5 * kMicrosecond;
  /// Cost of a timer-interrupt (tick) handler: the paper's "micro-noise".
  SimDuration tick_cost = 4 * kMicrosecond;
  /// Scheduler tick period (Linux HZ=1000 on the paper's kernel).
  SimDuration tick_period = 1 * kMillisecond;

  /// The paper's evaluation machine (IBM js22: POWER6, 2 chips x 2 cores x
  /// 2 SMT threads, no shared cache between cores).
  static MachineConfig power6_js22();

  /// A modern dual-socket x86 server: 2 chips x 16 cores x 2 SMT threads
  /// (64 hardware threads) with a chip-wide shared L3.  The paper's design
  /// only consumes portable topology facts (threads/core, cores/chip, cache
  /// sharing), so HPL must work here unchanged — this preset exercises that
  /// claim.
  static MachineConfig modern_dual_socket();
};

/// Owns the immutable topology and the mutable cache-warmth state for one
/// simulated node.
class Machine {
 public:
  explicit Machine(MachineConfig config);

  const MachineConfig& config() const { return config_; }
  const Topology& topology() const { return topo_; }
  CacheModel& cache() { return cache_; }
  const CacheModel& cache() const { return cache_; }
  CacheModel& tlb() { return tlb_; }
  const CacheModel& tlb() const { return tlb_; }
  NumaModel& numa() { return numa_; }
  const NumaModel& numa() const { return numa_; }

  /// SMT component of execution speed for `cpu` given how many sibling
  /// hardware threads (including `cpu`) currently run tasks.
  double smt_factor(int busy_threads_in_core) const;

 private:
  MachineConfig config_;
  Topology topo_;
  CacheModel cache_;
  CacheModel tlb_;
  NumaModel numa_;
};

}  // namespace hpcs::hw
