// Offline analysis of recorded scheduler traces.
//
// With Trace recording enabled, a run leaves a stream of sched_switch /
// sched_wakeup / sched_migrate_task records — the same data kernelshark
// digests.  This module reconstructs per-task execution segments, derives
// noise-event lists (who interrupted whom, for how long), and builds the
// migration matrix (from-CPU x to-CPU), which visualises balancing churn.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sim/trace.h"
#include "util/time.h"

namespace hpcs::perf {

/// One contiguous stretch of a task occupying a CPU.
struct ExecSegment {
  int tid = 0;
  int cpu = 0;
  SimTime start = 0;
  SimTime end = 0;
  SimDuration duration() const { return end - start; }
};

/// One interruption of `victim` by `intruder` on `cpu`.
struct NoiseEvent {
  int victim = 0;
  int intruder = 0;
  int cpu = 0;
  SimTime start = 0;       // when the victim was displaced
  SimDuration length = 0;  // until the victim (or anyone else) resumed
};

class TraceAnalysis {
 public:
  /// Analyse records up to `end_time` (0 = all records).
  explicit TraceAnalysis(const sim::Trace& trace, SimTime end_time = 0);

  /// Every completed execution segment, in start order.
  const std::vector<ExecSegment>& segments() const { return segments_; }

  /// Total CPU time per task.
  std::map<int, SimDuration> runtime_by_task() const;

  /// Interruptions of `victim_tid` by any other task.
  std::vector<NoiseEvent> interruptions_of(int victim_tid) const;

  /// migrations[from][to] counts, as a dense matrix over observed CPUs.
  std::vector<std::vector<int>> migration_matrix(int num_cpus) const;

  /// Longest contiguous segment per task — a proxy for "how long can it run
  /// undisturbed" (the paper's stay-out-of-the-way goal).
  std::map<int, SimDuration> longest_segment_by_task() const;

  std::size_t switch_count() const { return switch_count_; }

 private:
  std::vector<ExecSegment> segments_;
  std::vector<sim::TraceRecord> migrations_;
  std::size_t switch_count_ = 0;
};

}  // namespace hpcs::perf
