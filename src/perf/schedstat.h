// /proc-style scheduler statistics reporting.
//
// Renders the simulated kernel's accounting in the formats administrators
// know: a per-CPU summary like /proc/schedstat and a per-task sheet like
// /proc/<pid>/sched.  Used by the examples for post-mortem inspection and
// by operators of the library to sanity-check workload behaviour.
#pragma once

#include <string>
#include <vector>

#include "kernel/kernel.h"

namespace hpcs::perf {

/// One row of the per-CPU summary.
struct CpuStat {
  hw::CpuId cpu = 0;
  double busy_seconds = 0.0;
  double idle_seconds = 0.0;
  double utilization_pct = 0.0;
  std::string current_task;
  int nr_running = 0;
};

/// One row of the per-task summary.
struct TaskStat {
  kernel::Tid tid = 0;
  std::string name;
  std::string policy;
  std::string state;
  double runtime_seconds = 0.0;
  double spin_seconds = 0.0;
  std::uint64_t switches = 0;
  std::uint64_t migrations = 0;
  std::uint64_t preemptions = 0;
};

/// Collect per-CPU statistics at the current simulation time.
std::vector<CpuStat> cpu_stats(kernel::Kernel& kernel);

/// Whole-machine CPU utilisation in [0, 1]: mean busy fraction over all
/// CPUs since boot (the batch layer aggregates this across cluster nodes).
double machine_utilization(kernel::Kernel& kernel);

/// Collect statistics for the given tasks (skips unknown tids).
std::vector<TaskStat> task_stats(kernel::Kernel& kernel,
                                 const std::vector<kernel::Tid>& tids);

/// /proc/schedstat-flavoured text for the whole machine.
std::string render_schedstat(kernel::Kernel& kernel);

/// /proc/<pid>/sched-flavoured text for one task.
std::string render_task_sched(kernel::Kernel& kernel, kernel::Tid tid);

}  // namespace hpcs::perf
