#include "perf/netstat.h"

#include <sstream>

#include "util/stats.h"

namespace hpcs::perf {

std::vector<LinkStat> link_stats(const net::Fabric& fabric, SimTime now) {
  std::vector<LinkStat> stats;
  stats.reserve(fabric.num_links());
  for (std::size_t i = 0; i < fabric.num_links(); ++i) {
    const net::Link& link = fabric.link(i);
    LinkStat stat;
    stat.name = link.name;
    stat.messages = link.messages;
    stat.bytes = link.bytes;
    stat.busy_seconds = to_seconds(link.busy_ns);
    stat.queued_seconds = to_seconds(link.queued_ns);
    stat.utilization_pct = fabric.link_utilization(i, now) * 100.0;
    stats.push_back(std::move(stat));
  }
  return stats;
}

std::string render_netstat(const net::Fabric& fabric, SimTime now) {
  std::ostringstream out;
  out << fabric.describe() << "\n";
  out << "link          msgs       bytes    busy_ms  queued_ms  util%\n";
  for (const LinkStat& stat : link_stats(fabric, now)) {
    if (stat.messages == 0) continue;  // idle links are noise
    out << stat.name;
    for (std::size_t pad = stat.name.size(); pad < 12; ++pad) out << ' ';
    out << ' ' << stat.messages << ' ' << stat.bytes << ' '
        << util::format_fixed(stat.busy_seconds * 1000.0, 3) << ' '
        << util::format_fixed(stat.queued_seconds * 1000.0, 3) << ' '
        << util::format_fixed(stat.utilization_pct, 2) << "\n";
  }
  const net::FabricStats& totals = fabric.stats();
  out << "messages " << totals.messages << "\n";
  out << "bytes " << totals.bytes << "\n";
  if (totals.messages > 0) {
    out << "mean_latency_us "
        << util::format_fixed(
               to_seconds(totals.total_latency) * 1e6 /
                   static_cast<double>(totals.messages), 3)
        << "\n";
    out << "max_latency_us "
        << util::format_fixed(to_seconds(totals.max_latency) * 1e6, 3) << "\n";
    out << "latency histogram (ns):\n"
        << fabric.latency_histogram().render_ascii(40, "msg");
  }
  return out.str();
}

}  // namespace hpcs::perf
