// A model of `perf stat -a`: system-wide software performance events.
//
// Subscribes to the kernel's tracepoint stream and counts the same software
// events the paper's measurements use:
//   context-switches  <- sched_switch
//   cpu-migrations    <- sched_migrate_task
// plus wakeups, preemptions, forks and exits for the analysis figures.
// Counting is windowed: start() .. stop() delimit one measurement, exactly
// like the perf invocation wrapping one benchmark run.
#pragma once

#include <cstdint>
#include <string>

#include "kernel/kernel.h"
#include "sim/trace.h"

namespace hpcs::perf {

struct SoftwareEvents {
  std::uint64_t context_switches = 0;
  std::uint64_t cpu_migrations = 0;
  std::uint64_t wakeups = 0;
  std::uint64_t preemptions = 0;
  std::uint64_t forks = 0;
  std::uint64_t exits = 0;
  std::uint64_t ticks = 0;
};

class PerfMonitor {
 public:
  /// Attaches to the kernel's tracepoints.  The monitor starts stopped.
  explicit PerfMonitor(kernel::Kernel& kernel);

  void start();
  void stop();
  void reset();
  bool running() const { return running_; }

  const SoftwareEvents& counts() const { return counts_; }
  SimDuration window() const;

  /// perf-stat-like textual report.
  std::string report() const;

 private:
  void on_trace(const sim::TraceRecord& rec);

  kernel::Kernel& kernel_;
  bool running_ = false;
  SimTime window_start_ = 0;
  SimDuration window_elapsed_ = 0;
  SoftwareEvents counts_;
};

}  // namespace hpcs::perf
