#include "perf/schedstat.h"

#include <sstream>

#include "util/stats.h"

namespace hpcs::perf {

std::vector<CpuStat> cpu_stats(kernel::Kernel& kernel) {
  std::vector<CpuStat> out;
  const double now = to_seconds(kernel.now());
  for (hw::CpuId cpu = 0; cpu < kernel.topology().num_cpus(); ++cpu) {
    CpuStat stat;
    stat.cpu = cpu;
    stat.idle_seconds = to_seconds(kernel.idle_time(cpu));
    stat.busy_seconds = now - stat.idle_seconds;
    stat.utilization_pct = now > 0 ? stat.busy_seconds / now * 100.0 : 0.0;
    const kernel::Task* cur = kernel.current_on(cpu);
    stat.current_task = cur != nullptr ? cur->name : "?";
    stat.nr_running = kernel.nr_running(cpu);
    out.push_back(std::move(stat));
  }
  return out;
}

double machine_utilization(kernel::Kernel& kernel) {
  const int ncpus = kernel.topology().num_cpus();
  if (kernel.now() == 0 || ncpus == 0) return 0.0;
  const double now = to_seconds(kernel.now());
  double busy = 0.0;
  for (hw::CpuId cpu = 0; cpu < ncpus; ++cpu) {
    busy += now - to_seconds(kernel.idle_time(cpu));
  }
  return busy / (now * static_cast<double>(ncpus));
}

std::vector<TaskStat> task_stats(kernel::Kernel& kernel,
                                 const std::vector<kernel::Tid>& tids) {
  std::vector<TaskStat> out;
  for (kernel::Tid tid : tids) {
    const kernel::Task* t = kernel.find_task(tid);
    if (t == nullptr) continue;
    TaskStat stat;
    stat.tid = tid;
    stat.name = t->name;
    stat.policy = kernel::policy_name(t->policy);
    stat.state = kernel::task_state_name(t->state);
    stat.runtime_seconds = to_seconds(t->acct.runtime);
    stat.spin_seconds = to_seconds(t->acct.spin_time);
    stat.switches = t->acct.switches_out;
    stat.migrations = t->acct.migrations;
    stat.preemptions = t->acct.preemptions;
    out.push_back(std::move(stat));
  }
  return out;
}

std::string render_schedstat(kernel::Kernel& kernel) {
  std::ostringstream out;
  out << "version 15 (hpcsched)\n";
  out << "timestamp " << kernel.now() << "\n";
  for (const CpuStat& stat : cpu_stats(kernel)) {
    out << "cpu" << stat.cpu << " busy "
        << util::format_fixed(stat.busy_seconds, 6) << "s idle "
        << util::format_fixed(stat.idle_seconds, 6) << "s util "
        << util::format_fixed(stat.utilization_pct, 2) << "% nr_running "
        << stat.nr_running << " current " << stat.current_task << "\n";
  }
  const auto& counters = kernel.counters();
  out << "sched_switches " << counters.context_switches << "\n";
  out << "sched_migrations " << counters.cpu_migrations << "\n";
  out << "sched_preemptions " << counters.preemptions << "\n";
  out << "sched_ticks " << counters.ticks << "\n";
  out << "balance_moves " << counters.balance_moves << "\n";
  out << "active_balances " << counters.active_balances << "\n";
  // Fault-injection / hotplug counters (zero on fault-free runs).
  out << "cpu_offlines " << counters.cpu_offlines << "\n";
  out << "cpu_onlines " << counters.cpu_onlines << "\n";
  out << "hotplug_migrations " << counters.hotplug_migrations << "\n";
  out << "task_kills " << counters.task_kills << "\n";
  // Always-on event-engine counters: dispatch volume/rate and the heap
  // high-water mark (bounded hwm under cancellation churn means the queue
  // is not accumulating dead entries).
  const sim::Engine& engine = kernel.engine();
  const sim::EngineStats& es = engine.stats();
  out << "engine_events " << es.dispatched << "\n";
  out << "engine_cancels " << es.cancelled << "\n";
  out << "engine_pending " << engine.pending() << "\n";
  out << "engine_heap_hwm " << es.heap_high_water << "\n";
  out << "engine_dispatch_rate "
      << util::format_fixed(engine.dispatch_rate(), 0) << " events/sim_s\n";
  return out.str();
}

std::string render_task_sched(kernel::Kernel& kernel, kernel::Tid tid) {
  const kernel::Task* t = kernel.find_task(tid);
  std::ostringstream out;
  if (t == nullptr) {
    out << "task " << tid << ": unknown\n";
    return out.str();
  }
  out << t->name << " (" << tid << ", " << kernel::policy_name(t->policy)
      << ")\n";
  out << "---------------------------------------------------------\n";
  auto row = [&](const char* key, const std::string& value) {
    out << key << " : " << value << "\n";
  };
  row("se.sum_exec_runtime     ",
      util::format_fixed(to_seconds(t->acct.runtime) * 1000.0, 6) + " ms");
  row("se.spin_wait_runtime    ",
      util::format_fixed(to_seconds(t->acct.spin_time) * 1000.0, 6) + " ms");
  row("se.nr_migrations        ", std::to_string(t->acct.migrations));
  row("nr_switches             ", std::to_string(t->acct.switches_out));
  row("nr_involuntary_switches ", std::to_string(t->acct.preemptions));
  row("state                   ", kernel::task_state_name(t->state));
  row("cpu                     ", std::to_string(t->cpu));
  row("nice                    ", std::to_string(t->nice));
  row("vruntime                ", std::to_string(t->vruntime));
  return out.str();
}

}  // namespace hpcs::perf
