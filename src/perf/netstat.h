// /proc-style interconnect statistics reporting.
//
// The network-side counterpart of schedstat: per-link traffic, queueing, and
// utilisation rows plus the fabric-wide message-latency histogram, rendered
// for post-mortem inspection of a run (which links saturated, how much time
// messages spent queued, how fat the latency tail got).
#pragma once

#include <string>
#include <vector>

#include "net/fabric.h"

namespace hpcs::perf {

/// One row of the per-link summary.
struct LinkStat {
  std::string name;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  double busy_seconds = 0.0;    // time spent serialising payloads
  double queued_seconds = 0.0;  // time messages waited for the link
  double utilization_pct = 0.0;
};

/// Collect per-link statistics over [0, now].
std::vector<LinkStat> link_stats(const net::Fabric& fabric, SimTime now);

/// /proc/net-flavoured text: per-link rows, fabric totals, and the
/// message-latency histogram.
std::string render_netstat(const net::Fabric& fabric, SimTime now);

}  // namespace hpcs::perf
