#include "perf/trace_analysis.h"

#include <algorithm>
#include <unordered_map>

namespace hpcs::perf {

TraceAnalysis::TraceAnalysis(const sim::Trace& trace, SimTime end_time) {
  // Open segment per CPU: (tid, start).
  std::unordered_map<int, std::pair<int, SimTime>> open;
  for (const sim::TraceRecord& rec : trace.records()) {
    if (end_time != 0 && rec.time > end_time) break;
    switch (rec.point) {
      case sim::TracePoint::kSchedSwitch: {
        ++switch_count_;
        auto it = open.find(rec.cpu);
        if (it != open.end()) {
          segments_.push_back(ExecSegment{it->second.first, rec.cpu,
                                          it->second.second, rec.time});
        }
        open[rec.cpu] = {rec.tid, rec.time};
        break;
      }
      case sim::TracePoint::kSchedMigrate:
        migrations_.push_back(rec);
        break;
      default:
        break;
    }
  }
  std::stable_sort(segments_.begin(), segments_.end(),
                   [](const ExecSegment& a, const ExecSegment& b) {
                     return a.start < b.start;
                   });
}

std::map<int, SimDuration> TraceAnalysis::runtime_by_task() const {
  std::map<int, SimDuration> out;
  for (const ExecSegment& seg : segments_) out[seg.tid] += seg.duration();
  return out;
}

std::vector<NoiseEvent> TraceAnalysis::interruptions_of(int victim_tid) const {
  // For each victim segment, look at what ran next on that CPU; if the
  // victim comes back later on the same CPU, the time in between was noise.
  std::vector<NoiseEvent> out;
  // Segments per CPU in time order.
  std::map<int, std::vector<const ExecSegment*>> per_cpu;
  for (const ExecSegment& seg : segments_) per_cpu[seg.cpu].push_back(&seg);
  for (const auto& [cpu, segs] : per_cpu) {
    for (std::size_t i = 0; i + 1 < segs.size(); ++i) {
      if (segs[i]->tid != victim_tid) continue;
      if (segs[i + 1]->tid == victim_tid) continue;
      // Find when the victim next runs on this CPU.
      for (std::size_t j = i + 1; j < segs.size(); ++j) {
        if (segs[j]->tid == victim_tid) {
          out.push_back(NoiseEvent{victim_tid, segs[i + 1]->tid, cpu,
                                   segs[i]->end,
                                   segs[j]->start - segs[i]->end});
          break;
        }
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const NoiseEvent& a, const NoiseEvent& b) {
              return a.start < b.start;
            });
  return out;
}

std::vector<std::vector<int>> TraceAnalysis::migration_matrix(
    int num_cpus) const {
  std::vector<std::vector<int>> matrix(
      static_cast<std::size_t>(num_cpus),
      std::vector<int>(static_cast<std::size_t>(num_cpus), 0));
  for (const sim::TraceRecord& rec : migrations_) {
    const int from = rec.arg;   // source CPU
    const int to = rec.cpu;     // destination CPU
    if (from >= 0 && from < num_cpus && to >= 0 && to < num_cpus) {
      ++matrix[static_cast<std::size_t>(from)][static_cast<std::size_t>(to)];
    }
  }
  return matrix;
}

std::map<int, SimDuration> TraceAnalysis::longest_segment_by_task() const {
  std::map<int, SimDuration> out;
  for (const ExecSegment& seg : segments_) {
    out[seg.tid] = std::max(out[seg.tid], seg.duration());
  }
  return out;
}

}  // namespace hpcs::perf
