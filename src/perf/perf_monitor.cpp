#include "perf/perf_monitor.h"

#include <sstream>

#include "util/stats.h"

namespace hpcs::perf {

PerfMonitor::PerfMonitor(kernel::Kernel& kernel) : kernel_(kernel) {
  kernel_.add_trace_hook(
      [this](const sim::TraceRecord& rec) { on_trace(rec); });
}

void PerfMonitor::start() {
  if (running_) return;
  running_ = true;
  window_start_ = kernel_.now();
}

void PerfMonitor::stop() {
  if (!running_) return;
  running_ = false;
  window_elapsed_ += kernel_.now() - window_start_;
}

void PerfMonitor::reset() {
  counts_ = SoftwareEvents{};
  window_elapsed_ = 0;
  window_start_ = kernel_.now();
}

SimDuration PerfMonitor::window() const {
  SimDuration total = window_elapsed_;
  if (running_) total += kernel_.now() - window_start_;
  return total;
}

void PerfMonitor::on_trace(const sim::TraceRecord& rec) {
  if (!running_) return;
  switch (rec.point) {
    case sim::TracePoint::kSchedSwitch: ++counts_.context_switches; break;
    case sim::TracePoint::kSchedMigrate: ++counts_.cpu_migrations; break;
    case sim::TracePoint::kSchedWakeup: ++counts_.wakeups; break;
    case sim::TracePoint::kPreempt: ++counts_.preemptions; break;
    case sim::TracePoint::kSchedFork: ++counts_.forks; break;
    case sim::TracePoint::kSchedExit: ++counts_.exits; break;
    case sim::TracePoint::kTick: ++counts_.ticks; break;
    default: break;
  }
}

std::string PerfMonitor::report() const {
  std::ostringstream out;
  out << " Performance counter stats for 'system wide':\n\n";
  auto row = [&](std::uint64_t value, const char* event) {
    out << "    " << value << "\t" << event << "\n";
  };
  row(counts_.context_switches, "context-switches");
  row(counts_.cpu_migrations, "cpu-migrations");
  row(counts_.wakeups, "sched:sched_wakeup");
  row(counts_.preemptions, "involuntary-preemptions");
  row(counts_.forks, "sched:sched_process_fork");
  row(counts_.exits, "sched:sched_process_exit");
  out << "\n    " << util::format_fixed(to_seconds(window()), 6)
      << " seconds time elapsed\n";
  return out.str();
}

}  // namespace hpcs::perf
