#include "sim/sharded.h"

#include <algorithm>
#include <barrier>
#include <exception>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

namespace hpcs::sim {
namespace {

/// std::barrier requires a noexcept completion; exchange_and_plan() catches
/// everything itself and converts failures into a stopped run.
struct BarrierCompletion {
  ShardedEngine* self;
  void operator()() const noexcept { self->exchange_and_plan(); }
};

using RoundBarrier = std::barrier<BarrierCompletion>;

}  // namespace

ShardedEngine::ShardedEngine(int shards, SimDuration lookahead)
    : lookahead_(lookahead) {
  if (shards < 1) {
    throw std::invalid_argument("ShardedEngine: need at least one shard");
  }
  if (lookahead < 1) {
    throw std::invalid_argument(
        "ShardedEngine: lookahead must be >= 1ns (a zero-delay cross-shard "
        "channel admits no conservative window)");
  }
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ShardedEngine::~ShardedEngine() = default;

Engine& ShardedEngine::shard(int s) {
  return shards_.at(static_cast<std::size_t>(s))->engine;
}

const Engine& ShardedEngine::shard(int s) const {
  return shards_.at(static_cast<std::size_t>(s))->engine;
}

void ShardedEngine::send(int src, int dst, SimTime when, Engine::Callback fn) {
  Shard& source = *shards_.at(static_cast<std::size_t>(src));
  if (src == dst) {
    // Same-shard "send" is just a local event; no lookahead applies.
    source.engine.schedule_at(when, std::move(fn));
    return;
  }
  Shard& sink = *shards_.at(static_cast<std::size_t>(dst));
  static_cast<void>(sink);  // range check only; touched at the barrier
  if (when < source.engine.now() + lookahead_) {
    throw std::logic_error(
        "ShardedEngine::send: cross-shard event at t=" + std::to_string(when) +
        "ns violates the lookahead (source now=" +
        std::to_string(source.engine.now()) + "ns + lookahead=" +
        std::to_string(lookahead_) + "ns)");
  }
  source.outbox.push_back(PendingSend{when, static_cast<std::uint32_t>(src),
                                      static_cast<std::uint32_t>(dst),
                                      source.send_seq++, std::move(fn)});
}

bool ShardedEngine::drained() const {
  for (const auto& sh : shards_) {
    if (sh->engine.pending() != 0 || !sh->outbox.empty()) return false;
  }
  return true;
}

void ShardedEngine::stop(int s) {
  shards_.at(static_cast<std::size_t>(s))->engine.stop();
  stop_.store(true, std::memory_order_relaxed);
}

void ShardedEngine::exchange_and_plan() {
  try {
    // Drain every outbox into one batch and deliver in a deterministic
    // total order: (arrival time, source shard, per-source sequence).  The
    // order is a pure function of the simulation — never of thread timing —
    // which is what makes sharded runs reproducible at any thread count.
    std::vector<PendingSend> batch;
    std::size_t total = 0;
    for (const auto& sh : shards_) total += sh->outbox.size();
    batch.reserve(total);
    for (const auto& sh : shards_) {
      for (auto& msg : sh->outbox) batch.push_back(std::move(msg));
      sh->outbox.clear();
    }
    std::sort(batch.begin(), batch.end(),
              [](const PendingSend& a, const PendingSend& b) {
                if (a.when != b.when) return a.when < b.when;
                if (a.src != b.src) return a.src < b.src;
                return a.seq < b.seq;
              });
    stats_.messages += batch.size();
    stats_.exchange_high_water =
        std::max(stats_.exchange_high_water, batch.size());
    for (auto& msg : batch) {
      shards_[msg.dst]->engine.schedule_at(msg.when, std::move(msg.fn));
    }

    if (stop_.load(std::memory_order_relaxed) ||
        has_error_.load(std::memory_order_relaxed)) {
      done_ = true;
      return;
    }

    SimTime min_next = kNoEvent;
    for (const auto& sh : shards_) {
      min_next = std::min(min_next, sh->engine.next_event_time());
    }
    if (min_next == kNoEvent) {  // every queue drained: the run is complete
      done_ = true;
      return;
    }
    // Conservative window: any message generated this round departs at
    // t >= min_next and arrives at t + lookahead > limit, so no shard can
    // be handed an event at or before a time it already executed past.
    window_limit_ = min_next > kNoEvent - lookahead_
                        ? kNoEvent
                        : min_next + lookahead_ - 1;
    next_shard_.store(0, std::memory_order_relaxed);
    ++stats_.rounds;
  } catch (...) {
    bool expected = false;
    if (has_error_.compare_exchange_strong(expected, true)) {
      first_error_ = std::current_exception();
    }
    done_ = true;
  }
}

void ShardedEngine::run_worker(void* barrier) {
  auto& bar = *static_cast<RoundBarrier*>(barrier);
  std::uint64_t dispatched = 0;
  for (;;) {
    bar.arrive_and_wait();  // completion step exchanged + planned the round
    if (done_) break;
    const SimTime limit = window_limit_;
    for (;;) {
      const std::uint32_t i =
          next_shard_.fetch_add(1, std::memory_order_relaxed);
      if (i >= shards_.size()) break;
      Shard& sh = *shards_[i];
      // A shard with nothing in the window is skipped entirely; its clock
      // lags behind but every future delivery lands ahead of it.
      if (sh.engine.next_event_time() > limit) continue;
      try {
        dispatched += sh.engine.run_until(limit);
      } catch (...) {
        bool expected = false;
        if (has_error_.compare_exchange_strong(expected, true)) {
          first_error_ = std::current_exception();
        }
        stop_.store(true, std::memory_order_relaxed);
      }
    }
  }
  dispatched_this_run_.fetch_add(dispatched, std::memory_order_relaxed);
}

std::uint64_t ShardedEngine::run(int threads) {
  if (running_.exchange(true)) {
    throw std::logic_error("ShardedEngine::run: not reentrant");
  }
  struct RunningGuard {
    std::atomic<bool>& flag;
    ~RunningGuard() { flag.store(false); }
  } guard{running_};

  stop_.store(false, std::memory_order_relaxed);
  has_error_.store(false, std::memory_order_relaxed);
  first_error_ = nullptr;
  done_ = false;
  dispatched_this_run_.store(0, std::memory_order_relaxed);

  if (threads <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : static_cast<int>(hw);
  }
  threads = std::min(threads, num_shards());

  RoundBarrier bar(threads, BarrierCompletion{this});
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads - 1));
  for (int t = 1; t < threads; ++t) {
    pool.emplace_back([this, &bar] { run_worker(&bar); });
  }
  run_worker(&bar);  // the calling thread is worker 0
  for (auto& th : pool) th.join();

  const std::uint64_t dispatched =
      dispatched_this_run_.load(std::memory_order_relaxed);
  stats_.dispatched += dispatched;
  if (has_error_.load()) std::rethrow_exception(first_error_);
  return dispatched;
}

}  // namespace hpcs::sim
