// Conservative parallel discrete-event execution across shards.
//
// One serial Engine simulating a whole 10k-node cluster is the scalability
// wall the ROADMAP calls out: sweep-level parallelism (PR 4) cannot help a
// single large scenario.  ShardedEngine partitions such a scenario into S
// shards — each with its own Engine, event queue, and clock — and runs them
// in parallel under the classic conservative-synchronization contract
// (Chandy/Misra/Bryant, barrier-window style):
//
//   every cross-shard interaction takes at least `lookahead` of simulated
//   time to propagate (for cluster scenarios: the fabric's minimum
//   cross-leaf link latency, see net::FabricConfig::min_cross_block_latency).
//
// Execution proceeds in rounds.  Each round computes the global minimum
// pending event time m and lets every shard run independently up to the
// window limit L = m + lookahead - 1: no message generated during the round
// can arrive at or before L (send time >= m, delay >= lookahead), so no
// shard can receive an event in its past.  At the round barrier, all
// cross-shard sends are drained from per-shard outboxes, sorted by
// (arrival time, source shard, source sequence), and scheduled into their
// destination engines — one deterministic total order, independent of
// thread count and thread timing.  Rounds repeat until every queue drains.
//
// Determinism contract: shard-local execution is the serial Engine's
// (when, seq) order, and the exchange order above is a pure function of the
// simulation, so a ShardedEngine run is bit-for-bit reproducible at any
// thread count.  Equivalence with a *serial* one-engine run additionally
// requires the scenario to make same-instant updates commutative (state
// mutations at an instant must not depend on arrival order), because serial
// and sharded runs interleave same-instant events differently.  The
// batch::run_scale_* cluster scenario is built on exactly that discipline
// and is golden-pinned serial-vs-sharded; see DESIGN.md §9.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/engine.h"
#include "util/time.h"

namespace hpcs::sim {

/// Aggregate accounting across one or more run() calls.
struct ShardedStats {
  std::uint64_t rounds = 0;         // conservative windows executed
  std::uint64_t messages = 0;       // cross-shard events exchanged
  std::uint64_t dispatched = 0;     // events dispatched across all shards
  /// Most cross-shard messages exchanged at one barrier (bounds the
  /// per-round sort cost).
  std::size_t exchange_high_water = 0;
};

class ShardedEngine {
 public:
  /// `lookahead` is the minimum cross-shard propagation delay in simulated
  /// nanoseconds (>= 1; larger lookahead = wider windows = fewer barriers).
  ShardedEngine(int shards, SimDuration lookahead);
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  SimDuration lookahead() const { return lookahead_; }

  /// Shard-local engine: schedule seed events here before run(), and
  /// shard-local (same-shard) events from inside callbacks.  During run(),
  /// shard(s) may only be touched from callbacks executing on shard s.
  Engine& shard(int s);
  const Engine& shard(int s) const;

  /// Cross-shard event: run `fn` on shard `dst` at absolute time `when`.
  /// Must be called either before run() or from a callback currently
  /// executing on shard `src`.  Enforces the conservative constraint
  /// when >= shard(src).now() + lookahead for src != dst (same-shard sends
  /// degrade to a local schedule_at).  Delivery order for equal `when` is
  /// (source shard, per-shard send sequence) — deterministic, never
  /// thread-timing dependent.  During run() the conservative window makes
  /// that constraint sufficient; for sends *between* runs, `when` must also
  /// be >= the destination shard's clock, which can sit ahead of a source
  /// that idled through the previous run (delivery throws otherwise).
  void send(int src, int dst, SimTime when, Engine::Callback fn);

  /// Run all shards conservatively until every queue drains or stop was
  /// requested.  `threads` caps worker parallelism (0 = hardware
  /// concurrency, clamped to the shard count).  Returns events dispatched
  /// by this call.  Not reentrant.  Rethrows the first callback exception
  /// after all workers quiesce (engine state is then indeterminate, as with
  /// a throwing serial run).
  std::uint64_t run(int threads = 0);

  /// From inside a callback executing on shard `s`: finish the current
  /// round (other shards complete their window — the conservative window is
  /// the stop granularity) and make run() return after the barrier.  Shard
  /// `s` itself stops after the current event, keeping its clock at the
  /// stop point exactly like Engine::stop().  A later run() resumes
  /// seamlessly: stop+resume is bit-identical to an uninterrupted run for
  /// scenarios following the same-instant commutativity discipline above.
  void stop(int s);

  /// Request a stop from outside the callbacks (between events); takes
  /// effect at the next round barrier.
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }

  bool stopped() const { return stop_.load(std::memory_order_relaxed); }

  /// True when every shard's queue is empty (the scenario completed).
  bool drained() const;

  const ShardedStats& stats() const { return stats_; }

  /// Internal: the single-threaded barrier step (drain outboxes, deliver in
  /// deterministic order, plan the next window).  Public only so the round
  /// barrier's noexcept completion hook can reach it; never call directly.
  void exchange_and_plan();

 private:
  struct PendingSend {
    SimTime when = 0;
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    std::uint64_t seq = 0;  // per-source send order
    Engine::Callback fn;
  };

  struct Shard {
    Engine engine;
    std::vector<PendingSend> outbox;  // drained at each round barrier
    std::uint64_t send_seq = 0;
  };

  /// Worker loop: one per thread; round state is shared with
  /// exchange_and_plan() (all accesses separated by the barrier's
  /// happens-before edges).
  void run_worker(void* barrier);

  SimDuration lookahead_;
  std::vector<std::unique_ptr<Shard>> shards_;
  // Round state written by exchange_and_plan(), read by workers.
  SimTime window_limit_ = 0;
  bool done_ = false;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::atomic<std::uint32_t> next_shard_{0};
  std::atomic<std::uint64_t> dispatched_this_run_{0};
  std::exception_ptr first_error_;
  std::atomic<bool> has_error_{false};
  ShardedStats stats_;
};

}  // namespace hpcs::sim
