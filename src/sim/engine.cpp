#include "sim/engine.h"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace hpcs::sim {

EventId Engine::schedule_at(SimTime when, Callback fn) {
  if (when < now_) {
    throw std::logic_error("Engine::schedule_at: event in the past");
  }
  const EventId id = next_id_++;
  heap_.push(Entry{when, id});
  live_.emplace(id, std::move(fn));
  return id;
}

EventId Engine::schedule_after(SimDuration delay, Callback fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

bool Engine::cancel(EventId id) { return live_.erase(id) != 0; }

bool Engine::pop_next(Entry& out) {
  while (!heap_.empty()) {
    Entry top = heap_.top();
    heap_.pop();
    if (live_.contains(top.id)) {
      out = top;
      return true;
    }
    // Cancelled entry: skip.
  }
  return false;
}

std::uint64_t Engine::run() {
  stopped_ = false;
  std::uint64_t n = 0;
  Entry e;
  while (!stopped_ && pop_next(e)) {
    now_ = e.when;
    auto it = live_.find(e.id);
    assert(it != live_.end());
    Callback fn = std::move(it->second);
    live_.erase(it);
    fn();
    ++n;
    ++dispatched_;
  }
  return n;
}

std::uint64_t Engine::run_until(SimTime limit) {
  stopped_ = false;
  std::uint64_t n = 0;
  Entry e;
  while (!stopped_) {
    // Peek for the next live event without dispatching past the limit.
    bool found = false;
    while (!heap_.empty()) {
      if (live_.contains(heap_.top().id)) {
        found = true;
        break;
      }
      heap_.pop();
    }
    if (!found) break;
    if (heap_.top().when > limit) break;
    e = heap_.top();
    heap_.pop();
    if (e.when == now_) {
      // Livelock guard: a bounded number of zero-delay events per instant is
      // normal scheduler churn; millions means two components are re-arming
      // each other and the simulation would never advance.
      if (++same_instant_ > 5'000'000) {
        throw std::logic_error("Engine: event livelock at t=" +
                               std::to_string(now_) + "ns");
      }
    } else {
      same_instant_ = 0;
    }
    now_ = e.when;
    auto it = live_.find(e.id);
    assert(it != live_.end());
    Callback fn = std::move(it->second);
    live_.erase(it);
    fn();
    ++n;
    ++dispatched_;
  }
  if (now_ < limit) now_ = limit;
  return n;
}

}  // namespace hpcs::sim
