#include "sim/engine.h"

#include <stdexcept>
#include <string>
#include <utility>

#include "util/time.h"

namespace hpcs::sim {

bool Engine::entry_less(std::uint32_t a, std::uint32_t b) const {
  const Slot& sa = slots_[a];
  const Slot& sb = slots_[b];
  if (sa.when != sb.when) return sa.when < sb.when;
  return sa.seq < sb.seq;
}

void Engine::heap_swap(std::size_t a, std::size_t b) {
  std::swap(heap_[a], heap_[b]);
  slots_[heap_[a]].heap_pos = static_cast<std::uint32_t>(a);
  slots_[heap_[b]].heap_pos = static_cast<std::uint32_t>(b);
}

void Engine::sift_up(std::size_t pos) {
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 2;
    if (!entry_less(heap_[pos], heap_[parent])) break;
    heap_swap(pos, parent);
    pos = parent;
  }
}

void Engine::sift_down(std::size_t pos) {
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t smallest = pos;
    const std::size_t l = 2 * pos + 1;
    const std::size_t r = 2 * pos + 2;
    if (l < n && entry_less(heap_[l], heap_[smallest])) smallest = l;
    if (r < n && entry_less(heap_[r], heap_[smallest])) smallest = r;
    if (smallest == pos) return;
    heap_swap(pos, smallest);
    pos = smallest;
  }
}

void Engine::heap_remove(std::size_t pos) {
  const std::size_t last = heap_.size() - 1;
  slots_[heap_[pos]].heap_pos = kNpos;
  if (pos != last) {
    heap_[pos] = heap_[last];
    slots_[heap_[pos]].heap_pos = static_cast<std::uint32_t>(pos);
    heap_.pop_back();
    // The replacement came from the bottom: it can only need to move down,
    // unless the removed entry was below its own parent's subtree minimum.
    sift_down(pos);
    sift_up(pos);
  } else {
    heap_.pop_back();
  }
}

void Engine::release_slot(std::uint32_t idx) {
  Slot& s = slots_[idx];
  s.fn = nullptr;
  if (++s.gen == 0) s.gen = 1;  // keep ids != kInvalidEventId
  s.next_free = free_head_;
  free_head_ = idx;
}

EventId Engine::schedule_at(SimTime when, Callback fn) {
  if (when < now_) {
    throw std::logic_error("Engine::schedule_at: event in the past");
  }
  std::uint32_t idx;
  if (free_head_ != kNpos) {
    idx = free_head_;
    free_head_ = slots_[idx].next_free;
  } else {
    idx = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[idx];
  s.when = when;
  s.seq = next_seq_++;
  s.fn = std::move(fn);
  s.heap_pos = static_cast<std::uint32_t>(heap_.size());
  heap_.push_back(idx);
  sift_up(s.heap_pos);
  ++stats_.scheduled;
  if (heap_.size() > stats_.heap_high_water) {
    stats_.heap_high_water = heap_.size();
  }
  return make_id(idx, s.gen);
}

EventId Engine::schedule_after(SimDuration delay, Callback fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

bool Engine::cancel(EventId id) {
  const auto idx = static_cast<std::uint32_t>(id >> 32);
  const auto gen = static_cast<std::uint32_t>(id);
  if (idx >= slots_.size()) return false;
  Slot& s = slots_[idx];
  if (s.gen != gen || s.heap_pos == kNpos) return false;  // fired or stale
  heap_remove(s.heap_pos);
  release_slot(idx);
  ++stats_.cancelled;
  return true;
}

void Engine::advance_clock(SimTime when) {
  if (when == now_) {
    if (++same_instant_ > same_instant_limit_) {
      throw std::logic_error("Engine: event livelock at t=" +
                             std::to_string(now_) + "ns");
    }
  } else {
    same_instant_ = 0;
    now_ = when;
  }
}

Engine::Callback Engine::take_top() {
  const std::uint32_t idx = heap_[0];
  Callback fn = std::move(slots_[idx].fn);
  heap_remove(0);
  release_slot(idx);
  return fn;
}

std::uint64_t Engine::run() {
  stopped_ = false;
  // Fresh burst count per driver invocation: the caller regaining control
  // between runs is proof the simulation was not livelocked, and a genuine
  // re-arming cycle still accumulates within this one call.
  same_instant_ = 0;
  std::uint64_t n = 0;
  while (!stopped_ && !heap_.empty()) {
    advance_clock(slots_[heap_[0]].when);
    Callback fn = take_top();
    fn();
    ++n;
    ++stats_.dispatched;
    if (post_dispatch_) post_dispatch_();
  }
  return n;
}

std::uint64_t Engine::run_until(SimTime limit) {
  stopped_ = false;
  // See run(): without this reset, a resumed run whose first event lands
  // exactly on a previous run_until() limit (now_ was caught up to it below)
  // would inherit the previous run's burst count and could spuriously trip
  // the livelock guard — the sharded driver resumes across millions of
  // window limits, so the stale carry-over is not a theoretical problem.
  same_instant_ = 0;
  std::uint64_t n = 0;
  while (!stopped_ && !heap_.empty()) {
    const SimTime when = slots_[heap_[0]].when;
    if (when > limit) break;
    advance_clock(when);
    Callback fn = take_top();
    fn();
    ++n;
    ++stats_.dispatched;
    if (post_dispatch_) post_dispatch_();
  }
  // Catch the clock up to the limit only when the run completed: after a
  // stop() the clock must stay at the stop point so resumed runs replay no
  // simulated time and skip none.  Catching up is a clock advance, so the
  // same-instant burst ends here too.
  if (!stopped_ && now_ < limit) {
    now_ = limit;
    same_instant_ = 0;
  }
  return n;
}

double Engine::dispatch_rate() const {
  if (now_ == 0) return 0.0;
  return static_cast<double>(stats_.dispatched) / to_seconds(now_);
}

}  // namespace hpcs::sim
