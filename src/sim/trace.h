// Structured trace of simulated scheduler activity.
//
// The kernel emits tracepoint records (sched_switch, sched_migrate_task,
// sched_wakeup, ...) mirroring the Linux tracepoints that the paper's perf
// measurements are built on.  The Trace sink stores them for assertions in
// tests and can export a Chrome-tracing JSON file for visual debugging.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/time.h"

namespace hpcs::sim {

enum class TracePoint : std::uint8_t {
  kSchedSwitch,    // prev task -> next task on a CPU
  kSchedWakeup,    // task became runnable
  kSchedMigrate,   // task moved between CPUs
  kSchedFork,      // task created
  kSchedExit,      // task exited
  kTick,           // periodic scheduler tick
  kLoadBalance,    // a balance pass ran
  kPreempt,        // involuntary context switch decision
  kCpuOffline,     // CPU left the online set (hotplug)
  kCpuOnline,      // CPU rejoined the online set (hotplug)
  kTaskKill,       // task killed by fault injection
  kCustom,
};

const char* trace_point_name(TracePoint tp);

struct TraceRecord {
  SimTime time = 0;
  TracePoint point = TracePoint::kCustom;
  int cpu = -1;
  int tid = -1;        // primary task involved (next task for kSchedSwitch)
  int other_tid = -1;  // secondary task (prev task for kSchedSwitch)
  int arg = 0;         // tracepoint-specific (e.g. source CPU for migrations)
  std::string note;
};

class Trace {
 public:
  /// Recording is off by default; the perf monitor counts via callbacks and
  /// does not need stored records.
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  void record(TraceRecord rec);
  void clear() { records_.clear(); }

  std::span<const TraceRecord> records() const { return records_; }
  std::size_t count(TracePoint point) const;

  /// Chrome-tracing ("chrome://tracing" / Perfetto) JSON export.
  std::string to_chrome_json() const;

 private:
  bool enabled_ = false;
  std::vector<TraceRecord> records_;
};

}  // namespace hpcs::sim
