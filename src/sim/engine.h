// The discrete-event simulation core.
//
// Every component of the simulated node (the kernel tick, task completions,
// daemon wakeups, MPI message deliveries) is an event scheduled on this
// engine.  Events at equal timestamps are delivered in scheduling order
// (FIFO), which together with the deterministic RNG makes whole runs
// bit-for-bit reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "util/time.h"

namespace hpcs::sim {

/// Identifies a scheduled event so it can be cancelled (e.g. a task's
/// work-completion event becomes stale when the task is preempted).
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class Engine {
 public:
  using Callback = std::function<void()>;

  /// Schedule `fn` to run at absolute time `when` (>= now()).
  EventId schedule_at(SimTime when, Callback fn);

  /// Schedule `fn` to run `delay` after now().
  EventId schedule_after(SimDuration delay, Callback fn);

  /// Cancel a pending event.  Returns false when the event already fired or
  /// was cancelled before (both are normal in scheduler churn).
  bool cancel(EventId id);

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Number of events still pending (cancelled events excluded).
  std::size_t pending() const { return live_.size(); }

  /// Run until the event queue drains or `stop()` is called.
  /// Returns the number of events dispatched.
  std::uint64_t run();

  /// Run events with time <= `limit`; afterwards now() == min(limit, last
  /// event time).  Events exactly at `limit` are dispatched.
  std::uint64_t run_until(SimTime limit);

  /// Request that run()/run_until() return after the current event.
  void stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

  /// Total events dispatched over the engine's lifetime.
  std::uint64_t dispatched() const { return dispatched_; }

 private:
  struct Entry {
    SimTime when;
    EventId id;
    // Min-heap on (when, id): ties dispatch in scheduling order.
    bool operator>(const Entry& other) const {
      if (when != other.when) return when > other.when;
      return id > other.id;
    }
  };

  /// Pops the next live entry.  Returns false when the queue is drained.
  bool pop_next(Entry& out);

  SimTime now_ = 0;
  EventId next_id_ = 1;
  bool stopped_ = false;
  std::uint64_t dispatched_ = 0;
  std::uint64_t same_instant_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  // id -> callback for pending events; absence means cancelled or fired.
  std::unordered_map<EventId, Callback> live_;
};

}  // namespace hpcs::sim
