// The discrete-event simulation core.
//
// Every component of the simulated node (the kernel tick, task completions,
// daemon wakeups, MPI message deliveries) is an event scheduled on this
// engine.  Events at equal timestamps are delivered in scheduling order
// (FIFO), which together with the deterministic RNG makes whole runs
// bit-for-bit reproducible.
//
// The queue is an indexed binary heap over a pooled slot array: schedule,
// dispatch, and cancel are all O(log n) with no per-event map nodes, and
// cancel removes the entry in place — cancellation-heavy workloads (timer
// re-arming, preemption churn) cannot grow the heap with tombstones.  Slot
// records (including their callback storage) are recycled through a free
// list, so steady-state scheduling performs no allocation beyond what the
// callbacks themselves capture.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/time.h"

namespace hpcs::sim {

/// Identifies a scheduled event so it can be cancelled (e.g. a task's
/// work-completion event becomes stale when the task is preempted).
/// Encodes (slot index, generation); a stale id — already fired or
/// cancelled — can never alias a later event in the same slot.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

/// Sentinel returned by Engine::next_event_time() when the queue is empty;
/// compares greater than every real timestamp, so schedulers can take the
/// minimum across engines without special-casing drained ones.
inline constexpr SimTime kNoEvent = ~SimTime{0};

/// A bounded number of zero-delay events per instant is normal scheduler
/// churn; millions means two components are re-arming each other and the
/// simulation would never advance (see Engine::set_same_instant_limit).
inline constexpr std::uint64_t kDefaultSameInstantLimit = 5'000'000;

/// Always-on, O(1)-maintained engine counters.  Cheap enough for production
/// sweeps; surfaced through perf::render_schedstat.
struct EngineStats {
  std::uint64_t scheduled = 0;   // schedule_at/after calls accepted
  std::uint64_t dispatched = 0;  // callbacks actually run
  std::uint64_t cancelled = 0;   // successful cancel() calls
  /// Most events ever simultaneously pending: bounds the heap's memory and
  /// proves cancellations do not accumulate (no tombstone growth).
  std::size_t heap_high_water = 0;
};

class Engine {
 public:
  using Callback = std::function<void()>;

  /// Schedule `fn` to run at absolute time `when` (>= now()).
  EventId schedule_at(SimTime when, Callback fn);

  /// Schedule `fn` to run `delay` after now().
  EventId schedule_after(SimDuration delay, Callback fn);

  /// Cancel a pending event in place.  Returns false when the event already
  /// fired or was cancelled before (both are normal in scheduler churn).
  bool cancel(EventId id);

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Number of events still pending (cancelled events are removed eagerly).
  std::size_t pending() const { return heap_.size(); }

  /// Timestamp of the earliest pending event, or kNoEvent when the queue is
  /// empty.  The sharded driver uses this to derive each conservative
  /// execution window.
  SimTime next_event_time() const {
    return heap_.empty() ? kNoEvent : slots_[heap_[0]].when;
  }

  /// Run until the event queue drains or `stop()` is called.
  /// Returns the number of events dispatched.
  std::uint64_t run();

  /// Run events with time <= `limit`; afterwards now() == limit unless a
  /// callback called stop(), in which case the clock stays at the stop point
  /// so a resumed run does not skip simulated time.  Events exactly at
  /// `limit` are dispatched.
  std::uint64_t run_until(SimTime limit);

  /// Request that run()/run_until() return after the current event.
  void stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

  /// Install (or clear, with nullptr) a hook that runs after every dispatched
  /// event.  Used by the kernel invariant checker to audit scheduler state at
  /// event boundaries — the only instants where no operation is mid-flight.
  /// Single slot: the last installer wins; the hook must outlive any run.
  void set_post_dispatch(Callback fn) { post_dispatch_ = std::move(fn); }

  /// Total events dispatched over the engine's lifetime.
  std::uint64_t dispatched() const { return stats_.dispatched; }

  /// Consecutive events dispatched at the current instant by the current
  /// run (the livelock guard's counter).  Reset whenever the clock advances
  /// and at the start of every run()/run_until(): a driver that regained
  /// control and resumed is by definition not livelocked, so a resumed run
  /// whose first event lands exactly on a previous run_until() limit starts
  /// from a fresh count instead of inheriting a stale burst.
  std::uint64_t same_instant_burst() const { return same_instant_; }

  /// Override the same-instant livelock threshold (default five million).
  /// Clamped to >= 1.  Exposed so tests can exercise the guard without
  /// dispatching millions of events.
  void set_same_instant_limit(std::uint64_t limit) {
    same_instant_limit_ = limit == 0 ? 1 : limit;
  }

  const EngineStats& stats() const { return stats_; }

  /// Events dispatched per simulated second (0 before time advances).
  double dispatch_rate() const;

 private:
  static constexpr std::uint32_t kNpos = 0xffffffffu;

  /// One pooled event record.  `heap_pos` doubles as the liveness flag:
  /// kNpos means the slot is free (on the free list).
  struct Slot {
    SimTime when = 0;
    std::uint64_t seq = 0;       // tie-break: dispatch in scheduling order
    Callback fn;
    std::uint32_t gen = 1;       // bumped on release; part of the EventId
    std::uint32_t heap_pos = kNpos;
    std::uint32_t next_free = kNpos;
  };

  static EventId make_id(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(slot) << 32) | gen;
  }

  bool entry_less(std::uint32_t a, std::uint32_t b) const;
  void sift_up(std::size_t pos);
  void sift_down(std::size_t pos);
  void heap_swap(std::size_t a, std::size_t b);
  /// Detach the heap entry at `pos` (any position) without dispatching.
  void heap_remove(std::size_t pos);
  void release_slot(std::uint32_t idx);

  /// Advance the clock to `when`, enforcing the same-instant livelock guard
  /// (shared by run() and run_until()).
  void advance_clock(SimTime when);

  /// Pop the top entry and return its callback (slot is recycled first so
  /// the callback may freely schedule new events).
  Callback take_top();

  SimTime now_ = 0;
  Callback post_dispatch_;
  std::uint64_t next_seq_ = 1;
  bool stopped_ = false;
  std::uint64_t same_instant_ = 0;
  std::uint64_t same_instant_limit_ = kDefaultSameInstantLimit;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNpos;
  std::vector<std::uint32_t> heap_;  // slot indices, min-heap on (when, seq)
  EngineStats stats_;
};

}  // namespace hpcs::sim
