#include "sim/trace.h"

#include <sstream>

namespace hpcs::sim {

const char* trace_point_name(TracePoint tp) {
  switch (tp) {
    case TracePoint::kSchedSwitch: return "sched_switch";
    case TracePoint::kSchedWakeup: return "sched_wakeup";
    case TracePoint::kSchedMigrate: return "sched_migrate_task";
    case TracePoint::kSchedFork: return "sched_fork";
    case TracePoint::kSchedExit: return "sched_exit";
    case TracePoint::kTick: return "tick";
    case TracePoint::kLoadBalance: return "load_balance";
    case TracePoint::kPreempt: return "preempt";
    case TracePoint::kCpuOffline: return "cpu_offline";
    case TracePoint::kCpuOnline: return "cpu_online";
    case TracePoint::kTaskKill: return "task_kill";
    case TracePoint::kCustom: return "custom";
  }
  return "?";
}

void Trace::record(TraceRecord rec) {
  if (!enabled_) return;
  records_.push_back(std::move(rec));
}

std::size_t Trace::count(TracePoint point) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.point == point) ++n;
  }
  return n;
}

std::string Trace::to_chrome_json() const {
  std::ostringstream out;
  out << "[\n";
  bool first = true;
  for (const auto& r : records_) {
    if (!first) out << ",\n";
    first = false;
    out << R"(  {"name": ")" << trace_point_name(r.point)
        << R"(", "ph": "i", "ts": )" << (r.time / 1000)
        << R"(, "pid": 0, "tid": )" << r.cpu
        << R"(, "s": "t", "args": {"task": )" << r.tid << R"(, "other": )"
        << r.other_tid << R"(, "arg": )" << r.arg << "}}";
  }
  out << "\n]\n";
  return out.str();
}

}  // namespace hpcs::sim
