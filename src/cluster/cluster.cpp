#include "cluster/cluster.h"

#include <algorithm>
#include <mutex>
#include <stdexcept>

#include "mpi/rank_behavior.h"
#include "rtc/coordinator.h"
#include "util/log.h"
#include "util/rng.h"

namespace hpcs::cluster {

using kernel::Policy;
using kernel::Task;
using kernel::Tid;

Cluster::Cluster(sim::Engine& engine, ClusterConfig config)
    : engine_(engine), config_(config) {
  if (config_.nodes <= 0) {
    throw std::invalid_argument("Cluster: nodes must be positive");
  }
  net::FabricConfig fabric_config;
  if (config_.fabric.has_value()) {
    fabric_config = *config_.fabric;
    fabric_config.nodes = config_.nodes;
  } else {
    static std::once_flag deprecation_once;
    std::call_once(deprecation_once, [] {
      HPCS_WARN("ClusterConfig::net_latency is deprecated; set "
                "ClusterConfig::fabric (falling back to a uniform "
                "constant-latency fabric)");
    });
    fabric_config = net::FabricConfig::uniform(config_.nodes,
                                               config_.net_latency);
  }
  fabric_ = std::make_unique<net::Fabric>(fabric_config);
  util::SplitMix64 seeder(config_.seed);
  nodes_.reserve(static_cast<std::size_t>(config_.nodes));
  for (int i = 0; i < config_.nodes; ++i) {
    auto node = std::make_unique<kernel::Kernel>(engine_, config_.node);
    if (config_.install_hpl) hpl::install(*node, config_.hpl_options);
    node->boot();
    if (config_.spawn_daemons) {
      workloads::NoiseConfig noise = config_.noise;
      noise.seed = seeder.next();  // independent daemon phases per node
      workloads::spawn_standard_node_daemons(*node, noise);
    }
    nodes_.push_back(std::move(node));
  }
}

Cluster::~Cluster() = default;

/// The per-node launcher daemon (think Open MPI's orted): forks the node's
/// local ranks, then blocks until they all exited.
class OrtedBehavior : public kernel::Behavior {
 public:
  OrtedBehavior(ClusterJob& job, int slot, Policy policy, int rt_prio,
                kernel::CondId done_cond)
      : job_(job), slot_(slot), policy_(policy), rt_prio_(rt_prio),
        done_cond_(done_cond) {}

  kernel::Action next(kernel::Kernel&, Task& self) override {
    switch (step_++) {
      case 0:
        return kernel::Action::compute(300 * kMicrosecond);  // job setup
      case 1:
        job_.spawn_local_ranks(slot_, policy_, rt_prio_, self.tid);
        return kernel::Action::wait(done_cond_, 0);
      default:
        return kernel::Action::exit_task();
    }
  }

 private:
  ClusterJob& job_;
  int slot_;
  Policy policy_;
  int rt_prio_;
  kernel::CondId done_cond_;
  int step_ = 0;
};

namespace {
std::vector<int> all_nodes(const Cluster& cluster) {
  std::vector<int> nodes(static_cast<std::size_t>(cluster.num_nodes()));
  for (int i = 0; i < cluster.num_nodes(); ++i)
    nodes[static_cast<std::size_t>(i)] = i;
  return nodes;
}
}  // namespace

ClusterJob::ClusterJob(Cluster& cluster, mpi::MpiConfig config,
                       mpi::Program program)
    : ClusterJob(cluster, config, std::move(program), all_nodes(cluster)) {}

ClusterJob::ClusterJob(Cluster& cluster, mpi::MpiConfig config,
                       mpi::Program program, std::vector<int> nodes)
    : cluster_(cluster), config_(config), program_(std::move(program)),
      nodes_(std::move(nodes)) {
  program_.validate();
  if (nodes_.empty()) {
    throw std::invalid_argument("ClusterJob: node set must not be empty");
  }
  std::vector<bool> seen(static_cast<std::size_t>(cluster.num_nodes()), false);
  for (int n : nodes_) {
    if (n < 0 || n >= cluster.num_nodes()) {
      throw std::invalid_argument("ClusterJob: node index out of range");
    }
    if (seen[static_cast<std::size_t>(n)]) {
      throw std::invalid_argument("ClusterJob: duplicate node in node set");
    }
    seen[static_cast<std::size_t>(n)] = true;
  }
  if (config_.nranks % static_cast<int>(nodes_.size()) != 0) {
    throw std::invalid_argument(
        "ClusterJob: total ranks must divide evenly across the job's nodes");
  }
  tid_to_rank_.resize(nodes_.size());
  node_remaining_.resize(nodes_.size(), 0);
  orted_tids_.resize(nodes_.size(), kernel::kInvalidTid);
  node_done_conds_.resize(nodes_.size(), kernel::kInvalidCond);
  coords_.resize(nodes_.size(), nullptr);
  coord_ids_.resize(nodes_.size(), 0);
  rank_states_.resize(static_cast<std::size_t>(config_.nranks));
  mailbox_ = std::make_unique<net::Mailbox>(
      cluster_.engine(), cluster_.fabric(),
      [this](int node) -> kernel::Kernel& { return cluster_.node(node); },
      [this](int rank) { return node_of_rank(rank); }, config_.nranks);
}

void ClusterJob::attach_coordinator(int slot, rtc::Coordinator& coordinator) {
  if (slot < 0 || slot >= static_cast<int>(nodes_.size())) {
    throw std::invalid_argument("attach_coordinator: slot out of range");
  }
  const auto uslot = static_cast<std::size_t>(slot);
  if (coords_[uslot] != nullptr) {
    throw std::logic_error("attach_coordinator: slot already attached");
  }
  coords_[uslot] = &coordinator;
  coord_ids_[uslot] = coordinator.register_runtime();
}

rtc::Coordinator* ClusterJob::coordinator(int rank) {
  return coords_[static_cast<std::size_t>(slot_of_rank(rank))];
}

int ClusterJob::coordinator_id(int rank) const {
  return coord_ids_[static_cast<std::size_t>(slot_of_rank(rank))];
}

int ClusterJob::total_ranks() const { return config_.nranks; }

int ClusterJob::node_of_rank(int rank) const {
  return nodes_.at(static_cast<std::size_t>(slot_of_rank(rank)));
}

void ClusterJob::launch(Policy policy, int rt_prio) {
  if (launched_) throw std::logic_error("ClusterJob::launch called twice");
  launched_ = true;
  rank_policy_ = policy;
  rank_rt_prio_ = rt_prio;
  start_time_ = cluster_.engine().now();
  ranks_alive_ = config_.nranks;
  for (std::size_t slot = 0; slot < nodes_.size(); ++slot) {
    kernel::Kernel& k = cluster_.node(nodes_[slot]);
    node_done_conds_[slot] = k.cond_create();
    node_remaining_[slot] = ranks_per_node();
    k.add_exit_listener([this, slot](Task& t) {
      on_task_exit(static_cast<int>(slot), t);
    });
    kernel::SpawnSpec spec;
    spec.name = "orted/" + std::to_string(nodes_[slot]);
    spec.policy = Policy::kNormal;  // the launcher itself is a normal daemon
    spec.behavior = std::make_unique<OrtedBehavior>(
        *this, static_cast<int>(slot), policy, rt_prio,
        node_done_conds_[slot]);
    orted_tids_[slot] = k.spawn(std::move(spec));
  }
}

void ClusterJob::spawn_local_ranks(int slot, Policy policy, int rt_prio,
                                   Tid parent) {
  const auto uslot = static_cast<std::size_t>(slot);
  const int per_node = ranks_per_node();
  if (aborted_) {
    // The job died while this orted was still setting up: fork nothing and
    // account the never-born ranks as gone (which also releases the orted).
    for (int local = 0; local < per_node; ++local) rank_gone(slot);
    return;
  }
  kernel::Kernel& k = cluster_.node(nodes_[uslot]);
  for (int local = 0; local < per_node; ++local) {
    const int rank = slot * per_node + local;
    kernel::SpawnSpec spec;
    spec.name = "rank" + std::to_string(rank);
    spec.policy = policy;
    spec.rt_prio = rt_prio;
    spec.parent = parent;
    spec.behavior = std::make_unique<mpi::RankBehavior>(*this, rank);
    const Tid tid = k.spawn(std::move(spec));
    RankState& rs = rank_states_[static_cast<std::size_t>(rank)];
    rs.tid = tid;
    rs.progress_anchor = cluster_.engine().now();
    tid_to_rank_[uslot][tid] = rank;
  }
}

void ClusterJob::on_task_exit(int slot, Task& t) {
  const auto& local = tid_to_rank_[static_cast<std::size_t>(slot)];
  auto it = local.find(t.tid);
  if (it == local.end()) return;
  const int rank = it->second;
  RankState& rs = rank_states_[static_cast<std::size_t>(rank)];
  if (rs.tid != t.tid) return;  // a previous incarnation, already handled
  if (t.killed) {
    if (aborted_) {
      // Our own abort kill: no detector round-trip needed.
      rs.dead = true;
      rank_gone(slot);
      return;
    }
    // The failure detector notices after the heartbeat timeout.
    rs.death_time = cluster_.engine().now();
    const Tid tid = t.tid;
    cluster_.engine().schedule_after(
        config_.fault_detect_latency,
        [this, rank, tid] { handle_rank_death(rank, tid); });
    return;
  }
  rs.finished = true;
  rank_gone(slot);
}

bool ClusterJob::inject_rank_failure(int rank) {
  if (!launched_ || rank < 0 || rank >= config_.nranks) return false;
  RankState& rs = rank_states_[static_cast<std::size_t>(rank)];
  if (rs.dead || rs.finished || rs.tid == kernel::kInvalidTid) return false;
  return cluster_.node(node_of_rank(rank)).kill_task(rs.tid);
}

std::uint64_t ClusterJob::rank_sync_count(int rank) const {
  if (rank < 0 || rank >= static_cast<int>(rank_states_.size())) return 0;
  return rank_states_[static_cast<std::size_t>(rank)].synced;
}

void ClusterJob::handle_rank_death(int rank, Tid tid) {
  RankState& rs = rank_states_[static_cast<std::size_t>(rank)];
  if (rs.tid != tid || rs.dead || rs.finished) return;  // stale detection
  rs.dead = true;
  fault_report_.add({cluster_.engine().now(),
                     fault::FaultKind::kRankDeathDetected, -1, rank, ""});
  // Everything since the last committed sync point is gone, including a
  // collective traversal that fired but never committed.
  if (rs.death_time > rs.progress_anchor) {
    fault_report_.lost_work_ns += rs.death_time - rs.progress_anchor;
  }
  // Void the corpse's pending flat arrival so no match point fires (or
  // waits) on its behalf; surviving peers keep waiting for the replacement.
  // (Stepwise collectives need no voiding: the replacement replays the dead
  // rank's schedule and the mailbox dedups its already-sent messages.)
  if (rs.waiting) {
    rs.waiting = false;
    auto mit = matches_.find(rs.wait_key);
    if (mit != matches_.end()) {
      Match& m = mit->second;
      m.arrived -= 1;
      m.waiters.erase(std::find(m.waiters.begin(), m.waiters.end(), rank));
      if (m.arrived <= 0) matches_.erase(mit);
    }
  }
  if (!aborted_ && config_.restart_failed_ranks &&
      rs.restarts < config_.max_restarts) {
    // Detection latency already elapsed + the respawn delay still to come.
    fault_report_.restart_overhead_ns +=
        (cluster_.engine().now() - rs.death_time) + config_.restart_delay;
    cluster_.engine().schedule_after(
        config_.restart_delay, [this, rank, tid] { respawn_rank(rank, tid); });
  } else {
    fault_report_.add({cluster_.engine().now(), fault::FaultKind::kJobAbort,
                       -1, rank, "unrecoverable rank death"});
    if (aborted_ || finished_) {
      rank_gone(slot_of_rank(rank));  // do_abort will not run again
    } else {
      do_abort();  // accounts this corpse along with the others
    }
  }
}

void ClusterJob::respawn_rank(int rank, Tid old_tid) {
  RankState& rs = rank_states_[static_cast<std::size_t>(rank)];
  if (aborted_ || finished_ || rs.tid != old_tid || !rs.dead) return;
  rs.restarts += 1;
  rs.dead = false;
  const int slot = slot_of_rank(rank);
  kernel::Kernel& k = cluster_.node(nodes_[static_cast<std::size_t>(slot)]);
  kernel::SpawnSpec spec;
  spec.name =
      "rank" + std::to_string(rank) + ".r" + std::to_string(rs.restarts);
  spec.policy = rank_policy_;
  spec.rt_prio = rank_rt_prio_;
  spec.parent = orted_tids_[static_cast<std::size_t>(slot)];
  // Lightweight checkpoint restart: replay the program fast-forwarding past
  // the `synced` sync points this rank already committed.  A fired but
  // uncommitted match point is redone, not fast-forwarded past.
  spec.behavior = std::make_unique<mpi::RankBehavior>(*this, rank, rs.synced,
                                                      rs.fired_uncommitted);
  rs.progress_anchor = cluster_.engine().now();
  const Tid tid = k.spawn(std::move(spec));
  rs.tid = tid;
  tid_to_rank_[static_cast<std::size_t>(slot)][tid] = rank;
  fault_report_.add({cluster_.engine().now(), fault::FaultKind::kRankRestart,
                     -1, rank,
                     "ff=" + std::to_string(rs.synced) +
                         (rs.fired_uncommitted ? "+redo" : "")});
}

void ClusterJob::abort() { do_abort(); }

void ClusterJob::do_abort() {
  if (!launched_ || finished_ || aborted_) return;
  aborted_ = true;
  failed_ = true;
  // Kill every rank that exists; exit listeners drain ranks_alive_ through
  // the normal path.  Ranks whose orted has not forked them yet are drained
  // by spawn_local_ranks when it wakes; detected corpses (restart pending)
  // and undetected ones (detector in flight, no body to kill) are accounted
  // here.
  for (int rank = 0; rank < config_.nranks; ++rank) {
    RankState& rs = rank_states_[static_cast<std::size_t>(rank)];
    if (rs.finished) continue;
    const int slot = slot_of_rank(rank);
    if (rs.dead) {
      rank_gone(slot);
      continue;
    }
    if (rs.tid == kernel::kInvalidTid) continue;  // not forked yet
    if (!cluster_.node(nodes_[static_cast<std::size_t>(slot)])
             .kill_task(rs.tid)) {
      rs.dead = true;
      rank_gone(slot);
    }
  }
}

void ClusterJob::rank_gone(int slot) {
  const auto uslot = static_cast<std::size_t>(slot);
  if (--node_remaining_[uslot] == 0) {
    cluster_.node(nodes_[uslot]).cond_signal(node_done_conds_[uslot]);
  }
  if (--ranks_alive_ == 0 && !finished_) {
    finished_ = true;
    finish_time_ = cluster_.engine().now();
    if (on_finish_) on_finish_();
  }
}

std::optional<kernel::CondId> ClusterJob::arrive(std::uint32_t site,
                                                 std::uint64_t visit,
                                                 std::uint32_t pair_id,
                                                 int needed, int rank) {
  const int my_node = node_of_rank(rank);
  const auto key = std::make_tuple(site, visit, pair_id);
  auto [it, inserted] = matches_.try_emplace(key);
  Match& m = it->second;
  m.arrived += 1;
  if (m.arrived >= needed) {
    // Fired: every participant matched — restart checkpoints do NOT advance
    // yet (the credit lands in sync_commit() once each rank finishes paying
    // the collective cost).  Release local waiters immediately and remote
    // waiters after the fabric's delivery delay.
    for (int w : m.waiters) {
      RankState& ws = rank_states_[static_cast<std::size_t>(w)];
      ws.fired_uncommitted = true;
      ws.waiting = false;
    }
    if (rank >= 0 && rank < static_cast<int>(rank_states_.size())) {
      rank_states_[static_cast<std::size_t>(rank)].fired_uncommitted = true;
    }
    const Match fired = std::move(m);
    matches_.erase(it);
    for (const auto& [node, cond] : fired.node_conds) {
      kernel::Kernel* k = &cluster_.node(node);
      if (node == my_node) {
        k->cond_signal(cond);
      } else {
        const SimTime at = cluster_.fabric().deliver(
            my_node, node, 0, cluster_.engine().now());
        cluster_.engine().schedule_at(at,
                                      [k, c = cond] { k->cond_signal(c); });
      }
    }
    return std::nullopt;
  }
  m.waiters.push_back(rank);
  if (rank >= 0 && rank < static_cast<int>(rank_states_.size())) {
    RankState& rs = rank_states_[static_cast<std::size_t>(rank)];
    rs.waiting = true;
    rs.wait_key = key;
  }
  auto [cit, fresh] = m.node_conds.try_emplace(my_node, kernel::kInvalidCond);
  if (fresh) cit->second = cluster_.node(my_node).cond_create();
  return cit->second;
}

void ClusterJob::collective_complete(std::uint32_t site, std::uint64_t visit,
                                     int rank) {
  mailbox_->complete(site, visit, rank);
  if (rank >= 0 && rank < static_cast<int>(rank_states_.size())) {
    RankState& rs = rank_states_[static_cast<std::size_t>(rank)];
    rs.synced += 1;
    rs.progress_anchor = cluster_.engine().now();
  }
}

void ClusterJob::sync_commit(int rank) {
  if (rank < 0 || rank >= static_cast<int>(rank_states_.size())) return;
  RankState& rs = rank_states_[static_cast<std::size_t>(rank)];
  rs.synced += 1;
  rs.fired_uncommitted = false;
  rs.progress_anchor = cluster_.engine().now();
}

util::Rng ClusterJob::rank_rng(int rank) const {
  return util::Rng(config_.seed)
      .substream(0x5a5a5a5aULL + static_cast<std::uint64_t>(rank));
}

double ClusterJob::run_speed_factor() const {
  if (config_.run_speed_sigma == 0.0) return 1.0;
  util::Rng rng = util::Rng(config_.seed).substream(0xfaceULL);
  return rng.lognormal(0.0, config_.run_speed_sigma);
}

}  // namespace hpcs::cluster
