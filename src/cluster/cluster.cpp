#include "cluster/cluster.h"

#include <algorithm>
#include <stdexcept>

#include "mpi/rank_behavior.h"
#include "util/rng.h"

namespace hpcs::cluster {

using kernel::Policy;
using kernel::Task;
using kernel::Tid;

Cluster::Cluster(sim::Engine& engine, ClusterConfig config)
    : engine_(engine), config_(config) {
  if (config_.nodes <= 0) {
    throw std::invalid_argument("Cluster: nodes must be positive");
  }
  util::SplitMix64 seeder(config_.seed);
  nodes_.reserve(static_cast<std::size_t>(config_.nodes));
  for (int i = 0; i < config_.nodes; ++i) {
    auto node = std::make_unique<kernel::Kernel>(engine_, config_.node);
    if (config_.install_hpl) hpl::install(*node, config_.hpl_options);
    node->boot();
    if (config_.spawn_daemons) {
      workloads::NoiseConfig noise = config_.noise;
      noise.seed = seeder.next();  // independent daemon phases per node
      workloads::spawn_standard_node_daemons(*node, noise);
    }
    nodes_.push_back(std::move(node));
  }
}

Cluster::~Cluster() = default;

/// The per-node launcher daemon (think Open MPI's orted): forks the node's
/// local ranks, then blocks until they all exited.
class OrtedBehavior : public kernel::Behavior {
 public:
  OrtedBehavior(ClusterJob& job, int node, Policy policy, int rt_prio,
                kernel::CondId done_cond)
      : job_(job), node_(node), policy_(policy), rt_prio_(rt_prio),
        done_cond_(done_cond) {}

  kernel::Action next(kernel::Kernel&, Task& self) override {
    switch (step_++) {
      case 0:
        return kernel::Action::compute(300 * kMicrosecond);  // job setup
      case 1:
        job_.spawn_local_ranks(node_, policy_, rt_prio_, self.tid);
        return kernel::Action::wait(done_cond_, 0);
      default:
        return kernel::Action::exit_task();
    }
  }

 private:
  ClusterJob& job_;
  int node_;
  Policy policy_;
  int rt_prio_;
  kernel::CondId done_cond_;
  int step_ = 0;
};

ClusterJob::ClusterJob(Cluster& cluster, mpi::MpiConfig config,
                       mpi::Program program)
    : cluster_(cluster), config_(config), program_(std::move(program)) {
  program_.validate();
  if (config_.nranks % cluster.num_nodes() != 0) {
    throw std::invalid_argument(
        "ClusterJob: total ranks must divide evenly across nodes");
  }
  node_rank_tids_.resize(static_cast<std::size_t>(cluster.num_nodes()));
}

int ClusterJob::total_ranks() const { return config_.nranks; }

int ClusterJob::node_of_rank(int rank) const {
  return rank / (config_.nranks / cluster_.num_nodes());
}

void ClusterJob::launch(Policy policy, int rt_prio) {
  if (launched_) throw std::logic_error("ClusterJob::launch called twice");
  launched_ = true;
  start_time_ = cluster_.engine().now();
  ranks_alive_ = config_.nranks;
  for (int n = 0; n < cluster_.num_nodes(); ++n) {
    kernel::Kernel& k = cluster_.node(n);
    const kernel::CondId done = k.cond_create();
    // Wake the orted when this node's local ranks are all gone.
    auto remaining = std::make_shared<int>(config_.nranks /
                                           cluster_.num_nodes());
    k.add_exit_listener([this, n, done, remaining, &k](Task& t) {
      const auto& local = node_rank_tids_[static_cast<std::size_t>(n)];
      if (std::find(local.begin(), local.end(), t.tid) == local.end()) return;
      on_rank_exit();
      if (--*remaining == 0) k.cond_signal(done);
    });
    kernel::SpawnSpec spec;
    spec.name = "orted/" + std::to_string(n);
    spec.policy = Policy::kNormal;  // the launcher itself is a normal daemon
    spec.behavior =
        std::make_unique<OrtedBehavior>(*this, n, policy, rt_prio, done);
    k.spawn(std::move(spec));
  }
}

void ClusterJob::spawn_local_ranks(int node, Policy policy, int rt_prio,
                                   Tid parent) {
  kernel::Kernel& k = cluster_.node(node);
  const int per_node = config_.nranks / cluster_.num_nodes();
  for (int local = 0; local < per_node; ++local) {
    const int rank = node * per_node + local;
    kernel::SpawnSpec spec;
    spec.name = "rank" + std::to_string(rank);
    spec.policy = policy;
    spec.rt_prio = rt_prio;
    spec.parent = parent;
    spec.behavior = std::make_unique<mpi::RankBehavior>(*this, rank);
    node_rank_tids_[static_cast<std::size_t>(node)].push_back(
        k.spawn(std::move(spec)));
  }
}

void ClusterJob::on_rank_exit() {
  if (--ranks_alive_ == 0) {
    finished_ = true;
    finish_time_ = cluster_.engine().now();
  }
}

std::optional<kernel::CondId> ClusterJob::arrive(std::uint32_t site,
                                                 std::uint64_t visit,
                                                 std::uint32_t pair_id,
                                                 int needed, int rank) {
  const int my_node = node_of_rank(rank);
  const auto key = std::make_tuple(site, visit, pair_id);
  auto [it, inserted] = matches_.try_emplace(key);
  Match& m = it->second;
  m.arrived += 1;
  if (m.arrived >= needed) {
    // Fire: local waiters immediately, remote waiters after the wire delay.
    const Match fired = std::move(m);
    matches_.erase(it);
    for (const auto& [node, cond] : fired.node_conds) {
      kernel::Kernel* k = &cluster_.node(node);
      if (node == my_node) {
        k->cond_signal(cond);
      } else {
        cluster_.engine().schedule_after(
            cluster_.config().net_latency, [k, c = cond] { k->cond_signal(c); });
      }
    }
    return std::nullopt;
  }
  auto [cit, fresh] = m.node_conds.try_emplace(my_node, kernel::kInvalidCond);
  if (fresh) cit->second = cluster_.node(my_node).cond_create();
  return cit->second;
}

util::Rng ClusterJob::rank_rng(int rank) const {
  return util::Rng(config_.seed)
      .substream(0x5a5a5a5aULL + static_cast<std::uint64_t>(rank));
}

double ClusterJob::run_speed_factor() const {
  if (config_.run_speed_sigma == 0.0) return 1.0;
  util::Rng rng = util::Rng(config_.seed).substream(0xfaceULL);
  return rng.lognormal(0.0, config_.run_speed_sigma);
}

}  // namespace hpcs::cluster
