#include "cluster/cluster.h"

#include <algorithm>
#include <stdexcept>

#include "mpi/rank_behavior.h"
#include "util/rng.h"

namespace hpcs::cluster {

using kernel::Policy;
using kernel::Task;
using kernel::Tid;

Cluster::Cluster(sim::Engine& engine, ClusterConfig config)
    : engine_(engine), config_(config) {
  if (config_.nodes <= 0) {
    throw std::invalid_argument("Cluster: nodes must be positive");
  }
  util::SplitMix64 seeder(config_.seed);
  nodes_.reserve(static_cast<std::size_t>(config_.nodes));
  for (int i = 0; i < config_.nodes; ++i) {
    auto node = std::make_unique<kernel::Kernel>(engine_, config_.node);
    if (config_.install_hpl) hpl::install(*node, config_.hpl_options);
    node->boot();
    if (config_.spawn_daemons) {
      workloads::NoiseConfig noise = config_.noise;
      noise.seed = seeder.next();  // independent daemon phases per node
      workloads::spawn_standard_node_daemons(*node, noise);
    }
    nodes_.push_back(std::move(node));
  }
}

Cluster::~Cluster() = default;

/// The per-node launcher daemon (think Open MPI's orted): forks the node's
/// local ranks, then blocks until they all exited.
class OrtedBehavior : public kernel::Behavior {
 public:
  OrtedBehavior(ClusterJob& job, int slot, Policy policy, int rt_prio,
                kernel::CondId done_cond)
      : job_(job), slot_(slot), policy_(policy), rt_prio_(rt_prio),
        done_cond_(done_cond) {}

  kernel::Action next(kernel::Kernel&, Task& self) override {
    switch (step_++) {
      case 0:
        return kernel::Action::compute(300 * kMicrosecond);  // job setup
      case 1:
        job_.spawn_local_ranks(slot_, policy_, rt_prio_, self.tid);
        return kernel::Action::wait(done_cond_, 0);
      default:
        return kernel::Action::exit_task();
    }
  }

 private:
  ClusterJob& job_;
  int slot_;
  Policy policy_;
  int rt_prio_;
  kernel::CondId done_cond_;
  int step_ = 0;
};

namespace {
std::vector<int> all_nodes(const Cluster& cluster) {
  std::vector<int> nodes(static_cast<std::size_t>(cluster.num_nodes()));
  for (int i = 0; i < cluster.num_nodes(); ++i)
    nodes[static_cast<std::size_t>(i)] = i;
  return nodes;
}
}  // namespace

ClusterJob::ClusterJob(Cluster& cluster, mpi::MpiConfig config,
                       mpi::Program program)
    : ClusterJob(cluster, config, std::move(program), all_nodes(cluster)) {}

ClusterJob::ClusterJob(Cluster& cluster, mpi::MpiConfig config,
                       mpi::Program program, std::vector<int> nodes)
    : cluster_(cluster), config_(config), program_(std::move(program)),
      nodes_(std::move(nodes)) {
  program_.validate();
  if (nodes_.empty()) {
    throw std::invalid_argument("ClusterJob: node set must not be empty");
  }
  std::vector<bool> seen(static_cast<std::size_t>(cluster.num_nodes()), false);
  for (int n : nodes_) {
    if (n < 0 || n >= cluster.num_nodes()) {
      throw std::invalid_argument("ClusterJob: node index out of range");
    }
    if (seen[static_cast<std::size_t>(n)]) {
      throw std::invalid_argument("ClusterJob: duplicate node in node set");
    }
    seen[static_cast<std::size_t>(n)] = true;
  }
  if (config_.nranks % static_cast<int>(nodes_.size()) != 0) {
    throw std::invalid_argument(
        "ClusterJob: total ranks must divide evenly across the job's nodes");
  }
  node_rank_tids_.resize(nodes_.size());
  node_done_conds_.resize(nodes_.size(), kernel::kInvalidCond);
}

int ClusterJob::total_ranks() const { return config_.nranks; }

int ClusterJob::node_of_rank(int rank) const {
  return nodes_.at(static_cast<std::size_t>(rank / ranks_per_node()));
}

void ClusterJob::launch(Policy policy, int rt_prio) {
  if (launched_) throw std::logic_error("ClusterJob::launch called twice");
  launched_ = true;
  start_time_ = cluster_.engine().now();
  ranks_alive_ = config_.nranks;
  for (std::size_t slot = 0; slot < nodes_.size(); ++slot) {
    kernel::Kernel& k = cluster_.node(nodes_[slot]);
    const kernel::CondId done = k.cond_create();
    node_done_conds_[slot] = done;
    // Wake the orted when this node's local ranks are all gone.
    auto remaining = std::make_shared<int>(ranks_per_node());
    k.add_exit_listener([this, slot, done, remaining, &k](Task& t) {
      const auto& local = node_rank_tids_[slot];
      if (std::find(local.begin(), local.end(), t.tid) == local.end()) return;
      on_rank_exit();
      if (--*remaining == 0) k.cond_signal(done);
    });
    kernel::SpawnSpec spec;
    spec.name = "orted/" + std::to_string(nodes_[slot]);
    spec.policy = Policy::kNormal;  // the launcher itself is a normal daemon
    spec.behavior = std::make_unique<OrtedBehavior>(
        *this, static_cast<int>(slot), policy, rt_prio, done);
    k.spawn(std::move(spec));
  }
}

void ClusterJob::spawn_local_ranks(int slot, Policy policy, int rt_prio,
                                   Tid parent) {
  const auto uslot = static_cast<std::size_t>(slot);
  const int per_node = ranks_per_node();
  if (aborted_) {
    // The job died while this orted was still setting up: fork nothing,
    // account the never-born ranks as gone, and release the orted.
    ranks_alive_ -= per_node;
    cluster_.node(nodes_[uslot]).cond_signal(node_done_conds_[uslot]);
    if (ranks_alive_ == 0 && !finished_) {
      finished_ = true;
      finish_time_ = cluster_.engine().now();
      if (on_finish_) on_finish_();
    }
    return;
  }
  kernel::Kernel& k = cluster_.node(nodes_[uslot]);
  for (int local = 0; local < per_node; ++local) {
    const int rank = slot * per_node + local;
    kernel::SpawnSpec spec;
    spec.name = "rank" + std::to_string(rank);
    spec.policy = policy;
    spec.rt_prio = rt_prio;
    spec.parent = parent;
    spec.behavior = std::make_unique<mpi::RankBehavior>(*this, rank);
    node_rank_tids_[uslot].push_back(k.spawn(std::move(spec)));
  }
}

void ClusterJob::abort() {
  if (!launched_ || finished_ || aborted_) return;
  aborted_ = true;
  failed_ = true;
  // Kill every rank that exists.  Exit listeners fire per kill, so
  // ranks_alive_ drains through the normal path; ranks whose orted has not
  // forked them yet are drained by spawn_local_ranks when it wakes up.
  for (std::size_t slot = 0; slot < nodes_.size(); ++slot) {
    kernel::Kernel& k = cluster_.node(nodes_[slot]);
    for (Tid tid : node_rank_tids_[slot]) {
      k.kill_task(tid);  // false for already-exited ranks: fine
    }
  }
}

void ClusterJob::on_rank_exit() {
  if (--ranks_alive_ == 0) {
    finished_ = true;
    finish_time_ = cluster_.engine().now();
    if (on_finish_) on_finish_();
  }
}

std::optional<kernel::CondId> ClusterJob::arrive(std::uint32_t site,
                                                 std::uint64_t visit,
                                                 std::uint32_t pair_id,
                                                 int needed, int rank) {
  const int my_node = node_of_rank(rank);
  const auto key = std::make_tuple(site, visit, pair_id);
  auto [it, inserted] = matches_.try_emplace(key);
  Match& m = it->second;
  m.arrived += 1;
  if (m.arrived >= needed) {
    // Fire: local waiters immediately, remote waiters after the wire delay.
    const Match fired = std::move(m);
    matches_.erase(it);
    for (const auto& [node, cond] : fired.node_conds) {
      kernel::Kernel* k = &cluster_.node(node);
      if (node == my_node) {
        k->cond_signal(cond);
      } else {
        cluster_.engine().schedule_after(
            cluster_.config().net_latency, [k, c = cond] { k->cond_signal(c); });
      }
    }
    return std::nullopt;
  }
  auto [cit, fresh] = m.node_conds.try_emplace(my_node, kernel::kInvalidCond);
  if (fresh) cit->second = cluster_.node(my_node).cond_create();
  return cit->second;
}

util::Rng ClusterJob::rank_rng(int rank) const {
  return util::Rng(config_.seed)
      .substream(0x5a5a5a5aULL + static_cast<std::uint64_t>(rank));
}

double ClusterJob::run_speed_factor() const {
  if (config_.run_speed_sigma == 0.0) return 1.0;
  util::Rng rng = util::Rng(config_.seed).substream(0xfaceULL);
  return rng.lognormal(0.0, config_.run_speed_sigma);
}

}  // namespace hpcs::cluster
