// Multi-node cluster simulation.
//
// The paper's motivation is cluster-scale: OS noise that costs 1-2% on one
// node destroys scalability at thousands of nodes because every global
// synchronisation waits for the unluckiest node (noise resonance, Petrini
// et al.).  This module instantiates N independent node kernels — each with
// its own scheduler, daemons, and optional HPL — inside ONE discrete-event
// engine, and runs a single SPMD job whose ranks are distributed across the
// nodes.  Cross-node communication goes through a net::Fabric: flat match
// points release remote waiters after the fabric's delivery delay, and the
// algorithmic collectives (MpiConfig::collective_algorithm) decompose into
// point-to-point messages that contend on real links.
//
// Everything stays deterministic: one engine, seeded per-node daemon
// streams, seeded rank jitter.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <tuple>
#include <vector>

#include "core/hpl.h"
#include "fault/fault.h"
#include "kernel/kernel.h"
#include "mpi/world.h"
#include "net/fabric.h"
#include "net/mailbox.h"
#include "sim/engine.h"
#include "workloads/daemons.h"

namespace hpcs::cluster {

struct ClusterConfig {
  int nodes = 4;
  kernel::KernelConfig node;
  workloads::NoiseConfig noise;  // per-node daemon population
  bool spawn_daemons = true;
  bool install_hpl = false;
  hpl::HplOptions hpl_options;
  /// DEPRECATED: one-way latency of the legacy constant-delay network.  Only
  /// consulted when `fabric` is unset, in which case it seeds
  /// net::FabricConfig::uniform (bit-for-bit the old behaviour) and a
  /// deprecation warning is logged once per process.
  SimDuration net_latency = 10 * kMicrosecond;
  /// The interconnect. `nodes` is overridden to match the cluster's.
  std::optional<net::FabricConfig> fabric;
  std::uint64_t seed = 1;
};

/// N booted node kernels sharing one engine and one interconnect fabric.
class Cluster {
 public:
  Cluster(sim::Engine& engine, ClusterConfig config);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;
  ~Cluster();

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  kernel::Kernel& node(int i) {
    return *nodes_.at(static_cast<std::size_t>(i));
  }
  const ClusterConfig& config() const { return config_; }
  sim::Engine& engine() { return engine_; }
  net::Fabric& fabric() { return *fabric_; }
  const net::Fabric& fabric() const { return *fabric_; }

 private:
  sim::Engine& engine_;
  ClusterConfig config_;
  std::unique_ptr<net::Fabric> fabric_;
  std::vector<std::unique_ptr<kernel::Kernel>> nodes_;
};

/// One SPMD job on a set of nodes (the whole cluster by default, or an
/// explicit subset handed out by a batch allocator): ranks divide evenly
/// across the job's nodes, all interpreting the same mpi::Program.
class ClusterJob : public mpi::RankRuntime {
 public:
  ClusterJob(Cluster& cluster, mpi::MpiConfig config, mpi::Program program);
  /// Run on exactly `nodes` (cluster node indices, no duplicates).  Several
  /// jobs with disjoint node sets can coexist on one cluster.
  ClusterJob(Cluster& cluster, mpi::MpiConfig config, mpi::Program program,
             std::vector<int> nodes);

  /// Spawn an "orted" launcher daemon on every job node, each of which forks
  /// its local ranks under `policy` (use kHpc on an HPL cluster).
  void launch(kernel::Policy policy, int rt_prio = 0);

  /// Tear the job down (node failure, walltime kill): every live rank is
  /// killed, ranks not yet forked are never forked, and the job counts as
  /// failed().  The job still reaches finished() — and fires the finish
  /// callback — once the corpses are reaped, so completion bookkeeping is
  /// uniform for clean and aborted jobs.  No-op after finish or before
  /// launch.
  void abort();

  bool finished() const { return finished_; }
  /// True when the job was abort()ed or died of an unrecoverable rank loss.
  bool failed() const { return failed_; }
  /// Invoked (once) when the last rank is gone.  Runs inside an engine
  /// event; keep it to bookkeeping or re-arm work via 0-delay events.
  void set_on_finish(std::function<void()> fn) { on_finish_ = std::move(fn); }
  SimTime start_time() const { return start_time_; }
  SimTime finish_time() const { return finish_time_; }
  int total_ranks() const;
  int node_of_rank(int rank) const;
  const std::vector<int>& nodes() const { return nodes_; }

  // --- fault tolerance -------------------------------------------------------
  /// Kill `rank` mid-run (the fault injector's entry point); mirrors
  /// MpiWorld::inject_rank_failure.  The runtime notices after
  /// config().fault_detect_latency and either respawns the rank from its
  /// sync-point checkpoint (restart_failed_ranks) or aborts the job.
  bool inject_rank_failure(int rank);
  const fault::FaultReport& fault_report() const { return fault_report_; }
  /// Completed sync points for `rank` (its restart checkpoint).
  std::uint64_t rank_sync_count(int rank) const;
  /// Stepwise collectives with un-reclaimed mailbox state (0 when idle).
  std::size_t open_collectives() const { return mailbox_->open_collectives(); }

  // --- RankRuntime -----------------------------------------------------------
  const mpi::MpiConfig& config() const override { return config_; }
  const mpi::Program& program() const override { return program_; }
  std::optional<kernel::CondId> arrive(std::uint32_t site, std::uint64_t visit,
                                       std::uint32_t pair_id, int needed,
                                       int rank) override;
  util::Rng rank_rng(int rank) const override;
  double run_speed_factor() const override;
  net::Mailbox* mailbox() override { return mailbox_.get(); }
  const net::FabricConfig* fabric_config() const override {
    return &cluster_.fabric().config();
  }
  void collective_complete(std::uint32_t site, std::uint64_t visit,
                           int rank) override;
  void sync_commit(int rank) override;
  rtc::Coordinator* coordinator(int rank) override;
  int coordinator_id(int rank) const override;

  /// Register the job's presence on job slot `slot` (one node) with that
  /// node's co-scheduling broker; hybrid ranks local to the slot negotiate
  /// their parallel regions through it.  Call before launch(); the
  /// coordinator must outlive the job.
  void attach_coordinator(int slot, rtc::Coordinator& coordinator);

 private:
  friend class OrtedBehavior;

  using MatchKey = std::tuple<std::uint32_t, std::uint64_t, std::uint32_t>;

  /// Per-rank runtime state across incarnations (a restart reuses the slot).
  struct RankState {
    kernel::Tid tid = kernel::kInvalidTid;  // current incarnation
    bool finished = false;                  // exited cleanly
    bool dead = false;                      // killed, death detected, no body
    int restarts = 0;
    std::uint64_t synced = 0;  // committed sync points = restart checkpoint
    bool waiting = false;      // has an un-fired flat arrival registered
    MatchKey wait_key{};
    /// A flat match point fired for this rank but the collective cost was
    /// never fully paid (no commit); the replacement redoes the traversal
    /// without re-arriving.  See mpi::MpiWorld::RankState.
    bool fired_uncommitted = false;
    /// Last committed progress instant; death loses everything after it.
    SimTime progress_anchor = 0;
    /// When the current incarnation was killed (for overhead accounting).
    SimTime death_time = 0;
  };

  /// `slot` indexes nodes_ (the job-local node list), not the cluster.
  void spawn_local_ranks(int slot, kernel::Policy policy, int rt_prio,
                         kernel::Tid parent);
  void on_task_exit(int slot, kernel::Task& t);
  void handle_rank_death(int rank, kernel::Tid tid);
  void respawn_rank(int rank, kernel::Tid old_tid);
  void do_abort();
  /// One rank slot is permanently gone (finished or unrecoverable): release
  /// the node's orted when its last local rank drains, finish the job when
  /// the last rank drains.
  void rank_gone(int slot);
  int ranks_per_node() const {
    return config_.nranks / static_cast<int>(nodes_.size());
  }
  int slot_of_rank(int rank) const { return rank / ranks_per_node(); }

  Cluster& cluster_;
  mpi::MpiConfig config_;
  mpi::Program program_;
  std::vector<int> nodes_;  // cluster node index per job slot
  std::unique_ptr<net::Mailbox> mailbox_;
  std::vector<rtc::Coordinator*> coords_;  // by job slot (null = detached)
  std::vector<int> coord_ids_;             // by job slot

  struct Match {
    int arrived = 0;
    std::vector<int> waiters;  // ranks whose arrival has not fired yet
    // Lazily created per-node conditions for waiters of this point.
    std::map<int, kernel::CondId> node_conds;
  };
  std::map<MatchKey, Match> matches_;

  std::vector<RankState> rank_states_;                    // by rank
  std::vector<std::map<kernel::Tid, int>> tid_to_rank_;   // by job slot
  std::vector<int> node_remaining_;                       // by job slot
  std::vector<kernel::Tid> orted_tids_;                   // by job slot
  std::vector<kernel::CondId> node_done_conds_;           // by job slot
  kernel::Policy rank_policy_ = kernel::Policy::kNormal;
  int rank_rt_prio_ = 0;
  std::function<void()> on_finish_;
  fault::FaultReport fault_report_;
  int ranks_alive_ = 0;
  bool launched_ = false;
  bool finished_ = false;
  bool aborted_ = false;
  bool failed_ = false;
  SimTime start_time_ = 0;
  SimTime finish_time_ = 0;
};

}  // namespace hpcs::cluster
