// Multi-node cluster simulation.
//
// The paper's motivation is cluster-scale: OS noise that costs 1-2% on one
// node destroys scalability at thousands of nodes because every global
// synchronisation waits for the unluckiest node (noise resonance, Petrini
// et al.).  This module instantiates N independent node kernels — each with
// its own scheduler, daemons, and optional HPL — inside ONE discrete-event
// engine, and runs a single SPMD job whose ranks are distributed across the
// nodes.  Match points that span nodes release remote waiters after a
// configurable network latency.
//
// Everything stays deterministic: one engine, seeded per-node daemon
// streams, seeded rank jitter.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <tuple>
#include <vector>

#include "core/hpl.h"
#include "kernel/kernel.h"
#include "mpi/world.h"
#include "sim/engine.h"
#include "workloads/daemons.h"

namespace hpcs::cluster {

struct ClusterConfig {
  int nodes = 4;
  kernel::KernelConfig node;
  workloads::NoiseConfig noise;  // per-node daemon population
  bool spawn_daemons = true;
  bool install_hpl = false;
  hpl::HplOptions hpl_options;
  /// One-way network latency added when a fired match point releases
  /// waiters on another node.
  SimDuration net_latency = 10 * kMicrosecond;
  std::uint64_t seed = 1;
};

/// N booted node kernels sharing one engine.
class Cluster {
 public:
  Cluster(sim::Engine& engine, ClusterConfig config);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;
  ~Cluster();

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  kernel::Kernel& node(int i) { return *nodes_.at(static_cast<std::size_t>(i)); }
  const ClusterConfig& config() const { return config_; }
  sim::Engine& engine() { return engine_; }

 private:
  sim::Engine& engine_;
  ClusterConfig config_;
  std::vector<std::unique_ptr<kernel::Kernel>> nodes_;
};

/// One SPMD job on a set of nodes (the whole cluster by default, or an
/// explicit subset handed out by a batch allocator): ranks divide evenly
/// across the job's nodes, all interpreting the same mpi::Program.
class ClusterJob : public mpi::RankRuntime {
 public:
  ClusterJob(Cluster& cluster, mpi::MpiConfig config, mpi::Program program);
  /// Run on exactly `nodes` (cluster node indices, no duplicates).  Several
  /// jobs with disjoint node sets can coexist on one cluster.
  ClusterJob(Cluster& cluster, mpi::MpiConfig config, mpi::Program program,
             std::vector<int> nodes);

  /// Spawn an "orted" launcher daemon on every job node, each of which forks
  /// its local ranks under `policy` (use kHpc on an HPL cluster).
  void launch(kernel::Policy policy, int rt_prio = 0);

  /// Tear the job down (node failure, walltime kill): every live rank is
  /// killed, ranks not yet forked are never forked, and the job counts as
  /// failed().  The job still reaches finished() — and fires the finish
  /// callback — once the corpses are reaped, so completion bookkeeping is
  /// uniform for clean and aborted jobs.  No-op after finish or before
  /// launch.
  void abort();

  bool finished() const { return finished_; }
  /// True when the job was abort()ed rather than running to completion.
  bool failed() const { return failed_; }
  /// Invoked (once) when the last rank is gone.  Runs inside an engine
  /// event; keep it to bookkeeping or re-arm work via 0-delay events.
  void set_on_finish(std::function<void()> fn) { on_finish_ = std::move(fn); }
  SimTime start_time() const { return start_time_; }
  SimTime finish_time() const { return finish_time_; }
  int total_ranks() const;
  int node_of_rank(int rank) const;
  const std::vector<int>& nodes() const { return nodes_; }

  // --- RankRuntime --------------------------------------------------------------
  const mpi::MpiConfig& config() const override { return config_; }
  const mpi::Program& program() const override { return program_; }
  std::optional<kernel::CondId> arrive(std::uint32_t site, std::uint64_t visit,
                                       std::uint32_t pair_id, int needed,
                                       int rank) override;
  util::Rng rank_rng(int rank) const override;
  double run_speed_factor() const override;

 private:
  friend class OrtedBehavior;

  /// `slot` indexes nodes_ (the job-local node list), not the cluster.
  void spawn_local_ranks(int slot, kernel::Policy policy, int rt_prio,
                         kernel::Tid parent);
  void on_rank_exit();
  int ranks_per_node() const {
    return config_.nranks / static_cast<int>(nodes_.size());
  }

  Cluster& cluster_;
  mpi::MpiConfig config_;
  mpi::Program program_;
  std::vector<int> nodes_;  // cluster node index per job slot

  struct Match {
    int arrived = 0;
    // Lazily created per-node conditions for waiters of this point.
    std::map<int, kernel::CondId> node_conds;
  };
  std::map<std::tuple<std::uint32_t, std::uint64_t, std::uint32_t>, Match>
      matches_;

  std::vector<std::vector<kernel::Tid>> node_rank_tids_;  // by job slot
  std::vector<kernel::CondId> node_done_conds_;           // by job slot
  std::function<void()> on_finish_;
  int ranks_alive_ = 0;
  bool launched_ = false;
  bool finished_ = false;
  bool aborted_ = false;
  bool failed_ = false;
  SimTime start_time_ = 0;
  SimTime finish_time_ = 0;
};

}  // namespace hpcs::cluster
