#include "cluster/partition.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace hpcs::cluster {

ShardPartition::ShardPartition(const net::FabricConfig& fabric, int shards) {
  if (fabric.nodes < 1) {
    throw std::invalid_argument("ShardPartition: fabric has no nodes");
  }
  const int blocks = fabric.blocks();
  if (shards < 1 || shards > blocks) {
    throw std::invalid_argument(
        "ShardPartition: shard count " + std::to_string(shards) +
        " must be in [1, " + std::to_string(blocks) +
        "] (each shard owns at least one whole leaf block)");
  }
  first_node_.reserve(static_cast<std::size_t>(shards) + 1);
  first_node_.push_back(0);
  const int base = blocks / shards;
  const int extra = blocks % shards;
  int block = 0;
  for (int s = 0; s < shards; ++s) {
    block += base + (s < extra ? 1 : 0);
    // The last block may be partial; clamp to the actual node count.
    first_node_.push_back(std::min(block * fabric.nodes_per_switch,
                                   fabric.nodes));
  }
  min_shard_nodes_ = num_nodes();
  for (int s = 0; s < shards; ++s) {
    min_shard_nodes_ = std::min(min_shard_nodes_, node_count(s));
  }
  if (min_shard_nodes_ < 1) {
    throw std::invalid_argument(
        "ShardPartition: a shard ended up empty; use fewer shards");
  }
  lookahead_ = std::max<SimDuration>(fabric.min_cross_block_latency(), 1);
}

int ShardPartition::shard_of_node(int node) const {
  if (node < 0 || node >= num_nodes()) {
    throw std::out_of_range("ShardPartition: node " + std::to_string(node));
  }
  // first_node_ is sorted; find the slab containing `node`.
  const auto it =
      std::upper_bound(first_node_.begin(), first_node_.end(), node);
  return static_cast<int>(it - first_node_.begin()) - 1;
}

int ShardPartition::first_node(int shard) const {
  return first_node_.at(static_cast<std::size_t>(shard));
}

int ShardPartition::node_count(int shard) const {
  return first_node_.at(static_cast<std::size_t>(shard) + 1) -
         first_node_.at(static_cast<std::size_t>(shard));
}

}  // namespace hpcs::cluster
