// Node-to-shard partitioning for conservative parallel cluster simulation.
//
// A shard is a contiguous range of nodes that one sim::ShardedEngine shard
// owns.  Shard boundaries are aligned to the fabric's leaf-switch blocks
// (net::FabricConfig::nodes_per_switch): a leaf switch never straddles two
// shards, so every cross-shard message must cross the spine and the
// conservative lookahead is the fabric's minimum cross-leaf link latency —
// the tightest bound the topology offers.  Blocks are dealt to shards as
// evenly as possible (the first `blocks % shards` shards get one extra), so
// a 10k-node cluster splits into near-equal slabs that also match the batch
// allocator's chassis alignment.
#pragma once

#include <vector>

#include "net/fabric.h"
#include "util/time.h"

namespace hpcs::cluster {

class ShardPartition {
 public:
  /// Partition `fabric.nodes` nodes into `shards` leaf-aligned slabs.
  /// Throws std::invalid_argument when shards < 1 or shards > blocks (a
  /// shard must own at least one whole leaf block).
  ShardPartition(const net::FabricConfig& fabric, int shards);

  int num_shards() const { return static_cast<int>(first_node_.size()) - 1; }
  int num_nodes() const { return first_node_.back(); }

  /// Shard owning `node` (nodes are contiguous per shard).
  int shard_of_node(int node) const;
  int first_node(int shard) const;
  int node_count(int shard) const;
  /// Fewest nodes owned by any shard — the cap on per-shard job width.
  int min_shard_nodes() const { return min_shard_nodes_; }

  /// The conservative lookahead this partition supports: because shards are
  /// leaf-aligned, every cross-shard message crosses the spine, so the
  /// fabric's minimum cross-leaf latency bounds propagation.  Clamped to
  /// >= 1ns (sim::ShardedEngine rejects a zero lookahead).
  SimDuration lookahead() const { return lookahead_; }

 private:
  std::vector<int> first_node_;  // size shards+1; shard s = [s, s+1)
  int min_shard_nodes_ = 0;
  SimDuration lookahead_ = 1;
};

}  // namespace hpcs::cluster
