// Batch jobs: what a user submits to the cluster-level workload manager.
//
// A JobSpec is the submission record (arrival time, node count, walltime
// estimate, and the shape of the bulk-synchronous program the ranks run); a
// JobRecord is the scheduler's ledger entry tracking that job through
// queued -> running -> finished/failed, from which the per-job metrics
// (wait, turnaround, bounded slowdown) are derived.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mpi/program.h"
#include "util/time.h"

namespace hpcs::batch {

struct JobSpec {
  int id = 0;
  std::string name;          // defaults to "job<id>" when empty
  SimTime arrival = 0;       // submit time (absolute simulated time)
  /// Owning user (SWF column 12).  Fairshare charges decayed usage here;
  /// 0 is the anonymous default and is tracked like any other user.
  int user = 0;
  int nodes = 1;             // nodes requested
  int ranks_per_node = 8;    // MPI ranks forked per allocated node
  /// User walltime estimate — what EASY backfill plans with.  The guarantee
  /// "backfill never delays the reservation" holds when estimates are upper
  /// bounds on the actual runtime, exactly as on a real machine (which
  /// kills jobs that overrun; we do not).
  SimDuration estimate = 0;
  // Program shape: barrier; iterations x (compute(grain) + allreduce).
  int iterations = 10;
  SimDuration grain = 1 * kMillisecond;  // per-rank compute per iteration
  double jitter = 0.0;                   // relative per-rank compute imbalance
  /// Workflow dependencies: ids of jobs that must finish (successfully)
  /// before this one may enter the wait queue.  Empty = independent job.
  /// Any job carrying deps switches the scheduler into workflow mode, which
  /// requires ids to be unique across the whole submission.
  std::vector<int> deps;
};

/// The bulk-synchronous program a job's ranks interpret.
mpi::Program build_job_program(const JobSpec& spec);

/// Pure compute time of one rank (iterations x grain): the lower bound on
/// the job's runtime and the default basis for walltime estimates.
SimDuration ideal_runtime(const JobSpec& spec);

enum class JobState : std::uint8_t {
  kPending,   // submitted to the scheduler, arrival event not yet fired
  kHeld,      // arrived, but workflow dependencies are still unfinished
  kQueued,    // in the wait queue
  kRunning,   // dispatched onto its allocation
  kFinished,  // all ranks exited cleanly
  kFailed,    // aborted (node failure) and not resubmitted
  kCanceled,  // a workflow dependency failed permanently; job can never run
  kRejected,  // admission control: no queue admits the job's shape
};

const char* job_state_name(JobState state);

inline constexpr SimTime kNoPromise = ~SimTime{0};

/// One job's trip through the scheduler.
struct JobRecord {
  JobSpec spec;
  JobState state = JobState::kPending;
  /// Earliest reservation EASY ever promised this job while it headed the
  /// queue (kNoPromise when it never needed one).  With conservative
  /// estimates, start <= promised_start — the backfill no-delay guarantee.
  SimTime promised_start = kNoPromise;
  SimTime start = 0;   // dispatch time (valid once running)
  SimTime finish = 0;  // last rank gone (valid once finished/failed)
  /// When the job became eligible to run: arrival for independent jobs, the
  /// instant the last workflow dependency finished for held ones.
  SimTime ready = 0;
  std::vector<int> nodes;  // current/last allocation (cluster node indices)
  bool contiguous = false;  // allocation was one contiguous run
  int resubmits = 0;        // times re-queued after a node failure
  int queue = 0;            // execution queue index (see BatchConfig::queues)
  int preempts = 0;         // times suspended for a higher-priority job
  /// Iterations banked in committed checkpoints across preemptions: a
  /// re-dispatched job resumes from here instead of iteration 0.
  int committed_iters = 0;
  /// Work discarded by preemptions — run time past the last committed
  /// sync point, summed over suspensions.
  SimDuration preempt_lost = 0;

  SimDuration wait() const { return start - spec.arrival; }
  SimDuration turnaround() const { return finish - spec.arrival; }
  SimDuration run() const { return finish - start; }
  /// Time spent held on unfinished dependencies (0 for independent jobs).
  SimDuration dep_stall() const { return ready - spec.arrival; }
  /// Queueing delay once runnable — wait() minus the dependency stall.
  SimDuration queue_wait() const { return start - ready; }
};

}  // namespace hpcs::batch
