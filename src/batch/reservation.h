// Advance reservations: a window [start, end) during which `nodes` nodes
// are promised to someone outside the queue (maintenance, a demo, a
// deadline job).
//
// The scheduler enforces them with admission control at dispatch time: a
// job may start only if running it cannot eat into any window's promised
// capacity — it either (estimated to) finishes before the window opens, or
// leaves `nodes` spare while it overlaps the window.  EASY's reservation
// sweep treats the windows as capacity dips, so backfill plans around them
// exactly as it plans around the head job's reservation.
#pragma once

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/time.h"

namespace hpcs::batch {

struct Reservation {
  std::string name;
  SimTime start = 0;
  SimTime end = 0;
  int nodes = 0;
};

/// Throws std::invalid_argument on an empty window or non-positive width.
inline void validate_reservations(const std::vector<Reservation>& resvs,
                                  int cluster_nodes) {
  for (const Reservation& r : resvs) {
    if (r.end <= r.start) {
      throw std::invalid_argument("Reservation: end must be after start (" +
                                  r.name + ")");
    }
    if (r.nodes < 1 || r.nodes > cluster_nodes) {
      throw std::invalid_argument(
          "Reservation: width must be in [1, cluster] (" + r.name + ")");
    }
  }
}

/// Nodes promised to reservations whose window contains `t`.
inline int reserved_nodes_at(const std::vector<Reservation>& resvs,
                             SimTime t) {
  int total = 0;
  for (const Reservation& r : resvs) {
    if (t >= r.start && t < r.end) total += r.nodes;
  }
  return total;
}

/// Admission control: may a job estimated to run for `est` start at `now`
/// without eating into any not-yet-opened reservation window, given
/// `spare_after` = free nodes left once it starts?  Windows that already
/// opened are excluded — their nodes were claimed from the allocator at
/// the window-start event, so free counts already account for them.
inline bool admits_reservations(const std::vector<Reservation>& resvs,
                                SimTime now, SimDuration est,
                                int spare_after) {
  const SimTime job_end = now + std::max<SimDuration>(est, 1);
  for (const Reservation& r : resvs) {
    if (r.start < now || r.start >= job_end) continue;  // claimed or clear
    // Overlapping an upcoming window: the job must leave the promised
    // capacity untouched.  Conservative — nodes other jobs free before the
    // window opens are not counted, which only ever delays, never
    // violates.
    if (spare_after < r.nodes) return false;
  }
  return true;
}

}  // namespace hpcs::batch
