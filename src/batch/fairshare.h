// Fairshare: per-user decayed usage feeding the scheduling priority.
//
// PBSPro's fairshare tree charges every job's consumed resources to its
// owner and decays the ledger on a half-life, so a user who soaked the
// machine yesterday ranks behind one who has not run in a week — without
// starving anyone forever (the debt evaporates).  We reproduce the flat
// (single-level) version: usage is node-seconds, decayed continuously,
//
//   usage(t) = usage(t0) * 2^-((t - t0) / halflife)
//
// and the scheduler orders candidate jobs by (queue priority, decayed
// usage of the owner, arrival, id).  The decay is evaluated lazily per
// user, so charging and reading are O(1) and the tracker is a pure
// function of the charge history — the property the serial-vs-sharded
// replay goldens rely on.
#pragma once

#include <cmath>
#include <cstdint>
#include <map>

#include "util/time.h"

namespace hpcs::batch {

struct FairshareConfig {
  bool enabled = false;
  /// Usage half-life.  Shorter forgets faster (more aggressive
  /// re-prioritisation); PBS defaults to 24h, we default shorter because
  /// simulated traces are denser than real weeks.
  SimDuration halflife = 3600 * kSecond;
};

class FairshareTracker {
 public:
  FairshareTracker() = default;
  explicit FairshareTracker(const FairshareConfig& config) : config_(config) {}

  /// Charge `node_seconds` of usage to `user` at time `now`.
  void charge(int user, double node_seconds, SimTime now) {
    Entry& e = users_[user];
    e.usage = decayed(e, now) + node_seconds;
    e.stamp = now;
  }

  /// The user's decayed usage at `now` (0 for users never charged).
  double usage(int user, SimTime now) const {
    const auto it = users_.find(user);
    if (it == users_.end()) return 0.0;
    return decayed(it->second, now);
  }

  std::size_t users() const { return users_.size(); }

 private:
  struct Entry {
    double usage = 0.0;
    SimTime stamp = 0;
  };

  double decayed(const Entry& e, SimTime now) const {
    if (now <= e.stamp || config_.halflife <= 0) return e.usage;
    const double halflives = static_cast<double>(now - e.stamp) /
                             static_cast<double>(config_.halflife);
    return e.usage * std::exp2(-halflives);
  }

  FairshareConfig config_;
  std::map<int, Entry> users_;
};

}  // namespace hpcs::batch
