#include "batch/scale.h"

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <utility>

#include "batch/allocator.h"
#include "batch/job.h"
#include "cluster/partition.h"
#include "sim/engine.h"
#include "sim/sharded.h"
#include "util/rng.h"
#include "util/stats.h"

namespace hpcs::batch {
namespace {

SimTime align_up(SimTime t, SimDuration q) { return (t + q - 1) / q * q; }

net::FabricConfig effective_fabric(const ScaleConfig& config) {
  net::FabricConfig fabric = config.fabric;
  fabric.nodes = config.nodes;
  return fabric;
}

/// Per-(job, node) noise draw in [0, 1): a stateless hash, so it costs no
/// shared RNG state and is identical however the run is partitioned.
double node_noise_u01(std::uint64_t seed, std::uint32_t job_id, int node) {
  util::SplitMix64 h(seed ^
                     (static_cast<std::uint64_t>(job_id) + 1) *
                         0x9e3779b97f4a7c15ULL ^
                     (static_cast<std::uint64_t>(node) + 1) *
                         0xbf58476d1ce4e5b9ULL);
  return static_cast<double>(h.next() >> 11) * 0x1.0p-53;
}

/// A job as it sits in (or moves between) shard queues.  The key
/// (arrival, id) is globally unique, so queue inserts commute and FCFS
/// order is identical in serial and sharded runs.
struct QueuedJob {
  SimTime arrival = 0;
  std::uint32_t id = 0;
  std::int32_t nodes = 0;
  std::int32_t home_shard = 0;
  std::int32_t forwards = 0;
  SimDuration base_runtime = 0;
};

/// How handlers schedule events: the only difference between the serial
/// reference and the sharded run.
class Driver {
 public:
  virtual ~Driver() = default;
  virtual void local(int shard, SimTime when, std::function<void()> fn) = 0;
  virtual void remote(int src, int dst, SimTime when,
                      std::function<void()> fn) = 0;
};

class SerialDriver final : public Driver {
 public:
  sim::Engine engine;
  void local(int, SimTime when, std::function<void()> fn) override {
    engine.schedule_at(when, std::move(fn));
  }
  void remote(int, int, SimTime when, std::function<void()> fn) override {
    engine.schedule_at(when, std::move(fn));
  }
};

class ShardedDriver final : public Driver {
 public:
  ShardedDriver(int shards, SimDuration lookahead)
      : engine(shards, lookahead) {}
  sim::ShardedEngine engine;
  void local(int shard, SimTime when, std::function<void()> fn) override {
    engine.shard(shard).schedule_at(when, std::move(fn));
  }
  void remote(int src, int dst, SimTime when,
              std::function<void()> fn) override {
    engine.send(src, dst, when, std::move(fn));
  }
};

class ScaleSim {
 public:
  ScaleSim(const ScaleConfig& config, Driver& driver)
      : cfg_(config),
        drv_(driver),
        partition_(effective_fabric(config), config.shards),
        xlat_(partition_.lookahead()) {
    if (cfg_.cycle < 2) {
      throw std::invalid_argument(
          "ScaleConfig: cycle must be >= 2ns (decisions run at cycle+1)");
    }
    if (cfg_.node_noise < 0.0) {
      throw std::invalid_argument("ScaleConfig: node_noise must be >= 0");
    }
    build_workload();
    shards_.resize(static_cast<std::size_t>(cfg_.shards));
    for (int s = 0; s < cfg_.shards; ++s) {
      ShardSched& sh = shards_[static_cast<std::size_t>(s)];
      sh.base_node = partition_.first_node(s);
      sh.alloc = std::make_unique<NodeAllocator>(partition_.node_count(s),
                                                 cfg_.allocator_block);
      sh.known_free.resize(static_cast<std::size_t>(cfg_.shards));
      for (int k = 0; k < cfg_.shards; ++k) {
        sh.known_free[static_cast<std::size_t>(k)] = partition_.node_count(k);
      }
      sh.advertised_free = partition_.node_count(s);
    }
  }

  void seed_events() {
    for (int s = 0; s < cfg_.shards; ++s) schedule_next_arrival(s);
  }

  ScaleResult collect() const;

 private:
  struct ShardSched {
    int base_node = 0;
    std::unique_ptr<NodeAllocator> alloc;  // shard-local node ids
    std::map<std::pair<SimTime, std::uint32_t>, QueuedJob> queue;
    std::vector<int> known_free;  // last gossiped free count per shard
    int advertised_free = -1;     // what we last broadcast
    bool pass_pending = false;
    std::size_t next_arrival = 0;  // cursor into arrivals_[shard]
    // Results, merged after the run.
    std::vector<std::pair<std::uint32_t, ScaleJobOutcome>> done;
    std::uint64_t forwards = 0;
    std::uint64_t gossip_received = 0;
    SimDuration busy_node_ns = 0;
  };

  void build_workload() {
    ArrivalConfig arrivals = cfg_.arrivals;
    // Every job must fit the smallest shard, or it could starve forever in
    // a federated FCFS queue.
    arrivals.max_nodes =
        std::min(arrivals.max_nodes, partition_.min_shard_nodes());
    const std::vector<JobSpec> specs =
        generate_arrivals(arrivals, cfg_.seed);
    total_jobs_ = specs.size();
    arrivals_.resize(static_cast<std::size_t>(cfg_.shards));
    for (const JobSpec& spec : specs) {
      QueuedJob job;
      job.arrival = align_up(spec.arrival, cfg_.cycle);
      job.id = static_cast<std::uint32_t>(spec.id);
      job.nodes = spec.nodes;
      job.home_shard = static_cast<std::int32_t>(job.id) % cfg_.shards;
      job.base_runtime = ideal_runtime(spec);
      arrivals_[static_cast<std::size_t>(job.home_shard)].push_back(job);
    }
    // Per-shard arrival streams in (arrival, id) order for the chained
    // arrival events.
    for (auto& stream : arrivals_) {
      std::sort(stream.begin(), stream.end(),
                [](const QueuedJob& a, const QueuedJob& b) {
                  if (a.arrival != b.arrival) return a.arrival < b.arrival;
                  return a.id < b.id;
                });
    }
  }

  // --- event handlers --------------------------------------------------------
  // Mutations (arrival, transfer, finish, gossip) land on grid instants and
  // commute; the pass at grid+1 sees the complete instant state.

  void schedule_next_arrival(int s) {
    ShardSched& sh = shards_[static_cast<std::size_t>(s)];
    const auto& stream = arrivals_[static_cast<std::size_t>(s)];
    if (sh.next_arrival >= stream.size()) return;
    const SimTime at = stream[sh.next_arrival].arrival;
    drv_.local(s, at, [this, s, at] { on_arrival_batch(s, at); });
  }

  void on_arrival_batch(int s, SimTime at) {
    ShardSched& sh = shards_[static_cast<std::size_t>(s)];
    const auto& stream = arrivals_[static_cast<std::size_t>(s)];
    while (sh.next_arrival < stream.size() &&
           stream[sh.next_arrival].arrival == at) {
      const QueuedJob& job = stream[sh.next_arrival++];
      sh.queue.emplace(std::make_pair(job.arrival, job.id), job);
    }
    schedule_next_arrival(s);
    request_pass(s, at);
  }

  void request_pass(int s, SimTime grid_now) {
    ShardSched& sh = shards_[static_cast<std::size_t>(s)];
    if (sh.pass_pending) return;
    sh.pass_pending = true;
    const SimTime at = grid_now + 1;
    drv_.local(s, at, [this, s, at] { do_pass(s, at); });
  }

  void do_pass(int s, SimTime t) {
    ShardSched& sh = shards_[static_cast<std::size_t>(s)];
    sh.pass_pending = false;
    while (!sh.queue.empty()) {
      const auto head = sh.queue.begin();
      QueuedJob job = head->second;
      if (job.nodes <= sh.alloc->free_count()) {
        sh.queue.erase(head);
        dispatch(s, t, job);
        continue;
      }
      // Strict FCFS locally, but a blocked head may migrate to the shard
      // with the best (gossip-known) free capacity.
      const int target = pick_target(s, job.nodes);
      if (job.forwards >= cfg_.max_forwards || target < 0) break;
      sh.queue.erase(head);
      forward(s, target, t, job);
    }
    const int free_now = sh.alloc->free_count();
    if (free_now != sh.advertised_free) {
      sh.advertised_free = free_now;
      broadcast_free(s, t, free_now);
    }
  }

  int pick_target(int s, int need) const {
    const ShardSched& sh = shards_[static_cast<std::size_t>(s)];
    int best = -1;
    int best_free = 0;
    for (int k = 0; k < cfg_.shards; ++k) {
      if (k == s) continue;
      const int free = sh.known_free[static_cast<std::size_t>(k)];
      if (free >= need && free > best_free) {
        best = k;
        best_free = free;
      }
    }
    return best;
  }

  void dispatch(int s, SimTime t, const QueuedJob& job) {
    ShardSched& sh = shards_[static_cast<std::size_t>(s)];
    auto nodes = sh.alloc->allocate(job.nodes);
    // free_count >= nodes was checked; the allocator gathers fragments.
    if (!nodes) throw std::logic_error("ScaleSim: allocation unexpectedly failed");
    // The job runs at the speed of its unluckiest node (noise resonance):
    // stretch the ideal runtime by the worst per-(job, node) draw.
    double worst = 0.0;
    for (const int local : *nodes) {
      worst = std::max(
          worst, node_noise_u01(cfg_.seed, job.id, sh.base_node + local));
    }
    const auto runtime = static_cast<SimDuration>(
        static_cast<double>(job.base_runtime) * (1.0 + cfg_.node_noise * worst));
    const SimTime finish = align_up(t + runtime, cfg_.cycle);
    drv_.local(s, finish,
               [this, s, finish, job, start = t, alloc = std::move(*nodes)] {
                 on_finish(s, finish, job, start, alloc);
               });
  }

  void on_finish(int s, SimTime t, const QueuedJob& job, SimTime start,
                 const std::vector<int>& nodes) {
    ShardSched& sh = shards_[static_cast<std::size_t>(s)];
    sh.alloc->release(nodes);
    sh.busy_node_ns +=
        static_cast<SimDuration>(nodes.size()) * (t - start);
    ScaleJobOutcome outcome;
    outcome.arrival = job.arrival;
    outcome.start = start;
    outcome.finish = t;
    outcome.home_shard = job.home_shard;
    outcome.ran_shard = s;
    outcome.forwards = job.forwards;
    sh.done.emplace_back(job.id, outcome);
    request_pass(s, t);
  }

  void forward(int src, int dst, SimTime t, QueuedJob job) {
    ShardSched& sh = shards_[static_cast<std::size_t>(src)];
    ++sh.forwards;
    // Debit our estimate so one pass does not herd every blocked job at the
    // same target; the next gossip from `dst` restores the truth.
    sh.known_free[static_cast<std::size_t>(dst)] -= job.nodes;
    ++job.forwards;
    const SimTime when = align_up(t + xlat_, cfg_.cycle);
    drv_.remote(src, dst, when,
                [this, dst, when, job] { on_transfer(dst, when, job); });
  }

  void on_transfer(int s, SimTime t, const QueuedJob& job) {
    ShardSched& sh = shards_[static_cast<std::size_t>(s)];
    sh.queue.emplace(std::make_pair(job.arrival, job.id), job);
    request_pass(s, t);
  }

  void broadcast_free(int s, SimTime t, int free) {
    const SimTime when = align_up(t + xlat_, cfg_.cycle);
    for (int k = 0; k < cfg_.shards; ++k) {
      if (k == s) continue;
      drv_.remote(s, k, when,
                  [this, k, when, s, free] { on_gossip(k, when, s, free); });
    }
  }

  void on_gossip(int s, SimTime t, int from, int free) {
    ShardSched& sh = shards_[static_cast<std::size_t>(s)];
    ++sh.gossip_received;
    sh.known_free[static_cast<std::size_t>(from)] = free;
    // A blocked queue may now have somewhere to go.
    if (!sh.queue.empty()) request_pass(s, t);
  }

  ScaleConfig cfg_;
  Driver& drv_;
  cluster::ShardPartition partition_;
  SimDuration xlat_;  // cross-shard latency == conservative lookahead
  std::size_t total_jobs_ = 0;
  std::vector<std::vector<QueuedJob>> arrivals_;  // per home shard, sorted
  std::vector<ShardSched> shards_;
};

ScaleResult ScaleSim::collect() const {
  ScaleResult result;
  result.jobs.resize(total_jobs_);
  std::vector<bool> seen(total_jobs_, false);
  SimTime first_arrival = kNoPromise;
  SimTime last_finish = 0;
  SimDuration busy_total = 0;
  for (const ShardSched& sh : shards_) {
    result.forwards += sh.forwards;
    result.gossip_messages += sh.gossip_received;
    busy_total += sh.busy_node_ns;
    for (const auto& [id, outcome] : sh.done) {
      const std::size_t ix = static_cast<std::size_t>(id) - 1;  // 1-based ids
      if (ix >= total_jobs_ || seen[ix]) {
        throw std::logic_error("ScaleSim: duplicate or out-of-range job id");
      }
      seen[ix] = true;
      result.jobs[ix] = outcome;
      first_arrival = std::min(first_arrival, outcome.arrival);
      last_finish = std::max(last_finish, outcome.finish);
    }
  }
  for (std::size_t i = 0; i < total_jobs_; ++i) {
    if (!seen[i]) {
      throw std::logic_error("ScaleSim: job " + std::to_string(i + 1) +
                             " never finished (scenario did not drain)");
    }
  }
  result.makespan =
      total_jobs_ == 0 ? 0 : last_finish - first_arrival;
  util::Samples waits;
  util::OnlineStats slowdowns;
  result.wait_hist = util::Histogram(0.0, cfg_.wait_hist_max_s, 40);
  const double tau_s = to_seconds(cfg_.cycle);
  for (const ScaleJobOutcome& job : result.jobs) {
    const double wait_s = to_seconds(job.start - job.arrival);
    const double run_s = to_seconds(job.finish - job.start);
    waits.add(wait_s);
    slowdowns.add(util::bounded_slowdown(wait_s, run_s, tau_s));
    result.wait_hist.add(wait_s);
  }
  if (!waits.empty()) {
    result.mean_wait_s = waits.mean();
    result.p95_wait_s = waits.percentile(95.0);
    result.mean_slowdown = slowdowns.mean();
  }
  if (result.makespan > 0) {
    result.utilization =
        static_cast<double>(busy_total) /
        (static_cast<double>(partition_.num_nodes()) *
         static_cast<double>(result.makespan));
  }
  return result;
}

}  // namespace

std::uint64_t ScaleResult::checksum() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  const auto fold = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const ScaleJobOutcome& job = jobs[i];
    fold(i);
    fold(job.arrival);
    fold(job.start);
    fold(job.finish);
    fold(static_cast<std::uint64_t>(
        static_cast<std::uint32_t>(job.home_shard)));
    fold(static_cast<std::uint64_t>(static_cast<std::uint32_t>(job.ran_shard)));
    fold(static_cast<std::uint64_t>(static_cast<std::uint32_t>(job.forwards)));
  }
  return h;
}

SimDuration scale_lookahead(const ScaleConfig& config) {
  return cluster::ShardPartition(effective_fabric(config), config.shards)
      .lookahead();
}

ScaleResult run_scale_serial(const ScaleConfig& config) {
  SerialDriver driver;
  ScaleSim sim(config, driver);
  sim.seed_events();
  driver.engine.run();
  ScaleResult result = sim.collect();
  result.events = driver.engine.dispatched();
  result.rounds = 0;
  return result;
}

ScaleResult run_scale_sharded(const ScaleConfig& config, int threads) {
  ShardedDriver driver(config.shards, scale_lookahead(config));
  ScaleSim sim(config, driver);
  sim.seed_events();
  driver.engine.run(threads);
  ScaleResult result = sim.collect();
  result.events = driver.engine.stats().dispatched;
  result.rounds = driver.engine.stats().rounds;
  return result;
}

}  // namespace hpcs::batch
