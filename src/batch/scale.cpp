#include "batch/scale.h"

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "batch/allocator.h"
#include "batch/job.h"
#include "cluster/partition.h"
#include "sim/engine.h"
#include "sim/sharded.h"
#include "util/rng.h"
#include "util/stats.h"

namespace hpcs::batch {
namespace {

SimTime align_up(SimTime t, SimDuration q) { return (t + q - 1) / q * q; }

net::FabricConfig effective_fabric(const ScaleConfig& config) {
  net::FabricConfig fabric = config.fabric;
  fabric.nodes = config.nodes;
  return fabric;
}

/// Per-(job, node) noise draw in [0, 1): a stateless hash, so it costs no
/// shared RNG state and is identical however the run is partitioned.
double node_noise_u01(std::uint64_t seed, std::uint32_t job_id, int node) {
  util::SplitMix64 h(seed ^
                     (static_cast<std::uint64_t>(job_id) + 1) *
                         0x9e3779b97f4a7c15ULL ^
                     (static_cast<std::uint64_t>(node) + 1) *
                         0xbf58476d1ce4e5b9ULL);
  return static_cast<double>(h.next() >> 11) * 0x1.0p-53;
}

/// A job as it sits in (or moves between) shard queues.  The key
/// (arrival, id) is globally unique, so queue inserts commute and FCFS
/// order is identical in serial and sharded runs.
struct QueuedJob {
  SimTime arrival = 0;
  std::uint32_t id = 0;
  std::int32_t nodes = 0;
  std::int32_t home_shard = 0;
  std::int32_t forwards = 0;
  SimDuration base_runtime = 0;
};

// --- checkpoint/fault mode ---------------------------------------------------
// Active only when ScaleConfig::ckpt.enabled or the campaign is on; the
// legacy dispatch->finish fast path is untouched otherwise.  The same
// determinism contract holds: every event handler only *buffers* its
// payload into an ordered per-shard structure at a grid instant (inserts
// keyed by globally-unique ids commute), and the coalesced pass at grid+1
// drains the buffers in canonical order.  All PFS state lives on shard 0
// and is touched only from its pass; other shards talk to it through
// grid-aligned messages with the same cross-shard latency as forwards.

/// Where a running job is in its checkpoint cycle.
enum class Phase : std::uint8_t {
  kCompute,     // executing its current segment
  kStalled,     // selfish: interval expired, waiting out the PFS write
  kWriting,     // cooperative: inside its granted write slot
  kDown,        // a campaign failure knocked it out; rebooting
  kRestarting,  // rebooted, reading its checkpoint image back
};

/// Segment-event kinds, processed in this (canonical) order per job.
enum SegEventKind : int {
  kFinish = 0,      // final segment's compute would complete
  kCkptDue = 1,     // selfish: interval expired
  kWriteBegin = 2,  // cooperative: granted slot opens
  kWriteDone = 3,   // cooperative: write slot complete
  kRecover = 4,     // downtime over
};

enum IoKind : int { kIoWrite = 0, kIoReserve = 1, kIoRead = 2 };

struct IoRequest {
  int kind = kIoWrite;
  std::uint32_t seg = 0;
  int src_shard = 0;
  std::uint64_t bytes = 0;
  SimTime earliest = 0;  // kIoReserve: no slot before this
};

struct IoReply {
  int kind = kIoWrite;
  std::uint32_t seg = 0;
  SimTime slot_start = 0;
  SimTime slot_end = 0;
};

/// A dispatched job progressing through checkpointed compute segments.
/// `seg` is bumped at every segment start and on failure, so stale events
/// and stale IO replies (their tags no longer match) are dropped — the
/// staleness guard that keeps in-flight messages harmless.
struct RunningJob {
  QueuedJob job;
  std::vector<int> alloc;      // shard-local node ids
  SimTime start = 0;           // dispatch time (outcome.start)
  SimDuration work_total = 0;  // noisy compute the job needs
  SimDuration done = 0;        // work banked in committed checkpoints
  std::uint32_t seg = 0;
  SimTime seg_start = 0;       // current segment began (last commit point)
  SimDuration seg_work = 0;    // selfish: work this segment banks
  SimDuration covered = 0;     // cooperative: work the in-flight write banks
  SimDuration write_dur = 0;   // cooperative: granted slot length
  SimTime stall_from = 0;      // selfish: pre-write stall began
  SimTime fail_time = 0;
  SimDuration interval = 0;    // current interval (stretches under load)
  SimDuration base_interval = 0;
  Phase phase = Phase::kCompute;
};

/// How handlers schedule events: the only difference between the serial
/// reference and the sharded run.
class Driver {
 public:
  virtual ~Driver() = default;
  virtual void local(int shard, SimTime when, std::function<void()> fn) = 0;
  virtual void remote(int src, int dst, SimTime when,
                      std::function<void()> fn) = 0;
};

class SerialDriver final : public Driver {
 public:
  sim::Engine engine;
  void local(int, SimTime when, std::function<void()> fn) override {
    engine.schedule_at(when, std::move(fn));
  }
  void remote(int, int, SimTime when, std::function<void()> fn) override {
    engine.schedule_at(when, std::move(fn));
  }
};

class ShardedDriver final : public Driver {
 public:
  ShardedDriver(int shards, SimDuration lookahead)
      : engine(shards, lookahead) {}
  sim::ShardedEngine engine;
  void local(int shard, SimTime when, std::function<void()> fn) override {
    engine.shard(shard).schedule_at(when, std::move(fn));
  }
  void remote(int src, int dst, SimTime when,
              std::function<void()> fn) override {
    engine.send(src, dst, when, std::move(fn));
  }
};

class ScaleSim {
 public:
  ScaleSim(const ScaleConfig& config, Driver& driver)
      : cfg_(config),
        drv_(driver),
        partition_(effective_fabric(config), config.shards),
        xlat_(partition_.lookahead()),
        pfs_(config.ckpt.pfs) {
    if (cfg_.cycle < 2) {
      throw std::invalid_argument(
          "ScaleConfig: cycle must be >= 2ns (decisions run at cycle+1)");
    }
    if (cfg_.node_noise < 0.0) {
      throw std::invalid_argument("ScaleConfig: node_noise must be >= 0");
    }
    if (cfg_.share.enabled &&
        (cfg_.share.slots_per_node < 1 || cfg_.share.contention < 0.0)) {
      throw std::invalid_argument(
          "ScaleShareConfig: slots_per_node must be >= 1, contention >= 0");
    }
    slots_per_node_ = cfg_.share.enabled ? cfg_.share.slots_per_node : 1;
    campaign_ = cfg_.campaign;
    campaign_.nodes = cfg_.nodes;
    use_segments_ = cfg_.ckpt.enabled || campaign_.enabled();
    if (use_segments_ && cfg_.ckpt.downtime < cfg_.cycle) {
      throw std::invalid_argument(
          "ScaleCkptConfig: downtime must be >= one scheduler cycle");
    }
    shards_.resize(static_cast<std::size_t>(cfg_.shards));
    for (int s = 0; s < cfg_.shards; ++s) {
      ShardSched& sh = shards_[static_cast<std::size_t>(s)];
      sh.base_node = partition_.first_node(s);
      sh.alloc = std::make_unique<NodeAllocator>(
          partition_.node_count(s), cfg_.allocator_block,
          AllocPolicy::kBestFit, slots_per_node_);
      // All capacity bookkeeping (gossip, forwarding) is in slots; with
      // slots_per_node == 1 a slot IS a node and nothing changes.
      sh.known_free.resize(static_cast<std::size_t>(cfg_.shards));
      for (int k = 0; k < cfg_.shards; ++k) {
        sh.known_free[static_cast<std::size_t>(k)] =
            partition_.node_count(k) * slots_per_node_;
      }
      sh.advertised_free = partition_.node_count(s) * slots_per_node_;
    }
    // After the shard structures exist: workflow mode parks held jobs
    // directly on their home shard.
    build_workload();
    build_campaign();
  }

  void seed_events() {
    for (int s = 0; s < cfg_.shards; ++s) {
      schedule_next_arrival(s);
      schedule_next_failure(s);
    }
  }

  ScaleResult collect() const;

 private:
  struct ShardSched {
    int base_node = 0;
    std::unique_ptr<NodeAllocator> alloc;  // shard-local node ids
    std::map<std::pair<SimTime, std::uint32_t>, QueuedJob> queue;
    std::vector<int> known_free;  // last gossiped free count per shard
    int advertised_free = -1;     // what we last broadcast
    bool pass_pending = false;
    std::size_t next_arrival = 0;  // cursor into arrivals_[shard]
    // Results, merged after the run.
    std::vector<std::pair<std::uint32_t, ScaleJobOutcome>> done;
    std::uint64_t forwards = 0;
    std::uint64_t gossip_received = 0;
    SimDuration busy_node_ns = 0;
    // --- workflow mode -----------------------------------------------------
    // Jobs homed here that still wait on dependencies: the unfinished-parent
    // count, and the parked job itself.  Release messages decrement the
    // count (decrements commute); the one that zeroes it queues the job.
    std::map<std::uint32_t, int> wf_waiting;
    std::map<std::uint32_t, QueuedJob> wf_held;
    std::uint64_t dep_releases = 0;
    std::uint64_t released_jobs = 0;
    SimDuration dep_stall_ns = 0;  // release time - arrival, summed
    // --- checkpoint/fault mode (use_segments_) -----------------------------
    std::map<std::uint32_t, RunningJob> running;  // by job id
    /// Local node -> ids of jobs running there.  Exclusive mode keeps the
    /// set at one entry; shared-node mode is why it is a set — a failure
    /// must charge EVERY co-located job, not just one owner.
    std::map<int, std::set<std::uint32_t>> node_occupants;
    // This-instant buffers, drained by the next pass in canonical order.
    std::set<int> pending_failures;  // local node ids
    std::set<std::tuple<std::uint32_t, std::uint32_t, int>>
        pending_events;  // (job, seg, kind)
    std::map<std::pair<std::uint32_t, std::uint32_t>, IoReply>
        pending_replies;  // (job, seg)
    std::size_t next_failure = 0;  // cursor into failures_[shard]
    // Checkpoint/fault accounting (merged into ScaleResult::ckpt).
    ScaleCkptStats ckpt;
    SimDuration span_node_ns = 0;   // node-weighted dispatched->finish
    SimDuration ideal_node_ns = 0;  // node-weighted noisy compute demand
    SimDuration interval_sum_ns = 0;
    std::uint64_t interval_jobs = 0;
  };

  void build_workload() {
    if (cfg_.wf.enabled) {
      build_workflows();
      return;
    }
    ArrivalConfig arrivals = cfg_.arrivals;
    // Every job must fit the smallest shard, or it could starve forever in
    // a federated FCFS queue.
    arrivals.max_nodes =
        std::min(arrivals.max_nodes, partition_.min_shard_nodes());
    const std::vector<JobSpec> specs =
        generate_arrivals(arrivals, cfg_.seed);
    total_jobs_ = specs.size();
    arrivals_.resize(static_cast<std::size_t>(cfg_.shards));
    for (const JobSpec& spec : specs) {
      QueuedJob job;
      job.arrival = align_up(spec.arrival, cfg_.cycle);
      job.id = static_cast<std::uint32_t>(spec.id);
      job.nodes = spec.nodes;
      job.home_shard = static_cast<std::int32_t>(job.id) % cfg_.shards;
      job.base_runtime = ideal_runtime(spec);
      arrivals_[static_cast<std::size_t>(job.home_shard)].push_back(job);
    }
    // Per-shard arrival streams in (arrival, id) order for the chained
    // arrival events.
    for (auto& stream : arrivals_) {
      std::sort(stream.begin(), stream.end(),
                [](const QueuedJob& a, const QueuedJob& b) {
                  if (a.arrival != b.arrival) return a.arrival < b.arrival;
                  return a.id < b.id;
                });
    }
  }

  void build_workflows() {
    if (cfg_.wf.instances < 1) {
      throw std::invalid_argument(
          "ScaleWorkflowConfig: instances must be >= 1");
    }
    wf::DagGenConfig gen = cfg_.wf.dag;
    // Every task must fit the smallest shard (same rule as the arrival
    // stream's max_nodes clamp).
    gen.max_nodes = std::min(gen.max_nodes, partition_.min_shard_nodes());
    arrivals_.resize(static_cast<std::size_t>(cfg_.shards));
    int next_id = 1;
    for (int w = 0; w < cfg_.wf.instances; ++w) {
      gen.first_id = next_id;
      const std::vector<wf::TaskSpec> tasks =
          wf::generate_dag(gen, cfg_.seed);
      const SimTime arrival = align_up(
          static_cast<SimTime>(w) * cfg_.wf.spacing, cfg_.cycle);
      wf_ranges_.emplace_back(next_id,
                              next_id + static_cast<int>(tasks.size()));
      wf_cp_.push_back(wf::dag_from_tasks(tasks).critical_path());
      next_id += static_cast<int>(tasks.size());
      for (const wf::TaskSpec& task : tasks) {
        QueuedJob job;
        job.arrival = arrival;
        job.id = static_cast<std::uint32_t>(task.id);
        job.nodes = task.nodes;
        job.home_shard = static_cast<std::int32_t>(job.id) % cfg_.shards;
        job.base_runtime = wf::task_ideal_runtime(task);
        for (const int dep : task.deps) {
          wf_dependents_[static_cast<std::uint32_t>(dep)].push_back(job.id);
        }
        ShardSched& home = shards_[static_cast<std::size_t>(job.home_shard)];
        if (task.deps.empty()) {
          arrivals_[static_cast<std::size_t>(job.home_shard)].push_back(job);
        } else {
          home.wf_waiting.emplace(job.id, static_cast<int>(task.deps.size()));
          home.wf_held.emplace(job.id, job);
        }
      }
    }
    total_jobs_ = static_cast<std::size_t>(next_id - 1);
    for (auto& stream : arrivals_) {
      std::sort(stream.begin(), stream.end(),
                [](const QueuedJob& a, const QueuedJob& b) {
                  if (a.arrival != b.arrival) return a.arrival < b.arrival;
                  return a.id < b.id;
                });
    }
  }

  void build_campaign() {
    failures_.resize(static_cast<std::size_t>(cfg_.shards));
    if (!campaign_.enabled()) return;
    for (const fault::NodeFailure& f :
         fault::generate_campaign(campaign_, cfg_.seed)) {
      const int shard = partition_.shard_of_node(f.node);
      failures_[static_cast<std::size_t>(shard)].emplace_back(
          align_up(f.at, cfg_.cycle), f.node - partition_.first_node(shard));
    }
    // Grid alignment can reorder; restore (at, local node) order per shard.
    for (auto& stream : failures_) {
      std::sort(stream.begin(), stream.end());
    }
  }

  // --- event handlers --------------------------------------------------------
  // Mutations (arrival, transfer, finish, gossip) land on grid instants and
  // commute; the pass at grid+1 sees the complete instant state.

  void schedule_next_arrival(int s) {
    ShardSched& sh = shards_[static_cast<std::size_t>(s)];
    const auto& stream = arrivals_[static_cast<std::size_t>(s)];
    if (sh.next_arrival >= stream.size()) return;
    const SimTime at = stream[sh.next_arrival].arrival;
    drv_.local(s, at, [this, s, at] { on_arrival_batch(s, at); });
  }

  void on_arrival_batch(int s, SimTime at) {
    ShardSched& sh = shards_[static_cast<std::size_t>(s)];
    const auto& stream = arrivals_[static_cast<std::size_t>(s)];
    while (sh.next_arrival < stream.size() &&
           stream[sh.next_arrival].arrival == at) {
      const QueuedJob& job = stream[sh.next_arrival++];
      sh.queue.emplace(std::make_pair(job.arrival, job.id), job);
    }
    schedule_next_arrival(s);
    request_pass(s, at);
  }

  void schedule_next_failure(int s) {
    const auto& stream = failures_[static_cast<std::size_t>(s)];
    ShardSched& sh = shards_[static_cast<std::size_t>(s)];
    if (sh.next_failure >= stream.size()) return;
    const SimTime at = stream[sh.next_failure].first;
    drv_.local(s, at, [this, s, at] { on_failure_batch(s, at); });
  }

  void on_failure_batch(int s, SimTime at) {
    ShardSched& sh = shards_[static_cast<std::size_t>(s)];
    const auto& stream = failures_[static_cast<std::size_t>(s)];
    while (sh.next_failure < stream.size() &&
           stream[sh.next_failure].first == at) {
      sh.pending_failures.insert(stream[sh.next_failure++].second);
    }
    schedule_next_failure(s);
    request_pass(s, at);
  }

  void request_pass(int s, SimTime grid_now) {
    ShardSched& sh = shards_[static_cast<std::size_t>(s)];
    if (sh.pass_pending) return;
    sh.pass_pending = true;
    const SimTime at = grid_now + 1;
    drv_.local(s, at, [this, s, at] { do_pass(s, at); });
  }

  void do_pass(int s, SimTime t) {
    ShardSched& sh = shards_[static_cast<std::size_t>(s)];
    sh.pass_pending = false;
    if (use_segments_) {
      // Fixed phase order, canonical within each phase: failures first (so
      // same-instant replies/events for a just-failed segment go stale),
      // then IO replies, then segment events, then (shard 0) the PFS queue.
      process_failures(s, t);
      process_replies(s, t);
      process_events(s, t);
      if (s == kIoShard) serve_io(t);
    }
    while (!sh.queue.empty()) {
      const auto head = sh.queue.begin();
      QueuedJob job = head->second;
      if (job.nodes <= free_capacity(sh)) {
        sh.queue.erase(head);
        dispatch(s, t, job);
        continue;
      }
      // Strict FCFS locally, but a blocked head may migrate to the shard
      // with the best (gossip-known) free capacity.
      const int target = pick_target(s, job.nodes);
      if (job.forwards >= cfg_.max_forwards || target < 0) break;
      sh.queue.erase(head);
      forward(s, target, t, job);
    }
    const int free_now = free_capacity(sh);
    if (free_now != sh.advertised_free) {
      sh.advertised_free = free_now;
      broadcast_free(s, t, free_now);
    }
  }

  /// Schedulable capacity of a shard, in the workload's units: nodes when
  /// exclusive, slots when shared.
  int free_capacity(const ShardSched& sh) const {
    return cfg_.share.enabled ? sh.alloc->free_slots()
                              : sh.alloc->free_count();
  }

  void release_capacity(ShardSched& sh, const std::vector<int>& alloc) {
    if (cfg_.share.enabled) {
      sh.alloc->release_slots(alloc);
    } else {
      sh.alloc->release(alloc);
    }
  }

  int pick_target(int s, int need) const {
    const ShardSched& sh = shards_[static_cast<std::size_t>(s)];
    int best = -1;
    int best_free = 0;
    for (int k = 0; k < cfg_.shards; ++k) {
      if (k == s) continue;
      const int free = sh.known_free[static_cast<std::size_t>(k)];
      if (free >= need && free > best_free) {
        best = k;
        best_free = free;
      }
    }
    return best;
  }

  void dispatch(int s, SimTime t, const QueuedJob& job) {
    ShardSched& sh = shards_[static_cast<std::size_t>(s)];
    auto nodes = cfg_.share.enabled ? sh.alloc->allocate_slots(job.nodes)
                                    : sh.alloc->allocate(job.nodes);
    // free capacity >= request was checked; the allocator gathers fragments.
    if (!nodes) {
      throw std::logic_error("ScaleSim: allocation unexpectedly failed");
    }
    // The job runs at the speed of its unluckiest node (noise resonance):
    // stretch the ideal runtime by the worst per-(job, node) draw.  (In
    // shared mode the slot list repeats node ids; max over repeats is free.)
    double worst = 0.0;
    for (const int local : *nodes) {
      worst = std::max(
          worst, node_noise_u01(cfg_.seed, job.id, sh.base_node + local));
    }
    double stretch = 1.0 + cfg_.node_noise * worst;
    if (cfg_.share.enabled) {
      // Co-located jobs time-share the node: pay for the most crowded node
      // in the allocation, occupancy sampled right after placement (the
      // pass is the canonical decision point, so this is deterministic).
      int max_occupancy = 1;
      for (const int local : *nodes) {
        max_occupancy = std::max(max_occupancy, sh.alloc->busy_slots(local));
      }
      stretch *= 1.0 + cfg_.share.contention *
                           static_cast<double>(max_occupancy - 1);
    }
    const auto runtime = static_cast<SimDuration>(
        static_cast<double>(job.base_runtime) * stretch);
    if (use_segments_) {
      RunningJob rj;
      rj.job = job;
      rj.alloc = std::move(*nodes);
      rj.start = t;
      rj.work_total = runtime == 0 ? 1 : runtime;
      rj.base_interval = rj.interval = choose_interval(rj.alloc.size());
      if (rj.base_interval > 0) {
        sh.interval_sum_ns += rj.base_interval;
        ++sh.interval_jobs;
      }
      for (const int local : rj.alloc) {
        sh.node_occupants[local].insert(job.id);
      }
      auto [it, inserted] = sh.running.emplace(job.id, std::move(rj));
      if (!inserted) throw std::logic_error("ScaleSim: job dispatched twice");
      start_segment(s, t, it->second);
      return;
    }
    const SimTime finish = align_up(t + runtime, cfg_.cycle);
    drv_.local(s, finish,
               [this, s, finish, job, start = t, alloc = std::move(*nodes)] {
                 on_finish(s, finish, job, start, alloc);
               });
  }

  void on_finish(int s, SimTime t, const QueuedJob& job, SimTime start,
                 const std::vector<int>& nodes) {
    ShardSched& sh = shards_[static_cast<std::size_t>(s)];
    release_capacity(sh, nodes);
    sh.busy_node_ns +=
        static_cast<SimDuration>(nodes.size()) * (t - start);
    ScaleJobOutcome outcome;
    outcome.arrival = job.arrival;
    outcome.start = start;
    outcome.finish = t;
    outcome.home_shard = job.home_shard;
    outcome.ran_shard = s;
    outcome.forwards = job.forwards;
    sh.done.emplace_back(job.id, outcome);
    notify_dependents(s, t, t, job.id);
    request_pass(s, t);
  }

  /// Workflow mode: message every dependent's home shard that one parent is
  /// done.  Same grid-aligned fabric latency as job forwards; `stamp` is
  /// the finish instant, `t` the current event time (they differ when a
  /// pass retires a job whose compute ended earlier in the window).
  void notify_dependents(int s, SimTime stamp, SimTime t,
                         std::uint32_t job_id) {
    if (!cfg_.wf.enabled) return;
    const auto it = wf_dependents_.find(job_id);
    if (it == wf_dependents_.end()) return;
    const SimTime when = align_up(std::max(stamp, t) + xlat_, cfg_.cycle);
    for (const std::uint32_t dep : it->second) {
      const int dst = static_cast<int>(dep) % cfg_.shards;
      drv_.remote(s, dst, when,
                  [this, dst, when, dep] { on_dep_release(dst, when, dep); });
    }
  }

  void on_dep_release(int s, SimTime t, std::uint32_t job_id) {
    ShardSched& sh = shards_[static_cast<std::size_t>(s)];
    ++sh.dep_releases;
    const auto waiting = sh.wf_waiting.find(job_id);
    if (waiting == sh.wf_waiting.end()) {
      throw std::logic_error("ScaleSim: dependency release for unheld job");
    }
    if (--waiting->second > 0) return;
    sh.wf_waiting.erase(waiting);
    const auto held = sh.wf_held.find(job_id);
    QueuedJob job = held->second;
    sh.wf_held.erase(held);
    sh.dep_stall_ns += t > job.arrival ? t - job.arrival : 0;
    ++sh.released_jobs;
    sh.queue.emplace(std::make_pair(job.arrival, job.id), job);
    request_pass(s, t);
  }

  void forward(int src, int dst, SimTime t, QueuedJob job) {
    ShardSched& sh = shards_[static_cast<std::size_t>(src)];
    ++sh.forwards;
    // Debit our estimate so one pass does not herd every blocked job at the
    // same target; the next gossip from `dst` restores the truth.
    sh.known_free[static_cast<std::size_t>(dst)] -= job.nodes;
    ++job.forwards;
    const SimTime when = align_up(t + xlat_, cfg_.cycle);
    drv_.remote(src, dst, when,
                [this, dst, when, job] { on_transfer(dst, when, job); });
  }

  void on_transfer(int s, SimTime t, const QueuedJob& job) {
    ShardSched& sh = shards_[static_cast<std::size_t>(s)];
    sh.queue.emplace(std::make_pair(job.arrival, job.id), job);
    request_pass(s, t);
  }

  void broadcast_free(int s, SimTime t, int free) {
    const SimTime when = align_up(t + xlat_, cfg_.cycle);
    for (int k = 0; k < cfg_.shards; ++k) {
      if (k == s) continue;
      drv_.remote(s, k, when,
                  [this, k, when, s, free] { on_gossip(k, when, s, free); });
    }
  }

  void on_gossip(int s, SimTime t, int from, int free) {
    ShardSched& sh = shards_[static_cast<std::size_t>(s)];
    ++sh.gossip_received;
    sh.known_free[static_cast<std::size_t>(from)] = free;
    // A blocked queue may now have somewhere to go.
    if (!sh.queue.empty()) request_pass(s, t);
  }

  // --- checkpoint/fault handlers (pass context, t = grid + 1) ----------------

  /// Earliest grid instant >= `at` that is still schedulable from a pass.
  SimTime next_event_time(SimTime at, SimTime t) const {
    return align_up(std::max(at, t), cfg_.cycle);
  }

  std::uint64_t bytes_for(const RunningJob& rj) const {
    return cfg_.ckpt.bytes_per_node * rj.alloc.size();
  }

  /// Young/Daly interval for a job of `width` nodes (0 = no checkpoints).
  SimDuration choose_interval(std::size_t width) const {
    const ScaleCkptConfig& ck = cfg_.ckpt;
    if (!ck.enabled) return 0;
    double interval_s = 0.0;
    if (ck.interval_policy == ckpt::IntervalPolicy::kFixed) {
      interval_s = to_seconds(ck.fixed_interval);
    } else {
      const SimDuration mtbf =
          ck.node_mtbf > 0 ? ck.node_mtbf : campaign_.node_mtbf;
      if (mtbf == 0) return 0;  // nothing to optimise against
      const double write_s =
          to_seconds(pfs_.transfer_time(cfg_.ckpt.bytes_per_node * width));
      const double job_mtbf =
          ckpt::job_mtbf_s(to_seconds(mtbf), static_cast<int>(width));
      interval_s = ckpt::pick_interval_s(ck.interval_policy, write_s, job_mtbf,
                                         to_seconds(ck.fixed_interval));
    }
    interval_s *= ck.interval_scale;
    const auto interval = static_cast<SimDuration>(interval_s * 1e9);
    // Floor: the reservation round trip must fit inside one interval.
    return std::max(interval, 4 * (xlat_ + cfg_.cycle));
  }

  void schedule_seg_event(int s, SimTime when, std::uint32_t job_id,
                          std::uint32_t seg, int kind) {
    drv_.local(s, when, [this, s, when, job_id, seg, kind] {
      shards_[static_cast<std::size_t>(s)].pending_events.emplace(job_id, seg,
                                                                  kind);
      request_pass(s, when);
    });
  }

  void send_io(int s, SimTime t, std::uint32_t job_id, IoRequest req) {
    const SimTime when = align_up(t + xlat_, cfg_.cycle);
    drv_.remote(s, kIoShard, when, [this, job_id, req, when] {
      pending_io_.emplace(std::make_pair(job_id, req.seg), req);
      request_pass(kIoShard, when);
    });
  }

  /// Graceful degradation: a slot slipping far past the asked-for time
  /// means the PFS is saturated — back off the interval instead of letting
  /// every checkpoint stall the schedule.
  void maybe_stretch(ShardSched& sh, RunningJob& rj, SimDuration slip) {
    if (rj.base_interval == 0) return;
    if (static_cast<double>(slip) <=
        cfg_.ckpt.stretch_threshold * static_cast<double>(rj.interval)) {
      return;
    }
    const auto cap = static_cast<SimDuration>(
        static_cast<double>(rj.base_interval) * cfg_.ckpt.max_stretch);
    const auto next = static_cast<SimDuration>(
        static_cast<double>(rj.interval) * cfg_.ckpt.stretch_factor);
    if (rj.interval >= cap) return;
    rj.interval = std::min(next, cap);
    ++sh.ckpt.interval_stretches;
  }

  /// Begin a compute segment at grid instant t-1: run to completion if the
  /// remaining work fits one interval, otherwise line up the segment's
  /// checkpoint (selfish: a timer; cooperative: a PFS reservation).
  void start_segment(int s, SimTime t, RunningJob& rj) {
    const SimTime grid = t - 1;
    rj.seg += 1;
    rj.seg_start = grid;
    rj.phase = Phase::kCompute;
    const SimDuration left = rj.work_total - rj.done;
    if (rj.interval > 0 && left > rj.interval) {
      if (cfg_.ckpt.coordinator == ckpt::CoordPolicy::kCooperative) {
        IoRequest req;
        req.kind = kIoReserve;
        req.seg = rj.seg;
        req.src_shard = s;
        req.bytes = bytes_for(rj);
        req.earliest = grid + rj.interval;
        send_io(s, t, rj.job.id, req);
      } else {
        rj.seg_work = rj.interval;
        schedule_seg_event(s, next_event_time(grid + rj.interval, t),
                           rj.job.id, rj.seg, kCkptDue);
      }
      return;
    }
    schedule_seg_event(s, next_event_time(grid + left, t), rj.job.id, rj.seg,
                       kFinish);
  }

  /// The job is done: release its nodes and record the outcome, exactly as
  /// the legacy on_finish does, plus the waste bookkeeping.  `t` is the
  /// pass time, needed to schedule dependency releases in the future.
  void complete_job(int s, SimTime stamp, SimTime t, std::uint32_t job_id) {
    ShardSched& sh = shards_[static_cast<std::size_t>(s)];
    auto it = sh.running.find(job_id);
    RunningJob& rj = it->second;
    release_capacity(sh, rj.alloc);
    for (const int local : rj.alloc) {
      auto occ = sh.node_occupants.find(local);
      if (occ == sh.node_occupants.end()) continue;  // repeated slot entry
      occ->second.erase(job_id);
      if (occ->second.empty()) sh.node_occupants.erase(occ);
    }
    const SimDuration span = stamp > rj.start ? stamp - rj.start : 0;
    const auto width = static_cast<SimDuration>(rj.alloc.size());
    sh.busy_node_ns += width * span;
    sh.span_node_ns += width * span;
    sh.ideal_node_ns += width * std::min(rj.work_total, span);
    ScaleJobOutcome outcome;
    outcome.arrival = rj.job.arrival;
    outcome.start = rj.start;
    outcome.finish = stamp;
    outcome.home_shard = rj.job.home_shard;
    outcome.ran_shard = s;
    outcome.forwards = rj.job.forwards;
    sh.done.emplace_back(job_id, outcome);
    const std::uint32_t id = rj.job.id;
    sh.running.erase(it);
    notify_dependents(s, stamp, t, id);
    // The pass's dispatch loop runs right after this and sees the freed
    // nodes; no extra pass request is needed.
  }

  void process_failures(int s, SimTime t) {
    ShardSched& sh = shards_[static_cast<std::size_t>(s)];
    if (sh.pending_failures.empty()) return;
    const SimTime grid = t - 1;
    const auto failed = std::move(sh.pending_failures);
    sh.pending_failures.clear();
    for (const int local : failed) {
      const auto occ = sh.node_occupants.find(local);
      if (occ == sh.node_occupants.end() || occ->second.empty()) {
        ++sh.ckpt.failures_idle;
        continue;
      }
      // Every co-located job loses the node — a shared node's failure is
      // charged to ALL its occupants, not just one owner.  Set iteration
      // is ascending-id, so the knockback order is canonical.
      for (const std::uint32_t job_id : occ->second) {
        ++sh.ckpt.failures_hit;
        RunningJob& rj = sh.running.at(job_id);
        if (rj.phase == Phase::kDown || rj.phase == Phase::kRestarting) {
          continue;  // already rebooting; one recovery covers the job
        }
        // Knocked back to the last committed checkpoint: everything since
        // seg_start is gone — including a write in flight, which earns no
        // credit (the partial image is useless).
        sh.ckpt.lost_work_ns += grid > rj.seg_start ? grid - rj.seg_start : 0;
        if (rj.phase == Phase::kStalled || rj.phase == Phase::kWriting) {
          ++sh.ckpt.aborted_writes;
        }
        rj.seg += 1;  // void in-flight events and IO replies
        rj.phase = Phase::kDown;
        rj.fail_time = grid;
        schedule_seg_event(s, next_event_time(grid + cfg_.ckpt.downtime, t),
                           job_id, rj.seg, kRecover);
      }
    }
  }

  void process_replies(int s, SimTime t) {
    ShardSched& sh = shards_[static_cast<std::size_t>(s)];
    if (sh.pending_replies.empty()) return;
    const SimTime grid = t - 1;
    const auto replies = std::move(sh.pending_replies);
    sh.pending_replies.clear();
    for (const auto& [key, rep] : replies) {
      const std::uint32_t job_id = key.first;
      auto it = sh.running.find(job_id);
      if (it == sh.running.end() || it->second.seg != rep.seg) continue;
      RunningJob& rj = it->second;
      switch (rep.kind) {
        case kIoWrite: {  // selfish: the blocking write completed
          if (rj.phase != Phase::kStalled) break;
          const SimDuration write = rep.slot_end - rep.slot_start;
          const SimDuration stalled =
              grid > rj.stall_from ? grid - rj.stall_from : 0;
          sh.ckpt.ckpt_write_ns += write;
          sh.ckpt.ckpt_stall_ns += stalled > write ? stalled - write : 0;
          ++sh.ckpt.checkpoints;
          rj.done += rj.seg_work;
          maybe_stretch(sh, rj, stalled > write ? stalled - write : 0);
          start_segment(s, t, rj);
          break;
        }
        case kIoReserve: {  // cooperative: our write slot is booked
          if (rj.phase != Phase::kCompute) break;
          const SimTime finish_at = rj.seg_start + (rj.work_total - rj.done);
          const SimTime wanted = rj.seg_start + rj.interval;
          maybe_stretch(sh, rj,
                        rep.slot_start > wanted ? rep.slot_start - wanted : 0);
          if (rep.slot_start >= finish_at) {
            // Saturation pushed the slot past our finish: skip this
            // checkpoint and run the segment to completion.
            schedule_seg_event(s, next_event_time(finish_at, t), job_id,
                               rj.seg, kFinish);
          } else {
            rj.write_dur = rep.slot_end - rep.slot_start;
            schedule_seg_event(s, next_event_time(rep.slot_start, t), job_id,
                               rj.seg, kWriteBegin);
          }
          break;
        }
        case kIoRead: {  // restart image loaded; resume from the checkpoint
          if (rj.phase != Phase::kRestarting) break;
          sh.ckpt.restart_stall_ns +=
              grid > rj.fail_time ? grid - rj.fail_time : 0;
          ++sh.ckpt.restarts;
          start_segment(s, t, rj);
          break;
        }
      }
    }
  }

  void process_events(int s, SimTime t) {
    ShardSched& sh = shards_[static_cast<std::size_t>(s)];
    if (sh.pending_events.empty()) return;
    const SimTime grid = t - 1;
    const auto events = std::move(sh.pending_events);
    sh.pending_events.clear();
    for (const auto& [job_id, seg, kind] : events) {
      auto it = sh.running.find(job_id);
      if (it == sh.running.end() || it->second.seg != seg) continue;
      RunningJob& rj = it->second;
      switch (kind) {
        case kFinish: {
          if (rj.phase != Phase::kCompute) break;
          complete_job(s, grid, t, job_id);
          break;
        }
        case kCkptDue: {  // selfish: stall and push the write at the PFS
          if (rj.phase != Phase::kCompute) break;
          rj.phase = Phase::kStalled;
          rj.stall_from = grid;
          IoRequest req;
          req.kind = kIoWrite;
          req.seg = rj.seg;
          req.src_shard = s;
          req.bytes = bytes_for(rj);
          send_io(s, t, job_id, req);
          break;
        }
        case kWriteBegin: {  // cooperative: slot open, stop computing
          if (rj.phase != Phase::kCompute) break;
          const SimTime finish_at = rj.seg_start + (rj.work_total - rj.done);
          if (grid >= finish_at) {
            // The slot slipped past the work: the job finished computing
            // before its write began — no final checkpoint needed.
            complete_job(s, align_up(finish_at, cfg_.cycle), t, job_id);
            break;
          }
          rj.covered = grid - rj.seg_start;
          rj.phase = Phase::kWriting;
          schedule_seg_event(s, next_event_time(grid + rj.write_dur, t),
                             job_id, rj.seg, kWriteDone);
          break;
        }
        case kWriteDone: {  // cooperative: image committed
          if (rj.phase != Phase::kWriting) break;
          rj.done += rj.covered;
          ++sh.ckpt.checkpoints;
          sh.ckpt.ckpt_write_ns += rj.write_dur;
          start_segment(s, t, rj);
          break;
        }
        case kRecover: {  // reboot done; read the image back (if any)
          if (rj.phase != Phase::kDown) break;
          if (rj.done > 0) {
            rj.phase = Phase::kRestarting;
            IoRequest req;
            req.kind = kIoRead;
            req.seg = rj.seg;
            req.src_shard = s;
            req.bytes = bytes_for(rj);
            send_io(s, t, job_id, req);
          } else {
            // Nothing checkpointed yet: restart from scratch directly.
            sh.ckpt.restart_stall_ns +=
                grid > rj.fail_time ? grid - rj.fail_time : 0;
            ++sh.ckpt.restarts;
            start_segment(s, t, rj);
          }
          break;
        }
      }
    }
  }

  /// Shard 0 only: drain the PFS request queue in (job, seg) order against
  /// the busy horizons and message the grants back.
  void serve_io(SimTime t) {
    if (pending_io_.empty()) return;
    const SimTime grid = t - 1;
    const auto requests = std::move(pending_io_);
    pending_io_.clear();
    for (const auto& [key, req] : requests) {
      const std::uint32_t job_id = key.first;
      ckpt::PfsGrant grant;
      switch (req.kind) {
        case kIoWrite: grant = pfs_.write(req.bytes, grid); break;
        case kIoReserve:
          grant = pfs_.reserve(req.bytes, grid, req.earliest);
          break;
        case kIoRead: grant = pfs_.read(req.bytes, grid); break;
      }
      // Reservations answer immediately (the slot may be far out); reads
      // and blocking writes answer when the transfer completes.
      const SimTime base = req.kind == kIoReserve ? grid : grant.end;
      const SimTime when = align_up(std::max(base, t) + xlat_, cfg_.cycle);
      IoReply rep;
      rep.kind = req.kind;
      rep.seg = req.seg;
      rep.slot_start = grant.start;
      rep.slot_end = grant.end;
      const int dst = req.src_shard;
      drv_.remote(kIoShard, dst, when, [this, dst, job_id, rep, when] {
        shards_[static_cast<std::size_t>(dst)].pending_replies.emplace(
            std::make_pair(job_id, rep.seg), rep);
        request_pass(dst, when);
      });
    }
  }

  ScaleConfig cfg_;
  Driver& drv_;
  cluster::ShardPartition partition_;
  SimDuration xlat_;  // cross-shard latency == conservative lookahead
  std::size_t total_jobs_ = 0;
  std::vector<std::vector<QueuedJob>> arrivals_;  // per home shard, sorted
  std::vector<ShardSched> shards_;

  // --- checkpoint/fault state ------------------------------------------------
  /// The shard that owns the PFS model: all PfsModel mutation happens inside
  /// its pass, so the busy horizons advance in one deterministic order.
  static constexpr int kIoShard = 0;
  /// True when either checkpointing or a fault campaign is on: jobs then run
  /// as segments driven by the event handlers above instead of one
  /// dispatch->finish timer (the legacy path, kept bit-identical when off).
  bool use_segments_ = false;
  /// 1 unless shared-node mode is on (then cfg_.share.slots_per_node).
  int slots_per_node_ = 1;
  fault::CampaignConfig campaign_;  // cfg_.campaign with nodes overridden
  ckpt::PfsModel pfs_;
  /// Per shard: the campaign's failures mapped to (grid-aligned time, local
  /// node), sorted, delivered by the chained schedule_next_failure events.
  std::vector<std::vector<std::pair<SimTime, int>>> failures_;
  /// IO requests landed on shard 0, drained by serve_io in (job, seg) order.
  std::map<std::pair<std::uint32_t, std::uint32_t>, IoRequest> pending_io_;

  // --- workflow state --------------------------------------------------------
  /// job id -> ids of jobs waiting on it (read-only after construction).
  std::map<std::uint32_t, std::vector<std::uint32_t>> wf_dependents_;
  /// Per instance: [first id, past-last id) and the ideal critical path.
  std::vector<std::pair<int, int>> wf_ranges_;
  std::vector<SimDuration> wf_cp_;
};

ScaleResult ScaleSim::collect() const {
  ScaleResult result;
  result.jobs.resize(total_jobs_);
  std::vector<bool> seen(total_jobs_, false);
  SimTime first_arrival = kNoPromise;
  SimTime last_finish = 0;
  SimDuration busy_total = 0;
  SimDuration span_total = 0;
  SimDuration ideal_total = 0;
  SimDuration interval_sum = 0;
  std::uint64_t interval_jobs = 0;
  SimDuration dep_stall_total = 0;
  std::uint64_t released_total = 0;
  for (const ShardSched& sh : shards_) {
    result.forwards += sh.forwards;
    result.gossip_messages += sh.gossip_received;
    busy_total += sh.busy_node_ns;
    result.dep_releases += sh.dep_releases;
    dep_stall_total += sh.dep_stall_ns;
    released_total += sh.released_jobs;
    result.ckpt.checkpoints += sh.ckpt.checkpoints;
    result.ckpt.aborted_writes += sh.ckpt.aborted_writes;
    result.ckpt.failures_hit += sh.ckpt.failures_hit;
    result.ckpt.failures_idle += sh.ckpt.failures_idle;
    result.ckpt.restarts += sh.ckpt.restarts;
    result.ckpt.interval_stretches += sh.ckpt.interval_stretches;
    result.ckpt.ckpt_write_ns += sh.ckpt.ckpt_write_ns;
    result.ckpt.ckpt_stall_ns += sh.ckpt.ckpt_stall_ns;
    result.ckpt.lost_work_ns += sh.ckpt.lost_work_ns;
    result.ckpt.restart_stall_ns += sh.ckpt.restart_stall_ns;
    span_total += sh.span_node_ns;
    ideal_total += sh.ideal_node_ns;
    interval_sum += sh.interval_sum_ns;
    interval_jobs += sh.interval_jobs;
    for (const auto& [id, outcome] : sh.done) {
      const std::size_t ix = static_cast<std::size_t>(id) - 1;  // 1-based ids
      if (ix >= total_jobs_ || seen[ix]) {
        throw std::logic_error("ScaleSim: duplicate or out-of-range job id");
      }
      seen[ix] = true;
      result.jobs[ix] = outcome;
      first_arrival = std::min(first_arrival, outcome.arrival);
      last_finish = std::max(last_finish, outcome.finish);
    }
  }
  for (std::size_t i = 0; i < total_jobs_; ++i) {
    if (!seen[i]) {
      throw std::logic_error("ScaleSim: job " + std::to_string(i + 1) +
                             " never finished (scenario did not drain)");
    }
  }
  result.makespan =
      total_jobs_ == 0 ? 0 : last_finish - first_arrival;
  util::Samples waits;
  util::OnlineStats slowdowns;
  result.wait_hist = util::Histogram(0.0, cfg_.wait_hist_max_s, 40);
  const double tau_s = to_seconds(cfg_.cycle);
  for (const ScaleJobOutcome& job : result.jobs) {
    const double wait_s = to_seconds(job.start - job.arrival);
    const double run_s = to_seconds(job.finish - job.start);
    waits.add(wait_s);
    slowdowns.add(util::bounded_slowdown(wait_s, run_s, tau_s));
    result.wait_hist.add(wait_s);
  }
  if (!waits.empty()) {
    result.mean_wait_s = waits.mean();
    result.p95_wait_s = waits.percentile(95.0);
    result.mean_slowdown = slowdowns.mean();
  }
  if (result.makespan > 0) {
    // Capacity is slot-time: nodes x slots_per_node (slots == nodes when
    // exclusive), matching the slot-granular busy accounting.
    result.utilization =
        static_cast<double>(busy_total) /
        (static_cast<double>(partition_.num_nodes()) *
         static_cast<double>(slots_per_node_) *
         static_cast<double>(result.makespan));
  }
  if (use_segments_) {
    if (span_total > 0) {
      result.ckpt.waste_frac =
          std::max(0.0, 1.0 - static_cast<double>(ideal_total) /
                                  static_cast<double>(span_total));
    }
    if (interval_jobs > 0) {
      result.ckpt.mean_interval_s =
          to_seconds(interval_sum) / static_cast<double>(interval_jobs);
    }
    result.ckpt.pfs = pfs_.stats();
  }
  if (cfg_.wf.enabled && !wf_ranges_.empty()) {
    double makespan_sum = 0.0;
    double stretch_sum = 0.0;
    for (std::size_t w = 0; w < wf_ranges_.size(); ++w) {
      SimTime inst_first = kNoPromise;
      SimTime inst_last = 0;
      for (int id = wf_ranges_[w].first; id < wf_ranges_[w].second; ++id) {
        const ScaleJobOutcome& job =
            result.jobs[static_cast<std::size_t>(id) - 1];
        inst_first = std::min(inst_first, job.arrival);
        inst_last = std::max(inst_last, job.finish);
      }
      const double makespan_s = to_seconds(inst_last - inst_first);
      makespan_sum += makespan_s;
      if (wf_cp_[w] > 0) {
        stretch_sum += makespan_s / to_seconds(wf_cp_[w]);
      }
    }
    const auto n = static_cast<double>(wf_ranges_.size());
    result.wf_makespan_s = makespan_sum / n;
    result.wf_cp_stretch = stretch_sum / n;
    if (released_total > 0) {
      result.wf_dep_stall_s =
          to_seconds(dep_stall_total) / static_cast<double>(released_total);
    }
  }
  return result;
}

}  // namespace

std::uint64_t ScaleResult::checksum() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  const auto fold = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const ScaleJobOutcome& job = jobs[i];
    fold(i);
    fold(job.arrival);
    fold(job.start);
    fold(job.finish);
    fold(static_cast<std::uint64_t>(
        static_cast<std::uint32_t>(job.home_shard)));
    fold(static_cast<std::uint64_t>(static_cast<std::uint32_t>(job.ran_shard)));
    fold(static_cast<std::uint64_t>(static_cast<std::uint32_t>(job.forwards)));
  }
  return h;
}

SimDuration scale_lookahead(const ScaleConfig& config) {
  return cluster::ShardPartition(effective_fabric(config), config.shards)
      .lookahead();
}

ScaleResult run_scale_serial(const ScaleConfig& config) {
  SerialDriver driver;
  ScaleSim sim(config, driver);
  sim.seed_events();
  driver.engine.run();
  ScaleResult result = sim.collect();
  result.events = driver.engine.dispatched();
  result.rounds = 0;
  return result;
}

ScaleResult run_scale_sharded(const ScaleConfig& config, int threads) {
  ShardedDriver driver(config.shards, scale_lookahead(config));
  ScaleSim sim(config, driver);
  sim.seed_events();
  driver.engine.run(threads);
  ScaleResult result = sim.collect();
  result.events = driver.engine.stats().dispatched;
  result.rounds = driver.engine.stats().rounds;
  return result;
}

}  // namespace hpcs::batch
