#include "batch/replay.h"

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <utility>

#include "batch/allocator.h"
#include "batch/job.h"
#include "cluster/partition.h"
#include "sim/engine.h"
#include "sim/sharded.h"
#include "util/rng.h"
#include "util/stats.h"

namespace hpcs::batch {
namespace {

SimTime align_up(SimTime t, SimDuration q) { return (t + q - 1) / q * q; }

net::FabricConfig effective_fabric(const ReplayConfig& config) {
  net::FabricConfig fabric = config.fabric;
  fabric.nodes = config.nodes;
  return fabric;
}

/// Per-(job, node) noise draw in [0, 1): a stateless hash, identical
/// however the run is partitioned (same formula as scale.cpp).
double node_noise_u01(std::uint64_t seed, std::uint32_t job_id, int node) {
  util::SplitMix64 h(seed ^
                     (static_cast<std::uint64_t>(job_id) + 1) *
                         0x9e3779b97f4a7c15ULL ^
                     (static_cast<std::uint64_t>(node) + 1) *
                         0xbf58476d1ce4e5b9ULL);
  return static_cast<double>(h.next() >> 11) * 0x1.0p-53;
}

/// A job in (or between) shard queues.  The key (arrival, id) is globally
/// unique, so queue inserts commute and ordering is identical in serial
/// and sharded runs.  Suspend/resume state rides along: `work_total` is
/// fixed at first dispatch (the image pins the work), `committed` is what
/// checkpoint commits banked.
struct RJob {
  SimTime arrival = 0;
  std::uint32_t id = 0;  // internal 1-based id (input index + 1)
  std::int32_t nodes = 0;
  std::int32_t home_shard = 0;
  std::int32_t forwards = 0;
  std::int32_t queue = 0;
  std::int32_t user = 0;
  std::int32_t preempts = 0;
  SimDuration base_runtime = 0;
  SimDuration estimate = 0;
  SimDuration work_total = 0;     // noisy runtime, set at first dispatch
  SimDuration committed = 0;      // work banked at checkpoint commits
  SimDuration lost = 0;           // discarded by suspensions
  SimTime first_start = kNoPromise;
};

struct RunningRep {
  RJob job;
  std::vector<int> alloc;  // shard-local node ids
  SimTime start = 0;       // this incarnation's dispatch
  SimDuration startup = 0; // restart-read cost paid this incarnation
  SimTime est_end = 0;     // start + walltime estimate (backfill planning)
};

class Driver {
 public:
  virtual ~Driver() = default;
  virtual void local(int shard, SimTime when, std::function<void()> fn) = 0;
  virtual void remote(int src, int dst, SimTime when,
                      std::function<void()> fn) = 0;
};

class SerialDriver final : public Driver {
 public:
  sim::Engine engine;
  void local(int, SimTime when, std::function<void()> fn) override {
    engine.schedule_at(when, std::move(fn));
  }
  void remote(int, int, SimTime when, std::function<void()> fn) override {
    engine.schedule_at(when, std::move(fn));
  }
};

class ShardedDriver final : public Driver {
 public:
  ShardedDriver(int shards, SimDuration lookahead)
      : engine(shards, lookahead) {}
  sim::ShardedEngine engine;
  void local(int shard, SimTime when, std::function<void()> fn) override {
    engine.shard(shard).schedule_at(when, std::move(fn));
  }
  void remote(int src, int dst, SimTime when,
              std::function<void()> fn) override {
    engine.send(src, dst, when, std::move(fn));
  }
};

class ReplaySim {
 public:
  ReplaySim(const ReplayConfig& config, const std::vector<JobSpec>& specs,
            Driver& driver)
      : cfg_(config),
        drv_(driver),
        partition_(effective_fabric(config), config.shards),
        xlat_(partition_.lookahead()) {
    if (cfg_.cycle < 2) {
      throw std::invalid_argument(
          "ReplayConfig: cycle must be >= 2ns (decisions run at cycle+1)");
    }
    if (cfg_.node_noise < 0.0) {
      throw std::invalid_argument("ReplayConfig: node_noise must be >= 0");
    }
    queues_ = cfg_.queues.empty() ? default_queues() : cfg_.queues;
    validate_queues(queues_);
    shards_.resize(static_cast<std::size_t>(cfg_.shards));
    for (int s = 0; s < cfg_.shards; ++s) {
      ShardRep& sh = shards_[static_cast<std::size_t>(s)];
      sh.base_node = partition_.first_node(s);
      sh.alloc = std::make_unique<NodeAllocator>(partition_.node_count(s),
                                                 cfg_.allocator_block);
      sh.known_free.resize(static_cast<std::size_t>(cfg_.shards));
      for (int k = 0; k < cfg_.shards; ++k) {
        sh.known_free[static_cast<std::size_t>(k)] = partition_.node_count(k);
      }
      sh.advertised_free = partition_.node_count(s);
      sh.fairshare = FairshareTracker(cfg_.fairshare);
      sh.queue_nodes_used.assign(queues_.size(), 0);
    }
    build_workload(specs);
  }

  void seed_events() {
    for (int s = 0; s < cfg_.shards; ++s) schedule_next_arrival(s);
  }

  ReplayResult collect() const;

 private:
  /// One fairshare debit, parked until the next pass.  Floating-point
  /// accumulation does not commute, so same-instant finish events must not
  /// touch the tracker directly — each pass applies its backlog in job-id
  /// order, which serial and sharded runs agree on.
  struct Charge {
    std::uint32_t job_id = 0;
    std::int32_t user = 0;
    double node_seconds = 0.0;
    SimTime at = 0;
  };

  struct ShardRep {
    int base_node = 0;
    std::unique_ptr<NodeAllocator> alloc;  // shard-local node ids
    std::map<std::pair<SimTime, std::uint32_t>, RJob> queue;
    std::map<std::uint32_t, RunningRep> running;  // by job id
    std::vector<int> known_free;
    int advertised_free = -1;
    bool pass_pending = false;
    std::size_t next_arrival = 0;
    FairshareTracker fairshare;
    std::vector<Charge> pending_charges;
    std::vector<int> queue_nodes_used;  // per execution queue
    // Results, merged after the run.
    std::vector<std::pair<std::uint32_t, ReplayJobOutcome>> done;
    std::uint64_t forwards = 0;
    std::uint64_t gossip_received = 0;
    std::uint64_t preemptions = 0;
    SimDuration busy_node_ns = 0;
  };

  void build_workload(const std::vector<JobSpec>& specs) {
    total_jobs_ = specs.size();
    rejected_.resize(total_jobs_);
    arrivals_.resize(static_cast<std::size_t>(cfg_.shards));
    const int width_cap = partition_.min_shard_nodes();
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const JobSpec& spec = specs[i];
      RJob job;
      job.arrival = align_up(std::max<SimTime>(spec.arrival, 0), cfg_.cycle);
      job.id = static_cast<std::uint32_t>(i) + 1;
      // Every job must fit the smallest shard, or it could starve forever
      // in a federated queue.
      job.nodes = std::clamp(spec.nodes, 1, width_cap);
      job.home_shard = static_cast<std::int32_t>(job.id) % cfg_.shards;
      job.user = spec.user;
      job.base_runtime = std::max<SimDuration>(ideal_runtime(spec), 1);
      job.estimate =
          spec.estimate > 0 ? spec.estimate : job.base_runtime;
      job.queue = route_queue(queues_, job.nodes, job.estimate);
      if (job.queue < 0) {
        // Admission control: recorded up front, never enters a queue.
        ReplayJobOutcome& out = rejected_[i];
        out.arrival = job.arrival;
        out.queue = -1;
        out.user = job.user;
        out.home_shard = -1;
        was_rejected_.push_back(true);
        continue;
      }
      was_rejected_.push_back(false);
      arrivals_[static_cast<std::size_t>(job.home_shard)].push_back(job);
    }
    for (auto& stream : arrivals_) {
      std::sort(stream.begin(), stream.end(),
                [](const RJob& a, const RJob& b) {
                  if (a.arrival != b.arrival) return a.arrival < b.arrival;
                  return a.id < b.id;
                });
    }
  }

  // --- event handlers (mutations land on grid instants and commute) --------

  void schedule_next_arrival(int s) {
    ShardRep& sh = shards_[static_cast<std::size_t>(s)];
    const auto& stream = arrivals_[static_cast<std::size_t>(s)];
    if (sh.next_arrival >= stream.size()) return;
    const SimTime at = stream[sh.next_arrival].arrival;
    drv_.local(s, at, [this, s, at] { on_arrival_batch(s, at); });
  }

  void on_arrival_batch(int s, SimTime at) {
    ShardRep& sh = shards_[static_cast<std::size_t>(s)];
    const auto& stream = arrivals_[static_cast<std::size_t>(s)];
    while (sh.next_arrival < stream.size() &&
           stream[sh.next_arrival].arrival == at) {
      const RJob& job = stream[sh.next_arrival++];
      sh.queue.emplace(std::make_pair(job.arrival, job.id), job);
    }
    schedule_next_arrival(s);
    request_pass(s, at);
  }

  void request_pass(int s, SimTime grid_now) {
    ShardRep& sh = shards_[static_cast<std::size_t>(s)];
    if (sh.pass_pending) return;
    sh.pass_pending = true;
    const SimTime at = grid_now + 1;
    drv_.local(s, at, [this, s, at] { do_pass(s, at); });
  }

  /// The policy cycle, run once per instant at grid+1: order the shard's
  /// queue by (queue priority, decayed fairshare usage, arrival), then
  /// dispatch in order with EASY backfill behind the first blocked head.
  /// A blocked head may first preempt lower-priority running jobs, then
  /// try migrating to a reportedly freer shard.
  void do_pass(int s, SimTime t) {
    ShardRep& sh = shards_[static_cast<std::size_t>(s)];
    sh.pass_pending = false;
    const SimTime grid = t - 1;
    apply_pending_charges(sh);

    // Candidate order snapshot (keys are stable; decayed usage read once).
    std::vector<std::pair<SimTime, std::uint32_t>> order;
    order.reserve(sh.queue.size());
    for (const auto& [key, job] : sh.queue) order.push_back(key);
    const bool fair = cfg_.fairshare.enabled;
    std::map<std::int32_t, double> usage;
    if (fair) {
      for (const auto& [key, job] : sh.queue) {
        usage.emplace(job.user, sh.fairshare.usage(job.user, grid));
      }
    }
    std::stable_sort(
        order.begin(), order.end(),
        [&](const std::pair<SimTime, std::uint32_t>& a,
            const std::pair<SimTime, std::uint32_t>& b) {
          const RJob& ja = sh.queue.find(a)->second;
          const RJob& jb = sh.queue.find(b)->second;
          const int pa = queues_[static_cast<std::size_t>(ja.queue)].priority;
          const int pb = queues_[static_cast<std::size_t>(jb.queue)].priority;
          if (pa != pb) return pa > pb;
          if (fair) {
            const double ua = usage.find(ja.user)->second;
            const double ub = usage.find(jb.user)->second;
            if (ua != ub) return ua < ub;
          }
          if (a.first != b.first) return a.first < b.first;
          return a.second < b.second;
        });

    bool head_blocked = false;
    bool preempted_this_pass = false;
    SimTime resv = kNoPromise;
    int spare_at_resv = 0;
    for (const auto& key : order) {
      const auto qit = sh.queue.find(key);
      if (qit == sh.queue.end()) continue;  // defensive
      const RJob& job = qit->second;
      const QueueConfig& q = queues_[static_cast<std::size_t>(job.queue)];
      // A job blocked purely by its queue's node limit is skipped, never a
      // head: it must not block the other queues.
      if (q.node_limit > 0 &&
          sh.queue_nodes_used[static_cast<std::size_t>(job.queue)] +
                  job.nodes >
              q.node_limit) {
        continue;
      }
      const bool fits = job.nodes <= sh.alloc->free_count();
      if (!head_blocked) {
        if (fits) {
          RJob j = job;
          sh.queue.erase(qit);
          dispatch(s, t, std::move(j));
          continue;
        }
        // Blocked head: suspend lower-priority running jobs (at most one
        // preemption wave per pass), else migrate, else reserve+backfill.
        if (cfg_.preempt.enabled && !preempted_this_pass &&
            try_preempt(s, grid, job)) {
          preempted_this_pass = true;
          RJob j = job;
          sh.queue.erase(qit);
          dispatch(s, t, std::move(j));
          continue;
        }
        const int target = pick_target(s, job.nodes);
        if (job.forwards < cfg_.max_forwards && target >= 0) {
          RJob j = job;
          sh.queue.erase(qit);
          forward(s, target, t, std::move(j));
          continue;
        }
        head_blocked = true;
        const auto [when, avail] = reservation_for(sh, grid, job.nodes);
        resv = when;
        spare_at_resv = avail - job.nodes;
        continue;
      }
      // Backfill behind the head's reservation: safe if (estimated) done
      // before it, or running beside it on nodes it does not need.
      if (!fits) continue;
      const bool before_resv =
          resv == kNoPromise || grid + job.estimate <= resv;
      const bool beside_resv = resv != kNoPromise && job.nodes <= spare_at_resv;
      if (before_resv || beside_resv) {
        if (!before_resv) spare_at_resv -= job.nodes;
        RJob j = job;
        sh.queue.erase(qit);
        dispatch(s, t, std::move(j));
      }
    }

    const int free_now = sh.alloc->free_count();
    if (free_now != sh.advertised_free) {
      sh.advertised_free = free_now;
      broadcast_free(s, t, free_now);
    }
  }

  /// Earliest instant `need` nodes are expected free, per running jobs'
  /// walltime estimates (the EASY sweep, no advance windows at this level).
  std::pair<SimTime, int> reservation_for(const ShardRep& sh, SimTime grid,
                                          int need) const {
    int avail = sh.alloc->free_count();
    if (avail >= need) return {grid, avail};
    std::vector<std::pair<SimTime, int>> ends;
    ends.reserve(sh.running.size());
    for (const auto& [id, r] : sh.running) {
      ends.emplace_back(std::max(r.est_end, grid),
                        static_cast<int>(r.alloc.size()));
    }
    std::sort(ends.begin(), ends.end());
    SimTime reservation = kNoPromise;
    for (const auto& [end, nodes] : ends) {
      if (reservation == kNoPromise) {
        avail += nodes;
        if (avail >= need) reservation = end;
      } else if (end <= reservation) {
        avail += nodes;
      }
    }
    if (reservation == kNoPromise) return {kNoPromise, 0};
    return {reservation, avail};
  }

  int pick_target(int s, int need) const {
    const ShardRep& sh = shards_[static_cast<std::size_t>(s)];
    int best = -1;
    int best_free = 0;
    for (int k = 0; k < cfg_.shards; ++k) {
      if (k == s) continue;
      const int free = sh.known_free[static_cast<std::size_t>(k)];
      if (free >= need && free > best_free) {
        best = k;
        best_free = free;
      }
    }
    return best;
  }

  void dispatch(int s, SimTime t, RJob job) {
    ShardRep& sh = shards_[static_cast<std::size_t>(s)];
    auto nodes = sh.alloc->allocate(job.nodes);
    if (!nodes) {
      throw std::logic_error("ReplaySim: allocation unexpectedly failed");
    }
    if (job.work_total == 0) {
      // First dispatch: the job runs at the speed of its unluckiest node;
      // the checkpoint image then pins this work across suspensions.
      double worst = 0.0;
      for (const int local : *nodes) {
        worst = std::max(
            worst, node_noise_u01(cfg_.seed, job.id, sh.base_node + local));
      }
      job.work_total = std::max<SimDuration>(
          1, static_cast<SimDuration>(static_cast<double>(job.base_runtime) *
                                      (1.0 + cfg_.node_noise * worst)));
    }
    RunningRep run;
    run.start = t;
    run.startup =
        job.committed > 0
            ? ckpt::pfs_transfer_time(
                  cfg_.ckpt.pfs,
                  cfg_.ckpt.bytes_per_node *
                      static_cast<std::uint64_t>(job.nodes))
            : 0;
    run.est_end = t + std::max<SimDuration>(job.estimate, 1);
    if (job.first_start == kNoPromise) job.first_start = t;
    sh.queue_nodes_used[static_cast<std::size_t>(job.queue)] += job.nodes;
    const SimDuration remaining = job.work_total - job.committed;
    const SimTime finish = align_up(t + run.startup + remaining, cfg_.cycle);
    const std::uint32_t id = job.id;
    const std::int32_t incarnation = job.preempts;
    run.job = std::move(job);
    run.alloc = std::move(*nodes);
    auto [it, inserted] = sh.running.emplace(id, std::move(run));
    if (!inserted) throw std::logic_error("ReplaySim: job dispatched twice");
    drv_.local(s, finish, [this, s, finish, id, incarnation] {
      on_finish(s, finish, id, incarnation);
    });
  }

  void on_finish(int s, SimTime t, std::uint32_t id,
                 std::int32_t incarnation) {
    ShardRep& sh = shards_[static_cast<std::size_t>(s)];
    const auto it = sh.running.find(id);
    // Staleness guard: a suspension bumped the incarnation, so the old
    // finish event no longer matches and is dropped.
    if (it == sh.running.end() || it->second.job.preempts != incarnation) {
      return;
    }
    RunningRep& run = it->second;
    release_allocation(sh, run, t);
    ReplayJobOutcome out;
    out.arrival = run.job.arrival;
    out.start = run.job.first_start;
    out.finish = t;
    out.home_shard = run.job.home_shard;
    out.ran_shard = s;
    out.forwards = run.job.forwards;
    out.queue = run.job.queue;
    out.user = run.job.user;
    out.preempts = run.job.preempts;
    out.preempt_lost = run.job.lost;
    sh.done.emplace_back(id, out);
    sh.running.erase(it);
    request_pass(s, t);
  }

  /// Shared teardown for finish and suspension: nodes back, usage charged
  /// (deferred — see Charge).
  void release_allocation(ShardRep& sh, RunningRep& run, SimTime now) {
    sh.alloc->release(run.alloc);
    const SimDuration span = now > run.start ? now - run.start : 0;
    sh.busy_node_ns += static_cast<SimDuration>(run.alloc.size()) * span;
    sh.queue_nodes_used[static_cast<std::size_t>(run.job.queue)] -=
        run.job.nodes;
    if (cfg_.fairshare.enabled) {
      sh.pending_charges.push_back(
          {run.job.id, run.job.user,
           static_cast<double>(run.alloc.size()) * to_seconds(span), now});
    }
  }

  /// Drain the charge backlog in job-id order (the tracker decays lazily,
  /// so applying an instant-t charge from the pass at t+1 is exact).
  void apply_pending_charges(ShardRep& sh) {
    if (sh.pending_charges.empty()) return;
    std::sort(sh.pending_charges.begin(), sh.pending_charges.end(),
              [](const Charge& a, const Charge& b) {
                if (a.at != b.at) return a.at < b.at;
                return a.job_id < b.job_id;
              });
    for (const Charge& c : sh.pending_charges) {
      sh.fairshare.charge(c.user, c.node_seconds, c.at);
    }
    sh.pending_charges.clear();
  }

  /// Suspend enough lower-priority running jobs for the blocked `head`;
  /// true when the freed nodes make it fit.  Runs inside the pass, so all
  /// state is shard-local and the decision is deterministic.
  bool try_preempt(int s, SimTime grid, const RJob& head) {
    ShardRep& sh = shards_[static_cast<std::size_t>(s)];
    const int head_prio =
        queues_[static_cast<std::size_t>(head.queue)].priority;
    const int need = head.nodes - sh.alloc->free_count();
    if (need <= 0) return false;
    struct Victim {
      int prio;
      SimTime start;
      std::uint32_t id;
      int nodes;
    };
    std::vector<Victim> cands;
    for (const auto& [id, run] : sh.running) {
      const int prio =
          queues_[static_cast<std::size_t>(run.job.queue)].priority;
      if (prio > head_prio - cfg_.preempt.min_priority_gap) continue;
      // Anti-livelock floor: a job suspended max_preempts times becomes
      // non-preemptable and will eventually drain.
      if (run.job.preempts >= cfg_.preempt.max_preempts) continue;
      cands.push_back(
          {prio, run.start, id, static_cast<int>(run.alloc.size())});
    }
    // Lowest priority first; among equals the youngest start (least sunk
    // work past its last commit), ids descending for a total order.
    std::sort(cands.begin(), cands.end(),
              [](const Victim& a, const Victim& b) {
                if (a.prio != b.prio) return a.prio < b.prio;
                if (a.start != b.start) return a.start > b.start;
                return a.id > b.id;
              });
    int gain = 0;
    std::size_t take = 0;
    for (; take < cands.size() && gain < need; ++take) {
      gain += cands[take].nodes;
    }
    if (gain < need) return false;
    for (std::size_t i = 0; i < take; ++i) suspend(s, grid, cands[i].id);
    return true;
  }

  /// Suspend one running job: bank the work its periodic checkpoint
  /// commits covered, lose the rest, and requeue it here at its original
  /// arrival (so it keeps its seniority within its priority level).
  void suspend(int s, SimTime grid, std::uint32_t id) {
    ShardRep& sh = shards_[static_cast<std::size_t>(s)];
    const auto it = sh.running.find(id);
    RunningRep& run = it->second;
    release_allocation(sh, run, grid);
    ++sh.preemptions;
    RJob job = std::move(run.job);
    const SimDuration elapsed = grid > run.start ? grid - run.start : 0;
    const SimDuration worked =
        elapsed > run.startup ? elapsed - run.startup : 0;
    SimDuration newly = 0;
    if (cfg_.ckpt.interval > 0) {
      newly = worked / cfg_.ckpt.interval * cfg_.ckpt.interval;
    }
    // Never bank the job to completion: a suspension always costs at
    // least the tail past the last commit.
    newly = std::min(newly, job.work_total - job.committed - 1);
    job.committed += newly;
    job.lost += elapsed - newly;
    ++job.preempts;  // voids the in-flight finish event
    sh.running.erase(it);
    sh.queue.emplace(std::make_pair(job.arrival, job.id), std::move(job));
    // The requeued victim waits for the next pass; the caller dispatches
    // the head onto the freed nodes within this one.
  }

  void forward(int src, int dst, SimTime t, RJob job) {
    ShardRep& sh = shards_[static_cast<std::size_t>(src)];
    ++sh.forwards;
    // Debit our estimate so one pass does not herd every blocked job at
    // the same target; the next gossip from `dst` restores the truth.
    sh.known_free[static_cast<std::size_t>(dst)] -= job.nodes;
    ++job.forwards;
    const SimTime when = align_up(t + xlat_, cfg_.cycle);
    drv_.remote(src, dst, when,
                [this, dst, when, job] { on_transfer(dst, when, job); });
  }

  void on_transfer(int s, SimTime t, const RJob& job) {
    ShardRep& sh = shards_[static_cast<std::size_t>(s)];
    sh.queue.emplace(std::make_pair(job.arrival, job.id), job);
    request_pass(s, t);
  }

  void broadcast_free(int s, SimTime t, int free) {
    const SimTime when = align_up(t + xlat_, cfg_.cycle);
    for (int k = 0; k < cfg_.shards; ++k) {
      if (k == s) continue;
      drv_.remote(s, k, when,
                  [this, k, when, s, free] { on_gossip(k, when, s, free); });
    }
  }

  void on_gossip(int s, SimTime t, int from, int free) {
    ShardRep& sh = shards_[static_cast<std::size_t>(s)];
    ++sh.gossip_received;
    sh.known_free[static_cast<std::size_t>(from)] = free;
    if (!sh.queue.empty()) request_pass(s, t);
  }

  const ReplayConfig cfg_;
  Driver& drv_;
  cluster::ShardPartition partition_;
  SimDuration xlat_;
  std::vector<QueueConfig> queues_;
  std::vector<ShardRep> shards_;
  std::vector<std::vector<RJob>> arrivals_;  // per home shard, sorted
  std::vector<ReplayJobOutcome> rejected_;   // by input index (sparse)
  std::vector<bool> was_rejected_;
  std::size_t total_jobs_ = 0;
};

ReplayResult ReplaySim::collect() const {
  ReplayResult result;
  result.jobs.resize(total_jobs_);
  std::vector<bool> seen(total_jobs_, false);
  for (std::size_t i = 0; i < total_jobs_; ++i) {
    if (was_rejected_[i]) {
      result.jobs[i] = rejected_[i];
      seen[i] = true;
      ++result.rejected;
    }
  }
  SimTime first_arrival = kNoPromise;
  SimTime last_finish = 0;
  SimDuration busy_total = 0;
  for (const ShardRep& sh : shards_) {
    if (!sh.queue.empty() || !sh.running.empty()) {
      throw std::logic_error("ReplaySim: shard did not drain");
    }
    result.forwards += sh.forwards;
    result.gossip_messages += sh.gossip_received;
    result.preemptions += sh.preemptions;
    busy_total += sh.busy_node_ns;
    for (const auto& [id, outcome] : sh.done) {
      const std::size_t ix = static_cast<std::size_t>(id) - 1;
      if (ix >= total_jobs_ || seen[ix]) {
        throw std::logic_error("ReplaySim: duplicate or out-of-range job id");
      }
      seen[ix] = true;
      result.jobs[ix] = outcome;
      first_arrival = std::min(first_arrival, outcome.arrival);
      last_finish = std::max(last_finish, outcome.finish);
    }
  }
  for (std::size_t i = 0; i < total_jobs_; ++i) {
    if (!seen[i]) {
      throw std::logic_error("ReplaySim: job " + std::to_string(i + 1) +
                             " never finished (replay did not drain)");
    }
  }
  if (first_arrival != kNoPromise && last_finish > first_arrival) {
    result.makespan = last_finish - first_arrival;
  }
  util::Samples waits;
  util::Samples slowdowns;
  std::vector<util::Samples> queue_waits(queues_.size());
  std::vector<util::Samples> queue_slowdowns(queues_.size());
  std::vector<int> queue_jobs(queues_.size(), 0);
  std::map<std::int32_t, util::Samples> user_slowdowns;
  const double tau_s = to_seconds(cfg_.tau);
  for (const ReplayJobOutcome& job : result.jobs) {
    if (job.queue < 0) continue;  // rejected
    result.preempt_lost_s += to_seconds(job.preempt_lost);
    const double wait_s = to_seconds(job.start - job.arrival);
    const double run_s = to_seconds(job.finish - job.start);
    const double slow = util::bounded_slowdown(wait_s, run_s, tau_s);
    waits.add(wait_s);
    slowdowns.add(slow);
    const auto q = static_cast<std::size_t>(job.queue);
    ++queue_jobs[q];
    queue_waits[q].add(wait_s);
    queue_slowdowns[q].add(slow);
    user_slowdowns[job.user].add(slow);
  }
  if (!waits.empty()) {
    result.mean_wait_s = waits.mean();
    result.p95_wait_s = waits.percentile(95.0);
    result.mean_slowdown = slowdowns.mean();
  }
  if (!user_slowdowns.empty()) {
    std::vector<double> user_means;
    user_means.reserve(user_slowdowns.size());
    for (const auto& [user, samples] : user_slowdowns) {
      user_means.push_back(samples.mean());
    }
    result.user_fairness = util::jains_fairness_index(user_means);
  }
  result.queues.resize(queues_.size());
  for (std::size_t q = 0; q < queues_.size(); ++q) {
    result.queues[q].name = queues_[q].name;
    result.queues[q].jobs = queue_jobs[q];
    if (!queue_waits[q].empty()) {
      result.queues[q].mean_wait_s = queue_waits[q].mean();
      result.queues[q].mean_slowdown = queue_slowdowns[q].mean();
    }
  }
  if (result.makespan > 0) {
    result.utilization =
        static_cast<double>(busy_total) /
        (static_cast<double>(partition_.num_nodes()) *
         static_cast<double>(result.makespan));
  }
  return result;
}

}  // namespace

std::uint64_t ReplayResult::checksum() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  const auto fold = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const ReplayJobOutcome& job = jobs[i];
    fold(i);
    fold(job.arrival);
    fold(job.start);
    fold(job.finish);
    fold(static_cast<std::uint64_t>(
        static_cast<std::uint32_t>(job.ran_shard)));
    fold(static_cast<std::uint64_t>(static_cast<std::uint32_t>(job.forwards)));
    fold(static_cast<std::uint64_t>(static_cast<std::uint32_t>(job.queue)));
    fold(static_cast<std::uint64_t>(static_cast<std::uint32_t>(job.preempts)));
  }
  return h;
}

SimDuration replay_lookahead(const ReplayConfig& config) {
  return cluster::ShardPartition(effective_fabric(config), config.shards)
      .lookahead();
}

ReplayResult run_replay_serial(const ReplayConfig& config,
                               const std::vector<JobSpec>& specs) {
  SerialDriver driver;
  ReplaySim sim(config, specs, driver);
  sim.seed_events();
  driver.engine.run();
  ReplayResult result = sim.collect();
  result.events = driver.engine.dispatched();
  result.rounds = 0;
  return result;
}

ReplayResult run_replay_sharded(const ReplayConfig& config,
                                const std::vector<JobSpec>& specs,
                                int threads) {
  ShardedDriver driver(config.shards, replay_lookahead(config));
  ReplaySim sim(config, specs, driver);
  sim.seed_events();
  driver.engine.run(threads);
  ReplayResult result = sim.collect();
  result.events = driver.engine.stats().dispatched;
  result.rounds = driver.engine.stats().rounds;
  return result;
}

}  // namespace hpcs::batch
