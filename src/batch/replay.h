// Trace replay: a large SWF workload through the federated multi-queue
// scheduler at batch-event granularity, serial or sharded.
//
// This is the production-scheduler counterpart of src/batch/scale.cpp: the
// same determinism contract (grid-aligned commuting mutations, decisions in
// a coalesced pass at grid+1, cross-shard messages only over the fabric
// with latency >= the partition lookahead), but the per-shard scheduler is
// the PBS-class policy cycle instead of plain FCFS:
//
//   * Jobs are routed into prioritised execution queues (batch/queue.h) by
//     width/walltime at submission; per-queue node limits cap how much of
//     a shard one queue may hold, and a limit-blocked job never
//     head-blocks the others.
//   * Fairshare (batch/fairshare.h): each shard charges finished jobs'
//     node-seconds to their owner and orders candidates by decayed usage
//     within a priority level — the skewed-user correction the swf_replay
//     bench gates on against plain FCFS.
//   * Preemption: a blocked high-priority candidate may suspend running
//     lower-priority jobs (youngest first).  A suspended job keeps the
//     work banked at its periodic checkpoint commits (interval from
//     ReplayCkptConfig, restart read charged via ckpt::pfs_transfer_time)
//     and re-enters the queue at its original arrival; the rest is lost
//     and accounted.
//   * EASY backfill within each shard, and scale.cpp's gossip/forwarding
//     between shards (a blocked head may migrate to a reportedly freer
//     shard).
//
// run_replay_serial and run_replay_sharded are bit-identical at any thread
// count — the goldens tests/bench pin via ReplayResult::checksum().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "batch/fairshare.h"
#include "batch/queue.h"
#include "batch/scheduler.h"
#include "batch/workload.h"
#include "ckpt/pfs.h"
#include "net/fabric.h"
#include "util/time.h"

namespace hpcs::batch {

/// Checkpoint-commit model backing suspend/resume.  A running job banks
/// its work at every `interval` of execution; suspension keeps the banked
/// part, and resuming charges one restart read of the job's image.
struct ReplayCkptConfig {
  /// Commit period; 0 disables banking (a suspension loses everything).
  SimDuration interval = 60 * kSecond;
  std::uint64_t bytes_per_node = 64ULL << 20;
  /// Restart-read cost model (contention-free: ckpt::pfs_transfer_time).
  ckpt::PfsConfig pfs;
};

struct ReplayConfig {
  /// Cluster size; fabric.nodes is overridden to match.
  int nodes = 1024;
  /// Scheduling domains == sim::ShardedEngine shards.
  int shards = 8;
  net::FabricConfig fabric;
  /// Scheduler-cycle quantum (>= 2ns); SWF traces tick in seconds, so the
  /// default is one second.
  SimDuration cycle = 1 * kSecond;
  /// Execution queues walked in priority order (empty = one catch-all).
  std::vector<QueueConfig> queues;
  FairshareConfig fairshare;
  PreemptConfig preempt;
  ReplayCkptConfig ckpt;
  /// Per-(job, node) noise stretch on runtimes (0 replays exactly).
  double node_noise = 0.0;
  /// Times a blocked head may migrate to a reportedly freer shard.
  int max_forwards = 2;
  int allocator_block = 4;
  /// Bounded-slowdown threshold.
  SimDuration tau = 10 * kSecond;
  std::uint64_t seed = 1;
};

/// One job's trip, indexed by its position in the input spec vector.
struct ReplayJobOutcome {
  SimTime arrival = 0;   // grid-aligned submit time
  SimTime start = 0;     // first dispatch
  SimTime finish = 0;    // final completion
  std::int32_t home_shard = -1;
  std::int32_t ran_shard = -1;  // where it (last) ran
  std::int32_t forwards = 0;
  std::int32_t queue = -1;  // execution queue; -1 = rejected, never ran
  std::int32_t user = 0;
  std::int32_t preempts = 0;       // suspensions suffered
  SimDuration preempt_lost = 0;    // work discarded past commit points
};

struct ReplayQueueStats {
  std::string name;
  int jobs = 0;  // routed here (rejected jobs belong to no queue)
  double mean_wait_s = 0.0;
  double mean_slowdown = 0.0;  // bounded slowdown, tau = config.tau
};

struct ReplayResult {
  std::vector<ReplayJobOutcome> jobs;  // by input order; all others finish
  int rejected = 0;                    // jobs no queue admitted
  SimTime makespan = 0;
  std::uint64_t forwards = 0;
  std::uint64_t gossip_messages = 0;
  std::uint64_t preemptions = 0;
  std::uint64_t events = 0;
  std::uint64_t rounds = 0;  // conservative windows (0 when serial)
  double mean_wait_s = 0.0;
  double p95_wait_s = 0.0;
  double mean_slowdown = 0.0;
  double utilization = 0.0;  // busy node-time / (nodes x makespan)
  /// Jain's index over per-user mean bounded slowdowns (1.0 = every user
  /// sees the same service) — the fairshare headline.
  double user_fairness = 0.0;
  double preempt_lost_s = 0.0;
  std::vector<ReplayQueueStats> queues;

  /// FNV-1a over every outcome tuple: one word pinning the whole schedule
  /// bit-for-bit (the serial-vs-sharded goldens' currency).
  std::uint64_t checksum() const;
};

/// The conservative lookahead the replay's partition supports.
SimDuration replay_lookahead(const ReplayConfig& config);

/// Reference implementation: the whole cluster on one serial sim::Engine.
ReplayResult run_replay_serial(const ReplayConfig& config,
                               const std::vector<JobSpec>& specs);

/// The same replay on a sim::ShardedEngine (threads = 0 picks hardware
/// concurrency).  Bit-identical to run_replay_serial at any thread count.
ReplayResult run_replay_sharded(const ReplayConfig& config,
                                const std::vector<JobSpec>& specs,
                                int threads = 0);

}  // namespace hpcs::batch
