// Multi-queue configuration: the PBS-style execution queues jobs are
// routed into.
//
// A production workload manager never runs one flat FCFS queue: jobs are
// sorted into queues by shape (width, walltime), each queue carries a
// priority and resource limits, and the scheduler's policy cycle walks the
// queues in priority order.  This module is the declarative half: the
// QueueConfig records and the routing rule (first queue, in listed order,
// whose width/walltime window admits the job — the PBSPro "route by
// resources_max/min" subset).  BatchScheduler and batch::replay share it.
#pragma once

#include <climits>
#include <cstdint>
#include <string>
#include <vector>

#include "util/time.h"

namespace hpcs::batch {

struct QueueConfig {
  std::string name;
  /// Scheduling priority: higher drains first.  The preemption rule
  /// compares these (see PreemptConfig::min_priority_gap).
  int priority = 0;
  /// Admission window on job width (nodes requested), inclusive.
  int min_nodes = 1;
  int max_nodes = INT_MAX;
  /// Admission ceiling on the walltime estimate; 0 = unlimited.
  SimDuration max_walltime = 0;
  /// Cap on nodes allocated to this queue's running jobs at once;
  /// 0 = unlimited.  This is the per-queue node limit that keeps one
  /// queue from swamping the machine.
  int node_limit = 0;
};

/// The single catch-all queue used when a config lists none.
std::vector<QueueConfig> default_queues();

/// Throws std::invalid_argument on an empty name, duplicate names, or an
/// inverted width window.
void validate_queues(const std::vector<QueueConfig>& queues);

/// Route a job to the first queue (listed order) admitting its width and
/// walltime estimate.  Returns -1 when no queue admits the job (the caller
/// rejects it — PBS "qsub: Job violates queue and/or server resource
/// limits").
int route_queue(const std::vector<QueueConfig>& queues, int nodes,
                SimDuration estimate);

}  // namespace hpcs::batch
