#include "batch/job.h"

namespace hpcs::batch {

mpi::Program build_job_program(const JobSpec& spec) {
  mpi::Program p;
  p.barrier();  // MPI_Init handshake
  p.loop(spec.iterations)
      .compute(spec.grain, spec.jitter)
      .allreduce(8)
      .end_loop();
  return p;
}

SimDuration ideal_runtime(const JobSpec& spec) {
  return static_cast<SimDuration>(spec.iterations) * spec.grain;
}

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kPending: return "pending";
    case JobState::kHeld: return "held";
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kFinished: return "finished";
    case JobState::kFailed: return "failed";
    case JobState::kCanceled: return "canceled";
    case JobState::kRejected: return "rejected";
  }
  return "?";
}

}  // namespace hpcs::batch
