#include "batch/workflow.h"

namespace hpcs::batch {

std::vector<JobSpec> jobs_from_tasks(const std::vector<wf::TaskSpec>& tasks,
                                     SimTime arrival) {
  std::vector<JobSpec> jobs;
  jobs.reserve(tasks.size());
  for (const wf::TaskSpec& task : tasks) {
    JobSpec job;
    job.id = task.id;
    job.name = task.name;
    job.arrival = arrival;
    job.nodes = task.nodes;
    job.ranks_per_node = task.ranks_per_node;
    job.estimate = task.estimate;
    job.iterations = task.iterations;
    job.grain = task.grain;
    job.jitter = task.jitter;
    job.deps = task.deps;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::vector<JobSpec> jobs_from_control(const std::string& text,
                                       SimTime arrival) {
  return jobs_from_tasks(wf::parse_control_tasks(text), arrival);
}

std::vector<JobSpec> jobs_from_generated(const wf::DagGenConfig& config,
                                         std::uint64_t seed, SimTime arrival) {
  return jobs_from_tasks(wf::generate_dag(config, seed), arrival);
}

}  // namespace hpcs::batch
