// Reproducible batch workloads: a seeded synthetic arrival generator and a
// SWF-style trace loader.
//
// The generator models the classic supercomputer-log shape (Feitelson's
// workload archive): Poisson job arrivals, log-normal node counts, and
// log-normal runtimes.  Everything is drawn from independent substreams of
// one seed, so a trace is a pure function of (config, seed) — the property
// the batch determinism tests pin bit-for-bit.
//
// The trace format is a practical subset of the Standard Workload Format
// (SWF): whitespace-separated numeric columns, one job per line, ';'
// comments.  Traces written by format_swf() round-trip through parse_swf().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "batch/job.h"

namespace hpcs::batch {

struct ArrivalConfig {
  int jobs = 20;
  /// Mean of the exponential inter-arrival distribution (Poisson process).
  SimDuration mean_interarrival = 500 * kMillisecond;
  SimTime first_arrival = 0;
  /// Node counts: round(lognormal(log_mean, log_sigma)) clamped to
  /// [1, max_nodes].
  double nodes_log_mean = 0.5;
  double nodes_log_sigma = 0.7;
  int max_nodes = 4;
  int ranks_per_node = 8;
  /// Runtimes: lognormal(log of runtime_typical, runtime_log_sigma),
  /// quantised to whole iterations of `grain`.
  SimDuration runtime_typical = 100 * kMillisecond;
  double runtime_log_sigma = 0.6;
  SimDuration grain = 5 * kMillisecond;
  double jitter = 0.0;
  /// User estimates: ideal runtime x this factor (>= 1 keeps estimates
  /// conservative, which is what EASY's no-delay guarantee assumes).
  double estimate_factor = 2.0;
  /// Submitting users: each job is owned by one of `users` ids (1-based).
  /// user_zipf = 0 draws owners uniformly; > 0 skews them Zipf-style
  /// (weight of user u proportional to u^-user_zipf), the classic
  /// heavy-user shape fairshare exists to correct.
  int users = 1;
  double user_zipf = 0.0;
};

/// Draw a job stream from `seed`.  Bit-identical for equal (config, seed).
std::vector<JobSpec> generate_arrivals(const ArrivalConfig& config,
                                       std::uint64_t seed);

/// Defaults for SWF fields the trace does not carry (program shape).
struct SwfDefaults {
  int ranks_per_node = 8;
  SimDuration grain = 5 * kMillisecond;
  double jitter = 0.0;
  int max_nodes = 1 << 20;  // clamp for hostile traces
  /// Repair salvageable defects instead of throwing: a non-monotonic
  /// submit time is clamped up to the previous job's (SWF requires
  /// submit-order sorting), and a line whose runtime or node count is
  /// missing/non-positive is dropped (the SWF convention for canceled
  /// jobs).  Every repair is counted in SwfParseStats with its line
  /// number.  When false (the default), those defects throw.
  bool lenient = false;
};

/// What parse_swf repaired or dropped (lenient mode), and where.
struct SwfParseStats {
  int jobs = 0;             // jobs returned
  int clamped_submits = 0;  // non-monotonic submits clamped to the prior
  int dropped_lines = 0;    // lines dropped (bad runtime / node count)
  /// (line number, what) per repair, capped at kMaxWarnings so a hostile
  /// million-line trace cannot balloon memory.
  std::vector<std::pair<int, std::string>> warnings;
  static constexpr std::size_t kMaxWarnings = 64;

  void warn(int line, std::string what) {
    if (warnings.size() < kMaxWarnings) {
      warnings.emplace_back(line, std::move(what));
    }
  }
};

/// Parse an SWF-style trace.  Columns (1-based, as in the SWF spec):
///   1 job id, 2 submit [s], 4 runtime [s], 8 requested nodes (falls back
///   to column 5, allocated), 9 requested walltime [s] (falls back to
///   runtime), 12 user id.  Other columns are accepted and ignored; -1
/// means "unknown".  Submit times must be non-decreasing down the file
/// (the SWF sort order replay depends on).  Throws std::invalid_argument
/// on malformed lines — the message carries the 1-based line number —
/// unless defaults.lenient repairs them (see SwfDefaults; repairs land in
/// `stats` when given).
std::vector<JobSpec> parse_swf(const std::string& text,
                               const SwfDefaults& defaults = {},
                               SwfParseStats* stats = nullptr);

/// Render jobs as an SWF-style trace parse_swf() reads back.
std::string format_swf(const std::vector<JobSpec>& jobs);

}  // namespace hpcs::batch
