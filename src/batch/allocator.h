// Topology-aware node allocation for the batch scheduler.
//
// Nodes are numbered 0..N-1 and grouped into fixed-size blocks (a chassis /
// leaf switch: nodes in one block are "close").  allocate() prefers the
// best-fit contiguous run — ties broken toward block-aligned starts — and
// falls back to gathering fragments only when no single run fits, mirroring
// how production allocators trade locality against utilisation.  Nodes lost
// to fault injection are marked offline and simply drop out of the pool;
// conservation (free + busy + offline == total) is checkable at any instant.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace hpcs::batch {

enum class NodeState : std::uint8_t { kFree, kBusy, kOffline };

/// Placement policy.  kBestFit is the production default (contiguous runs,
/// block-aligned).  kScatter deliberately stripes an allocation across
/// blocks — the worst case for network locality — so experiments can
/// measure what leaf-switch locality is worth once links contend.
enum class AllocPolicy : std::uint8_t { kBestFit, kScatter };

const char* alloc_policy_name(AllocPolicy policy);

struct AllocatorStats {
  std::uint64_t allocations = 0;
  std::uint64_t releases = 0;
  std::uint64_t contiguous = 0;  // allocations served by one run
  std::uint64_t fragmented = 0;  // allocations gathered from several runs
};

class NodeAllocator {
 public:
  /// `block` is the chassis size used for alignment preference (clamped to
  /// [1, nodes]).  `slots_per_node` > 1 enables shared-node mode: a node
  /// holds that many job slots and allocate_slots() may pack several jobs
  /// onto one node.  The default 1 keeps the legacy exclusive behaviour
  /// bit for bit.
  explicit NodeAllocator(int nodes, int block = 4,
                         AllocPolicy policy = AllocPolicy::kBestFit,
                         int slots_per_node = 1);

  /// Hand out `n` whole nodes (sorted ids), or nullopt when fewer than `n`
  /// are free.  Never returns offline nodes.  In shared-node mode this
  /// claims every slot of each picked node (an exclusive job).
  std::optional<std::vector<int>> allocate(int n);

  /// Shared-node mode: hand out `n` slots as a sorted node-id list, one
  /// entry per slot (a node granted k slots appears k times).  Packs
  /// partially-occupied nodes first (ascending id) so co-location is
  /// maximised and whole nodes stay available for exclusive jobs; any
  /// remainder claims whole free nodes through the placement policy.
  /// Returns nullopt when fewer than `n` schedulable slots exist.  With
  /// slots_per_node == 1 this is exactly allocate().
  std::optional<std::vector<int>> allocate_slots(int n);

  /// Return a slot allocation (the exact vector allocate_slots returned).
  /// A node's last released slot frees the node; slots on nodes that went
  /// offline under the job are dropped (the node stays out of the pool).
  void release_slots(const std::vector<int>& slots);

  /// Return an allocation.  Busy nodes become free; nodes marked offline
  /// while the job ran stay offline (they re-enter the pool via
  /// set_online).
  void release(const std::vector<int>& nodes);

  /// Take a node out of the pool (fault injection).  Works in any state:
  /// a busy node's job is the caller's problem (the scheduler aborts it);
  /// the node itself is gone immediately.  Returns the previous state.
  NodeState set_offline(int node);
  /// Repaired node rejoins the free pool.  No-op unless offline.
  void set_online(int node);

  NodeState state(int node) const;
  int total() const { return static_cast<int>(states_.size()); }
  int free_count() const { return free_; }
  int busy_count() const { return busy_; }
  int offline_count() const { return offline_; }
  int slots_per_node() const { return slots_per_node_; }
  /// Occupied slots on `node` (0 unless shared-node mode put jobs there).
  /// Offline nodes keep their occupant count until the jobs release — that
  /// is how a fault on a shared node knows every co-located victim.
  int busy_slots(int node) const;
  /// Schedulable slots across free and (partially) busy nodes; offline
  /// nodes contribute nothing regardless of their occupants.
  int free_slots() const;
  /// True when the most recent allocate() was one contiguous run.
  bool last_allocation_contiguous() const { return last_contiguous_; }
  const AllocatorStats& stats() const { return stats_; }

  /// Audit the cached counts against a recount of the state array; throws
  /// std::logic_error on mismatch (used by the batch invariant tests).
  void check_conservation() const;

  std::string describe() const;

 private:
  struct Run {
    int start = 0;
    int length = 0;
  };
  std::vector<Run> free_runs() const;
  void check_node(int node) const;
  std::vector<int> pick_best_fit(int n, const std::vector<Run>& runs);
  std::vector<int> pick_scattered(int n);

  std::vector<NodeState> states_;
  std::vector<int> slot_busy_;  // occupied slots per node (shared mode)
  int block_;
  AllocPolicy policy_;
  int slots_per_node_;
  int free_ = 0;
  int busy_ = 0;
  int offline_ = 0;
  bool last_contiguous_ = false;
  AllocatorStats stats_;
};

}  // namespace hpcs::batch
