// BatchScheduler: the cluster-level workload manager.
//
// The second scheduler in an HPC system.  The paper's node-level story —
// scheduler noise stretches every job — compounds here: longer service
// times back the wait queue up, so node-level noise is amplified into
// queueing delay.  This module closes that loop inside the one
// discrete-event engine: job arrivals are engine events, each dispatched
// job boots its MPI ranks on exactly the nodes the allocator handed out,
// and completions release nodes and trigger the next scheduling pass.
//
// Policies: FCFS (strict arrival order), SJF (shortest estimate first, no
// backfill), and EASY backfill (Lifka): the head of the queue gets a
// reservation at the earliest instant enough nodes will be free — computed
// from running jobs' walltime estimates — and a later job may jump the
// queue only if it cannot delay that reservation (it either finishes
// before the reservation or leaves enough nodes free at it).
//
// Node failures arrive as NodeFault events: the node leaves the pool, any
// job running on it is aborted (and, by default, resubmitted), and a job
// queued behind the shrunken pool simply waits — the "queued job survives
// a node loss" property the tests pin.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "batch/allocator.h"
#include "batch/fairshare.h"
#include "batch/job.h"
#include "batch/queue.h"
#include "batch/reservation.h"
#include "cluster/cluster.h"
#include "fault/campaign.h"
#include "mpi/world.h"
#include "wf/dag.h"

namespace hpcs::batch {

/// kEasyCp is EASY backfill with a workflow-aware reservation rule: the
/// queue is kept ordered by critical-path priority (largest bottom level in
/// the workflow DAG first; ties by arrival then id), so the reservation
/// goes to the ready job gating the heaviest unfinished subtree instead of
/// the oldest one.  On dependency-free workloads the bottom level is the
/// job's own ideal runtime, so kEasyCp degenerates to longest-first EASY.
enum class BatchPolicy : std::uint8_t { kFcfs, kSjf, kEasy, kEasyCp };

const char* batch_policy_name(BatchPolicy policy);

/// A scripted node-level fault, relative to the engine clock.
struct NodeFault {
  SimTime at = 0;
  int node = 0;
  bool online = false;  // false = fails at `at`, true = repaired at `at`
};

/// Suspend/requeue preemption (PBSPro's preempt_order "SR" mode): when the
/// highest-priority waiting job cannot start, running jobs from queues at
/// least `min_priority_gap` priority levels below it are suspended —
/// youngest first — until the candidate fits.  A suspended job keeps the
/// work its ranks committed at sync-point checkpoints (ClusterJob::
/// rank_sync_count) and re-enters the queue at its original arrival time;
/// everything since the last committed sync point is lost and accounted.
struct PreemptConfig {
  bool enabled = false;
  /// Candidate queue priority must exceed the victim's by at least this.
  int min_priority_gap = 1;
  /// Suspensions one job may suffer before it becomes non-preemptable
  /// (the anti-livelock floor).
  int max_preempts = 2;
};

struct BatchConfig {
  BatchPolicy policy = BatchPolicy::kEasy;
  /// Scheduling class the ranks run under (kHpc on an HPL cluster).
  kernel::Policy rank_policy = kernel::Policy::kNormal;
  int rt_prio = 0;
  /// Chassis size for the allocator's alignment preference.
  int allocator_block = 4;
  /// Node placement policy (kScatter stripes jobs across leaf switches —
  /// the locality ablation for the contention-aware fabric).
  AllocPolicy allocator_policy = AllocPolicy::kBestFit;
  /// Template for each job's MPI world; nranks and seed are set per job.
  mpi::MpiConfig mpi;
  /// Bounded-slowdown threshold tau (guards the metric against tiny jobs).
  SimDuration tau = 10 * kMillisecond;
  /// Re-queue jobs whose nodes failed under them (keeps their original
  /// arrival time, so the lost work shows up as waiting time).
  bool resubmit_failed = true;
  int max_resubmits = 4;
  /// Scripted node failures/repairs, applied at absolute engine times.
  std::vector<NodeFault> node_faults;
  /// Seeded fault campaign (fault::generate_campaign): expanded into
  /// offline/online events at construction, on top of node_faults.
  fault::CampaignConfig campaign;
  /// Repair time per campaign outage; 0 = failed nodes stay down.
  SimDuration campaign_repair = 0;
  /// Execution queues, walked in priority order (empty = one catch-all
  /// queue).  Jobs are routed by width/walltime at submit; a job no queue
  /// admits is rejected (JobState::kRejected).
  std::vector<QueueConfig> queues;
  /// Per-user decayed-usage priority (see batch/fairshare.h).  When
  /// enabled, waiting jobs of lightly-used users sort ahead within their
  /// queue's priority level.
  FairshareConfig fairshare;
  /// Suspend/requeue preemption across queue priority levels.
  PreemptConfig preempt;
  /// Advance reservations: promised node windows claimed from the
  /// allocator at window start and enforced by dispatch admission control.
  std::vector<Reservation> reservations;
  std::uint64_t seed = 1;
};

/// Per-queue slice of the run (BatchMetrics::queues, one per config queue).
struct BatchQueueMetrics {
  std::string name;
  int jobs = 0;      // routed here (including still-waiting ones)
  int finished = 0;
  double mean_wait_s = 0.0;
  double mean_slowdown = 0.0;  // bounded slowdown over finished jobs
};

/// Aggregate metrics over one scheduler run (see BatchScheduler::metrics).
struct BatchMetrics {
  int jobs = 0;
  int finished = 0;
  int failed = 0;
  double mean_wait_s = 0.0;
  double mean_slowdown = 0.0;  // bounded slowdown, tau = config.tau
  double p95_slowdown = 0.0;
  double max_slowdown = 0.0;
  double jain_fairness = 0.0;  // Jain's index over per-job slowdowns
  double makespan_s = 0.0;     // first arrival -> last completion
  double utilization = 0.0;    // busy node-time / (total nodes x makespan)
  double mean_queue_depth = 0.0;  // time-averaged over the makespan
  // Workflow metrics (zero unless jobs carried dependencies).
  int canceled = 0;               // jobs canceled by a failed dependency
  double workflow_makespan_s = 0.0;  // first arrival -> last DAG job done
  double critical_path_s = 0.0;      // heaviest root->exit ideal-runtime path
  /// workflow makespan / critical path: 1.0 would be a perfect machine with
  /// infinite nodes and free communication; contention and queueing push it
  /// up.  The headline number EASY-CP is meant to shrink.
  double cp_stretch = 0.0;
  double mean_dep_stall_s = 0.0;  // held-on-dependencies time per job
  double max_dep_stall_s = 0.0;
  // Multi-queue / fairshare / preemption metrics (zero when unused).
  int rejected = 0;       // jobs no queue admitted
  int preemptions = 0;    // suspend/requeue events
  double preempt_lost_s = 0.0;  // work discarded past committed sync points
  /// Jain's index over per-user mean bounded slowdowns — the fairshare
  /// headline (1.0 = every user sees the same mean slowdown).
  double user_fairness = 0.0;
  std::vector<BatchQueueMetrics> queues;
};

class BatchScheduler {
 public:
  BatchScheduler(cluster::Cluster& cluster, BatchConfig config);

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;
  ~BatchScheduler();

  /// Submit one job: queued at spec.arrival (immediately when that is in
  /// the past).  Jobs wider than the cluster are rejected.
  void submit(JobSpec spec);
  void submit_all(const std::vector<JobSpec>& specs);

  /// Fault entry points (also driven by config.node_faults).
  void node_offline(int node);
  void node_online(int node);

  bool all_done() const;
  int queue_depth() const { return static_cast<int>(queue_.size()); }
  int running_count() const { return static_cast<int>(running_.size()); }
  const std::vector<JobRecord>& records() const { return records_; }
  const NodeAllocator& allocator() const { return allocator_; }
  /// (time, depth) sample per queue transition, for depth-over-time plots.
  const std::vector<std::pair<SimTime, int>>& queue_samples() const {
    return queue_samples_;
  }
  /// Jobs dispatched ahead of a waiting queue head (EASY only).
  std::uint64_t backfills() const { return backfills_; }
  /// The resolved execution queues (config.queues or the default one).
  const std::vector<QueueConfig>& queues() const { return queues_; }
  /// Decayed per-user usage (fairshare), read at the current engine time.
  const FairshareTracker& fairshare() const { return fairshare_; }
  /// Suspend/requeue events so far.
  std::uint64_t preemptions() const { return preemptions_; }
  /// Reservation windows that opened without enough free nodes to claim.
  std::uint64_t reservation_shortfalls() const {
    return reservation_shortfalls_;
  }
  /// Dispatches of a job after the reservation EASY promised it — always 0
  /// when walltime estimates are upper bounds (the no-delay guarantee).
  std::uint64_t reservation_violations() const {
    return reservation_violations_;
  }
  std::uint64_t node_failures() const { return node_failures_; }
  /// Jobs currently held on unfinished dependencies.
  int held_count() const { return held_; }
  /// True once any submitted job carried dependencies (workflow mode).
  bool workflow_mode() const { return wf_used_; }
  /// The dependency graph (built lazily; finalized once jobs start
  /// arriving in workflow mode or under kEasyCp).
  const wf::WorkflowDag& dag() const { return dag_; }

  /// Summarise the run so far (finished/failed jobs only).
  BatchMetrics metrics() const;

  /// Mean per-kernel CPU utilisation across the cluster's nodes, measured
  /// from the node kernels' own idle accounting (not job bookkeeping).
  double measured_node_utilization() const;

 private:
  struct Running {
    std::size_t record;                       // index into records_
    std::unique_ptr<cluster::ClusterJob> job;
    SimTime est_end = 0;  // start + walltime estimate (backfill planning)
    /// Abort in flight is a suspend (preemption), not a failure: the
    /// finish handler requeues instead of resubmitting/failing.
    bool preempted = false;
  };

  void on_arrival(std::size_t record);
  /// Register records submitted since the last call into dag_ and
  /// (re)finalize — validates unknown deps and cycles on first arrival.
  void ensure_dag();
  /// True when the DAG drives scheduling (workflow deps present, or the
  /// policy itself is critical-path aware).
  bool dag_engaged() const {
    return wf_used_ || config_.policy == BatchPolicy::kEasyCp;
  }
  /// Move a held record into the wait queue (its dependencies finished).
  void release_record(std::size_t record);
  /// Permanently failed record: cancel every transitive dependent.
  void cancel_descendants(std::size_t record);
  /// Coalesce pass requests into one 0-delay engine event.
  void request_pass();
  void schedule_pass();
  /// Try to allocate + launch; true on success (record leaves the queue).
  bool try_dispatch(std::size_t record);
  void handle_finish(std::size_t record);
  void sample_queue_depth();
  /// Earliest time `need` nodes are expected free — per running-job
  /// estimates and advance-reservation windows — and the expected
  /// free-node count at that time.  `est` is the candidate's walltime
  /// estimate, so the promise also clears reservation admission control.
  /// Returns {kNoPromise, 0} when the pool can never satisfy the request.
  std::pair<SimTime, int> reservation_for(int need, SimDuration est) const;
  /// True when queue priorities or fairshare can reorder the wait queue —
  /// otherwise the legacy single-queue sort runs bit-for-bit unchanged.
  bool multi_queue_active() const;
  /// (Re)sort queue_ by (queue priority, fairshare usage, policy key).
  void order_queue();
  /// Try to suspend enough low-priority running jobs for the blocked head
  /// candidate; true when preemptions were issued (a pass will follow the
  /// victims' finish events).
  bool preempt_for(std::size_t record);
  /// Claim/release an advance-reservation window (engine events).
  void reservation_open(std::size_t index);
  void reservation_close(std::size_t index);

  cluster::Cluster& cluster_;
  BatchConfig config_;
  NodeAllocator allocator_;
  std::vector<JobRecord> records_;
  std::vector<std::size_t> queue_;  // records_ indices, arrival order
  std::vector<Running> running_;
  /// Finished ClusterJobs are parked here (a job cannot delete itself from
  /// inside its own finish callback).
  std::vector<std::unique_ptr<cluster::ClusterJob>> retired_;
  std::vector<std::pair<SimTime, int>> queue_samples_;
  SimDuration busy_node_time_ = 0;  // integral of nodes x run time
  SimTime first_arrival_ = kNoPromise;
  SimTime last_finish_ = 0;
  bool pass_pending_ = false;
  std::uint64_t backfills_ = 0;
  std::uint64_t reservation_violations_ = 0;
  std::uint64_t node_failures_ = 0;
  // Multi-queue / fairshare / preemption / reservation state.
  std::vector<QueueConfig> queues_;   // resolved (config or default)
  std::vector<int> queue_nodes_used_;  // nodes running per queue (limits)
  FairshareTracker fairshare_;
  std::uint64_t preemptions_ = 0;
  int preempt_in_flight_ = 0;  // victims aborted, finish event pending
  /// Nodes held per advance-reservation window while it is open.
  std::vector<std::vector<int>> resv_holds_;
  std::uint64_t reservation_shortfalls_ = 0;
  // Workflow state.
  wf::WorkflowDag dag_;
  std::map<int, std::size_t> id_index_;  // job id -> records_ slot
  std::size_t dag_registered_ = 0;       // records_ prefix already in dag_
  bool wf_used_ = false;
  int held_ = 0;
};

}  // namespace hpcs::batch
