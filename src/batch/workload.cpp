#include "batch/workload.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/rng.h"

namespace hpcs::batch {

std::vector<JobSpec> generate_arrivals(const ArrivalConfig& config,
                                       std::uint64_t seed) {
  if (config.jobs < 0) {
    throw std::invalid_argument("generate_arrivals: jobs must be >= 0");
  }
  if (config.max_nodes < 1 || config.grain == 0) {
    throw std::invalid_argument("generate_arrivals: bad size parameters");
  }
  if (config.users < 1 || config.user_zipf < 0.0) {
    throw std::invalid_argument("generate_arrivals: bad user parameters");
  }
  // Independent substreams so changing one distribution's use count does not
  // shift the others (same discipline as the daemon/noise streams).
  util::Rng base(seed);
  util::Rng arrivals = base.substream(0xa221a11ULL);
  util::Rng sizes = base.substream(0x51ce5ULL);
  util::Rng runtimes = base.substream(0x3417e5ULL);
  util::Rng owners = base.substream(0x05e25ULL);

  // Zipf-style owner draw via the cumulative weight table: weight of user
  // u (1-based) is u^-s, s = 0 degenerating to uniform.
  std::vector<double> user_cdf(static_cast<std::size_t>(config.users));
  double cum = 0.0;
  for (int u = 0; u < config.users; ++u) {
    cum += std::pow(static_cast<double>(u + 1), -config.user_zipf);
    user_cdf[static_cast<std::size_t>(u)] = cum;
  }

  std::vector<JobSpec> jobs;
  jobs.reserve(static_cast<std::size_t>(config.jobs));
  SimTime clock = config.first_arrival;
  for (int i = 0; i < config.jobs; ++i) {
    JobSpec spec;
    spec.id = i + 1;
    spec.name = "job" + std::to_string(spec.id);
    if (i > 0) {
      clock += static_cast<SimDuration>(
          arrivals.exponential(static_cast<double>(config.mean_interarrival)));
    }
    spec.arrival = clock;
    const double n =
        sizes.lognormal(config.nodes_log_mean, config.nodes_log_sigma);
    spec.nodes = std::clamp(static_cast<int>(std::lround(n)), 1,
                            config.max_nodes);
    spec.ranks_per_node = config.ranks_per_node;
    const double target = runtimes.lognormal(
        std::log(static_cast<double>(config.runtime_typical)),
        config.runtime_log_sigma);
    spec.grain = config.grain;
    spec.iterations = std::max(
        1, static_cast<int>(std::lround(target /
                                        static_cast<double>(config.grain))));
    spec.jitter = config.jitter;
    spec.estimate = static_cast<SimDuration>(
        static_cast<double>(ideal_runtime(spec)) * config.estimate_factor);
    const double pick = owners.uniform() * user_cdf.back();
    spec.user = 1 + static_cast<int>(std::lower_bound(user_cdf.begin(),
                                                      user_cdf.end(), pick) -
                                     user_cdf.begin());
    spec.user = std::min(spec.user, config.users);
    jobs.push_back(std::move(spec));
  }
  return jobs;
}

namespace {

/// One SWF column: a double, with -1 conventionally meaning "unknown".
double swf_field(const std::vector<double>& fields, std::size_t index) {
  return index < fields.size() ? fields[index] : -1.0;
}

}  // namespace

std::vector<JobSpec> parse_swf(const std::string& text,
                               const SwfDefaults& defaults,
                               SwfParseStats* stats) {
  std::vector<JobSpec> jobs;
  SwfParseStats local;
  SwfParseStats& st = stats != nullptr ? *stats : local;
  st = SwfParseStats{};
  std::istringstream lines(text);
  std::string line;
  int lineno = 0;
  double last_submit = 0.0;
  bool have_submit = false;
  const auto reject = [&](const std::string& what) {
    throw std::invalid_argument("parse_swf: " + what + " on line " +
                                std::to_string(lineno));
  };
  // Lenient repair: count, record the line, and tell the caller whether
  // the line survives (true) or is dropped (false).
  const auto drop = [&](const std::string& what) {
    if (!defaults.lenient) reject(what);
    ++st.dropped_lines;
    st.warn(lineno, what + " (line dropped)");
  };
  while (std::getline(lines, line)) {
    ++lineno;
    const auto comment = line.find(';');
    if (comment != std::string::npos) line.resize(comment);
    std::istringstream in(line);
    std::vector<double> fields;
    double value = 0.0;
    while (in >> value) fields.push_back(value);
    if (!in.eof()) reject("non-numeric token");
    if (fields.empty()) continue;  // blank/comment line
    if (fields.size() < 4) reject("too few columns");
    JobSpec spec;
    spec.id = static_cast<int>(fields[0]);
    spec.name = "job" + std::to_string(spec.id);
    double submit = swf_field(fields, 1);
    if (submit < 0) reject("missing submit time");
    // SWF traces are sorted by submit time; a replay scheduled from an
    // unsorted trace silently reorders the queue, so a submit running
    // backwards is a defect, not a convention.
    if (have_submit && submit < last_submit) {
      if (!defaults.lenient) reject("non-monotonic submit time");
      ++st.clamped_submits;
      st.warn(lineno, "non-monotonic submit time (clamped to previous)");
      submit = last_submit;
    }
    last_submit = submit;
    have_submit = true;
    const double runtime = swf_field(fields, 3);
    if (runtime < 0) {
      // -1 is the SWF "unknown" marker (canceled jobs); anything negative
      // cannot be replayed.
      drop("missing or negative runtime");
      continue;
    }
    double nodes = swf_field(fields, 7);           // requested processors
    if (nodes <= 0) nodes = swf_field(fields, 4);  // allocated processors
    if (nodes <= 0) {
      drop("missing node count");
      continue;
    }
    spec.arrival = from_seconds(submit);
    spec.nodes = std::clamp(static_cast<int>(std::lround(nodes)), 1,
                            defaults.max_nodes);
    spec.ranks_per_node = defaults.ranks_per_node;
    spec.grain = defaults.grain;
    spec.iterations = std::max(
        1, static_cast<int>(std::lround(
               from_seconds(runtime) / static_cast<double>(defaults.grain))));
    spec.jitter = defaults.jitter;
    const double requested = swf_field(fields, 8);
    spec.estimate = requested > 0 ? from_seconds(requested)
                                  : ideal_runtime(spec);
    const double user = swf_field(fields, 11);
    spec.user = user > 0 ? static_cast<int>(user) : 0;
    jobs.push_back(std::move(spec));
  }
  st.jobs = static_cast<int>(jobs.size());
  return jobs;
}

std::string format_swf(const std::vector<JobSpec>& jobs) {
  std::ostringstream out;
  out << "; hpcs batch trace (SWF subset)\n"
      << "; id submit wait run procs cpu mem req_procs req_time req_mem "
         "status user group app queue partition prev think\n";
  for (const JobSpec& job : jobs) {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "%d %.6f -1 %.6f %d -1 -1 %d %.6f -1 1 %d -1 -1 -1 -1 -1 "
                  "-1\n",
                  job.id, to_seconds(job.arrival),
                  to_seconds(ideal_runtime(job)), job.nodes, job.nodes,
                  to_seconds(job.estimate), job.user);
    out << line;
  }
  return out.str();
}

}  // namespace hpcs::batch
